package qlove

import (
	"fmt"
)

// Result is one evaluation produced by a Monitor.
type Result struct {
	// Evaluation is the 0-based index of this query evaluation.
	Evaluation int
	// Estimates holds one quantile estimate per configured ϕ.
	Estimates []float64
}

// Monitor adapts a Policy to push-based streaming: callers Push one
// element at a time and receive a Result every window period once the
// first full window has been observed. The Monitor owns the replay buffer
// the engine needs to expire old elements (as the streaming engine does in
// Trill), so policies remain charged only for their operator state.
type Monitor struct {
	policy Policy
	spec   Window
	ring   []float64 // last Size elements, ring-indexed
	expire []float64 // Period-sized replay scratch handed to Expire
	seen   int64     // total elements pushed
	evals  int
}

// NewMonitor wraps a policy for push-based use under the window spec. The
// spec must match the one the policy was constructed with.
func NewMonitor(p Policy, spec Window) (*Monitor, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("qlove: nil policy")
	}
	return &Monitor{
		policy: p,
		spec:   spec,
		ring:   make([]float64, spec.Size),
		expire: make([]float64, spec.Period),
	}, nil
}

// expireOldest replays the period that just left the window to the policy,
// reusing the monitor's scratch buffer. The policy contract already forbids
// retaining the Expire slice, so sharing one buffer across periods is safe.
func (m *Monitor) expireOldest() {
	start := int(m.seen-int64(m.spec.Size)) % len(m.ring)
	n := copy(m.expire, m.ring[start:])
	copy(m.expire[n:], m.ring[:m.spec.Period-n])
	m.policy.Expire(m.expire)
}

// atBoundary reports whether seen sits on a period boundary with at least
// one full window observed — the point where expiry (before new elements)
// and evaluation (after them) happen.
func (m *Monitor) atBoundary() bool {
	return m.seen >= int64(m.spec.Size) && m.seen%int64(m.spec.Period) == 0
}

// Push feeds one element. When the element completes a window period (and
// at least one full window has been seen), it returns the evaluation
// result and true.
func (m *Monitor) Push(v float64) (Result, bool) {
	// Expire the period that just left the window, one batch per period,
	// before the new period begins — mirroring stream.Run's protocol.
	if m.atBoundary() {
		m.expireOldest()
	}
	m.ring[int(m.seen)%len(m.ring)] = v
	m.seen++
	m.policy.Observe(v)
	if m.atBoundary() {
		res := Result{Evaluation: m.evals, Estimates: m.policy.Result()}
		m.evals++
		return res, true
	}
	return Result{}, false
}

// PushBatch feeds a run of elements through the policy's batch path,
// invoking emit for every evaluation produced along the way (nil emit
// discards them). It follows exactly the Push protocol — expire the
// departed period at each boundary, then observe, then evaluate — but
// amortizes ring maintenance into bulk copies and hands the policy
// period-aligned ObserveBatch chunks, so a caller draining an ingest queue
// pays none of Push's per-element bookkeeping.
func (m *Monitor) PushBatch(vs []float64, emit func(Result)) {
	for len(vs) > 0 {
		if m.atBoundary() {
			m.expireOldest()
		}
		// Chunk to the next period boundary (chunks are ring-safe: one
		// period never exceeds the ring size).
		chunk := vs
		if room := m.spec.Period - int(m.seen%int64(m.spec.Period)); len(chunk) > room {
			chunk = chunk[:room]
		}
		start := int(m.seen) % len(m.ring)
		n := copy(m.ring[start:], chunk)
		copy(m.ring, chunk[n:])
		m.seen += int64(len(chunk))
		m.policy.ObserveBatch(chunk)
		if m.atBoundary() {
			res := Result{Evaluation: m.evals, Estimates: m.policy.Result()}
			m.evals++
			if emit != nil {
				emit(res)
			}
		}
		vs = vs[len(chunk):]
	}
}

// Seen returns the number of elements pushed so far.
func (m *Monitor) Seen() int64 { return m.seen }

// Evaluations returns the number of results produced so far.
func (m *Monitor) Evaluations() int { return m.evals }

// Policy returns the wrapped policy (e.g. to query SpaceUsage or, for a
// *QLOVE, ErrorBounds).
func (m *Monitor) Policy() Policy { return m.policy }
