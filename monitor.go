package qlove

import (
	"fmt"
)

// Result is one evaluation produced by a Monitor.
type Result struct {
	// Evaluation is the 0-based index of this query evaluation.
	Evaluation int
	// Estimates holds one quantile estimate per configured ϕ.
	Estimates []float64
}

// Monitor adapts a Policy to push-based streaming: callers Push one
// element at a time and receive a Result every window period once the
// first full window has been observed. The Monitor owns the replay buffer
// the engine needs to expire old elements (as the streaming engine does in
// Trill), so policies remain charged only for their operator state.
type Monitor struct {
	policy Policy
	spec   Window
	ring   []float64 // last Size elements, ring-indexed
	seen   int64     // total elements pushed
	evals  int
}

// NewMonitor wraps a policy for push-based use under the window spec. The
// spec must match the one the policy was constructed with.
func NewMonitor(p Policy, spec Window) (*Monitor, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("qlove: nil policy")
	}
	return &Monitor{
		policy: p,
		spec:   spec,
		ring:   make([]float64, spec.Size),
	}, nil
}

// Push feeds one element. When the element completes a window period (and
// at least one full window has been seen), it returns the evaluation
// result and true.
func (m *Monitor) Push(v float64) (Result, bool) {
	// Expire the period that just left the window, one batch per period,
	// before the new period begins — mirroring stream.Run's protocol.
	if m.seen >= int64(m.spec.Size) && m.seen%int64(m.spec.Period) == 0 {
		start := int(m.seen-int64(m.spec.Size)) % len(m.ring)
		old := make([]float64, m.spec.Period)
		for i := 0; i < m.spec.Period; i++ {
			old[i] = m.ring[(start+i)%len(m.ring)]
		}
		m.policy.Expire(old)
	}
	m.ring[int(m.seen)%len(m.ring)] = v
	m.seen++
	m.policy.Observe(v)
	if m.seen >= int64(m.spec.Size) && m.seen%int64(m.spec.Period) == 0 {
		res := Result{Evaluation: m.evals, Estimates: m.policy.Result()}
		m.evals++
		return res, true
	}
	return Result{}, false
}

// Seen returns the number of elements pushed so far.
func (m *Monitor) Seen() int64 { return m.seen }

// Evaluations returns the number of results produced so far.
func (m *Monitor) Evaluations() int { return m.evals }

// Policy returns the wrapped policy (e.g. to query SpaceUsage or, for a
// *QLOVE, ErrorBounds).
func (m *Monitor) Policy() Policy { return m.policy }
