package qlove

import (
	"repro/internal/stream"
)

// Result is one evaluation produced by a Monitor or an Engine.
type Result struct {
	// Evaluation is the 0-based index of this query evaluation.
	Evaluation int
	// Estimates holds one quantile estimate per configured ϕ.
	Estimates []float64
}

// Monitor adapts a Policy to push-based streaming: callers Push one
// element at a time (or PushBatch a run) and receive a Result every window
// period once the first full window has been observed. It is a thin
// single-stream adapter over the same per-key state machine an Engine
// shard runs for every key (stream.Pusher): the window protocol, replay
// buffer ownership and batch chunking live there, shared between the two
// front ends.
type Monitor struct {
	pusher *stream.Pusher
	// emit/adapt implement the Evaluation→Result callback adaptation with
	// one closure for the Monitor's lifetime instead of one per PushBatch
	// call, keeping the batch path allocation-free at steady state.
	emit  func(Result)
	adapt func(stream.Evaluation)
}

// NewMonitor wraps a policy for push-based use under the window spec. The
// spec must match the one the policy was constructed with.
func NewMonitor(p Policy, spec Window) (*Monitor, error) {
	k, err := stream.NewPusher(p, spec)
	if err != nil {
		return nil, err
	}
	return &Monitor{pusher: k}, nil
}

// Push feeds one element. When the element completes a window period (and
// at least one full window has been seen), it returns the evaluation
// result and true.
func (m *Monitor) Push(v float64) (Result, bool) {
	ev, ok := m.pusher.Push(v)
	if !ok {
		return Result{}, false
	}
	return Result{Evaluation: ev.Index, Estimates: ev.Estimates}, true
}

// PushBatch feeds a run of elements through the policy's batch path,
// invoking emit for every evaluation produced along the way (nil emit
// discards them). It is observationally identical to repeated Push calls
// but amortizes ring maintenance into bulk copies and hands the policy
// period-aligned ObserveBatch chunks.
func (m *Monitor) PushBatch(vs []float64, emit func(Result)) {
	if emit == nil {
		m.pusher.PushBatch(vs, nil)
		return
	}
	if m.adapt == nil {
		m.adapt = func(ev stream.Evaluation) {
			m.emit(Result{Evaluation: ev.Index, Estimates: ev.Estimates})
		}
	}
	// Save/restore rather than assign/nil so a reentrant PushBatch from
	// inside emit leaves the outer call's callback in place; restoring nil
	// at the outermost level also avoids retaining the caller's closure
	// between batches.
	prev := m.emit
	m.emit = emit
	m.pusher.PushBatch(vs, m.adapt)
	m.emit = prev
}

// Seen returns the number of elements pushed so far.
func (m *Monitor) Seen() int64 { return m.pusher.Seen() }

// Evaluations returns the number of results produced so far.
func (m *Monitor) Evaluations() int { return m.pusher.Evaluations() }

// Policy returns the wrapped policy (e.g. to query SpaceUsage or, for a
// *QLOVE, ErrorBounds).
func (m *Monitor) Policy() Policy { return m.pusher.Policy() }
