package workload

import (
	"fmt"
	"math/rand"
)

// Keyed turns any value Generator into a keyed telemetry source: a fixed
// key universe (per-service, per-pod series) whose keys are drawn either
// uniformly or Zipf-distributed — real fleets are skewed, a few hot
// services emit most of the traffic — while values come from the wrapped
// generator. Events arrive as per-key reports (a source flushes a chunk of
// measurements at once), the shape a keyed engine's Push(key, batch) API
// ingests directly. Deterministic given a seed.
type Keyed struct {
	keys   []string
	rng    *rand.Rand
	zipf   *rand.Zipf // nil => uniform key draw
	values Generator
}

// NewKeyed builds a keyed source over cardinality keys. skew selects the
// key distribution: 0 draws keys uniformly; s > 1 draws key indexes from a
// Zipf distribution with parameter s (key 0 hottest). Values come from
// values, which the Keyed source owns from here on.
func NewKeyed(seed int64, cardinality int, skew float64, values Generator) (*Keyed, error) {
	if cardinality < 1 {
		return nil, fmt.Errorf("workload: key cardinality %d < 1", cardinality)
	}
	if values == nil {
		return nil, fmt.Errorf("workload: nil value generator")
	}
	if skew != 0 && skew <= 1 {
		return nil, fmt.Errorf("workload: zipf skew %v must be 0 (uniform) or > 1", skew)
	}
	g := &Keyed{
		keys:   make([]string, cardinality),
		rng:    rand.New(rand.NewSource(seed)),
		values: values,
	}
	for i := range g.keys {
		g.keys[i] = fmt.Sprintf("key-%06d", i)
	}
	if skew != 0 {
		g.zipf = rand.NewZipf(g.rng, skew, 1, uint64(cardinality-1))
	}
	return g, nil
}

// Cardinality returns the size of the key universe.
func (g *Keyed) Cardinality() int { return len(g.keys) }

// Key returns the i-th key's name (key 0 is the hottest under skew).
func (g *Keyed) Key(i int) string { return g.keys[i] }

// nextKey draws one key per the configured distribution.
func (g *Keyed) nextKey() string {
	if g.zipf != nil {
		return g.keys[g.zipf.Uint64()]
	}
	return g.keys[g.rng.Intn(len(g.keys))]
}

// Next draws one keyed event.
func (g *Keyed) Next() (key string, v float64) {
	return g.nextKey(), g.values.Next()
}

// NextReport draws one per-key report: a key and cap(dst) values written
// into dst (the caller-owned buffer is returned resliced, so a steady
// ingest loop allocates nothing).
func (g *Keyed) NextReport(dst []float64) (key string, vs []float64) {
	return g.nextKey(), g.Values(dst)
}

// Values fills cap(dst) values without drawing a key — for callers that
// address a specific key, e.g. an enumeration pass that has every series
// report once (the heartbeat all pods send) before skewed traffic starts.
func (g *Keyed) Values(dst []float64) []float64 {
	dst = dst[:cap(dst)]
	for i := range dst {
		dst[i] = g.values.Next()
	}
	return dst
}
