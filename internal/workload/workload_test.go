package workload

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestGenerateLength(t *testing.T) {
	g := NewUniform(1, 0, 1)
	data := Generate(g, 1234)
	if len(data) != 1234 {
		t.Fatalf("Generate returned %d values", len(data))
	}
}

func TestFuncAdapter(t *testing.T) {
	n := 0.0
	g := Func(func() float64 { n++; return n })
	if g.Next() != 1 || g.Next() != 2 {
		t.Fatal("Func adapter broken")
	}
}

func TestDeterminism(t *testing.T) {
	for name, mk := range map[string]func() Generator{
		"netmon":  func() Generator { return NewNetMon(7) },
		"search":  func() Generator { return NewSearch(7) },
		"normal":  func() Generator { return NewNormal(7, 0, 1) },
		"uniform": func() Generator { return NewUniform(7, 0, 1) },
		"pareto":  func() Generator { return NewPaperPareto(7) },
		"ar1":     func() Generator { return NewAR1(7, 0, 1, 0.5) },
	} {
		a := Generate(mk(), 1000)
		b := Generate(mk(), 1000)
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: not deterministic at %d", name, i)
				break
			}
		}
	}
}

func TestNetMonCalibration(t *testing.T) {
	// The surrogate must reproduce the paper's anchors: median ≈ 798us,
	// P90 ≤ ~1,247us, Q0.99 ≈ 1,874us, max ≤ 74,265us, heavy tail.
	data := Generate(NewNetMon(1), 1_000_000)
	q := stats.Quantiles(data, []float64{0.5, 0.9, 0.99})
	if math.Abs(q[0]-798)/798 > 0.05 {
		t.Errorf("median = %v, want ≈ 798", q[0])
	}
	if math.Abs(q[1]-1247)/1247 > 0.10 {
		t.Errorf("P90 = %v, want ≈ 1247", q[1])
	}
	if math.Abs(q[2]-1874)/1874 > 0.25 {
		t.Errorf("Q0.99 = %v, want ≈ 1874", q[2])
	}
	var max float64
	for _, v := range data {
		if v > max {
			max = v
		}
		if v < 1 {
			t.Fatalf("non-positive latency %v", v)
		}
	}
	if max > 74265 {
		t.Errorf("max = %v, want <= 74265", max)
	}
	if max < 20000 {
		t.Errorf("max = %v, tail not heavy enough", max)
	}
}

func TestNetMonRedundancy(t *testing.T) {
	// Insight (i) of the paper: values are dominated by recurring small
	// values. Unique ratio in a 100K window should be small (a few %).
	data := Generate(NewNetMon(2), 100_000)
	uniq := map[float64]bool{}
	for _, v := range data {
		uniq[v] = true
	}
	ratio := float64(len(uniq)) / float64(len(data))
	if ratio > 0.05 {
		t.Fatalf("unique ratio = %v, want <= 0.05", ratio)
	}
}

func TestNetMonSelfSimilarBody(t *testing.T) {
	// Insight (ii): the distribution of small values is consistent across
	// time scales. Compare sub-window medians across disjoint chunks.
	data := Generate(NewNetMon(3), 200_000)
	var medians []float64
	for i := 0; i+10000 <= len(data); i += 10000 {
		medians = append(medians, stats.Quantile(data[i:i+10000], 0.5))
	}
	m := stats.Mean(medians)
	for _, v := range medians {
		if math.Abs(v-m)/m > 0.05 {
			t.Fatalf("sub-window median %v deviates from mean %v by > 5%%", v, m)
		}
	}
}

func TestSearchSLADensityInTail(t *testing.T) {
	// Footnote 1: SLA-terminated queries concentrate near the cap, giving
	// high tail density. Q0.999 and Q0.9999 should be close in value.
	data := Generate(NewSearch(1), 500_000)
	q := stats.Quantiles(data, []float64{0.999, 0.9999})
	if q[1] > searchSLA {
		t.Fatalf("value above SLA cap: %v", q[1])
	}
	if (q[1]-q[0])/q[0] > 0.02 {
		t.Fatalf("tail not dense: Q0.999=%v Q0.9999=%v", q[0], q[1])
	}
}

func TestNormalMoments(t *testing.T) {
	data := Generate(NewNormal(4, 1e6, 5e4), 500_000)
	if m := stats.Mean(data); math.Abs(m-1e6)/1e6 > 0.001 {
		t.Errorf("mean = %v, want ≈ 1e6", m)
	}
	if s := stats.StdDev(data); math.Abs(s-5e4)/5e4 > 0.01 {
		t.Errorf("stddev = %v, want ≈ 5e4", s)
	}
}

func TestUniformRange(t *testing.T) {
	data := Generate(NewUniform(5, 90, 110), 100_000)
	for _, v := range data {
		if v < 90 || v >= 110 {
			t.Fatalf("value %v outside [90, 110)", v)
		}
	}
	if m := stats.Mean(data); math.Abs(m-100) > 0.2 {
		t.Errorf("mean = %v, want ≈ 100", m)
	}
}

func TestUniformSwappedBounds(t *testing.T) {
	g := NewUniform(5, 110, 90)
	v := g.Next()
	if v < 90 || v >= 110 {
		t.Fatalf("swapped-bounds value %v outside [90,110)", v)
	}
}

func TestParetoPaperCalibration(t *testing.T) {
	// §5.4: Q0.5 = 20, Q0.999 = 10,000, max over 10M ≈ 1.1e9. We verify
	// the quantile anchors on 2M draws (looser tolerance for Q0.999).
	data := Generate(NewPaperPareto(6), 2_000_000)
	q := stats.Quantiles(data, []float64{0.5, 0.999})
	if math.Abs(q[0]-20)/20 > 0.05 {
		t.Errorf("Q0.5 = %v, want ≈ 20", q[0])
	}
	if math.Abs(q[1]-10000)/10000 > 0.15 {
		t.Errorf("Q0.999 = %v, want ≈ 10000", q[1])
	}
	var max float64
	for _, v := range data {
		if v < 10 {
			t.Fatalf("Pareto value %v below xm", v)
		}
		if v > max {
			max = v
		}
	}
	if max < 1e6 {
		t.Errorf("max = %v, tail too light for α=1", max)
	}
}

func TestAR1MarginalAndCorrelation(t *testing.T) {
	for _, psi := range []float64{0, 0.2, 0.8} {
		data := Generate(NewAR1(8, 1e6, 5e4, psi), 400_000)
		if m := stats.Mean(data); math.Abs(m-1e6)/1e6 > 0.002 {
			t.Errorf("psi=%v: mean = %v", psi, m)
		}
		if s := stats.StdDev(data); math.Abs(s-5e4)/5e4 > 0.02 {
			t.Errorf("psi=%v: stddev = %v", psi, s)
		}
		// lag-1 autocorrelation ≈ psi
		var num, den float64
		m := stats.Mean(data)
		for i := 1; i < len(data); i++ {
			num += (data[i] - m) * (data[i-1] - m)
		}
		for _, v := range data {
			den += (v - m) * (v - m)
		}
		rho := num / den
		if math.Abs(rho-psi) > 0.02 {
			t.Errorf("psi=%v: lag-1 autocorrelation = %v", psi, rho)
		}
	}
}

func TestInjectBurstsBoostsTopK(t *testing.T) {
	// Window 100, period 10: every 10th sub-window gets its top
	// N(1-phi)=10 values boosted. With 10 sub-windows, only sub-window 0
	// of each window stride is hit.
	n := 100
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(i + 1)
	}
	out := InjectBursts(data, 100, 10, 0.9, 10)
	if len(out) != n {
		t.Fatalf("length changed: %d", len(out))
	}
	// Sub-window 0 (values 1..10) is entirely boosted (k=10 >= P).
	for i := 0; i < 10; i++ {
		if out[i] != data[i]*10 {
			t.Fatalf("out[%d] = %v, want %v", i, out[i], data[i]*10)
		}
	}
	// Other sub-windows untouched.
	for i := 10; i < n; i++ {
		if out[i] != data[i] {
			t.Fatalf("out[%d] = %v, want untouched %v", i, out[i], data[i])
		}
	}
	// Original input not modified.
	if data[0] != 1 {
		t.Fatal("InjectBursts modified its input")
	}
}

func TestInjectBurstsTopKWithinSubwindow(t *testing.T) {
	// Period 100, window 200 => stride 2, k = 200*(1-0.95) = 10.
	// Sub-windows 0 and 2 are boosted; within each, only the top 10.
	data := make([]float64, 400)
	for i := range data {
		data[i] = float64(i%100) + 1 // 1..100 repeating per sub-window
	}
	out := InjectBursts(data, 200, 100, 0.95, 10)
	for s := 0; s < 4; s++ {
		boostedWanted := s%2 == 0
		cnt := 0
		for i := s * 100; i < (s+1)*100; i++ {
			if out[i] != data[i] {
				cnt++
				if data[i] < 91 {
					t.Fatalf("sub-window %d: non-top value %v boosted", s, data[i])
				}
				if out[i] != data[i]*10 {
					t.Fatalf("boost factor wrong at %d", i)
				}
			}
		}
		if boostedWanted && cnt != 10 {
			t.Fatalf("sub-window %d: boosted %d values, want 10", s, cnt)
		}
		if !boostedWanted && cnt != 0 {
			t.Fatalf("sub-window %d: boosted %d values, want 0", s, cnt)
		}
	}
}

func TestInjectBurstsDegenerateArgs(t *testing.T) {
	data := []float64{1, 2, 3}
	out := InjectBursts(data, 0, 0, 0.9, 10)
	for i := range data {
		if out[i] != data[i] {
			t.Fatal("degenerate args should be a no-op copy")
		}
	}
}

// Property: burst injection never decreases any value (factor >= 1) and
// changes exactly the k largest per selected sub-window.
func TestQuickInjectBurstsMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 20 {
			return true
		}
		data := make([]float64, len(raw))
		for i, r := range raw {
			data[i] = float64(r) + 1
		}
		out := InjectBursts(data, 40, 10, 0.9, 10)
		for i := range out {
			if out[i] < data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBoostTopKMatchesSortSelection(t *testing.T) {
	// boostTopK must hit exactly the k largest values (ties broken
	// arbitrarily but count preserved).
	seg := []float64{5, 1, 9, 7, 3, 9, 2, 8}
	orig := append([]float64(nil), seg...)
	boostTopK(seg, 3, 100)
	var changed []float64
	for i := range seg {
		if seg[i] != orig[i] {
			changed = append(changed, orig[i])
		}
	}
	sort.Float64s(changed)
	want := []float64{8, 9, 9}
	if len(changed) != 3 {
		t.Fatalf("changed %d values, want 3", len(changed))
	}
	for i := range want {
		if changed[i] != want[i] {
			t.Fatalf("boosted %v, want %v", changed, want)
		}
	}
}
