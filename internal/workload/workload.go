// Package workload provides the data sources of the paper's evaluation
// (§5.1, §5.4). The proprietary NetMon and Search datasets are replaced by
// calibrated synthetic surrogates (see DESIGN.md "Substitutions"); the
// Normal, Uniform, Pareto and AR(1) datasets follow the paper's published
// parameters exactly. All generators are deterministic given a seed.
package workload

import (
	"math"
	"math/rand"
)

// Generator produces an endless stream of telemetry values.
type Generator interface {
	// Next returns the next value of the stream.
	Next() float64
}

// Generate draws n values from g into a fresh slice.
func Generate(g Generator, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Func adapts a closure to the Generator interface.
type Func func() float64

// Next implements Generator.
func (f Func) Next() float64 { return f() }

// --- NetMon surrogate ---

// NetMon models datacenter RTT telemetry in microseconds, calibrated to the
// paper's published anchors: median ≈ 798us, >90% below 1,247us, Q0.99 ≈
// 1,874us, and a heavy Pareto tail reaching ≈ 74,265us. The body is
// lognormal (self-similar, highly redundant after rounding to integer
// microseconds); a small mixture weight lands in the tail.
type NetMon struct {
	rng *rand.Rand
}

// NewNetMon returns a NetMon generator seeded deterministically.
func NewNetMon(seed int64) *NetMon {
	return &NetMon{rng: rand.New(rand.NewSource(seed))}
}

// NetMon calibration constants.
const (
	netmonMedian   = 798.0   // us, paper §1
	netmonSigma    = 0.35    // lognormal shape matching P90 ≈ 1,247us
	netmonTailProb = 0.004   // mixture weight of the heavy tail
	netmonTailMin  = 1900.0  // tail onset just above Q0.99
	netmonTailAlph = 1.05    // Pareto shape: very heavy tail
	netmonTailCap  = 74265.0 // paper's observed maximum
)

// Next implements Generator.
func (g *NetMon) Next() float64 {
	if g.rng.Float64() < netmonTailProb {
		// Pareto tail capped at the paper's observed max.
		u := g.rng.Float64()
		v := netmonTailMin * math.Pow(1-u, -1/netmonTailAlph)
		if v > netmonTailCap {
			v = netmonTailCap
		}
		return math.Round(v)
	}
	v := netmonMedian * math.Exp(netmonSigma*g.rng.NormFloat64())
	if v < 1 {
		v = 1
	}
	return math.Round(v)
}

// --- Search surrogate ---

// Search models index-serving-node query response times in microseconds.
// Per the paper's footnote, the ISN enforces a response-time SLA (200ms):
// queries cut off by the SLA concentrate probability mass near the cap, so
// the tail of the distribution is *dense* — which is why the paper reports
// <1% value error on Search even for Q0.999.
type Search struct {
	rng *rand.Rand
}

// NewSearch returns a Search generator seeded deterministically.
func NewSearch(seed int64) *Search {
	return &Search{rng: rand.New(rand.NewSource(seed))}
}

const (
	searchMedian = 20000.0  // 20ms typical response
	searchSigma  = 0.9      // wide lognormal body
	searchSLA    = 200000.0 // 200ms SLA cap
)

// Next implements Generator.
func (g *Search) Next() float64 {
	v := searchMedian * math.Exp(searchSigma*g.rng.NormFloat64())
	if v >= searchSLA {
		// SLA termination: report the cap with small scheduler jitter so
		// the spike is dense but not a single point mass.
		v = searchSLA - math.Abs(g.rng.NormFloat64())*500
	}
	if v < 100 {
		v = 100
	}
	return math.Round(v)
}

// --- Synthetic distributions with the paper's exact parameters ---

// Normal generates N(mean, stddev²) values (§5.2 scalability: mean 1e6,
// stddev 5e4).
type Normal struct {
	rng          *rand.Rand
	mean, stddev float64
}

// NewNormal returns a normal generator.
func NewNormal(seed int64, mean, stddev float64) *Normal {
	return &Normal{rng: rand.New(rand.NewSource(seed)), mean: mean, stddev: stddev}
}

// Next implements Generator.
func (g *Normal) Next() float64 { return g.mean + g.stddev*g.rng.NormFloat64() }

// Uniform generates values uniform in [lo, hi) (§5.2 scalability: 90–110).
type Uniform struct {
	rng    *rand.Rand
	lo, hi float64
}

// NewUniform returns a uniform generator.
func NewUniform(seed int64, lo, hi float64) *Uniform {
	if hi < lo {
		lo, hi = hi, lo
	}
	return &Uniform{rng: rand.New(rand.NewSource(seed)), lo: lo, hi: hi}
}

// Next implements Generator.
func (g *Uniform) Next() float64 { return g.lo + (g.hi-g.lo)*g.rng.Float64() }

// Pareto generates integer values from a Pareto distribution. The §5.4
// skewness study uses Q0.5 = 20 and Q0.999 = 10,000, which pins the shape
// to α = ln(500)/ln(500) = 1 and the scale to xm = 10; the observed
// maximum over 10M draws is then ≈ 1.1 billion, matching the paper.
type Pareto struct {
	rng       *rand.Rand
	xm, alpha float64
}

// NewPareto returns a Pareto generator with scale xm and shape alpha.
func NewPareto(seed int64, xm, alpha float64) *Pareto {
	return &Pareto{rng: rand.New(rand.NewSource(seed)), xm: xm, alpha: alpha}
}

// NewPaperPareto returns the Pareto generator with the paper's §5.4
// calibration (xm=10, α=1).
func NewPaperPareto(seed int64) *Pareto { return NewPareto(seed, 10, 1) }

// Next implements Generator.
func (g *Pareto) Next() float64 {
	u := g.rng.Float64()
	for u == 0 {
		u = g.rng.Float64()
	}
	return math.Round(g.xm * math.Pow(u, -1/g.alpha))
}

// AR1 generates a first-order autoregressive sequence whose marginal
// distribution is N(mean, stddev²) for any coefficient ψ in [0, 1): the
// innovation variance is scaled by (1−ψ²). ψ=0 reduces to i.i.d. normal
// (§5.4 non-i.i.d. study).
type AR1 struct {
	rng          *rand.Rand
	mean, stddev float64
	psi          float64
	prev         float64
	started      bool
}

// NewAR1 returns an AR(1) generator with correlation coefficient psi.
func NewAR1(seed int64, mean, stddev, psi float64) *AR1 {
	return &AR1{rng: rand.New(rand.NewSource(seed)), mean: mean, stddev: stddev, psi: psi}
}

// Next implements Generator.
func (g *AR1) Next() float64 {
	if !g.started {
		g.started = true
		g.prev = g.mean + g.stddev*g.rng.NormFloat64()
		return g.prev
	}
	innov := g.stddev * math.Sqrt(1-g.psi*g.psi) * g.rng.NormFloat64()
	g.prev = g.mean + g.psi*(g.prev-g.mean) + innov
	return g.prev
}

// --- Burst injection (§5.3) ---

// InjectBursts returns a copy of data where, in every (N/P)-th sub-window
// of size P, the top N·(1−phi) values of that sub-window are multiplied by
// factor — the paper's §5.3 bursty-traffic injection (factor 10). The data
// length should be a multiple of P; a trailing partial sub-window is left
// untouched.
func InjectBursts(data []float64, windowN, periodP int, phi, factor float64) []float64 {
	out := append([]float64(nil), data...)
	if periodP <= 0 || windowN <= 0 {
		return out
	}
	stride := windowN / periodP // burst every (N/P)-th sub-window
	if stride <= 0 {
		stride = 1
	}
	k := int(math.Round(float64(windowN) * (1 - phi)))
	if k < 1 {
		k = 1
	}
	numSub := len(out) / periodP
	for s := 0; s < numSub; s += stride {
		lo := s * periodP
		boostTopK(out[lo:lo+periodP], k, factor)
	}
	return out
}

// boostTopK multiplies the k largest elements of seg by factor in place.
func boostTopK(seg []float64, k int, factor float64) {
	if k >= len(seg) {
		for i := range seg {
			seg[i] *= factor
		}
		return
	}
	// Min-heap of the k largest (index, value) pairs seen so far.
	top := make([]iv, 0, k)
	for i, v := range seg {
		if len(top) < k {
			top = append(top, iv{i, v})
			if len(top) == k {
				heapify(top)
			}
			continue
		}
		if v > top[0].v {
			top[0] = iv{i, v}
			siftDown(top, 0)
		}
	}
	for _, e := range top {
		seg[e.idx] *= factor
	}
}

type iv struct {
	idx int
	v   float64
}

func heapify(h []iv) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
}

func siftDown(h []iv, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h[l].v < h[smallest].v {
			smallest = l
		}
		if r < n && h[r].v < h[smallest].v {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}
