package workload

import (
	"testing"
)

func TestKeyedValidation(t *testing.T) {
	if _, err := NewKeyed(1, 0, 0, NewNetMon(1)); err == nil {
		t.Fatal("zero cardinality accepted")
	}
	if _, err := NewKeyed(1, 10, 0, nil); err == nil {
		t.Fatal("nil value generator accepted")
	}
	if _, err := NewKeyed(1, 10, 0.5, NewNetMon(1)); err == nil {
		t.Fatal("invalid zipf skew accepted")
	}
	if _, err := NewKeyed(1, 10, 1.0, NewNetMon(1)); err == nil {
		t.Fatal("skew=1 accepted (rand.Zipf requires s > 1)")
	}
}

func TestKeyedDeterministic(t *testing.T) {
	mk := func() *Keyed {
		g, err := NewKeyed(42, 100, 1.3, NewNetMon(7))
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, b := mk(), mk()
	for i := 0; i < 1000; i++ {
		ka, va := a.Next()
		kb, vb := b.Next()
		if ka != kb || va != vb {
			t.Fatalf("draw %d diverges: (%s,%v) vs (%s,%v)", i, ka, va, kb, vb)
		}
	}
}

func TestKeyedUniformCoversUniverse(t *testing.T) {
	g, err := NewKeyed(3, 50, 0, NewUniform(3, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for i := 0; i < 5000; i++ {
		k, v := g.Next()
		if v < 0 || v >= 1 {
			t.Fatalf("value %v outside generator range", v)
		}
		seen[k]++
	}
	if len(seen) != 50 {
		t.Fatalf("uniform draw hit %d/50 keys", len(seen))
	}
	// No key should dominate a uniform draw: expectation 100 per key.
	for k, n := range seen {
		if n > 300 {
			t.Fatalf("uniform key %s drawn %d times", k, n)
		}
	}
}

func TestKeyedZipfIsSkewed(t *testing.T) {
	g, err := NewKeyed(5, 1000, 1.2, NewUniform(5, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const draws = 20000
	for i := 0; i < draws; i++ {
		k, _ := g.Next()
		counts[k]++
	}
	hot := counts[g.Key(0)]
	if hot < draws/20 {
		t.Fatalf("hottest key drew %d/%d — not skewed", hot, draws)
	}
	if hot < 10*counts[g.Key(500)] {
		t.Fatalf("head/tail ratio too flat: %d vs %d", hot, counts[g.Key(500)])
	}
}

func TestKeyedNextReport(t *testing.T) {
	g, err := NewKeyed(9, 10, 0, NewNormal(9, 100, 10))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 0, 64)
	key, vs := g.NextReport(buf)
	if len(vs) != 64 {
		t.Fatalf("report size %d, want cap(dst)=64", len(vs))
	}
	if key == "" {
		t.Fatal("empty key")
	}
	if &vs[0] != &buf[:1][0] {
		t.Fatal("report did not reuse the caller's buffer")
	}
}
