package stats

import "math"

// ErrorAccumulator aggregates the paper's §5.1 accuracy metrics over
// repeated query evaluations of one quantile: average relative value error
// (in percent) and average rank error e' = (1/n)·Σ|r − r'ᵢ|/N.
type ErrorAccumulator struct {
	n            int
	sumRelErr    float64
	sumRankErr   float64
	maxRelErr    float64
	maxRankErr   float64
	infiniteRels int
}

// Observe records one evaluation: the estimated and exact quantile values,
// the rank r'ᵢ the estimate holds in the exact window, the exact rank r, and
// the window size N. Pass rankKnown=false when rank bookkeeping is not
// available (only value error is then recorded).
func (a *ErrorAccumulator) Observe(est, exact float64, estRank, exactRank, windowN int, rankKnown bool) {
	a.n++
	rel := RelativeError(est, exact)
	if math.IsInf(rel, 1) {
		a.infiniteRels++
	} else {
		a.sumRelErr += rel
		if rel > a.maxRelErr {
			a.maxRelErr = rel
		}
	}
	if rankKnown && windowN > 0 {
		re := math.Abs(float64(exactRank-estRank)) / float64(windowN)
		a.sumRankErr += re
		if re > a.maxRankErr {
			a.maxRankErr = re
		}
	}
}

// Evaluations returns the number of observations recorded.
func (a *ErrorAccumulator) Evaluations() int { return a.n }

// AvgRelErrPct returns the average relative value error in percent,
// excluding observations where the exact value was zero and the estimate
// was not. Returns 0 when nothing was observed.
func (a *ErrorAccumulator) AvgRelErrPct() float64 {
	finite := a.n - a.infiniteRels
	if finite == 0 {
		return 0
	}
	return a.sumRelErr / float64(finite) * 100
}

// AvgRankErr returns the average rank error e'.
func (a *ErrorAccumulator) AvgRankErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sumRankErr / float64(a.n)
}

// MaxRelErrPct returns the largest observed relative value error (percent).
func (a *ErrorAccumulator) MaxRelErrPct() float64 { return a.maxRelErr * 100 }

// MaxRankErr returns the largest observed rank error.
func (a *ErrorAccumulator) MaxRankErr() float64 { return a.maxRankErr }

// RankOf returns the number of elements in the sorted window that are <=
// value, i.e. the highest 1-based rank value would occupy. sorted must be
// sorted ascending.
func RankOf(sorted []float64, value float64) int {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if sorted[mid] <= value {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
