package stats

import (
	"math"
	"sort"
)

// MannWhitneyResult holds the outcome of a one-sided Mann–Whitney U test of
// whether sample X is stochastically larger than sample Y.
type MannWhitneyResult struct {
	U      float64 // U statistic for X
	Z      float64 // normal-approximation z score (tie-corrected)
	PValue float64 // one-sided p-value for H1: X stochastically larger than Y
}

// MannWhitney performs the one-sided Mann–Whitney U test [Mann & Whitney
// 1947] with the normal approximation and tie correction. QLOVE's runtime
// traffic handler (§4.3) uses it to decide whether the sampled largest
// values of the current sub-window are stochastically larger than those of
// the previous sub-window, which signals bursty traffic.
//
// Both samples must be non-empty; otherwise it returns a zero-information
// result with PValue = 1.
func MannWhitney(x, y []float64) MannWhitneyResult {
	nx, ny := len(x), len(y)
	if nx == 0 || ny == 0 {
		return MannWhitneyResult{PValue: 1}
	}
	type obs struct {
		v     float64
		fromX bool
	}
	all := make([]obs, 0, nx+ny)
	for _, v := range x {
		all = append(all, obs{v, true})
	}
	for _, v := range y {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Midranks with tie correction term Σ(t³−t).
	n := nx + ny
	var rankSumX, tieTerm float64
	for i := 0; i < n; {
		j := i
		for j < n && all[j].v == all[i].v {
			j++
		}
		t := float64(j - i)
		mid := (float64(i+1) + float64(j)) / 2 // average 1-based rank
		for k := i; k < j; k++ {
			if all[k].fromX {
				rankSumX += mid
			}
		}
		if t > 1 {
			tieTerm += t*t*t - t
		}
		i = j
	}
	u := rankSumX - float64(nx)*float64(nx+1)/2
	mu := float64(nx) * float64(ny) / 2
	nn := float64(n)
	sigma2 := float64(nx) * float64(ny) / 12 * (nn + 1 - tieTerm/(nn*(nn-1)))
	if sigma2 <= 0 {
		// All values tied: no evidence either way.
		return MannWhitneyResult{U: u, PValue: 1}
	}
	// Continuity correction toward the null.
	z := (u - mu - 0.5) / math.Sqrt(sigma2)
	return MannWhitneyResult{U: u, Z: z, PValue: 1 - NormalCDF(z)}
}

// StochasticallyLarger reports whether sample x is stochastically larger
// than sample y at significance level alpha, per the one-sided
// Mann–Whitney U test.
func StochasticallyLarger(x, y []float64, alpha float64) bool {
	return MannWhitney(x, y).PValue < alpha
}
