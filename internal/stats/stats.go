// Package stats provides the statistical machinery QLOVE depends on: exact
// quantiles of finite samples, the normal distribution (for the Appendix A
// CLT error bound), the Mann–Whitney U test used by §4.3's bursty-traffic
// detector, and the accuracy metrics of §5.1 (average relative value error
// and average rank error).
package stats

import (
	"math"
	"sort"
)

// CeilRank returns the 1-based rank ceil(phi*n) clamped to [1, n], the
// paper's quantile definition. It panics when n == 0.
func CeilRank(phi float64, n int) int {
	if n <= 0 {
		panic("stats: CeilRank with n <= 0")
	}
	r := int(math.Ceil(phi * float64(n)))
	if r < 1 {
		r = 1
	}
	if r > n {
		r = n
	}
	return r
}

// Quantile returns the exact ϕ-quantile of data, defined as the element at
// rank ceil(ϕ·len) of the sorted sample. The input is not modified. It
// panics on empty data.
func Quantile(data []float64, phi float64) float64 {
	if len(data) == 0 {
		panic("stats: Quantile of empty data")
	}
	s := append([]float64(nil), data...)
	sort.Float64s(s)
	return s[CeilRank(phi, len(s))-1]
}

// QuantileSorted returns the ϕ-quantile of already-sorted data without
// copying. It panics on empty data.
func QuantileSorted(sorted []float64, phi float64) float64 {
	if len(sorted) == 0 {
		panic("stats: QuantileSorted of empty data")
	}
	return sorted[CeilRank(phi, len(sorted))-1]
}

// Quantiles returns the exact ϕ-quantiles for each phi. One sort is shared
// across all queries.
func Quantiles(data []float64, phis []float64) []float64 {
	if len(data) == 0 {
		panic("stats: Quantiles of empty data")
	}
	s := append([]float64(nil), data...)
	sort.Float64s(s)
	out := make([]float64, len(phis))
	for i, phi := range phis {
		out[i] = s[CeilRank(phi, len(s))-1]
	}
	return out
}

// Mean returns the arithmetic mean. It panics on empty data.
func Mean(data []float64) float64 {
	if len(data) == 0 {
		panic("stats: Mean of empty data")
	}
	var sum float64
	for _, v := range data {
		sum += v
	}
	return sum / float64(len(data))
}

// Variance returns the unbiased sample variance (n-1 denominator). It
// returns 0 for samples of size < 2.
func Variance(data []float64) float64 {
	if len(data) < 2 {
		return 0
	}
	m := Mean(data)
	var ss float64
	for _, v := range data {
		d := v - m
		ss += d * d
	}
	return ss / float64(len(data)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(data []float64) float64 { return math.Sqrt(Variance(data)) }

// RelativeError returns |est-exact|/|exact|. When exact is zero it returns
// 0 if est is also zero and +Inf otherwise.
func RelativeError(est, exact float64) float64 {
	if exact == 0 {
		if est == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(est-exact) / math.Abs(exact)
}

// NormalCDF returns Φ(x), the standard normal cumulative distribution.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns Φ⁻¹(p) for p in (0, 1), the inverse of NormalCDF.
// It uses the Acklam rational approximation refined by one Halley step,
// giving ~1e-15 absolute accuracy. It panics for p outside (0,1).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: NormalQuantile requires 0 < p < 1")
	}
	// Acklam's algorithm.
	const (
		a1 = -3.969683028665376e+01
		a2 = 2.209460984245205e+02
		a3 = -2.759285104469687e+02
		a4 = 1.383577518672690e+02
		a5 = -3.066479806614716e+01
		a6 = 2.506628277459239e+00

		b1 = -5.447609879822406e+01
		b2 = 1.615858368580409e+02
		b3 = -1.556989798598866e+02
		b4 = 6.680131188771972e+01
		b5 = -1.328068155288572e+01

		c1 = -7.784894002430293e-03
		c2 = -3.223964580411365e-01
		c3 = -2.400758277161838e+00
		c4 = -2.549732539343734e+00
		c5 = 4.374664141464968e+00
		c6 = 2.938163982698783e+00

		d1 = 7.784695709041462e-03
		d2 = 3.224671290700398e-01
		d3 = 2.445134137142996e+00
		d4 = 3.754408661907416e+00

		plow  = 0.02425
		phigh = 1 - plow
	)
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		x = (((((a1*r+a2)*r+a3)*r+a4)*r+a5)*r + a6) * q /
			(((((b1*r+b2)*r+b3)*r+b4)*r+b5)*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// DensityAt estimates the probability density of the sample's underlying
// distribution at its ϕ-quantile using a finite-difference of the empirical
// quantile function: f(p_ϕ) ≈ 2h / (Q(ϕ+h) − Q(ϕ−h)). It is used to
// instantiate the Appendix A error bound. The bandwidth h adapts to the
// sample size. Returns +Inf when the local quantile spread is zero (point
// mass), and panics on empty data.
func DensityAt(data []float64, phi float64) float64 {
	if len(data) == 0 {
		panic("stats: DensityAt of empty data")
	}
	s := append([]float64(nil), data...)
	sort.Float64s(s)
	n := len(s)
	// Bandwidth ~ n^(-1/3) balances bias and variance of the finite
	// difference, clamped so both evaluation points stay inside (0, 1].
	h := math.Pow(float64(n), -1.0/3.0)
	if edge := 0.5 * math.Min(phi, 1-phi); edge > 0 && h > edge {
		h = edge
	}
	if h < 1.0/float64(n) {
		h = 1.0 / float64(n)
	}
	lo := math.Max(phi-h, 1.0/float64(n))
	hi := math.Min(phi+h, 1)
	qlo := s[CeilRank(lo, n)-1]
	qhi := s[CeilRank(hi, n)-1]
	if qhi <= qlo {
		return math.Inf(1)
	}
	return (hi - lo) / (qhi - qlo)
}

// CLTErrorBound computes the Appendix A bound on |ya − ye| at confidence
// 1−alpha for n sub-windows of m elements each, for the ϕ-quantile of a
// distribution with density fPhi at that quantile:
//
//	2·Φ⁻¹(1−α/2)·√(ϕ(1−ϕ)) / (√(n·m)·f(p_ϕ))
//
// It returns 0 when fPhi is +Inf (point mass: the estimate is exact).
func CLTErrorBound(phi float64, n, m int, fPhi, alpha float64) float64 {
	if n <= 0 || m <= 0 {
		panic("stats: CLTErrorBound requires positive n, m")
	}
	if math.IsInf(fPhi, 1) {
		return 0
	}
	z := NormalQuantile(1 - alpha/2)
	return 2 * z * math.Sqrt(phi*(1-phi)) / (math.Sqrt(float64(n)*float64(m)) * fPhi)
}
