package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCeilRank(t *testing.T) {
	cases := []struct {
		phi  float64
		n    int
		want int
	}{
		{0.5, 100, 50},
		{0.5, 101, 51},
		{0.999, 1000, 999},
		{0.999, 100, 100},
		{1.0, 10, 10},
		{0.0001, 10, 1},
		{0.99, 100000, 99000},
	}
	for _, c := range cases {
		if got := CeilRank(c.phi, c.n); got != c.want {
			t.Errorf("CeilRank(%v, %d) = %d, want %d", c.phi, c.n, got, c.want)
		}
	}
}

func TestCeilRankPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CeilRank(0.5, 0) did not panic")
		}
	}()
	CeilRank(0.5, 0)
}

func TestQuantileBasics(t *testing.T) {
	data := []float64{9, 1, 5, 3, 7}
	if got := Quantile(data, 0.5); got != 5 {
		t.Fatalf("Quantile(0.5) = %v, want 5", got)
	}
	if got := Quantile(data, 1.0); got != 9 {
		t.Fatalf("Quantile(1.0) = %v, want 9", got)
	}
	if got := Quantile(data, 0.01); got != 1 {
		t.Fatalf("Quantile(0.01) = %v, want 1", got)
	}
	// input untouched
	if data[0] != 9 {
		t.Fatal("Quantile modified its input")
	}
}

func TestQuantilesMatchesQuantile(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]float64, 1000)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	phis := []float64{0.1, 0.5, 0.9, 0.99}
	got := Quantiles(data, phis)
	for i, phi := range phis {
		if want := Quantile(data, phi); got[i] != want {
			t.Errorf("Quantiles[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestQuantileSorted(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	if got := QuantileSorted(s, 0.6); got != 3 {
		t.Fatalf("QuantileSorted = %v, want 3", got)
	}
}

func TestMeanVarStd(t *testing.T) {
	data := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(data); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	// sample variance with n-1: sum sq dev = 32, /7
	if got, want := Variance(data), 32.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
	if got := StdDev(data); math.Abs(got-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Fatalf("StdDev = %v", got)
	}
	if Variance([]float64{1}) != 0 {
		t.Fatal("Variance of singleton != 0")
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("RelativeError = %v, want 0.1", got)
	}
	if got := RelativeError(90, 100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("RelativeError = %v, want 0.1", got)
	}
	if got := RelativeError(0, 0); got != 0 {
		t.Fatalf("RelativeError(0,0) = %v, want 0", got)
	}
	if got := RelativeError(1, 0); !math.IsInf(got, 1) {
		t.Fatalf("RelativeError(1,0) = %v, want +Inf", got)
	}
	if got := RelativeError(-90, -100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("RelativeError(-90,-100) = %v, want 0.1", got)
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{1, 0.8413447460685429},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	for _, p := range []float64{1e-9, 1e-4, 0.01, 0.025, 0.3, 0.5, 0.7, 0.975, 0.99, 0.9999, 1 - 1e-9} {
		x := NormalQuantile(p)
		if got := NormalCDF(x); math.Abs(got-p) > 1e-12 {
			t.Errorf("NormalCDF(NormalQuantile(%v)) = %v", p, got)
		}
	}
	if got := NormalQuantile(0.975); math.Abs(got-1.959963984540054) > 1e-9 {
		t.Errorf("NormalQuantile(0.975) = %v", got)
	}
}

func TestNormalQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormalQuantile(%v) did not panic", p)
				}
			}()
			NormalQuantile(p)
		}()
	}
}

func TestDensityAtNormal(t *testing.T) {
	// For N(0,1), density at the median is 1/sqrt(2π) ≈ 0.3989.
	rng := rand.New(rand.NewSource(5))
	data := make([]float64, 200000)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	got := DensityAt(data, 0.5)
	want := 1 / math.Sqrt(2*math.Pi)
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("DensityAt(0.5) = %v, want ≈ %v", got, want)
	}
}

func TestDensityAtPointMass(t *testing.T) {
	data := make([]float64, 100)
	for i := range data {
		data[i] = 7
	}
	if got := DensityAt(data, 0.5); !math.IsInf(got, 1) {
		t.Fatalf("DensityAt point mass = %v, want +Inf", got)
	}
}

func TestCLTErrorBound(t *testing.T) {
	// Bound shrinks like 1/sqrt(nm) and is 0 for point mass.
	b1 := CLTErrorBound(0.5, 10, 1000, 0.4, 0.05)
	b2 := CLTErrorBound(0.5, 40, 1000, 0.4, 0.05)
	if math.Abs(b1/b2-2) > 1e-9 {
		t.Fatalf("bound scaling: b1=%v b2=%v ratio=%v want 2", b1, b2, b1/b2)
	}
	if got := CLTErrorBound(0.5, 10, 1000, math.Inf(1), 0.05); got != 0 {
		t.Fatalf("bound with infinite density = %v, want 0", got)
	}
	// Hand computation: 2*1.96*sqrt(0.25)/(sqrt(10000)*0.4)
	want := 2 * NormalQuantile(0.975) * 0.5 / (100 * 0.4)
	if math.Abs(b1-want) > 1e-12 {
		t.Fatalf("bound = %v, want %v", b1, want)
	}
}

func TestCLTErrorBoundPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CLTErrorBound with n=0 did not panic")
		}
	}()
	CLTErrorBound(0.5, 0, 10, 0.4, 0.05)
}

func TestCLTBoundCoversObservedError(t *testing.T) {
	// Empirically: with i.i.d. normal data, |mean of sub-window medians −
	// window median| should fall inside the 95% bound nearly always.
	rng := rand.New(rand.NewSource(11))
	const n, m = 20, 2000
	misses := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		window := make([]float64, 0, n*m)
		var subMedians []float64
		for i := 0; i < n; i++ {
			sub := make([]float64, m)
			for j := range sub {
				sub[j] = 1e6 + 5e4*rng.NormFloat64()
			}
			subMedians = append(subMedians, Quantile(sub, 0.5))
			window = append(window, sub...)
		}
		ya := Mean(subMedians)
		ye := Quantile(window, 0.5)
		f := DensityAt(window, 0.5)
		eb := CLTErrorBound(0.5, n, m, f, 0.05)
		if math.Abs(ya-ye) > eb {
			misses++
		}
	}
	if misses > trials/10 {
		t.Fatalf("CLT bound missed %d/%d trials", misses, trials)
	}
}

func TestMannWhitneyDetectsShift(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, 50)
	y := make([]float64, 50)
	for i := range x {
		x[i] = 10 + rng.NormFloat64() // clearly larger
		y[i] = rng.NormFloat64()
	}
	res := MannWhitney(x, y)
	if res.PValue > 1e-6 {
		t.Fatalf("p-value for obvious shift = %v, want tiny", res.PValue)
	}
	if !StochasticallyLarger(x, y, 0.05) {
		t.Fatal("StochasticallyLarger = false for obvious shift")
	}
	// Reverse direction: y vs x should NOT be flagged.
	if StochasticallyLarger(y, x, 0.05) {
		t.Fatal("StochasticallyLarger flagged the smaller sample")
	}
}

func TestMannWhitneyNullDistribution(t *testing.T) {
	// Same-distribution samples: rejection rate at alpha=0.05 should be
	// near 5%.
	rng := rand.New(rand.NewSource(10))
	rejections := 0
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		x := make([]float64, 40)
		y := make([]float64, 40)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		if StochasticallyLarger(x, y, 0.05) {
			rejections++
		}
	}
	rate := float64(rejections) / trials
	if rate > 0.10 {
		t.Fatalf("null rejection rate = %v, want ≈ 0.05", rate)
	}
}

func TestMannWhitneyTies(t *testing.T) {
	// All-equal samples must not be flagged and must not NaN.
	x := []float64{5, 5, 5, 5}
	y := []float64{5, 5, 5, 5}
	res := MannWhitney(x, y)
	if res.PValue != 1 {
		t.Fatalf("all-ties p-value = %v, want 1", res.PValue)
	}
	if math.IsNaN(res.Z) {
		t.Fatal("Z is NaN for all-ties input")
	}
}

func TestMannWhitneyEmpty(t *testing.T) {
	if got := MannWhitney(nil, []float64{1}).PValue; got != 1 {
		t.Fatalf("empty x p-value = %v, want 1", got)
	}
	if got := MannWhitney([]float64{1}, nil).PValue; got != 1 {
		t.Fatalf("empty y p-value = %v, want 1", got)
	}
}

func TestErrorAccumulator(t *testing.T) {
	var acc ErrorAccumulator
	acc.Observe(110, 100, 52000, 50000, 100000, true)
	acc.Observe(100, 100, 50000, 50000, 100000, true)
	if got := acc.Evaluations(); got != 2 {
		t.Fatalf("Evaluations = %d, want 2", got)
	}
	if got := acc.AvgRelErrPct(); math.Abs(got-5) > 1e-9 {
		t.Fatalf("AvgRelErrPct = %v, want 5", got)
	}
	if got := acc.AvgRankErr(); math.Abs(got-0.01) > 1e-12 {
		t.Fatalf("AvgRankErr = %v, want 0.01", got)
	}
	if got := acc.MaxRelErrPct(); math.Abs(got-10) > 1e-9 {
		t.Fatalf("MaxRelErrPct = %v, want 10", got)
	}
	if got := acc.MaxRankErr(); math.Abs(got-0.02) > 1e-12 {
		t.Fatalf("MaxRankErr = %v, want 0.02", got)
	}
}

func TestErrorAccumulatorInfiniteExcluded(t *testing.T) {
	var acc ErrorAccumulator
	acc.Observe(1, 0, 0, 0, 0, false) // infinite relative error
	acc.Observe(105, 100, 0, 0, 0, false)
	if got := acc.AvgRelErrPct(); math.Abs(got-5) > 1e-9 {
		t.Fatalf("AvgRelErrPct = %v, want 5 (inf excluded)", got)
	}
}

func TestErrorAccumulatorEmpty(t *testing.T) {
	var acc ErrorAccumulator
	if acc.AvgRelErrPct() != 0 || acc.AvgRankErr() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
}

func TestRankOf(t *testing.T) {
	sorted := []float64{1, 3, 3, 5, 9}
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0}, {1, 1}, {2, 1}, {3, 3}, {5, 4}, {9, 5}, {10, 5},
	}
	for _, c := range cases {
		if got := RankOf(sorted, c.v); got != c.want {
			t.Errorf("RankOf(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

// Property: Quantile matches direct index into sorted copy for random phi.
func TestQuickQuantileDefinition(t *testing.T) {
	f := func(raw []int16, phiSeed uint8) bool {
		if len(raw) == 0 {
			return true
		}
		phi := (float64(phiSeed) + 1) / 257 // in (0,1)
		data := make([]float64, len(raw))
		for i, r := range raw {
			data[i] = float64(r)
		}
		got := Quantile(data, phi)
		s := append([]float64(nil), data...)
		sort.Float64s(s)
		want := s[CeilRank(phi, len(s))-1]
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Mann–Whitney p-value is always in [0, 1].
func TestQuickMannWhitneyPValueRange(t *testing.T) {
	f := func(xr, yr []int8) bool {
		x := make([]float64, len(xr))
		y := make([]float64, len(yr))
		for i, v := range xr {
			x[i] = float64(v)
		}
		for i, v := range yr {
			y[i] = float64(v)
		}
		p := MannWhitney(x, y).PValue
		return p >= 0 && p <= 1 && !math.IsNaN(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
