// Package compress implements QLOVE's value compression (§3.1): zeroing out
// insignificant low-order digits so that streamed values collapse onto a
// small set of recurring numbers, plus a compact binary encoding for
// {value, count} frequency summaries. Keeping the three most significant
// digits bounds the quantization relative error below 1% while greatly
// increasing data redundancy, which shrinks the red-black-tree state and,
// per the paper, lowers space usage by ~5x.
package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Quantizer rounds values to a fixed number of significant decimal digits.
// The zero value is invalid; use NewQuantizer. Digits <= 0 means "identity"
// (no quantization).
type Quantizer struct {
	digits int
}

// NewQuantizer returns a Quantizer keeping the given number of most
// significant decimal digits. The paper uses three.
func NewQuantizer(digits int) Quantizer { return Quantizer{digits: digits} }

// Digits returns the configured number of significant digits (0 = identity).
func (q Quantizer) Digits() int { return q.digits }

// pow10 holds powers of ten for the fast decade lookup, computed once via
// math.Pow (repeated multiplication would accumulate rounding drift).
var pow10 = func() [numDecades]float64 {
	var t [numDecades]float64
	for i := range t {
		t[i] = math.Pow(10, float64(i+minDecade))
	}
	return t
}()

const (
	numDecades = 161 // 10^-80 .. 10^80
	minDecade  = -80 // exponent of pow10[0]
)

// decadeOf returns the index i such that pow10[i] <= mag < pow10[i+1].
// The decade is derived from the IEEE-754 binary exponent in O(1):
// floor(e2·log10(2)) approximated by the classic (e2·1233)>>12 shift is
// within one of the true decade, and a bounded correction loop (at most
// one step in practice) lands it exactly — no binary search, no Log10 on
// the hot insert path. mag must be positive and within table range.
func decadeOf(mag float64) int {
	e2 := int((math.Float64bits(mag)>>52)&0x7ff) - 1023
	i := (e2*1233)>>12 - minDecade
	if i < 0 {
		i = 0
	} else if i >= numDecades {
		i = numDecades - 1
	}
	for i+1 < numDecades && pow10[i+1] <= mag {
		i++
	}
	for i > 0 && pow10[i] > mag {
		i--
	}
	return i
}

// Quantize rounds v to the configured significant digits. Zero, NaN,
// infinities and magnitudes outside [1e-80, 1e80] pass through unchanged;
// negative values quantize by magnitude.
func (q Quantizer) Quantize(v float64) float64 {
	if q.digits <= 0 || v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return v
	}
	mag := math.Abs(v)
	if mag < pow10[0] || mag >= pow10[numDecades-1] {
		return v
	}
	exp := decadeOf(mag) + minDecade
	scaleIdx := (q.digits - 1) - exp - minDecade
	var out float64
	if scaleIdx >= 0 && scaleIdx < numDecades {
		scale := pow10[scaleIdx]
		out = math.Round(mag*scale) / scale
	} else {
		// Degenerate digit counts fall back to the slow path.
		scale := math.Pow(10, float64(q.digits-1-exp))
		out = math.Round(mag*scale) / scale
	}
	// Rounding up can gain a digit (999.6 -> 1000); that is still exactly
	// representable at this precision, so no correction is needed.
	if v < 0 {
		return -out
	}
	return out
}

// AppendQuantized appends Quantize(v) for every v in src to dst and
// returns the extended slice. Results are bit-identical to per-element
// Quantize calls; the batch form exists for the ingestion hot path, where
// it caches the last decade hit. Telemetry values cluster heavily within
// one order of magnitude, so most elements skip the binary search over the
// power-of-ten table and reuse the previous element's scale directly.
func (q Quantizer) AppendQuantized(dst, src []float64) []float64 {
	if q.digits <= 0 {
		return append(dst, src...)
	}
	ci := -1 // cached decade index; pow10[ci] <= previous mag < pow10[ci+1]
	var scale float64
	for _, v := range src {
		if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			dst = append(dst, v)
			continue
		}
		mag := math.Abs(v)
		if mag < pow10[0] || mag >= pow10[numDecades-1] {
			dst = append(dst, v)
			continue
		}
		if ci < 0 || mag < pow10[ci] || mag >= pow10[ci+1] {
			// The range guard above excludes the top decade, so ci+1 is
			// always a valid table index.
			ci = decadeOf(mag)
			exp := ci + minDecade
			scaleIdx := (q.digits - 1) - exp - minDecade
			if scaleIdx >= 0 && scaleIdx < numDecades {
				scale = pow10[scaleIdx]
			} else {
				// Degenerate digit counts fall back to the slow path.
				scale = math.Pow(10, float64(q.digits-1-exp))
			}
		}
		out := math.Round(mag*scale) / scale
		if v < 0 {
			out = -out
		}
		dst = append(dst, out)
	}
	return dst
}

// MaxRelativeError returns the worst-case relative error introduced by the
// quantizer: half a unit in the last kept digit, i.e. 0.5·10^(1-digits).
// Identity quantizers return 0.
func (q Quantizer) MaxRelativeError() float64 {
	if q.digits <= 0 {
		return 0
	}
	return 0.5 * math.Pow(10, float64(1-q.digits))
}

// DropLowDigits zeroes the d lowest decimal digits of v (truncation toward
// zero), used by the §5.4 data-redundancy study to derive low-precision
// datasets (e.g. 100us precision from 1us inputs with d=2).
func DropLowDigits(v float64, d int) float64 {
	if d <= 0 {
		return v
	}
	p := math.Pow(10, float64(d))
	return math.Trunc(v/p) * p
}

// Entry is one {value, count} pair of a frequency summary.
type Entry struct {
	Value float64
	Count uint64
}

// EncodeSummary serializes entries into a compact byte stream: values are
// delta-encoded as scaled integers (varint zig-zag) and counts as varints.
// Entries must be sorted by ascending Value. The scale is chosen as the
// largest power of ten (up to 1e6) under which all values round-trip
// exactly; non-integral values after scaling fall back to raw IEEE bits.
func EncodeSummary(entries []Entry) []byte {
	buf := make([]byte, 0, 16+len(entries)*4)
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	if len(entries) == 0 {
		return buf
	}
	scale := chooseScale(entries)
	buf = binary.AppendUvarint(buf, uint64(scale))
	if scale == 0 {
		// Raw fallback: IEEE-754 bits, no delta coding of values.
		for _, e := range entries {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Value))
			buf = binary.AppendUvarint(buf, e.Count)
		}
		return buf
	}
	prev := int64(0)
	for _, e := range entries {
		iv := int64(math.Round(e.Value * float64(scale)))
		buf = binary.AppendVarint(buf, iv-prev)
		prev = iv
		buf = binary.AppendUvarint(buf, e.Count)
	}
	return buf
}

// chooseScale returns the smallest power-of-ten multiplier (1..1e6) that
// makes every value integral, or 0 when none does.
func chooseScale(entries []Entry) int64 {
	for scale := int64(1); scale <= 1_000_000; scale *= 10 {
		ok := true
		for _, e := range entries {
			sv := e.Value * float64(scale)
			if sv != math.Trunc(sv) || math.Abs(sv) > float64(math.MaxInt64)/2 {
				ok = false
				break
			}
		}
		if ok {
			return scale
		}
	}
	return 0
}

var errCorrupt = errors.New("compress: corrupt summary encoding")

// DecodeSummary parses a stream produced by EncodeSummary.
func DecodeSummary(buf []byte) ([]Entry, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, errCorrupt
	}
	buf = buf[sz:]
	if n == 0 {
		return []Entry{}, nil
	}
	if n > uint64(len(buf)) { // each entry needs >= 1 byte
		return nil, fmt.Errorf("compress: implausible entry count %d", n)
	}
	scaleU, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, errCorrupt
	}
	buf = buf[sz:]
	scale := int64(scaleU)
	entries := make([]Entry, 0, n)
	if scale == 0 {
		for i := uint64(0); i < n; i++ {
			if len(buf) < 8 {
				return nil, errCorrupt
			}
			v := math.Float64frombits(binary.LittleEndian.Uint64(buf))
			buf = buf[8:]
			c, sz := binary.Uvarint(buf)
			if sz <= 0 {
				return nil, errCorrupt
			}
			buf = buf[sz:]
			entries = append(entries, Entry{Value: v, Count: c})
		}
		return entries, nil
	}
	prev := int64(0)
	for i := uint64(0); i < n; i++ {
		d, sz := binary.Varint(buf)
		if sz <= 0 {
			return nil, errCorrupt
		}
		buf = buf[sz:]
		prev += d
		c, sz := binary.Uvarint(buf)
		if sz <= 0 {
			return nil, errCorrupt
		}
		buf = buf[sz:]
		entries = append(entries, Entry{Value: float64(prev) / float64(scale), Count: c})
	}
	return entries, nil
}
