package compress

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQuantizeThreeDigits(t *testing.T) {
	q := NewQuantizer(3)
	cases := []struct{ in, want float64 }{
		{1247, 1250},
		{798, 798},
		{74265, 74300},
		{1874, 1870},
		{0.0012345, 0.00123},
		{999.6, 1000},
		{1, 1},
		{0, 0},
		{-1247, -1250},
		{123456789, 123000000},
	}
	for _, c := range cases {
		if got := q.Quantize(c.in); math.Abs(got-c.want) > math.Abs(c.want)*1e-12 {
			t.Errorf("Quantize(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestQuantizeIdentity(t *testing.T) {
	q := NewQuantizer(0)
	for _, v := range []float64{1247.89, -3.5, 0} {
		if got := q.Quantize(v); got != v {
			t.Errorf("identity Quantize(%v) = %v", v, got)
		}
	}
	if q.MaxRelativeError() != 0 {
		t.Fatal("identity quantizer should report 0 max error")
	}
}

func TestQuantizeSpecials(t *testing.T) {
	q := NewQuantizer(3)
	if !math.IsNaN(q.Quantize(math.NaN())) {
		t.Fatal("NaN should pass through")
	}
	if !math.IsInf(q.Quantize(math.Inf(1)), 1) {
		t.Fatal("+Inf should pass through")
	}
	if !math.IsInf(q.Quantize(math.Inf(-1)), -1) {
		t.Fatal("-Inf should pass through")
	}
}

func TestMaxRelativeError(t *testing.T) {
	if got := NewQuantizer(3).MaxRelativeError(); math.Abs(got-0.005) > 1e-15 {
		t.Fatalf("MaxRelativeError(3) = %v, want 0.005", got)
	}
	if got := NewQuantizer(1).MaxRelativeError(); math.Abs(got-0.5) > 1e-15 {
		t.Fatalf("MaxRelativeError(1) = %v, want 0.5", got)
	}
}

// Property from the paper: 3 significant digits keeps relative error < 1%.
func TestQuickQuantizeErrorBound(t *testing.T) {
	q := NewQuantizer(3)
	f := func(mantissa uint32, expSeed int8) bool {
		exp := float64(expSeed % 12)
		v := (1 + float64(mantissa)/float64(math.MaxUint32)*9) * math.Pow(10, exp)
		got := q.Quantize(v)
		rel := math.Abs(got-v) / v
		return rel <= q.MaxRelativeError()+1e-12 && rel < 0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantization is idempotent.
func TestQuickQuantizeIdempotent(t *testing.T) {
	q := NewQuantizer(3)
	f := func(raw uint32) bool {
		v := float64(raw%10_000_000) + 1
		once := q.Quantize(v)
		return q.Quantize(once) == once
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantization is monotone (order preserving).
func TestQuickQuantizeMonotone(t *testing.T) {
	q := NewQuantizer(3)
	f := func(a, b uint32) bool {
		x, y := float64(a%1_000_000)+1, float64(b%1_000_000)+1
		if x > y {
			x, y = y, x
		}
		return q.Quantize(x) <= q.Quantize(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestDropLowDigits(t *testing.T) {
	cases := []struct {
		v    float64
		d    int
		want float64
	}{
		{1247, 2, 1200},
		{1299, 2, 1200},
		{74265, 2, 74200},
		{99, 2, 0},
		{1247, 0, 1247},
		{-1247, 2, -1200},
	}
	for _, c := range cases {
		if got := DropLowDigits(c.v, c.d); got != c.want {
			t.Errorf("DropLowDigits(%v, %d) = %v, want %v", c.v, c.d, got, c.want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	entries := []Entry{
		{Value: 100, Count: 5000},
		{Value: 101, Count: 3},
		{Value: 798, Count: 12345},
		{Value: 74300, Count: 1},
	}
	buf := EncodeSummary(entries)
	got, err := DecodeSummary(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(entries))
	}
	for i := range entries {
		if got[i] != entries[i] {
			t.Fatalf("entry %d: got %+v, want %+v", i, got[i], entries[i])
		}
	}
}

func TestEncodeDecodeFractionalValues(t *testing.T) {
	entries := []Entry{
		{Value: 0.125, Count: 2}, // not scalable by powers of ten -> raw path
		{Value: 1.333333333333, Count: 7},
	}
	buf := EncodeSummary(entries)
	got, err := DecodeSummary(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range entries {
		if got[i] != entries[i] {
			t.Fatalf("entry %d: got %+v, want %+v", i, got[i], entries[i])
		}
	}
}

func TestEncodeDecodeScaledDecimals(t *testing.T) {
	entries := []Entry{
		{Value: 7.98, Count: 9},
		{Value: 12.47, Count: 1},
	}
	buf := EncodeSummary(entries)
	got, err := DecodeSummary(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range entries {
		if math.Abs(got[i].Value-entries[i].Value) > 1e-12 || got[i].Count != entries[i].Count {
			t.Fatalf("entry %d: got %+v, want %+v", i, got[i], entries[i])
		}
	}
}

func TestEncodeEmpty(t *testing.T) {
	buf := EncodeSummary(nil)
	got, err := DecodeSummary(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("decoded %d entries from empty summary", len(got))
	}
}

func TestDecodeCorrupt(t *testing.T) {
	for _, buf := range [][]byte{
		{},
		{0xFF}, // truncated uvarint
		{0x05}, // claims 5 entries, no data
		{0x02, 0x01, 0x02},
	} {
		if _, err := DecodeSummary(buf); err == nil {
			t.Errorf("DecodeSummary(%v) did not error", buf)
		}
	}
}

func TestCompressionBeatsRaw(t *testing.T) {
	// Telemetry-like integer latencies: encoding must be much smaller than
	// 16 bytes/entry raw representation.
	var entries []Entry
	v := 100.0
	for i := 0; i < 1000; i++ {
		entries = append(entries, Entry{Value: v, Count: uint64(1 + i%50)})
		v += float64(1 + i%10)
	}
	buf := EncodeSummary(entries)
	raw := len(entries) * 16
	if len(buf)*4 > raw {
		t.Fatalf("encoded %d bytes for raw %d bytes: want >= 4x compression", len(buf), raw)
	}
}

// Property: round trip preserves integer-valued summaries exactly.
func TestQuickRoundTrip(t *testing.T) {
	f := func(vals []uint32, counts []uint16) bool {
		n := len(vals)
		if len(counts) < n {
			n = len(counts)
		}
		seen := map[float64]bool{}
		var entries []Entry
		for i := 0; i < n; i++ {
			v := float64(vals[i] % 1_000_000)
			if seen[v] {
				continue
			}
			seen[v] = true
			entries = append(entries, Entry{Value: v, Count: uint64(counts[i]) + 1})
		}
		// sort ascending as the contract requires
		for i := 1; i < len(entries); i++ {
			for j := i; j > 0 && entries[j].Value < entries[j-1].Value; j-- {
				entries[j], entries[j-1] = entries[j-1], entries[j]
			}
		}
		buf := EncodeSummary(entries)
		got, err := DecodeSummary(buf)
		if err != nil || len(got) != len(entries) {
			return false
		}
		for i := range entries {
			if got[i] != entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
