package stream

import (
	"fmt"
	"time"
)

// TimedPolicy is the slice of the Policy contract a TIME-driven front end
// needs beyond count-based ingestion: force-sealing the in-flight
// sub-window at wall-clock period boundaries (regardless of how many
// elements it holds), plus the two state clocks the timed window ring and
// delta exports key off. Only the QLOVE operator implements it —
// count-based baselines have no notion of a partially filled sub-window
// being "done".
type TimedPolicy interface {
	Policy
	// EndPeriod force-seals the in-flight sub-window; an empty one is
	// skipped (no summary, no SealGen advance).
	EndPeriod()
	// SubWindowCount returns the number of resident sub-window summaries.
	SubWindowCount() int
	// SealGen returns the monotonic seal-generation clock: how many
	// summaries have been sealed since construction (or the last reset).
	SealGen() uint64
}

// TimedPusher drives a TimedPolicy through the time-defined window
// protocol — the paper's §2 example query shape "evaluate every one minute
// (window period) for the elements seen last one hour (window size)".
// Sub-windows are period-aligned wall-clock intervals whose populations
// vary with traffic; QLOVE's Level-2 estimator handles the variable
// sub-window sizes unchanged (the Appendix A argument does not require
// equal m).
//
// It is the timed analogue of Pusher: the per-stream state machine shared
// by the public TimedMonitor (one anonymous stream) and every timed key
// owned by an Engine shard. Callers feed timestamped elements (or batches)
// and wall-clock ticks; every boundary crossing seals the in-flight
// sub-window, expires the sub-windows that left the window, and — once a
// full window has elapsed — produces an Evaluation.
//
// Timestamps must be non-decreasing across Push/PushBatch/Flush calls.
//
// The seal ring counts SUMMARIES per timed period, not a produced flag: a
// timed period whose traffic exceeds the policy's count Spec.Period seals
// more than one summary (the operator's count-based auto-seal fires
// mid-period), and expiry must later drop exactly that many, or the
// overflow summaries would stay resident forever and the window would
// silently grow.
type TimedPusher struct {
	policy TimedPolicy
	size   time.Duration
	period time.Duration

	started bool
	// boundary is the end of the current in-flight timed sub-window.
	boundary time.Time
	// sealed counts closed timed periods; the window spans size/period of
	// them.
	sealed int
	// counts is a ring over the last size/period timed periods recording
	// how many summaries each sealed (0 for an empty period, >1 when the
	// count-based auto-seal fired mid-period), so time-based expiry drops
	// exactly the summaries that left the window.
	counts []int
	// lastGen is the policy's SealGen at the most recent boundary; the
	// difference at the next boundary is that period's summary count.
	lastGen uint64
	evals   int
}

// NewTimedPusher wraps a policy for time-driven use. size must be a
// positive multiple of period, and the policy must support time-driven
// sealing (implement TimedPolicy — QLOVE does; count-based baselines do
// not).
func NewTimedPusher(p Policy, size, period time.Duration) (*TimedPusher, error) {
	if p == nil {
		return nil, fmt.Errorf("stream: nil policy")
	}
	tp, ok := p.(TimedPolicy)
	if !ok {
		return nil, fmt.Errorf("stream: policy %q does not support time-driven sealing", p.Name())
	}
	if period <= 0 || size < period || size%period != 0 {
		return nil, fmt.Errorf("stream: timed window %v must be a positive multiple of period %v", size, period)
	}
	return &TimedPusher{
		policy:  tp,
		size:    size,
		period:  period,
		counts:  make([]int, int(size/period)),
		lastGen: tp.SealGen(),
	}, nil
}

// start aligns the first boundary to the period grid at the first event.
func (k *TimedPusher) start(t time.Time) {
	if !k.started {
		k.started = true
		k.boundary = t.Truncate(k.period).Add(k.period)
	}
}

// Push feeds one timestamped element. When t crosses one or more period
// boundaries, the in-flight sub-window is sealed, expired sub-windows are
// dropped, and — once a full window has elapsed — the evaluation of the
// most recent crossing is returned.
func (k *TimedPusher) Push(v float64, t time.Time) (Evaluation, bool) {
	k.start(t)
	ev, ready := k.advanceTo(t, nil)
	k.policy.Observe(v)
	return ev, ready
}

// PushBatch feeds a run of elements sharing one arrival timestamp — the
// natural shape of real telemetry, where a source reports a chunk of
// measurements at once. It is observationally identical to calling
// Push(v, t) for each element with the same t (boundary crossings are
// processed once, before any element, exactly as repeated Pushes would),
// but delivers the run through the policy's amortized ObserveBatch path.
// Every evaluation produced by the crossings is handed to emit (nil emit
// discards all but the returned last one); an empty batch degenerates to
// Flush(t, emit).
func (k *TimedPusher) PushBatch(t time.Time, vs []float64, emit func(Evaluation)) (Evaluation, bool) {
	if len(vs) == 0 {
		return k.Flush(t, emit)
	}
	k.start(t)
	ev, ready := k.advanceTo(t, emit)
	k.policy.ObserveBatch(vs)
	return ev, ready
}

// Flush advances wall-clock time without an element (e.g. from a ticker),
// sealing, expiring and evaluating as needed. Every evaluation produced is
// handed to emit; the most recent one is also returned. Before the first
// element, Flush is a no-op (there is no period grid to align to yet).
func (k *TimedPusher) Flush(t time.Time, emit func(Evaluation)) (Evaluation, bool) {
	if !k.started {
		return Evaluation{}, false
	}
	return k.advanceTo(t, emit)
}

// advanceTo processes every period boundary at or before t: expire the
// summaries of the period sliding out of the window, seal the in-flight
// one, and evaluate once a full window has been seen.
func (k *TimedPusher) advanceTo(t time.Time, emit func(Evaluation)) (Evaluation, bool) {
	var last Evaluation
	ready := false
	sw := len(k.counts)
	for !t.Before(k.boundary) {
		// The ring slot for this period currently holds the seal count of
		// the period that just slid out of the window; expire its summaries
		// before sealing the new one.
		slot := k.sealed % sw
		if k.sealed >= sw {
			for i := 0; i < k.counts[slot]; i++ {
				k.policy.Expire(nil)
			}
		}
		k.policy.EndPeriod() // no-op for an empty period
		g := k.policy.SealGen()
		k.counts[slot] = int(g - k.lastGen)
		k.lastGen = g
		k.sealed++
		if k.sealed >= sw && k.policy.SubWindowCount() > 0 {
			ev := Evaluation{Index: k.evals, Estimates: k.policy.Result()}
			k.evals++
			last, ready = ev, true
			if emit != nil {
				emit(ev)
			}
		}
		k.boundary = k.boundary.Add(k.period)
	}
	return last, ready
}

// SubWindows returns how many timed sub-windows one window spans.
func (k *TimedPusher) SubWindows() int { return len(k.counts) }

// Evaluations returns the number of results produced so far.
func (k *TimedPusher) Evaluations() int { return k.evals }

// Policy returns the wrapped policy (e.g. to snapshot it or recycle it
// through a pool).
func (k *TimedPusher) Policy() Policy { return k.policy }

// Size returns the timed window span.
func (k *TimedPusher) Size() time.Duration { return k.size }

// Period returns the timed evaluation period.
func (k *TimedPusher) Period() time.Duration { return k.period }
