package stream

import (
	"fmt"

	"repro/internal/window"
)

// Pusher drives one policy through the count-window protocol from pushed
// elements rather than a pre-materialized slice: callers hand it elements
// (or batches) as they arrive and receive an Evaluation every window period
// once the first full window has been observed. It is the per-stream state
// machine shared by the public Monitor (one anonymous stream) and every
// key owned by an Engine shard (map[key]*Pusher).
//
// The Pusher owns the replay buffer element-wise policies need to expire
// old elements (as the streaming engine does in Trill), so policies remain
// charged only for their operator state. Policies that declare — via the
// SummaryExpirer marker — that they ignore the Expire slice skip the
// O(window) ring entirely; with QLOVE that shrinks a monitored key from
// O(N) to O(operator state), the difference between thousands and millions
// of concurrently monitored keys.
type Pusher struct {
	policy Policy
	spec   window.Spec
	ring   []float64 // last Size elements; nil for summary-expiring policies
	expire []float64 // Period-sized replay scratch handed to Expire
	seen   int64     // total elements pushed
	evals  int
}

// NewPusher wraps a policy for push-based use under the window spec. The
// spec must match the one the policy was constructed with.
func NewPusher(p Policy, spec window.Spec) (*Pusher, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("stream: nil policy")
	}
	k := &Pusher{policy: p, spec: spec}
	if expireNeedsValues(p) {
		k.ring = make([]float64, spec.Size)
		k.expire = make([]float64, spec.Period)
	}
	return k, nil
}

// expireOldest replays the period that just left the window to the policy,
// reusing the pusher's scratch buffer. The policy contract already forbids
// retaining the Expire slice, so sharing one buffer across periods is safe.
// Summary-expiring policies are notified with a nil slice.
func (k *Pusher) expireOldest() {
	if k.ring == nil {
		k.policy.Expire(nil)
		return
	}
	start := int(k.seen-int64(k.spec.Size)) % len(k.ring)
	n := copy(k.expire, k.ring[start:])
	copy(k.expire[n:], k.ring[:k.spec.Period-n])
	k.policy.Expire(k.expire)
}

// atBoundary reports whether seen sits on a period boundary with at least
// one full window observed — the point where expiry (before new elements)
// and evaluation (after them) happen.
func (k *Pusher) atBoundary() bool {
	return k.seen >= int64(k.spec.Size) && k.seen%int64(k.spec.Period) == 0
}

// Push feeds one element. When the element completes a window period (and
// at least one full window has been seen), it returns the evaluation and
// true.
func (k *Pusher) Push(v float64) (Evaluation, bool) {
	// Expire the period that just left the window, one batch per period,
	// before the new period begins — mirroring Run's protocol.
	if k.atBoundary() {
		k.expireOldest()
	}
	if k.ring != nil {
		k.ring[int(k.seen)%len(k.ring)] = v
	}
	k.seen++
	k.policy.Observe(v)
	if k.atBoundary() {
		ev := Evaluation{Index: k.evals, Estimates: k.policy.Result()}
		k.evals++
		return ev, true
	}
	return Evaluation{}, false
}

// PushBatch feeds a run of elements through the policy's batch path,
// invoking emit for every evaluation produced along the way (nil emit
// discards them). It follows exactly the Push protocol — expire the
// departed period at each boundary, then observe, then evaluate — but
// amortizes ring maintenance into bulk copies and hands the policy
// period-aligned ObserveBatch chunks, so a caller draining an ingest queue
// pays none of Push's per-element bookkeeping.
func (k *Pusher) PushBatch(vs []float64, emit func(Evaluation)) {
	for len(vs) > 0 {
		if k.atBoundary() {
			k.expireOldest()
		}
		// Chunk to the next period boundary (chunks are ring-safe: one
		// period never exceeds the ring size).
		chunk := vs
		if room := k.spec.Period - int(k.seen%int64(k.spec.Period)); len(chunk) > room {
			chunk = chunk[:room]
		}
		if k.ring != nil {
			start := int(k.seen) % len(k.ring)
			n := copy(k.ring[start:], chunk)
			copy(k.ring, chunk[n:])
		}
		k.seen += int64(len(chunk))
		k.policy.ObserveBatch(chunk)
		if k.atBoundary() {
			ev := Evaluation{Index: k.evals, Estimates: k.policy.Result()}
			k.evals++
			if emit != nil {
				emit(ev)
			}
		}
		vs = vs[len(chunk):]
	}
}

// Seen returns the number of elements pushed so far.
func (k *Pusher) Seen() int64 { return k.seen }

// Evaluations returns the number of results produced so far.
func (k *Pusher) Evaluations() int { return k.evals }

// Policy returns the wrapped policy (e.g. to query SpaceUsage).
func (k *Pusher) Policy() Policy { return k.policy }

// Spec returns the window spec the pusher was built with.
func (k *Pusher) Spec() window.Spec { return k.spec }
