package stream

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/window"
)

func TestFromSlice(t *testing.T) {
	s := FromSlice([]float64{10, 20, 30})
	var times []int64
	var vals []float64
	for {
		ev, ok := s.Next()
		if !ok {
			break
		}
		times = append(times, ev.Time)
		vals = append(vals, ev.Payload)
	}
	if len(vals) != 3 || vals[0] != 10 || vals[2] != 30 {
		t.Fatalf("vals = %v", vals)
	}
	if times[0] != 0 || times[1] != 1 || times[2] != 2 {
		t.Fatalf("times = %v", times)
	}
	// Exhausted stream stays exhausted.
	if _, ok := s.Next(); ok {
		t.Fatal("stream yielded after exhaustion")
	}
}

func TestFromFuncBounded(t *testing.T) {
	n := 0.0
	s := FromFunc(func() float64 { n++; return n }, 5)
	got := Collect(s)
	if len(got) != 5 || got[4] != 5 {
		t.Fatalf("got %v", got)
	}
}

func TestFromFuncUnboundedWithTake(t *testing.T) {
	n := 0.0
	s := Take(FromFunc(func() float64 { n++; return n }, -1), 3)
	got := Collect(s)
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestWhere(t *testing.T) {
	// The paper's Qmonitor filters on errorCode != 0.
	type ev struct {
		errorCode int
		latency   float64
	}
	src := FromSlice([]ev{{0, 1}, {1, 2}, {2, 3}, {0, 4}})
	filtered := Where(src, func(e ev) bool { return e.errorCode != 0 })
	lat := Select(filtered, func(e ev) float64 { return e.latency })
	got := Collect(lat)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestSelectPreservesTime(t *testing.T) {
	s := Select(FromSlice([]float64{5, 6}), func(v float64) float64 { return v * 2 })
	ev, _ := s.Next()
	if ev.Time != 0 || ev.Payload != 10 {
		t.Fatalf("ev = %+v", ev)
	}
	ev, _ = s.Next()
	if ev.Time != 1 || ev.Payload != 12 {
		t.Fatalf("ev = %+v", ev)
	}
}

func TestAverageTumbling(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	got, err := RunTumbling(NewAverage(), 3, data)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 5}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestAverageSliding(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	got, err := RunSliding(NewAverage(), window.Spec{Size: 4, Period: 2}, data)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2.5, 4.5}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestRunSlidingRequiresDeaccumulate(t *testing.T) {
	op := NewAverage()
	op.Deaccumulate = nil
	if _, err := RunSliding(op, window.Spec{Size: 4, Period: 2}, make([]float64, 8)); err == nil {
		t.Fatal("missing Deaccumulate accepted for sliding window")
	}
	// Tumbling is fine without it.
	if _, err := RunSliding(op, window.Spec{Size: 2, Period: 2}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTumblingInvalidPeriod(t *testing.T) {
	if _, err := RunTumbling(NewAverage(), 0, nil); err == nil {
		t.Fatal("period 0 accepted")
	}
}

func TestAverageEmptyState(t *testing.T) {
	op := NewAverage()
	if got := op.ComputeResult(op.InitialState()); got != 0 {
		t.Fatalf("empty average = %v", got)
	}
}

// Property: sliding average equals brute-force mean of each window.
func TestQuickSlidingAverageMatchesBruteForce(t *testing.T) {
	f := func(raw []int8, periodSeed, mulSeed uint8) bool {
		p := int(periodSeed%8) + 1
		spec := window.Spec{Size: p * (int(mulSeed%4) + 1), Period: p}
		data := make([]float64, len(raw))
		for i, r := range raw {
			data[i] = float64(r)
		}
		got, err := RunSliding(NewAverage(), spec, data)
		if err != nil {
			return false
		}
		i := 0
		ok := true
		_ = spec.Iter(data, func(idx int, w []float64) {
			if math.Abs(got[idx]-stats.Mean(w)) > 1e-9 {
				ok = false
			}
			i++
		})
		return ok && i == len(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// --- Policy runner tests ---

// recordingPolicy tracks the exact Observe/Expire/Result sequence.
type recordingPolicy struct {
	observed []float64
	expired  [][]float64
	results  int
}

func (p *recordingPolicy) Name() string      { return "recording" }
func (p *recordingPolicy) Observe(v float64) { p.observed = append(p.observed, v) }

// ObserveBatch exercises the package-level fallback adapter.
func (p *recordingPolicy) ObserveBatch(vs []float64) { ObserveEach(p, vs) }
func (p *recordingPolicy) Expire(old []float64) {
	p.expired = append(p.expired, append([]float64(nil), old...))
}
func (p *recordingPolicy) Result() []float64 { p.results++; return []float64{0} }
func (p *recordingPolicy) SpaceUsage() int   { return len(p.observed) }

func TestRunProtocol(t *testing.T) {
	data := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	spec := window.Spec{Size: 4, Period: 2}
	p := &recordingPolicy{}
	evals, st, err := Run(p, spec, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) != 3 {
		t.Fatalf("evaluations = %d, want 3", len(evals))
	}
	if p.results != 3 {
		t.Fatalf("Result called %d times", p.results)
	}
	if len(p.observed) != 8 {
		t.Fatalf("observed %d elements", len(p.observed))
	}
	// Expire called twice with period batches [0,1] and [2,3].
	if len(p.expired) != 2 {
		t.Fatalf("expired %d batches", len(p.expired))
	}
	if p.expired[0][0] != 0 || p.expired[0][1] != 1 || p.expired[1][0] != 2 {
		t.Fatalf("expired = %v", p.expired)
	}
	if st.Elements != 8 || st.Evaluations != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MaxSpace != 8 {
		t.Fatalf("MaxSpace = %d", st.MaxSpace)
	}
}

func TestRunInvalidSpec(t *testing.T) {
	if _, _, err := Run(&recordingPolicy{}, window.Spec{Size: 3, Period: 2}, nil); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestRunShortData(t *testing.T) {
	p := &recordingPolicy{}
	evals, st, err := Run(p, window.Spec{Size: 10, Period: 5}, make([]float64, 9))
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) != 0 || st.Evaluations != 0 {
		t.Fatal("short data should produce no evaluations")
	}
}

func TestFeedMatchesRunProtocol(t *testing.T) {
	data := make([]float64, 100)
	spec := window.Spec{Size: 20, Period: 10}
	p1, p2 := &recordingPolicy{}, &recordingPolicy{}
	if _, _, err := Run(p1, spec, data); err != nil {
		t.Fatal(err)
	}
	if _, err := Feed(p2, spec, data); err != nil {
		t.Fatal(err)
	}
	if len(p1.observed) != len(p2.observed) || len(p1.expired) != len(p2.expired) || p1.results != p2.results {
		t.Fatal("Feed and Run drive policies differently")
	}
}

func TestThroughputMevS(t *testing.T) {
	st := RunStats{Elements: 2_000_000, Elapsed: 1e9} // 1 second
	if got := st.ThroughputMevS(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("throughput = %v, want 2", got)
	}
	if (RunStats{}).ThroughputMevS() != 0 {
		t.Fatal("zero-elapsed throughput should be 0")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	mk := func(spec window.Spec, phis []float64) (Policy, error) { return &recordingPolicy{}, nil }
	if err := r.Register("rec", mk); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("rec", mk); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	p, err := r.New("rec", window.Spec{Size: 2, Period: 1}, nil)
	if err != nil || p.Name() != "recording" {
		t.Fatalf("New: %v %v", p, err)
	}
	if _, err := r.New("nope", window.Spec{Size: 2, Period: 1}, nil); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
