package stream

import (
	"testing"
	"time"
)

// timedFakePolicy is a minimal TimedPolicy: it holds the in-flight element
// count, seals summaries (auto-sealing on a count threshold like QLOVE's
// Spec.Period does), and tracks residents so the test can watch the timed
// ring's expiry accounting exactly.
type timedFakePolicy struct {
	autoSeal int // count-based auto-seal threshold; 0 disables
	inflight int
	resident int
	sealGen  uint64
	expired  int
	results  int
}

func (p *timedFakePolicy) Name() string { return "timed-fake" }
func (p *timedFakePolicy) Observe(v float64) {
	p.inflight++
	if p.autoSeal > 0 && p.inflight == p.autoSeal {
		p.EndPeriod()
	}
}
func (p *timedFakePolicy) ObserveBatch(vs []float64) { ObserveEach(p, vs) }
func (p *timedFakePolicy) Expire([]float64) {
	p.expired++
	if p.resident > 0 {
		p.resident--
	}
}
func (p *timedFakePolicy) Result() []float64 { p.results++; return []float64{float64(p.sealGen)} }
func (p *timedFakePolicy) SpaceUsage() int   { return p.resident }
func (p *timedFakePolicy) EndPeriod() {
	if p.inflight == 0 {
		return
	}
	p.inflight = 0
	p.resident++
	p.sealGen++
}
func (p *timedFakePolicy) SubWindowCount() int { return p.resident }
func (p *timedFakePolicy) SealGen() uint64     { return p.sealGen }

var timedStart = time.Date(2026, 7, 28, 12, 0, 0, 0, time.UTC)

func TestNewTimedPusherValidation(t *testing.T) {
	p := &timedFakePolicy{}
	if _, err := NewTimedPusher(nil, time.Minute, time.Second); err == nil {
		t.Fatal("nil policy accepted")
	}
	if _, err := NewTimedPusher(&recordingPolicy{}, time.Minute, time.Second); err == nil {
		t.Fatal("non-TimedPolicy accepted")
	}
	if _, err := NewTimedPusher(p, time.Second, time.Minute); err == nil {
		t.Fatal("size < period accepted")
	}
	if _, err := NewTimedPusher(p, 90*time.Second, time.Minute); err == nil {
		t.Fatal("non-multiple size accepted")
	}
	if _, err := NewTimedPusher(p, time.Hour, time.Minute); err != nil {
		t.Fatal(err)
	}
}

func TestTimedPusherProtocol(t *testing.T) {
	// 3-period window, 1s periods. Periods 0 and 2 have data, period 1 is
	// empty; after the window slides, expiry drops exactly the summaries of
	// the departing periods.
	p := &timedFakePolicy{}
	k, err := NewTimedPusher(p, 3*time.Second, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := k.Flush(timedStart, nil); ok {
		t.Fatal("Flush before the first element produced a result")
	}
	at := func(d time.Duration) time.Time { return timedStart.Add(d) }
	k.Push(1, at(100*time.Millisecond)) // period 0
	k.Push(2, at(200*time.Millisecond))
	// Skip period 1 entirely; period 2 gets one element. The push crosses
	// two boundaries: seals period 0 (one summary), period 1 empty.
	if _, ok := k.Push(3, at(2100*time.Millisecond)); ok {
		t.Fatal("evaluation before a full window elapsed")
	}
	if p.sealGen != 1 || p.resident != 1 {
		t.Fatalf("after period 0 seal: gen=%d resident=%d", p.sealGen, p.resident)
	}
	// Crossing the period-2 boundary completes the first full window (3
	// sealed timed periods) and evaluates.
	ev, ok := k.Flush(at(3*time.Second), nil)
	if !ok {
		t.Fatal("no evaluation after the first full window")
	}
	if ev.Index != 0 || k.Evaluations() != 1 {
		t.Fatalf("evaluation index %d, evals %d", ev.Index, k.Evaluations())
	}
	if p.resident != 2 {
		t.Fatalf("resident = %d, want 2 (periods 0 and 2)", p.resident)
	}
	// Advancing one more period expires period 0's single summary (period
	// 1 contributed none) and still evaluates: period 2 remains resident.
	if _, ok := k.Flush(at(4*time.Second), nil); !ok {
		t.Fatal("no evaluation after slide")
	}
	if p.expired != 1 || p.resident != 1 {
		t.Fatalf("after slide: expired=%d resident=%d, want 1/1", p.expired, p.resident)
	}
	// One more empty period: period 2 is still inside the window, so the
	// evaluation persists ...
	if _, ok := k.Flush(at(5*time.Second), nil); !ok {
		t.Fatal("no evaluation while period 2 remains resident")
	}
	// ... and the next slide drops period 2; with nothing resident the
	// evaluation is suppressed.
	if _, ok := k.Flush(at(6*time.Second), nil); ok {
		t.Fatal("evaluation with no resident summaries")
	}
	if p.resident != 0 || p.expired != 2 {
		t.Fatalf("after draining: resident=%d expired=%d", p.resident, p.expired)
	}
}

func TestTimedPusherExpiresOverflowSeals(t *testing.T) {
	// A timed period whose traffic exceeds the policy's count threshold
	// seals MORE than one summary (the count-based auto-seal fires
	// mid-period). When that period leaves the window, every one of its
	// summaries must be expired — the seal-count ring's reason to exist.
	p := &timedFakePolicy{autoSeal: 3}
	k, err := NewTimedPusher(p, 2*time.Second, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	at := func(d time.Duration) time.Time { return timedStart.Add(d) }
	// Period 0: 7 elements -> two auto-seals (at 3 and 6) plus the final
	// partial seal at the boundary = 3 summaries.
	k.PushBatch(at(0), []float64{1, 2, 3, 4, 5, 6, 7}, nil)
	// Period 1: one element -> 1 summary.
	k.Push(8, at(1100*time.Millisecond))
	if p.sealGen != 3 {
		t.Fatalf("period 0 sealed %d summaries, want 3", p.sealGen)
	}
	// Crossing into period 2 evaluates (full window: periods 0-1 resident).
	if _, ok := k.Flush(at(2*time.Second), nil); !ok {
		t.Fatal("no evaluation after the first full window")
	}
	if p.resident != 4 {
		t.Fatalf("resident = %d, want 4 (3 + 1)", p.resident)
	}
	// Period 0 slides out: ALL THREE of its summaries expire.
	if _, ok := k.Flush(at(3*time.Second), nil); !ok {
		t.Fatal("no evaluation after slide")
	}
	if p.expired != 3 || p.resident != 1 {
		t.Fatalf("after slide: expired=%d resident=%d, want 3/1", p.expired, p.resident)
	}
}

func TestTimedPusherEmitsEveryEvaluation(t *testing.T) {
	// A multi-boundary crossing produces one evaluation per non-empty
	// window position; emit sees all of them, the return value the last.
	p := &timedFakePolicy{}
	k, err := NewTimedPusher(p, 2*time.Second, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	at := func(d time.Duration) time.Time { return timedStart.Add(d) }
	k.Push(1, at(0))
	k.Push(2, at(1100*time.Millisecond))
	var emitted []Evaluation
	emit := func(ev Evaluation) { emitted = append(emitted, ev) }
	// Jump 3 boundaries at once: evaluations at the period-1 close and the
	// period-2 close (period 1's summary still resident), then none at the
	// period-3 close (window empty).
	last, ok := k.Flush(at(4*time.Second), emit)
	if !ok {
		t.Fatal("no evaluation emitted")
	}
	if len(emitted) != 2 {
		t.Fatalf("emitted %d evaluations, want 2", len(emitted))
	}
	if emitted[0].Index != 0 || emitted[1].Index != 1 {
		t.Fatalf("emitted indexes %d, %d", emitted[0].Index, emitted[1].Index)
	}
	if last.Index != emitted[1].Index {
		t.Fatalf("returned evaluation %d is not the last emitted %d", last.Index, emitted[1].Index)
	}
	if k.Evaluations() != 2 {
		t.Fatalf("Evaluations = %d", k.Evaluations())
	}
}

func TestTimedPusherEmptyBatchFlushes(t *testing.T) {
	p := &timedFakePolicy{}
	k, err := NewTimedPusher(p, 2*time.Second, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Empty batch before the first element: still a no-op.
	if _, ok := k.PushBatch(timedStart, nil, nil); ok {
		t.Fatal("empty batch before start produced a result")
	}
	k.PushBatch(timedStart.Add(100*time.Millisecond), []float64{1, 2}, nil)
	// An empty batch is a Flush: crossing two boundaries evaluates.
	if _, ok := k.PushBatch(timedStart.Add(2*time.Second), nil, nil); !ok {
		t.Fatal("empty batch did not flush the window")
	}
	if got := len(k.counts); got != 2 {
		t.Fatalf("SubWindows ring = %d, want 2", got)
	}
	if k.SubWindows() != 2 || k.Size() != 2*time.Second || k.Period() != time.Second {
		t.Fatal("accessor mismatch")
	}
}
