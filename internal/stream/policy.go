package stream

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/window"
)

// Policy is a sliding-window multi-quantile operator: the contract all five
// evaluated algorithms (QLOVE, Exact, CMQS, AM, Random, Moment) implement.
//
// The runner feeds elements in arrival order via Observe. At every period
// boundary once a full window has been seen, it calls Result, then — before
// the next period begins — Expire with the batch of elements that just left
// the window (one full period, oldest first). Operators that expire state
// at sub-window granularity (QLOVE, CMQS) may ignore the slice contents and
// simply drop their oldest summary; element-wise operators (Exact, AM,
// Random) deaccumulate each value.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Observe feeds one arriving element.
	Observe(v float64)
	// ObserveBatch feeds a run of arriving elements in order. It must be
	// observationally identical to calling Observe per element; it exists
	// so operators can amortize per-element costs (interface dispatch,
	// quantization setup, tree descents for repeated values) across the
	// batch. Implementations without a native batch path delegate to the
	// ObserveEach adapter.
	ObserveBatch(vs []float64)
	// Expire notifies that a full period of old elements left the window.
	Expire(old []float64)
	// Result returns the current quantile estimates, in the same order as
	// the ϕ values the policy was configured with.
	Result() []float64
	// SpaceUsage reports the number of resident state variables, the
	// paper's §5.1 space metric.
	SpaceUsage() int
}

// Observer is the single-element half of the Policy ingestion contract,
// the only piece the ObserveEach fallback needs.
type Observer interface {
	Observe(v float64)
}

// SummaryExpirer is an optional Policy extension for operators that expire
// state at sub-window (or coarser) granularity and never read the slice
// passed to Expire — QLOVE, CMQS, AM, Random and Moment all drop a whole
// summary per period. A Pusher detects the marker and skips the O(window)
// replay ring it would otherwise keep per stream, which is what makes
// monitoring hundreds of thousands of concurrent keys affordable: each key
// then costs only its operator state.
type SummaryExpirer interface {
	// ExpiresWholeSummaries reports that Expire ignores its argument.
	ExpiresWholeSummaries() bool
}

// expireNeedsValues reports whether p must be handed the actual expired
// elements (element-wise deaccumulators like Exact).
func expireNeedsValues(p Policy) bool {
	se, ok := p.(SummaryExpirer)
	return !ok || !se.ExpiresWholeSummaries()
}

// ObserveEach is the package-level fallback ObserveBatch adapter: it feeds
// vs one element at a time through Observe. Policies without a native
// batch path implement ObserveBatch as a call to this adapter; it keeps
// the loop out of every such implementation while preserving exact
// element-at-a-time semantics.
func ObserveEach(p Observer, vs []float64) {
	for _, v := range vs {
		p.Observe(v)
	}
}

// Evaluation is one query result produced by Run.
type Evaluation struct {
	Index     int       // 0-based evaluation number
	Estimates []float64 // one per configured ϕ
}

// RunStats aggregates runner-side measurements.
type RunStats struct {
	Elements    int           // elements fed
	Evaluations int           // results produced
	Elapsed     time.Duration // wall time spent inside the policy
	MaxSpace    int           // peak SpaceUsage observed at evaluation time
}

// ThroughputMevS returns the single-thread throughput in million elements
// per second, the paper's §5.1 throughput metric.
func (s RunStats) ThroughputMevS() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Elements) / s.Elapsed.Seconds() / 1e6
}

// Run drives a policy over data under the window spec, returning every
// evaluation and the runner stats. The runner owns the replay buffer for
// expiry (as the streaming engine does in Trill), so policies are charged
// only for their operator state. Elements are delivered through
// ObserveBatch one period at a time, so a policy's native batch path is on
// the measured ingestion path.
func Run(p Policy, spec window.Spec, data []float64) ([]Evaluation, RunStats, error) {
	if err := spec.Validate(); err != nil {
		return nil, RunStats{}, err
	}
	nEvals := spec.Evaluations(len(data))
	evals := make([]Evaluation, 0, nEvals)
	stats := RunStats{}
	start := time.Now()
	pos := 0
	for i := 0; i < nEvals; i++ {
		lo, hi := spec.EvalBounds(i)
		if i > 0 {
			p.Expire(data[lo-spec.Period : lo])
		}
		// Sample space mid-period as well: sub-window operators have an
		// empty in-flight state exactly at period boundaries, so sampling
		// only after Result would miss their real footprint.
		if mid := hi - spec.Period/2; mid < hi {
			p.ObserveBatch(data[pos : mid+1])
			pos = mid + 1
			if sp := p.SpaceUsage(); sp > stats.MaxSpace {
				stats.MaxSpace = sp
			}
		}
		p.ObserveBatch(data[pos:hi])
		pos = hi
		est := p.Result()
		evals = append(evals, Evaluation{Index: i, Estimates: est})
		if sp := p.SpaceUsage(); sp > stats.MaxSpace {
			stats.MaxSpace = sp
		}
	}
	stats.Elapsed = time.Since(start)
	stats.Elements = pos
	stats.Evaluations = len(evals)
	return evals, stats, nil
}

// Feed pushes all data through the policy under spec without recording
// evaluations; it is the measurement loop used by throughput benchmarks
// (results are still computed every period, as a real monitoring query
// would). Like Run, it delivers one period per ObserveBatch call.
func Feed(p Policy, spec window.Spec, data []float64) (RunStats, error) {
	if err := spec.Validate(); err != nil {
		return RunStats{}, err
	}
	nEvals := spec.Evaluations(len(data))
	start := time.Now()
	pos := 0
	for i := 0; i < nEvals; i++ {
		lo, hi := spec.EvalBounds(i)
		if i > 0 {
			p.Expire(data[lo-spec.Period : lo])
		}
		p.ObserveBatch(data[pos:hi])
		pos = hi
		_ = p.Result()
	}
	return RunStats{
		Elements:    pos,
		Evaluations: nEvals,
		Elapsed:     time.Since(start),
	}, nil
}

// Factory constructs a fresh policy instance for a window spec and quantile
// set; the bench harness uses it to instantiate each competing algorithm
// uniformly.
type Factory func(spec window.Spec, phis []float64) (Policy, error)

// BoundFactory is a factory with its window spec and quantile set already
// applied: every call returns a fresh, independently owned policy. It is
// the unit of policy construction a concurrent engine consumes — an engine
// spawning one operator per key cannot share policy instances, only the
// recipe for making them.
type BoundFactory func() (Policy, error)

// Bind fixes the spec and quantile set of a factory. The phis slice is
// copied, so later mutation by the caller cannot leak into policies
// constructed after the fact.
func (f Factory) Bind(spec window.Spec, phis []float64) BoundFactory {
	phis = append([]float64(nil), phis...)
	return func() (Policy, error) { return f(spec, phis) }
}

// Registry maps policy names to factories. It hands out construction
// recipes, never policy instances, so any number of goroutines can
// instantiate the same algorithm concurrently. All methods are safe for
// concurrent use.
type Registry struct {
	mu        sync.RWMutex
	factories map[string]Factory
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: map[string]Factory{}}
}

// Register adds a factory under name, failing on duplicates.
func (r *Registry) Register(name string, f Factory) error {
	if f == nil {
		return fmt.Errorf("stream: nil factory for policy %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.factories[name]; dup {
		return fmt.Errorf("stream: policy %q already registered", name)
	}
	r.factories[name] = f
	return nil
}

// Lookup returns the factory registered under name.
func (r *Registry) Lookup(name string) (Factory, error) {
	r.mu.RLock()
	f, ok := r.factories[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("stream: unknown policy %q", name)
	}
	return f, nil
}

// New instantiates a registered policy.
func (r *Registry) New(name string, spec window.Spec, phis []float64) (Policy, error) {
	f, err := r.Lookup(name)
	if err != nil {
		return nil, err
	}
	return f(spec, phis)
}

// Bind returns a BoundFactory for a registered policy, the form an engine
// consumes to mint one operator per key.
func (r *Registry) Bind(name string, spec window.Spec, phis []float64) (BoundFactory, error) {
	f, err := r.Lookup(name)
	if err != nil {
		return nil, err
	}
	return f.Bind(spec, phis), nil
}

// Names returns the registered policy names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.factories))
	for name := range r.factories {
		out = append(out, name)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}
