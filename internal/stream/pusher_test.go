package stream

import (
	"testing"

	"repro/internal/window"
)

// summaryExpiringPolicy wraps recordingPolicy with the SummaryExpirer
// marker, recording what Expire receives.
type summaryExpiringPolicy struct {
	recordingPolicy
}

func (p *summaryExpiringPolicy) ExpiresWholeSummaries() bool { return true }

func TestPusherReplaysExpiredElements(t *testing.T) {
	// Element-wise policies (no marker) must receive the exact period that
	// left the window, oldest first.
	p := &recordingPolicy{}
	k, err := NewPusher(p, window.Spec{Size: 4, Period: 2})
	if err != nil {
		t.Fatal(err)
	}
	evals := 0
	for i := 0; i < 8; i++ {
		if _, ok := k.Push(float64(i)); ok {
			evals++
		}
	}
	if evals != 3 || k.Evaluations() != 3 {
		t.Fatalf("evaluations = %d/%d, want 3", evals, k.Evaluations())
	}
	want := [][]float64{{0, 1}, {2, 3}}
	if len(p.expired) != len(want) {
		t.Fatalf("expire calls = %v", p.expired)
	}
	for i := range want {
		for j := range want[i] {
			if p.expired[i][j] != want[i][j] {
				t.Fatalf("expire %d = %v, want %v", i, p.expired[i], want[i])
			}
		}
	}
}

func TestPusherSkipsRingForSummaryExpirers(t *testing.T) {
	// Marker policies get Expire(nil) — and the pusher must not have
	// allocated a window-sized ring at all.
	p := &summaryExpiringPolicy{}
	spec := window.Spec{Size: 1 << 20, Period: 1 << 18}
	k, err := NewPusher(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	if k.ring != nil || k.expire != nil {
		t.Fatal("pusher kept a replay ring for a summary-expiring policy")
	}
	// Protocol still runs: feed two windows batched, expect the expiry
	// notifications with nil payloads.
	batch := make([]float64, spec.Period)
	evals := 0
	for i := 0; i < 8; i++ {
		k.PushBatch(batch, func(Evaluation) { evals++ })
	}
	if evals != 5 {
		t.Fatalf("evaluations = %d, want 5", evals)
	}
	if len(p.expired) != 4 {
		t.Fatalf("expire calls = %d, want 4", len(p.expired))
	}
	for i, e := range p.expired {
		if len(e) != 0 {
			t.Fatalf("expire %d carried %d values, want none", i, len(e))
		}
	}
}

func TestPusherValidation(t *testing.T) {
	if _, err := NewPusher(nil, window.Spec{Size: 4, Period: 2}); err == nil {
		t.Fatal("nil policy accepted")
	}
	if _, err := NewPusher(&recordingPolicy{}, window.Spec{Size: 3, Period: 2}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestFactoryBindAndRegistryBind(t *testing.T) {
	r := NewRegistry()
	mk := func(spec window.Spec, phis []float64) (Policy, error) {
		return &recordingPolicy{}, nil
	}
	if err := r.Register("rec2", mk); err != nil {
		t.Fatal(err)
	}
	bound, err := r.Bind("rec2", window.Spec{Size: 4, Period: 2}, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	a, err1 := bound()
	b, err2 := bound()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if a == b {
		t.Fatal("bound factory handed out a shared instance")
	}
	if _, err := r.Bind("nope", window.Spec{Size: 4, Period: 2}, nil); err == nil {
		t.Fatal("unknown policy bound")
	}

	// Bind snapshots the phi slice.
	phis := []float64{0.5}
	var seen []float64
	f := Factory(func(spec window.Spec, ps []float64) (Policy, error) {
		seen = ps
		return &recordingPolicy{}, nil
	})
	bf := f.Bind(window.Spec{Size: 4, Period: 2}, phis)
	phis[0] = 0.99
	if _, err := bf(); err != nil {
		t.Fatal(err)
	}
	if seen[0] != 0.5 {
		t.Fatalf("bound phis mutated: %v", seen)
	}
}

func TestRegistryNamesAndNilFactory(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("b", nil); err == nil {
		t.Fatal("nil factory accepted")
	}
	mk := func(window.Spec, []float64) (Policy, error) { return &recordingPolicy{}, nil }
	for _, n := range []string{"c", "a", "b"} {
		if err := r.Register(n, mk); err != nil {
			t.Fatal(err)
		}
	}
	names := r.Names()
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("names = %v", names)
	}
}
