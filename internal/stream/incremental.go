package stream

import (
	"fmt"

	"repro/internal/window"
)

// Incremental is the four-function operator contract of §2. State S is
// updated as elements enter and leave the window; ComputeResult derives the
// query answer from the state alone.
type Incremental[S, R any] struct {
	InitialState  func() S
	Accumulate    func(S, float64) S
	Deaccumulate  func(S, float64) S // may be nil for tumbling-only operators
	ComputeResult func(S) R
}

// RunTumbling evaluates the operator over tumbling windows of the given
// period: the state is rebuilt per window and discarded after each result
// (no Deaccumulate required), exactly as §2 describes.
func RunTumbling[S, R any](op Incremental[S, R], period int, data []float64) ([]R, error) {
	if period < 1 {
		return nil, fmt.Errorf("stream: period %d < 1", period)
	}
	var results []R
	for lo := 0; lo+period <= len(data); lo += period {
		s := op.InitialState()
		for _, v := range data[lo : lo+period] {
			s = op.Accumulate(s, v)
		}
		results = append(results, op.ComputeResult(s))
	}
	return results, nil
}

// RunSliding evaluates the operator over the sliding window spec,
// accumulating arriving elements and deaccumulating expired ones — the
// costly path whose Deaccumulate burden motivates QLOVE's design.
func RunSliding[S, R any](op Incremental[S, R], spec window.Spec, data []float64) ([]R, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if op.Deaccumulate == nil && spec.Kind() == window.Sliding {
		return nil, fmt.Errorf("stream: sliding window requires Deaccumulate")
	}
	s := op.InitialState()
	var results []R
	n := spec.Evaluations(len(data))
	pos := 0
	for i := 0; i < n; i++ {
		lo, hi := spec.EvalBounds(i)
		if i > 0 {
			for _, v := range data[lo-spec.Period : lo] {
				s = op.Deaccumulate(s, v)
			}
		}
		for ; pos < hi; pos++ {
			s = op.Accumulate(s, data[pos])
		}
		results = append(results, op.ComputeResult(s))
	}
	return results, nil
}

// avgState is the running state of the §2 example operator.
type avgState struct {
	count int64
	sum   float64
}

// NewAverage returns the paper's §2 example: an incremental average.
func NewAverage() Incremental[avgState, float64] {
	return Incremental[avgState, float64]{
		InitialState: func() avgState { return avgState{} },
		Accumulate: func(s avgState, v float64) avgState {
			return avgState{count: s.count + 1, sum: s.sum + v}
		},
		Deaccumulate: func(s avgState, v float64) avgState {
			return avgState{count: s.count - 1, sum: s.sum - v}
		},
		ComputeResult: func(s avgState) float64 {
			if s.count == 0 {
				return 0
			}
			return s.sum / float64(s.count)
		},
	}
}
