// Package stream is the Trill-analogue streaming substrate (§2 of the
// paper): timestamped events, composable pull-based operators (Where,
// Select), the four-function incremental-evaluation contract
// (InitialState / Accumulate / Deaccumulate / ComputeResult), and runners
// that drive window policies over tumbling and sliding count windows.
package stream

// Event pairs a payload with a timestamp capturing arrival order.
type Event[T any] struct {
	Time    int64
	Payload T
}

// Stream is a pull-based sequence of events. Next returns the next event
// and true, or a zero event and false once the stream is exhausted.
type Stream[T any] struct {
	next func() (Event[T], bool)
}

// Next pulls the next event.
func (s *Stream[T]) Next() (Event[T], bool) { return s.next() }

// FromSlice builds a stream whose events are the slice values with
// timestamps 0..n-1.
func FromSlice[T any](values []T) *Stream[T] {
	i := 0
	return &Stream[T]{next: func() (Event[T], bool) {
		if i >= len(values) {
			var zero Event[T]
			return zero, false
		}
		ev := Event[T]{Time: int64(i), Payload: values[i]}
		i++
		return ev, true
	}}
}

// FromFunc builds a stream of n events drawn from gen, timestamped by
// arrival index. n < 0 means unbounded.
func FromFunc[T any](gen func() T, n int) *Stream[T] {
	i := 0
	return &Stream[T]{next: func() (Event[T], bool) {
		if n >= 0 && i >= n {
			var zero Event[T]
			return zero, false
		}
		ev := Event[T]{Time: int64(i), Payload: gen()}
		i++
		return ev, true
	}}
}

// Where filters a stream, keeping events whose payload satisfies pred —
// the paper's Qmonitor uses .Where(e => e.errorCode != 0).
func Where[T any](s *Stream[T], pred func(T) bool) *Stream[T] {
	return &Stream[T]{next: func() (Event[T], bool) {
		for {
			ev, ok := s.Next()
			if !ok {
				return ev, false
			}
			if pred(ev.Payload) {
				return ev, true
			}
		}
	}}
}

// Select maps payloads through fn, preserving timestamps (LINQ Select).
func Select[T, U any](s *Stream[T], fn func(T) U) *Stream[U] {
	return &Stream[U]{next: func() (Event[U], bool) {
		ev, ok := s.Next()
		if !ok {
			var zero Event[U]
			return zero, false
		}
		return Event[U]{Time: ev.Time, Payload: fn(ev.Payload)}, true
	}}
}

// Take truncates a stream after n events.
func Take[T any](s *Stream[T], n int) *Stream[T] {
	i := 0
	return &Stream[T]{next: func() (Event[T], bool) {
		if i >= n {
			var zero Event[T]
			return zero, false
		}
		ev, ok := s.Next()
		if ok {
			i++
		}
		return ev, ok
	}}
}

// Collect drains the stream into a slice of payloads.
func Collect[T any](s *Stream[T]) []T {
	var out []T
	for {
		ev, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, ev.Payload)
	}
}
