package rbtree

import "fmt"

// CheckInvariants verifies the red-black properties, BST ordering, the
// order-statistic weight bookkeeping, and the arena accounting (every
// allocated slot is reachable from exactly one of: the tree, the free
// list, or the sentinel). It returns a descriptive error when a violation
// is found. It exists for tests and debugging; production code never needs
// it.
//
// Weights are maintained lazily, so they are validated only when the tree
// is clean — i.e. after a rank read (Select, Rank, Quantile) has rebuilt
// them. Tests wanting weight coverage should issue such a read first.
func (t *Tree) CheckInvariants() error {
	if t.root == nilIdx {
		if t.total != 0 || t.unique != 0 {
			return fmt.Errorf("rbtree: empty root but total=%d unique=%d", t.total, t.unique)
		}
		return t.checkArena()
	}
	if t.nodes[t.root].color != black {
		return fmt.Errorf("rbtree: root is red")
	}
	if t.nodes[t.root].parent != nilIdx {
		return fmt.Errorf("rbtree: root has parent")
	}
	var unique int
	var total uint64
	if _, err := t.checkNode(t.root, &unique, &total); err != nil {
		return err
	}
	if unique != t.unique {
		return fmt.Errorf("rbtree: unique mismatch: counted %d, recorded %d", unique, t.unique)
	}
	if total != t.total {
		return fmt.Errorf("rbtree: total mismatch: counted %d, recorded %d", total, t.total)
	}
	if err := t.checkOrder(t.root); err != nil {
		return err
	}
	return t.checkArena()
}

// checkArena verifies that tree nodes plus free-list nodes account for
// every allocated arena slot exactly once and that the sentinel is intact.
func (t *Tree) checkArena() error {
	if len(t.nodes) == 0 {
		if t.root != nilIdx || t.free != nilIdx {
			return fmt.Errorf("rbtree: empty arena but root=%d free=%d", t.root, t.free)
		}
		return nil
	}
	if t.nodes[0].color != black {
		return fmt.Errorf("rbtree: sentinel is red")
	}
	freeLen := 0
	for i := t.free; i != nilIdx; i = t.nodes[i].parent {
		if i < 0 || int(i) >= len(t.nodes) {
			return fmt.Errorf("rbtree: free list index %d out of arena [1,%d)", i, len(t.nodes))
		}
		freeLen++
		if freeLen > len(t.nodes) {
			return fmt.Errorf("rbtree: free list cycle")
		}
	}
	if got, want := t.unique+freeLen, len(t.nodes)-1; got != want {
		return fmt.Errorf("rbtree: arena leak: %d tree + %d free != %d allocated slots",
			t.unique, freeLen, want)
	}
	return nil
}

// checkNode validates colors, parent links, weights; returns black-height.
func (t *Tree) checkNode(i int32, unique *int, total *uint64) (int, error) {
	if i == nilIdx {
		return 1, nil
	}
	n := &t.nodes[i]
	if n.count == 0 && !t.zeroOK {
		return 0, fmt.Errorf("rbtree: node %v has zero count", n.key)
	}
	*unique++
	*total += n.count
	if n.color == red {
		if colorOf(t.nodes, n.left) == red || colorOf(t.nodes, n.right) == red {
			return 0, fmt.Errorf("rbtree: red node %v has red child", n.key)
		}
	}
	if n.left != nilIdx && t.nodes[n.left].parent != i {
		return 0, fmt.Errorf("rbtree: bad parent link at %v.left", n.key)
	}
	if n.right != nilIdx && t.nodes[n.right].parent != i {
		return 0, fmt.Errorf("rbtree: bad parent link at %v.right", n.key)
	}
	lh, err := t.checkNode(n.left, unique, total)
	if err != nil {
		return 0, err
	}
	rh, err := t.checkNode(n.right, unique, total)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, fmt.Errorf("rbtree: black-height mismatch at %v: %d vs %d", n.key, lh, rh)
	}
	if !t.dirty {
		w := n.count
		if n.left != nilIdx {
			w += t.nodes[n.left].weight
		}
		if n.right != nilIdx {
			w += t.nodes[n.right].weight
		}
		if w != n.weight {
			return 0, fmt.Errorf("rbtree: weight mismatch at %v: computed %d, stored %d", n.key, w, n.weight)
		}
	}
	if n.color == black {
		return lh + 1, nil
	}
	return lh, nil
}

func (t *Tree) checkOrder(i int32) error {
	if i == nilIdx {
		return nil
	}
	n := &t.nodes[i]
	if n.left != nilIdx && t.nodes[n.left].key >= n.key {
		return fmt.Errorf("rbtree: order violation: %v.left = %v", n.key, t.nodes[n.left].key)
	}
	if n.right != nilIdx && t.nodes[n.right].key <= n.key {
		return fmt.Errorf("rbtree: order violation: %v.right = %v", n.key, t.nodes[n.right].key)
	}
	if err := t.checkOrder(n.left); err != nil {
		return err
	}
	return t.checkOrder(n.right)
}
