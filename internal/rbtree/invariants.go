package rbtree

import "fmt"

// CheckInvariants verifies the red-black properties, BST ordering, and the
// order-statistic weight bookkeeping. It returns a descriptive error when a
// violation is found. It exists for tests and debugging; production code
// never needs it.
func (t *Tree) CheckInvariants() error {
	if t.root == nil {
		if t.total != 0 || t.unique != 0 {
			return fmt.Errorf("rbtree: empty root but total=%d unique=%d", t.total, t.unique)
		}
		return nil
	}
	if t.root.color != black {
		return fmt.Errorf("rbtree: root is red")
	}
	if t.root.parent != nil {
		return fmt.Errorf("rbtree: root has parent")
	}
	var unique int
	var total uint64
	if _, err := checkNode(t.root, &unique, &total); err != nil {
		return err
	}
	if unique != t.unique {
		return fmt.Errorf("rbtree: unique mismatch: counted %d, recorded %d", unique, t.unique)
	}
	if total != t.total {
		return fmt.Errorf("rbtree: total mismatch: counted %d, recorded %d", total, t.total)
	}
	return checkOrder(t.root)
}

// checkNode validates colors, parent links, weights; returns black-height.
func checkNode(n *node, unique *int, total *uint64) (int, error) {
	if n == nil {
		return 1, nil
	}
	if n.count == 0 {
		return 0, fmt.Errorf("rbtree: node %v has zero count", n.key)
	}
	*unique++
	*total += n.count
	if n.color == red {
		if nodeColor(n.left) == red || nodeColor(n.right) == red {
			return 0, fmt.Errorf("rbtree: red node %v has red child", n.key)
		}
	}
	if n.left != nil && n.left.parent != n {
		return 0, fmt.Errorf("rbtree: bad parent link at %v.left", n.key)
	}
	if n.right != nil && n.right.parent != n {
		return 0, fmt.Errorf("rbtree: bad parent link at %v.right", n.key)
	}
	lh, err := checkNode(n.left, unique, total)
	if err != nil {
		return 0, err
	}
	rh, err := checkNode(n.right, unique, total)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, fmt.Errorf("rbtree: black-height mismatch at %v: %d vs %d", n.key, lh, rh)
	}
	w := n.count
	if n.left != nil {
		w += n.left.weight
	}
	if n.right != nil {
		w += n.right.weight
	}
	if w != n.weight {
		return 0, fmt.Errorf("rbtree: weight mismatch at %v: computed %d, stored %d", n.key, w, n.weight)
	}
	if n.color == black {
		return lh + 1, nil
	}
	return lh, nil
}

func checkOrder(n *node) error {
	if n == nil {
		return nil
	}
	if n.left != nil && n.left.key >= n.key {
		return fmt.Errorf("rbtree: order violation: %v.left = %v", n.key, n.left.key)
	}
	if n.right != nil && n.right.key <= n.key {
		return fmt.Errorf("rbtree: order violation: %v.right = %v", n.key, n.right.key)
	}
	if err := checkOrder(n.left); err != nil {
		return err
	}
	return checkOrder(n.right)
}
