// Package rbtree implements a red-black tree keyed by float64 values where
// each node carries a frequency count. It is the in-flight sub-window state
// of Algorithm 1 in the QLOVE paper (a compressed {value, count}
// representation of the observed stream) and the state of the Exact
// sliding-window baseline.
//
// Beyond the paper's description, every node also maintains the total
// frequency weight of its subtree, which turns the tree into an
// order-statistic tree: Select(rank) answers a single quantile in O(log u)
// for u unique values. Multi-quantile queries still use the paper's
// single-pass in-order traversal (Quantiles).
package rbtree

import "fmt"

type color bool

const (
	red   color = false
	black color = true
)

type node struct {
	key                 float64
	count               uint64 // frequency of key
	weight              uint64 // sum of counts in this subtree
	left, right, parent *node
	color               color
}

// Tree is a red-black tree of {value, count} pairs ordered by value.
// The zero value is ready to use.
type Tree struct {
	root   *node
	unique int    // number of distinct keys
	total  uint64 // sum of all counts
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// Len returns the total number of inserted elements (sum of frequencies).
func (t *Tree) Len() uint64 { return t.total }

// Unique returns the number of distinct values stored.
func (t *Tree) Unique() int { return t.unique }

// Empty reports whether the tree holds no elements.
func (t *Tree) Empty() bool { return t.total == 0 }

func (n *node) recomputeWeight() {
	w := n.count
	if n.left != nil {
		w += n.left.weight
	}
	if n.right != nil {
		w += n.right.weight
	}
	n.weight = w
}

// propagateWeight recomputes weights from n up to the root.
func (t *Tree) propagateWeight(n *node) {
	for ; n != nil; n = n.parent {
		n.recomputeWeight()
	}
}

// Insert adds one occurrence of key (Accumulate in Algorithm 1).
func (t *Tree) Insert(key float64) { t.InsertN(key, 1) }

// InsertN adds n occurrences of key at once.
func (t *Tree) InsertN(key float64, n uint64) {
	if n == 0 {
		return
	}
	t.total += n
	var parent *node
	cur := t.root
	for cur != nil {
		parent = cur
		switch {
		case key < cur.key:
			cur = cur.left
		case key > cur.key:
			cur = cur.right
		default:
			cur.count += n
			t.propagateWeight(cur)
			return
		}
	}
	nn := &node{key: key, count: n, weight: n, parent: parent}
	t.unique++
	if parent == nil {
		t.root = nn
	} else if key < parent.key {
		parent.left = nn
	} else {
		parent.right = nn
	}
	t.propagateWeight(parent)
	t.insertFixup(nn)
}

// Remove deletes one occurrence of key (the Exact baseline's Deaccumulate).
// It reports whether the key was present.
func (t *Tree) Remove(key float64) bool {
	n := t.find(key)
	if n == nil {
		return false
	}
	t.total--
	if n.count > 1 {
		n.count--
		t.propagateWeight(n)
		return true
	}
	t.deleteNode(n)
	t.unique--
	return true
}

func (t *Tree) find(key float64) *node {
	cur := t.root
	for cur != nil {
		switch {
		case key < cur.key:
			cur = cur.left
		case key > cur.key:
			cur = cur.right
		default:
			return cur
		}
	}
	return nil
}

// Count returns the stored frequency of key (0 when absent).
func (t *Tree) Count(key float64) uint64 {
	if n := t.find(key); n != nil {
		return n.count
	}
	return 0
}

// Min returns the smallest stored value. It panics on an empty tree.
func (t *Tree) Min() float64 {
	if t.root == nil {
		panic("rbtree: Min of empty tree")
	}
	n := t.root
	for n.left != nil {
		n = n.left
	}
	return n.key
}

// Max returns the largest stored value. It panics on an empty tree.
func (t *Tree) Max() float64 {
	if t.root == nil {
		panic("rbtree: Max of empty tree")
	}
	n := t.root
	for n.right != nil {
		n = n.right
	}
	return n.key
}

// Select returns the value with 1-based rank r in frequency-weighted sorted
// order, i.e. the r-th smallest element counting duplicates. It panics when
// r is out of range.
func (t *Tree) Select(r uint64) float64 {
	if r == 0 || r > t.total {
		panic(fmt.Sprintf("rbtree: Select rank %d out of range [1,%d]", r, t.total))
	}
	n := t.root
	for {
		var lw uint64
		if n.left != nil {
			lw = n.left.weight
		}
		switch {
		case r <= lw:
			n = n.left
		case r <= lw+n.count:
			return n.key
		default:
			r -= lw + n.count
			n = n.right
		}
	}
}

// Rank returns the number of stored elements with value <= key.
func (t *Tree) Rank(key float64) uint64 {
	var r uint64
	n := t.root
	for n != nil {
		var lw uint64
		if n.left != nil {
			lw = n.left.weight
		}
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			r += lw + n.count
			n = n.right
		default:
			return r + lw + n.count
		}
	}
	return r
}

// Quantile returns the ϕ-quantile (0 < ϕ <= 1), defined as the element at
// 1-based rank ceil(ϕ·Len). It panics on an empty tree.
func (t *Tree) Quantile(phi float64) float64 {
	if t.total == 0 {
		panic("rbtree: Quantile of empty tree")
	}
	return t.Select(ceilRank(phi, t.total))
}

// ceilRank computes ceil(phi*n) clamped to [1, n].
func ceilRank(phi float64, n uint64) uint64 {
	r := uint64(phi * float64(n))
	if float64(r) < phi*float64(n) {
		r++
	}
	if r < 1 {
		r = 1
	}
	if r > n {
		r = n
	}
	return r
}

// Quantiles answers the given quantiles in one in-order traversal
// (ComputeResult in Algorithm 1). phis must be sorted in non-decreasing
// order; the result has the same length and order. It panics on an empty
// tree.
func (t *Tree) Quantiles(phis []float64) []float64 {
	if t.total == 0 {
		panic("rbtree: Quantiles of empty tree")
	}
	if len(phis) == 0 {
		return nil
	}
	results := make([]float64, len(phis))
	i := 0
	rank := ceilRank(phis[0], t.total)
	var running uint64
	t.Ascend(func(key float64, count uint64) bool {
		running += count
		for running >= rank {
			results[i] = key
			i++
			if i == len(phis) {
				return false
			}
			rank = ceilRank(phis[i], t.total)
		}
		return true
	})
	return results
}

// Ascend calls fn for each {value, count} pair in increasing value order,
// stopping early when fn returns false.
func (t *Tree) Ascend(fn func(key float64, count uint64) bool) {
	ascend(t.root, fn)
}

func ascend(n *node, fn func(float64, uint64) bool) bool {
	if n == nil {
		return true
	}
	if !ascend(n.left, fn) {
		return false
	}
	if !fn(n.key, n.count) {
		return false
	}
	return ascend(n.right, fn)
}

// Descend calls fn for each {value, count} pair in decreasing value order,
// stopping early when fn returns false.
func (t *Tree) Descend(fn func(key float64, count uint64) bool) {
	descend(t.root, fn)
}

func descend(n *node, fn func(float64, uint64) bool) bool {
	if n == nil {
		return true
	}
	if !descend(n.right, fn) {
		return false
	}
	if !fn(n.key, n.count) {
		return false
	}
	return descend(n.left, fn)
}

// TopK returns up to k of the largest elements (counting duplicates) in
// descending order.
func (t *Tree) TopK(k int) []float64 {
	if k <= 0 {
		return nil
	}
	out := make([]float64, 0, k)
	t.Descend(func(key float64, count uint64) bool {
		for j := uint64(0); j < count; j++ {
			out = append(out, key)
			if len(out) == k {
				return false
			}
		}
		return true
	})
	return out
}

// Clear resets the tree to empty, releasing all nodes.
func (t *Tree) Clear() {
	t.root = nil
	t.unique = 0
	t.total = 0
}

// --- red-black rebalancing ---

func (t *Tree) rotateLeft(x *node) {
	y := x.right
	x.right = y.left
	if y.left != nil {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
	x.recomputeWeight()
	y.recomputeWeight()
}

func (t *Tree) rotateRight(x *node) {
	y := x.left
	x.left = y.right
	if y.right != nil {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
	x.recomputeWeight()
	y.recomputeWeight()
}

func (t *Tree) insertFixup(z *node) {
	for z.parent != nil && z.parent.color == red {
		gp := z.parent.parent
		if z.parent == gp.left {
			u := gp.right
			if u != nil && u.color == red {
				z.parent.color = black
				u.color = black
				gp.color = red
				z = gp
			} else {
				if z == z.parent.right {
					z = z.parent
					t.rotateLeft(z)
				}
				z.parent.color = black
				gp.color = red
				t.rotateRight(gp)
			}
		} else {
			u := gp.left
			if u != nil && u.color == red {
				z.parent.color = black
				u.color = black
				gp.color = red
				z = gp
			} else {
				if z == z.parent.left {
					z = z.parent
					t.rotateRight(z)
				}
				z.parent.color = black
				gp.color = red
				t.rotateLeft(gp)
			}
		}
	}
	t.root.color = black
}

func minimum(n *node) *node {
	for n.left != nil {
		n = n.left
	}
	return n
}

// transplant replaces subtree u with subtree v.
func (t *Tree) transplant(u, v *node) {
	switch {
	case u.parent == nil:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	if v != nil {
		v.parent = u.parent
	}
}

func (t *Tree) deleteNode(z *node) {
	y := z
	yOrig := y.color
	var x *node
	var xParent *node
	switch {
	case z.left == nil:
		x = z.right
		xParent = z.parent
		t.transplant(z, z.right)
	case z.right == nil:
		x = z.left
		xParent = z.parent
		t.transplant(z, z.left)
	default:
		y = minimum(z.right)
		yOrig = y.color
		x = y.right
		if y.parent == z {
			xParent = y
		} else {
			xParent = y.parent
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.color = z.color
	}
	t.propagateWeight(xParent)
	if yOrig == black {
		t.deleteFixup(x, xParent)
	}
}

func nodeColor(n *node) color {
	if n == nil {
		return black
	}
	return n.color
}

func (t *Tree) deleteFixup(x, parent *node) {
	for x != t.root && nodeColor(x) == black {
		if parent == nil {
			break
		}
		if x == parent.left {
			w := parent.right
			if nodeColor(w) == red {
				w.color = black
				parent.color = red
				t.rotateLeft(parent)
				w = parent.right
			}
			if w == nil {
				x = parent
				parent = x.parent
				continue
			}
			if nodeColor(w.left) == black && nodeColor(w.right) == black {
				w.color = red
				x = parent
				parent = x.parent
			} else {
				if nodeColor(w.right) == black {
					if w.left != nil {
						w.left.color = black
					}
					w.color = red
					t.rotateRight(w)
					w = parent.right
				}
				w.color = parent.color
				parent.color = black
				if w.right != nil {
					w.right.color = black
				}
				t.rotateLeft(parent)
				x = t.root
				parent = nil
			}
		} else {
			w := parent.left
			if nodeColor(w) == red {
				w.color = black
				parent.color = red
				t.rotateRight(parent)
				w = parent.left
			}
			if w == nil {
				x = parent
				parent = x.parent
				continue
			}
			if nodeColor(w.right) == black && nodeColor(w.left) == black {
				w.color = red
				x = parent
				parent = x.parent
			} else {
				if nodeColor(w.left) == black {
					if w.right != nil {
						w.right.color = black
					}
					w.color = red
					t.rotateLeft(w)
					w = parent.left
				}
				w.color = parent.color
				parent.color = black
				if w.left != nil {
					w.left.color = black
				}
				t.rotateRight(parent)
				x = t.root
				parent = nil
			}
		}
	}
	if x != nil {
		x.color = black
	}
}
