// Package rbtree implements a red-black tree keyed by float64 values where
// each node carries a frequency count. It is the in-flight sub-window state
// of Algorithm 1 in the QLOVE paper (a compressed {value, count}
// representation of the observed stream) and the state of the Exact
// sliding-window baseline.
//
// Beyond the paper's description, every node also maintains the total
// frequency weight of its subtree, which turns the tree into an
// order-statistic tree: Select(rank) answers a single quantile in O(log u)
// for u unique values. Multi-quantile queries still use the paper's
// single-pass in-order traversal (Quantiles, SelectRanks).
//
// Nodes live in a flat arena ([]node indexed by int32) rather than behind
// individual pointers. Index 0 is a reserved nil sentinel, deleted nodes go
// onto a free list threaded through their parent field, and Clear truncates
// the arena without releasing its capacity. Steady-state ingestion — the
// per-period fill/seal/Clear cycle of QLOVE's Level 1, or the Exact
// baseline's insert/remove churn — therefore performs zero heap
// allocations once the arena has grown to its working-set size, and the
// compact node layout removes the pointer-chasing cache misses of a
// heap-node tree.
package rbtree

import (
	"fmt"
	"math"
)

type color bool

const (
	red   color = false
	black color = true
)

// nilIdx is the arena index of the reserved nil sentinel. The sentinel is
// permanently black and never linked into the tree, so color reads through
// possibly-nil indices need no branch.
const nilIdx int32 = 0

type node struct {
	key                 float64
	count               uint64 // frequency of key
	weight              uint64 // sum of counts in this subtree
	left, right, parent int32
	color               color
}

// Tree is a red-black tree of {value, count} pairs ordered by value.
// The zero value is ready to use.
//
// Subtree weights are maintained lazily: mutations mark them dirty and the
// rank readers (Select, Rank, Quantile) rebuild them in one O(u) pass.
// Ingestion therefore pays no per-insert weight stores, and the
// traversal-based readers the hot seal path uses (Quantiles, SelectRanks,
// TopK, Ascend/Descend) never trigger a rebuild at all.
type Tree struct {
	nodes  []node // arena; nodes[0] is the nil sentinel
	free   int32  // head of the free list (threaded through parent); 0 = empty
	root   int32
	unique int    // number of resident nodes (distinct keys ever inserted since Clear)
	total  uint64 // sum of all counts
	dirty  bool   // subtree weights stale; rebuilt on next rank read
	zeroOK bool   // ResetCounts ran: zero-count nodes are legitimate

	// cache is a direct-mapped {key -> node index} table: telemetry value
	// distributions are heavily skewed, so most inserts hit a recently
	// seen key and skip the tree descent entirely (weights being lazy is
	// what makes the O(1) count bump sound). Entries are validated by
	// epoch, which Clear bumps instead of wiping the table.
	cache []cacheEntry
	epoch uint32
}

// cacheEntry is one slot of the insert cache. idx == 0 (the sentinel)
// marks an empty slot.
type cacheEntry struct {
	key   float64
	idx   int32
	epoch uint32
}

// cacheSize is the insert-cache slot count (16 KiB of entries): enough to
// cover the stable value population of a quantized telemetry stream with
// few conflict misses while staying within L1/L2 reach.
const cacheSize = 1024

// cacheSlot maps a key's bits to a cache slot (Fibonacci multiply-shift).
func cacheSlot(key float64) uint64 {
	return (math.Float64bits(key) * 0x9E3779B97F4A7C15) >> 54
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// Len returns the total number of inserted elements (sum of frequencies).
func (t *Tree) Len() uint64 { return t.total }

// Unique returns the number of distinct values stored.
func (t *Tree) Unique() int { return t.unique }

// Empty reports whether the tree holds no elements.
func (t *Tree) Empty() bool { return t.total == 0 }

// Cap returns the number of node slots the arena can hold without growing,
// excluding the sentinel. It is the tree's amortized-allocation horizon:
// inserts are heap-allocation-free while Unique() stays below Cap().
func (t *Tree) Cap() int {
	if c := cap(t.nodes); c > 0 {
		return c - 1
	}
	return 0
}

// Reserve grows the arena so that at least n unique values fit without
// further heap allocation.
func (t *Tree) Reserve(n int) {
	need := n + 1 // sentinel
	if cap(t.nodes) >= need {
		return
	}
	grown := make([]node, len(t.nodes), need)
	copy(grown, t.nodes)
	t.nodes = grown
	if len(t.nodes) == 0 {
		// Install the sentinel now so alloc's empty-arena branch cannot
		// replace the reserved backing array with a fresh small one.
		t.nodes = append(t.nodes, node{color: black})
	}
}

// alloc returns the index of a zeroed node initialised to {key, count},
// reusing the free list before growing the arena.
func (t *Tree) alloc(key float64, count uint64, parent int32) int32 {
	if t.free != nilIdx {
		i := t.free
		t.free = t.nodes[i].parent
		t.nodes[i] = node{key: key, count: count, weight: count, parent: parent}
		return i
	}
	if len(t.nodes) == 0 {
		t.nodes = make([]node, 1, 64)
		t.nodes[0] = node{color: black} // sentinel
	}
	if len(t.nodes) == cap(t.nodes) {
		// Double instead of relying on append's growth curve: large arenas
		// otherwise grow by ~1.25x, and the frequent full-arena copies that
		// causes dominate distinct-heavy insert workloads.
		grown := make([]node, len(t.nodes), 2*cap(t.nodes))
		copy(grown, t.nodes)
		t.nodes = grown
	}
	t.nodes = append(t.nodes, node{key: key, count: count, weight: count, parent: parent})
	return int32(len(t.nodes) - 1)
}

// release puts node i on the free list, invalidating any insert-cache
// entry that still maps its key to the slot.
func (t *Tree) release(i int32) {
	if t.cache != nil {
		if e := &t.cache[cacheSlot(t.nodes[i].key)]; e.idx == i {
			e.idx = nilIdx
		}
	}
	t.nodes[i] = node{parent: t.free}
	t.free = i
}

// fixWeights rebuilds every subtree weight in one post-order pass. Rank
// readers call it lazily, so mutation paths never touch weights.
func (t *Tree) fixWeights() {
	if !t.dirty {
		return
	}
	fixWeightsRec(t.nodes, t.root)
	t.dirty = false
}

func fixWeightsRec(ns []node, i int32) uint64 {
	if i == nilIdx {
		return 0
	}
	n := &ns[i]
	n.weight = n.count + fixWeightsRec(ns, n.left) + fixWeightsRec(ns, n.right)
	return n.weight
}

// Insert adds one occurrence of key (Accumulate in Algorithm 1).
func (t *Tree) Insert(key float64) { t.InsertN(key, 1) }

// InsertN adds n occurrences of key at once. The batched ingestion path
// run-length-groups quantized values and lands here, paying one tree
// descent per run instead of one per element — and no descent at all when
// the insert cache still maps key to its node.
func (t *Tree) InsertN(key float64, n uint64) {
	if n == 0 {
		return
	}
	t.total += n
	t.dirty = true
	slot := cacheSlot(key)
	if t.cache != nil {
		if e := &t.cache[slot]; e.idx != nilIdx && e.epoch == t.epoch && e.key == key {
			t.nodes[e.idx].count += n
			return
		}
	}
	parent := nilIdx
	cur := t.root
	ns := t.nodes // no allocation can happen during the descent
	for cur != nilIdx {
		nd := &ns[cur]
		switch {
		case key < nd.key:
			parent = cur
			cur = nd.left
		case key > nd.key:
			parent = cur
			cur = nd.right
		default:
			nd.count += n
			t.setCache(slot, key, cur)
			return
		}
	}
	nn := t.alloc(key, n, parent)
	t.unique++
	if parent == nilIdx {
		t.root = nn
	} else if key < t.nodes[parent].key {
		t.nodes[parent].left = nn
	} else {
		t.nodes[parent].right = nn
	}
	t.insertFixup(nn)
	t.setCache(slot, key, nn)
}

// setCache records key's node index in the insert cache, allocating the
// table on first use (once per tree lifetime; Clear keeps it).
func (t *Tree) setCache(slot uint64, key float64, idx int32) {
	if t.cache == nil {
		t.cache = make([]cacheEntry, cacheSize)
	}
	t.cache[slot] = cacheEntry{key: key, idx: idx, epoch: t.epoch}
}

// Remove deletes one occurrence of key (the Exact baseline's Deaccumulate).
// It reports whether the key was present.
func (t *Tree) Remove(key float64) bool {
	n := t.find(key)
	if n == nilIdx {
		return false
	}
	t.total--
	t.dirty = true
	if t.nodes[n].count > 1 {
		t.nodes[n].count--
		return true
	}
	t.deleteNode(n)
	t.unique--
	return true
}

func (t *Tree) find(key float64) int32 {
	cur := t.root
	ns := t.nodes
	for cur != nilIdx {
		nd := &ns[cur]
		switch {
		case key < nd.key:
			cur = nd.left
		case key > nd.key:
			cur = nd.right
		default:
			return cur
		}
	}
	return nilIdx
}

// Count returns the stored frequency of key (0 when absent).
func (t *Tree) Count(key float64) uint64 {
	if n := t.find(key); n != nilIdx {
		return t.nodes[n].count
	}
	return 0
}

// Min returns the smallest stored value. It panics on an empty tree.
func (t *Tree) Min() float64 {
	if t.root == nilIdx {
		panic("rbtree: Min of empty tree")
	}
	n := t.root
	for t.nodes[n].left != nilIdx {
		n = t.nodes[n].left
	}
	return t.nodes[n].key
}

// Max returns the largest stored value. It panics on an empty tree.
func (t *Tree) Max() float64 {
	if t.root == nilIdx {
		panic("rbtree: Max of empty tree")
	}
	n := t.root
	for t.nodes[n].right != nilIdx {
		n = t.nodes[n].right
	}
	return t.nodes[n].key
}

// Select returns the value with 1-based rank r in frequency-weighted sorted
// order, i.e. the r-th smallest element counting duplicates. It panics when
// r is out of range.
func (t *Tree) Select(r uint64) float64 {
	if r == 0 || r > t.total {
		panic(fmt.Sprintf("rbtree: Select rank %d out of range [1,%d]", r, t.total))
	}
	t.fixWeights()
	n := t.root
	ns := t.nodes
	for {
		nd := &ns[n]
		var lw uint64
		if nd.left != nilIdx {
			lw = ns[nd.left].weight
		}
		switch {
		case r <= lw:
			n = nd.left
		case r <= lw+nd.count:
			return nd.key
		default:
			r -= lw + nd.count
			n = nd.right
		}
	}
}

// Rank returns the number of stored elements with value <= key.
func (t *Tree) Rank(key float64) uint64 {
	t.fixWeights()
	var r uint64
	n := t.root
	ns := t.nodes
	for n != nilIdx {
		nd := &ns[n]
		var lw uint64
		if nd.left != nilIdx {
			lw = ns[nd.left].weight
		}
		switch {
		case key < nd.key:
			n = nd.left
		case key > nd.key:
			r += lw + nd.count
			n = nd.right
		default:
			return r + lw + nd.count
		}
	}
	return r
}

// Quantile returns the ϕ-quantile (0 < ϕ <= 1), defined as the element at
// 1-based rank ceil(ϕ·Len). It panics on an empty tree.
func (t *Tree) Quantile(phi float64) float64 {
	if t.total == 0 {
		panic("rbtree: Quantile of empty tree")
	}
	return t.Select(CeilRank(phi, t.total))
}

// CeilRank computes ceil(phi*n) clamped to [1, n]: the 1-based rank the
// paper's quantile definition reads. Exported so callers fusing several
// rank queries into one traversal (SelectRanks) resolve ϕ to the same rank
// Quantile and Quantiles would.
func CeilRank(phi float64, n uint64) uint64 {
	r := uint64(phi * float64(n))
	if float64(r) < phi*float64(n) {
		r++
	}
	if r < 1 {
		r = 1
	}
	if r > n {
		r = n
	}
	return r
}

// Quantiles answers the given quantiles in one in-order traversal
// (ComputeResult in Algorithm 1). phis must be sorted in non-decreasing
// order; the result has the same length and order. It panics on an empty
// tree.
func (t *Tree) Quantiles(phis []float64) []float64 {
	if t.total == 0 {
		panic("rbtree: Quantiles of empty tree")
	}
	if len(phis) == 0 {
		return nil
	}
	results := make([]float64, len(phis))
	i := 0
	rank := CeilRank(phis[0], t.total)
	var running uint64
	t.Ascend(func(key float64, count uint64) bool {
		running += count
		for running >= rank {
			results[i] = key
			i++
			if i == len(phis) {
				return false
			}
			rank = CeilRank(phis[i], t.total)
		}
		return true
	})
	return results
}

// SelectRanks answers many rank queries in one in-order traversal: out[i]
// receives the value at 1-based rank ranks[i]. ranks must be sorted in
// non-decreasing order with every rank in [1, Len]; out must have the same
// length as ranks. It is the fused-seal primitive: one walk answers the
// sub-window quantiles and every density finite-difference rank together.
// It panics on an empty tree or mismatched slice lengths.
func (t *Tree) SelectRanks(ranks []uint64, out []float64) {
	if len(ranks) == 0 {
		return
	}
	if t.total == 0 {
		panic("rbtree: SelectRanks of empty tree")
	}
	if len(out) != len(ranks) {
		panic("rbtree: SelectRanks output length mismatch")
	}
	if last := ranks[len(ranks)-1]; ranks[0] == 0 || last > t.total {
		panic(fmt.Sprintf("rbtree: SelectRanks rank out of range [1,%d]", t.total))
	}
	i := 0
	var running uint64
	t.Ascend(func(key float64, count uint64) bool {
		running += count
		for running >= ranks[i] {
			out[i] = key
			i++
			if i == len(ranks) {
				return false
			}
			if ranks[i] < ranks[i-1] {
				panic("rbtree: SelectRanks ranks not sorted")
			}
		}
		return true
	})
}

// Ascend calls fn for each {value, count} pair in increasing value order,
// stopping early when fn returns false.
func (t *Tree) Ascend(fn func(key float64, count uint64) bool) {
	t.ascend(t.root, fn)
}

func (t *Tree) ascend(i int32, fn func(float64, uint64) bool) bool {
	if i == nilIdx {
		return true
	}
	n := &t.nodes[i]
	if !t.ascend(n.left, fn) {
		return false
	}
	if !fn(n.key, n.count) {
		return false
	}
	return t.ascend(n.right, fn)
}

// Descend calls fn for each {value, count} pair in decreasing value order,
// stopping early when fn returns false.
func (t *Tree) Descend(fn func(key float64, count uint64) bool) {
	t.descend(t.root, fn)
}

func (t *Tree) descend(i int32, fn func(float64, uint64) bool) bool {
	if i == nilIdx {
		return true
	}
	n := &t.nodes[i]
	if !t.descend(n.right, fn) {
		return false
	}
	if !fn(n.key, n.count) {
		return false
	}
	return t.descend(n.left, fn)
}

// TopK returns up to k of the largest elements (counting duplicates) in
// descending order.
func (t *Tree) TopK(k int) []float64 {
	if k <= 0 {
		return nil
	}
	return t.AppendTopK(make([]float64, 0, k), k)
}

// AppendTopK appends up to k of the largest elements (counting duplicates,
// descending) to dst and returns the extended slice. Passing a scratch
// slice with spare capacity makes the tail capture of a seal
// allocation-free.
func (t *Tree) AppendTopK(dst []float64, k int) []float64 {
	if k <= 0 {
		return dst
	}
	want := len(dst) + k
	t.Descend(func(key float64, count uint64) bool {
		for j := uint64(0); j < count; j++ {
			dst = append(dst, key)
			if len(dst) == want {
				return false
			}
		}
		return true
	})
	return dst
}

// Clear resets the tree to empty. The arena keeps its capacity, so the
// next fill cycle re-uses the same backing array instead of handing the
// nodes to the garbage collector.
func (t *Tree) Clear() {
	t.root = nilIdx
	t.free = nilIdx
	t.unique = 0
	t.total = 0
	t.dirty = false
	t.zeroOK = false
	t.epoch++ // invalidates every insert-cache entry without wiping the table
	if len(t.nodes) > 0 {
		t.nodes = t.nodes[:1] // keep the sentinel
	}
}

// ResetCounts empties the tree's multiset while RETAINING its node set:
// every count drops to zero but keys, structure, arena, and — crucially —
// the insert cache stay intact. An accumulate-only workload whose value
// population is stable across cycles (QLOVE's period fill/seal loop over
// quantized telemetry) then re-inserts mostly into existing nodes: an O(1)
// cache hit or a descent with no allocation, no rebalancing rotations.
//
// Zero-count nodes are invisible to the multiset readers (Len, Count,
// Select, Rank, Quantile(s), SelectRanks, TopK) but still enumerated by
// Ascend/Descend and counted by Unique — Unique is the resident-state
// space cost. Min/Max read structure, not counts, so they are
// meaningless until the retained keys have been re-observed; Remove must
// not be mixed with ResetCounts. Use Clear to drop the node set.
func (t *Tree) ResetCounts() {
	ns := t.nodes
	for i := 1; i < len(ns); i++ {
		ns[i].count = 0 // free-list slots already carry zero counts
	}
	t.total = 0
	t.dirty = true
	t.zeroOK = true
}

// --- red-black rebalancing ---

func (t *Tree) rotateLeft(x int32) {
	ns := t.nodes
	y := ns[x].right
	ns[x].right = ns[y].left
	if ns[y].left != nilIdx {
		ns[ns[y].left].parent = x
	}
	xp := ns[x].parent
	ns[y].parent = xp
	switch {
	case xp == nilIdx:
		t.root = y
	case x == ns[xp].left:
		ns[xp].left = y
	default:
		ns[xp].right = y
	}
	ns[y].left = x
	ns[x].parent = y
}

func (t *Tree) rotateRight(x int32) {
	ns := t.nodes
	y := ns[x].left
	ns[x].left = ns[y].right
	if ns[y].right != nilIdx {
		ns[ns[y].right].parent = x
	}
	xp := ns[x].parent
	ns[y].parent = xp
	switch {
	case xp == nilIdx:
		t.root = y
	case x == ns[xp].right:
		ns[xp].right = y
	default:
		ns[xp].left = y
	}
	ns[y].right = x
	ns[x].parent = y
}

func (t *Tree) insertFixup(z int32) {
	ns := t.nodes
	for {
		p := ns[z].parent
		if p == nilIdx || ns[p].color != red {
			break
		}
		gp := ns[p].parent
		if p == ns[gp].left {
			u := ns[gp].right
			if u != nilIdx && ns[u].color == red {
				ns[p].color = black
				ns[u].color = black
				ns[gp].color = red
				z = gp
			} else {
				if z == ns[p].right {
					z = p
					t.rotateLeft(z)
					p = ns[z].parent
					gp = ns[p].parent
				}
				ns[p].color = black
				ns[gp].color = red
				t.rotateRight(gp)
			}
		} else {
			u := ns[gp].left
			if u != nilIdx && ns[u].color == red {
				ns[p].color = black
				ns[u].color = black
				ns[gp].color = red
				z = gp
			} else {
				if z == ns[p].left {
					z = p
					t.rotateRight(z)
					p = ns[z].parent
					gp = ns[p].parent
				}
				ns[p].color = black
				ns[gp].color = red
				t.rotateLeft(gp)
			}
		}
	}
	ns[t.root].color = black
}

func (t *Tree) minimum(i int32) int32 {
	for t.nodes[i].left != nilIdx {
		i = t.nodes[i].left
	}
	return i
}

// transplant replaces subtree u with subtree v.
func (t *Tree) transplant(u, v int32) {
	ns := t.nodes
	up := ns[u].parent
	switch {
	case up == nilIdx:
		t.root = v
	case u == ns[up].left:
		ns[up].left = v
	default:
		ns[up].right = v
	}
	if v != nilIdx {
		ns[v].parent = up
	}
}

func (t *Tree) deleteNode(z int32) {
	ns := t.nodes
	y := z
	yOrig := ns[y].color
	var x, xParent int32
	switch {
	case ns[z].left == nilIdx:
		x = ns[z].right
		xParent = ns[z].parent
		t.transplant(z, ns[z].right)
	case ns[z].right == nilIdx:
		x = ns[z].left
		xParent = ns[z].parent
		t.transplant(z, ns[z].left)
	default:
		y = t.minimum(ns[z].right)
		yOrig = ns[y].color
		x = ns[y].right
		if ns[y].parent == z {
			xParent = y
		} else {
			xParent = ns[y].parent
			t.transplant(y, ns[y].right)
			ns[y].right = ns[z].right
			ns[ns[y].right].parent = y
		}
		t.transplant(z, y)
		ns[y].left = ns[z].left
		ns[ns[y].left].parent = y
		ns[y].color = ns[z].color
	}
	if yOrig == black {
		t.deleteFixup(x, xParent)
	}
	t.release(z)
}

// colorOf reads a node's color, treating the nil sentinel as black.
func colorOf(ns []node, i int32) color {
	if i == nilIdx {
		return black
	}
	return ns[i].color
}

func (t *Tree) deleteFixup(x, parent int32) {
	ns := t.nodes
	for x != t.root && colorOf(ns, x) == black {
		if parent == nilIdx {
			break
		}
		if x == ns[parent].left {
			w := ns[parent].right
			if colorOf(ns, w) == red {
				ns[w].color = black
				ns[parent].color = red
				t.rotateLeft(parent)
				w = ns[parent].right
			}
			if w == nilIdx {
				x = parent
				parent = ns[x].parent
				continue
			}
			if colorOf(ns, ns[w].left) == black && colorOf(ns, ns[w].right) == black {
				ns[w].color = red
				x = parent
				parent = ns[x].parent
			} else {
				if colorOf(ns, ns[w].right) == black {
					if ns[w].left != nilIdx {
						ns[ns[w].left].color = black
					}
					ns[w].color = red
					t.rotateRight(w)
					w = ns[parent].right
				}
				ns[w].color = ns[parent].color
				ns[parent].color = black
				if ns[w].right != nilIdx {
					ns[ns[w].right].color = black
				}
				t.rotateLeft(parent)
				x = t.root
				parent = nilIdx
			}
		} else {
			w := ns[parent].left
			if colorOf(ns, w) == red {
				ns[w].color = black
				ns[parent].color = red
				t.rotateRight(parent)
				w = ns[parent].left
			}
			if w == nilIdx {
				x = parent
				parent = ns[x].parent
				continue
			}
			if colorOf(ns, ns[w].right) == black && colorOf(ns, ns[w].left) == black {
				ns[w].color = red
				x = parent
				parent = ns[x].parent
			} else {
				if colorOf(ns, ns[w].left) == black {
					if ns[w].right != nilIdx {
						ns[ns[w].right].color = black
					}
					ns[w].color = red
					t.rotateLeft(w)
					w = ns[parent].left
				}
				ns[w].color = ns[parent].color
				ns[parent].color = black
				if ns[w].left != nilIdx {
					ns[ns[w].left].color = black
				}
				t.rotateRight(parent)
				x = t.root
				parent = nilIdx
			}
		}
	}
	if x != nilIdx {
		ns[x].color = black
	}
}
