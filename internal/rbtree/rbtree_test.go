package rbtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New()
	if !tr.Empty() || tr.Len() != 0 || tr.Unique() != 0 {
		t.Fatalf("new tree not empty: len=%d unique=%d", tr.Len(), tr.Unique())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Remove(1.0) {
		t.Fatal("Remove on empty tree returned true")
	}
	if got := tr.Count(1.0); got != 0 {
		t.Fatalf("Count on empty tree = %d", got)
	}
	if got := tr.Rank(5); got != 0 {
		t.Fatalf("Rank on empty tree = %d", got)
	}
}

func TestPanicsOnEmpty(t *testing.T) {
	for name, fn := range map[string]func(*Tree){
		"Min":       func(tr *Tree) { tr.Min() },
		"Max":       func(tr *Tree) { tr.Max() },
		"Quantile":  func(tr *Tree) { tr.Quantile(0.5) },
		"Quantiles": func(tr *Tree) { tr.Quantiles([]float64{0.5}) },
		"Select":    func(tr *Tree) { tr.Select(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty tree did not panic", name)
				}
			}()
			fn(New())
		}()
	}
}

func TestInsertDuplicates(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert(42)
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d, want 100", tr.Len())
	}
	if tr.Unique() != 1 {
		t.Fatalf("Unique = %d, want 1", tr.Unique())
	}
	if got := tr.Count(42); got != 100 {
		t.Fatalf("Count(42) = %d, want 100", got)
	}
	if got := tr.Quantile(0.5); got != 42 {
		t.Fatalf("Quantile(0.5) = %v, want 42", got)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertN(t *testing.T) {
	tr := New()
	tr.InsertN(7, 5)
	tr.InsertN(3, 2)
	tr.InsertN(7, 3)
	tr.InsertN(9, 0) // no-op
	if tr.Len() != 10 {
		t.Fatalf("Len = %d, want 10", tr.Len())
	}
	if tr.Unique() != 2 {
		t.Fatalf("Unique = %d, want 2", tr.Unique())
	}
	if got := tr.Count(7); got != 8 {
		t.Fatalf("Count(7) = %d, want 8", got)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMinMax(t *testing.T) {
	tr := New()
	vals := []float64{5, 1, 9, 3, 7, -2, 100}
	for _, v := range vals {
		tr.Insert(v)
	}
	if got := tr.Min(); got != -2 {
		t.Fatalf("Min = %v, want -2", got)
	}
	if got := tr.Max(); got != 100 {
		t.Fatalf("Max = %v, want 100", got)
	}
}

func TestSelectAgainstSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := New()
	var ref []float64
	for i := 0; i < 2000; i++ {
		v := math.Floor(rng.Float64() * 100) // force duplicates
		tr.Insert(v)
		ref = append(ref, v)
	}
	sort.Float64s(ref)
	for r := uint64(1); r <= uint64(len(ref)); r += 37 {
		if got, want := tr.Select(r), ref[r-1]; got != want {
			t.Fatalf("Select(%d) = %v, want %v", r, got, want)
		}
	}
	if got, want := tr.Select(1), ref[0]; got != want {
		t.Fatalf("Select(1) = %v, want %v", got, want)
	}
	if got, want := tr.Select(uint64(len(ref))), ref[len(ref)-1]; got != want {
		t.Fatalf("Select(n) = %v, want %v", got, want)
	}
}

func TestSelectOutOfRangePanics(t *testing.T) {
	tr := New()
	tr.Insert(1)
	for _, r := range []uint64{0, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Select(%d) did not panic", r)
				}
			}()
			tr.Select(r)
		}()
	}
}

func TestRank(t *testing.T) {
	tr := New()
	for _, v := range []float64{10, 20, 20, 30} {
		tr.Insert(v)
	}
	cases := []struct {
		key  float64
		want uint64
	}{
		{5, 0}, {10, 1}, {15, 1}, {20, 3}, {25, 3}, {30, 4}, {35, 4},
	}
	for _, c := range cases {
		if got := tr.Rank(c.key); got != c.want {
			t.Errorf("Rank(%v) = %d, want %d", c.key, got, c.want)
		}
	}
}

func TestQuantileDefinition(t *testing.T) {
	// ϕ-quantile is the element at 1-based rank ceil(ϕN).
	tr := New()
	for i := 1; i <= 100; i++ {
		tr.Insert(float64(i))
	}
	cases := []struct {
		phi  float64
		want float64
	}{
		{0.5, 50}, {0.9, 90}, {0.99, 99}, {0.999, 100}, {1.0, 100}, {0.001, 1}, {0.011, 2},
	}
	for _, c := range cases {
		if got := tr.Quantile(c.phi); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.phi, got, c.want)
		}
	}
}

func TestQuantilesSinglePassMatchesSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := New()
	for i := 0; i < 5000; i++ {
		tr.Insert(math.Floor(rng.ExpFloat64() * 1000))
	}
	phis := []float64{0.1, 0.5, 0.9, 0.99, 0.999}
	got := tr.Quantiles(phis)
	for i, phi := range phis {
		if want := tr.Quantile(phi); got[i] != want {
			t.Errorf("Quantiles[%d] (ϕ=%v) = %v, want %v", i, phi, got[i], want)
		}
	}
}

func TestQuantilesRepeatedPhis(t *testing.T) {
	tr := New()
	for i := 1; i <= 10; i++ {
		tr.Insert(float64(i))
	}
	got := tr.Quantiles([]float64{0.5, 0.5, 0.9})
	want := []float64{5, 5, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Quantiles = %v, want %v", got, want)
		}
	}
}

func TestQuantilesEmptyPhis(t *testing.T) {
	tr := New()
	tr.Insert(1)
	if got := tr.Quantiles(nil); got != nil {
		t.Fatalf("Quantiles(nil) = %v, want nil", got)
	}
}

func TestRemove(t *testing.T) {
	tr := New()
	for _, v := range []float64{5, 5, 3, 8} {
		tr.Insert(v)
	}
	if !tr.Remove(5) {
		t.Fatal("Remove(5) = false")
	}
	if tr.Count(5) != 1 || tr.Len() != 3 || tr.Unique() != 3 {
		t.Fatalf("after first remove: count=%d len=%d unique=%d", tr.Count(5), tr.Len(), tr.Unique())
	}
	if !tr.Remove(5) {
		t.Fatal("second Remove(5) = false")
	}
	if tr.Count(5) != 0 || tr.Unique() != 2 {
		t.Fatalf("after second remove: count=%d unique=%d", tr.Count(5), tr.Unique())
	}
	if tr.Remove(5) {
		t.Fatal("third Remove(5) = true, key should be gone")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomInsertRemoveInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := New()
	live := map[float64]uint64{}
	var total uint64
	for i := 0; i < 20000; i++ {
		v := math.Floor(rng.Float64() * 200)
		if rng.Intn(3) == 0 && total > 0 {
			// remove a random live key
			for k := range live {
				if !tr.Remove(k) {
					t.Fatalf("Remove(%v) failed for live key", k)
				}
				live[k]--
				if live[k] == 0 {
					delete(live, k)
				}
				total--
				break
			}
		} else {
			tr.Insert(v)
			live[v]++
			total++
		}
		if i%997 == 0 {
			if total > 0 {
				_ = tr.Select(1) // force the lazy weight rebuild so invariants cover it
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	if tr.Len() != total {
		t.Fatalf("Len = %d, want %d", tr.Len(), total)
	}
	if tr.Unique() != len(live) {
		t.Fatalf("Unique = %d, want %d", tr.Unique(), len(live))
	}
	for k, c := range live {
		if got := tr.Count(k); got != c {
			t.Fatalf("Count(%v) = %d, want %d", k, got, c)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAscendDescendOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.Insert(math.Floor(rng.Float64() * 100))
	}
	prev := math.Inf(-1)
	tr.Ascend(func(k float64, c uint64) bool {
		if k <= prev {
			t.Fatalf("Ascend out of order: %v after %v", k, prev)
		}
		if c == 0 {
			t.Fatal("Ascend yielded zero count")
		}
		prev = k
		return true
	})
	prev = math.Inf(1)
	tr.Descend(func(k float64, c uint64) bool {
		if k >= prev {
			t.Fatalf("Descend out of order: %v after %v", k, prev)
		}
		prev = k
		return true
	})
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert(float64(i))
	}
	n := 0
	tr.Ascend(func(k float64, c uint64) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("Ascend visited %d nodes after early stop, want 5", n)
	}
}

func TestTopK(t *testing.T) {
	tr := New()
	for _, v := range []float64{1, 9, 9, 5, 7, 3} {
		tr.Insert(v)
	}
	got := tr.TopK(4)
	want := []float64{9, 9, 7, 5}
	if len(got) != len(want) {
		t.Fatalf("TopK = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopK = %v, want %v", got, want)
		}
	}
	if got := tr.TopK(0); got != nil {
		t.Fatalf("TopK(0) = %v, want nil", got)
	}
	if got := tr.TopK(100); len(got) != 6 {
		t.Fatalf("TopK(100) returned %d values, want 6", len(got))
	}
}

func TestClear(t *testing.T) {
	tr := New()
	for i := 0; i < 50; i++ {
		tr.Insert(float64(i))
	}
	tr.Clear()
	if !tr.Empty() || tr.Unique() != 0 {
		t.Fatal("Clear did not empty the tree")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	tr.Insert(5)
	if tr.Len() != 1 {
		t.Fatal("tree unusable after Clear")
	}
}

// Property: for any sequence of inserts, Select agrees with a sorted slice
// and invariants hold.
func TestQuickSelectMatchesSort(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		tr := New()
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r % 512)
			tr.Insert(vals[i])
		}
		_ = tr.Select(1) // rebuild lazy weights so invariants cover them
		if err := tr.CheckInvariants(); err != nil {
			t.Logf("invariants: %v", err)
			return false
		}
		sort.Float64s(vals)
		for _, phi := range []float64{0.01, 0.25, 0.5, 0.75, 0.99, 1} {
			r := int(math.Ceil(phi * float64(len(vals))))
			if r < 1 {
				r = 1
			}
			if tr.Quantile(phi) != vals[r-1] {
				t.Logf("phi=%v: got %v want %v", phi, tr.Quantile(phi), vals[r-1])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: insert-then-remove-all returns to empty with valid invariants.
func TestQuickInsertRemoveAll(t *testing.T) {
	f := func(raw []uint8) bool {
		tr := New()
		for _, r := range raw {
			tr.Insert(float64(r))
		}
		for _, r := range raw {
			if !tr.Remove(float64(r)) {
				return false
			}
		}
		return tr.Empty() && tr.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Rank and Select are inverse-consistent.
func TestQuickRankSelectConsistent(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		tr := New()
		for _, r := range raw {
			tr.Insert(float64(r % 128))
		}
		for r := uint64(1); r <= tr.Len(); r++ {
			v := tr.Select(r)
			// Rank(v) is the highest rank at value v, so it must be >= r,
			// and Select(Rank(v)) must equal v.
			rk := tr.Rank(v)
			if rk < r || tr.Select(rk) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestClearRecyclesArena(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.Insert(float64(i % 300))
	}
	capBefore := tr.Cap()
	if capBefore < 300 {
		t.Fatalf("Cap = %d after 300 unique inserts", capBefore)
	}
	tr.Clear()
	if tr.Cap() != capBefore {
		t.Fatalf("Clear dropped arena capacity: %d -> %d", capBefore, tr.Cap())
	}
	// Refilling the same working set must not touch the heap.
	allocs := testing.AllocsPerRun(20, func() {
		tr.Clear()
		for i := 0; i < 1000; i++ {
			tr.Insert(float64(i % 300))
		}
	})
	if allocs != 0 {
		t.Fatalf("fill/Clear cycle allocates %v, want 0", allocs)
	}
	if tr.Len() != 1000 || tr.Unique() != 300 {
		t.Fatalf("len=%d unique=%d after refill", tr.Len(), tr.Unique())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReserve(t *testing.T) {
	tr := New()
	tr.Reserve(500)
	capReserved := tr.Cap()
	if capReserved < 500 {
		t.Fatalf("Cap = %d after Reserve(500)", capReserved)
	}
	tr.Insert(1)
	if tr.Cap() != capReserved {
		t.Fatalf("first insert replaced the reserved arena: cap %d -> %d", capReserved, tr.Cap())
	}
	// Pre-populate the insert cache (allocated lazily on first insert),
	// then the reserved arena must absorb 500 distinct keys heap-free.
	allocs := testing.AllocsPerRun(1, func() {
		for i := 0; i < 500; i++ {
			tr.Insert(float64(i))
		}
	})
	if allocs != 0 {
		t.Fatalf("inserts into reserved arena allocate %v, want 0", allocs)
	}
	if tr.Cap() != capReserved {
		t.Fatalf("reserved arena grew: cap %d -> %d", capReserved, tr.Cap())
	}
}

func TestInsertCacheSurvivesMutations(t *testing.T) {
	// Hammer one key (cache-hit path), interleave removals and clears, and
	// verify the bookkeeping never desyncs.
	tr := New()
	for round := 0; round < 3; round++ {
		for i := 0; i < 100; i++ {
			tr.Insert(42)
			tr.Insert(1000 + float64(i)) // disjoint from the hot key
		}
		if got := tr.Count(42); got != 100 {
			t.Fatalf("round %d: Count(42) = %d", round, got)
		}
		// Remove the hot key entirely; its cache entry must not resurrect it.
		for i := 0; i < 100; i++ {
			if !tr.Remove(42) {
				t.Fatalf("round %d: Remove(42) #%d failed", round, i)
			}
		}
		if got := tr.Count(42); got != 0 {
			t.Fatalf("round %d: Count(42) = %d after removal", round, got)
		}
		tr.Insert(42) // re-insert lands on a fresh node, not the freed slot's ghost
		if got := tr.Count(42); got != 1 {
			t.Fatalf("round %d: Count(42) = %d after re-insert", round, got)
		}
		_ = tr.Select(1)
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		tr.Clear()
		if !tr.Empty() {
			t.Fatal("Clear left elements")
		}
	}
}

func TestLazyWeightsRebuild(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(9))
	ref := make([]float64, 0, 3000)
	for i := 0; i < 3000; i++ {
		v := math.Floor(rng.Float64() * 250)
		tr.Insert(v)
		ref = append(ref, v)
	}
	sort.Float64s(ref)
	// Select triggers the rebuild; afterwards invariants must validate the
	// weight bookkeeping (the tree is clean).
	for _, r := range []uint64{1, 500, 1500, 3000} {
		if got, want := tr.Select(r), ref[r-1]; got != want {
			t.Fatalf("Select(%d) = %v, want %v", r, got, want)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Mutate again (weights go stale), then read again.
	tr.Insert(-5)
	if got := tr.Select(1); got != -5 {
		t.Fatalf("Select(1) = %v after insert, want -5", got)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSelectRanks(t *testing.T) {
	tr := New()
	for i := 1; i <= 100; i++ {
		tr.Insert(float64(i))
	}
	ranks := []uint64{1, 1, 50, 90, 99, 100}
	out := make([]float64, len(ranks))
	tr.SelectRanks(ranks, out)
	for i, r := range ranks {
		if want := tr.Select(r); out[i] != want {
			t.Fatalf("SelectRanks[%d] (rank %d) = %v, want %v", i, r, out[i], want)
		}
	}
	// Empty request is a no-op even on an empty tree.
	New().SelectRanks(nil, nil)
}

func BenchmarkInsertDistinct(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert(float64(i))
	}
}

func BenchmarkInsertRedundant(b *testing.B) {
	// High-redundancy insert path: the paper's workloads have ~0.08% unique
	// values, so most inserts are count increments.
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert(float64(i % 1000))
	}
}

func BenchmarkQuantiles(b *testing.B) {
	tr := New()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		tr.Insert(math.Floor(rng.ExpFloat64() * 1000))
	}
	phis := []float64{0.5, 0.9, 0.99, 0.999}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Quantiles(phis)
	}
}
