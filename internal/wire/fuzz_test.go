package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
)

// FuzzDecode drives arbitrary bytes through the frame decoder: whatever
// the input, DecodeFrame must return a clean io.EOF, a wrapped sentinel
// error, or a valid frame that survives a re-encode/re-decode round trip —
// and must never panic. Seeds cover the golden blobs of EVERY format
// version (full, delta and tombstone frames, plus a mixed-version stream)
// and representative corruptions, so the fuzzer starts at the format's
// surface instead of rediscovering the magic number.
func FuzzDecode(f *testing.F) {
	goldenV1 := goldenBlobV1(f)
	goldenV2 := goldenBlobV2(f)
	f.Add(goldenV1)
	f.Add(goldenV2)
	f.Add(append(append([]byte(nil), goldenV1...), goldenV2...)) // mixed-version stream
	f.Add(goldenV1[:len(goldenV1)/2])
	f.Add(goldenV2[:len(goldenV2)/2])
	f.Add(goldenV2[:headerSize])
	f.Add([]byte{})
	f.Add([]byte("QLVS"))
	f.Add(AppendTombstoneFrame(nil, "gone"))
	corrupt := append([]byte(nil), goldenV1...)
	corrupt[headerSize+3] ^= 0xFF
	f.Add(corrupt)
	corruptKind := append([]byte(nil), goldenV2...)
	corruptKind[headerSize] = 7 // unknown frame kind
	f.Add(corruptKind)
	f.Fuzz(func(t *testing.T, blob []byte) {
		dec := NewDecoder(bytes.NewReader(blob))
		for {
			fr, err := dec.DecodeFrame()
			if err == io.EOF {
				return
			}
			if err != nil {
				if !errors.Is(err, ErrMagic) && !errors.Is(err, ErrVersion) &&
					!errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("error wraps no sentinel: %v", err)
				}
				return
			}
			// A successful decode must be canonical: re-encoding and
			// re-decoding reproduces the frame's meaning exactly.
			switch fr.Kind {
			case KindFull:
				reenc := AppendFrame(nil, fr.Key, fr.Snap)
				key2, snap2, err := Decode(bytes.NewReader(reenc))
				if err != nil {
					t.Fatalf("re-encoded full frame fails to decode: %v", err)
				}
				if key2 != fr.Key {
					t.Fatalf("key %q -> %q across re-encode", fr.Key, key2)
				}
				a, b := fr.Snap.Estimates(), snap2.Estimates()
				for j := range a {
					if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
						t.Fatalf("estimates diverge across re-encode: %v != %v", a, b)
					}
				}
				if snap2.SealGen() != fr.Snap.SealGen() {
					t.Fatalf("seal generation %d -> %d across re-encode", fr.Snap.SealGen(), snap2.SealGen())
				}
			case KindDelta:
				reenc := AppendDeltaFrame(nil, fr.Key, fr.Delta)
				f2, err := NewDecoder(bytes.NewReader(reenc)).DecodeFrame()
				if err != nil {
					t.Fatalf("re-encoded delta frame fails to decode: %v", err)
				}
				if f2.Kind != KindDelta || f2.Key != fr.Key {
					t.Fatalf("delta re-decoded as %v %q", f2.Kind, f2.Key)
				}
				if !reflect.DeepEqual(f2.Delta, fr.Delta) {
					t.Fatalf("delta diverges across re-encode")
				}
			case KindTombstone:
				reenc := AppendTombstoneFrame(nil, fr.Key)
				f2, err := NewDecoder(bytes.NewReader(reenc)).DecodeFrame()
				if err != nil || f2.Kind != KindTombstone || f2.Key != fr.Key {
					t.Fatalf("tombstone re-encode: %v %v %q", err, f2.Kind, f2.Key)
				}
			}
		}
	})
}
