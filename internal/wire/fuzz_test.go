package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

// FuzzDecode drives arbitrary bytes through the decoder: whatever the
// input, Decode must return a clean io.EOF, a wrapped sentinel error, or a
// valid Snapshot that survives a re-encode/re-decode round trip
// bit-for-bit — and must never panic. Seeds cover the golden captures plus
// representative corruptions so the fuzzer starts at the format's surface
// instead of rediscovering the magic number.
func FuzzDecode(f *testing.F) {
	golden := goldenBlob(f)
	f.Add(golden)
	f.Add(golden[:len(golden)/2])
	f.Add(golden[:headerSize])
	f.Add([]byte{})
	f.Add([]byte("QLVS"))
	corrupt := append([]byte(nil), golden...)
	corrupt[headerSize+3] ^= 0xFF
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, blob []byte) {
		dec := NewDecoder(bytes.NewReader(blob))
		for {
			key, snap, err := dec.Decode()
			if err == io.EOF {
				return
			}
			if err != nil {
				if !errors.Is(err, ErrMagic) && !errors.Is(err, ErrVersion) &&
					!errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("error wraps no sentinel: %v", err)
				}
				return
			}
			// A successful decode must be canonical: re-encoding and
			// re-decoding answers the same estimates from the same key.
			reenc := AppendFrame(nil, key, snap)
			key2, snap2, err := Decode(bytes.NewReader(reenc))
			if err != nil {
				t.Fatalf("re-encoded frame fails to decode: %v", err)
			}
			if key2 != key {
				t.Fatalf("key %q -> %q across re-encode", key, key2)
			}
			a, b := snap.Estimates(), snap2.Estimates()
			for j := range a {
				if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
					t.Fatalf("estimates diverge across re-encode: %v != %v", a, b)
				}
			}
		}
	})
}
