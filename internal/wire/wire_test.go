package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/window"
	"repro/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "regenerate the testdata golden blobs (every version)")

func mustPolicy(t testing.TB, cfg core.Config) *core.Policy {
	t.Helper()
	p, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// randomConfig draws a valid configuration: window shape, ϕ set, few-k
// mode and quantization vary per iteration.
func randomConfig(rng *rand.Rand) core.Config {
	period := 8 << rng.Intn(5)         // 8..128
	size := period * (1 + rng.Intn(8)) // 1..8 sub-windows
	phiPool := []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.995, 0.999}
	lo := rng.Intn(len(phiPool) - 1)
	hi := lo + 1 + rng.Intn(len(phiPool)-lo-1)
	cfg := core.Config{
		Spec: window.Spec{Size: size, Period: period},
		Phis: phiPool[lo : hi+1],
		FewK: rng.Intn(2) == 0,
	}
	switch rng.Intn(4) {
	case 0:
		cfg.Digits = -1
	case 1:
		cfg.Digits = 2
	}
	if cfg.FewK {
		switch rng.Intn(4) {
		case 0:
			cfg.TopKOnly = true
		case 1:
			cfg.SampleKOnly = true
		case 2:
			cfg.Fraction = 0.25 + rng.Float64()/2
		}
	}
	return cfg
}

// TestRoundTripProperty: over randomized configurations and ingestion
// histories, encode→decode→Merge→Estimates is bit-identical to the
// never-serialized path, and the decoded parts deep-equal the originals.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 60; iter++ {
		cfg := randomConfig(rng)
		var snaps []core.Snapshot
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		shards := 1 + rng.Intn(3)
		for s := 0; s < shards; s++ {
			p := mustPolicy(t, cfg)
			n := cfg.Spec.Size + rng.Intn(2*cfg.Spec.Size)
			p.ObserveBatch(workload.Generate(workload.NewNetMon(rng.Int63()), n))
			snap := p.Snapshot()
			snaps = append(snaps, snap)
			if _, err := enc.Encode("", snap); err != nil {
				t.Fatalf("iter %d: encode: %v", iter, err)
			}
		}
		dec := NewDecoder(bytes.NewReader(buf.Bytes()))
		var decoded []core.Snapshot
		for {
			_, snap, err := dec.Decode()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("iter %d (%+v): decode: %v", iter, cfg, err)
			}
			decoded = append(decoded, snap)
		}
		if len(decoded) != shards {
			t.Fatalf("iter %d: %d frames decoded, want %d", iter, len(decoded), shards)
		}
		if got := dec.Consumed(); got != int64(buf.Len()) {
			t.Fatalf("iter %d: consumed %d of %d bytes", iter, got, buf.Len())
		}
		for s := range snaps {
			if !reflect.DeepEqual(decoded[s].Parts(), snaps[s].Parts()) {
				t.Fatalf("iter %d shard %d: decoded parts differ", iter, s)
			}
		}
		live, err := core.MergeSnapshots(snaps)
		if err != nil {
			t.Fatal(err)
		}
		rebuilt, err := core.MergeSnapshots(decoded)
		if err != nil {
			t.Fatalf("iter %d: decoded captures refuse to merge: %v", iter, err)
		}
		want, got := live.Estimates(), rebuilt.Estimates()
		for j := range want {
			if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
				t.Fatalf("iter %d ϕ=%v: serialized merge %v != live merge %v",
					iter, cfg.Phis[j], got[j], want[j])
			}
		}
	}
}

// TestKeyedFraming: keys survive the trip and appended blobs decode as one
// stream.
func TestKeyedFraming(t *testing.T) {
	cfg := core.Config{Spec: window.Spec{Size: 200, Period: 50}, Phis: []float64{0.5, 0.99}, FewK: true}
	frameFor := func(key string, seed int64) []byte {
		p := mustPolicy(t, cfg)
		p.ObserveBatch(workload.Generate(workload.NewNetMon(seed), cfg.Spec.Size))
		return AppendFrame(nil, key, p.Snapshot())
	}
	// Two "worker blobs" concatenated — the append-friendly framing the
	// aggregator relies on.
	blob := append(frameFor("api/latency", 1), frameFor("", 2)...)
	blob = append(blob, frameFor("api/latency", 3)...)
	dec := NewDecoder(bytes.NewReader(blob))
	var keys []string
	for {
		key, snap, err := dec.Decode()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if snap.IsZero() {
			t.Fatal("decoded zero snapshot")
		}
		keys = append(keys, key)
	}
	if want := []string{"api/latency", "", "api/latency"}; !reflect.DeepEqual(keys, want) {
		t.Fatalf("keys %q, want %q", keys, want)
	}
}

// TestEncodeRejectsZeroSnapshot: the zero value has no config to describe
// itself with.
func TestEncodeRejectsZeroSnapshot(t *testing.T) {
	if _, err := Encode(io.Discard, "k", core.Snapshot{}); err == nil {
		t.Fatal("zero snapshot encoded")
	}
}

// validFrame builds one deterministic well-formed frame for the corruption
// table.
func validFrame(t testing.TB) []byte {
	t.Helper()
	p, err := core.New(core.Config{
		Spec: window.Spec{Size: 1600, Period: 400},
		Phis: []float64{0.5, 0.9, 0.99},
		FewK: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.ObserveBatch(workload.Generate(workload.NewNetMon(5), 2000))
	return AppendFrame(nil, "k", p.Snapshot())
}

// TestDecodeCorruptionTable: every malformed input yields a wrapped
// sentinel error — never a panic, never a silent misparse.
func TestDecodeCorruptionTable(t *testing.T) {
	frame := validFrame(t)
	flip := func(off int, b byte) []byte {
		c := append([]byte(nil), frame...)
		c[off] = b
		return c
	}
	cases := []struct {
		name string
		blob []byte
		want error
	}{
		{"empty mid-header", frame[:3], ErrTruncated},
		{"bad magic", flip(0, 'X'), ErrMagic},
		{"version zero", flip(4, 0), ErrVersion},
		{"version future", flip(4, 3), ErrVersion},
		{"unknown frame kind", flip(headerSize, 9), ErrCorrupt},
		{"payload length beyond stream", flip(6, 0xFF), ErrTruncated},
		{"payload length short", flip(6, 1), ErrCorrupt}, // trailing bytes parsed as next frame: bad magic OR corrupt payload
		{"inner count overflow", corruptInnerCount(frame), ErrCorrupt},
		{"garbage payload", append(append([]byte(nil), frame[:headerSize]...), make([]byte, len(frame)-headerSize)...), ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := Decode(bytes.NewReader(tc.blob))
			if err == nil {
				t.Fatal("decoded corrupt frame")
			}
			if err == io.EOF {
				t.Fatal("corrupt frame reported as clean EOF")
			}
			if tc.name == "payload length short" {
				// The shortened frame itself fails validation; exactly which
				// sentinel depends on where parsing falls off.
				if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
					t.Fatalf("error %v wraps no sentinel", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v, want wrapped %v", err, tc.want)
			}
		})
	}
}

// corruptInnerCount blows up the ϕ-count varint inside the payload so the
// pre-allocation bound check must fire.
func corruptInnerCount(frame []byte) []byte {
	c := append([]byte(nil), frame...)
	// v2 payload layout: kind(1), key len(1)+key(1), size(varint),
	// period(varint), digits(varint), flags(1), 4 float64s, then the ϕ
	// count varint.
	off := headerSize
	off += 1                 // frame kind
	off += 2                 // key
	for i := 0; i < 3; i++ { // three uvarints
		for c[off]&0x80 != 0 {
			off++
		}
		off++
	}
	off += 1 + 4*8 // flags + fraction/statThreshold/burstAlpha/highPhiMin
	c[off] = 0xFF  // ϕ count becomes a huge varint
	c[off+1] |= 0x80
	c[off+2] = 0x7F
	return c
}

// TestDecodeTruncationSweep: a frame cut at EVERY byte boundary fails
// cleanly (or, at length 0, reports clean EOF).
func TestDecodeTruncationSweep(t *testing.T) {
	frame := validFrame(t)
	for n := 0; n < len(frame); n++ {
		_, _, err := Decode(bytes.NewReader(frame[:n]))
		if n == 0 {
			if err != io.EOF {
				t.Fatalf("empty stream: %v, want io.EOF", err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("truncation at %d/%d decoded", n, len(frame))
		}
		if err == io.EOF {
			t.Fatalf("truncation at %d/%d reported as clean EOF", n, len(frame))
		}
	}
}

// TestDecodeValuePolicy: NaN is rejected in every float position; a
// non-descending tail is rejected.
func TestDecodeValuePolicy(t *testing.T) {
	frame := validFrame(t)
	// Find the wire bytes of a known value and replace them with NaN bits:
	// quantile positions hold NetMon-generated floats, all of which appear
	// in the payload as 8 little-endian bytes.
	_, snap, err := Decode(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	target := snap.Parts().Summaries[0].Quantiles[0]
	pat := make([]byte, 8)
	for i := 0; i < 8; i++ {
		pat[i] = byte(math.Float64bits(target) >> (8 * i))
	}
	idx := bytes.Index(frame, pat)
	if idx < 0 {
		t.Fatal("quantile bytes not found in frame")
	}
	nan := append([]byte(nil), frame...)
	for i := 0; i < 8; i++ {
		nan[idx+i] = byte(math.Float64bits(math.NaN()) >> (8 * i))
	}
	if _, _, err := Decode(bytes.NewReader(nan)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("NaN payload: %v, want wrapped ErrCorrupt", err)
	}

	// A NaN in the configured ϕ array is the nastier case: every
	// comparison core's phi validation runs is false for NaN, so the
	// transport's own policy check must catch it.
	phiPat := make([]byte, 8)
	for i := 0; i < 8; i++ {
		phiPat[i] = byte(math.Float64bits(0.5) >> (8 * i))
	}
	pidx := bytes.Index(frame, phiPat)
	if pidx < 0 {
		t.Fatal("ϕ=0.5 bytes not found in frame")
	}
	nanPhi := append([]byte(nil), frame...)
	for i := 0; i < 8; i++ {
		nanPhi[pidx+i] = byte(math.Float64bits(math.NaN()) >> (8 * i))
	}
	if _, _, err := Decode(bytes.NewReader(nanPhi)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("NaN ϕ: %v, want wrapped ErrCorrupt", err)
	}

	// Ascending tail: build parts with a reversed tail through the core
	// constructor (structurally valid) and check the transport refuses it.
	parts := snap.Parts()
	parts.Summaries = append([]core.Summary(nil), parts.Summaries...)
	bad := parts.Summaries[0]
	if len(bad.Tails) == 0 || len(bad.Tails[0]) < 2 {
		t.Fatal("test frame has no multi-value tail")
	}
	tail := append([]float64(nil), bad.Tails[0]...)
	tail[0], tail[len(tail)-1] = tail[len(tail)-1], tail[0]
	bad.Tails = append([][]float64(nil), bad.Tails...)
	bad.Tails[0] = tail
	parts.Summaries[0] = bad
	badSnap, err := core.NewSnapshot(parts)
	if err != nil {
		t.Fatal(err)
	}
	blob := AppendFrame(nil, "", badSnap)
	if _, _, err := Decode(bytes.NewReader(blob)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ascending tail: %v, want wrapped ErrCorrupt", err)
	}
}

// goldenPathV1 and goldenPathV2 are the checked-in blobs pinning the bytes
// of every format version.
var (
	goldenPathV1 = filepath.Join("testdata", "golden_v1.bin")
	goldenPathV2 = filepath.Join("testdata", "golden_v2.bin")
)

// goldenCaptures rebuilds the two deterministic keyed captures every
// golden blob is derived from — fixed seeds, fixed configs, frozen
// forever.
func goldenCaptures(t testing.TB) []struct {
	key  string
	snap core.Snapshot
} {
	t.Helper()
	var out []struct {
		key  string
		snap core.Snapshot
	}
	for _, g := range []struct {
		key  string
		cfg  core.Config
		seed int64
		n    int
	}{
		{"api/latency", core.Config{Spec: window.Spec{Size: 256, Period: 64},
			Phis: []float64{0.5, 0.9, 0.99, 0.999}, FewK: true}, 42, 500},
		{"db/qps", core.Config{Spec: window.Spec{Size: 128, Period: 128},
			Phis: []float64{0.5, 0.95}, Digits: -1}, 43, 300},
	} {
		p := mustPolicy(t, g.cfg)
		p.ObserveBatch(workload.Generate(workload.NewNetMon(g.seed), g.n))
		out = append(out, struct {
			key  string
			snap core.Snapshot
		}{g.key, p.Snapshot()})
	}
	return out
}

// appendFrameV1 encodes one full frame in the FROZEN v1 layout (no kind
// byte, no seal generation). The production encoder only speaks the
// current version; this test-local copy exists so the v1 golden blob can
// be regenerated and so the fuzzer can seed mixed-version streams.
func appendFrameV1(dst []byte, key string, s core.Snapshot) []byte {
	dst = append(dst, magic[:]...)
	dst = binary.LittleEndian.AppendUint16(dst, VersionV1)
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	start := len(dst)
	p := s.Parts()
	dst = appendKey(dst, key)
	dst = appendConfig(dst, p.Config)
	dst = binary.AppendUvarint(dst, uint64(p.Streams))
	dst = appendF64s(dst, p.Sums)
	dst = appendSummaries(dst, p.Summaries)
	binary.LittleEndian.PutUint32(dst[lenAt:], uint32(len(dst)-start))
	return dst
}

// goldenBlobV1 rebuilds the v1 golden blob: the two captures as v1 full
// frames.
func goldenBlobV1(t testing.TB) []byte {
	t.Helper()
	var blob []byte
	for _, g := range goldenCaptures(t) {
		blob = appendFrameV1(blob, g.key, g.snap)
	}
	return blob
}

// goldenBlobV2 rebuilds the v2 golden blob, covering every v2 frame kind
// deterministically: the first capture as a full frame, the second
// advanced by further deterministic ingestion and shipped as a delta
// relative to its earlier generation, and a tombstone.
func goldenBlobV2(t testing.TB) []byte {
	t.Helper()
	caps := goldenCaptures(t)
	blob := AppendFrame(nil, caps[0].key, caps[0].snap)

	p := mustPolicy(t, caps[1].snap.Config())
	p.ObserveBatch(workload.Generate(workload.NewNetMon(43), 300))
	before := p.Snapshot()
	rest := workload.Generate(workload.NewNetMon(43), 500)[300:]
	p.ObserveBatch(rest)
	d, err := NewDelta(p.Snapshot(), before.SealGen())
	if err != nil {
		t.Fatal(err)
	}
	blob = AppendDeltaFrame(blob, caps[1].key, d)
	return AppendTombstoneFrame(blob, "gone/metric")
}

// TestGoldenCompatMatrix is the cross-version decode compatibility matrix:
// the checked-in golden blob of EVERY wire version must keep decoding
// through the current decoder with bit-identical estimates, and encoding
// today's captures must still produce the pinned bytes of the CURRENT
// version. Any layout change breaks a pin — which is the point: bump
// Version and add a new golden file instead of mutating a frozen layout.
func TestGoldenCompatMatrix(t *testing.T) {
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPathV1, goldenBlobV1(t), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPathV2, goldenBlobV2(t), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	refs := goldenCaptures(t)
	refEst := map[string][]float64{}
	for _, r := range refs {
		refEst[r.key] = r.snap.Estimates()
	}

	cases := []struct {
		version   int
		path      string
		rebuilt   []byte // non-nil pins encode: disk bytes must equal a fresh encoding
		wantKinds []Kind
		wantKeys  []string
	}{
		{
			version:   1,
			path:      goldenPathV1,
			rebuilt:   goldenBlobV1(t), // v1 regeneration logic is frozen in this file
			wantKinds: []Kind{KindFull, KindFull},
			wantKeys:  []string{"api/latency", "db/qps"},
		},
		{
			version:   Version,
			path:      goldenPathV2,
			rebuilt:   goldenBlobV2(t), // today's encoder must reproduce the pin
			wantKinds: []Kind{KindFull, KindDelta, KindTombstone},
			wantKeys:  []string{"api/latency", "db/qps", "gone/metric"},
		},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("v%d", tc.version), func(t *testing.T) {
			disk, err := os.ReadFile(tc.path)
			if err != nil {
				t.Fatalf("%v (run with -update-golden to generate)", err)
			}
			if !bytes.Equal(disk, tc.rebuilt) {
				t.Fatalf("golden blob drifted: %d bytes on disk, %d rebuilt — the v%d layout changed; bump Version instead",
					len(disk), len(tc.rebuilt), tc.version)
			}
			dec := NewDecoder(bytes.NewReader(disk))
			var frames []Frame
			for {
				f, err := dec.DecodeFrame()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("golden v%d blob no longer decodes: %v", tc.version, err)
				}
				frames = append(frames, f)
			}
			if len(frames) != len(tc.wantKinds) {
				t.Fatalf("decoded %d frames, want %d", len(frames), len(tc.wantKinds))
			}
			for i, f := range frames {
				if f.Kind != tc.wantKinds[i] || f.Key != tc.wantKeys[i] {
					t.Fatalf("frame %d: %v %q, want %v %q", i, f.Kind, f.Key, tc.wantKinds[i], tc.wantKeys[i])
				}
				if f.Kind != KindFull {
					continue
				}
				// Bit-identical Estimates against the captures rebuilt from
				// scratch today.
				want, ok := refEst[f.Key]
				if !ok {
					t.Fatalf("no reference capture for %q", f.Key)
				}
				got := f.Snap.Estimates()
				if len(got) != len(want) {
					t.Fatalf("key %q: %d estimates, want %d", f.Key, len(got), len(want))
				}
				for j := range want {
					if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
						t.Fatalf("v%d key %q ϕ[%d]: decoded %v != rebuilt %v", tc.version, f.Key, j, got[j], want[j])
					}
				}
				if tc.version == 1 && f.Snap.SealGen() != 0 {
					t.Fatalf("v1 capture reports seal generation %d, want 0 (untracked)", f.Snap.SealGen())
				}
				// Upgrade path: a capture decoded from ANY version re-encodes
				// under the current version and answers identically.
				key2, snap2, err := Decode(bytes.NewReader(AppendFrame(nil, f.Key, f.Snap)))
				if err != nil {
					t.Fatalf("v%d capture fails the upgrade re-encode: %v", tc.version, err)
				}
				if key2 != f.Key {
					t.Fatalf("key %q -> %q across upgrade re-encode", f.Key, key2)
				}
				got2 := snap2.Estimates()
				for j := range want {
					if math.Float64bits(got2[j]) != math.Float64bits(want[j]) {
						t.Fatalf("upgrade re-encode diverged for %q: %v != %v", f.Key, got2, want)
					}
				}
			}
		})
	}
}

// deltaSequence ingests one policy in chunks, returning a snapshot after
// each chunk — the generation ladder delta tests climb.
func deltaSequence(t testing.TB, cfg core.Config, seed int64, chunks []int) []core.Snapshot {
	t.Helper()
	total := 0
	for _, n := range chunks {
		total += n
	}
	data := workload.Generate(workload.NewNetMon(seed), total)
	p := mustPolicy(t, cfg)
	var snaps []core.Snapshot
	off := 0
	for _, n := range chunks {
		p.ObserveBatch(data[off : off+n])
		off += n
		snaps = append(snaps, p.Snapshot())
	}
	return snaps
}

// TestDeltaRoundTrip: a delta frame between any two generations of one
// operator encodes and decodes to exactly the parts it was built from, and
// its cursor arithmetic holds.
func TestDeltaRoundTrip(t *testing.T) {
	cfg := core.Config{Spec: window.Spec{Size: 512, Period: 128},
		Phis: []float64{0.5, 0.9, 0.99}, FewK: true}
	snaps := deltaSequence(t, cfg, 7, []int{600, 300, 512, 100, 1300})
	for i := 1; i < len(snaps); i++ {
		for j := 0; j < i; j++ {
			from := snaps[j].SealGen()
			d, err := NewDelta(snaps[i], from)
			if err != nil {
				t.Fatalf("delta %d<-%d: %v", i, j, err)
			}
			blob := AppendDeltaFrame(nil, "svc", d)
			f, err := NewDecoder(bytes.NewReader(blob)).DecodeFrame()
			if err != nil {
				t.Fatalf("delta %d<-%d decode: %v", i, j, err)
			}
			if f.Kind != KindDelta || f.Key != "svc" {
				t.Fatalf("decoded %v %q", f.Kind, f.Key)
			}
			if !reflect.DeepEqual(f.Delta, d) {
				t.Fatalf("delta %d<-%d: decoded delta differs\n got %+v\nwant %+v", i, j, f.Delta, d)
			}
			// Decode (snapshot-only) must refuse the same frame, loudly.
			if _, _, err := Decode(bytes.NewReader(blob)); !errors.Is(err, ErrFrameKind) {
				t.Fatalf("snapshot-only Decode of a delta: %v, want wrapped ErrFrameKind", err)
			}
		}
	}
	// A bootstrap delta (fromGen 0) carries the whole resident window.
	d, err := NewDelta(snaps[len(snaps)-1], 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Parts.Summaries) != d.Resident {
		t.Fatalf("bootstrap delta ships %d of %d resident summaries", len(d.Parts.Summaries), d.Resident)
	}
}

// TestTombstoneRoundTrip: tombstones carry exactly a key (empty included)
// and refuse trailing bytes.
func TestTombstoneRoundTrip(t *testing.T) {
	for _, key := range []string{"", "api/latency", "k"} {
		blob := AppendTombstoneFrame(nil, key)
		f, err := NewDecoder(bytes.NewReader(blob)).DecodeFrame()
		if err != nil {
			t.Fatalf("key %q: %v", key, err)
		}
		if f.Kind != KindTombstone || f.Key != key {
			t.Fatalf("key %q decoded as %v %q", key, f.Kind, f.Key)
		}
		if _, _, err := Decode(bytes.NewReader(blob)); !errors.Is(err, ErrFrameKind) {
			t.Fatalf("snapshot-only Decode of a tombstone: %v, want wrapped ErrFrameKind", err)
		}
	}
	bad := AppendTombstoneFrame(nil, "k")
	bad = append(bad, 0xAA)
	binary.LittleEndian.PutUint32(bad[6:10], uint32(len(bad)-headerSize))
	if _, err := NewDecoder(bytes.NewReader(bad)).DecodeFrame(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tombstone with trailing payload: %v, want wrapped ErrCorrupt", err)
	}
}

// TestDeltaCorruption: every violation of the delta cursor arithmetic is a
// wrapped ErrCorrupt, and encode-side validation catches the same bugs
// before they reach a stream.
func TestDeltaCorruption(t *testing.T) {
	cfg := core.Config{Spec: window.Spec{Size: 256, Period: 64}, Phis: []float64{0.5, 0.99}}
	snaps := deltaSequence(t, cfg, 11, []int{320, 320})
	// Cursor 3 generations back with a 4-summary window: the delta ships 3
	// summaries, strictly fewer than the window, so every mutation below
	// actually breaks the arithmetic.
	good, err := NewDelta(snaps[1], snaps[1].SealGen()-3)
	if err != nil {
		t.Fatal(err)
	}
	if len(good.Parts.Summaries) != 3 {
		t.Fatalf("test delta ships %d summaries, want 3", len(good.Parts.Summaries))
	}
	cases := []struct {
		name   string
		mutate func(d Delta) Delta
	}{
		{"cursor ahead of generation", func(d Delta) Delta { d.FromGen = d.Parts.SealGen + 1; return d }},
		{"resident exceeds generation", func(d Delta) Delta { d.Resident = int(d.Parts.SealGen) + 1; return d }},
		{"summary count off", func(d Delta) Delta { d.FromGen--; return d }}, // arithmetic now wants one more summary
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := tc.mutate(good)
			if _, err := NewEncoder(io.Discard).EncodeDelta("k", bad); err == nil {
				t.Fatal("encoder accepted a malformed delta")
			}
			blob := AppendDeltaFrame(nil, "k", bad) // unvalidated append path
			if _, err := NewDecoder(bytes.NewReader(blob)).DecodeFrame(); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode: %v, want wrapped ErrCorrupt", err)
			}
		})
	}
	// NewDelta itself refuses a cursor from the future and a
	// generation-less capture with resident summaries.
	if _, err := NewDelta(snaps[1], snaps[1].SealGen()+1); err == nil {
		t.Fatal("NewDelta accepted a future cursor")
	}
	parts := snaps[1].Parts()
	parts.SealGen = 0
	genless, err := core.NewSnapshot(parts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDelta(genless, 0); err == nil {
		t.Fatal("NewDelta accepted a generation-less capture with summaries")
	}
}

// TestMixedVersionStream: v1 and v2 frames of every kind concatenate into
// one stream and decode in order — the compatibility the per-frame version
// gate exists for.
func TestMixedVersionStream(t *testing.T) {
	caps := goldenCaptures(t)
	blob := appendFrameV1(nil, "old", caps[0].snap)
	blob = AppendFrame(blob, "new", caps[0].snap)
	blob = AppendTombstoneFrame(blob, "old")
	blob = appendFrameV1(blob, "old2", caps[1].snap)
	dec := NewDecoder(bytes.NewReader(blob))
	want := []struct {
		kind Kind
		key  string
		gen  uint64
	}{
		{KindFull, "old", 0},
		{KindFull, "new", caps[0].snap.SealGen()},
		{KindTombstone, "old", 0},
		{KindFull, "old2", 0},
	}
	for i, w := range want {
		f, err := dec.DecodeFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Kind != w.kind || f.Key != w.key {
			t.Fatalf("frame %d: %v %q, want %v %q", i, f.Kind, f.Key, w.kind, w.key)
		}
		if f.Kind == KindFull && f.Snap.SealGen() != w.gen {
			t.Fatalf("frame %d: seal generation %d, want %d", i, f.Snap.SealGen(), w.gen)
		}
	}
	if _, err := dec.DecodeFrame(); err != io.EOF {
		t.Fatalf("trailing state: %v, want io.EOF", err)
	}
	if got := dec.Consumed(); got != int64(len(blob)) {
		t.Fatalf("consumed %d of %d bytes", got, len(blob))
	}
}

// TestDeltaTruncationSweep: delta and tombstone frames cut at every byte
// boundary fail cleanly, like full frames.
func TestDeltaTruncationSweep(t *testing.T) {
	cfg := core.Config{Spec: window.Spec{Size: 256, Period: 64}, Phis: []float64{0.5, 0.99}, FewK: true}
	snaps := deltaSequence(t, cfg, 3, []int{320, 320})
	d, err := NewDelta(snaps[1], snaps[0].SealGen())
	if err != nil {
		t.Fatal(err)
	}
	for _, frame := range [][]byte{
		AppendDeltaFrame(nil, "svc", d),
		AppendTombstoneFrame(nil, "svc"),
	} {
		for n := 1; n < len(frame); n++ {
			_, err := NewDecoder(bytes.NewReader(frame[:n])).DecodeFrame()
			if err == nil {
				t.Fatalf("truncation at %d/%d decoded", n, len(frame))
			}
			if err == io.EOF {
				t.Fatalf("truncation at %d/%d reported as clean EOF", n, len(frame))
			}
		}
	}
}

// BenchmarkEncode and BenchmarkDecode measure the codec on a realistic
// capture (sliding window, few-k enabled).
func benchSnapshot(b *testing.B) core.Snapshot {
	p := mustPolicy(b, core.Config{
		Spec: window.Spec{Size: 8000, Period: 1000},
		Phis: []float64{0.5, 0.9, 0.99, 0.999},
		FewK: true,
	})
	p.ObserveBatch(workload.Generate(workload.NewNetMon(1), 12000))
	return p.Snapshot()
}

func BenchmarkEncode(b *testing.B) {
	snap := benchSnapshot(b)
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendFrame(buf[:0], "key", snap)
	}
	b.SetBytes(int64(len(buf)))
}

func BenchmarkDecode(b *testing.B) {
	frame := AppendFrame(nil, "key", benchSnapshot(b))
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(bytes.NewReader(frame)); err != nil {
			b.Fatal(err)
		}
	}
}
