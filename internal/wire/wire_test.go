package wire

import (
	"bytes"
	"errors"
	"flag"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/window"
	"repro/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "regenerate testdata/golden_v1.bin")

func mustPolicy(t testing.TB, cfg core.Config) *core.Policy {
	t.Helper()
	p, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// randomConfig draws a valid configuration: window shape, ϕ set, few-k
// mode and quantization vary per iteration.
func randomConfig(rng *rand.Rand) core.Config {
	period := 8 << rng.Intn(5)           // 8..128
	size := period * (1 + rng.Intn(8))   // 1..8 sub-windows
	phiPool := []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.995, 0.999}
	lo := rng.Intn(len(phiPool) - 1)
	hi := lo + 1 + rng.Intn(len(phiPool)-lo-1)
	cfg := core.Config{
		Spec: window.Spec{Size: size, Period: period},
		Phis: phiPool[lo : hi+1],
		FewK: rng.Intn(2) == 0,
	}
	switch rng.Intn(4) {
	case 0:
		cfg.Digits = -1
	case 1:
		cfg.Digits = 2
	}
	if cfg.FewK {
		switch rng.Intn(4) {
		case 0:
			cfg.TopKOnly = true
		case 1:
			cfg.SampleKOnly = true
		case 2:
			cfg.Fraction = 0.25 + rng.Float64()/2
		}
	}
	return cfg
}

// TestRoundTripProperty: over randomized configurations and ingestion
// histories, encode→decode→Merge→Estimates is bit-identical to the
// never-serialized path, and the decoded parts deep-equal the originals.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 60; iter++ {
		cfg := randomConfig(rng)
		var snaps []core.Snapshot
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		shards := 1 + rng.Intn(3)
		for s := 0; s < shards; s++ {
			p := mustPolicy(t, cfg)
			n := cfg.Spec.Size + rng.Intn(2*cfg.Spec.Size)
			p.ObserveBatch(workload.Generate(workload.NewNetMon(rng.Int63()), n))
			snap := p.Snapshot()
			snaps = append(snaps, snap)
			if _, err := enc.Encode("", snap); err != nil {
				t.Fatalf("iter %d: encode: %v", iter, err)
			}
		}
		dec := NewDecoder(bytes.NewReader(buf.Bytes()))
		var decoded []core.Snapshot
		for {
			_, snap, err := dec.Decode()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("iter %d (%+v): decode: %v", iter, cfg, err)
			}
			decoded = append(decoded, snap)
		}
		if len(decoded) != shards {
			t.Fatalf("iter %d: %d frames decoded, want %d", iter, len(decoded), shards)
		}
		if got := dec.Consumed(); got != int64(buf.Len()) {
			t.Fatalf("iter %d: consumed %d of %d bytes", iter, got, buf.Len())
		}
		for s := range snaps {
			if !reflect.DeepEqual(decoded[s].Parts(), snaps[s].Parts()) {
				t.Fatalf("iter %d shard %d: decoded parts differ", iter, s)
			}
		}
		live, err := core.MergeSnapshots(snaps)
		if err != nil {
			t.Fatal(err)
		}
		rebuilt, err := core.MergeSnapshots(decoded)
		if err != nil {
			t.Fatalf("iter %d: decoded captures refuse to merge: %v", iter, err)
		}
		want, got := live.Estimates(), rebuilt.Estimates()
		for j := range want {
			if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
				t.Fatalf("iter %d ϕ=%v: serialized merge %v != live merge %v",
					iter, cfg.Phis[j], got[j], want[j])
			}
		}
	}
}

// TestKeyedFraming: keys survive the trip and appended blobs decode as one
// stream.
func TestKeyedFraming(t *testing.T) {
	cfg := core.Config{Spec: window.Spec{Size: 200, Period: 50}, Phis: []float64{0.5, 0.99}, FewK: true}
	frameFor := func(key string, seed int64) []byte {
		p := mustPolicy(t, cfg)
		p.ObserveBatch(workload.Generate(workload.NewNetMon(seed), cfg.Spec.Size))
		return AppendFrame(nil, key, p.Snapshot())
	}
	// Two "worker blobs" concatenated — the append-friendly framing the
	// aggregator relies on.
	blob := append(frameFor("api/latency", 1), frameFor("", 2)...)
	blob = append(blob, frameFor("api/latency", 3)...)
	dec := NewDecoder(bytes.NewReader(blob))
	var keys []string
	for {
		key, snap, err := dec.Decode()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if snap.IsZero() {
			t.Fatal("decoded zero snapshot")
		}
		keys = append(keys, key)
	}
	if want := []string{"api/latency", "", "api/latency"}; !reflect.DeepEqual(keys, want) {
		t.Fatalf("keys %q, want %q", keys, want)
	}
}

// TestEncodeRejectsZeroSnapshot: the zero value has no config to describe
// itself with.
func TestEncodeRejectsZeroSnapshot(t *testing.T) {
	if _, err := Encode(io.Discard, "k", core.Snapshot{}); err == nil {
		t.Fatal("zero snapshot encoded")
	}
}

// validFrame builds one deterministic well-formed frame for the corruption
// table.
func validFrame(t testing.TB) []byte {
	t.Helper()
	p, err := core.New(core.Config{
		Spec: window.Spec{Size: 1600, Period: 400},
		Phis: []float64{0.5, 0.9, 0.99},
		FewK: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.ObserveBatch(workload.Generate(workload.NewNetMon(5), 2000))
	return AppendFrame(nil, "k", p.Snapshot())
}

// TestDecodeCorruptionTable: every malformed input yields a wrapped
// sentinel error — never a panic, never a silent misparse.
func TestDecodeCorruptionTable(t *testing.T) {
	frame := validFrame(t)
	flip := func(off int, b byte) []byte {
		c := append([]byte(nil), frame...)
		c[off] = b
		return c
	}
	cases := []struct {
		name string
		blob []byte
		want error
	}{
		{"empty mid-header", frame[:3], ErrTruncated},
		{"bad magic", flip(0, 'X'), ErrMagic},
		{"version zero", flip(4, 0), ErrVersion},
		{"version future", flip(4, 2), ErrVersion},
		{"payload length beyond stream", flip(6, 0xFF), ErrTruncated},
		{"payload length short", flip(6, 1), ErrCorrupt}, // trailing bytes parsed as next frame: bad magic OR corrupt payload
		{"inner count overflow", corruptInnerCount(frame), ErrCorrupt},
		{"garbage payload", append(append([]byte(nil), frame[:headerSize]...), make([]byte, len(frame)-headerSize)...), ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := Decode(bytes.NewReader(tc.blob))
			if err == nil {
				t.Fatal("decoded corrupt frame")
			}
			if err == io.EOF {
				t.Fatal("corrupt frame reported as clean EOF")
			}
			if tc.name == "payload length short" {
				// The shortened frame itself fails validation; exactly which
				// sentinel depends on where parsing falls off.
				if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
					t.Fatalf("error %v wraps no sentinel", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v, want wrapped %v", err, tc.want)
			}
		})
	}
}

// corruptInnerCount blows up the ϕ-count varint inside the payload so the
// pre-allocation bound check must fire.
func corruptInnerCount(frame []byte) []byte {
	c := append([]byte(nil), frame...)
	// Payload layout: key len(1)+key(1), size(varint), period(varint),
	// digits(varint), flags(1), 4 float64s, then the ϕ count varint.
	off := headerSize
	off += 2 // key
	for i := 0; i < 3; i++ { // three uvarints
		for c[off]&0x80 != 0 {
			off++
		}
		off++
	}
	off += 1 + 4*8 // flags + fraction/statThreshold/burstAlpha/highPhiMin
	c[off] = 0xFF  // ϕ count becomes a huge varint
	c[off+1] |= 0x80
	c[off+2] = 0x7F
	return c
}

// TestDecodeTruncationSweep: a frame cut at EVERY byte boundary fails
// cleanly (or, at length 0, reports clean EOF).
func TestDecodeTruncationSweep(t *testing.T) {
	frame := validFrame(t)
	for n := 0; n < len(frame); n++ {
		_, _, err := Decode(bytes.NewReader(frame[:n]))
		if n == 0 {
			if err != io.EOF {
				t.Fatalf("empty stream: %v, want io.EOF", err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("truncation at %d/%d decoded", n, len(frame))
		}
		if err == io.EOF {
			t.Fatalf("truncation at %d/%d reported as clean EOF", n, len(frame))
		}
	}
}

// TestDecodeValuePolicy: NaN is rejected in every float position; a
// non-descending tail is rejected.
func TestDecodeValuePolicy(t *testing.T) {
	frame := validFrame(t)
	// Find the wire bytes of a known value and replace them with NaN bits:
	// quantile positions hold NetMon-generated floats, all of which appear
	// in the payload as 8 little-endian bytes.
	_, snap, err := Decode(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	target := snap.Parts().Summaries[0].Quantiles[0]
	pat := make([]byte, 8)
	for i := 0; i < 8; i++ {
		pat[i] = byte(math.Float64bits(target) >> (8 * i))
	}
	idx := bytes.Index(frame, pat)
	if idx < 0 {
		t.Fatal("quantile bytes not found in frame")
	}
	nan := append([]byte(nil), frame...)
	for i := 0; i < 8; i++ {
		nan[idx+i] = byte(math.Float64bits(math.NaN()) >> (8 * i))
	}
	if _, _, err := Decode(bytes.NewReader(nan)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("NaN payload: %v, want wrapped ErrCorrupt", err)
	}

	// A NaN in the configured ϕ array is the nastier case: every
	// comparison core's phi validation runs is false for NaN, so the
	// transport's own policy check must catch it.
	phiPat := make([]byte, 8)
	for i := 0; i < 8; i++ {
		phiPat[i] = byte(math.Float64bits(0.5) >> (8 * i))
	}
	pidx := bytes.Index(frame, phiPat)
	if pidx < 0 {
		t.Fatal("ϕ=0.5 bytes not found in frame")
	}
	nanPhi := append([]byte(nil), frame...)
	for i := 0; i < 8; i++ {
		nanPhi[pidx+i] = byte(math.Float64bits(math.NaN()) >> (8 * i))
	}
	if _, _, err := Decode(bytes.NewReader(nanPhi)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("NaN ϕ: %v, want wrapped ErrCorrupt", err)
	}

	// Ascending tail: build parts with a reversed tail through the core
	// constructor (structurally valid) and check the transport refuses it.
	parts := snap.Parts()
	parts.Summaries = append([]core.Summary(nil), parts.Summaries...)
	bad := parts.Summaries[0]
	if len(bad.Tails) == 0 || len(bad.Tails[0]) < 2 {
		t.Fatal("test frame has no multi-value tail")
	}
	tail := append([]float64(nil), bad.Tails[0]...)
	tail[0], tail[len(tail)-1] = tail[len(tail)-1], tail[0]
	bad.Tails = append([][]float64(nil), bad.Tails...)
	bad.Tails[0] = tail
	parts.Summaries[0] = bad
	badSnap, err := core.NewSnapshot(parts)
	if err != nil {
		t.Fatal(err)
	}
	blob := AppendFrame(nil, "", badSnap)
	if _, _, err := Decode(bytes.NewReader(blob)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ascending tail: %v, want wrapped ErrCorrupt", err)
	}
}

// goldenPath is the checked-in v1 blob that pins the format: two keyed
// frames from deterministic ingestion.
var goldenPath = filepath.Join("testdata", "golden_v1.bin")

// goldenBlob rebuilds the golden captures from scratch — fixed seed, fixed
// configs — and returns their encoding.
func goldenBlob(t testing.TB) []byte {
	t.Helper()
	var blob []byte
	for _, g := range []struct {
		key  string
		cfg  core.Config
		seed int64
		n    int
	}{
		{"api/latency", core.Config{Spec: window.Spec{Size: 256, Period: 64},
			Phis: []float64{0.5, 0.9, 0.99, 0.999}, FewK: true}, 42, 500},
		{"db/qps", core.Config{Spec: window.Spec{Size: 128, Period: 128},
			Phis: []float64{0.5, 0.95}, Digits: -1}, 43, 300},
	} {
		p := mustPolicy(t, g.cfg)
		p.ObserveBatch(workload.Generate(workload.NewNetMon(g.seed), g.n))
		blob = AppendFrame(blob, g.key, p.Snapshot())
	}
	return blob
}

// TestGoldenV1 pins format v1 in both directions: the checked-in blob must
// decode to exactly the captures rebuilt in-process, and re-encoding those
// captures must reproduce the checked-in bytes. Any layout change breaks
// this test — which is the point: bump Version and add a new golden file
// instead of mutating v1.
func TestGoldenV1(t *testing.T) {
	want := goldenBlob(t)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, want, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	disk, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to generate)", err)
	}
	if !bytes.Equal(disk, want) {
		t.Fatalf("golden blob drifted: %d bytes on disk, %d rebuilt — the v1 layout changed; bump Version instead", len(disk), len(want))
	}
	dec := NewDecoder(bytes.NewReader(disk))
	var keys []string
	for {
		key, snap, err := dec.Decode()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("golden blob no longer decodes: %v", err)
		}
		keys = append(keys, key)
		if est := snap.Estimates(); len(est) == 0 || est[0] == 0 {
			t.Fatalf("golden capture %q answers %v", key, est)
		}
	}
	if want := []string{"api/latency", "db/qps"}; !reflect.DeepEqual(keys, want) {
		t.Fatalf("golden keys %q, want %q", keys, want)
	}
}

// BenchmarkEncode and BenchmarkDecode measure the codec on a realistic
// capture (sliding window, few-k enabled).
func benchSnapshot(b *testing.B) core.Snapshot {
	p := mustPolicy(b, core.Config{
		Spec: window.Spec{Size: 8000, Period: 1000},
		Phis: []float64{0.5, 0.9, 0.99, 0.999},
		FewK: true,
	})
	p.ObserveBatch(workload.Generate(workload.NewNetMon(1), 12000))
	return p.Snapshot()
}

func BenchmarkEncode(b *testing.B) {
	snap := benchSnapshot(b)
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendFrame(buf[:0], "key", snap)
	}
	b.SetBytes(int64(len(buf)))
}

func BenchmarkDecode(b *testing.B) {
	frame := AppendFrame(nil, "key", benchSnapshot(b))
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(bytes.NewReader(frame)); err != nil {
			b.Fatal(err)
		}
	}
}
