package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// scanAll drains a RawScanner, returning kinds, keys and the
// reassembled byte stream.
func scanAll(t *testing.T, blob []byte) ([]Kind, []string, []byte) {
	t.Helper()
	sc := NewRawScanner(bytes.NewReader(blob))
	var kinds []Kind
	var keys []string
	var joined []byte
	for {
		kind, key, frame, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("scan: %v", err)
		}
		kinds = append(kinds, kind)
		keys = append(keys, key)
		joined = append(joined, frame...)
	}
	if sc.Consumed() != int64(len(blob)) {
		t.Fatalf("consumed %d of %d bytes", sc.Consumed(), len(blob))
	}
	return kinds, keys, joined
}

// The scanner must return every frame's bytes verbatim and agree with the
// full decoder on kinds and keys — on both format versions' golden blobs
// (v2 covers full, delta and tombstone frames).
func TestRawScannerMatchesDecoder(t *testing.T) {
	for _, tc := range []struct {
		name string
		blob []byte
	}{
		{"v1", goldenBlobV1(t)},
		{"v2", goldenBlobV2(t)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			kinds, keys, joined := scanAll(t, tc.blob)
			if !bytes.Equal(joined, tc.blob) {
				t.Fatal("reassembled frames differ from the input stream")
			}
			dec := NewDecoder(bytes.NewReader(tc.blob))
			i := 0
			for {
				f, err := dec.DecodeFrame()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("decode frame %d: %v", i, err)
				}
				if i >= len(kinds) {
					t.Fatalf("scanner saw %d frames, decoder more", len(kinds))
				}
				if f.Kind != kinds[i] || f.Key != keys[i] {
					t.Fatalf("frame %d: scanner (%v, %q) vs decoder (%v, %q)",
						i, kinds[i], keys[i], f.Kind, f.Key)
				}
				i++
			}
			if i != len(kinds) {
				t.Fatalf("scanner saw %d frames, decoder %d", len(kinds), i)
			}
		})
	}
}

// Each individually scanned frame must decode alone — the property the
// fan-in router relies on when it routes frames to different replicas.
func TestRawScannerFramesDecodeAlone(t *testing.T) {
	blob := goldenBlobV2(t)
	sc := NewRawScanner(bytes.NewReader(blob))
	for {
		_, key, frame, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		f, err := NewDecoder(bytes.NewReader(frame)).DecodeFrame()
		if err != nil {
			t.Fatalf("routed frame for %q does not decode alone: %v", key, err)
		}
		if f.Key != key {
			t.Fatalf("routed frame key %q, decoded %q", key, f.Key)
		}
	}
}

func TestRawScannerErrors(t *testing.T) {
	frame := validFrame(t)
	cases := []struct {
		name string
		blob []byte
		want error
	}{
		{"bad magic", append([]byte("XXXX"), frame[4:]...), ErrMagic},
		{"future version", func() []byte {
			b := append([]byte(nil), frame...)
			b[4] = 99
			return b
		}(), ErrVersion},
		{"truncated header", frame[:6], ErrTruncated},
		{"truncated payload", frame[:len(frame)-3], ErrTruncated},
		{"bad kind", func() []byte {
			b := append([]byte(nil), frame...)
			b[headerSize] = 7
			return b
		}(), ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, _, err := NewRawScanner(bytes.NewReader(tc.blob)).Next()
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}
