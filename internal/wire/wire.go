// Package wire is the versioned binary encoding of core.Snapshot — the
// stable format that lets window captures cross process and datacenter
// boundaries and merge centrally, turning the in-process Snapshot.Merge
// plane into the paper's distributed-aggregation sketch ("our quantile
// design can deliver better aggregate throughput ... in distributed
// computing").
//
// # Frame layout
//
// A blob is a plain concatenation of self-describing frames; appending two
// blobs yields a valid blob, so N workers can write into one pipe or file
// and an aggregator decodes the lot in one pass. Each frame is
//
//	magic   [4]byte  "QLVS"
//	version uint16   little-endian, 1 or 2
//	length  uint32   little-endian payload byte count
//	payload [length]byte
//
// Within a payload, fixed-width integers and float64 bit patterns are
// little-endian; counts and lengths are unsigned varints
// (binary.AppendUvarint).
//
// # Format version 2 (current)
//
// A v2 payload opens with one frame-kind byte:
//
//	kind    1 byte   0 = full snapshot, 1 = delta, 2 = tombstone
//
// A FULL frame (kind 0) serializes one keyed capture:
//
//	key        uvarint len + bytes        ("" for unkeyed captures)
//	config     size, period, digits       uvarint each
//	           flags                      1 byte: FewK|TopKOnly|SampleKOnly|Adaptive
//	           fraction, statThreshold,
//	           burstAlpha, highPhiMin     float64 each
//	           phis                       uvarint len + float64s
//	streams    uvarint                    merged sub-stream count (>= 1)
//	sealGen    uvarint                    seal-generation clock at capture (0 = untracked)
//	sums       uvarint len + float64s     Level-2 running sums (len == len(phis))
//	summaries  uvarint count, then per summary:
//	           count                      uvarint sub-window element count
//	           quantiles                  uvarint len + float64s (== len(phis))
//	           densities                  uvarint len + float64s (== len(phis))
//	           tails                      uvarint count, then uvarint len + float64s each
//	           samples                    uvarint count, then uvarint len +
//	                                      (float64 value, uvarint weight) pairs each
//	           burst                      1 byte present flag; if 1, one 0/1 byte
//	                                      per managed quantile
//
// A DELTA frame (kind 1) ships only what changed for one key since a
// per-destination export cursor — the incremental form that cuts
// steady-state export bandwidth from O(resident keys) to O(changed keys):
//
//	key        uvarint len + bytes
//	config     as in a full frame
//	streams    uvarint
//	sealGen    uvarint   toGen: the seal-generation clock at capture (> 0)
//	fromGen    uvarint   the cursor the delta is relative to (<= sealGen);
//	                     0 marks a bootstrap frame that REPLACES the key
//	resident   uvarint   resident summary count at capture (<= sealGen)
//	sums       uvarint len + float64s      the FULL Level-2 sums (cheap: one
//	                                       float per configured ϕ)
//	summaries  as in a full frame, but carrying ONLY the resident summaries
//	           sealed after fromGen: exactly min(resident, sealGen-fromGen)
//	           of them, oldest first
//
// The receiver folds a delta by appending the shipped summaries to the
// key's retained run, trimming the front to `resident` (the summaries that
// slid out of the worker's window since the cursor), and replacing the sums
// wholesale — reproducing the worker's full capture bit for bit.
//
// A TOMBSTONE frame (kind 2) retires one key — the receiver deletes its
// state. Exporters emit it when a key present at the cursor has been
// evicted (TTL expiry or explicit Evict):
//
//	key        uvarint len + bytes
//
// # Format version 1
//
// Version 1 is the frozen original layout: a full-snapshot payload with no
// kind byte and no sealGen field. The decoder keeps accepting v1 frames
// (they rebuild with SealGen 0 — mergeable and queryable, but unable to
// anchor a delta export); the encoder only emits v2. The checked-in golden
// blobs of BOTH versions pin their bytes in the compatibility-matrix test.
//
// # Decode strictness
//
// Decode trusts nothing: the version is gated, the payload must be
// consumed exactly, every slice length is bounds-checked against the
// remaining payload BEFORE allocation, the rebuilt parts must pass
// core.NewSnapshot's structural validation, delta frames must satisfy the
// cursor arithmetic above, cached tails and sample lists must be sorted
// descending (the merge heaps assume it), and the NaN/Inf policy is
// enforced: NaN is rejected everywhere (ingestion drops NaN, so no
// legitimate capture contains one); ±Inf is rejected in configuration
// fields but allowed in data positions (quantiles, sums, tails, samples)
// and densities (+Inf marks a point mass). Every failure is a wrapped,
// non-panicking error carrying one of the sentinel values below.
//
// # Version policy
//
// The version is per-frame. Decoders accept versions they know (currently
// 1 and 2) and reject newer ones with ErrVersion rather than guessing; any
// change to a payload layout MUST bump Version. The golden-blob
// compatibility matrix in this package pins the bytes of every version, so
// an accidental layout change fails loudly instead of silently forking the
// format.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/core/fewk"
)

// Version is the current frame format version; Encode always emits it.
const Version = 2

// VersionV1 is the frozen original format version, still decoded.
const VersionV1 = 1

// magic opens every frame: "QLVS" (QLove Snapshot).
var magic = [4]byte{'Q', 'L', 'V', 'S'}

const (
	headerSize = 10      // magic + version + payload length
	maxPayload = 1 << 30 // sanity cap on a single frame's payload
	// allocCap bounds any single up-front slice capacity minted from a
	// claimed element count whose in-memory element size exceeds its wire
	// floor; past it the slice grows by append as elements actually
	// decode, so allocation always tracks real payload.
	allocCap = 4096
)

// Sentinel decode errors; every error Decode returns wraps exactly one of
// them (or io.EOF at a clean end of stream).
var (
	// ErrMagic reports bytes that are not a frame at all.
	ErrMagic = errors.New("wire: bad magic")
	// ErrVersion reports a frame from an unknown (newer) format version.
	ErrVersion = errors.New("wire: unsupported format version")
	// ErrTruncated reports a stream that ends mid-frame.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrCorrupt reports a structurally invalid payload: length
	// cross-checks, value policy, delta arithmetic or snapshot invariants
	// failed.
	ErrCorrupt = errors.New("wire: corrupt frame")
	// ErrFrameKind reports a well-formed frame whose kind the caller
	// cannot accept (a delta or tombstone in a snapshot-only stream read
	// through Decode; use DecodeFrame for mixed streams).
	ErrFrameKind = errors.New("wire: unexpected frame kind")
)

// Kind discriminates the v2 frame types.
type Kind uint8

const (
	// KindFull is a complete keyed capture (the only v1 frame type).
	KindFull Kind = 0
	// KindDelta carries one key's summaries sealed since an export cursor.
	KindDelta Kind = 1
	// KindTombstone retires one key on the receiver.
	KindTombstone Kind = 2
)

// String names the kind for error messages.
func (k Kind) String() string {
	switch k {
	case KindFull:
		return "full"
	case KindDelta:
		return "delta"
	case KindTombstone:
		return "tombstone"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Frame is one decoded frame of any kind. Key is always set; Snap is
// non-zero exactly for KindFull, Delta is meaningful exactly for KindDelta.
type Frame struct {
	Kind  Kind
	Key   string
	Snap  core.Snapshot
	Delta Delta
}

// Delta is the payload of one delta frame: the resident summaries one key
// sealed after the export cursor FromGen, plus the full Level-2 sums.
//
// Parts is a transport container, NOT a queryable capture: Parts.Summaries
// holds only the newly shipped summaries while Parts.Sums covers the whole
// resident window, so estimates read off it directly are meaningless. Fold
// it into retained state first (see the package comment; qlove.Aggregator
// implements the fold).
type Delta struct {
	// FromGen is the cursor the delta is relative to; 0 marks a bootstrap
	// frame whose summaries are the ENTIRE resident window (receivers
	// replace rather than fold).
	FromGen uint64
	// Resident is the number of resident summaries at capture time; the
	// receiver trims its retained run to this length after appending.
	Resident int
	// Parts carries Config, Streams, the full Sums, SealGen (the "toGen"
	// the receiver's cursor advances to) and the shipped Summaries:
	// exactly min(Resident, SealGen-FromGen) of them, oldest first.
	Parts core.SnapshotParts
}

// NewDelta builds the delta frame payload shipping what changed in capture
// s since cursor fromGen: the last min(resident, SealGen-fromGen) resident
// summaries. The capture must carry a seal generation (SealGen > 0, or be
// completely empty) and fromGen must not run ahead of it; pass fromGen 0
// for a bootstrap frame carrying the whole window.
func NewDelta(s core.Snapshot, fromGen uint64) (Delta, error) {
	p := s.Parts()
	g := p.SealGen
	r := len(p.Summaries)
	if g == 0 && r > 0 {
		return Delta{}, fmt.Errorf("wire: capture carries no seal generation; ship a full frame instead")
	}
	if fromGen > g {
		return Delta{}, fmt.Errorf("wire: cursor %d ahead of capture generation %d", fromGen, g)
	}
	newCount := g - fromGen
	if newCount > uint64(r) {
		newCount = uint64(r)
	}
	if newCount == 0 {
		p.Summaries = nil // canonical: the decoder yields nil for an empty set
	} else {
		p.Summaries = p.Summaries[r-int(newCount):]
	}
	return Delta{FromGen: fromGen, Resident: r, Parts: p}, nil
}

// config flag bits.
const (
	flagFewK = 1 << iota
	flagTopKOnly
	flagSampleKOnly
	flagAdaptive
)

// Encoder writes frames to a stream, reusing one marshalling buffer across
// calls so steady-state export allocates only what the kernel write needs.
type Encoder struct {
	w   io.Writer
	buf []byte
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// Encode writes one keyed full frame and returns the bytes written.
// Encoding the zero Snapshot is refused: it carries no configuration to
// describe itself with (merge identities are a fold concern, not a
// transport one).
func (e *Encoder) Encode(key string, s core.Snapshot) (int, error) {
	if s.IsZero() {
		return 0, fmt.Errorf("wire: cannot encode the zero Snapshot")
	}
	return e.flush(AppendFrame(e.buf[:0], key, s))
}

// EncodeDelta writes one keyed delta frame and returns the bytes written.
// The delta's cursor arithmetic is validated up front (the decoder would
// reject a malformed frame anyway; failing here names the producer bug).
func (e *Encoder) EncodeDelta(key string, d Delta) (int, error) {
	if err := validateDelta(&d); err != nil {
		return 0, err
	}
	return e.flush(AppendDeltaFrame(e.buf[:0], key, d))
}

// EncodeTombstone writes one key-retirement frame and returns the bytes
// written.
func (e *Encoder) EncodeTombstone(key string) (int, error) {
	return e.flush(AppendTombstoneFrame(e.buf[:0], key))
}

// flush bounds-checks and writes one appended frame, retaining the buffer.
func (e *Encoder) flush(frame []byte) (int, error) {
	e.buf = frame
	if len(frame)-headerSize > maxPayload {
		// Refused at encode time: past the cap the decoder would reject
		// the frame (and past 4 GiB the u32 length field would silently
		// truncate), so such a capture must never reach the stream.
		return 0, fmt.Errorf("wire: frame payload %d bytes exceeds the %d-byte cap", len(frame)-headerSize, maxPayload)
	}
	n, err := e.w.Write(frame)
	if err != nil {
		return n, fmt.Errorf("wire: write frame: %w", err)
	}
	return n, nil
}

// validateDelta checks the cursor arithmetic EncodeDelta promises the
// decoder.
func validateDelta(d *Delta) error {
	g := d.Parts.SealGen
	if g == 0 {
		if d.Resident != 0 || len(d.Parts.Summaries) != 0 {
			return fmt.Errorf("wire: delta with summaries but no seal generation")
		}
	}
	if d.FromGen > g {
		return fmt.Errorf("wire: delta cursor %d ahead of generation %d", d.FromGen, g)
	}
	if uint64(d.Resident) > g {
		return fmt.Errorf("wire: delta resident count %d exceeds generation %d", d.Resident, g)
	}
	want := g - d.FromGen
	if want > uint64(d.Resident) {
		want = uint64(d.Resident)
	}
	if uint64(len(d.Parts.Summaries)) != want {
		return fmt.Errorf("wire: delta ships %d summaries, cursor arithmetic requires %d", len(d.Parts.Summaries), want)
	}
	return nil
}

// Encode writes one keyed full frame to w; the convenience form of
// Encoder.Encode for one-shot callers.
func Encode(w io.Writer, key string, s core.Snapshot) (int, error) {
	return NewEncoder(w).Encode(key, s)
}

// AppendFrame appends one complete full frame (header and payload) to dst
// and returns the extended slice. The capture must be non-zero and its
// payload must stay within the decoder's 1 GiB frame cap — Encoder.Encode
// enforces the bound; direct AppendFrame callers own it themselves.
func AppendFrame(dst []byte, key string, s core.Snapshot) []byte {
	return appendFrame(dst, func(dst []byte) []byte {
		p := s.Parts()
		dst = append(dst, byte(KindFull))
		dst = appendKey(dst, key)
		dst = appendConfig(dst, p.Config)
		dst = binary.AppendUvarint(dst, uint64(p.Streams))
		dst = binary.AppendUvarint(dst, p.SealGen)
		dst = appendF64s(dst, p.Sums)
		dst = appendSummaries(dst, p.Summaries)
		return dst
	})
}

// AppendDeltaFrame appends one complete delta frame to dst. Like
// AppendFrame, direct callers own the payload cap; unlike
// Encoder.EncodeDelta it does not re-validate the cursor arithmetic.
func AppendDeltaFrame(dst []byte, key string, d Delta) []byte {
	return appendFrame(dst, func(dst []byte) []byte {
		dst = append(dst, byte(KindDelta))
		dst = appendKey(dst, key)
		dst = appendConfig(dst, d.Parts.Config)
		dst = binary.AppendUvarint(dst, uint64(d.Parts.Streams))
		dst = binary.AppendUvarint(dst, d.Parts.SealGen)
		dst = binary.AppendUvarint(dst, d.FromGen)
		dst = binary.AppendUvarint(dst, uint64(d.Resident))
		dst = appendF64s(dst, d.Parts.Sums)
		dst = appendSummaries(dst, d.Parts.Summaries)
		return dst
	})
}

// AppendTombstoneFrame appends one complete tombstone frame to dst.
func AppendTombstoneFrame(dst []byte, key string) []byte {
	return appendFrame(dst, func(dst []byte) []byte {
		dst = append(dst, byte(KindTombstone))
		return appendKey(dst, key)
	})
}

// appendFrame writes the header, runs the payload appender and patches the
// length field.
func appendFrame(dst []byte, payload func([]byte) []byte) []byte {
	dst = append(dst, magic[:]...)
	dst = binary.LittleEndian.AppendUint16(dst, Version)
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0) // payload length, patched below
	start := len(dst)
	dst = payload(dst)
	binary.LittleEndian.PutUint32(dst[lenAt:], uint32(len(dst)-start))
	return dst
}

func appendKey(dst []byte, key string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	return append(dst, key...)
}

func appendConfig(dst []byte, cfg core.Config) []byte {
	dst = binary.AppendUvarint(dst, uint64(cfg.Spec.Size))
	dst = binary.AppendUvarint(dst, uint64(cfg.Spec.Period))
	dst = binary.AppendUvarint(dst, uint64(cfg.Digits))
	var flags byte
	if cfg.FewK {
		flags |= flagFewK
	}
	if cfg.TopKOnly {
		flags |= flagTopKOnly
	}
	if cfg.SampleKOnly {
		flags |= flagSampleKOnly
	}
	if cfg.Adaptive {
		flags |= flagAdaptive
	}
	dst = append(dst, flags)
	dst = appendF64(dst, cfg.Fraction)
	dst = appendF64(dst, cfg.StatThreshold)
	dst = appendF64(dst, cfg.BurstAlpha)
	dst = appendF64(dst, cfg.HighPhiMin)
	return appendF64s(dst, cfg.Phis)
}

func appendSummaries(dst []byte, summaries []core.Summary) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(summaries)))
	for i := range summaries {
		sm := &summaries[i]
		dst = binary.AppendUvarint(dst, uint64(sm.Count))
		dst = appendF64s(dst, sm.Quantiles)
		dst = appendF64s(dst, sm.Densities)
		dst = binary.AppendUvarint(dst, uint64(len(sm.Tails)))
		for _, t := range sm.Tails {
			dst = appendF64s(dst, t)
		}
		dst = binary.AppendUvarint(dst, uint64(len(sm.Samples)))
		for _, l := range sm.Samples {
			dst = binary.AppendUvarint(dst, uint64(len(l)))
			for _, smp := range l {
				dst = appendF64(dst, smp.Value)
				dst = binary.AppendUvarint(dst, uint64(smp.Weight))
			}
		}
		if sm.BurstyVsPrev == nil {
			dst = append(dst, 0)
		} else {
			dst = append(dst, 1)
			for _, b := range sm.BurstyVsPrev {
				if b {
					dst = append(dst, 1)
				} else {
					dst = append(dst, 0)
				}
			}
		}
	}
	return dst
}

func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

func appendF64s(dst []byte, vs []float64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = appendF64(dst, v)
	}
	return dst
}

// Decoder reads frames from a stream, reusing one payload buffer across
// calls.
type Decoder struct {
	r        io.Reader
	hdr      [headerSize]byte
	buf      []byte
	consumed int64
}

// NewDecoder returns a Decoder reading from r. Frames are read with
// exactly two reads each (header, then payload), so no extra buffering
// layer is needed even over a pipe.
func NewDecoder(r io.Reader) *Decoder { return &Decoder{r: r} }

// Consumed returns the total bytes read from the stream so far —
// including the bytes of a frame whose decode failed, so after an error
// it points at where in the input the bad frame ends (or the stream gave
// out).
func (d *Decoder) Consumed() int64 { return d.consumed }

// Decode reads the next frame of a snapshot-only stream. At a clean end of
// stream it returns io.EOF unwrapped; a well-formed delta or tombstone
// frame is an error wrapping ErrFrameKind (use DecodeFrame for mixed
// streams); any other failure wraps a package sentinel and never panics,
// whatever the input bytes.
func (d *Decoder) Decode() (key string, snap core.Snapshot, err error) {
	f, err := d.DecodeFrame()
	if err != nil {
		return "", core.Snapshot{}, err
	}
	if f.Kind != KindFull {
		return "", core.Snapshot{}, fmt.Errorf("%w: %v frame in a snapshot-only stream", ErrFrameKind, f.Kind)
	}
	return f.Key, f.Snap, nil
}

// DecodeFrame reads the next frame of any kind. At a clean end of stream
// (the reader is exhausted exactly at a frame boundary) it returns io.EOF
// unwrapped; any other failure wraps a package sentinel and never panics,
// whatever the input bytes.
func (d *Decoder) DecodeFrame() (Frame, error) {
	hn, err := io.ReadFull(d.r, d.hdr[:])
	d.consumed += int64(hn)
	if err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	if [4]byte(d.hdr[:4]) != magic {
		return Frame{}, fmt.Errorf("%w: %q", ErrMagic, d.hdr[:4])
	}
	v := binary.LittleEndian.Uint16(d.hdr[4:6])
	if v != VersionV1 && v != Version {
		return Frame{}, fmt.Errorf("%w: frame v%d, decoder speaks v%d", ErrVersion, v, Version)
	}
	n := binary.LittleEndian.Uint32(d.hdr[6:10])
	if n > maxPayload {
		return Frame{}, fmt.Errorf("%w: payload length %d exceeds cap", ErrCorrupt, n)
	}
	// The claimed length is untrusted until the bytes actually arrive:
	// large payloads are read in bounded steps so a corrupt header cannot
	// demand a huge up-front allocation for a stream that ends after a few
	// bytes.
	const allocStep = 1 << 20
	if int(n) <= allocStep {
		if cap(d.buf) < int(n) {
			d.buf = make([]byte, n)
		}
		d.buf = d.buf[:n]
		pn, err := io.ReadFull(d.r, d.buf)
		d.consumed += int64(pn)
		if err != nil {
			return Frame{}, fmt.Errorf("%w: payload: %v", ErrTruncated, err)
		}
	} else {
		d.buf = d.buf[:0]
		for len(d.buf) < int(n) {
			step := int(n) - len(d.buf)
			if step > allocStep {
				step = allocStep
			}
			d.buf = append(d.buf, make([]byte, step)...)
			chunk := d.buf[len(d.buf)-step:]
			pn, err := io.ReadFull(d.r, chunk)
			d.consumed += int64(pn)
			if err != nil {
				return Frame{}, fmt.Errorf("%w: payload: %v", ErrTruncated, err)
			}
		}
	}
	return decodePayload(d.buf, v)
}

// Decode reads a single full frame from r; the convenience form of
// Decoder.Decode for one-shot callers.
func Decode(r io.Reader) (key string, snap core.Snapshot, err error) {
	return NewDecoder(r).Decode()
}

// payloadReader is a bounds-checked cursor over one frame's payload.
type payloadReader struct {
	b   []byte
	off int
}

func (r *payloadReader) remaining() int { return len(r.b) - r.off }

func (r *payloadReader) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: %s: bad varint", ErrCorrupt, what)
	}
	r.off += n
	return v, nil
}

// count reads a length-prefixed element count and checks it against the
// bytes actually left (elemSize is a lower bound on the wire size of one
// element), so a corrupted length cannot drive allocation beyond the
// payload it arrived in.
func (r *payloadReader) count(what string, elemSize int) (int, error) {
	v, err := r.uvarint(what)
	if err != nil {
		return 0, err
	}
	if v > uint64(r.remaining()/elemSize) {
		return 0, fmt.Errorf("%w: %s: count %d exceeds remaining payload", ErrCorrupt, what, v)
	}
	return int(v), nil
}

func (r *payloadReader) byte(what string) (byte, error) {
	if r.remaining() < 1 {
		return 0, fmt.Errorf("%w: %s: payload exhausted", ErrCorrupt, what)
	}
	b := r.b[r.off]
	r.off++
	return b, nil
}

func (r *payloadReader) f64(what string) (float64, error) {
	if r.remaining() < 8 {
		return 0, fmt.Errorf("%w: %s: payload exhausted", ErrCorrupt, what)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v, nil
}

func (r *payloadReader) f64s(what string) ([]float64, error) {
	n, err := r.count(what, 8)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
		r.off += 8
	}
	return out, nil
}

func decodePayload(b []byte, version uint16) (Frame, error) {
	r := &payloadReader{b: b}

	kind := KindFull
	if version >= 2 {
		kb, err := r.byte("frame kind")
		if err != nil {
			return Frame{}, err
		}
		if Kind(kb) > KindTombstone {
			return Frame{}, fmt.Errorf("%w: unknown frame kind %d", ErrCorrupt, kb)
		}
		kind = Kind(kb)
	}

	keyLen, err := r.count("key", 1)
	if err != nil {
		return Frame{}, err
	}
	key := string(r.b[r.off : r.off+keyLen])
	r.off += keyLen

	if kind == KindTombstone {
		if r.remaining() != 0 {
			return Frame{}, fmt.Errorf("%w: %d trailing tombstone payload bytes", ErrCorrupt, r.remaining())
		}
		return Frame{Kind: KindTombstone, Key: key}, nil
	}

	var p core.SnapshotParts
	if p.Config, err = decodeConfig(r); err != nil {
		return Frame{}, err
	}
	if p.Streams, err = intField(r, "streams"); err != nil {
		return Frame{}, err
	}
	if version >= 2 {
		if p.SealGen, err = r.uvarint("seal generation"); err != nil {
			return Frame{}, err
		}
	}
	var fromGen uint64
	var resident int
	if kind == KindDelta {
		if fromGen, err = r.uvarint("delta from-generation"); err != nil {
			return Frame{}, err
		}
		if resident, err = intField(r, "delta resident count"); err != nil {
			return Frame{}, err
		}
	}
	if p.Sums, err = r.f64s("sums"); err != nil {
		return Frame{}, err
	}
	if err := noNaN("sums", p.Sums); err != nil {
		return Frame{}, err
	}

	// Each summary costs at least its count varint + two length varints +
	// tail/sample/burst bytes: >= 5 bytes on the wire. The slice GROWS as
	// summaries actually decode (capacity capped up front): a summary is
	// far bigger in memory than its 5-byte wire floor, so allocating the
	// claimed count outright would let a corrupt count demand ~26x the
	// payload in one allocation.
	nSummaries, err := r.count("summary count", 5)
	if err != nil {
		return Frame{}, err
	}
	if nSummaries > 0 {
		p.Summaries = make([]core.Summary, 0, min(nSummaries, allocCap))
	}
	for i := 0; i < nSummaries; i++ {
		var sm core.Summary
		if err := decodeSummary(r, &sm); err != nil {
			return Frame{}, fmt.Errorf("summary %d: %w", i, err)
		}
		p.Summaries = append(p.Summaries, sm)
	}
	if r.remaining() != 0 {
		return Frame{}, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, r.remaining())
	}

	if kind == KindDelta {
		// The delta's cursor arithmetic: fromGen <= sealGen, the resident
		// window cannot exceed everything ever sealed, and the frame must
		// ship exactly the resident summaries sealed after the cursor.
		g := p.SealGen
		if fromGen > g {
			return Frame{}, fmt.Errorf("%w: delta cursor %d ahead of generation %d", ErrCorrupt, fromGen, g)
		}
		if uint64(resident) > g {
			return Frame{}, fmt.Errorf("%w: delta resident count %d exceeds generation %d", ErrCorrupt, resident, g)
		}
		want := g - fromGen
		if want > uint64(resident) {
			want = uint64(resident)
		}
		if uint64(nSummaries) != want {
			return Frame{}, fmt.Errorf("%w: delta ships %d summaries, cursor arithmetic requires %d", ErrCorrupt, nSummaries, want)
		}
		// NewSnapshot revalidates structure (config resolution, slice
		// shapes, per-summary populations) exactly as for a full frame;
		// the rebuilt capture itself is discarded — Delta.Parts is the
		// transport container the receiver folds.
		if _, err := core.NewSnapshot(p); err != nil {
			return Frame{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		return Frame{
			Kind:  KindDelta,
			Key:   key,
			Delta: Delta{FromGen: fromGen, Resident: resident, Parts: p},
		}, nil
	}

	snap, err := core.NewSnapshot(p)
	if err != nil {
		return Frame{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return Frame{Kind: KindFull, Key: key, Snap: snap}, nil
}

func decodeConfig(r *payloadReader) (core.Config, error) {
	var cfg core.Config
	var err error
	if cfg.Spec.Size, err = intField(r, "window size"); err != nil {
		return cfg, err
	}
	if cfg.Spec.Period, err = intField(r, "window period"); err != nil {
		return cfg, err
	}
	if cfg.Digits, err = intField(r, "digits"); err != nil {
		return cfg, err
	}
	flags, err := r.byte("config flags")
	if err != nil {
		return cfg, err
	}
	cfg.FewK = flags&flagFewK != 0
	cfg.TopKOnly = flags&flagTopKOnly != 0
	cfg.SampleKOnly = flags&flagSampleKOnly != 0
	cfg.Adaptive = flags&flagAdaptive != 0
	for _, f := range []struct {
		dst  *float64
		what string
	}{
		{&cfg.Fraction, "fraction"},
		{&cfg.StatThreshold, "stat threshold"},
		{&cfg.BurstAlpha, "burst alpha"},
		{&cfg.HighPhiMin, "high-phi min"},
	} {
		v, err := r.f64(f.what)
		if err != nil {
			return cfg, err
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return cfg, fmt.Errorf("%w: %s: non-finite %v", ErrCorrupt, f.what, v)
		}
		*f.dst = v
	}
	if cfg.Phis, err = r.f64s("phis"); err != nil {
		return cfg, err
	}
	// ValidatePhis catches Inf (outside (0, 1]) but every comparison it
	// runs is false for NaN, so the NaN policy must be enforced here.
	if err := noNaN("phis", cfg.Phis); err != nil {
		return cfg, err
	}
	return cfg, nil
}

func decodeSummary(r *payloadReader, s *core.Summary) error {
	var err error
	if s.Count, err = intField(r, "count"); err != nil {
		return err
	}
	if s.Quantiles, err = r.f64s("quantiles"); err != nil {
		return err
	}
	if err := noNaN("quantiles", s.Quantiles); err != nil {
		return err
	}
	if s.Densities, err = r.f64s("densities"); err != nil {
		return err
	}
	// Densities may legitimately be +Inf (point mass) but never NaN or
	// -Inf (the finite-difference construction cannot produce either).
	for _, v := range s.Densities {
		if math.IsNaN(v) || math.IsInf(v, -1) {
			return fmt.Errorf("%w: densities: invalid %v", ErrCorrupt, v)
		}
	}
	nTails, err := r.count("tail count", 1)
	if err != nil {
		return err
	}
	// Allocated non-nil even when empty — the seal path always
	// materializes the (possibly zero-length) per-managed-quantile slices,
	// and the round trip reproduces a sealed capture's exact shape — but
	// grown incrementally: a slice header is 24x the 1-byte wire floor of
	// an empty tail, so the claimed count must not size the allocation.
	s.Tails = make([][]float64, 0, min(nTails, allocCap))
	for mi := 0; mi < nTails; mi++ {
		t, err := r.f64s("tail")
		if err != nil {
			return err
		}
		if err := noNaN("tail", t); err != nil {
			return err
		}
		if err := descending("tail", t); err != nil {
			return err
		}
		s.Tails = append(s.Tails, t)
	}
	nSamples, err := r.count("sample list count", 1)
	if err != nil {
		return err
	}
	s.Samples = make([][]fewk.Sample, 0, min(nSamples, allocCap))
	for mi := 0; mi < nSamples; mi++ {
		n, err := r.count("sample list", 9) // 8-byte value + >=1-byte weight
		if err != nil {
			return err
		}
		var list []fewk.Sample
		if n > 0 {
			list = make([]fewk.Sample, n)
		}
		var prev float64
		for j := range list {
			v, err := r.f64("sample value")
			if err != nil {
				return err
			}
			if math.IsNaN(v) {
				return fmt.Errorf("%w: sample value: NaN", ErrCorrupt)
			}
			if j > 0 && v > prev {
				return fmt.Errorf("%w: sample values not descending", ErrCorrupt)
			}
			prev = v
			w, err := intField(r, "sample weight")
			if err != nil {
				return err
			}
			list[j] = fewk.Sample{Value: v, Weight: w}
		}
		s.Samples = append(s.Samples, list)
	}
	burst, err := r.byte("burst flag")
	if err != nil {
		return err
	}
	switch burst {
	case 0:
	case 1:
		// One flag per managed quantile; the managed count equals the tail
		// count in every valid capture, which NewSnapshot re-checks against
		// the configuration afterwards.
		s.BurstyVsPrev = make([]bool, nTails)
		for mi := range s.BurstyVsPrev {
			b, err := r.byte("burst flags")
			if err != nil {
				return err
			}
			switch b {
			case 0, 1:
				s.BurstyVsPrev[mi] = b == 1
			default:
				return fmt.Errorf("%w: burst flag byte %d", ErrCorrupt, b)
			}
		}
	default:
		return fmt.Errorf("%w: burst presence byte %d", ErrCorrupt, burst)
	}
	return nil
}

// intField reads a uvarint that must fit a non-negative int.
func intField(r *payloadReader, what string) (int, error) {
	v, err := r.uvarint(what)
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt32 {
		return 0, fmt.Errorf("%w: %s: %d out of range", ErrCorrupt, what, v)
	}
	return int(v), nil
}

func noNaN(what string, vs []float64) error {
	for _, v := range vs {
		if math.IsNaN(v) {
			return fmt.Errorf("%w: %s: NaN", ErrCorrupt, what)
		}
	}
	return nil
}

func descending(what string, vs []float64) error {
	for i := 1; i < len(vs); i++ {
		if vs[i] > vs[i-1] {
			return fmt.Errorf("%w: %s not sorted descending", ErrCorrupt, what)
		}
	}
	return nil
}
