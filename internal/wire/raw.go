package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// RawScanner splits a frame stream into verbatim frames plus the routing
// envelope (kind, key) parsed from each — what a fan-in router needs to
// partition a worker's push blob across aggregator replicas without
// decoding and re-encoding payloads (the routed bytes are bit-identical
// to what the worker sent, so replica folds stay bit-reproducible).
//
// Validation is deliberately shallow — magic, version, payload length,
// kind and key bounds; the replica's own Decoder performs the full
// structural validation when it folds the routed frame. Every error wraps
// the same package sentinels Decode uses.
type RawScanner struct {
	r        io.Reader
	buf      []byte // header + payload of the current frame
	consumed int64
}

// NewRawScanner returns a RawScanner reading from r.
func NewRawScanner(r io.Reader) *RawScanner { return &RawScanner{r: r} }

// Consumed returns the total bytes read from the stream so far.
func (s *RawScanner) Consumed() int64 { return s.consumed }

// Next returns the next frame's kind, key, and its verbatim bytes (header
// included), valid until the following call. At a clean end of stream it
// returns io.EOF unwrapped.
func (s *RawScanner) Next() (Kind, string, []byte, error) {
	if cap(s.buf) < headerSize {
		s.buf = make([]byte, headerSize, 4096)
	}
	s.buf = s.buf[:headerSize]
	hn, err := io.ReadFull(s.r, s.buf)
	s.consumed += int64(hn)
	if err != nil {
		if err == io.EOF {
			return 0, "", nil, io.EOF
		}
		return 0, "", nil, fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	if [4]byte(s.buf[:4]) != magic {
		return 0, "", nil, fmt.Errorf("%w: %q", ErrMagic, s.buf[:4])
	}
	v := binary.LittleEndian.Uint16(s.buf[4:6])
	if v != VersionV1 && v != Version {
		return 0, "", nil, fmt.Errorf("%w: frame v%d, decoder speaks v%d", ErrVersion, v, Version)
	}
	n := binary.LittleEndian.Uint32(s.buf[6:10])
	if n > maxPayload {
		return 0, "", nil, fmt.Errorf("%w: payload length %d exceeds cap", ErrCorrupt, n)
	}
	// The claimed length is untrusted until the bytes arrive: read in
	// bounded steps so a corrupt header cannot demand a huge allocation
	// for a stream that ends after a few bytes.
	const allocStep = 1 << 20
	for len(s.buf) < headerSize+int(n) {
		step := headerSize + int(n) - len(s.buf)
		if step > allocStep {
			step = allocStep
		}
		s.buf = append(s.buf, make([]byte, step)...)
		chunk := s.buf[len(s.buf)-step:]
		pn, err := io.ReadFull(s.r, chunk)
		s.consumed += int64(pn)
		if err != nil {
			return 0, "", nil, fmt.Errorf("%w: payload: %v", ErrTruncated, err)
		}
	}
	p := &payloadReader{b: s.buf[headerSize:]}
	kind := KindFull
	if v >= 2 {
		kb, err := p.byte("frame kind")
		if err != nil {
			return 0, "", nil, err
		}
		if Kind(kb) > KindTombstone {
			return 0, "", nil, fmt.Errorf("%w: unknown frame kind %d", ErrCorrupt, kb)
		}
		kind = Kind(kb)
	}
	keyLen, err := p.count("key", 1)
	if err != nil {
		return 0, "", nil, err
	}
	key := string(p.b[p.off : p.off+keyLen])
	return kind, key, s.buf, nil
}
