package exact

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/window"
)

var spec100 = window.Spec{Size: 100, Period: 10}

func TestNewValidation(t *testing.T) {
	if _, err := New(window.Spec{Size: 5, Period: 10}, []float64{0.5}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := New(spec100, nil); err == nil {
		t.Fatal("empty phis accepted")
	}
	if _, err := New(spec100, []float64{0.9, 0.5}); err == nil {
		t.Fatal("unsorted phis accepted")
	}
	if _, err := New(spec100, []float64{0}); err == nil {
		t.Fatal("phi=0 accepted")
	}
	if _, err := New(spec100, []float64{1.5}); err == nil {
		t.Fatal("phi>1 accepted")
	}
	if _, err := New(spec100, []float64{0.5, 0.9, 1.0}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchesBruteForceSliding(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]float64, 5000)
	for i := range data {
		data[i] = math.Floor(rng.Float64() * 500)
	}
	spec := window.Spec{Size: 1000, Period: 100}
	phis := []float64{0.5, 0.9, 0.99, 0.999}
	p, err := New(spec, phis)
	if err != nil {
		t.Fatal(err)
	}
	evals, _, err := stream.Run(p, spec, data)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	_ = spec.Iter(data, func(idx int, w []float64) {
		want := stats.Quantiles(w, phis)
		for j := range phis {
			if evals[idx].Estimates[j] != want[j] {
				t.Fatalf("eval %d phi=%v: got %v, want %v", idx, phis[j], evals[idx].Estimates[j], want[j])
			}
		}
		i++
	})
	if i != len(evals) {
		t.Fatalf("brute force saw %d windows, policy produced %d", i, len(evals))
	}
}

func TestTumblingWindow(t *testing.T) {
	data := []float64{5, 1, 9, 3, 2, 8, 7, 4}
	spec := window.Spec{Size: 4, Period: 4}
	p, _ := New(spec, []float64{0.5, 1.0})
	evals, _, err := stream.Run(p, spec, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) != 2 {
		t.Fatalf("evals = %d", len(evals))
	}
	// window 1: {5,1,9,3} -> Q0.5=3 (rank 2), max=9
	if evals[0].Estimates[0] != 3 || evals[0].Estimates[1] != 9 {
		t.Fatalf("window 1 = %v", evals[0].Estimates)
	}
	// window 2: {2,8,7,4} -> Q0.5=4, max=8
	if evals[1].Estimates[0] != 4 || evals[1].Estimates[1] != 8 {
		t.Fatalf("window 2 = %v", evals[1].Estimates)
	}
}

func TestResultOnEmptyStateIsZeros(t *testing.T) {
	p, _ := New(spec100, []float64{0.5, 0.9})
	got := p.Result()
	if len(got) != 2 || got[0] != 0 || got[1] != 0 {
		t.Fatalf("empty Result = %v", got)
	}
}

func TestSpaceUsageTracksUniqueValues(t *testing.T) {
	p, _ := New(spec100, []float64{0.5})
	for i := 0; i < 100; i++ {
		p.Observe(float64(i % 10))
	}
	if got := p.SpaceUsage(); got != 10 {
		t.Fatalf("SpaceUsage = %d, want 10", got)
	}
	if p.Len() != 100 {
		t.Fatalf("Len = %d", p.Len())
	}
	p.Expire(make([]float64, 0)) // no-op
	if p.Len() != 100 {
		t.Fatal("empty Expire changed state")
	}
}

func TestExpireRemovesElements(t *testing.T) {
	p, _ := New(spec100, []float64{0.5})
	vals := []float64{1, 2, 3, 4}
	for _, v := range vals {
		p.Observe(v)
	}
	p.Expire([]float64{1, 2})
	if p.Len() != 2 {
		t.Fatalf("Len after expire = %d", p.Len())
	}
	if got := p.Result()[0]; got != 3 {
		t.Fatalf("median after expire = %v, want 3", got)
	}
}

func TestName(t *testing.T) {
	p, _ := New(spec100, []float64{0.5})
	if p.Name() != "Exact" {
		t.Fatalf("Name = %q", p.Name())
	}
}

// Property: over any data and valid window, Exact matches brute force.
func TestQuickMatchesBruteForce(t *testing.T) {
	f := func(raw []uint8, pSeed, mulSeed uint8) bool {
		p := int(pSeed%5) + 1
		spec := window.Spec{Size: p * (int(mulSeed%3) + 1), Period: p}
		if len(raw) < spec.Size {
			return true
		}
		data := make([]float64, len(raw))
		for i, r := range raw {
			data[i] = float64(r % 16)
		}
		phis := []float64{0.25, 0.5, 0.99}
		pol, err := New(spec, phis)
		if err != nil {
			return false
		}
		evals, _, err := stream.Run(pol, spec, data)
		if err != nil {
			return false
		}
		ok := true
		_ = spec.Iter(data, func(idx int, w []float64) {
			want := stats.Quantiles(w, phis)
			for j := range phis {
				if evals[idx].Estimates[j] != want[j] {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
