// Package exact implements the paper's Exact baseline (§5.1 policy 1): a
// red-black tree of {value, count} pairs over the full sliding window,
// extended from Algorithm 1 with deaccumulation — the expired element's
// node decrements its frequency and is deleted when it reaches zero. The
// paper notes this outperformed other exact methods; its deaccumulation
// cost on large windows is precisely what QLOVE's sub-window summaries
// avoid.
package exact

import (
	"fmt"
	"math"

	"repro/internal/rbtree"
	"repro/internal/window"
)

// Policy is the exact sliding-window multi-quantile operator.
type Policy struct {
	phis []float64
	tree *rbtree.Tree
}

// New returns an Exact policy answering the given quantiles, which must be
// sorted in non-decreasing order and lie in (0, 1].
func New(spec window.Spec, phis []float64) (*Policy, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := ValidatePhis(phis); err != nil {
		return nil, err
	}
	return &Policy{
		phis: append([]float64(nil), phis...),
		tree: rbtree.New(),
	}, nil
}

// ValidatePhis checks that quantile targets are sorted and in (0, 1].
func ValidatePhis(phis []float64) error {
	if len(phis) == 0 {
		return fmt.Errorf("exact: no quantiles specified")
	}
	prev := 0.0
	for _, phi := range phis {
		if phi <= 0 || phi > 1 {
			return fmt.Errorf("exact: quantile %v outside (0, 1]", phi)
		}
		if phi < prev {
			return fmt.Errorf("exact: quantiles not sorted at %v", phi)
		}
		prev = phi
	}
	return nil
}

// Name implements stream.Policy.
func (p *Policy) Name() string { return "Exact" }

// Observe implements stream.Policy (Accumulate in Algorithm 1). NaN
// values are dropped — they have no order-statistic meaning and would
// corrupt tree comparisons.
func (p *Policy) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	p.tree.Insert(v)
}

// ObserveBatch implements stream.Policy: a direct insert loop on the
// concrete receiver, sparing the per-element interface dispatch of the
// runner's element-at-a-time path.
func (p *Policy) ObserveBatch(vs []float64) {
	for _, v := range vs {
		if math.IsNaN(v) {
			continue
		}
		p.tree.Insert(v)
	}
}

// Expire implements stream.Policy: element-wise deaccumulation.
func (p *Policy) Expire(old []float64) {
	for _, v := range old {
		if math.IsNaN(v) {
			continue
		}
		p.tree.Remove(v)
	}
}

// Result implements stream.Policy: one in-order traversal answers all
// quantiles (ComputeResult in Algorithm 1).
func (p *Policy) Result() []float64 {
	if p.tree.Empty() {
		return make([]float64, len(p.phis))
	}
	return p.tree.Quantiles(p.phis)
}

// SpaceUsage implements stream.Policy: one resident {value, count} node per
// unique value in the window.
func (p *Policy) SpaceUsage() int { return p.tree.Unique() }

// Len returns the number of elements currently inside the window.
func (p *Policy) Len() uint64 { return p.tree.Len() }
