package cmqs

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/window"
)

func TestNewValidation(t *testing.T) {
	spec := window.Spec{Size: 100, Period: 10}
	if _, err := New(spec, []float64{0.5}, 0.02); err != nil {
		t.Fatal(err)
	}
	if _, err := New(spec, nil, 0.02); err == nil {
		t.Fatal("empty phis accepted")
	}
	if _, err := New(spec, []float64{0.5}, 0); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := New(spec, []float64{0.5}, 0.7); err == nil {
		t.Fatal("eps>0.5 accepted")
	}
	if _, err := New(window.Spec{Size: 5, Period: 10}, []float64{0.5}, 0.02); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestRankErrorWithinEpsilon(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]float64, 20000)
	for i := range data {
		data[i] = math.Round(800 * math.Exp(0.35*rng.NormFloat64()))
	}
	spec := window.Spec{Size: 2000, Period: 200}
	phis := []float64{0.5, 0.9, 0.99}
	const eps = 0.05
	p, err := New(spec, phis, eps)
	if err != nil {
		t.Fatal(err)
	}
	evals, _, err := stream.Run(p, spec, data)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	_ = spec.Iter(data, func(idx int, w []float64) {
		sorted := append([]float64(nil), w...)
		sort.Float64s(sorted)
		for j, phi := range phis {
			est := evals[idx].Estimates[j]
			r := stats.CeilRank(phi, len(sorted))
			lo := sort.SearchFloat64s(sorted, est) + 1
			hi := stats.RankOf(sorted, est)
			var dist float64
			switch {
			case r < lo:
				dist = float64(lo - r)
			case r > hi:
				dist = float64(r - hi)
			}
			if e := dist / float64(len(sorted)); e > worst {
				worst = e
			}
		}
	})
	if worst > eps {
		t.Fatalf("worst rank error %v exceeds eps %v", worst, eps)
	}
}

func TestExpiryDropsWholeSketch(t *testing.T) {
	spec := window.Spec{Size: 40, Period: 10}
	p, _ := New(spec, []float64{0.5}, 0.1)
	data := make([]float64, 60)
	for i := range data {
		data[i] = float64(i)
	}
	evals, _, err := stream.Run(p, spec, data)
	if err != nil {
		t.Fatal(err)
	}
	// Third evaluation covers [20, 60): median should track the window.
	last := evals[len(evals)-1].Estimates[0]
	if last < 35 || last > 45 {
		t.Fatalf("median after slides = %v, want ≈ 40", last)
	}
}

func TestResultMidSubWindowIncludesInFlight(t *testing.T) {
	spec := window.Spec{Size: 20, Period: 10}
	p, _ := New(spec, []float64{1.0}, 0.1)
	for i := 0; i < 15; i++ {
		p.Observe(float64(i))
	}
	// One sealed sketch (0..9) plus in-flight (10..14): max must be 14.
	if got := p.Result()[0]; got != 14 {
		t.Fatalf("max = %v, want 14", got)
	}
}

func TestResultEmptyIsZeros(t *testing.T) {
	spec := window.Spec{Size: 20, Period: 10}
	p, _ := New(spec, []float64{0.5, 0.9}, 0.1)
	got := p.Result()
	if got[0] != 0 || got[1] != 0 {
		t.Fatalf("empty Result = %v", got)
	}
}

func TestSpaceUsageBoundedBySketches(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	spec := window.Spec{Size: 10000, Period: 1000}
	p, _ := New(spec, []float64{0.5}, 0.02)
	data := make([]float64, 20000)
	for i := range data {
		data[i] = rng.Float64()
	}
	_, st, err := stream.Run(p, spec, data)
	if err != nil {
		t.Fatal(err)
	}
	// Must be well below the raw window size.
	if st.MaxSpace >= spec.Size/2 {
		t.Fatalf("space %d not sublinear vs window %d", st.MaxSpace, spec.Size)
	}
	if st.MaxSpace == 0 {
		t.Fatal("space usage not tracked")
	}
}

func TestEpsAccuracyTradeoff(t *testing.T) {
	// Larger eps must not use more space than smaller eps (paper's Fig. 4
	// trade-off direction).
	rng := rand.New(rand.NewSource(3))
	data := make([]float64, 30000)
	for i := range data {
		data[i] = rng.Float64()
	}
	spec := window.Spec{Size: 10000, Period: 1000}
	var spaces []int
	for _, eps := range []float64{0.02, 0.2} {
		p, _ := New(spec, []float64{0.5}, eps)
		_, st, err := stream.Run(p, spec, data)
		if err != nil {
			t.Fatal(err)
		}
		spaces = append(spaces, st.MaxSpace)
	}
	if spaces[1] > spaces[0] {
		t.Fatalf("eps=0.2 used %d > eps=0.02 used %d", spaces[1], spaces[0])
	}
}

func TestAnalyticalSpace(t *testing.T) {
	got := AnalyticalSpace(window.Spec{Size: 128000, Period: 16000}, 0.02)
	if got != 8*160 {
		t.Fatalf("AnalyticalSpace = %d, want 1280", got)
	}
}

func TestName(t *testing.T) {
	p, _ := New(window.Spec{Size: 20, Period: 10}, []float64{0.5}, 0.1)
	if p.Name() != "CMQS" {
		t.Fatalf("Name = %q", p.Name())
	}
}
