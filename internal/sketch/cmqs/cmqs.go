// Package cmqs implements the CMQS baseline (§5.1 policy 2): "Continuously
// Maintaining Quantile Summaries of the most recent N elements over a data
// stream", Lin, Lu, Xu, Yu — ICDE 2004, as configured by the QLOVE paper's
// evaluation. The sliding window is partitioned into sub-windows of the
// period size; each sub-window builds a Greenwald–Khanna sketch with local
// error ε/2 (capacity ⌊εP/2⌋ tuples), completed sketches are retained for
// the window's lifetime, and queries merge all active sketches. Expiry
// drops a whole sketch at a time, which is what makes CMQS faster than
// element-wise exact deaccumulation yet still slower than QLOVE (its merge
// step scales with ⌊εP/2⌋·N/P tuples per evaluation).
package cmqs

import (
	"fmt"

	"repro/internal/sketch/gk"
	"repro/internal/window"
)

// Policy is the CMQS sliding-window quantile operator.
type Policy struct {
	spec     window.Spec
	phis     []float64
	eps      float64
	sealed   []*gk.Summary // completed sub-window sketches, oldest first
	current  *gk.Summary   // in-flight sub-window sketch
	inFlight int           // elements observed in the current sub-window
}

// New returns a CMQS policy with rank-error parameter eps (the paper's
// experiments use 0.02 "1x" through 0.2 "10x").
func New(spec window.Spec, phis []float64, eps float64) (*Policy, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(phis) == 0 {
		return nil, fmt.Errorf("cmqs: no quantiles specified")
	}
	if eps <= 0 || eps > 0.5 {
		return nil, fmt.Errorf("cmqs: eps %v outside (0, 0.5]", eps)
	}
	p := &Policy{
		spec: spec,
		phis: append([]float64(nil), phis...),
		eps:  eps,
	}
	var err error
	if p.current, err = gk.New(eps / 2); err != nil {
		return nil, err
	}
	return p, nil
}

// Name implements stream.Policy.
func (p *Policy) Name() string { return "CMQS" }

// Observe implements stream.Policy. Completed sub-windows seal their sketch
// and start a fresh one.
func (p *Policy) Observe(v float64) {
	p.current.Insert(v)
	p.inFlight++
	if p.inFlight == p.spec.Period {
		p.seal()
	}
}

// seal retires the completed sub-window sketch and starts a fresh one.
func (p *Policy) seal() {
	p.sealed = append(p.sealed, p.current)
	p.current, _ = gk.New(p.eps / 2) // eps validated in New
	p.inFlight = 0
}

// ObserveBatch implements stream.Policy, inserting period-bounded chunks
// so the seal check runs once per chunk instead of once per element.
func (p *Policy) ObserveBatch(vs []float64) {
	for len(vs) > 0 {
		chunk := vs
		if room := p.spec.Period - p.inFlight; len(chunk) > room {
			chunk = chunk[:room]
		}
		for _, v := range chunk {
			p.current.Insert(v)
		}
		p.inFlight += len(chunk)
		if p.inFlight == p.spec.Period {
			p.seal()
		}
		vs = vs[len(chunk):]
	}
}

// Expire implements stream.Policy: an entire sub-window sketch is dropped
// per period — CMQS never touches individual elements on expiry.
func (p *Policy) Expire([]float64) {
	if len(p.sealed) > 0 {
		p.sealed = p.sealed[1:]
	}
}

// ExpiresWholeSummaries implements stream.SummaryExpirer: CMQS drops a
// whole sub-window sketch per period and never reads the Expire slice.
func (p *Policy) ExpiresWholeSummaries() bool { return true }

// Result implements stream.Policy: merge every active sketch.
func (p *Policy) Result() []float64 {
	active := p.activeSketches()
	out := make([]float64, len(p.phis))
	empty := true
	for _, s := range active {
		if s.Count() > 0 {
			empty = false
			break
		}
	}
	if empty {
		return out
	}
	for i, phi := range p.phis {
		out[i] = gk.QueryMerged(active, phi)
	}
	return out
}

func (p *Policy) activeSketches() []*gk.Summary {
	active := append([]*gk.Summary(nil), p.sealed...)
	if p.inFlight > 0 {
		active = append(active, p.current)
	}
	return active
}

// SpaceUsage implements stream.Policy: the tuple count across all resident
// sketches.
func (p *Policy) SpaceUsage() int {
	n := p.current.Size()
	for _, s := range p.sealed {
		n += s.Size()
	}
	return n
}

// AnalyticalSpace returns the paper's Table 1 analytical bound: each of the
// N/P sub-window sketches holds ⌊εP/2⌋ tuples.
func AnalyticalSpace(spec window.Spec, eps float64) int {
	perSketch := int(eps * float64(spec.Period) / 2)
	return spec.SubWindows() * perSketch
}
