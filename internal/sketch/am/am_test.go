package am

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/sketch/gk"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/window"
)

func wv(v float64, w float64) gk.WeightedValue { return gk.WeightedValue{Value: v, Weight: w} }

func TestNewValidation(t *testing.T) {
	spec := window.Spec{Size: 80, Period: 10}
	if _, err := New(spec, []float64{0.5}, 0.05); err != nil {
		t.Fatal(err)
	}
	if _, err := New(spec, nil, 0.05); err == nil {
		t.Fatal("empty phis accepted")
	}
	if _, err := New(spec, []float64{0.5}, 0); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := New(window.Spec{Size: 5, Period: 10}, []float64{0.5}, 0.05); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestLevelsComputation(t *testing.T) {
	p, _ := New(window.Spec{Size: 80, Period: 10}, []float64{0.5}, 0.05)
	if p.levels != 4 { // spans 1, 2, 4, 8
		t.Fatalf("levels = %d, want 4", p.levels)
	}
	p, _ = New(window.Spec{Size: 10, Period: 10}, []float64{0.5}, 0.05)
	if p.levels != 1 {
		t.Fatalf("tumbling levels = %d, want 1", p.levels)
	}
}

func TestDyadicCascadeBuildsAllLevels(t *testing.T) {
	spec := window.Spec{Size: 80, Period: 10}
	p, _ := New(spec, []float64{0.5}, 0.05)
	for i := 0; i < 80; i++ {
		p.Observe(float64(i))
	}
	// After 8 base blocks: 8 at L0, 4 at L1, 2 at L2, 1 at L3.
	want := []int{8, 4, 2, 1}
	for lvl, w := range want {
		if got := len(p.blocks[lvl]); got != w {
			t.Fatalf("level %d has %d blocks, want %d", lvl, got, w)
		}
	}
}

func TestExpireDropsCoveringBlocks(t *testing.T) {
	spec := window.Spec{Size: 80, Period: 10}
	p, _ := New(spec, []float64{0.5}, 0.05)
	for i := 0; i < 80; i++ {
		p.Observe(float64(i))
	}
	p.Expire(nil) // base block 0 expires
	// L3 block [0..8) and L2 block [0..4), L1 [0..2), L0 [0] all drop.
	want := []int{7, 3, 1, 0}
	for lvl, w := range want {
		if got := len(p.blocks[lvl]); got != w {
			t.Fatalf("after expire: level %d has %d blocks, want %d", lvl, got, w)
		}
	}
}

func TestRankErrorWithinEpsilon(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]float64, 20000)
	for i := range data {
		data[i] = math.Round(800 * math.Exp(0.35*rng.NormFloat64()))
	}
	spec := window.Spec{Size: 1600, Period: 200}
	phis := []float64{0.5, 0.9, 0.99}
	const eps = 0.05
	p, err := New(spec, phis, eps)
	if err != nil {
		t.Fatal(err)
	}
	evals, _, err := stream.Run(p, spec, data)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	_ = spec.Iter(data, func(idx int, w []float64) {
		sorted := append([]float64(nil), w...)
		sort.Float64s(sorted)
		for j, phi := range phis {
			est := evals[idx].Estimates[j]
			r := stats.CeilRank(phi, len(sorted))
			lo := sort.SearchFloat64s(sorted, est) + 1
			hi := stats.RankOf(sorted, est)
			var dist float64
			switch {
			case r < lo:
				dist = float64(lo - r)
			case r > hi:
				dist = float64(r - hi)
			}
			if e := dist / float64(len(sorted)); e > worst {
				worst = e
			}
		}
	})
	if worst > eps {
		t.Fatalf("worst rank error %v exceeds eps %v", worst, eps)
	}
}

func TestCoverIncludesInFlight(t *testing.T) {
	spec := window.Spec{Size: 40, Period: 10}
	p, _ := New(spec, []float64{1.0}, 0.05)
	for i := 0; i < 45; i++ {
		p.Observe(float64(i))
	}
	if got := p.Result()[0]; got != 44 {
		t.Fatalf("max = %v, want 44 (in-flight included)", got)
	}
}

func TestResultEmptyIsZeros(t *testing.T) {
	p, _ := New(window.Spec{Size: 40, Period: 10}, []float64{0.5, 0.9}, 0.05)
	got := p.Result()
	if got[0] != 0 || got[1] != 0 {
		t.Fatalf("empty Result = %v", got)
	}
}

func TestSpaceExceedsCMQSStyleSingleLevel(t *testing.T) {
	// AM keeps every level resident, so its space must exceed the sum of
	// level-0 sketch sizes alone (Table 1 ordering: AM > CMQS).
	rng := rand.New(rand.NewSource(2))
	spec := window.Spec{Size: 8000, Period: 1000}
	p, _ := New(spec, []float64{0.5}, 0.02)
	for i := 0; i < 16000; i++ {
		p.Observe(rng.Float64())
	}
	var level0 int
	for _, b := range p.blocks[0] {
		level0 += len(b.sum.values)
	}
	if p.SpaceUsage() <= level0 {
		t.Fatalf("space %d not above level-0 alone %d", p.SpaceUsage(), level0)
	}
}

func TestSlidingTracksWindow(t *testing.T) {
	spec := window.Spec{Size: 400, Period: 100}
	p, _ := New(spec, []float64{0.5}, 0.05)
	data := make([]float64, 2000)
	for i := range data {
		data[i] = float64(i)
	}
	evals, _, err := stream.Run(p, spec, data)
	if err != nil {
		t.Fatal(err)
	}
	last := evals[len(evals)-1]
	// Final window covers [1600, 2000): median ≈ 1800.
	if math.Abs(last.Estimates[0]-1800) > 0.05*400+25 {
		t.Fatalf("median = %v, want ≈ 1800", last.Estimates[0])
	}
}

func TestMergePruneCapsSize(t *testing.T) {
	spec := window.Spec{Size: 40, Period: 10}
	p, _ := New(spec, []float64{0.5}, 0.05)
	a := wsummary{count: 100}
	b := wsummary{count: 100}
	for i := 0; i < 200; i++ {
		a.values = append(a.values, wv(float64(i), 1))
		b.values = append(b.values, wv(float64(i)+0.5, 1))
	}
	m := p.mergePrune(a, b)
	if len(m.values) > p.cap {
		t.Fatalf("merged size %d exceeds cap %d", len(m.values), p.cap)
	}
	if m.count != 200 {
		t.Fatalf("merged count = %d", m.count)
	}
	var wsum float64
	prev := math.Inf(-1)
	for _, e := range m.values {
		wsum += e.Weight
		if e.Value < prev {
			t.Fatal("merged values not sorted")
		}
		prev = e.Value
	}
	if math.Abs(wsum-400) > 1e-9 {
		t.Fatalf("merged weights sum to %v, want 400", wsum)
	}
}

func TestName(t *testing.T) {
	p, _ := New(window.Spec{Size: 20, Period: 10}, []float64{0.5}, 0.05)
	if p.Name() != "AM" {
		t.Fatalf("Name = %q", p.Name())
	}
}
