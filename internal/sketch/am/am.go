// Package am implements the AM baseline (§5.1 policy 3): Arasu & Manku,
// "Approximate Counts and Quantiles over Sliding Windows", PODS 2004 — a
// deterministic rank-error algorithm for sliding windows.
//
// The implementation follows AM's dyadic multi-level structure. The stream
// is cut into base blocks of the period size, each summarized by a
// Greenwald–Khanna sketch with error ε/2. Every level ℓ additionally keeps
// summaries spanning 2^ℓ base blocks, formed by merging (and pruning) the
// two aligned children — children are retained, so all resolutions of the
// window are resident simultaneously. That redundancy is what gives AM its
// characteristic space overhead relative to CMQS, matching the ordering in
// the paper's Table 1. A query greedily covers the unexpired window with
// the largest fully-live blocks and merges their weighted summaries;
// expiry retires every block that covers the expired base block.
package am

import (
	"fmt"
	"math"

	"repro/internal/sketch/gk"
	"repro/internal/window"
)

// wsummary is a pruned weighted-value summary of a completed block.
type wsummary struct {
	values []gk.WeightedValue // sorted by value
	count  int64
}

// block is a summarized run of `span` consecutive base blocks.
type block struct {
	start int // index of first base block covered
	span  int // number of base blocks covered (power of two)
	sum   wsummary
}

// Policy is the AM sliding-window quantile operator.
type Policy struct {
	spec     window.Spec
	phis     []float64
	eps      float64
	levels   int
	cap      int         // max tuples per merged summary before pruning
	blocks   [][]block   // per level: completed, unexpired blocks, oldest first
	current  *gk.Summary // in-flight base block
	inFlight int
	baseSeq  int // sequence number of the in-flight base block
	expired  int // number of expired base blocks
}

// New returns an AM policy with rank-error parameter eps.
func New(spec window.Spec, phis []float64, eps float64) (*Policy, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(phis) == 0 {
		return nil, fmt.Errorf("am: no quantiles specified")
	}
	if eps <= 0 || eps > 0.5 {
		return nil, fmt.Errorf("am: eps %v outside (0, 0.5]", eps)
	}
	levels := 1
	for span := 1; span < spec.SubWindows(); span *= 2 {
		levels++
	}
	p := &Policy{
		spec:   spec,
		phis:   append([]float64(nil), phis...),
		eps:    eps,
		levels: levels,
		cap:    int(math.Ceil(4 / eps)),
		blocks: make([][]block, levels),
	}
	p.current = p.newSketch()
	return p, nil
}

func (p *Policy) newSketch() *gk.Summary {
	s, err := gk.New(p.eps / 2)
	if err != nil {
		panic("am: internal error: " + err.Error()) // eps validated in New
	}
	return s
}

// Name implements stream.Policy.
func (p *Policy) Name() string { return "AM" }

// Observe implements stream.Policy.
func (p *Policy) Observe(v float64) {
	p.current.Insert(v)
	p.inFlight++
	if p.inFlight == p.spec.Period {
		p.seal()
	}
}

// ObserveBatch implements stream.Policy, inserting period-bounded chunks
// so the seal check runs once per chunk instead of once per element.
func (p *Policy) ObserveBatch(vs []float64) {
	for len(vs) > 0 {
		chunk := vs
		if room := p.spec.Period - p.inFlight; len(chunk) > room {
			chunk = chunk[:room]
		}
		for _, v := range chunk {
			p.current.Insert(v)
		}
		p.inFlight += len(chunk)
		if p.inFlight == p.spec.Period {
			p.seal()
		}
		vs = vs[len(chunk):]
	}
}

// seal completes the in-flight base block and cascades dyadic merges.
func (p *Policy) seal() {
	b := block{
		start: p.baseSeq,
		span:  1,
		sum:   wsummary{values: p.current.Export(), count: p.current.Count()},
	}
	p.baseSeq++
	p.inFlight = 0
	p.current = p.newSketch()
	p.blocks[0] = append(p.blocks[0], b)
	p.cascade(0, b)
}

// cascade builds the level-(lvl+1) parent when the freshly completed block
// is a right sibling and its left sibling is still resident. Children are
// kept: every level retains its own partition of the stream.
func (p *Policy) cascade(lvl int, right block) {
	if lvl+1 >= p.levels {
		return
	}
	if (right.start/right.span)%2 != 1 {
		return // left sibling of its pair; wait for the right one
	}
	wantStart := right.start - right.span
	var left *block
	for i := len(p.blocks[lvl]) - 1; i >= 0; i-- {
		if p.blocks[lvl][i].start == wantStart && p.blocks[lvl][i].span == right.span {
			left = &p.blocks[lvl][i]
			break
		}
	}
	if left == nil {
		return // sibling expired before the pair completed
	}
	parent := block{
		start: wantStart,
		span:  right.span * 2,
		sum:   p.mergePrune(left.sum, right.sum),
	}
	p.blocks[lvl+1] = append(p.blocks[lvl+1], parent)
	p.cascade(lvl+1, parent)
}

// mergePrune merges two weighted summaries and prunes the result to the
// policy's tuple cap by pairing adjacent tuples (the classic mergeable-
// summary compaction: each prune level adds O(count/cap) rank error).
func (p *Policy) mergePrune(a, b wsummary) wsummary {
	merged := make([]gk.WeightedValue, 0, len(a.values)+len(b.values))
	i, j := 0, 0
	for i < len(a.values) && j < len(b.values) {
		if a.values[i].Value <= b.values[j].Value {
			merged = append(merged, a.values[i])
			i++
		} else {
			merged = append(merged, b.values[j])
			j++
		}
	}
	merged = append(merged, a.values[i:]...)
	merged = append(merged, b.values[j:]...)
	for len(merged) > p.cap {
		pruned := make([]gk.WeightedValue, 0, (len(merged)+1)/2)
		for k := 0; k+1 < len(merged); k += 2 {
			pruned = append(pruned, gk.WeightedValue{
				Value:  merged[k+1].Value, // keep the larger; weight of both
				Weight: merged[k].Weight + merged[k+1].Weight,
			})
		}
		if len(merged)%2 == 1 {
			pruned = append(pruned, merged[len(merged)-1])
		}
		merged = pruned
	}
	return wsummary{values: merged, count: a.count + b.count}
}

// Expire implements stream.Policy: the oldest base block expires; every
// block at any level that covers it is dropped.
func (p *Policy) Expire([]float64) {
	p.expired++
	for lvl := range p.blocks {
		bs := p.blocks[lvl]
		keep := bs[:0]
		for _, b := range bs {
			if b.start >= p.expired {
				keep = append(keep, b)
			}
		}
		p.blocks[lvl] = keep
	}
}

// ExpiresWholeSummaries implements stream.SummaryExpirer: AM expires
// whole blocks by position and never reads the Expire slice.
func (p *Policy) ExpiresWholeSummaries() bool { return true }

// activeCover greedily covers the unexpired base blocks with the largest
// live blocks, top level first.
func (p *Policy) activeCover() []wsummary {
	covered := make(map[int]bool)
	var out []wsummary
	for lvl := p.levels - 1; lvl >= 0; lvl-- {
		for _, b := range p.blocks[lvl] {
			free := true
			for i := b.start; i < b.start+b.span; i++ {
				if covered[i] {
					free = false
					break
				}
			}
			if !free {
				continue
			}
			for i := b.start; i < b.start+b.span; i++ {
				covered[i] = true
			}
			out = append(out, b.sum)
		}
	}
	if p.inFlight > 0 {
		out = append(out, wsummary{values: p.current.Export(), count: p.current.Count()})
	}
	return out
}

// Result implements stream.Policy.
func (p *Policy) Result() []float64 {
	cover := p.activeCover()
	out := make([]float64, len(p.phis))
	var total int64
	lists := make([][]gk.WeightedValue, 0, len(cover))
	for _, s := range cover {
		total += s.count
		lists = append(lists, s.values)
	}
	if total == 0 {
		return out
	}
	for i, phi := range p.phis {
		r := int64(math.Ceil(phi * float64(total)))
		if r < 1 {
			r = 1
		}
		out[i] = gk.MergedRead(lists, float64(r))
	}
	return out
}

// SpaceUsage implements stream.Policy: tuples across every resident block
// at every level, plus the in-flight sketch.
func (p *Policy) SpaceUsage() int {
	n := p.current.Size()
	for _, lvl := range p.blocks {
		for _, b := range lvl {
			n += len(b.sum.values)
		}
	}
	return n
}
