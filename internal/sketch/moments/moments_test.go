package moments

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/window"
)

func TestNewSketchValidation(t *testing.T) {
	if _, err := NewSketch(1); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := NewSketch(17); err == nil {
		t.Fatal("k=17 accepted")
	}
	if _, err := NewSketch(12); err != nil {
		t.Fatal(err)
	}
}

func TestInsertTracksStats(t *testing.T) {
	s, _ := NewSketch(4)
	for _, v := range []float64{1, 2, 3} {
		s.Insert(v)
	}
	if s.Count != 3 || s.Min != 1 || s.Max != 3 {
		t.Fatalf("count=%d min=%v max=%v", s.Count, s.Min, s.Max)
	}
	if s.Center != 1 {
		t.Fatalf("Center = %v, want first value 1", s.Center)
	}
	if s.Pow[0] != 3 { // Σ(x-1) = 0+1+2
		t.Fatalf("Pow[0] = %v, want 3", s.Pow[0])
	}
	if s.Pow[1] != 5 { // Σ(x-1)² = 0+1+4
		t.Fatalf("Pow[1] = %v, want 5", s.Pow[1])
	}
	if !s.AllPos {
		t.Fatal("AllPos should hold for positive data")
	}
	s.Insert(-1)
	if s.AllPos {
		t.Fatal("AllPos should clear on non-positive value")
	}
}

func TestMerge(t *testing.T) {
	a, _ := NewSketch(4)
	b, _ := NewSketch(4)
	for i := 1; i <= 5; i++ {
		a.Insert(float64(i))
	}
	for i := 6; i <= 10; i++ {
		b.Insert(float64(i))
	}
	whole, _ := NewSketch(4)
	for i := 1; i <= 10; i++ {
		whole.Insert(float64(i))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count != whole.Count || a.Min != whole.Min || a.Max != whole.Max {
		t.Fatal("merge mismatch on count/min/max")
	}
	for i := range a.Pow {
		if math.Abs(a.Pow[i]-whole.Pow[i]) > 1e-9*math.Abs(whole.Pow[i]) {
			t.Fatalf("Pow[%d]: merged %v, whole %v", i, a.Pow[i], whole.Pow[i])
		}
	}
}

func TestMergeOrderMismatch(t *testing.T) {
	a, _ := NewSketch(4)
	b, _ := NewSketch(6)
	if err := a.Merge(b); err == nil {
		t.Fatal("order mismatch accepted")
	}
}

func TestClone(t *testing.T) {
	a, _ := NewSketch(4)
	a.Insert(5)
	c := a.Clone()
	c.Insert(10)
	if a.Count != 1 || c.Count != 2 {
		t.Fatal("Clone not independent")
	}
	if a.Pow[0] == c.Pow[0] {
		t.Fatal("Clone shares Pow slice")
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	s, _ := NewSketch(6)
	if _, err := s.Quantile(0.5); err == nil {
		t.Fatal("empty sketch accepted")
	}
	s.Insert(7)
	if q, err := s.Quantile(0.5); err != nil || q != 7 {
		t.Fatalf("point mass quantile = %v, %v", q, err)
	}
	if _, err := s.Quantile(0); err == nil {
		t.Fatal("phi=0 accepted")
	}
	if _, err := s.Quantile(1.5); err == nil {
		t.Fatal("phi>1 accepted")
	}
}

func TestQuantileUniform(t *testing.T) {
	// Uniform[90, 110): maxent should recover quantiles within ~1%.
	rng := rand.New(rand.NewSource(1))
	s, _ := NewSketch(12)
	data := make([]float64, 100000)
	for i := range data {
		data[i] = 90 + 20*rng.Float64()
		s.Insert(data[i])
	}
	for _, phi := range []float64{0.1, 0.5, 0.9, 0.99} {
		got, err := s.Quantile(phi)
		if err != nil {
			t.Fatalf("phi=%v: %v", phi, err)
		}
		want := stats.Quantile(data, phi)
		if rel := math.Abs(got-want) / want; rel > 0.01 {
			t.Errorf("phi=%v: got %v, want %v (rel %v)", phi, got, want, rel)
		}
	}
}

func TestQuantileNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s, _ := NewSketch(12)
	data := make([]float64, 100000)
	for i := range data {
		data[i] = 1e6 + 5e4*rng.NormFloat64()
		s.Insert(data[i])
	}
	for _, phi := range []float64{0.5, 0.9, 0.99} {
		got, err := s.Quantile(phi)
		if err != nil {
			t.Fatalf("phi=%v: %v", phi, err)
		}
		want := stats.Quantile(data, phi)
		if rel := math.Abs(got-want) / want; rel > 0.01 {
			t.Errorf("phi=%v: got %v, want %v (rel %v)", phi, got, want, rel)
		}
	}
}

func TestQuantileLognormalUsesLogDomain(t *testing.T) {
	// Heavy-tailed positive data: the log-domain solve should keep the
	// error moderate (the paper's Table 1 reports ~9% at Q0.999).
	rng := rand.New(rand.NewSource(3))
	s, _ := NewSketch(12)
	data := make([]float64, 200000)
	for i := range data {
		data[i] = math.Round(800 * math.Exp(0.8*rng.NormFloat64()))
		if data[i] < 1 {
			data[i] = 1
		}
		s.Insert(data[i])
	}
	for _, phi := range []float64{0.5, 0.9, 0.99} {
		got, err := s.Quantile(phi)
		if err != nil {
			t.Fatalf("phi=%v: %v", phi, err)
		}
		want := stats.Quantile(data, phi)
		if rel := math.Abs(got-want) / want; rel > 0.10 {
			t.Errorf("phi=%v: got %v, want %v (rel %v)", phi, got, want, rel)
		}
	}
}

func TestQuantileMergedMatchesWhole(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	whole, _ := NewSketch(10)
	merged, _ := NewSketch(10)
	parts := make([]*Sketch, 8)
	for p := range parts {
		parts[p], _ = NewSketch(10)
	}
	for i := 0; i < 80000; i++ {
		v := 100 + 10*rng.NormFloat64()
		whole.Insert(v)
		parts[i%8].Insert(v)
	}
	for _, p := range parts {
		if err := merged.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	qw, err1 := whole.Quantile(0.9)
	qm, err2 := merged.Quantile(0.9)
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v %v", err1, err2)
	}
	if math.Abs(qw-qm)/qw > 1e-6 {
		t.Fatalf("whole %v vs merged %v", qw, qm)
	}
}

func TestSpaceUsage(t *testing.T) {
	s, _ := NewSketch(12)
	if got := s.SpaceUsage(); got != 27 {
		t.Fatalf("SpaceUsage = %d, want 27", got)
	}
}

// --- Policy tests ---

func TestPolicyValidation(t *testing.T) {
	spec := window.Spec{Size: 100, Period: 10}
	if _, err := NewPolicy(spec, []float64{0.5}, 12); err != nil {
		t.Fatal(err)
	}
	if _, err := NewPolicy(spec, nil, 12); err == nil {
		t.Fatal("empty phis accepted")
	}
	if _, err := NewPolicy(spec, []float64{0.5}, 1); err == nil {
		t.Fatal("bad order accepted")
	}
	if _, err := NewPolicy(window.Spec{Size: 5, Period: 10}, []float64{0.5}, 12); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestPolicySlidingAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := make([]float64, 20000)
	for i := range data {
		data[i] = 1e6 + 5e4*rng.NormFloat64()
	}
	spec := window.Spec{Size: 4000, Period: 1000}
	phis := []float64{0.5, 0.9, 0.99}
	p, err := NewPolicy(spec, phis, 12)
	if err != nil {
		t.Fatal(err)
	}
	evals, _, err := stream.Run(p, spec, data)
	if err != nil {
		t.Fatal(err)
	}
	var acc stats.ErrorAccumulator
	_ = spec.Iter(data, func(idx int, w []float64) {
		want := stats.Quantiles(w, phis)
		for j := range phis {
			acc.Observe(evals[idx].Estimates[j], want[j], 0, 0, 0, false)
		}
	})
	if got := acc.AvgRelErrPct(); got > 2 {
		t.Fatalf("avg rel err = %v%%, want < 2%%", got)
	}
}

func TestPolicyEmptyResult(t *testing.T) {
	p, _ := NewPolicy(window.Spec{Size: 20, Period: 10}, []float64{0.5}, 8)
	if got := p.Result()[0]; got != 0 {
		t.Fatalf("empty Result = %v", got)
	}
}

func TestPolicyExpire(t *testing.T) {
	spec := window.Spec{Size: 20, Period: 10}
	p, _ := NewPolicy(spec, []float64{0.5}, 8)
	data := make([]float64, 60)
	for i := range data {
		data[i] = float64(i + 1)
	}
	evals, _, err := stream.Run(p, spec, data)
	if err != nil {
		t.Fatal(err)
	}
	last := evals[len(evals)-1].Estimates[0]
	// Final window [40, 60): median ≈ 50.
	if last < 44 || last > 56 {
		t.Fatalf("median = %v, want ≈ 50", last)
	}
}

func TestPolicyName(t *testing.T) {
	p, _ := NewPolicy(window.Spec{Size: 20, Period: 10}, []float64{0.5}, 8)
	if p.Name() != "Moment" {
		t.Fatalf("Name = %q", p.Name())
	}
}

func TestCholeskySolve(t *testing.T) {
	// Solve a known SPD system.
	h := [][]float64{{4, 2}, {2, 3}}
	g := []float64{8, 7}
	x, ok := solveSPD(h, g)
	if !ok {
		t.Fatal("solveSPD failed")
	}
	// 4x+2y=8, 2x+3y=7 => x=1.25, y=1.5
	if math.Abs(x[0]-1.25) > 1e-9 || math.Abs(x[1]-1.5) > 1e-9 {
		t.Fatalf("x = %v", x)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	if _, ok := cholesky([][]float64{{1, 2}, {2, 1}}); ok {
		t.Fatal("indefinite matrix accepted")
	}
}

func TestScaledMomentsUniformCheck(t *testing.T) {
	// For u uniform on [-1,1]: E[u]=0, E[u²]=1/3, E[u³]=0, E[u⁴]=1/5.
	rng := rand.New(rand.NewSource(6))
	s, _ := NewSketch(4)
	for i := 0; i < 2_000_000; i++ {
		s.Insert(rng.Float64()*2 - 1)
	}
	mu := scaledMoments(s.Pow, s.Count, s.Center, -1, 1, 4)
	want := []float64{1, 0, 1.0 / 3, 0, 1.0 / 5}
	for i := range want {
		if math.Abs(mu[i]-want[i]) > 0.01 {
			t.Errorf("mu[%d] = %v, want %v", i, mu[i], want[i])
		}
	}
}

func TestChebyshevMomentsIdentity(t *testing.T) {
	// With μ = moments of uniform on [-1,1], Chebyshev moments satisfy
	// m_0 = 1, m_1 = 0, m_2 = E[2u²-1] = -1/3.
	mu := []float64{1, 0, 1.0 / 3, 0, 1.0 / 5}
	m := chebyshevMoments(mu)
	want := []float64{1, 0, -1.0 / 3, 0, 8.0/5 - 8.0/3 + 1} // T4 = 8u⁴-8u²+1 => -1/15
	for i := range want {
		if math.Abs(m[i]-want[i]) > 1e-12 {
			t.Errorf("m[%d] = %v, want %v", i, m[i], want[i])
		}
	}
}
