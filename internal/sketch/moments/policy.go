package moments

import (
	"fmt"

	"repro/internal/window"
)

// Policy adapts the moment sketch to the sliding-window Policy contract:
// one sketch per sub-window, merged (by moment addition) at query time.
// When the max-entropy inversion fails, the estimate falls back to a
// uniform interpolation between the observed min and max — the error shows
// up in the accuracy metrics rather than crashing the pipeline, mirroring
// how a production deployment would degrade.
type Policy struct {
	spec     window.Spec
	phis     []float64
	k        int
	sealed   []*Sketch
	current  *Sketch
	inFlight int
	// solveFailures counts evaluations that used the fallback path.
	solveFailures int
}

// NewPolicy returns a Moment policy of order k (the paper uses K=12).
func NewPolicy(spec window.Spec, phis []float64, k int) (*Policy, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(phis) == 0 {
		return nil, fmt.Errorf("moments: no quantiles specified")
	}
	cur, err := NewSketch(k)
	if err != nil {
		return nil, err
	}
	return &Policy{
		spec:    spec,
		phis:    append([]float64(nil), phis...),
		k:       k,
		current: cur,
	}, nil
}

// Name implements stream.Policy.
func (p *Policy) Name() string { return "Moment" }

// Observe implements stream.Policy.
func (p *Policy) Observe(v float64) {
	p.current.Insert(v)
	p.inFlight++
	if p.inFlight == p.spec.Period {
		p.seal()
	}
}

// seal retires the completed sub-window sketch and starts a fresh one.
func (p *Policy) seal() {
	p.sealed = append(p.sealed, p.current)
	p.current, _ = NewSketch(p.k) // k validated in NewPolicy
	p.inFlight = 0
}

// ObserveBatch implements stream.Policy, inserting period-bounded chunks
// so the seal check runs once per chunk instead of once per element.
func (p *Policy) ObserveBatch(vs []float64) {
	for len(vs) > 0 {
		chunk := vs
		if room := p.spec.Period - p.inFlight; len(chunk) > room {
			chunk = chunk[:room]
		}
		for _, v := range chunk {
			p.current.Insert(v)
		}
		p.inFlight += len(chunk)
		if p.inFlight == p.spec.Period {
			p.seal()
		}
		vs = vs[len(chunk):]
	}
}

// Expire implements stream.Policy: drop the oldest sub-window sketch.
func (p *Policy) Expire([]float64) {
	if len(p.sealed) > 0 {
		p.sealed = p.sealed[1:]
	}
}

// ExpiresWholeSummaries implements stream.SummaryExpirer: the moment
// sketch drops a whole sub-window per period and never reads the Expire
// slice.
func (p *Policy) ExpiresWholeSummaries() bool { return true }

// Result implements stream.Policy.
func (p *Policy) Result() []float64 {
	out := make([]float64, len(p.phis))
	merged, _ := NewSketch(p.k)
	for _, s := range p.sealed {
		_ = merged.Merge(s)
	}
	if p.inFlight > 0 {
		_ = merged.Merge(p.current)
	}
	if merged.Count == 0 {
		return out
	}
	for i, phi := range p.phis {
		q, err := merged.Quantile(phi)
		if err != nil {
			p.solveFailures++
			q = merged.Min + (merged.Max-merged.Min)*phi
		}
		out[i] = q
	}
	return out
}

// SolveFailures reports how many quantile evaluations fell back to
// min/max interpolation because the max-entropy solve did not converge.
func (p *Policy) SolveFailures() int { return p.solveFailures }

// SpaceUsage implements stream.Policy.
func (p *Policy) SpaceUsage() int {
	n := p.current.SpaceUsage()
	for _, s := range p.sealed {
		n += s.SpaceUsage()
	}
	return n
}
