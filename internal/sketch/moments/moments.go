// Package moments implements the Moment baseline (§5.1 policy 5): a
// mergeable moment-based quantile sketch in the style of Gan et al.,
// "Moment-Based Quantile Sketches for Efficient High Cardinality
// Aggregation Queries" (VLDB 2018). Each sub-window stores count, min, max
// and the first K power sums of the values — and, for positive data, of
// their logarithms, which conditions heavy-tailed telemetry. Merging
// sub-window sketches is pure addition. A quantile query reconstructs the
// maximum-entropy density consistent with the merged moments (Newton's
// method over a Chebyshev basis) and inverts its CDF.
package moments

import (
	"fmt"
	"math"
)

// Sketch accumulates the moment statistics of one block of data.
//
// Power sums are stored *centered* at the first observed value: raw sums
// Σx^i around telemetry-scale magnitudes (say 1e6) lose all significance to
// cancellation when re-centered at query time at order 12, so the sketch
// keeps Σ(x−c)^i with c a data value. Re-centering between two data-chosen
// centers shifts by at most the data range and stays numerically stable.
type Sketch struct {
	K      int
	Count  int64
	Min    float64
	Max    float64
	Center float64   // centering constant for Pow (first inserted value)
	LogCtr float64   // centering constant for LogPow
	Pow    []float64 // Pow[i] = Σ (x-Center)^(i+1), i = 0..K-1
	LogPow []float64 // LogPow[i] = Σ (ln x - LogCtr)^(i+1); valid only if AllPos
	AllPos bool      // every inserted value was > 0
}

// NewSketch returns an empty sketch of order k (the paper uses K=12).
func NewSketch(k int) (*Sketch, error) {
	if k < 2 || k > 16 {
		return nil, fmt.Errorf("moments: order %d outside [2, 16]", k)
	}
	return &Sketch{
		K:      k,
		Min:    math.Inf(1),
		Max:    math.Inf(-1),
		Pow:    make([]float64, k),
		LogPow: make([]float64, k),
		AllPos: true,
	}, nil
}

// Insert adds one observation.
func (s *Sketch) Insert(v float64) {
	if s.Count == 0 {
		s.Center = v
		if v > 0 {
			s.LogCtr = math.Log(v)
		}
	}
	s.Count++
	if v < s.Min {
		s.Min = v
	}
	if v > s.Max {
		s.Max = v
	}
	d := v - s.Center
	p := 1.0
	for i := 0; i < s.K; i++ {
		p *= d
		s.Pow[i] += p
	}
	if v > 0 {
		ld := math.Log(v) - s.LogCtr
		p = 1.0
		for i := 0; i < s.K; i++ {
			p *= ld
			s.LogPow[i] += p
		}
	} else {
		s.AllPos = false
	}
}

// recenter returns sums re-expressed around newC given sums around oldC,
// for n elements: Σ(x−newC)^i = Σ_j C(i,j)·(oldC−newC)^(i−j)·Σ(x−oldC)^j.
func recenter(sums []float64, n int64, oldC, newC float64, k int) []float64 {
	delta := oldC - newC
	out := make([]float64, k)
	for i := 1; i <= k; i++ {
		// j = 0 term uses Σ(x−oldC)^0 = n.
		c := 1.0 // C(i, j)
		sum := math.Pow(delta, float64(i)) * float64(n)
		for j := 1; j <= i; j++ {
			c = c * float64(i-j+1) / float64(j)
			sum += c * math.Pow(delta, float64(i-j)) * sums[j-1]
		}
		out[i-1] = sum
	}
	return out
}

// Merge adds other's statistics into s. Orders must match.
func (s *Sketch) Merge(other *Sketch) error {
	if s.K != other.K {
		return fmt.Errorf("moments: merging order %d into %d", other.K, s.K)
	}
	if other.Count == 0 {
		return nil
	}
	if s.Count == 0 {
		s.Count = other.Count
		s.Min, s.Max = other.Min, other.Max
		s.Center, s.LogCtr = other.Center, other.LogCtr
		copy(s.Pow, other.Pow)
		copy(s.LogPow, other.LogPow)
		s.AllPos = other.AllPos
		return nil
	}
	shifted := recenter(other.Pow, other.Count, other.Center, s.Center, s.K)
	for i := 0; i < s.K; i++ {
		s.Pow[i] += shifted[i]
	}
	if s.AllPos && other.AllPos {
		logShifted := recenter(other.LogPow, other.Count, other.LogCtr, s.LogCtr, s.K)
		for i := 0; i < s.K; i++ {
			s.LogPow[i] += logShifted[i]
		}
	}
	s.Count += other.Count
	if other.Min < s.Min {
		s.Min = other.Min
	}
	if other.Max > s.Max {
		s.Max = other.Max
	}
	s.AllPos = s.AllPos && other.AllPos
	return nil
}

// Clone returns a deep copy.
func (s *Sketch) Clone() *Sketch {
	c := *s
	c.Pow = append([]float64(nil), s.Pow...)
	c.LogPow = append([]float64(nil), s.LogPow...)
	return &c
}

// SpaceUsage returns the resident variable count (the §5.1 space metric):
// both moment vectors plus count/min/max.
func (s *Sketch) SpaceUsage() int { return 2*s.K + 3 }

// Quantile estimates the phi-quantile from the sketch. It returns an error
// when the sketch is empty or the max-entropy solve fails to produce a
// usable density (callers may fall back to Min/Max interpolation).
func (s *Sketch) Quantile(phi float64) (float64, error) {
	if s.Count == 0 {
		return 0, fmt.Errorf("moments: empty sketch")
	}
	if phi <= 0 || phi > 1 {
		return 0, fmt.Errorf("moments: phi %v outside (0, 1]", phi)
	}
	if s.Min == s.Max {
		return s.Min, nil
	}
	// Heavy-tailed positive data solves far better in log space.
	useLog := s.AllPos && s.Min > 0 && s.Max/s.Min > 50
	var lo, hi, center float64
	var sums []float64
	if useLog {
		lo, hi = math.Log(s.Min), math.Log(s.Max)
		sums = s.LogPow
		center = s.LogCtr
	} else {
		lo, hi = s.Min, s.Max
		sums = s.Pow
		center = s.Center
	}
	mu := scaledMoments(sums, s.Count, center, lo, hi, s.K)
	cheb := chebyshevMoments(mu)
	u, err := maxEntQuantile(cheb, phi)
	if err != nil {
		return 0, err
	}
	x := (lo+hi)/2 + (hi-lo)/2*u
	if useLog {
		x = math.Exp(x)
	}
	// Clamp into the observed range.
	if x < s.Min {
		x = s.Min
	}
	if x > s.Max {
		x = s.Max
	}
	return x, nil
}

// scaledMoments converts centered power sums Σ(x−c)^i into the power
// moments of u = (x−a)/b scaled to [-1, 1], where a is the midpoint and b
// the half range: μ_i = E[u^i] for i = 0..k. Since (x−a) = (x−c) + (c−a)
// and |c−a| is at most the data range, the binomial shift is numerically
// stable.
func scaledMoments(pow []float64, n int64, c, lo, hi float64, k int) []float64 {
	a := (lo + hi) / 2
	b := (hi - lo) / 2
	// raw[j] = E[(x-c)^j], raw[0] = 1.
	raw := make([]float64, k+1)
	raw[0] = 1
	for j := 1; j <= k; j++ {
		raw[j] = pow[j-1] / float64(n)
	}
	shift := c - a
	mu := make([]float64, k+1)
	for i := 0; i <= k; i++ {
		var sum float64
		bc := 1.0 // C(i, j), starting at j=0
		for j := 0; j <= i; j++ {
			if j > 0 {
				bc = bc * float64(i-j+1) / float64(j)
			}
			sum += bc * math.Pow(shift, float64(i-j)) * raw[j]
		}
		mu[i] = sum / math.Pow(b, float64(i))
	}
	return mu
}

// chebyshevMoments converts power moments μ_i = E[u^i] into Chebyshev
// moments m_j = E[T_j(u)] using the T_j power-basis coefficients from the
// recurrence T_{j+1} = 2u·T_j − T_{j-1}.
func chebyshevMoments(mu []float64) []float64 {
	k := len(mu) - 1
	// coef[j][l] = coefficient of u^l in T_j.
	coef := make([][]float64, k+1)
	coef[0] = []float64{1}
	if k >= 1 {
		coef[1] = []float64{0, 1}
	}
	for j := 2; j <= k; j++ {
		c := make([]float64, j+1)
		for l, v := range coef[j-1] {
			c[l+1] += 2 * v
		}
		for l, v := range coef[j-2] {
			c[l] -= v
		}
		coef[j] = c
	}
	m := make([]float64, k+1)
	for j := 0; j <= k; j++ {
		var sum float64
		for l, v := range coef[j] {
			sum += v * mu[l]
		}
		m[j] = sum
	}
	return m
}

// quadrature grid resolution for the max-entropy solve.
const gridN = 1024

// maxEntQuantile finds the maximum-entropy density f(u) = exp(Σ λ_j T_j(u))
// on [-1, 1] whose Chebyshev moments match m, then inverts its CDF at phi.
func maxEntQuantile(m []float64, phi float64) (float64, error) {
	k := len(m) - 1
	// Precompute grid points and T_j at each point.
	us := make([]float64, gridN)
	tj := make([][]float64, gridN) // tj[p][j]
	for p := 0; p < gridN; p++ {
		u := -1 + 2*(float64(p)+0.5)/gridN
		us[p] = u
		row := make([]float64, k+1)
		row[0] = 1
		if k >= 1 {
			row[1] = u
		}
		for j := 2; j <= k; j++ {
			row[j] = 2*u*row[j-1] - row[j-2]
		}
		tj[p] = row
	}
	dx := 2.0 / gridN

	lambda := make([]float64, k+1)
	lambda[0] = math.Log(0.5) // start from uniform density on [-1,1]

	f := make([]float64, gridN)
	evalDensity := func(l []float64) bool {
		for p := 0; p < gridN; p++ {
			var e float64
			for j := 0; j <= k; j++ {
				e += l[j] * tj[p][j]
			}
			if e > 500 { // overflow guard
				return false
			}
			f[p] = math.Exp(e)
		}
		return true
	}

	grad := make([]float64, k+1)
	hess := make([][]float64, k+1)
	for i := range hess {
		hess[i] = make([]float64, k+1)
	}

	const maxIter = 120
	converged := false
	for iter := 0; iter < maxIter; iter++ {
		if !evalDensity(lambda) {
			return 0, fmt.Errorf("moments: density overflow")
		}
		// Gradient: ∫ T_j f − m_j ; Hessian: ∫ T_j T_l f.
		var gnorm float64
		for j := 0; j <= k; j++ {
			var g float64
			for p := 0; p < gridN; p++ {
				g += tj[p][j] * f[p]
			}
			g = g*dx - m[j]
			grad[j] = g
			gnorm += g * g
		}
		if math.Sqrt(gnorm) < 1e-9 {
			converged = true
			break
		}
		for j := 0; j <= k; j++ {
			for l := j; l <= k; l++ {
				var h float64
				for p := 0; p < gridN; p++ {
					h += tj[p][j] * tj[p][l] * f[p]
				}
				hess[j][l] = h * dx
				hess[l][j] = hess[j][l]
			}
		}
		step, ok := solveSPD(hess, grad)
		if !ok {
			return 0, fmt.Errorf("moments: singular Hessian")
		}
		// Damped Newton: shrink until the density stays finite.
		scale := 1.0
		for t := 0; t < 30; t++ {
			trial := make([]float64, k+1)
			for j := range trial {
				trial[j] = lambda[j] - scale*step[j]
			}
			if evalDensity(trial) {
				copy(lambda, trial)
				break
			}
			scale /= 2
			if t == 29 {
				return 0, fmt.Errorf("moments: step damping failed")
			}
		}
	}
	if !converged {
		// Accept a loose solve only if the low moments match reasonably.
		if !evalDensity(lambda) {
			return 0, fmt.Errorf("moments: no convergence")
		}
		var g0 float64
		for p := 0; p < gridN; p++ {
			g0 += f[p]
		}
		if math.Abs(g0*dx-m[0]) > 0.05 {
			return 0, fmt.Errorf("moments: no convergence")
		}
	}
	// Invert the CDF on the grid.
	var total float64
	for p := 0; p < gridN; p++ {
		total += f[p]
	}
	target := phi * total
	var cum float64
	for p := 0; p < gridN; p++ {
		cum += f[p]
		if cum >= target {
			return us[p], nil
		}
	}
	return 1, nil
}

// solveSPD solves H x = g for symmetric positive-definite H via Cholesky
// with a small ridge for numerical safety. Returns ok=false when H is not
// usable even after regularization.
func solveSPD(h [][]float64, g []float64) ([]float64, bool) {
	n := len(g)
	for _, ridge := range []float64{0, 1e-10, 1e-7, 1e-4} {
		a := make([][]float64, n)
		for i := range a {
			a[i] = append([]float64(nil), h[i]...)
			a[i][i] += ridge * (1 + math.Abs(h[i][i]))
		}
		l, ok := cholesky(a)
		if !ok {
			continue
		}
		// Forward substitution L y = g.
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			s := g[i]
			for j := 0; j < i; j++ {
				s -= l[i][j] * y[j]
			}
			y[i] = s / l[i][i]
		}
		// Back substitution Lᵀ x = y.
		x := make([]float64, n)
		for i := n - 1; i >= 0; i-- {
			s := y[i]
			for j := i + 1; j < n; j++ {
				s -= l[j][i] * x[j]
			}
			x[i] = s / l[i][i]
		}
		return x, true
	}
	return nil, false
}

// cholesky computes the lower-triangular factor of a, returning ok=false
// for non-positive-definite input.
func cholesky(a [][]float64) ([][]float64, bool) {
	n := len(a)
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a[i][j]
			for t := 0; t < j; t++ {
				s -= l[i][t] * l[j][t]
			}
			if i == j {
				if s <= 0 || math.IsNaN(s) {
					return nil, false
				}
				l[i][i] = math.Sqrt(s)
			} else {
				l[i][j] = s / l[j][j]
			}
		}
	}
	return l, true
}
