package gk

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestNewValidation(t *testing.T) {
	for _, eps := range []float64{0, -0.1, 0.6} {
		if _, err := New(eps); err == nil {
			t.Errorf("New(%v) accepted", eps)
		}
	}
	if _, err := New(0.02); err != nil {
		t.Fatal(err)
	}
}

func TestQueryEmptyPanics(t *testing.T) {
	s, _ := New(0.02)
	defer func() {
		if recover() == nil {
			t.Fatal("Query on empty summary did not panic")
		}
	}()
	s.Query(0.5)
}

func TestExactForSmallInputs(t *testing.T) {
	s, _ := New(0.1)
	for _, v := range []float64{5, 1, 9} {
		s.Insert(v)
	}
	if got := s.Query(0.0001); got != 1 {
		t.Errorf("min query = %v, want 1", got)
	}
	if got := s.Query(1); got != 9 {
		t.Errorf("max query = %v, want 9", got)
	}
}

// rankErrorCheck inserts data and verifies every quantile answer is within
// eps*n ranks of exact.
func rankErrorCheck(t *testing.T, data []float64, eps float64) {
	t.Helper()
	s, err := New(eps)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range data {
		s.Insert(v)
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	n := len(sorted)
	for _, phi := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1} {
		got := s.Query(phi)
		r := stats.CeilRank(phi, n)
		// The estimate's true rank range: [first idx of got, last idx].
		loRank := sort.SearchFloat64s(sorted, got) + 1
		hiRank := stats.RankOf(sorted, got)
		margin := int(math.Ceil(eps*float64(n))) + 1
		if loRank-margin > r || hiRank+margin < r {
			t.Errorf("phi=%v: value %v has rank [%d,%d], want within ±%d of %d",
				phi, got, loRank, hiRank, margin, r)
		}
	}
}

func TestRankErrorBoundUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]float64, 50000)
	for i := range data {
		data[i] = rng.Float64()
	}
	rankErrorCheck(t, data, 0.02)
}

func TestRankErrorBoundHeavyTail(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]float64, 50000)
	for i := range data {
		data[i] = math.Round(800 * math.Exp(0.35*rng.NormFloat64()))
	}
	rankErrorCheck(t, data, 0.02)
}

func TestRankErrorBoundSortedInput(t *testing.T) {
	data := make([]float64, 30000)
	for i := range data {
		data[i] = float64(i)
	}
	rankErrorCheck(t, data, 0.05)
}

func TestRankErrorBoundReverseSorted(t *testing.T) {
	data := make([]float64, 30000)
	for i := range data {
		data[i] = float64(len(data) - i)
	}
	rankErrorCheck(t, data, 0.05)
}

func TestRankErrorBoundAllEqual(t *testing.T) {
	data := make([]float64, 10000)
	for i := range data {
		data[i] = 7
	}
	rankErrorCheck(t, data, 0.02)
	s, _ := New(0.02)
	for _, v := range data {
		s.Insert(v)
	}
	if got := s.Query(0.5); got != 7 {
		t.Fatalf("all-equal query = %v", got)
	}
}

func TestSpaceSublinear(t *testing.T) {
	// GK space is O((1/eps) * log(eps*n)); at eps=0.02, n=100K it must be
	// far below n.
	rng := rand.New(rand.NewSource(3))
	s, _ := New(0.02)
	for i := 0; i < 100000; i++ {
		s.Insert(rng.Float64())
	}
	if s.Size() > 2000 {
		t.Fatalf("summary size = %d, want < 2000", s.Size())
	}
	if s.Count() != 100000 {
		t.Fatalf("count = %d", s.Count())
	}
}

func TestExportWeightsSumToN(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s, _ := New(0.05)
	const n = 20000
	for i := 0; i < n; i++ {
		s.Insert(rng.NormFloat64())
	}
	var sum float64
	var prev = math.Inf(-1)
	for _, wv := range s.Export() {
		if wv.Weight < 0 {
			t.Fatal("negative exported weight")
		}
		sum += wv.Weight
		if wv.Value < prev {
			t.Fatal("Export not sorted")
		}
		prev = wv.Value
	}
	// Centered weights sum to the last tuple's midrank; the maximum tuple
	// has Δ = 0, so the total is exactly n.
	if math.Abs(sum-float64(n)) > 1e-6 {
		t.Fatalf("exported weights sum to %v, want %d", sum, n)
	}
}

func TestQueryMerged(t *testing.T) {
	// Merge 10 summaries of 10K each; rank error should stay near the
	// per-summary eps since errors are bounded by sum of local errors.
	rng := rand.New(rand.NewSource(5))
	var all []float64
	var summaries []*Summary
	for j := 0; j < 10; j++ {
		s, _ := New(0.01)
		for i := 0; i < 10000; i++ {
			v := rng.Float64() * 1000
			s.Insert(v)
			all = append(all, v)
		}
		summaries = append(summaries, s)
	}
	sort.Float64s(all)
	n := len(all)
	for _, phi := range []float64{0.1, 0.5, 0.9, 0.99} {
		got := QueryMerged(summaries, phi)
		r := stats.CeilRank(phi, n)
		loRank := sort.SearchFloat64s(all, got) + 1
		hiRank := stats.RankOf(all, got)
		margin := int(0.02*float64(n)) + 1 // sum of local eps
		if loRank-margin > r || hiRank+margin < r {
			t.Errorf("phi=%v: merged rank [%d,%d] not within ±%d of %d", phi, loRank, hiRank, margin, r)
		}
	}
}

func TestQueryMergedSkipsEmpty(t *testing.T) {
	s1, _ := New(0.1)
	s1.Insert(5)
	s2, _ := New(0.1)
	got := QueryMerged([]*Summary{s1, s2, nil}, 0.5)
	if got != 5 {
		t.Fatalf("QueryMerged = %v, want 5", got)
	}
}

func TestQueryMergedAllEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("QueryMerged on empties did not panic")
		}
	}()
	s, _ := New(0.1)
	QueryMerged([]*Summary{s}, 0.5)
}

// Property: min and max are always exact.
func TestQuickMinMaxExact(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		s, _ := New(0.05)
		min, max := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			v := float64(r)
			s.Insert(v)
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		return s.Query(0.000001) == min && s.Query(1) == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: count always matches the number of inserts.
func TestQuickCount(t *testing.T) {
	f := func(raw []float64) bool {
		s, _ := New(0.02)
		for _, v := range raw {
			if math.IsNaN(v) {
				v = 0
			}
			s.Insert(v)
		}
		return s.Count() == int64(len(raw))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s, _ := New(0.02)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Insert(rng.Float64())
	}
}
