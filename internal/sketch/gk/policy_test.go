package gk

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/window"
)

func TestInsertBatchMatchesInsert(t *testing.T) {
	// InsertBatch must build the bit-identical tuple sequence Insert
	// builds: same values, same gaps, same uncertainties, in every batch
	// shape including ones spanning compress points.
	rng := rand.New(rand.NewSource(7))
	data := make([]float64, 5000)
	for i := range data {
		data[i] = rng.NormFloat64() * 100
	}
	a, _ := New(0.02)
	for _, v := range data {
		a.Insert(v)
	}
	b, _ := New(0.02)
	for pos := 0; pos < len(data); {
		end := pos + 1 + (pos*pos)%97
		if end > len(data) {
			end = len(data)
		}
		b.InsertBatch(data[pos:end])
		pos = end
	}
	if a.Count() != b.Count() || a.Size() != b.Size() {
		t.Fatalf("shape diverges: count %d/%d size %d/%d", a.Count(), b.Count(), a.Size(), b.Size())
	}
	for i := range a.tuples {
		if a.tuples[i] != b.tuples[i] {
			t.Fatalf("tuple %d: %+v != %+v", i, a.tuples[i], b.tuples[i])
		}
	}
}

func TestPolicyValidation(t *testing.T) {
	spec := window.Spec{Size: 100, Period: 10}
	if _, err := NewPolicy(spec, nil, 0.02); err == nil {
		t.Fatal("no phis accepted")
	}
	if _, err := NewPolicy(spec, []float64{0.5}, 0); err == nil {
		t.Fatal("zero eps accepted")
	}
	if _, err := NewPolicy(window.Spec{Size: 5, Period: 10}, []float64{0.5}, 0.02); err == nil {
		t.Fatal("invalid spec accepted")
	}
	p, err := NewPolicy(spec, []float64{0.5}, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "GK" {
		t.Fatalf("name = %q", p.Name())
	}
	if got := p.Result(); got[0] != 0 {
		t.Fatalf("empty result = %v", got)
	}
}

func TestPolicyIsUnwindowed(t *testing.T) {
	// The GK baseline answers over everything seen: after a distribution
	// shift its median lags between the two regimes, unlike a windowed
	// operator that would track the new one. That is the contrast the
	// baseline exists to demonstrate.
	spec := window.Spec{Size: 1000, Period: 500}
	p, err := NewPolicy(spec, []float64{0.5}, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		p.Observe(100)
	}
	for i := 0; i < 10; i++ {
		p.Expire(nil) // no-op: nothing leaves a GK summary
	}
	for i := 0; i < 5000; i++ {
		p.Observe(200)
	}
	if got := p.Result()[0]; got != 100 && got != 200 {
		t.Fatalf("median = %v, want a whole-stream value", got)
	}
	// Whole-stream rank: ~half the 10k elements are at each level, so the
	// median must come from the OLD regime (rank 5000 lands at its edge) —
	// a windowed operator would answer 200 outright.
	if p.SpaceUsage() <= 0 {
		t.Fatal("no resident tuples")
	}
	if p.s.Count() != 10000 {
		t.Fatalf("count = %d, want all elements retained", p.s.Count())
	}
}

func TestPolicyDropsNaNs(t *testing.T) {
	spec := window.Spec{Size: 100, Period: 50}
	p, err := NewPolicy(spec, []float64{0.5}, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	batch := []float64{1, math.NaN(), 2, 3, math.NaN(), math.NaN(), 4, 5}
	p.ObserveBatch(batch)
	p.Observe(math.NaN())
	if p.s.Count() != 5 {
		t.Fatalf("count = %d, want 5 (NaNs dropped)", p.s.Count())
	}
	if got := p.Result()[0]; got != 3 {
		t.Fatalf("median = %v, want 3", got)
	}
}
