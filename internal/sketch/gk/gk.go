// Package gk implements the Greenwald–Khanna ε-approximate quantile
// summary, the classic building block of deterministic rank-error
// algorithms. The CMQS (Lin et al. 2004) and AM (Arasu–Manku 2004)
// baselines are built on top of it.
//
// A summary is a sorted list of tuples (v, g, Δ): g is the gap in minimum
// rank to the previous tuple, and Δ bounds the uncertainty of v's rank.
// The invariant max(g+Δ) <= 2εn guarantees that any rank query is answered
// within ±εn.
package gk

import (
	"fmt"
	"math"
	"sort"
)

type tuple struct {
	v float64
	g int64
	d int64
}

// Summary is a Greenwald–Khanna quantile summary. Create with New.
type Summary struct {
	eps     float64
	tuples  []tuple
	n       int64
	pending int // inserts since last compress
}

// New returns an empty summary with rank-error bound eps in (0, 0.5].
func New(eps float64) (*Summary, error) {
	if eps <= 0 || eps > 0.5 {
		return nil, fmt.Errorf("gk: eps %v outside (0, 0.5]", eps)
	}
	return &Summary{eps: eps}, nil
}

// Epsilon returns the configured rank-error bound.
func (s *Summary) Epsilon() float64 { return s.eps }

// Count returns the number of inserted elements.
func (s *Summary) Count() int64 { return s.n }

// Size returns the number of stored tuples (the space cost).
func (s *Summary) Size() int { return len(s.tuples) }

// Insert adds one observation.
func (s *Summary) Insert(v float64) {
	idx := sort.Search(len(s.tuples), func(i int) bool { return s.tuples[i].v >= v })
	var d int64
	if idx > 0 && idx < len(s.tuples) {
		d = int64(math.Floor(2 * s.eps * float64(s.n)))
	}
	// New min/max keep Δ=0 so extremes stay exact.
	s.tuples = append(s.tuples, tuple{})
	copy(s.tuples[idx+1:], s.tuples[idx:])
	s.tuples[idx] = tuple{v: v, g: 1, d: d}
	s.n++
	s.pending++
	if float64(s.pending) >= 1/(2*s.eps) {
		s.compress()
		s.pending = 0
	}
}

// InsertBatch adds a run of observations in order. It is observationally
// identical to calling Insert per element — same tuple sequence, same
// compress points — but amortizes batch-level costs: tuple capacity is
// reserved once per batch and the per-element call overhead collapses
// into a single tight loop. The reservation is capped at the compress
// window (at most ⌈1/2ε⌉ inserts accumulate before compress shrinks the
// summary back), not at len(vs): a summary never holds batch-sized state,
// so reserving for the whole batch would allocate a transient slice the
// next compress immediately strands.
func (s *Summary) InsertBatch(vs []float64) {
	grow := len(vs)
	if window := int(1/(2*s.eps)) + 1; grow > window {
		grow = window
	}
	if need := len(s.tuples) + grow; cap(s.tuples) < need {
		grown := make([]tuple, len(s.tuples), need+need/4)
		copy(grown, s.tuples)
		s.tuples = grown
	}
	for _, v := range vs {
		s.Insert(v)
	}
}

// compress merges adjacent tuples whose combined uncertainty stays within
// the invariant g_i + g_{i+1} + Δ_{i+1} <= 2εn, scanning from the tail so
// each tuple can be absorbed into its successor. The minimum and maximum
// tuples are never removed.
func (s *Summary) compress() {
	if len(s.tuples) < 3 {
		return
	}
	limit := int64(math.Floor(2 * s.eps * float64(s.n)))
	w := len(s.tuples) - 1 // last kept position, scanning right-to-left
	for i := len(s.tuples) - 2; i >= 1; i-- {
		t := s.tuples[i]
		if t.g+s.tuples[w].g+s.tuples[w].d <= limit {
			s.tuples[w].g += t.g
		} else {
			w--
			s.tuples[w] = t
		}
	}
	w--
	s.tuples[w] = s.tuples[0]
	s.tuples = append(s.tuples[:0], s.tuples[w:]...)
}

// Query returns a value whose rank is within ±εn of ceil(phi*n). It panics
// on an empty summary.
func (s *Summary) Query(phi float64) float64 {
	if s.n == 0 {
		panic("gk: Query on empty summary")
	}
	r := int64(math.Ceil(phi * float64(s.n)))
	if r < 1 {
		r = 1
	}
	if r > s.n {
		r = s.n
	}
	// The first and last tuples hold the exact minimum and maximum, so
	// extreme ranks are answered exactly.
	if r == 1 {
		return s.tuples[0].v
	}
	if r == s.n {
		return s.tuples[len(s.tuples)-1].v
	}
	// Textbook rule: return the first tuple with r−rmin <= εn and
	// rmax−r <= εn; the invariant guarantees one exists.
	margin := int64(math.Floor(s.eps * float64(s.n)))
	var rmin int64
	for _, t := range s.tuples {
		rmin += t.g
		if r-rmin <= margin && rmin+t.d-r <= margin {
			return t.v
		}
	}
	return s.tuples[len(s.tuples)-1].v
}

// WeightedValue is one (value, weight) pair exported from a summary, used
// when merging summaries across sub-windows. Weight is fractional because
// centered exports split tuple uncertainty across neighbours.
type WeightedValue struct {
	Value  float64
	Weight float64
}

// Export returns the summary as a weighted value list whose cumulative
// weights are the Δ-CENTERED rank estimates rmin + Δ/2 of each tuple.
// Plain g-cumulative exports systematically understate every value's rank
// by ~Δ/2; summed across the sub-windows of a merge that becomes an εN/2
// bias, which lands tail reads half an epsilon too deep — catastrophic in
// value terms on heavy-tailed telemetry. The centered weights still sum
// to n exactly (the maximum tuple has Δ = 0). The list is sorted by
// value.
func (s *Summary) Export() []WeightedValue {
	out := make([]WeightedValue, len(s.tuples))
	var rmin int64
	prevMid := 0.0
	for i, t := range s.tuples {
		rmin += t.g
		mid := float64(rmin) + float64(t.d)/2
		w := mid - prevMid
		if w < 0 {
			w = 0
		}
		out[i] = WeightedValue{Value: t.v, Weight: w}
		prevMid = mid
	}
	return out
}

// QueryMerged answers a quantile over the concatenation of several
// summaries by merging their exported weighted values. It panics when all
// summaries are empty. See MergedRead for the estimation rule.
func QueryMerged(summaries []*Summary, phi float64) float64 {
	var lists [][]WeightedValue
	var total int64
	for _, s := range summaries {
		if s == nil || s.n == 0 {
			continue
		}
		lists = append(lists, s.Export())
		total += s.n
	}
	if total == 0 {
		panic("gk: QueryMerged on empty summaries")
	}
	r := int64(math.Ceil(phi * float64(total)))
	if r < 1 {
		r = 1
	}
	return MergedRead(lists, float64(r))
}

// MergedRead answers a rank query over several weighted value lists, each
// sorted by value with weights summing to that list's element count.
//
// Treating every list as a step CDF that jumps only at its retained points
// systematically understates ranks between points by half a step; summed
// over L merged sub-window summaries the bias reaches L·(avg step)/2 ≈
// εN/2 — deep into the tail, where heavy-tailed telemetry turns it into
// orders-of-magnitude value error. MergedRead instead evaluates each
// list's cumulative weight with piecewise-LINEAR interpolation between
// retained points, which centres the between-point uncertainty, and
// binary-searches the smallest retained value whose summed estimated rank
// reaches r.
func MergedRead(lists [][]WeightedValue, r float64) float64 {
	// Per-list cumulative weights.
	type cdf struct {
		vals []float64
		cums []float64
	}
	cdfs := make([]cdf, 0, len(lists))
	var candidates []float64
	for _, l := range lists {
		if len(l) == 0 {
			continue
		}
		c := cdf{vals: make([]float64, len(l)), cums: make([]float64, len(l))}
		cum := 0.0
		for i, wv := range l {
			cum += wv.Weight
			c.vals[i] = wv.Value
			c.cums[i] = cum
			candidates = append(candidates, wv.Value)
		}
		cdfs = append(cdfs, c)
	}
	if len(candidates) == 0 {
		return 0
	}
	sort.Float64s(candidates)
	grank := func(v float64) float64 {
		var sum float64
		for _, c := range cdfs {
			sum += interpCum(c.vals, c.cums, v)
		}
		return sum
	}
	// Binary search the smallest candidate with estimated rank >= r − ½.
	lo, hi := 0, len(candidates)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if grank(candidates[mid]) >= r-0.5 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return candidates[lo]
}

// interpCum evaluates one list's estimated count of elements <= v (0
// before the first point, the full count at or after the last). At a
// retained point the cumulative weight is exact; strictly between two
// points it credits HALF the bracketing interval's mass. Value-linear
// interpolation would be tighter in dense regions but collapses back to a
// step function across the orders-of-magnitude value gaps of heavy tails
// (almost no mass is credited until v nearly reaches the next point),
// recreating the half-interval-per-sub-window rank bias; the midpoint
// rule stays centred regardless of value geometry.
func interpCum(vals, cums []float64, v float64) float64 {
	n := len(vals)
	if v < vals[0] {
		return 0
	}
	if v >= vals[n-1] {
		return cums[n-1]
	}
	// Find j with vals[j] <= v < vals[j+1].
	j := sort.SearchFloat64s(vals, v)
	if j == n || vals[j] > v {
		j--
	}
	if j == n-1 {
		return cums[n-1]
	}
	if v == vals[j] {
		return cums[j]
	}
	return (cums[j] + cums[j+1]) / 2
}
