package gk

import (
	"fmt"
	"math"

	"repro/internal/window"
)

// Policy adapts the classic unbounded-stream Greenwald–Khanna summary to
// the stream.Policy contract, as the harness's "no window" reference
// baseline. GK supports no deletion, so the policy answers every query
// over ALL elements seen since construction: Expire is a no-op and the
// window spec only schedules evaluations. Its estimates therefore lag
// distribution shifts that windowed operators track — which is exactly the
// contrast it exists to demonstrate (§2 motivates windowed monitoring; GK
// is the building block CMQS and AM wrap to get windows) — while costing a
// single O(ε⁻¹·log(εn)) summary of space.
type Policy struct {
	spec window.Spec
	phis []float64
	s    *Summary
}

// NewPolicy returns the GK baseline with rank-error parameter eps.
func NewPolicy(spec window.Spec, phis []float64, eps float64) (*Policy, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(phis) == 0 {
		return nil, fmt.Errorf("gk: no quantiles specified")
	}
	s, err := New(eps)
	if err != nil {
		return nil, err
	}
	return &Policy{
		spec: spec,
		phis: append([]float64(nil), phis...),
		s:    s,
	}, nil
}

// Name implements stream.Policy.
func (p *Policy) Name() string { return "GK" }

// Observe implements stream.Policy. NaN values — telemetry glitches — are
// dropped, as every other policy does: they have no place in an order
// statistic and would corrupt the summary's comparisons.
func (p *Policy) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	p.s.Insert(v)
}

// ObserveBatch implements stream.Policy: NaN-free runs go through the
// summary's native InsertBatch path, which grows tuple capacity once per
// run instead of once per append regrowth.
func (p *Policy) ObserveBatch(vs []float64) {
	start := 0
	for i, v := range vs {
		if math.IsNaN(v) {
			p.s.InsertBatch(vs[start:i])
			start = i + 1
		}
	}
	p.s.InsertBatch(vs[start:])
}

// Expire implements stream.Policy as a no-op: GK cannot deaccumulate, so
// nothing ever leaves the summary. The baseline intentionally answers over
// the whole stream.
func (p *Policy) Expire([]float64) {}

// ExpiresWholeSummaries implements stream.SummaryExpirer: Expire never
// reads its argument (trivially — it does nothing).
func (p *Policy) ExpiresWholeSummaries() bool { return true }

// Result implements stream.Policy: one rank query per configured ϕ over
// everything seen; zeros before the first element.
func (p *Policy) Result() []float64 {
	out := make([]float64, len(p.phis))
	if p.s.Count() == 0 {
		return out
	}
	for i, phi := range p.phis {
		out[i] = p.s.Query(phi)
	}
	return out
}

// SpaceUsage implements stream.Policy: the resident tuple count.
func (p *Policy) SpaceUsage() int { return p.s.Size() }
