// Package random implements the Random baseline (§5.1 policy 4), after Luo,
// Wang, Yi, Cormode — "Quantiles over Data Streams: Experimental
// Comparisons, New Analyses, and Further Improvements", VLDBJ 2016: a
// sampling-based algorithm that bounds rank error with constant
// probability.
//
// Each sub-window buffers its raw elements; on completion the buffer is
// sorted and interval-sampled — one element is drawn uniformly at random
// from every run of w consecutive ranks, carrying weight w (Luo et al.'s
// interval sampling). A query merges the weighted samples of all active
// sub-windows. The raw in-flight buffer is why Random's observed space in
// the paper's Table 1 exceeds its analytical bound.
package random

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/sketch/gk"
	"repro/internal/window"
)

// weighted is one retained sample.
type weighted struct {
	value  float64
	weight int64
}

// Policy is the sampling-based sliding-window quantile operator.
type Policy struct {
	spec    window.Spec
	phis    []float64
	eps     float64
	perSub  int // samples retained per sub-window
	rng     *rand.Rand
	sealed  [][]weighted // per completed sub-window, sorted by value
	current []float64    // raw in-flight buffer
}

// New returns a Random policy with rank-error parameter eps. The
// deterministic seed makes experiments reproducible.
func New(spec window.Spec, phis []float64, eps float64, seed int64) (*Policy, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(phis) == 0 {
		return nil, fmt.Errorf("random: no quantiles specified")
	}
	if eps <= 0 || eps > 0.5 {
		return nil, fmt.Errorf("random: eps %v outside (0, 0.5]", eps)
	}
	perSub := int(math.Ceil(1 / eps))
	if perSub > spec.Period {
		perSub = spec.Period
	}
	return &Policy{
		spec:    spec,
		phis:    append([]float64(nil), phis...),
		eps:     eps,
		perSub:  perSub,
		rng:     rand.New(rand.NewSource(seed)),
		current: make([]float64, 0, spec.Period),
	}, nil
}

// Name implements stream.Policy.
func (p *Policy) Name() string { return "Random" }

// Observe implements stream.Policy.
func (p *Policy) Observe(v float64) {
	p.current = append(p.current, v)
	if len(p.current) == p.spec.Period {
		p.sealed = append(p.sealed, p.sample(p.current))
		p.current = p.current[:0]
	}
}

// ObserveBatch implements stream.Policy: chunks are bulk-appended to the
// in-flight buffer, sealing at each period boundary exactly as the
// element-at-a-time path does.
func (p *Policy) ObserveBatch(vs []float64) {
	for len(vs) > 0 {
		chunk := vs
		if room := p.spec.Period - len(p.current); len(chunk) > room {
			chunk = chunk[:room]
		}
		p.current = append(p.current, chunk...)
		if len(p.current) == p.spec.Period {
			p.sealed = append(p.sealed, p.sample(p.current))
			p.current = p.current[:0]
		}
		vs = vs[len(chunk):]
	}
}

// sample sorts the sub-window and interval-samples it: rank space is cut
// into perSub equal runs and one element is drawn uniformly from each run,
// weighted by the run length.
func (p *Policy) sample(buf []float64) []weighted {
	sorted := append([]float64(nil), buf...)
	sort.Float64s(sorted)
	n := len(sorted)
	out := make([]weighted, 0, p.perSub)
	for i := 0; i < p.perSub; i++ {
		lo := i * n / p.perSub
		hi := (i + 1) * n / p.perSub
		if hi <= lo {
			continue
		}
		pick := lo + p.rng.Intn(hi-lo)
		out = append(out, weighted{value: sorted[pick], weight: int64(hi - lo)})
	}
	return out
}

// Expire implements stream.Policy: drop the oldest sub-window's samples.
func (p *Policy) Expire([]float64) {
	if len(p.sealed) > 0 {
		p.sealed = p.sealed[1:]
	}
}

// ExpiresWholeSummaries implements stream.SummaryExpirer: sampling drops a
// whole sub-window's samples per period and never reads the Expire slice.
func (p *Policy) ExpiresWholeSummaries() bool { return true }

// Result implements stream.Policy: merge all weighted samples plus the raw
// in-flight buffer via the interpolated merged read (see gk.MergedRead;
// step-CDF reads bias rank estimates half a sample interval deep per
// sub-window, which explodes into value error on heavy tails).
func (p *Policy) Result() []float64 {
	out := make([]float64, len(p.phis))
	var total int64
	var lists [][]gk.WeightedValue
	for _, s := range p.sealed {
		l := make([]gk.WeightedValue, len(s))
		for i, wv := range s {
			l[i] = gk.WeightedValue{Value: wv.value, Weight: float64(wv.weight)}
			total += wv.weight
		}
		lists = append(lists, l)
	}
	if len(p.current) > 0 {
		sorted := append([]float64(nil), p.current...)
		sort.Float64s(sorted)
		l := make([]gk.WeightedValue, len(sorted))
		for i, v := range sorted {
			l[i] = gk.WeightedValue{Value: v, Weight: 1}
		}
		lists = append(lists, l)
		total += int64(len(sorted))
	}
	if total == 0 {
		return out
	}
	for i, phi := range p.phis {
		r := int64(math.Ceil(phi * float64(total)))
		if r < 1 {
			r = 1
		}
		out[i] = gk.MergedRead(lists, float64(r))
	}
	return out
}

// SpaceUsage implements stream.Policy: retained samples plus the raw
// in-flight buffer.
func (p *Policy) SpaceUsage() int {
	n := len(p.current)
	for _, s := range p.sealed {
		n += len(s)
	}
	return n
}
