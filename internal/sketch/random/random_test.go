package random

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/window"
)

func TestNewValidation(t *testing.T) {
	spec := window.Spec{Size: 100, Period: 10}
	if _, err := New(spec, []float64{0.5}, 0.02, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := New(spec, nil, 0.02, 1); err == nil {
		t.Fatal("empty phis accepted")
	}
	if _, err := New(spec, []float64{0.5}, 0, 1); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := New(window.Spec{Size: 5, Period: 10}, []float64{0.5}, 0.02, 1); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestPerSubCappedByPeriod(t *testing.T) {
	p, _ := New(window.Spec{Size: 100, Period: 10}, []float64{0.5}, 0.001, 1)
	if p.perSub != 10 {
		t.Fatalf("perSub = %d, want capped at 10", p.perSub)
	}
}

func TestRankErrorReasonable(t *testing.T) {
	// Random bounds rank error with constant probability; assert the
	// average observed rank error stays within 2*eps.
	rng := rand.New(rand.NewSource(1))
	data := make([]float64, 40000)
	for i := range data {
		data[i] = math.Round(800 * math.Exp(0.35*rng.NormFloat64()))
	}
	spec := window.Spec{Size: 2000, Period: 200}
	phis := []float64{0.5, 0.9, 0.99}
	const eps = 0.05
	p, err := New(spec, phis, eps, 7)
	if err != nil {
		t.Fatal(err)
	}
	evals, _, err := stream.Run(p, spec, data)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	var n int
	_ = spec.Iter(data, func(idx int, w []float64) {
		sorted := append([]float64(nil), w...)
		sort.Float64s(sorted)
		for j, phi := range phis {
			est := evals[idx].Estimates[j]
			r := stats.CeilRank(phi, len(sorted))
			lo := sort.SearchFloat64s(sorted, est) + 1
			hi := stats.RankOf(sorted, est)
			var dist float64
			switch {
			case r < lo:
				dist = float64(lo - r)
			case r > hi:
				dist = float64(r - hi)
			}
			sum += dist / float64(len(sorted))
			n++
		}
	})
	if avg := sum / float64(n); avg > 2*eps {
		t.Fatalf("average rank error %v exceeds 2*eps", avg)
	}
}

func TestSampleWeightsCoverSubWindow(t *testing.T) {
	p, _ := New(window.Spec{Size: 100, Period: 10}, []float64{0.5}, 0.2, 3)
	buf := []float64{9, 1, 5, 3, 7, 2, 8, 4, 6, 0}
	s := p.sample(buf)
	var total int64
	prev := math.Inf(-1)
	for _, w := range s {
		total += w.weight
		if w.value < prev {
			t.Fatal("samples not sorted")
		}
		prev = w.value
	}
	if total != 10 {
		t.Fatalf("sample weights sum to %d, want 10", total)
	}
	if len(s) != p.perSub {
		t.Fatalf("got %d samples, want %d", len(s), p.perSub)
	}
}

func TestInFlightIncludedInResult(t *testing.T) {
	spec := window.Spec{Size: 20, Period: 10}
	p, _ := New(spec, []float64{1.0}, 0.1, 1)
	for i := 0; i < 15; i++ {
		p.Observe(float64(i))
	}
	if got := p.Result()[0]; got != 14 {
		t.Fatalf("max = %v, want 14", got)
	}
}

func TestResultEmptyIsZeros(t *testing.T) {
	p, _ := New(window.Spec{Size: 20, Period: 10}, []float64{0.5, 0.9}, 0.1, 1)
	got := p.Result()
	if got[0] != 0 || got[1] != 0 {
		t.Fatalf("empty Result = %v", got)
	}
}

func TestExpireDropsOldest(t *testing.T) {
	spec := window.Spec{Size: 20, Period: 10}
	p, _ := New(spec, []float64{0.5}, 0.1, 1)
	data := make([]float64, 40)
	for i := range data {
		data[i] = float64(i)
	}
	evals, _, err := stream.Run(p, spec, data)
	if err != nil {
		t.Fatal(err)
	}
	// Last window covers [20, 40): median ≈ 30.
	last := evals[len(evals)-1].Estimates[0]
	if last < 25 || last > 35 {
		t.Fatalf("median = %v, want ≈ 30", last)
	}
}

func TestSpaceIncludesRawBuffer(t *testing.T) {
	spec := window.Spec{Size: 2000, Period: 1000}
	p, _ := New(spec, []float64{0.5}, 0.02, 1)
	for i := 0; i < 1500; i++ {
		p.Observe(float64(i))
	}
	// 500 raw in-flight + 50 samples from the sealed sub-window.
	if got := p.SpaceUsage(); got != 500+50 {
		t.Fatalf("SpaceUsage = %d, want 550", got)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	spec := window.Spec{Size: 100, Period: 10}
	data := make([]float64, 300)
	rng := rand.New(rand.NewSource(9))
	for i := range data {
		data[i] = rng.Float64()
	}
	run := func() []float64 {
		p, _ := New(spec, []float64{0.5, 0.99}, 0.05, 42)
		evals, _, err := stream.Run(p, spec, data)
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		for _, e := range evals {
			out = append(out, e.Estimates...)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic under fixed seed")
		}
	}
}

func TestName(t *testing.T) {
	p, _ := New(window.Spec{Size: 20, Period: 10}, []float64{0.5}, 0.1, 1)
	if p.Name() != "Random" {
		t.Fatalf("Name = %q", p.Name())
	}
}
