package core

import (
	"math"
	"testing"

	"repro/internal/window"
	"repro/internal/workload"
)

// driveWindow runs a policy through n full window-protocol evaluations and
// returns every estimate produced.
func driveWindow(p *Policy, data []float64, spec window.Spec) [][]float64 {
	var out [][]float64
	pos := 0
	for i := 0; i < spec.Evaluations(len(data)); i++ {
		_, hi := spec.EvalBounds(i)
		if i > 0 {
			p.Expire(nil)
		}
		p.ObserveBatch(data[pos:hi])
		pos = hi
		out = append(out, p.Result())
	}
	return out
}

// TestResetRestoresFreshBehaviour: a Reset operator must be bit-identical
// to a freshly constructed one on the same subsequent stream, in every
// mode including adaptive (whose controller mutates budgets at runtime).
func TestResetRestoresFreshBehaviour(t *testing.T) {
	spec := window.Spec{Size: 2000, Period: 500}
	phis := []float64{0.5, 0.99, 0.999}
	for name, cfg := range map[string]Config{
		"fewk":     {Spec: spec, Phis: phis, FewK: true},
		"adaptive": {Spec: spec, Phis: phis, FewK: true, Adaptive: true},
	} {
		t.Run(name, func(t *testing.T) {
			recycled := mustNew(t, cfg)
			// A bursty first life, so the adaptive controller actually
			// moves its budgets before the reset.
			first := workload.Generate(workload.NewNetMon(8), 3*spec.Size)
			first = workload.InjectBursts(first, spec.Size, spec.Period, 0.99, 10)
			driveWindow(recycled, first, spec)
			recycled.Reset()

			fresh := mustNew(t, cfg)
			second := workload.Generate(workload.NewNetMon(9), 3*spec.Size)
			got := driveWindow(recycled, second, spec)
			want := driveWindow(fresh, second, spec)
			if len(got) != len(want) {
				t.Fatalf("evaluations %d != %d", len(got), len(want))
			}
			for i := range want {
				for j := range want[i] {
					if math.Float64bits(got[i][j]) != math.Float64bits(want[i][j]) {
						t.Fatalf("eval %d ϕ=%v: recycled %v != fresh %v",
							i, phis[j], got[i][j], want[i][j])
					}
				}
			}
			if recycled.SubWindowCount() != fresh.SubWindowCount() {
				t.Fatal("resident counts diverge")
			}
		})
	}
}

func TestPoolRecyclesOperators(t *testing.T) {
	cfg := Config{Spec: window.Spec{Size: 400, Period: 100}, Phis: []float64{0.5, 0.999}, FewK: true}
	pool, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Idle() != 1 {
		t.Fatalf("idle after construction = %d, want 1 (validation operator)", pool.Idle())
	}
	p1 := pool.Get()
	if pool.Idle() != 0 {
		t.Fatal("Get did not take the idle operator")
	}
	p1.ObserveBatch(workload.Generate(workload.NewNetMon(1), cfg.Spec.Size))
	pool.Put(p1)
	p2 := pool.Get()
	if p2 != p1 {
		t.Fatal("pool minted a new operator instead of recycling")
	}
	if p2.SubWindowCount() != 0 {
		t.Fatal("recycled operator carries stale summaries")
	}
	// A second Get with the pool empty mints a distinct operator.
	p3 := pool.Get()
	if p3 == p2 {
		t.Fatal("same operator handed out twice")
	}
	// Foreign-config operators are refused.
	other := mustNew(t, Config{Spec: window.Spec{Size: 400, Period: 100}, Phis: []float64{0.5, 0.999}})
	pool.Put(other)
	if pool.Idle() != 0 {
		t.Fatal("pool accepted a mismatched operator")
	}
	pool.Put(nil)
	if pool.Idle() != 0 {
		t.Fatal("pool accepted nil")
	}
}

func TestPoolValidatesEagerly(t *testing.T) {
	if _, err := NewPool(Config{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// TestPoolMintsIdenticalConfigs: config resolution is not idempotent
// (user Digits<0 resolves to 0 "identity", which a re-resolution would
// turn into the default 3), so freshly minted operators must match the
// seeded one exactly — otherwise a pool with quantization disabled would
// hand out 3-digit-quantizing operators from the second Get on, and Put
// would refuse to recycle them.
func TestPoolMintsIdenticalConfigs(t *testing.T) {
	cfg := Config{Spec: window.Spec{Size: 100, Period: 10}, Phis: []float64{0.5}, Digits: -1}
	pool, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := pool.Get()  // the seeded validation operator
	second := pool.Get() // freshly minted
	if !fullConfigEqual(first.cfg, second.cfg) {
		t.Fatalf("minted config diverges: %+v vs %+v", first.cfg, second.cfg)
	}
	if second.cfg.Digits != 0 {
		t.Fatalf("Digits re-resolved to %d, want 0 (identity)", second.cfg.Digits)
	}
	// Both recycle.
	pool.Put(first)
	pool.Put(second)
	if pool.Idle() != 2 {
		t.Fatalf("idle = %d, want 2", pool.Idle())
	}
	// And unquantized operators really don't quantize.
	p := pool.Get()
	p.Observe(1234.5678)
	p.EndPeriod()
	if got := p.Result()[0]; got != 1234.5678 {
		t.Fatalf("minted operator quantized: %v", got)
	}
}

// TestPoolRecycledOperatorKeepsArena: a recycled operator's first
// sub-window must reuse the retained tree arena — no per-element
// allocations beyond the retained Summary slices.
func TestPoolRecycledOperatorKeepsArena(t *testing.T) {
	spec := window.Spec{Size: 1024, Period: 256}
	cfg := Config{Spec: spec, Phis: []float64{0.5, 0.99}}
	pool, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, spec.Period)
	for i := range vals {
		vals[i] = 100 + float64(i%512)
	}
	p := pool.Get()
	for i := 0; i < 8; i++ {
		p.ObserveBatch(vals) // grow the arena to working-set size
	}
	pool.Put(p)
	p = pool.Get()
	allocs := testing.AllocsPerRun(5, func() {
		p.ObserveBatch(vals)
	})
	// One sealed Summary per period allocates its retained slices; the
	// ingest itself must not allocate per element.
	if perElement := allocs / float64(spec.Period); perElement > 0.05 {
		t.Fatalf("recycled operator allocates %v/element on first fills", perElement)
	}
}
