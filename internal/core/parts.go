package core

import (
	"fmt"

	"repro/internal/exact"
)

// SnapshotParts is the exploded, exported form of a Snapshot: everything a
// transport needs to serialize a capture and rebuild it on the other side
// of a process or datacenter boundary. Parts and NewSnapshot are the
// encapsulation seam between core and the wire codec — the codec never
// sees Snapshot's private fields, and core never sees bytes.
//
// The slices are SHARED with the Snapshot they came from (or are handed
// to): summary internals are immutable after seal, so sharing is safe as
// long as holders honour the same read-only contract the Snapshot itself
// relies on. A decoder that just unmarshalled fresh slices hands them over
// outright; nothing is copied in either direction.
type SnapshotParts struct {
	// Config is the FULL resolved configuration the captured operator ran
	// with — not just the merge-shape fields. Estimates on the rebuilt
	// capture reads Digits-independent state, but Merge compatibility and
	// the managed-quantile set both derive from it.
	Config Config
	// Streams is the number of merged sub-streams (>= 1).
	Streams int
	// Sums holds the Level-2 running quantile sums, one per configured ϕ.
	Sums []float64
	// Summaries are the resident sub-window summaries, oldest first per
	// merged capture.
	Summaries []Summary
	// SealGen is the source operator's seal-generation clock at capture
	// time (0 when unknown: merged captures, wire v1 sources). When
	// non-zero, the resident summaries are generations
	// (SealGen-len(Summaries), SealGen].
	SealGen uint64
}

// Parts explodes the capture for serialization. The returned slices are
// shared with s and MUST be treated as read-only.
func (s Snapshot) Parts() SnapshotParts {
	return SnapshotParts{
		Config:    s.cfg,
		Streams:   s.streams,
		Sums:      s.sums,
		Summaries: s.summaries,
		SealGen:   s.sealGen,
	}
}

// NewSnapshot rebuilds a capture from its exploded parts, revalidating
// every structural invariant a live capture carries by construction: the
// configuration must be a valid RESOLVED one (as produced by New — zero
// defaults already applied), the Level-2 sums must align with the ϕ set,
// and every summary's slices must agree with the configuration's quantile
// and managed-quantile counts. The managed index set is recomputed from the
// configuration, so a rebuilt capture Merges and Estimates exactly — bit
// for bit — like the never-serialized original.
//
// NewSnapshot takes ownership of the part slices; callers must not mutate
// them afterwards. It validates structure, not values: ordering and
// NaN policies for the float payloads are the transport's concern (see
// internal/wire), where corrupt input is actually possible.
func NewSnapshot(p SnapshotParts) (Snapshot, error) {
	cfg := p.Config
	if p.Streams < 1 {
		return Snapshot{}, fmt.Errorf("qlove: snapshot parts: streams %d < 1", p.Streams)
	}
	if err := validateResolved(cfg); err != nil {
		return Snapshot{}, fmt.Errorf("qlove: snapshot parts: %w", err)
	}
	l := len(cfg.Phis)
	if len(p.Sums) != l {
		return Snapshot{}, fmt.Errorf("qlove: snapshot parts: %d sums for %d quantiles", len(p.Sums), l)
	}
	if p.SealGen != 0 && uint64(len(p.Summaries)) > p.SealGen {
		return Snapshot{}, fmt.Errorf("qlove: snapshot parts: %d resident summaries exceed seal generation %d", len(p.Summaries), p.SealGen)
	}
	managed := managedIndexes(cfg)
	for i := range p.Summaries {
		if err := validateSummary(&p.Summaries[i], l, len(managed)); err != nil {
			return Snapshot{}, fmt.Errorf("qlove: snapshot parts: summary %d: %w", i, err)
		}
	}
	return Snapshot{
		cfg:       cfg,
		streams:   p.Streams,
		sums:      p.Sums,
		summaries: p.Summaries,
		managed:   managed,
		sealGen:   p.SealGen,
	}, nil
}

// validateResolved checks that cfg is a valid configuration in RESOLVED
// form — the invariants New establishes (via withDefaults plus its own
// checks) and every capture therefore carries. A config that would merely
// resolve to a valid one (e.g. Digits 0 or negative) is rejected: resolving
// here would break bit-identity between a rebuilt capture and its source.
func validateResolved(cfg Config) error {
	if err := cfg.Spec.Validate(); err != nil {
		return err
	}
	if err := exact.ValidatePhis(cfg.Phis); err != nil {
		return err
	}
	if cfg.Digits < 0 {
		return fmt.Errorf("unresolved digits %d", cfg.Digits)
	}
	if cfg.Fraction <= 0 || cfg.Fraction > 1 {
		return fmt.Errorf("fraction %v outside (0, 1]", cfg.Fraction)
	}
	if cfg.StatThreshold == 0 || cfg.BurstAlpha == 0 || cfg.HighPhiMin == 0 {
		return fmt.Errorf("unresolved zero-valued threshold fields")
	}
	if cfg.TopKOnly && cfg.SampleKOnly {
		return fmt.Errorf("TopKOnly and SampleKOnly are mutually exclusive")
	}
	return nil
}

// validateSummary checks one summary's slice shape against the
// configuration: l quantiles and densities, one tail and one sample list
// per managed quantile, burst flags either absent or one per managed
// quantile, and per-summary population cross-checks (a sub-window cannot
// cache more tail values, or represent more tail ranks, than it contained).
func validateSummary(s *Summary, l, nManaged int) error {
	if s.Count < 1 {
		return fmt.Errorf("count %d < 1", s.Count)
	}
	if len(s.Quantiles) != l {
		return fmt.Errorf("%d quantiles, config has %d", len(s.Quantiles), l)
	}
	if len(s.Densities) != l {
		return fmt.Errorf("%d densities, config has %d", len(s.Densities), l)
	}
	if len(s.Tails) != nManaged {
		return fmt.Errorf("%d tails for %d managed quantiles", len(s.Tails), nManaged)
	}
	if len(s.Samples) != nManaged {
		return fmt.Errorf("%d sample lists for %d managed quantiles", len(s.Samples), nManaged)
	}
	if len(s.BurstyVsPrev) != 0 && len(s.BurstyVsPrev) != nManaged {
		return fmt.Errorf("%d burst flags for %d managed quantiles", len(s.BurstyVsPrev), nManaged)
	}
	for mi, t := range s.Tails {
		if len(t) > s.Count {
			return fmt.Errorf("tail %d holds %d values, sub-window held %d", mi, len(t), s.Count)
		}
	}
	for mi, list := range s.Samples {
		ranks := 0
		for _, sm := range list {
			if sm.Weight < 1 {
				return fmt.Errorf("sample list %d: weight %d < 1", mi, sm.Weight)
			}
			ranks += sm.Weight
		}
		if ranks > s.Count {
			return fmt.Errorf("sample list %d represents %d tail ranks, sub-window held %d", mi, ranks, s.Count)
		}
	}
	return nil
}
