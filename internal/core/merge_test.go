package core

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/window"
	"repro/internal/workload"
)

func TestMergedResultMatchesSingleStream(t *testing.T) {
	// Two shards each consuming half of an i.i.d. stream must merge to an
	// estimate close to a single operator over the whole stream.
	spec := window.Spec{Size: 8000, Period: 1000}
	phis := []float64{0.5, 0.9}
	cfg := Config{Spec: spec, Phis: phis, Digits: -1}
	whole := mustNew(t, cfg)
	shardA := mustNew(t, cfg)
	shardB := mustNew(t, cfg)
	gen := workload.NewNormal(1, 1000, 100)
	for i := 0; i < 16000; i++ {
		v := gen.Next()
		whole.Observe(v)
		if i%2 == 0 {
			shardA.Observe(v)
		} else {
			shardB.Observe(v)
		}
	}
	// Trim both sides to one window's worth of summaries.
	for whole.SubWindowCount() > spec.SubWindows() {
		whole.Expire(nil)
	}
	for shardA.SubWindowCount() > spec.SubWindows() {
		shardA.Expire(nil)
		shardB.Expire(nil)
	}
	merged, err := MergedResult([]*Policy{shardA, shardB})
	if err != nil {
		t.Fatal(err)
	}
	single := whole.Result()
	for j := range phis {
		if rel := math.Abs(merged[j]-single[j]) / single[j]; rel > 0.01 {
			t.Errorf("phi=%v: merged %v vs single %v (rel %v)", phis[j], merged[j], single[j], rel)
		}
	}
}

func TestMergedResultAccuracy(t *testing.T) {
	// Four shards of NetMon data: merged estimates should be close to the
	// exact quantiles of the union.
	spec := window.Spec{Size: 4000, Period: 1000}
	phis := []float64{0.5, 0.9}
	cfg := Config{Spec: spec, Phis: phis}
	var shards []*Policy
	var all []float64
	for s := 0; s < 4; s++ {
		p := mustNew(t, cfg)
		gen := workload.NewNetMon(int64(s + 1))
		for i := 0; i < spec.Size; i++ {
			v := gen.Next()
			p.Observe(v)
			all = append(all, v)
		}
		shards = append(shards, p)
	}
	merged, err := MergedResult(shards)
	if err != nil {
		t.Fatal(err)
	}
	exact := stats.Quantiles(all, phis)
	for j := range phis {
		if rel := math.Abs(merged[j]-exact[j]) / exact[j]; rel > 0.05 {
			t.Errorf("phi=%v: merged %v vs exact %v (rel %v)", phis[j], merged[j], exact[j], rel)
		}
	}
}

func TestMergedResultFewK(t *testing.T) {
	// With full-fraction few-k, the merged Q0.999 must equal the exact
	// Q0.999 of the union (modulo quantization).
	spec := window.Spec{Size: 8000, Period: 1000}
	phis := []float64{0.999}
	cfg := Config{Spec: spec, Phis: phis, FewK: true, Fraction: 1, Digits: -1}
	var shards []*Policy
	var all []float64
	for s := 0; s < 2; s++ {
		p := mustNew(t, cfg)
		gen := workload.NewNetMon(int64(10 + s))
		for i := 0; i < spec.Size; i++ {
			v := gen.Next()
			p.Observe(v)
			all = append(all, v)
		}
		shards = append(shards, p)
	}
	merged, err := MergedResult(shards)
	if err != nil {
		t.Fatal(err)
	}
	exact := stats.Quantiles(all, phis)
	if merged[0] != exact[0] {
		t.Fatalf("merged Q0.999 = %v, exact %v", merged[0], exact[0])
	}
}

func TestMergedResultValidation(t *testing.T) {
	if _, err := MergedResult(nil); err == nil {
		t.Fatal("empty shard list accepted")
	}
	spec := window.Spec{Size: 100, Period: 10}
	a := mustNew(t, Config{Spec: spec, Phis: []float64{0.5}})
	b := mustNew(t, Config{Spec: spec, Phis: []float64{0.9}})
	if _, err := MergedResult([]*Policy{a, b}); err == nil {
		t.Fatal("mismatched phis accepted")
	}
	c := mustNew(t, Config{Spec: window.Spec{Size: 200, Period: 10}, Phis: []float64{0.5}})
	if _, err := MergedResult([]*Policy{a, c}); err == nil {
		t.Fatal("mismatched spec accepted")
	}
}

func TestMergedResultEmptyShards(t *testing.T) {
	spec := window.Spec{Size: 100, Period: 10}
	a := mustNew(t, Config{Spec: spec, Phis: []float64{0.5}})
	b := mustNew(t, Config{Spec: spec, Phis: []float64{0.5}})
	got, err := MergedResult([]*Policy{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Fatalf("empty merge = %v", got)
	}
}
