package core

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/window"
	"repro/internal/workload"
)

func TestMergedResultMatchesSingleStream(t *testing.T) {
	// Two shards each consuming half of an i.i.d. stream must merge to an
	// estimate close to a single operator over the whole stream.
	spec := window.Spec{Size: 8000, Period: 1000}
	phis := []float64{0.5, 0.9}
	cfg := Config{Spec: spec, Phis: phis, Digits: -1}
	whole := mustNew(t, cfg)
	shardA := mustNew(t, cfg)
	shardB := mustNew(t, cfg)
	gen := workload.NewNormal(1, 1000, 100)
	for i := 0; i < 16000; i++ {
		v := gen.Next()
		whole.Observe(v)
		if i%2 == 0 {
			shardA.Observe(v)
		} else {
			shardB.Observe(v)
		}
	}
	// Trim both sides to one window's worth of summaries.
	for whole.SubWindowCount() > spec.SubWindows() {
		whole.Expire(nil)
	}
	for shardA.SubWindowCount() > spec.SubWindows() {
		shardA.Expire(nil)
		shardB.Expire(nil)
	}
	merged, err := MergedResult([]*Policy{shardA, shardB})
	if err != nil {
		t.Fatal(err)
	}
	single := whole.Result()
	for j := range phis {
		if rel := math.Abs(merged[j]-single[j]) / single[j]; rel > 0.01 {
			t.Errorf("phi=%v: merged %v vs single %v (rel %v)", phis[j], merged[j], single[j], rel)
		}
	}
}

func TestMergedResultAccuracy(t *testing.T) {
	// Four shards of NetMon data: merged estimates should be close to the
	// exact quantiles of the union.
	spec := window.Spec{Size: 4000, Period: 1000}
	phis := []float64{0.5, 0.9}
	cfg := Config{Spec: spec, Phis: phis}
	var shards []*Policy
	var all []float64
	for s := 0; s < 4; s++ {
		p := mustNew(t, cfg)
		gen := workload.NewNetMon(int64(s + 1))
		for i := 0; i < spec.Size; i++ {
			v := gen.Next()
			p.Observe(v)
			all = append(all, v)
		}
		shards = append(shards, p)
	}
	merged, err := MergedResult(shards)
	if err != nil {
		t.Fatal(err)
	}
	exact := stats.Quantiles(all, phis)
	for j := range phis {
		if rel := math.Abs(merged[j]-exact[j]) / exact[j]; rel > 0.05 {
			t.Errorf("phi=%v: merged %v vs exact %v (rel %v)", phis[j], merged[j], exact[j], rel)
		}
	}
}

func TestMergedResultFewK(t *testing.T) {
	// With full-fraction few-k, the merged Q0.999 must equal the exact
	// Q0.999 of the union (modulo quantization).
	spec := window.Spec{Size: 8000, Period: 1000}
	phis := []float64{0.999}
	cfg := Config{Spec: spec, Phis: phis, FewK: true, Fraction: 1, Digits: -1}
	var shards []*Policy
	var all []float64
	for s := 0; s < 2; s++ {
		p := mustNew(t, cfg)
		gen := workload.NewNetMon(int64(10 + s))
		for i := 0; i < spec.Size; i++ {
			v := gen.Next()
			p.Observe(v)
			all = append(all, v)
		}
		shards = append(shards, p)
	}
	merged, err := MergedResult(shards)
	if err != nil {
		t.Fatal(err)
	}
	exact := stats.Quantiles(all, phis)
	if merged[0] != exact[0] {
		t.Fatalf("merged Q0.999 = %v, exact %v", merged[0], exact[0])
	}
}

// TestMergedRoundRobinProperty: for K shards fed disjoint round-robin
// partitions of one stream, the merged estimates must agree with (a) the
// exact quantiles of the union of the shards' resident windows and (b) a
// single operator fed the full stream, within the paper's Level-2
// tolerance — including the few-k tail path, whose merged read rank spans
// the K×N logical window.
func TestMergedRoundRobinProperty(t *testing.T) {
	spec := window.Spec{Size: 8000, Period: 1000}
	phis := []float64{0.5, 0.9, 0.999}
	configs := map[string]Config{
		"level2": {Spec: spec, Phis: phis, Digits: -1},
		"fewk":   {Spec: spec, Phis: phis, Digits: -1, FewK: true, Fraction: 1},
	}
	for name, cfg := range configs {
		for _, k := range []int{2, 3, 5} {
			for seed := int64(1); seed <= 2; seed++ {
				single := mustNew(t, cfg)
				shards := make([]*Policy, k)
				for i := range shards {
					shards[i] = mustNew(t, cfg)
				}
				gen := workload.NewNormal(seed, 1000, 100)
				total := 2 * k * spec.Size
				stream := workload.Generate(gen, total)
				for i, v := range stream {
					single.Observe(v)
					shards[i%k].Observe(v)
				}
				// Trim everyone to exactly one window of resident
				// summaries: the shards then jointly cover the last k×N
				// stream elements, the single operator the last N.
				for single.SubWindowCount() > spec.SubWindows() {
					single.Expire(nil)
				}
				for _, s := range shards {
					for s.SubWindowCount() > spec.SubWindows() {
						s.Expire(nil)
					}
				}
				merged, err := MergedResult(shards)
				if err != nil {
					t.Fatal(err)
				}
				exactUnion := stats.Quantiles(stream[total-k*spec.Size:], phis)
				sres := single.Result()
				for j, phi := range phis {
					tol := 0.015
					if cfg.FewK && phi >= 0.95 {
						// The merged tail read is near-exact: every
						// sub-window caches its N(1−ϕ) largest values and
						// the merged pool always reaches the k×N read rank.
						tol = 0.01
					}
					if rel := math.Abs(merged[j]-exactUnion[j]) / exactUnion[j]; rel > tol {
						t.Errorf("%s k=%d seed=%d ϕ=%v: merged %v vs exact union %v (rel %.4f)",
							name, k, seed, phi, merged[j], exactUnion[j], rel)
					}
					// Merged and single estimate the same population
					// quantile from samples of different sizes; allow both
					// tolerances.
					if rel := math.Abs(merged[j]-sres[j]) / sres[j]; rel > 2*tol {
						t.Errorf("%s k=%d seed=%d ϕ=%v: merged %v vs single %v (rel %.4f)",
							name, k, seed, phi, merged[j], sres[j], rel)
					}
				}
			}
		}
	}
}

// TestMergedRoundRobinFewKTailBeatsLevel2: on a heavy-tailed workload the
// merged few-k tail estimate must be strictly more accurate than the
// merged Level-2-only estimate — evidence the tail path, not the average,
// answered the managed quantile.
func TestMergedRoundRobinFewKTailBeatsLevel2(t *testing.T) {
	spec := window.Spec{Size: 8000, Period: 1000}
	phis := []float64{0.999}
	const k = 4
	mkShards := func(cfg Config) []*Policy {
		shards := make([]*Policy, k)
		for i := range shards {
			shards[i] = mustNew(t, cfg)
		}
		return shards
	}
	fewk := mkShards(Config{Spec: spec, Phis: phis, Digits: -1, FewK: true, Fraction: 1})
	plain := mkShards(Config{Spec: spec, Phis: phis, Digits: -1})
	stream := workload.Generate(workload.NewNetMon(31), k*spec.Size)
	for i, v := range stream {
		fewk[i%k].Observe(v)
		plain[i%k].Observe(v)
	}
	exact := stats.Quantiles(stream, phis)[0]
	mf, err := MergedResult(fewk)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := MergedResult(plain)
	if err != nil {
		t.Fatal(err)
	}
	errF := math.Abs(mf[0]-exact) / exact
	errP := math.Abs(mp[0]-exact) / exact
	if errF >= errP {
		t.Fatalf("few-k merged error %.4f not below level-2 merged error %.4f", errF, errP)
	}
	if errF > 0.05 {
		t.Fatalf("few-k merged tail error %.4f too large (estimate %v, exact %v)", errF, mf[0], exact)
	}
}

func TestMergedResultValidation(t *testing.T) {
	if _, err := MergedResult(nil); err == nil {
		t.Fatal("empty shard list accepted")
	}
	spec := window.Spec{Size: 100, Period: 10}
	a := mustNew(t, Config{Spec: spec, Phis: []float64{0.5}})
	b := mustNew(t, Config{Spec: spec, Phis: []float64{0.9}})
	if _, err := MergedResult([]*Policy{a, b}); err == nil {
		t.Fatal("mismatched phis accepted")
	}
	c := mustNew(t, Config{Spec: window.Spec{Size: 200, Period: 10}, Phis: []float64{0.5}})
	if _, err := MergedResult([]*Policy{a, c}); err == nil {
		t.Fatal("mismatched spec accepted")
	}
}

func TestMergedResultEmptyShards(t *testing.T) {
	spec := window.Spec{Size: 100, Period: 10}
	a := mustNew(t, Config{Spec: spec, Phis: []float64{0.5}})
	b := mustNew(t, Config{Spec: spec, Phis: []float64{0.5}})
	got, err := MergedResult([]*Policy{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Fatalf("empty merge = %v", got)
	}
}
