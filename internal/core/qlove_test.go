package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/window"
	"repro/internal/workload"
)

func mustNew(t *testing.T, cfg Config) *Policy {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	good := Config{Spec: window.Spec{Size: 100, Period: 10}, Phis: []float64{0.5, 0.99}}
	if _, err := New(good); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Spec = window.Spec{Size: 5, Period: 10}
	if _, err := New(bad); err == nil {
		t.Fatal("invalid spec accepted")
	}
	bad = good
	bad.Phis = nil
	if _, err := New(bad); err == nil {
		t.Fatal("empty phis accepted")
	}
	bad = good
	bad.Phis = []float64{0.9, 0.5}
	if _, err := New(bad); err == nil {
		t.Fatal("unsorted phis accepted")
	}
	bad = good
	bad.Fraction = 1.5
	if _, err := New(bad); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
}

func TestDefaults(t *testing.T) {
	p := mustNew(t, Config{Spec: window.Spec{Size: 100, Period: 10}, Phis: []float64{0.5}})
	cfg := p.Config()
	if cfg.Digits != 3 || cfg.Fraction != 0.5 || cfg.StatThreshold != 10 ||
		cfg.BurstAlpha != 0.05 || cfg.HighPhiMin != 0.95 {
		t.Fatalf("defaults = %+v", cfg)
	}
	// Digits < 0 disables quantization.
	p = mustNew(t, Config{Spec: window.Spec{Size: 100, Period: 10}, Phis: []float64{0.5}, Digits: -1})
	if p.Config().Digits != 0 {
		t.Fatalf("Digits = %d, want 0 (identity)", p.Config().Digits)
	}
}

func TestLevel2IsMeanOfSubWindowQuantiles(t *testing.T) {
	// Core §3.1 claim: the window estimate equals the mean of the exact
	// sub-window quantiles. Quantization off for an exact check.
	spec := window.Spec{Size: 40, Period: 10}
	phis := []float64{0.5, 0.9}
	p := mustNew(t, Config{Spec: spec, Phis: phis, Digits: -1})
	rng := rand.New(rand.NewSource(1))
	data := make([]float64, 40)
	for i := range data {
		data[i] = math.Floor(rng.Float64() * 1000)
	}
	for _, v := range data {
		p.Observe(v)
	}
	got := p.Result()
	for j, phi := range phis {
		var want float64
		for s := 0; s < 4; s++ {
			want += stats.Quantile(data[s*10:(s+1)*10], phi)
		}
		want /= 4
		if math.Abs(got[j]-want) > 1e-9 {
			t.Errorf("phi=%v: got %v, want mean-of-subwindows %v", phi, got[j], want)
		}
	}
}

func TestSlidingDeaccumulatesWholeSubWindow(t *testing.T) {
	spec := window.Spec{Size: 40, Period: 10}
	p := mustNew(t, Config{Spec: spec, Phis: []float64{0.5}, Digits: -1})
	data := make([]float64, 80)
	for i := range data {
		data[i] = float64(i)
	}
	evals, _, err := stream.Run(p, spec, data)
	if err != nil {
		t.Fatal(err)
	}
	// Window [40, 80): sub-window medians (rank ⌈0.5·10⌉ = 5 of each run
	// of 10 consecutive integers) are 44, 54, 64, 74 -> mean 59.
	last := evals[len(evals)-1].Estimates[0]
	if math.Abs(last-59) > 1e-9 {
		t.Fatalf("final estimate = %v, want 59", last)
	}
	if p.SubWindowCount() != 4 {
		t.Fatalf("resident summaries = %d, want 4", p.SubWindowCount())
	}
}

func TestResultBeforeAnySummary(t *testing.T) {
	p := mustNew(t, Config{Spec: window.Spec{Size: 100, Period: 10}, Phis: []float64{0.5, 0.9}})
	got := p.Result()
	if got[0] != 0 || got[1] != 0 {
		t.Fatalf("empty Result = %v", got)
	}
	p.Expire(nil) // must not panic on empty aggregator
}

func TestAccuracyOnNetMon(t *testing.T) {
	// The headline claim: < 5% average relative value error across
	// quantiles on NetMon-like telemetry (16K period, 128K window scaled
	// down 8x for test speed: 2K period, 16K window — same N/P ratio).
	spec := window.Spec{Size: 16000, Period: 2000}
	phis := []float64{0.5, 0.9, 0.99}
	data := workload.Generate(workload.NewNetMon(1), 64000)
	p := mustNew(t, Config{Spec: spec, Phis: phis})
	evals, _, err := stream.Run(p, spec, data)
	if err != nil {
		t.Fatal(err)
	}
	accs := make([]stats.ErrorAccumulator, len(phis))
	_ = spec.Iter(data, func(idx int, w []float64) {
		want := stats.Quantiles(w, phis)
		for j := range phis {
			accs[j].Observe(evals[idx].Estimates[j], want[j], 0, 0, 0, false)
		}
	})
	for j, phi := range phis {
		if got := accs[j].AvgRelErrPct(); got > 5 {
			t.Errorf("phi=%v: avg rel err = %.2f%%, want < 5%%", phi, got)
		}
	}
}

func TestQuantizationBoundsError(t *testing.T) {
	// 3-digit quantization alone must keep values within 0.5%.
	spec := window.Spec{Size: 1000, Period: 1000} // tumbling: level1 only
	p := mustNew(t, Config{Spec: spec, Phis: []float64{0.5}})
	rng := rand.New(rand.NewSource(3))
	data := make([]float64, 1000)
	for i := range data {
		data[i] = 1000 + rng.Float64()*8000
	}
	for _, v := range data {
		p.Observe(v)
	}
	got := p.Result()[0]
	want := stats.Quantile(data, 0.5)
	if rel := math.Abs(got-want) / want; rel > 0.005 {
		t.Fatalf("median = %v, exact %v, rel err %v > 0.005", got, want, rel)
	}
}

func TestSpaceUsageBenefitsFromRedundancy(t *testing.T) {
	spec := window.Spec{Size: 8000, Period: 4000}
	redundant := mustNew(t, Config{Spec: spec, Phis: []float64{0.5}})
	distinct := mustNew(t, Config{Spec: spec, Phis: []float64{0.5}, Digits: -1})
	rng := rand.New(rand.NewSource(4))
	var maxRed, maxDist int
	for i := 0; i < 4000; i++ {
		// Fractional values are all unique raw; 3-digit quantization
		// collapses them onto at most 800 buckets in [1000, 9000).
		v := 1000 + rng.Float64()*8000
		redundant.Observe(v)
		distinct.Observe(v)
		if s := redundant.SpaceUsage(); s > maxRed {
			maxRed = s
		}
		if s := distinct.SpaceUsage(); s > maxDist {
			maxDist = s
		}
	}
	if maxRed*2 >= maxDist {
		t.Fatalf("quantized space %d not well below raw %d", maxRed, maxDist)
	}
}

func TestFewKManagedSelection(t *testing.T) {
	spec := window.Spec{Size: 128000, Period: 16000}
	p := mustNew(t, Config{Spec: spec, Phis: []float64{0.5, 0.9, 0.99, 0.999}, FewK: true})
	managed := p.ManagedQuantiles()
	if len(managed) != 2 || managed[0] != 0.99 || managed[1] != 0.999 {
		t.Fatalf("managed = %v, want [0.99 0.999]", managed)
	}
	// Few-k disabled: nothing managed.
	p = mustNew(t, Config{Spec: spec, Phis: []float64{0.999}})
	if len(p.ManagedQuantiles()) != 0 {
		t.Fatal("few-k disabled but quantiles managed")
	}
}

func TestFewKTopKFixesStatisticalInefficiency(t *testing.T) {
	// Paper Table 2 vs Table 3: with a 1K period and 16K window, Q0.999
	// is decided by ~2 points per sub-window; averaging degrades, top-k
	// merging repairs it.
	spec := window.Spec{Size: 16000, Period: 1000}
	phis := []float64{0.999}
	data := workload.Generate(workload.NewNetMon(5), 64000)
	run := func(fewK bool, fraction float64) float64 {
		p := mustNew(t, Config{Spec: spec, Phis: phis, FewK: fewK, Fraction: fraction})
		evals, _, err := stream.Run(p, spec, data)
		if err != nil {
			t.Fatal(err)
		}
		var acc stats.ErrorAccumulator
		_ = spec.Iter(data, func(idx int, w []float64) {
			want := stats.Quantile(w, 0.999)
			acc.Observe(evals[idx].Estimates[0], want, 0, 0, 0, false)
		})
		return acc.AvgRelErrPct()
	}
	without := run(false, 0.5)
	with := run(true, 0.5)
	if with >= without {
		t.Fatalf("few-k did not improve Q0.999: %.2f%% vs %.2f%% without", with, without)
	}
	if with > 5 {
		t.Fatalf("few-k error %.2f%% above the 5%% target", with)
	}
}

func TestFewKSampleKHandlesBurst(t *testing.T) {
	// Paper Table 4: inject a 10x burst into every (N/P)-th sub-window of
	// the paper's own dimensions (128K window, 16K period); sample-k
	// merging must keep Q0.999 sane while plain averaging collapses.
	// Sample resolution scales with the budget, so the test needs the
	// real window size — at toy sizes k_s is a handful of points against
	// a 10x value cliff (the paper's fraction-0.1 rows show the same
	// degradation).
	spec := window.Spec{Size: 128000, Period: 16000}
	phis := []float64{0.999}
	base := workload.Generate(workload.NewNetMon(6), 384000)
	data := workload.InjectBursts(base, spec.Size, spec.Period, 0.999, 10)
	run := func(fewK bool) float64 {
		p := mustNew(t, Config{Spec: spec, Phis: phis, FewK: fewK, Fraction: 0.5})
		evals, _, err := stream.Run(p, spec, data)
		if err != nil {
			t.Fatal(err)
		}
		var acc stats.ErrorAccumulator
		_ = spec.Iter(data, func(idx int, w []float64) {
			want := stats.Quantile(w, 0.999)
			acc.Observe(evals[idx].Estimates[0], want, 0, 0, 0, false)
		})
		return acc.AvgRelErrPct()
	}
	without := run(false)
	with := run(true)
	if with >= without {
		t.Fatalf("few-k did not improve burst handling: %.2f%% vs %.2f%%", with, without)
	}
	if with > 15 {
		t.Fatalf("few-k burst error %.2f%% too high", with)
	}
}

func TestBurstDetectedFlag(t *testing.T) {
	spec := window.Spec{Size: 16000, Period: 2000}
	base := workload.Generate(workload.NewNetMon(7), 64000)
	data := workload.InjectBursts(base, spec.Size, spec.Period, 0.999, 10)
	p := mustNew(t, Config{Spec: spec, Phis: []float64{0.999}, FewK: true})
	sawBurst := false
	pos := 0
	n := spec.Evaluations(len(data))
	for i := 0; i < n; i++ {
		lo, hi := spec.EvalBounds(i)
		if i > 0 {
			p.Expire(data[lo-spec.Period : lo])
		}
		for ; pos < hi; pos++ {
			p.Observe(data[pos])
		}
		p.Result()
		if p.BurstDetected() {
			sawBurst = true
		}
	}
	if !sawBurst {
		t.Fatal("burst never detected on injected-burst stream")
	}
}

func TestErrorBoundCoversObserved(t *testing.T) {
	// Appendix A: the observed |ya - ye| should fall within the 95% bound
	// for i.i.d. normal data at the median.
	spec := window.Spec{Size: 20000, Period: 2000}
	phis := []float64{0.5}
	data := workload.Generate(workload.NewNormal(8, 1e6, 5e4), 60000)
	p := mustNew(t, Config{Spec: spec, Phis: phis, Digits: -1})
	evals, _, err := stream.Run(p, spec, data)
	if err != nil {
		t.Fatal(err)
	}
	bounds := p.ErrorBounds(0.05)
	if bounds[0] <= 0 {
		t.Fatal("bound not informative")
	}
	misses := 0
	_ = spec.Iter(data, func(idx int, w []float64) {
		want := stats.Quantile(w, 0.5)
		if math.Abs(evals[idx].Estimates[0]-want) > bounds[0] {
			misses++
		}
	})
	n := spec.Evaluations(len(data))
	if misses > n/5 {
		t.Fatalf("bound missed %d/%d evaluations", misses, n)
	}
}

func TestErrorBoundsEmpty(t *testing.T) {
	p := mustNew(t, Config{Spec: window.Spec{Size: 100, Period: 10}, Phis: []float64{0.5}})
	b := p.ErrorBounds(0.05)
	if b[0] != 0 {
		t.Fatalf("empty bounds = %v", b)
	}
}

func TestNonIIDAccuracy(t *testing.T) {
	// §5.4 Table 5: AR(1) data keeps competitive accuracy even at high
	// correlation.
	spec := window.Spec{Size: 16000, Period: 2000}
	phis := []float64{0.5, 0.9, 0.99}
	for _, psi := range []float64{0, 0.8} {
		data := workload.Generate(workload.NewAR1(9, 1e6, 5e4, psi), 48000)
		p := mustNew(t, Config{Spec: spec, Phis: phis})
		evals, _, err := stream.Run(p, spec, data)
		if err != nil {
			t.Fatal(err)
		}
		var acc stats.ErrorAccumulator
		_ = spec.Iter(data, func(idx int, w []float64) {
			want := stats.Quantiles(w, phis)
			for j := range phis {
				acc.Observe(evals[idx].Estimates[j], want[j], 0, 0, 0, false)
			}
		})
		if got := acc.AvgRelErrPct(); got > 1 {
			t.Errorf("psi=%v: avg rel err = %.3f%%, want < 1%%", psi, got)
		}
	}
}

func TestTumblingWindowWorks(t *testing.T) {
	spec := window.Spec{Size: 1000, Period: 1000}
	p := mustNew(t, Config{Spec: spec, Phis: []float64{0.5}, Digits: -1})
	data := make([]float64, 3000)
	for i := range data {
		data[i] = float64(i % 1000)
	}
	evals, _, err := stream.Run(p, spec, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) != 3 {
		t.Fatalf("evals = %d", len(evals))
	}
	for _, e := range evals {
		if e.Estimates[0] != 499 {
			t.Fatalf("tumbling median = %v, want 499", e.Estimates[0])
		}
	}
}

func TestName(t *testing.T) {
	p := mustNew(t, Config{Spec: window.Spec{Size: 100, Period: 10}, Phis: []float64{0.5}})
	if p.Name() != "QLOVE" {
		t.Fatalf("Name = %q", p.Name())
	}
}

// TestSealGenClock pins the seal-generation contract the timed plane and
// delta exports lean on: the clock advances exactly once per sealed
// summary — count-triggered or EndPeriod-forced — never on empty periods,
// never on expiry, and Reset rewinds it to zero. The operator also
// implements the full stream.TimedPolicy surface, which is what lets an
// Engine drive it through wall-clock windows.
func TestSealGenClock(t *testing.T) {
	var _ stream.TimedPolicy = (*Policy)(nil)
	p := mustNew(t, Config{Spec: window.Spec{Size: 8, Period: 4}, Phis: []float64{0.5}})
	if p.SealGen() != 0 {
		t.Fatalf("fresh operator at generation %d", p.SealGen())
	}
	// An empty forced seal is a no-op on the clock.
	p.EndPeriod()
	if p.SealGen() != 0 {
		t.Fatal("empty EndPeriod advanced the seal clock")
	}
	// A partial sub-window force-seals: one generation.
	p.Observe(1)
	p.EndPeriod()
	if p.SealGen() != 1 || p.SubWindowCount() != 1 {
		t.Fatalf("after forced seal: gen=%d resident=%d", p.SealGen(), p.SubWindowCount())
	}
	// A full count period auto-seals: one more generation.
	p.ObserveBatch([]float64{2, 3, 4, 5})
	if p.SealGen() != 2 || p.SubWindowCount() != 2 {
		t.Fatalf("after count seal: gen=%d resident=%d", p.SealGen(), p.SubWindowCount())
	}
	// Expiry shrinks the residency but NEVER the generation clock — the
	// invariant that lets a delta cursor distinguish "new seals to ship"
	// from "window slid" (which only SubWindowCount reflects).
	p.Expire(nil)
	if p.SealGen() != 2 || p.SubWindowCount() != 1 {
		t.Fatalf("after expiry: gen=%d resident=%d", p.SealGen(), p.SubWindowCount())
	}
	p.Reset()
	if p.SealGen() != 0 || p.SubWindowCount() != 0 {
		t.Fatalf("after Reset: gen=%d resident=%d", p.SealGen(), p.SubWindowCount())
	}
}
