package core

import (
	"fmt"

	"repro/internal/core/fewk"
)

// MergedResult combines the state of several QLOVE shards that consumed
// disjoint partitions of one logical stream (e.g. one shard per ingestion
// thread or per datacenter pod) into window-level quantile estimates, as
// sketched in the paper's conclusion ("our quantile design can deliver
// better aggregate throughput ... in distributed computing").
//
// The combination follows the same two-level logic as a single operator:
// Level-2 estimates are the mean of every resident sub-window quantile
// across all shards (each shard's sub-windows are themselves i.i.d.
// samples of the stream under the paper's assumptions), and few-k-managed
// quantiles merge the cached tails and samples of all shards, scaling the
// read rank by the number of shards (the logical window is shards×N
// elements).
//
// All shards must share an identical configuration; ErrMismatched is
// returned otherwise.
func MergedResult(shards []*Policy) ([]float64, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("qlove: no shards to merge")
	}
	first := shards[0]
	for _, s := range shards[1:] {
		if !sameConfig(first.cfg, s.cfg) {
			return nil, fmt.Errorf("qlove: %w", ErrMismatched)
		}
	}
	nPhis := len(first.cfg.Phis)
	out := make([]float64, nPhis)

	// Level 2 across shards: mean of all resident sub-window quantiles.
	counts := 0
	sums := make([]float64, nPhis)
	for _, s := range shards {
		for i := 0; i < nPhis; i++ {
			sums[i] += s.agg.sums[i]
		}
		counts += s.agg.count()
	}
	if counts == 0 {
		return out, nil
	}
	for i := 0; i < nPhis; i++ {
		out[i] = sums[i] / float64(counts)
	}

	// Few-k across shards: the logical window spans shards×N elements.
	logicalN := first.cfg.Spec.Size * len(shards)
	for mi, pi := range first.managed {
		phi := first.cfg.Phis[pi]
		var tails [][]float64
		var samples [][]fewk.Sample
		burst := false
		for _, s := range shards {
			tails = append(tails, s.agg.cached(mi)...)
			samples = append(samples, s.agg.samples(mi)...)
			burst = burst || s.agg.anyBursty(mi)
		}
		topK, topOK := fewk.TopKMerge(tails, logicalN, phi)
		sampleK, sampOK := fewk.SampleKMerge(samples, logicalN, phi)
		statIneff := fewk.NeedsTopK(first.cfg.Spec.Period, phi, first.cfg.StatThreshold)
		out[pi] = fewk.Outcome(out[pi], topK, topOK, sampleK, sampOK, burst, statIneff)
	}
	return out, nil
}

// ErrMismatched reports an attempt to merge shards with different
// configurations.
var ErrMismatched = fmt.Errorf("shards have mismatched configurations")

// sameConfig compares the fields that affect merge semantics.
func sameConfig(a, b Config) bool {
	if a.Spec != b.Spec || a.FewK != b.FewK || a.Fraction != b.Fraction ||
		a.StatThreshold != b.StatThreshold || a.HighPhiMin != b.HighPhiMin ||
		len(a.Phis) != len(b.Phis) {
		return false
	}
	for i := range a.Phis {
		if a.Phis[i] != b.Phis[i] {
			return false
		}
	}
	return true
}
