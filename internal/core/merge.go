package core

import (
	"fmt"
)

// MergedResult combines the state of several QLOVE shards that consumed
// disjoint partitions of one logical stream into window-level quantile
// estimates: it captures a Snapshot of every shard, folds them with
// Snapshot.Merge and reads Estimates off the merged capture. Kept as the
// one-shot convenience form; callers that want to ship state across
// goroutines or machines, cache captures, or merge incrementally use the
// Snapshot API directly.
//
// All shards must share an identical configuration; ErrMismatched is
// wrapped otherwise. Only the goroutine owning each shard may snapshot it,
// so the caller must quiesce or own every shard for the duration of the
// call.
func MergedResult(shards []*Policy) ([]float64, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("qlove: no shards to merge")
	}
	merged := shards[0].Snapshot()
	for _, s := range shards[1:] {
		var err error
		if merged, err = merged.Merge(s.Snapshot()); err != nil {
			return nil, err
		}
	}
	return merged.Estimates(), nil
}

// ErrMismatched reports an attempt to merge shards with different
// configurations.
var ErrMismatched = fmt.Errorf("shards have mismatched configurations")

// sameConfig compares the fields that affect merge semantics.
func sameConfig(a, b Config) bool {
	if a.Spec != b.Spec || a.FewK != b.FewK || a.Fraction != b.Fraction ||
		a.StatThreshold != b.StatThreshold || a.HighPhiMin != b.HighPhiMin ||
		len(a.Phis) != len(b.Phis) {
		return false
	}
	for i := range a.Phis {
		if a.Phis[i] != b.Phis[i] {
			return false
		}
	}
	return true
}
