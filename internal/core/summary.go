package core

import (
	"math"
	"slices"

	"repro/internal/compress"
	"repro/internal/core/fewk"
	"repro/internal/rbtree"
	"repro/internal/stats"
)

// Summary is the Level-1 product of one completed sub-window (§3.1): the
// exact ϕ-quantiles of the sub-window plus, for each few-k-managed high
// quantile, the cached top-k values and interval samples of the tail.
type Summary struct {
	// Quantiles holds the exact sub-window ϕ-quantile per configured ϕ.
	Quantiles []float64
	// Count is the number of elements the sub-window contained.
	Count int
	// Densities estimates the underlying density at each ϕ-quantile by a
	// finite difference of neighbouring sub-window quantiles; used by the
	// Appendix A error bound. +Inf marks a point mass.
	Densities []float64
	// Tails[i] caches the k_t largest values (descending) for the i-th
	// managed high quantile.
	Tails [][]float64
	// Samples[i] holds the k_s weighted interval samples of the
	// sub-window's N(1−ϕ) largest values (descending) for the i-th
	// managed quantile.
	Samples [][]fewk.Sample
	// BurstyVsPrev[i] records whether this sub-window's cached tail was
	// detected (at seal time) as stochastically larger than the previous
	// sub-window's, per managed quantile — §4.3's burst signal. Computing
	// it once at seal keeps Result() free of repeated rank tests.
	BurstyVsPrev []bool
}

// cachedValues returns the union of the top-k cache and sample values for
// managed quantile mi, the per-sub-window pool both top-k merging and the
// burst detector consume.
func (s *Summary) cachedValues(mi int) []float64 {
	if mi >= len(s.Tails) {
		return nil
	}
	u := make([]float64, 0, len(s.Tails[mi])+len(s.Samples[mi]))
	u = append(u, s.Tails[mi]...)
	for _, sm := range s.Samples[mi] {
		if len(s.Tails[mi]) == 0 || sm.Value < s.Tails[mi][len(s.Tails[mi])-1] {
			u = append(u, sm.Value) // skip samples already in the top-k cache
		}
	}
	return u
}

// builder accumulates one in-flight sub-window: the compressed
// {value, count} red-black tree state of Algorithm 1. The scratch slices
// are reused across batches and seals, so steady-state ingestion allocates
// only what a Summary must retain.
type builder struct {
	tree  *rbtree.Tree
	quant compress.Quantizer

	qbuf     []float64 // quantized batch scratch (addBatch)
	reqs     []rankReq // fused rank requests of one seal
	ranks    []uint64  // sorted ranks handed to SelectRanks
	rankVals []float64 // SelectRanks output
	slotVals []float64 // rank answers distributed back to request slots
	los, his []float64 // density finite-difference bounds per ϕ
	tail     []float64 // shared descending tail scratch (few-k capture)

	// prevUnique is the node count retained into the current period; the
	// difference against the post-period count says how many fresh nodes
	// this period built, which drives the seal's retention decision.
	prevUnique int
}

// rankReq asks one seal traversal for the value at a 1-based rank; slot
// says where the answer goes (0..l-1: ϕ-quantiles; l+2i, l+2i+1: density
// lo/hi bounds of ϕ index i).
type rankReq struct {
	rank uint64
	slot int32
}

func newBuilder(digits int) *builder {
	return &builder{tree: rbtree.New(), quant: compress.NewQuantizer(digits)}
}

// add inserts one element, quantized to the configured significant
// digits. NaN values — telemetry glitches — are dropped: they have no
// place in an order statistic and would corrupt the tree's comparisons.
func (b *builder) add(v float64) {
	if math.IsNaN(v) {
		return
	}
	b.tree.Insert(b.quant.Quantize(v))
}

// addBatch inserts a run of elements: the whole batch is quantized into a
// reused scratch (one decade-cache pass, no per-element dispatch), then
// consecutive equal quantized values — frequent after §3.1 compression
// flattens telemetry plateaus — collapse into single InsertN tree
// descents. NaNs are dropped exactly as add does. (A full sort of the
// chunk would collapse non-adjacent duplicates too, but measures slower
// than the descents it saves on a compressed sub-window tree that is
// already cache-resident.)
func (b *builder) addBatch(vs []float64) {
	q := b.quant.AppendQuantized(b.qbuf[:0], vs)
	b.qbuf = q
	for i := 0; i < len(q); {
		v := q[i]
		if math.IsNaN(v) {
			i++
			continue
		}
		j := i + 1
		for j < len(q) && q[j] == v {
			j++
		}
		b.tree.InsertN(v, uint64(j-i))
		i = j
	}
}

// len returns the number of elements accumulated so far.
func (b *builder) len() int { return int(b.tree.Len()) }

// unique returns the resident {value, count} node count (the space cost).
func (b *builder) unique() int { return b.tree.Unique() }

// seal computes the sub-window summary and resets the builder. managed
// lists the indexes (into phis) of few-k-managed quantiles; budgets holds
// their per-sub-window plans.
//
// The seal is fused: every rank the summary needs — the l ϕ-quantiles and
// the two density finite-difference bounds per ϕ — is answered by ONE
// in-order traversal (SelectRanks), and every managed quantile's tail is a
// prefix of ONE shared descending traversal, instead of the
// l + 2l·Select + |managed| independent walks of the naive path.
func (b *builder) seal(phis []float64, managed []int, budgets []fewk.Budget, windowN int) Summary {
	n := int(b.tree.Len())
	l := len(phis)
	s := Summary{
		Quantiles: make([]float64, l),
		Count:     n,
		Densities: make([]float64, l),
		Tails:     make([][]float64, len(managed)),
		Samples:   make([][]fewk.Sample, len(managed)),
	}
	// Gather rank requests.
	reqs := b.reqs[:0]
	for i, phi := range phis {
		reqs = append(reqs, rankReq{rank: rbtree.CeilRank(phi, uint64(n)), slot: int32(i)})
	}
	b.los = growFloats(b.los, l)
	b.his = growFloats(b.his, l)
	if n >= 4 {
		for i, phi := range phis {
			h := bandwidth(phi, n)
			lo := phi - h
			if lo < 1.0/float64(n) {
				lo = 1.0 / float64(n)
			}
			hi := phi + h
			if hi > 1 {
				hi = 1
			}
			b.los[i], b.his[i] = lo, hi
			reqs = append(reqs,
				rankReq{rank: uint64(stats.CeilRank(lo, n)), slot: int32(l + 2*i)},
				rankReq{rank: uint64(stats.CeilRank(hi, n)), slot: int32(l + 2*i + 1)})
		}
	}
	b.reqs = reqs
	slices.SortFunc(reqs, func(a, c rankReq) int {
		switch {
		case a.rank < c.rank:
			return -1
		case a.rank > c.rank:
			return 1
		default:
			return 0
		}
	})
	ranks := b.ranks[:0]
	for _, r := range reqs {
		ranks = append(ranks, r.rank)
	}
	b.ranks = ranks
	b.rankVals = growFloats(b.rankVals, len(reqs))
	b.tree.SelectRanks(ranks, b.rankVals)
	b.slotVals = growFloats(b.slotVals, 3*l)
	for k, r := range reqs {
		b.slotVals[r.slot] = b.rankVals[k]
	}
	copy(s.Quantiles, b.slotVals[:l])
	// Density at each ϕ-quantile by finite difference of the empirical
	// quantile function, mirroring stats.DensityAt but reusing the tree.
	for i := range phis {
		if n < 4 {
			continue
		}
		qlo, qhi := b.slotVals[l+2*i], b.slotVals[l+2*i+1]
		if qhi <= qlo {
			s.Densities[i] = math.Inf(1)
			continue
		}
		s.Densities[i] = (b.his[i] - b.los[i]) / (qhi - qlo)
	}
	// Few-k capture: managed quantiles all want "the k largest", so one
	// shared descending walk of maxTail values serves every ϕ as a prefix.
	maxTail := 0
	for _, pi := range managed {
		if ts := tailSize(windowN, phis[pi], n); ts > maxTail {
			maxTail = ts
		}
	}
	if maxTail > 0 {
		b.tail = b.tree.AppendTopK(b.tail[:0], maxTail)
	}
	for mi, pi := range managed {
		tail := b.tail[:tailSize(windowN, phis[pi], n)]
		kt := budgets[mi].Kt
		if kt > len(tail) {
			kt = len(tail)
		}
		s.Tails[mi] = append([]float64(nil), tail[:kt]...)
		s.Samples[mi] = fewk.SampleTail(tail, budgets[mi].Ks)
	}
	b.reset(n)
	return s
}

// reset empties the tree for the next sub-window. Quantized telemetry
// re-observes mostly the same values period after period (§3.1's data
// redundancy), so when this period built few fresh nodes the node set is
// retained (ResetCounts) and the next fill runs against warm nodes and a
// valid insert cache — no allocation, no rebalancing. When the value
// population drifts (many fresh nodes) or retention has accumulated too
// large a resident set relative to the period, the tree is dropped to its
// arena (Clear) and rebuilt, bounding memory at O(period) nodes.
func (b *builder) reset(count int) {
	unique := b.tree.Unique()
	fresh := unique - b.prevUnique
	// A period that began with an empty tree gives no drift signal (every
	// node is trivially fresh), so retention starts optimistically and is
	// judged from the second period on.
	drifting := b.prevUnique > 0 && 4*fresh >= count
	if !drifting && unique <= 4*count+1024 {
		b.tree.ResetCounts()
		b.prevUnique = unique
		return
	}
	b.tree.Clear()
	b.prevUnique = 0
}

// clear empties the builder back to its as-constructed state, keeping the
// tree arena and every scratch buffer at capacity (Clear retains the
// arena; the quantizer's decade cache is stateless across values).
func (b *builder) clear() {
	b.tree.Clear()
	b.prevUnique = 0
}

// tailSize returns how deep the few-k capture reads the sub-window's tail
// for quantile phi: the N(1−ϕ) values that guarantee exactness, clamped to
// the sub-window population.
func tailSize(windowN int, phi float64, n int) int {
	ts := fewk.ExactTailSize(windowN, phi)
	if ts > n {
		ts = n
	}
	return ts
}

// growFloats returns s resized to n, reallocating only when capacity is
// insufficient.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// bandwidth mirrors stats.DensityAt's n^(-1/3) rule.
func bandwidth(phi float64, n int) float64 {
	h := math.Pow(float64(n), -1.0/3.0)
	if edge := 0.5 * math.Min(phi, 1-phi); edge > 0 && h > edge {
		h = edge
	}
	if h < 1.0/float64(n) {
		h = 1.0 / float64(n)
	}
	return h
}
