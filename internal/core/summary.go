package core

import (
	"math"

	"repro/internal/compress"
	"repro/internal/core/fewk"
	"repro/internal/rbtree"
	"repro/internal/stats"
)

// Summary is the Level-1 product of one completed sub-window (§3.1): the
// exact ϕ-quantiles of the sub-window plus, for each few-k-managed high
// quantile, the cached top-k values and interval samples of the tail.
type Summary struct {
	// Quantiles holds the exact sub-window ϕ-quantile per configured ϕ.
	Quantiles []float64
	// Count is the number of elements the sub-window contained.
	Count int
	// Densities estimates the underlying density at each ϕ-quantile by a
	// finite difference of neighbouring sub-window quantiles; used by the
	// Appendix A error bound. +Inf marks a point mass.
	Densities []float64
	// Tails[i] caches the k_t largest values (descending) for the i-th
	// managed high quantile.
	Tails [][]float64
	// Samples[i] holds the k_s weighted interval samples of the
	// sub-window's N(1−ϕ) largest values (descending) for the i-th
	// managed quantile.
	Samples [][]fewk.Sample
	// BurstyVsPrev[i] records whether this sub-window's cached tail was
	// detected (at seal time) as stochastically larger than the previous
	// sub-window's, per managed quantile — §4.3's burst signal. Computing
	// it once at seal keeps Result() free of repeated rank tests.
	BurstyVsPrev []bool
}

// cachedValues returns the union of the top-k cache and sample values for
// managed quantile mi, the per-sub-window pool both top-k merging and the
// burst detector consume.
func (s *Summary) cachedValues(mi int) []float64 {
	if mi >= len(s.Tails) {
		return nil
	}
	u := make([]float64, 0, len(s.Tails[mi])+len(s.Samples[mi]))
	u = append(u, s.Tails[mi]...)
	for _, sm := range s.Samples[mi] {
		if len(s.Tails[mi]) == 0 || sm.Value < s.Tails[mi][len(s.Tails[mi])-1] {
			u = append(u, sm.Value) // skip samples already in the top-k cache
		}
	}
	return u
}

// builder accumulates one in-flight sub-window: the compressed
// {value, count} red-black tree state of Algorithm 1.
type builder struct {
	tree  *rbtree.Tree
	quant compress.Quantizer
}

func newBuilder(digits int) *builder {
	return &builder{tree: rbtree.New(), quant: compress.NewQuantizer(digits)}
}

// add inserts one element, quantized to the configured significant
// digits. NaN values — telemetry glitches — are dropped: they have no
// place in an order statistic and would corrupt the tree's comparisons.
func (b *builder) add(v float64) {
	if math.IsNaN(v) {
		return
	}
	b.tree.Insert(b.quant.Quantize(v))
}

// len returns the number of elements accumulated so far.
func (b *builder) len() int { return int(b.tree.Len()) }

// unique returns the resident {value, count} node count (the space cost).
func (b *builder) unique() int { return b.tree.Unique() }

// seal computes the sub-window summary and resets the builder. managed
// lists the indexes (into phis) of few-k-managed quantiles; budgets holds
// their per-sub-window plans.
func (b *builder) seal(phis []float64, managed []int, budgets []fewk.Budget, windowN int) Summary {
	n := b.tree.Len()
	s := Summary{
		Quantiles: b.tree.Quantiles(phis),
		Count:     int(n),
		Densities: make([]float64, len(phis)),
		Tails:     make([][]float64, len(managed)),
		Samples:   make([][]fewk.Sample, len(managed)),
	}
	// Density at each ϕ-quantile by finite difference of the empirical
	// quantile function, mirroring stats.DensityAt but reusing the tree.
	for i, phi := range phis {
		s.Densities[i] = b.densityAt(phi)
	}
	// Few-k capture: one pass per managed quantile over the tail.
	for mi, pi := range managed {
		phi := phis[pi]
		tailSize := fewk.ExactTailSize(windowN, phi)
		if tailSize > int(n) {
			tailSize = int(n)
		}
		tail := b.tree.TopK(tailSize)
		kt := budgets[mi].Kt
		if kt > len(tail) {
			kt = len(tail)
		}
		s.Tails[mi] = append([]float64(nil), tail[:kt]...)
		s.Samples[mi] = fewk.SampleTail(tail, budgets[mi].Ks)
	}
	b.tree.Clear()
	return s
}

// densityAt estimates the sub-window density at the ϕ-quantile.
func (b *builder) densityAt(phi float64) float64 {
	n := int(b.tree.Len())
	if n < 4 {
		return 0
	}
	h := bandwidth(phi, n)
	lo := phi - h
	if lo < 1.0/float64(n) {
		lo = 1.0 / float64(n)
	}
	hi := phi + h
	if hi > 1 {
		hi = 1
	}
	qlo := b.tree.Select(uint64(stats.CeilRank(lo, n)))
	qhi := b.tree.Select(uint64(stats.CeilRank(hi, n)))
	if qhi <= qlo {
		return math.Inf(1)
	}
	return (hi - lo) / (qhi - qlo)
}

// bandwidth mirrors stats.DensityAt's n^(-1/3) rule.
func bandwidth(phi float64, n int) float64 {
	h := math.Pow(float64(n), -1.0/3.0)
	if edge := 0.5 * math.Min(phi, 1-phi); edge > 0 && h > edge {
		h = edge
	}
	if h < 1.0/float64(n) {
		h = 1.0 / float64(n)
	}
	return h
}
