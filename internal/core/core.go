package core
