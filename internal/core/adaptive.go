package core

import "repro/internal/core/fewk"

// Online budget adaptation (§4.3 notes that "several decisions made for
// traffic handling are guided by empirical study or parameters measured
// offline. Future work includes integrating these processes entirely
// online"). When Config.Adaptive is set, the policy tunes the few-k
// fraction at runtime: sustained distress — a detected burst, or a top-k
// pool too shallow to reach its read rank — grows the per-sub-window
// budget multiplicatively (up to the exact tail size), and calm periods
// decay it back toward the configured floor. New budgets apply to
// sub-windows sealed after the change; resident summaries keep the caches
// they were built with.

const (
	adaptGrow  = 1.5 // budget multiplier under distress
	adaptDecay = 0.9 // budget multiplier per calm evaluation
)

// adaptState tracks the controller per managed quantile.
type adaptState struct {
	fraction float64 // current fraction, in [floor, 1]
	floor    float64 // the configured fraction
}

// initAdaptive sets up controller state after budgets are planned.
func (p *Policy) initAdaptive() {
	if !p.cfg.Adaptive || len(p.managed) == 0 {
		return
	}
	p.adapt = make([]adaptState, len(p.managed))
	for i := range p.adapt {
		p.adapt[i] = adaptState{fraction: p.cfg.Fraction, floor: p.cfg.Fraction}
	}
}

// observeDistress updates the controller for managed quantile mi after an
// evaluation and replans its budget when the fraction moved.
func (p *Policy) observeDistress(mi int, distress bool) {
	if p.adapt == nil {
		return
	}
	st := &p.adapt[mi]
	old := st.fraction
	if distress {
		st.fraction *= adaptGrow
		if st.fraction > 1 {
			st.fraction = 1
		}
	} else {
		st.fraction *= adaptDecay
		if st.fraction < st.floor {
			st.fraction = st.floor
		}
	}
	if st.fraction == old {
		return
	}
	phi := p.cfg.Phis[p.managed[mi]]
	b, err := fewk.PlanBudget(p.cfg.Spec.Size, p.cfg.Spec.Period, phi, st.fraction)
	if err != nil {
		return // keep the previous plan; fraction stays for next round
	}
	switch {
	case p.cfg.TopKOnly:
		b = fewk.Budget{K: b.K, Kt: b.K, Ks: 0}
	case p.cfg.SampleKOnly:
		b = fewk.Budget{K: b.K, Kt: 0, Ks: b.K}
	}
	p.budgets[mi] = b
}

// CurrentFractions returns the controller's live fraction per managed
// quantile (nil when adaptation is off), for observability and tests.
func (p *Policy) CurrentFractions() []float64 {
	if p.adapt == nil {
		return nil
	}
	out := make([]float64, len(p.adapt))
	for i, st := range p.adapt {
		out[i] = st.fraction
	}
	return out
}

// poolShallow reports whether the merged top-k pool for managed quantile
// mi cannot reach its read rank — the budget-undershoot distress signal.
func (p *Policy) poolShallow(mi int) bool {
	rank := fewk.ExactTailSize(p.cfg.Spec.Size, p.cfg.Phis[p.managed[mi]])
	total := 0
	for _, l := range p.agg.cached(mi) {
		total += len(l)
		if total >= rank {
			return false
		}
	}
	return total < rank
}
