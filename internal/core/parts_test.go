package core

import (
	"math"
	"testing"

	"repro/internal/core/fewk"
	"repro/internal/window"
	"repro/internal/workload"
)

// capture builds a policy, runs data through it and returns both.
func capture(t *testing.T, cfg Config, seed int64, n int) (*Policy, Snapshot) {
	t.Helper()
	p := mustNew(t, cfg)
	p.ObserveBatch(workload.Generate(workload.NewNetMon(seed), n))
	return p, p.Snapshot()
}

// TestPartsRoundTrip: exploding a capture and rebuilding it yields a
// Snapshot whose Estimates, Estimate, Merge and accessors are bit-for-bit
// those of the original, in every few-k mode.
func TestPartsRoundTrip(t *testing.T) {
	spec := window.Spec{Size: 4000, Period: 500}
	phis := []float64{0.5, 0.9, 0.99, 0.999}
	cases := map[string]Config{
		"plain":    {Spec: spec, Phis: phis},
		"fewk":     {Spec: spec, Phis: phis, FewK: true},
		"topk":     {Spec: spec, Phis: phis, FewK: true, TopKOnly: true},
		"samplek":  {Spec: spec, Phis: phis, FewK: true, SampleKOnly: true},
		"no-quant": {Spec: spec, Phis: phis, FewK: true, Digits: -1},
	}
	for name, cfg := range cases {
		t.Run(name, func(t *testing.T) {
			_, snap := capture(t, cfg, 7, 2*spec.Size+spec.Period/3)
			rebuilt, err := NewSnapshot(snap.Parts())
			if err != nil {
				t.Fatal(err)
			}
			want, got := snap.Estimates(), rebuilt.Estimates()
			for j := range want {
				if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
					t.Fatalf("ϕ=%v: rebuilt %v != original %v", cfg.Phis[j], got[j], want[j])
				}
			}
			if rebuilt.Streams() != snap.Streams() || rebuilt.SubWindows() != snap.SubWindows() ||
				rebuilt.Elements() != snap.Elements() {
				t.Fatal("rebuilt capture shape differs")
			}

			// A rebuilt capture must merge with a live one exactly like the
			// original would (the distributed aggregation path: one side of
			// every central merge has crossed a process boundary).
			_, other := capture(t, cfg, 8, 2*spec.Size)
			viaLive, err := snap.Merge(other)
			if err != nil {
				t.Fatal(err)
			}
			viaRebuilt, err := rebuilt.Merge(other)
			if err != nil {
				t.Fatal(err)
			}
			lw, rw := viaLive.Estimates(), viaRebuilt.Estimates()
			for j := range lw {
				if math.Float64bits(lw[j]) != math.Float64bits(rw[j]) {
					t.Fatalf("merged estimates diverge at ϕ=%v: %v != %v", cfg.Phis[j], lw[j], rw[j])
				}
			}
		})
	}
}

// TestNewSnapshotRejects: every structural invariant is enforced.
func TestNewSnapshotRejects(t *testing.T) {
	spec := window.Spec{Size: 400, Period: 100}
	cfg := Config{Spec: spec, Phis: []float64{0.5, 0.99}, FewK: true}
	_, snap := capture(t, cfg, 3, spec.Size)
	ok := snap.Parts()
	if len(ok.Summaries) == 0 {
		t.Fatal("want resident summaries")
	}
	mutate := func(fn func(p *SnapshotParts)) SnapshotParts {
		p := ok
		p.Sums = append([]float64(nil), ok.Sums...)
		p.Summaries = append([]Summary(nil), ok.Summaries...)
		fn(&p)
		return p
	}
	cases := map[string]SnapshotParts{
		"zero streams":     mutate(func(p *SnapshotParts) { p.Streams = 0 }),
		"bad spec":         mutate(func(p *SnapshotParts) { p.Config.Spec.Period = 3 }),
		"no phis":          mutate(func(p *SnapshotParts) { p.Config.Phis = nil }),
		"unsorted phis":    mutate(func(p *SnapshotParts) { p.Config.Phis = []float64{0.9, 0.5} }),
		"unresolved frac":  mutate(func(p *SnapshotParts) { p.Config.Fraction = 0 }),
		"negative digits":  mutate(func(p *SnapshotParts) { p.Config.Digits = -1 }),
		"both modes":       mutate(func(p *SnapshotParts) { p.Config.TopKOnly, p.Config.SampleKOnly = true, true }),
		"sums mismatch":    mutate(func(p *SnapshotParts) { p.Sums = p.Sums[:1] }),
		"zero count":       mutate(func(p *SnapshotParts) { s := p.Summaries[0]; s.Count = 0; p.Summaries[0] = s }),
		"quantile shape":   mutate(func(p *SnapshotParts) { s := p.Summaries[0]; s.Quantiles = s.Quantiles[:1]; p.Summaries[0] = s }),
		"density shape":    mutate(func(p *SnapshotParts) { s := p.Summaries[0]; s.Densities = nil; p.Summaries[0] = s }),
		"tail shape":       mutate(func(p *SnapshotParts) { s := p.Summaries[0]; s.Tails = nil; p.Summaries[0] = s }),
		"sample shape":     mutate(func(p *SnapshotParts) { s := p.Summaries[0]; s.Samples = append(s.Samples, nil); p.Summaries[0] = s }),
		"burst shape":      mutate(func(p *SnapshotParts) { s := p.Summaries[0]; s.BurstyVsPrev = []bool{true, false}; p.Summaries[0] = s }),
		"oversized tail":   mutate(func(p *SnapshotParts) { s := p.Summaries[0]; s.Count = len(s.Tails[0]) - 1; p.Summaries[0] = s }),
		"zero weight":      mutate(func(p *SnapshotParts) { s := p.Summaries[0]; s.Samples = [][]fewk.Sample{{{Value: 1, Weight: 0}}}; p.Summaries[0] = s }),
		"oversized weight": mutate(func(p *SnapshotParts) { s := p.Summaries[0]; s.Samples = [][]fewk.Sample{{{Value: 1, Weight: s.Count + 1}}}; p.Summaries[0] = s }),
	}
	for name, parts := range cases {
		if _, err := NewSnapshot(parts); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// The unmodified parts still round-trip (the mutate harness itself is
	// not what fails the cases above).
	if _, err := NewSnapshot(mutate(func(*SnapshotParts) {})); err != nil {
		t.Fatalf("pristine parts rejected: %v", err)
	}
}

// TestSnapshotEstimate: the single-ϕ convenience against its guards.
func TestSnapshotEstimate(t *testing.T) {
	if _, ok := (Snapshot{}).Estimate(0.5); ok {
		t.Fatal("zero snapshot answered")
	}
	spec := window.Spec{Size: 1000, Period: 250}
	cfg := Config{Spec: spec, Phis: []float64{0.5, 0.99}, FewK: true}
	_, snap := capture(t, cfg, 11, spec.Size)
	all := snap.Estimates()
	for i, phi := range cfg.Phis {
		got, ok := snap.Estimate(phi)
		if !ok || math.Float64bits(got) != math.Float64bits(all[i]) {
			t.Fatalf("ϕ=%v: got %v ok=%v, want %v", phi, got, ok, all[i])
		}
	}
	// Unknown ϕ — including ones BETWEEN configured ϕs — must refuse, not
	// interpolate.
	for _, phi := range []float64{0.25, 0.75, 0.995, 1} {
		if _, ok := snap.Estimate(phi); ok {
			t.Fatalf("unconfigured ϕ=%v answered", phi)
		}
	}
	// An empty (but non-zero) capture answers configured ϕs with zeros.
	p := mustNew(t, cfg)
	if v, ok := p.Snapshot().Estimate(0.5); !ok || v != 0 {
		t.Fatalf("empty capture: got %v ok=%v", v, ok)
	}
}
