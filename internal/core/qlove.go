// Package core implements QLOVE — approximate Quantiles with LOw Value
// Error — the primary contribution of the paper. QLOVE partitions a
// sliding window into period-aligned sub-windows; Level 1 computes each
// sub-window's exact quantiles from a compressed {value, count} red-black
// tree (Algorithm 1), Level 2 averages the sub-window quantiles across the
// window (justified by the CLT, Appendix A), and few-k merging (§4)
// repairs high quantiles under statistical inefficiency and bursty
// traffic by retaining a few tail values per sub-window.
package core

import (
	"fmt"

	"repro/internal/core/fewk"
	"repro/internal/exact"
	"repro/internal/stats"
	"repro/internal/window"
)

// Config parameterizes a QLOVE policy. The zero value of optional fields
// selects the paper's defaults.
type Config struct {
	// Spec is the window specification (size and period in elements).
	Spec window.Spec
	// Phis are the quantiles to answer, sorted non-decreasing, in (0, 1].
	Phis []float64
	// Digits is the number of significant decimal digits kept by value
	// compression (§3.1). 0 applies the paper's default of 3; negative
	// disables quantization.
	Digits int
	// FewK enables few-k merging (§4). The paper's §5.2 comparison runs
	// with it disabled; §5.3 enables it.
	FewK bool
	// Fraction scales each sub-window's few-k cache relative to the
	// N(1−ϕ) values that guarantee exactness (Tables 3–4). Default 0.5.
	Fraction float64
	// StatThreshold is T_s in §4.3: top-k merging activates for ϕ with
	// P(1−ϕ) < T_s. Default 10.
	StatThreshold float64
	// BurstAlpha is the significance level of the Mann–Whitney burst
	// detector. Default 0.05.
	BurstAlpha float64
	// HighPhiMin is the smallest ϕ eligible for few-k management.
	// Default 0.95.
	HighPhiMin float64
	// TopKOnly devotes the entire few-k budget to the top-k pipeline
	// (k_t = k, k_s = 0), matching the paper's Table 3 experiment.
	TopKOnly bool
	// SampleKOnly devotes the entire budget to interval sampling
	// (k_t = 0, k_s = k) and always reads the sample-k outcome for
	// managed quantiles, matching Table 4. Mutually exclusive with
	// TopKOnly.
	SampleKOnly bool
	// Adaptive enables the online budget controller (the paper's §4.3
	// future-work direction): the few-k fraction grows under detected
	// bursts or budget undershoot and decays back when traffic calms.
	Adaptive bool
}

// withDefaults resolves zero-valued optional fields.
func (c Config) withDefaults() Config {
	if c.Digits == 0 {
		c.Digits = 3
	}
	if c.Digits < 0 {
		c.Digits = 0 // quantizer identity
	}
	if c.Fraction == 0 {
		c.Fraction = 0.5
	}
	if c.StatThreshold == 0 {
		c.StatThreshold = fewk.DefaultStatThreshold
	}
	if c.BurstAlpha == 0 {
		c.BurstAlpha = fewk.DefaultBurstAlpha
	}
	if c.HighPhiMin == 0 {
		c.HighPhiMin = 0.95
	}
	return c
}

// Policy is the QLOVE sliding-window multi-quantile operator. It
// implements the stream.Policy contract.
type Policy struct {
	cfg     Config
	builder *builder
	agg     *level2

	// managed[i] is the index into cfg.Phis of the i-th few-k-managed
	// quantile; budgets[i] its per-sub-window plan.
	managed []int
	budgets []fewk.Budget

	// baseBudgets preserves the as-planned budgets when the adaptive
	// controller may mutate budgets at runtime, so Reset can restore a
	// recycled operator to its exact initial plan.
	baseBudgets []fewk.Budget

	// prev is the most recently sealed summary (resident or not); the
	// burst detector compares each new sub-window against it.
	prev *Summary

	// burstActive[i] records, per managed quantile, whether the last
	// evaluation detected bursty traffic (exported for observability).
	burstActive []bool

	// adapt holds the online budget controller state when Config.Adaptive
	// is set (nil otherwise).
	adapt []adaptState

	// sealGen counts the summaries sealed since construction (or the last
	// Reset) — the monotonic per-operator generation clock delta exports
	// cursor against. Summary g (1-based) stays resident until it slides
	// out of the window, so a capture taken at generation G holds exactly
	// the last SubWindowCount() generations (G-count, G].
	sealGen uint64
}

// New returns a QLOVE policy for the given configuration.
func New(cfg Config) (*Policy, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if err := exact.ValidatePhis(cfg.Phis); err != nil {
		return nil, fmt.Errorf("qlove: %w", err)
	}
	if cfg.Fraction < 0 || cfg.Fraction > 1 {
		return nil, fmt.Errorf("qlove: fraction %v outside (0, 1]", cfg.Fraction)
	}
	if cfg.TopKOnly && cfg.SampleKOnly {
		return nil, fmt.Errorf("qlove: TopKOnly and SampleKOnly are mutually exclusive")
	}
	cfg.Phis = append([]float64(nil), cfg.Phis...)
	p := &Policy{
		cfg:     cfg,
		builder: newBuilder(cfg.Digits),
		agg:     newLevel2(len(cfg.Phis)),
	}
	if cfg.FewK {
		p.managed = managedIndexes(cfg)
		for _, i := range p.managed {
			b, err := fewk.PlanBudget(cfg.Spec.Size, cfg.Spec.Period, cfg.Phis[i], cfg.Fraction)
			if err != nil {
				return nil, err
			}
			switch {
			case cfg.TopKOnly:
				b = fewk.Budget{K: b.K, Kt: b.K, Ks: 0}
			case cfg.SampleKOnly:
				b = fewk.Budget{K: b.K, Kt: 0, Ks: b.K}
			}
			p.budgets = append(p.budgets, b)
		}
		p.burstActive = make([]bool, len(p.managed))
		if cfg.Adaptive {
			p.baseBudgets = append([]fewk.Budget(nil), p.budgets...)
		}
		p.initAdaptive()
	}
	return p, nil
}

// managedIndexes derives, from a RESOLVED configuration, which ϕ indexes
// are under few-k management: every configured ϕ in [HighPhiMin, 1) when
// FewK is enabled. It is the single source of truth shared by New and
// NewSnapshot, so a capture rebuilt from serialized parts recomputes
// exactly the managed set its source operator ran with.
func managedIndexes(cfg Config) []int {
	if !cfg.FewK {
		return nil
	}
	var out []int
	for i, phi := range cfg.Phis {
		if phi >= cfg.HighPhiMin && phi < 1 {
			out = append(out, i)
		}
	}
	return out
}

// Reset returns the operator to its as-constructed state while keeping
// every internal buffer — the Level-1 tree arena, quantization scratch and
// Level-2 summary slots — at capacity, so a recycled operator ingests its
// first sub-window with zero heap allocations. It is the enabler for
// operator pooling: an engine monitoring (and evicting) millions of keys
// hands retired operators back to a Pool instead of rebuilding arenas from
// scratch. After Reset the operator is observationally indistinguishable
// from a freshly constructed one with the same Config.
func (p *Policy) Reset() {
	p.builder.clear()
	p.agg.reset()
	p.prev = nil
	for i := range p.burstActive {
		p.burstActive[i] = false
	}
	if p.baseBudgets != nil {
		copy(p.budgets, p.baseBudgets)
	}
	p.sealGen = 0
	p.initAdaptive()
}

// ExpiresWholeSummaries implements stream.SummaryExpirer: QLOVE expires a
// whole sub-window summary per period and never reads the Expire slice, so
// per-stream front ends can skip the O(N) replay ring.
func (p *Policy) ExpiresWholeSummaries() bool { return true }

// Name implements stream.Policy.
func (p *Policy) Name() string { return "QLOVE" }

// Config returns the resolved configuration.
func (p *Policy) Config() Config { return p.cfg }

// Observe implements stream.Policy: Level-1 accumulation. A completed
// sub-window seals into a summary handed to Level 2 — a tumbling window
// inside the sliding window, so raw values never need deaccumulation.
func (p *Policy) Observe(v float64) {
	p.builder.add(v)
	if p.builder.len() == p.cfg.Spec.Period {
		p.EndPeriod()
	}
}

// ObserveBatch implements stream.Policy: the native batch ingestion path.
// Each period-bounded chunk is quantized in one pass over a reused scratch
// (amortizing the decade lookup across the batch), and consecutive equal
// quantized values collapse into single InsertN descents — one descent per
// run, not per element. Sub-windows seal exactly where the
// element-at-a-time path would seal, so evaluations are bit-identical to
// repeated Observe calls. NaN elements are dropped and (as in Observe) do
// not advance the period.
func (p *Policy) ObserveBatch(vs []float64) {
	for len(vs) > 0 {
		chunk := vs
		if room := p.cfg.Spec.Period - p.builder.len(); len(chunk) > room {
			chunk = chunk[:room]
		}
		p.builder.addBatch(chunk)
		if p.builder.len() == p.cfg.Spec.Period {
			p.EndPeriod()
		}
		vs = vs[len(chunk):]
	}
}

// Expire implements stream.Policy: one whole sub-window summary is
// deaccumulated per period in O(l) — QLOVE's answer to the Exact
// baseline's per-element deaccumulation cost.
func (p *Policy) Expire([]float64) { p.agg.deaccumulate() }

// EndPeriod force-seals the in-flight sub-window even when it holds fewer
// than Period elements. Time-driven deployments (§2's "evaluate every one
// minute for the elements seen last one hour") call this at each period
// boundary, where sub-window populations vary with traffic; the Level-2
// estimator is unchanged (the CLT argument of Appendix A holds for
// variable m). An empty sub-window is skipped entirely — its quantiles
// are undefined and it carries no information.
func (p *Policy) EndPeriod() {
	if p.builder.len() == 0 {
		return
	}
	s := p.builder.seal(p.cfg.Phis, p.managed, p.budgets, p.cfg.Spec.Size)
	if len(p.managed) > 0 {
		s.BurstyVsPrev = make([]bool, len(p.managed))
		if p.prev != nil {
			alpha := p.cfg.BurstAlpha
			if pairs := p.cfg.Spec.SubWindows() - 1; pairs > 1 {
				alpha /= float64(pairs)
			}
			for mi := range p.managed {
				s.BurstyVsPrev[mi] = fewk.DetectBurst(
					s.cachedValues(mi), p.prev.cachedValues(mi), alpha)
			}
		}
	}
	p.agg.accumulate(s)
	p.prev = &s
	p.sealGen++
}

// SealGen returns the operator's seal-generation clock: how many sub-window
// summaries it has sealed since construction (or the last Reset). The clock
// only advances when a summary seals, so an unchanged SealGen means an
// unchanged Snapshot — the invariant incremental (delta) exports rely on to
// skip idle keys.
func (p *Policy) SealGen() uint64 { return p.sealGen }

// Result implements stream.Policy. Non-high quantiles come from the
// Level-2 average; few-k-managed quantiles select between Level 2, top-k
// merging and sample-k merging per §4.3.
func (p *Policy) Result() []float64 {
	out := make([]float64, len(p.cfg.Phis))
	if p.agg.count() == 0 {
		return out
	}
	for i := range p.cfg.Phis {
		out[i] = p.agg.estimate(i)
	}
	for mi, pi := range p.managed {
		phi := p.cfg.Phis[pi]
		level2 := out[pi]
		topK, topOK := fewk.TopKMerge(p.agg.cached(mi), p.cfg.Spec.Size, phi)
		sampleK, sampOK := fewk.SampleKMerge(p.agg.samples(mi), p.cfg.Spec.Size, phi)
		burst := p.agg.anyBursty(mi)
		p.burstActive[mi] = burst
		if p.adapt != nil {
			p.observeDistress(mi, burst || p.poolShallow(mi))
		}
		statIneff := fewk.NeedsTopK(p.cfg.Spec.Period, phi, p.cfg.StatThreshold)
		if p.cfg.SampleKOnly && sampOK {
			// Table 4 mode: the sample-k pipeline answers managed
			// quantiles unconditionally.
			out[pi] = sampleK
			continue
		}
		out[pi] = fewk.Outcome(level2, topK, topOK, sampleK, sampOK, burst, statIneff)
	}
	return out
}

// BurstDetected reports whether the most recent evaluation flagged bursty
// traffic for any managed quantile.
func (p *Policy) BurstDetected() bool {
	for _, b := range p.burstActive {
		if b {
			return true
		}
	}
	return false
}

// ErrorBounds returns the Appendix A probabilistic bound on |ya − ye| at
// confidence 1−alpha for each configured quantile, instantiated with the
// mean sub-window density estimate. A zero entry means the bound is not
// informative (no usable density estimate yet).
func (p *Policy) ErrorBounds(alpha float64) []float64 {
	out := make([]float64, len(p.cfg.Phis))
	n := p.agg.count()
	if n == 0 {
		return out
	}
	for i, phi := range p.cfg.Phis {
		f := p.agg.meanDensity(i)
		if f <= 0 {
			continue
		}
		out[i] = stats.CLTErrorBound(phi, n, p.cfg.Spec.Period, f, alpha)
	}
	return out
}

// SpaceUsage implements stream.Policy: the in-flight tree's {value, count}
// nodes plus every resident summary slot (the paper's l(N/P) + O(P) space
// model, with O(P) shrunk by data redundancy and few-k storage added).
func (p *Policy) SpaceUsage() int {
	return p.builder.unique() + p.agg.spaceUsage()
}

// FewKSpace returns the number of resident few-k cache entries (tail
// values plus samples), the space the paper's Tables 3–4 report.
func (p *Policy) FewKSpace() int { return p.agg.fewkSpace() }

// SubWindowCount returns the number of resident sub-window summaries.
func (p *Policy) SubWindowCount() int { return p.agg.count() }

// ManagedQuantiles returns the ϕ values under few-k management.
func (p *Policy) ManagedQuantiles() []float64 {
	out := make([]float64, len(p.managed))
	for i, pi := range p.managed {
		out[i] = p.cfg.Phis[pi]
	}
	return out
}
