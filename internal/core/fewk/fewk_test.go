package fewk

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestExactTailSize(t *testing.T) {
	cases := []struct {
		n    int
		phi  float64
		want int
	}{
		{128000, 0.999, 129}, // N − ⌈ϕN⌉ + 1 = 128000 − 127872 + 1
		{128000, 0.99, 1281},
		{100000, 0.999, 101},
		{1000, 0.9999, 1},
		{100, 0.5, 51},
	}
	for _, c := range cases {
		if got := ExactTailSize(c.n, c.phi); got != c.want {
			t.Errorf("ExactTailSize(%d, %v) = %d, want %d", c.n, c.phi, got, c.want)
		}
	}
}

func TestNeedsTopK(t *testing.T) {
	// P(1-phi) < 10: with P=16K, phi=0.999 -> 16 >= 10 -> no top-k needed.
	if NeedsTopK(16000, 0.999, 10) {
		t.Error("16K period Q0.999 flagged, want not")
	}
	// P=8K, phi=0.999 -> 8 < 10 -> top-k needed (paper: periods < 16K).
	if !NeedsTopK(8000, 0.999, 10) {
		t.Error("8K period Q0.999 not flagged")
	}
	// Q0.5 never needs top-k at realistic periods.
	if NeedsTopK(1000, 0.5, 10) {
		t.Error("Q0.5 flagged at 1K period")
	}
}

func TestPlanBudget(t *testing.T) {
	// Paper's Table 3 setting: window 128K, phi 0.999 -> exact cache 128;
	// fraction 0.1 -> k = 13.
	b, err := PlanBudget(128000, 1000, 0.999, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if b.K != 13 {
		t.Fatalf("K = %d, want 13", b.K)
	}
	if b.Kt != 7 { // half-budget floor dominates 2·P(1-phi) = 2
		t.Fatalf("Kt = %d, want 7", b.Kt)
	}
	if b.Ks != 6 {
		t.Fatalf("Ks = %d, want 6", b.Ks)
	}
	// Fraction 1 -> exact budget, all of it in the contiguous cache.
	b, _ = PlanBudget(128000, 1000, 0.999, 1)
	if b.K != 129 || b.Kt != 129 || b.Ks != 0 {
		t.Fatalf("full-fraction budget = %+v", b)
	}
}

func TestPlanBudgetKtDominatesAtLowPhi(t *testing.T) {
	// Large P(1-phi) relative to budget: kt is clamped to k.
	b, err := PlanBudget(1000, 500, 0.9, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// exact = 100, k = 10, P(1-phi) = 50 -> kt clamped to 10, ks = 0.
	if b.K != 10 || b.Kt != 10 || b.Ks != 0 {
		t.Fatalf("budget = %+v", b)
	}
}

func TestPlanBudgetValidation(t *testing.T) {
	if _, err := PlanBudget(100, 10, 0.99, 0); err == nil {
		t.Fatal("fraction 0 accepted")
	}
	if _, err := PlanBudget(100, 10, 0.99, 1.5); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
	if _, err := PlanBudget(5, 10, 0.99, 0.5); err == nil {
		t.Fatal("window < period accepted")
	}
}

func TestSampleTail(t *testing.T) {
	tail := []float64{100, 90, 80, 70, 60, 50, 40, 30, 20, 10} // descending
	s := SampleTail(tail, 5)
	if len(s) != 5 {
		t.Fatalf("sampled %d values, want 5", len(s))
	}
	// Evenly spaced 1-based ranks anchored at both ends:
	// 1, 1+round(9/4)=3, 1+round(18/4)=6, 1+round(27/4)=8, 10.
	wantV := []float64{100, 80, 50, 30, 10}
	wantW := []int{1, 2, 3, 2, 2}
	var wsum int
	for i := range wantV {
		if s[i].Value != wantV[i] || s[i].Weight != wantW[i] {
			t.Fatalf("sample = %v, want values %v weights %v", s, wantV, wantW)
		}
		wsum += s[i].Weight
	}
	// Weights tile the sampled rank range exactly.
	if wsum != 10 {
		t.Fatalf("weights sum to %d, want 10", wsum)
	}
	// Both anchors always present.
	if s[0].Value != tail[0] || s[len(s)-1].Value != tail[len(tail)-1] {
		t.Fatal("samples not anchored at both ends")
	}
}

func TestSampleTailEdge(t *testing.T) {
	if got := SampleTail(nil, 5); got != nil {
		t.Fatalf("nil tail sample = %v", got)
	}
	if got := SampleTail([]float64{5}, 0); got != nil {
		t.Fatalf("ks=0 sample = %v", got)
	}
	// ks >= len: full copy with unit weights.
	got := SampleTail([]float64{3, 2, 1}, 10)
	if len(got) != 3 || got[0].Value != 3 || got[0].Weight != 1 {
		t.Fatalf("oversized ks sample = %v", got)
	}
	// ks == 1: single deepest value carrying the whole tail weight.
	got = SampleTail([]float64{9, 8, 7, 6}, 1)
	if len(got) != 1 || got[0].Value != 6 || got[0].Weight != 4 {
		t.Fatalf("ks=1 sample = %v", got)
	}
}

func TestSampleTailAlwaysIncludesDeepValues(t *testing.T) {
	// Interval sampling must span the whole tail, not just its head.
	tail := make([]float64, 100)
	for i := range tail {
		tail[i] = float64(100 - i)
	}
	s := SampleTail(tail, 4)
	if s[len(s)-1].Value != 1 {
		t.Fatalf("deepest sample = %v, want the tail end value 1", s[len(s)-1])
	}
}

func TestTopKMergeExactWhenBudgetFull(t *testing.T) {
	// With each sub-window caching all its N(1-phi) largest, top-k merge
	// reproduces the exact quantile regardless of distribution pattern
	// (E1..E4 in Figure 3).
	rng := rand.New(rand.NewSource(1))
	const n = 10000
	const subs = 10
	const phi = 0.999
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.Float64() * 1e6
	}
	// E1: all largest in sub-window 0 (sorted data).
	sorted := append([]float64(nil), data...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	for name, arrange := range map[string][]float64{
		"E1-burst": sorted,
		"E4-even":  data,
	} {
		lists := make([][]float64, subs)
		per := n / subs
		k := ExactTailSize(n, phi) // full budget
		for s := 0; s < subs; s++ {
			sub := append([]float64(nil), arrange[s*per:(s+1)*per]...)
			sort.Sort(sort.Reverse(sort.Float64Slice(sub)))
			if len(sub) > k {
				sub = sub[:k]
			}
			lists[s] = sub
		}
		got, ok := TopKMerge(lists, n, phi)
		if !ok {
			t.Fatalf("%s: no result", name)
		}
		wantRank := ExactTailSize(n, phi)
		want := sorted[wantRank-1]
		if got != want {
			t.Errorf("%s: TopKMerge = %v, want exact %v", name, got, want)
		}
	}
}

func TestTopKMergeEmpty(t *testing.T) {
	if _, ok := TopKMerge(nil, 1000, 0.99); ok {
		t.Fatal("empty merge returned ok")
	}
	if _, ok := TopKMerge([][]float64{{}, {}}, 1000, 0.99); ok {
		t.Fatal("empty lists returned ok")
	}
}

func TestTopKMergeClampsRank(t *testing.T) {
	// Budget smaller than N(1-phi): falls back to the smallest cached.
	got, ok := TopKMerge([][]float64{{100, 90}, {80}}, 10000, 0.99) // wants rank 100
	if !ok || got != 80 {
		t.Fatalf("clamped merge = %v, %v", got, ok)
	}
}

func TestSampleKMergeUniformTail(t *testing.T) {
	// The window's top values (1000, 1001, ...) are spread evenly over 10
	// sub-windows; each sub-window interval-samples half of its share.
	// The merged sample-k read must land near the exact Q0.999, i.e. near
	// the deepest tail value 1000.
	const n = 100000
	const subs = 10
	const phi = 0.999
	exactTail := ExactTailSize(n, phi) // 101
	perSub := (exactTail + subs - 1) / subs
	var samples [][]Sample
	v := 1000.0
	for s := 0; s < subs; s++ {
		var tail []float64
		for i := 0; i < perSub; i++ {
			tail = append(tail, v)
			v++
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(tail)))
		samples = append(samples, SampleTail(tail, perSub/2))
	}
	got, ok := SampleKMerge(samples, n, phi)
	if !ok {
		t.Fatal("no result")
	}
	want := 1000.0 // the exact Q0.999 is the deepest tail value
	if math.Abs(got-want) > 2*float64(subs) {
		t.Fatalf("SampleKMerge = %v, want ≈ %v", got, want)
	}
}

func TestSampleKMergeEmpty(t *testing.T) {
	if _, ok := SampleKMerge(nil, 1000, 0.99); ok {
		t.Fatal("empty sample merge returned ok")
	}
}

func TestSampleKMergePureBurstExact(t *testing.T) {
	// E1: one sub-window holds the entire window tail; with the deepest
	// rank anchored, the weighted read recovers the exact quantile.
	const n = 10000
	const phi = 0.999
	tailRank := ExactTailSize(n, phi) // 11
	tail := make([]float64, tailRank)
	for i := range tail {
		tail[i] = float64(100000 - i*1000) // descending
	}
	samples := [][]Sample{SampleTail(tail, 5)}
	got, ok := SampleKMerge(samples, n, phi)
	if !ok {
		t.Fatal("no result")
	}
	if got != tail[tailRank-1] {
		t.Fatalf("pure-burst SampleKMerge = %v, want exact %v", got, tail[tailRank-1])
	}
}

func TestSampleValues(t *testing.T) {
	vs := SampleValues([]Sample{{Value: 3, Weight: 2}, {Value: 1, Weight: 5}})
	if len(vs) != 2 || vs[0] != 3 || vs[1] != 1 {
		t.Fatalf("SampleValues = %v", vs)
	}
}

func TestDetectBurst(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	prev := make([]float64, 30)
	cur := make([]float64, 30)
	for i := range prev {
		prev[i] = 1000 + rng.NormFloat64()*50
		cur[i] = 10000 + rng.NormFloat64()*500 // 10x burst
	}
	if !DetectBurst(cur, prev, DefaultBurstAlpha) {
		t.Fatal("10x burst not detected")
	}
	if DetectBurst(prev, cur, DefaultBurstAlpha) {
		t.Fatal("reverse direction flagged")
	}
	if DetectBurst(nil, prev, DefaultBurstAlpha) {
		t.Fatal("empty current flagged")
	}
}

func TestOutcomeSelection(t *testing.T) {
	cases := []struct {
		burst, statIneff bool
		topOK, sampOK    bool
		want             float64
	}{
		{false, false, true, true, 1}, // calm: level2
		{false, true, true, true, 2},  // inefficiency: top-k
		{true, false, true, true, 3},  // burst: sample-k
		{true, true, true, true, 3},   // burst wins over inefficiency
		{true, false, true, false, 1}, // burst but no samples: level2
		{false, true, false, true, 1}, // inefficiency but no top-k: level2
	}
	for i, c := range cases {
		got := Outcome(1, 2, c.topOK, 3, c.sampOK, c.burst, c.statIneff)
		if got != c.want {
			t.Errorf("case %d: Outcome = %v, want %v", i, got, c.want)
		}
	}
}

// Property: SampleTail output is a subsequence of the tail and descending.
func TestQuickSampleTailSubsequence(t *testing.T) {
	f := func(raw []uint16, ksSeed uint8) bool {
		if len(raw) == 0 {
			return true
		}
		tail := make([]float64, len(raw))
		for i, r := range raw {
			tail[i] = float64(r)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(tail)))
		ks := int(ksSeed%16) + 1
		s := SampleTail(tail, ks)
		if len(s) == 0 || len(s) > ks {
			return false
		}
		// Values form a subsequence of the tail, and weights tile the
		// rank range up to the deepest sampled rank without overlap.
		j := 0
		wsum := 0
		for _, sm := range s {
			for j < len(tail) && tail[j] != sm.Value {
				j++
			}
			if j == len(tail) || sm.Weight < 1 {
				return false
			}
			j++
			wsum += sm.Weight
		}
		return wsum <= len(tail)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: TopKMerge with full lists equals exact order statistic.
func TestQuickTopKMergeExact(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 20 {
			return true
		}
		n := len(raw) - len(raw)%4
		data := make([]float64, n)
		for i := 0; i < n; i++ {
			data[i] = float64(raw[i])
		}
		phi := 0.9
		k := ExactTailSize(n, phi)
		per := n / 4
		var lists [][]float64
		for s := 0; s < 4; s++ {
			sub := append([]float64(nil), data[s*per:(s+1)*per]...)
			sort.Sort(sort.Reverse(sort.Float64Slice(sub)))
			if len(sub) > k {
				sub = sub[:k]
			}
			lists = append(lists, sub)
		}
		got, ok := TopKMerge(lists, n, phi)
		if !ok {
			return false
		}
		sorted := append([]float64(nil), data...)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		return got == sorted[k-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
