// Package fewk implements QLOVE's few-k merging (§4): the machinery that
// repairs high-quantile estimates when sub-window averaging breaks down.
// Each sub-window retains a few of its largest raw values; at window level
// these are merged to answer high quantiles directly.
//
// Two merging pipelines run side by side:
//
//   - Top-k merging (statistical inefficiency): each sub-window caches its
//     k_t largest values; the merged pool answers the ϕ-quantile by its
//     N(1−ϕ)-th largest element.
//   - Sample-k merging (bursty traffic): each sub-window interval-samples
//     k_s of its N(1−ϕ) largest values; after merging, the answer is read
//     at rank ⌈α·N(1−ϕ)⌉ to factor in the sampling-rate reduction α.
//
// Bursty traffic is detected by a one-sided Mann–Whitney U test comparing
// the newest sub-window's sampled tail against the previous sub-window's
// (§4.3); when flagged, the sample-k outcome takes priority.
package fewk

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// DefaultStatThreshold is T_s, the paper's threshold on P(1−ϕ) below which
// a sub-window has too few tail points for robust estimation (§4.3).
const DefaultStatThreshold = 10

// DefaultBurstAlpha is the significance level of the burst detector.
const DefaultBurstAlpha = 0.05

// ExactTailSize returns the exact from-the-top rank of the ϕ-quantile in a
// window of N elements: N − ⌈ϕN⌉ + 1. The paper writes this as N(1−ϕ);
// the +1 keeps the read rank consistent with the ⌈ϕN⌉ quantile definition
// (at ϕ = 0.999, N = 16000 the difference is rank 16 vs 17 — several
// percent of value on a Pareto tail). It is both the per-sub-window cache
// size that guarantees exactness under worst-case burst (E1 in Figure 3)
// and the window-level read rank.
func ExactTailSize(windowN int, phi float64) int {
	k := windowN - stats.CeilRank(phi, windowN) + 1
	if k < 1 {
		k = 1
	}
	return k
}

// NeedsTopK reports whether the ϕ-quantile suffers statistical
// inefficiency at sub-window size periodP (the paper's P(1−ϕ) < T_s rule).
func NeedsTopK(periodP int, phi float64, threshold float64) bool {
	return float64(periodP)*(1-phi) < threshold
}

// Budget is the per-sub-window space plan for one high quantile.
type Budget struct {
	K  int // total per-sub-window budget (k = k_t + k_s)
	Kt int // top-k share: the k_t largest values, cached exactly
	Ks int // sample-k share: interval samples of the N(1−ϕ) largest
}

// PlanBudget derives the paper's §4.2 budget split for one ϕ-quantile:
// fraction scales the per-sub-window cache relative to the N(1−ϕ) values
// that would guarantee exactness (fraction 1 ⇒ exact). k_t uses the
// paper's conservative sizing — twice the evenly-spread share P(1−ϕ),
// covering the E2 pattern of Figure 3 — and the remainder goes to k_s
// (which is "typically larger than k_t", §4.2). fraction must lie in
// (0, 1].
func PlanBudget(windowN, periodP int, phi, fraction float64) (Budget, error) {
	if fraction <= 0 || fraction > 1 {
		return Budget{}, fmt.Errorf("fewk: fraction %v outside (0, 1]", fraction)
	}
	if windowN < periodP || periodP < 1 {
		return Budget{}, fmt.Errorf("fewk: bad window %d / period %d", windowN, periodP)
	}
	exact := ExactTailSize(windowN, phi)
	k := int(math.Round(fraction * float64(exact)))
	if k < 1 {
		k = 1
	}
	// Budget covering the whole worst-case tail: the contiguous top-k
	// cache alone guarantees the exact answer for any pattern E1–E4
	// (§4.2), so sampling is unnecessary.
	if k >= exact {
		return Budget{K: k, Kt: k, Ks: 0}, nil
	}
	// Conservative E2 sizing (twice the evenly-spread share), floored at
	// half the budget so the contiguous cache stays deep enough to absorb
	// ordinary clustering of tail values.
	kt := 2 * int(math.Round(float64(periodP)*(1-phi)))
	if half := (k + 1) / 2; kt < half {
		kt = half
	}
	if kt > k {
		kt = k
	}
	return Budget{K: k, Kt: kt, Ks: k - kt}, nil
}

// Sample is one retained interval sample of a sub-window's tail: Value is
// the element at some rank r of the descending-sorted tail, and Weight is
// the number of tail ranks it represents (the gap back to the previous
// sampled rank). Weights let the window-level merge reconstruct global
// ranks exactly, whatever sampling rate each sub-window used.
type Sample struct {
	Value  float64
	Weight int
}

// SampleTail interval-samples exactly min(ks, len) values from tail, which
// must hold a sub-window's largest values sorted in descending order (at
// most N(1−ϕ) of them). Samples are evenly spaced over the ranked tail and
// anchored at BOTH ends — the first sample is the sub-window's maximum and
// the last its deepest tail value. Anchoring the maximum matters when
// burst values from one sub-window interleave with other sub-windows'
// ordinary maxima (the realistic burst pattern): the global quantile then
// sits near another sub-window's top ranks, which midpoint-phased sampling
// systematically misses. Anchoring the deepest rank keeps the merged read
// exact under the pure E1 burst. Returns nil when ks <= 0 or the tail is
// empty.
func SampleTail(tail []float64, ks int) []Sample {
	if ks <= 0 || len(tail) == 0 {
		return nil
	}
	n := len(tail)
	if ks >= n {
		out := make([]Sample, n)
		for i, v := range tail {
			out[i] = Sample{Value: v, Weight: 1}
		}
		return out
	}
	if ks == 1 {
		return []Sample{{Value: tail[n-1], Weight: n}}
	}
	out := make([]Sample, 0, ks)
	prev := 0
	for i := 0; i < ks; i++ {
		r := 1 + int(math.Round(float64(i)*float64(n-1)/float64(ks-1)))
		out = append(out, Sample{Value: tail[r-1], Weight: r - prev})
		prev = r
	}
	return out
}

// TopKMerge merges the cached top-k lists of all sub-windows (each sorted
// descending) and answers the ϕ-quantile of a window of size windowN by
// its N(1−ϕ)-th largest merged value. When fewer values are available the
// smallest merged value is returned (the paper's behaviour when the budget
// undershoots a burst). Returns ok=false when no values are cached.
//
// The merge walks a max-heap of list heads and stops at the read rank, so
// the per-evaluation cost is O(rank·log L) for L sub-windows instead of
// sorting every cached value.
func TopKMerge(lists [][]float64, windowN int, phi float64) (float64, bool) {
	h := newHeadHeap(lists)
	if h.empty() {
		return 0, false
	}
	rank := ExactTailSize(windowN, phi)
	var last float64
	for i := 0; i < rank; i++ {
		v, ok := h.pop()
		if !ok {
			break // budget undershoot: fall back to the smallest seen
		}
		last = v
	}
	return last, true
}

// SampleKMerge merges the weighted interval samples of all sub-windows and
// answers the ϕ-quantile of a window of size windowN: samples are sorted
// by value descending and weights accumulated until they reach the target
// tail rank N−⌈ϕN⌉+1 — each sample stands for the Weight tail ranks of its
// own sub-window that precede it, so the cumulative weight approximates
// the global rank. (With a uniform sampling rate α this reduces to the
// paper's "read the α·N(1−ϕ)-th largest sample" rule.) Returns ok=false
// when no samples exist.
func SampleKMerge(samples [][]Sample, windowN int, phi float64) (float64, bool) {
	// Heap-merge the descending per-sub-window lists, accumulating weight
	// until the target tail rank is covered — O(popped·log L).
	lists := make([][]float64, len(samples))
	weights := make([][]int, len(samples))
	for i, l := range samples {
		vs := make([]float64, len(l))
		ws := make([]int, len(l))
		for j, s := range l {
			vs[j], ws[j] = s.Value, s.Weight
		}
		lists[i], weights[i] = vs, ws
	}
	h := newHeadHeap(lists)
	if h.empty() {
		return 0, false
	}
	target := ExactTailSize(windowN, phi)
	cum := 0
	var last float64
	for {
		v, li, pos, ok := h.popIndexed()
		if !ok {
			return last, true // samples exhausted: deepest value
		}
		last = v
		cum += weights[li][pos]
		if cum >= target {
			return v, true
		}
	}
}

// SampleValues extracts the plain values of a sample list (for the burst
// detector's rank test).
func SampleValues(samples []Sample) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = s.Value
	}
	return out
}

// headHeap is a max-heap over the heads of descending-sorted lists,
// yielding the globally largest remaining value on each pop.
type headHeap struct {
	lists [][]float64
	// entries are (listIndex, positionInList) pairs ordered by the value
	// at that position.
	li  []int
	pos []int
}

func newHeadHeap(lists [][]float64) *headHeap {
	h := &headHeap{lists: lists}
	for i, l := range lists {
		if len(l) > 0 {
			h.push(i, 0)
		}
	}
	return h
}

func (h *headHeap) empty() bool { return len(h.li) == 0 }

func (h *headHeap) val(k int) float64 { return h.lists[h.li[k]][h.pos[k]] }

func (h *headHeap) push(li, pos int) {
	h.li = append(h.li, li)
	h.pos = append(h.pos, pos)
	i := len(h.li) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.val(parent) >= h.val(i) {
			break
		}
		h.swap(parent, i)
		i = parent
	}
}

func (h *headHeap) swap(i, j int) {
	h.li[i], h.li[j] = h.li[j], h.li[i]
	h.pos[i], h.pos[j] = h.pos[j], h.pos[i]
}

// popIndexed removes and returns the largest remaining value along with
// its list index and position.
func (h *headHeap) popIndexed() (v float64, li, pos int, ok bool) {
	if len(h.li) == 0 {
		return 0, 0, 0, false
	}
	v, li, pos = h.val(0), h.li[0], h.pos[0]
	// Advance that list's head, or remove it.
	if pos+1 < len(h.lists[li]) {
		h.li[0], h.pos[0] = li, pos+1
	} else {
		last := len(h.li) - 1
		h.li[0], h.pos[0] = h.li[last], h.pos[last]
		h.li, h.pos = h.li[:last], h.pos[:last]
		if len(h.li) == 0 {
			return v, li, pos, true
		}
	}
	// Sift down.
	i := 0
	n := len(h.li)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && h.val(l) > h.val(largest) {
			largest = l
		}
		if r < n && h.val(r) > h.val(largest) {
			largest = r
		}
		if largest == i {
			return v, li, pos, true
		}
		h.swap(i, largest)
		i = largest
	}
}

// pop removes and returns only the largest remaining value.
func (h *headHeap) pop() (float64, bool) {
	v, _, _, ok := h.popIndexed()
	return v, ok
}

// DetectBurst reports whether the newest sub-window's sampled tail is
// distributionally different and stochastically larger than the previous
// sub-window's, per the one-sided Mann–Whitney U test at level alpha
// (§4.3). Either sample being empty yields false.
func DetectBurst(current, previous []float64, alpha float64) bool {
	return stats.StochasticallyLarger(current, previous, alpha)
}

// Outcome selects between the three per-quantile answers at runtime,
// implementing §4.3 "Selecting outcomes": sample-k wins under a detected
// burst, top-k wins under statistical inefficiency, and the Level-2
// aggregate is used otherwise.
func Outcome(level2 float64, topK float64, topKOK bool, sampleK float64, sampleKOK bool,
	burst bool, statInefficient bool) float64 {
	switch {
	case burst && sampleKOK:
		return sampleK
	case statInefficient && topKOK:
		return topK
	default:
		return level2
	}
}
