package core

import "repro/internal/core/fewk"

// level2 is QLOVE's window-level aggregator (§3.1 Level 2): a sliding
// window over sub-window summaries. Per the paper it is "almost identical
// to the incremental evaluation for the average" — one sum/count pair per
// configured quantile, accumulated when a summary arrives and
// deaccumulated when a summary expires, in O(l) per period regardless of
// sub-window size.
type level2 struct {
	nPhis     int
	sums      []float64
	summaries []Summary // resident summaries, oldest first (ring-free: N/P is small)
}

func newLevel2(nPhis int) *level2 {
	return &level2{nPhis: nPhis, sums: make([]float64, nPhis)}
}

// accumulate adds a freshly sealed summary.
func (l *level2) accumulate(s Summary) {
	for i, q := range s.Quantiles {
		l.sums[i] += q
	}
	l.summaries = append(l.summaries, s)
}

// deaccumulate removes the oldest summary (one whole sub-window at a
// time — QLOVE never deaccumulates individual elements).
func (l *level2) deaccumulate() {
	if len(l.summaries) == 0 {
		return
	}
	old := l.summaries[0]
	for i, q := range old.Quantiles {
		l.sums[i] -= q
	}
	// Shift rather than reslice so expired summaries (and their few-k
	// tails) are promptly collectible.
	copy(l.summaries, l.summaries[1:])
	l.summaries[len(l.summaries)-1] = Summary{}
	l.summaries = l.summaries[:len(l.summaries)-1]
}

// count returns the number of resident summaries.
func (l *level2) count() int { return len(l.summaries) }

// reset drops every resident summary and zeroes the running sums, keeping
// slice capacity so a recycled operator reaches steady state without
// reallocating. Expired summaries are zeroed first so their few-k caches
// are promptly collectible.
func (l *level2) reset() {
	for i := range l.sums {
		l.sums[i] = 0
	}
	for i := range l.summaries {
		l.summaries[i] = Summary{}
	}
	l.summaries = l.summaries[:0]
}

// estimate returns the aggregated ϕ-quantile for phi index i: the mean of
// the resident sub-window quantiles (guided by the CLT, Appendix A).
func (l *level2) estimate(i int) float64 {
	if len(l.summaries) == 0 {
		return 0
	}
	return l.sums[i] / float64(len(l.summaries))
}

// cached gathers, per resident summary, every value retained for managed
// quantile mi — the k_t top values plus the k_s samples. Section 4 opens
// with "each sub-window collects k data points among the largest values
// ... and uses the k values to compute the target high quantile": top-k
// merging reads the union, not only the k_t share.
func (l *level2) cached(mi int) [][]float64 { return cachedOf(l.summaries, mi) }

// samples gathers the weighted sample-k lists for managed quantile mi.
func (l *level2) samples(mi int) [][]fewk.Sample { return samplesOf(l.summaries, mi) }

// anyBursty reports whether any resident summary carries a seal-time
// burst flag for managed quantile mi: a bursty sub-window keeps
// influencing the window's high quantiles for as long as it stays
// resident.
func (l *level2) anyBursty(mi int) bool { return anyBurstyOf(l.summaries, mi) }

// cachedOf, samplesOf and anyBurstyOf are the slice-level forms of the
// accessors above, shared with Snapshot so a captured summary set is read
// exactly — bit for bit — the way a live operator reads its own.

func cachedOf(summaries []Summary, mi int) [][]float64 {
	out := make([][]float64, 0, len(summaries))
	for i := range summaries {
		if vs := summaries[i].cachedValues(mi); vs != nil {
			out = append(out, vs)
		}
	}
	return out
}

func samplesOf(summaries []Summary, mi int) [][]fewk.Sample {
	out := make([][]fewk.Sample, 0, len(summaries))
	for _, s := range summaries {
		if mi < len(s.Samples) {
			out = append(out, s.Samples[mi])
		}
	}
	return out
}

func anyBurstyOf(summaries []Summary, mi int) bool {
	for i := range summaries {
		b := summaries[i].BurstyVsPrev
		if mi < len(b) && b[mi] {
			return true
		}
	}
	return false
}

// meanDensity averages the finite sub-window density estimates for phi
// index i; returns 0 when no summary has a usable estimate.
func (l *level2) meanDensity(i int) float64 {
	var sum float64
	var n int
	for _, s := range l.summaries {
		if i < len(s.Densities) {
			d := s.Densities[i]
			if d > 0 && !isInf(d) {
				sum += d
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func isInf(f float64) bool { return f > 1e308 }

// fewkSpace counts only the few-k storage: cached tail values and samples
// across resident summaries (the space the paper reports in Tables 3–4).
func (l *level2) fewkSpace() int {
	n := 0
	for _, s := range l.summaries {
		for _, t := range s.Tails {
			n += len(t)
		}
		for _, sm := range s.Samples {
			n += len(sm)
		}
	}
	return n
}

// spaceUsage counts resident variables: l quantile slots per summary plus
// every cached tail value and sample.
func (l *level2) spaceUsage() int {
	n := 0
	for _, s := range l.summaries {
		n += len(s.Quantiles)
		for _, t := range s.Tails {
			n += len(t)
		}
		for _, sm := range s.Samples {
			n += len(sm)
		}
	}
	return n
}
