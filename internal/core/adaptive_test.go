package core

import (
	"testing"

	"repro/internal/stream"
	"repro/internal/window"
	"repro/internal/workload"
)

func TestAdaptiveGrowsUnderBurst(t *testing.T) {
	spec := window.Spec{Size: 16000, Period: 2000}
	base := workload.Generate(workload.NewNetMon(3), 64000)
	data := workload.InjectBursts(base, spec.Size, spec.Period, 0.999, 10)
	p := mustNew(t, Config{
		Spec: spec, Phis: []float64{0.999},
		FewK: true, Fraction: 0.1, Adaptive: true,
	})
	if fr := p.CurrentFractions(); len(fr) != 1 || fr[0] != 0.1 {
		t.Fatalf("initial fractions = %v", fr)
	}
	// Drive manually to observe the controller between evaluations: the
	// fraction grows under distress and may decay once the budget becomes
	// sufficient, so the peak is the signal.
	maxFr := 0.0
	pos := 0
	n := spec.Evaluations(len(data))
	for i := 0; i < n; i++ {
		lo, hi := spec.EvalBounds(i)
		if i > 0 {
			p.Expire(data[lo-spec.Period : lo])
		}
		for ; pos < hi; pos++ {
			p.Observe(data[pos])
		}
		p.Result()
		if fr := p.CurrentFractions()[0]; fr > maxFr {
			maxFr = fr
		}
	}
	if maxFr <= 0.1 {
		t.Fatalf("fraction never grew under bursty traffic: %v", maxFr)
	}
}

func TestAdaptiveDecaysWhenCalm(t *testing.T) {
	spec := window.Spec{Size: 16000, Period: 2000}
	data := workload.Generate(workload.NewUniform(4, 90, 110), 64000)
	p := mustNew(t, Config{
		Spec: spec, Phis: []float64{0.999},
		FewK: true, Fraction: 0.3, Adaptive: true,
	})
	// Force the controller above its floor, then feed calm traffic.
	p.adapt[0].fraction = 1.0
	if _, _, err := stream.Run(p, spec, data); err != nil {
		t.Fatal(err)
	}
	fr := p.CurrentFractions()[0]
	if fr >= 1.0 {
		t.Fatalf("fraction did not decay on calm traffic: %v", fr)
	}
	if fr < 0.3 {
		t.Fatalf("fraction decayed below its floor: %v", fr)
	}
}

func TestAdaptiveOffByDefault(t *testing.T) {
	p := mustNew(t, Config{
		Spec: window.Spec{Size: 100, Period: 10},
		Phis: []float64{0.999}, FewK: true,
	})
	if p.CurrentFractions() != nil {
		t.Fatal("controller active without Adaptive")
	}
}

func TestAdaptiveBudgetsReplanned(t *testing.T) {
	spec := window.Spec{Size: 16000, Period: 2000}
	p := mustNew(t, Config{
		Spec: spec, Phis: []float64{0.999},
		FewK: true, Fraction: 0.1, Adaptive: true,
	})
	k0 := p.budgets[0].K
	p.observeDistress(0, true)
	if p.budgets[0].K <= k0 {
		t.Fatalf("budget K did not grow: %d -> %d", k0, p.budgets[0].K)
	}
	// Decay back to the floor restores the original plan.
	for i := 0; i < 100; i++ {
		p.observeDistress(0, false)
	}
	if p.budgets[0].K != k0 {
		t.Fatalf("budget K did not return to floor plan: %d vs %d", p.budgets[0].K, k0)
	}
}

func TestEndPeriodPartialSubWindow(t *testing.T) {
	// Time-driven sealing: a partial sub-window still yields a summary
	// and contributes to Level 2.
	spec := window.Spec{Size: 40, Period: 10}
	p := mustNew(t, Config{Spec: spec, Phis: []float64{0.5}, Digits: -1})
	for i := 0; i < 5; i++ {
		p.Observe(float64(i + 1)) // 1..5, median 3
	}
	p.EndPeriod()
	if p.SubWindowCount() != 1 {
		t.Fatalf("summaries = %d, want 1", p.SubWindowCount())
	}
	if got := p.Result()[0]; got != 3 {
		t.Fatalf("partial sub-window median = %v, want 3", got)
	}
	// Empty EndPeriod is a no-op.
	p.EndPeriod()
	if p.SubWindowCount() != 1 {
		t.Fatal("empty EndPeriod produced a summary")
	}
}
