package core

import (
	"math"
	"testing"

	"repro/internal/window"
	"repro/internal/workload"
)

// TestSnapshotEstimatesMatchResult: a single-stream capture answers
// bit-for-bit what the live operator answers at the same instant, in every
// few-k mode.
func TestSnapshotEstimatesMatchResult(t *testing.T) {
	spec := window.Spec{Size: 4000, Period: 500}
	phis := []float64{0.5, 0.9, 0.99, 0.999}
	cases := map[string]Config{
		"plain":     {Spec: spec, Phis: phis},
		"fewk":      {Spec: spec, Phis: phis, FewK: true},
		"topk-only": {Spec: spec, Phis: phis, FewK: true, TopKOnly: true},
		"samplek":   {Spec: spec, Phis: phis, FewK: true, SampleKOnly: true},
		"no-quant":  {Spec: spec, Phis: phis, FewK: true, Digits: -1},
		"full-fewk": {Spec: spec, Phis: phis, FewK: true, Fraction: 1},
	}
	for name, cfg := range cases {
		t.Run(name, func(t *testing.T) {
			p := mustNew(t, cfg)
			gen := workload.NewNetMon(21)
			data := workload.Generate(gen, 3*spec.Size+spec.Period/2)
			pos := 0
			for i := 0; i < spec.Evaluations(len(data)); i++ {
				_, hi := spec.EvalBounds(i)
				if i > 0 {
					p.Expire(nil)
				}
				p.ObserveBatch(data[pos:hi])
				pos = hi
			}
			// Mid-period in-flight state on top, so the capture covers a
			// non-boundary instant too (in-flight elements are NOT part of
			// a capture, matching Result which also reads sealed state).
			p.ObserveBatch(data[pos:])

			snap := p.Snapshot()
			if snap.Streams() != 1 || snap.IsZero() {
				t.Fatalf("capture shape: streams=%d zero=%v", snap.Streams(), snap.IsZero())
			}
			want := p.Result()
			got := snap.Estimates()
			for j := range want {
				if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
					t.Fatalf("ϕ=%v: snapshot %v != result %v", cfg.Phis[j], got[j], want[j])
				}
			}
			if snap.SubWindows() != p.SubWindowCount() {
				t.Fatalf("sub-windows %d != %d", snap.SubWindows(), p.SubWindowCount())
			}
		})
	}
}

// TestSnapshotImmuneToLaterIngest: a capture must not change when the
// operator keeps ingesting, sealing and expiring afterwards.
func TestSnapshotImmuneToLaterIngest(t *testing.T) {
	spec := window.Spec{Size: 2000, Period: 500}
	cfg := Config{Spec: spec, Phis: []float64{0.5, 0.999}, FewK: true}
	p := mustNew(t, cfg)
	gen := workload.NewNetMon(4)
	p.ObserveBatch(workload.Generate(gen, spec.Size))
	snap := p.Snapshot()
	before := snap.Estimates()
	elems := snap.Elements()
	// Churn the operator well past a full window so every captured summary
	// has been expired and its slot reused.
	for i := 0; i < 3*spec.SubWindows(); i++ {
		p.Expire(nil)
		p.ObserveBatch(workload.Generate(gen, spec.Period))
	}
	after := snap.Estimates()
	for j := range before {
		if math.Float64bits(after[j]) != math.Float64bits(before[j]) {
			t.Fatalf("capture mutated: %v -> %v", before, after)
		}
	}
	if snap.Elements() != elems {
		t.Fatalf("elements mutated: %d -> %d", elems, snap.Elements())
	}
}

func TestSnapshotMergeIdentityAndMismatch(t *testing.T) {
	spec := window.Spec{Size: 100, Period: 10}
	a := mustNew(t, Config{Spec: spec, Phis: []float64{0.5}})
	a.ObserveBatch(workload.Generate(workload.NewUniform(1, 0, 1), spec.Size))
	sa := a.Snapshot()

	// Zero snapshot is the identity on both sides.
	m, err := (Snapshot{}).Merge(sa)
	if err != nil || m.Streams() != 1 {
		t.Fatalf("left identity: %v %d", err, m.Streams())
	}
	m, err = sa.Merge(Snapshot{})
	if err != nil || m.Streams() != 1 {
		t.Fatalf("right identity: %v %d", err, m.Streams())
	}
	if got := m.Estimates(); math.Float64bits(got[0]) != math.Float64bits(sa.Estimates()[0]) {
		t.Fatal("identity merge changed estimates")
	}

	b := mustNew(t, Config{Spec: spec, Phis: []float64{0.9}})
	if _, err := sa.Merge(b.Snapshot()); err == nil {
		t.Fatal("mismatched configs merged")
	}
	if _, err := MergeSnapshots([]Snapshot{sa, b.Snapshot()}); err == nil {
		t.Fatal("MergeSnapshots accepted mismatch")
	}

	// Merge demands FULL config equality: fields outside the merge shape
	// (quantization digits, sample-only mode) change what Estimates
	// computes, so mixing them must fail rather than answer fold-order-
	// dependent numbers.
	c := mustNew(t, Config{Spec: spec, Phis: []float64{0.5}, Digits: -1})
	if _, err := sa.Merge(c.Snapshot()); err == nil {
		t.Fatal("different Digits merged")
	}
	d := mustNew(t, Config{Spec: spec, Phis: []float64{0.5}, SampleKOnly: true, FewK: true})
	e := mustNew(t, Config{Spec: spec, Phis: []float64{0.5}, FewK: true})
	if _, err := d.Snapshot().Merge(e.Snapshot()); err == nil {
		t.Fatal("SampleKOnly mixed with default mode merged")
	}
}

// TestMergedResultEqualsSnapshotFold: the convenience wrapper and the
// explicit snapshot fold are the same computation.
func TestMergedResultEqualsSnapshotFold(t *testing.T) {
	spec := window.Spec{Size: 4000, Period: 1000}
	cfg := Config{Spec: spec, Phis: []float64{0.5, 0.9, 0.999}, FewK: true}
	var shards []*Policy
	var snaps []Snapshot
	for s := 0; s < 3; s++ {
		p := mustNew(t, cfg)
		p.ObserveBatch(workload.Generate(workload.NewNetMon(int64(s+40)), spec.Size))
		shards = append(shards, p)
		snaps = append(snaps, p.Snapshot())
	}
	viaWrapper, err := MergedResult(shards)
	if err != nil {
		t.Fatal(err)
	}
	folded, err := MergeSnapshots(snaps)
	if err != nil {
		t.Fatal(err)
	}
	viaFold := folded.Estimates()
	for j := range viaWrapper {
		if math.Float64bits(viaWrapper[j]) != math.Float64bits(viaFold[j]) {
			t.Fatalf("wrapper %v != fold %v", viaWrapper, viaFold)
		}
	}
	if folded.Streams() != 3 {
		t.Fatalf("streams = %d", folded.Streams())
	}
}
