package core

import (
	"fmt"

	"repro/internal/core/fewk"
)

// Snapshot is a point-in-time, immutable capture of a QLOVE operator's
// window state: the resident sub-window summaries plus the Level-2 running
// sums. Snapshots are values — safe to retain, read from any goroutine and
// merge long after the operator that produced them has moved on (summary
// internals are never mutated after seal, so the capture shares them
// without copying).
//
// Snapshots compose: Merge combines captures of operators that consumed
// disjoint sub-streams of one logical stream (one per ingestion thread,
// engine shard or datacenter pod) into a single logical-window view, as
// sketched in the paper's conclusion ("our quantile design can deliver
// better aggregate throughput ... in distributed computing"). The
// combination follows the same two-level logic as a single operator:
// Level-2 estimates are the mean of every resident sub-window quantile
// across all captures (each capture's sub-windows are themselves i.i.d.
// samples of the stream under the paper's assumptions), and few-k-managed
// quantiles merge the cached tails and samples of all captures, scaling
// the read rank by the number of merged sub-streams (the logical window is
// streams×N elements).
//
// For a single-stream capture (Streams() == 1), Estimates is bit-for-bit
// identical to the Result() the operator would have returned at the same
// instant.
type Snapshot struct {
	cfg       Config
	streams   int // merged sub-streams; 0 marks the zero Snapshot
	sums      []float64
	summaries []Summary
	managed   []int
	// sealGen is the source operator's seal-generation clock at capture
	// time (see Policy.SealGen); 0 for merged captures and for captures
	// rebuilt from sources that do not track generations (wire v1).
	sealGen uint64
}

// Snapshot captures the operator's current window state. It is O(l +
// resident summaries): the summary structs are copied by value but their
// internal slices — immutable after seal — are shared. The caller may use
// the capture from any goroutine; only the goroutine owning the Policy may
// take it.
func (p *Policy) Snapshot() Snapshot {
	return Snapshot{
		cfg:       p.cfg,
		streams:   1,
		sums:      append([]float64(nil), p.agg.sums...),
		summaries: append([]Summary(nil), p.agg.summaries...),
		managed:   p.managed,
		sealGen:   p.sealGen,
	}
}

// IsZero reports whether s is the zero Snapshot (no capture at all — as
// opposed to a capture of an operator that has sealed nothing yet).
func (s Snapshot) IsZero() bool { return s.streams == 0 }

// Streams returns the number of merged sub-streams (1 for a direct
// capture); the logical window spans Streams()×Size elements.
func (s Snapshot) Streams() int { return s.streams }

// SubWindows returns the number of resident sub-window summaries across
// all merged sub-streams.
func (s Snapshot) SubWindows() int { return len(s.summaries) }

// Elements returns the total element count across resident summaries.
func (s Snapshot) Elements() int {
	n := 0
	for i := range s.summaries {
		n += s.summaries[i].Count
	}
	return n
}

// Config returns the configuration the captured operator ran with.
func (s Snapshot) Config() Config { return s.cfg }

// SealGen returns the seal-generation clock of the captured operator at
// capture time: the resident summaries are generations
// (SealGen-SubWindows, SealGen]. It is 0 for merged captures (a merged
// capture spans several independent clocks) and for captures decoded from
// generation-less sources (wire format v1), which therefore cannot anchor a
// delta export.
func (s Snapshot) SealGen() uint64 { return s.sealGen }

// Merge combines two snapshots of disjoint sub-streams of one logical
// stream. The zero Snapshot is the identity, so a fold over any number of
// captures can start from Snapshot{}. Both captures must come from
// operators with FULLY identical configurations (not just merge-shape
// fields: Digits, SampleKOnly etc. change what Estimates computes, and a
// lax check would make a.Merge(b) and b.Merge(a) answer differently);
// ErrMismatched is wrapped otherwise.
func (s Snapshot) Merge(o Snapshot) (Snapshot, error) {
	if s.IsZero() {
		return o, nil
	}
	if o.IsZero() {
		return s, nil
	}
	if !fullConfigEqual(s.cfg, o.cfg) {
		return Snapshot{}, fmt.Errorf("qlove: %w", ErrMismatched)
	}
	out := Snapshot{
		cfg:     s.cfg,
		streams: s.streams + o.streams,
		sums:    make([]float64, len(s.sums)),
		managed: s.managed,
	}
	for i := range out.sums {
		out.sums[i] = s.sums[i] + o.sums[i]
	}
	out.summaries = make([]Summary, 0, len(s.summaries)+len(o.summaries))
	out.summaries = append(out.summaries, s.summaries...)
	out.summaries = append(out.summaries, o.summaries...)
	return out, nil
}

// MergeSnapshots folds a slice of snapshots left to right.
func MergeSnapshots(snaps []Snapshot) (Snapshot, error) {
	var out Snapshot
	for _, sn := range snaps {
		var err error
		if out, err = out.Merge(sn); err != nil {
			return Snapshot{}, err
		}
	}
	return out, nil
}

// Estimate answers the single quantile phi from the captured state. It is
// the aggregator-consumer convenience over Estimates: phi must be one of
// the CONFIGURED quantiles (compared exactly — the guard against silent
// interpolation: answering ϕ=0.95 from a capture configured for {0.9,
// 0.99} would require interpolating between estimates with different error
// characteristics, so it is refused rather than approximated). ok is false
// for the zero Snapshot and for any ϕ the captured operator was not
// configured to answer.
func (s Snapshot) Estimate(phi float64) (float64, bool) {
	if s.IsZero() {
		return 0, false
	}
	for i, p := range s.cfg.Phis {
		if p != phi {
			continue
		}
		if len(s.summaries) == 0 {
			return 0, true
		}
		est := s.sums[i] / float64(len(s.summaries))
		for mi, pi := range s.managed {
			if pi == i {
				return s.managedEstimate(mi, i, est), true
			}
		}
		return est, true
	}
	return 0, false
}

// Estimates answers the configured quantiles from the captured state,
// mirroring Policy.Result exactly: non-high quantiles come from the
// Level-2 average over every resident sub-window quantile; few-k-managed
// quantiles select between Level 2, top-k merging and sample-k merging per
// §4.3, with the few-k read rank scaled to the streams×N logical window.
// With no resident summaries it returns zeros, one per ϕ.
func (s Snapshot) Estimates() []float64 {
	out := make([]float64, len(s.cfg.Phis))
	if len(s.summaries) == 0 {
		return out
	}
	for i := range out {
		out[i] = s.sums[i] / float64(len(s.summaries))
	}
	for mi, pi := range s.managed {
		out[pi] = s.managedEstimate(mi, pi, out[pi])
	}
	return out
}

// managedEstimate resolves one few-k-managed quantile from the captured
// tails and samples per §4.3 — the selection Estimates runs for every
// managed ϕ and Estimate runs for just the requested one.
func (s Snapshot) managedEstimate(mi, pi int, level2 float64) float64 {
	phi := s.cfg.Phis[pi]
	logicalN := s.cfg.Spec.Size * s.streams
	topK, topOK := fewk.TopKMerge(cachedOf(s.summaries, mi), logicalN, phi)
	sampleK, sampOK := fewk.SampleKMerge(samplesOf(s.summaries, mi), logicalN, phi)
	burst := anyBurstyOf(s.summaries, mi)
	statIneff := fewk.NeedsTopK(s.cfg.Spec.Period, phi, s.cfg.StatThreshold)
	if s.cfg.SampleKOnly && sampOK {
		// Table 4 mode: the sample-k pipeline answers managed quantiles
		// unconditionally, exactly as Result does.
		return sampleK
	}
	return fewk.Outcome(level2, topK, topOK, sampleK, sampOK, burst, statIneff)
}
