package core

// Pool recycles QLOVE operators that share one configuration. A monitoring
// engine serving a high-cardinality key space churns operators constantly
// — keys appear, go idle, get evicted — and a fresh operator's dominant
// cost is growing its Level-1 tree arena and scratch buffers back to
// working-set size. The pool keeps retired operators (arenas and all) and
// hands them back Reset, so key churn costs map traffic instead of
// allocator traffic.
//
// A Pool is NOT safe for concurrent use: it is designed to be owned by a
// single shard goroutine (one pool per shard), which is also the only
// goroutine allowed to touch the policies it recycles. Use one Pool per
// owner, not one shared Pool behind a lock.
type Pool struct {
	// mint is the configuration AS GIVEN by the caller — minting must go
	// through New with the original config, because config resolution is
	// not idempotent (user Digits<0 resolves to 0 "quantizer identity",
	// which withDefaults would re-resolve to the default 3).
	mint Config
	// cfg is the resolved configuration every minted operator carries;
	// Put compares against it.
	cfg  Config
	free []*Policy
}

// NewPool returns a pool minting operators with cfg. The configuration is
// validated eagerly — by constructing the first operator, which seeds the
// free list — so Get never fails afterwards.
func NewPool(cfg Config) (*Pool, error) {
	p, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &Pool{mint: cfg, cfg: p.cfg, free: []*Policy{p}}, nil
}

// Config returns the pool's resolved configuration.
func (pl *Pool) Config() Config { return pl.cfg }

// Get returns an operator ready for a fresh stream: a recycled one when
// available (already Reset by Put), newly constructed otherwise.
func (pl *Pool) Get() *Policy {
	if n := len(pl.free); n > 0 {
		p := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		return p
	}
	p, err := New(pl.mint)
	if err != nil {
		// mint was validated by NewPool; New on the same config cannot
		// fail.
		panic("qlove: pool config invalidated: " + err.Error())
	}
	return p
}

// maxIdle bounds the free list: a churn burst (a million transient keys
// evicted) must not pin a million arenas forever. Operators beyond the
// cap are dropped to the garbage collector.
const maxIdle = 64

// Put resets p and shelves it for reuse. Operators built with a different
// configuration are dropped (their estimates under this pool's config
// would be silently wrong), as are operators beyond the maxIdle cap; nil
// is ignored.
func (pl *Pool) Put(p *Policy) {
	if p == nil || len(pl.free) >= maxIdle || !fullConfigEqual(p.cfg, pl.cfg) {
		return
	}
	p.Reset()
	pl.free = append(pl.free, p)
}

// Idle returns how many recycled operators the pool currently holds.
func (pl *Pool) Idle() int { return len(pl.free) }

// ConfigEqual reports whether two resolved configurations are identical in
// every field — the equality Snapshot.Merge requires and delta folding
// re-checks across frames of one key.
func ConfigEqual(a, b Config) bool { return fullConfigEqual(a, b) }

// fullConfigEqual compares every field of two resolved configurations —
// unlike sameConfig (merge semantics), pooling additionally requires the
// quantizer, burst detector and mode flags to agree.
func fullConfigEqual(a, b Config) bool {
	return sameConfig(a, b) &&
		a.Digits == b.Digits &&
		a.BurstAlpha == b.BurstAlpha &&
		a.TopKOnly == b.TopKOnly &&
		a.SampleKOnly == b.SampleKOnly &&
		a.Adaptive == b.Adaptive
}
