package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core/fewk"
)

func mkSummary(qs ...float64) Summary {
	return Summary{Quantiles: qs, Count: 10}
}

func TestLevel2AccumulateDeaccumulate(t *testing.T) {
	l := newLevel2(2)
	l.accumulate(mkSummary(10, 100))
	l.accumulate(mkSummary(20, 200))
	l.accumulate(mkSummary(30, 300))
	if l.count() != 3 {
		t.Fatalf("count = %d", l.count())
	}
	if got := l.estimate(0); got != 20 {
		t.Fatalf("estimate[0] = %v, want 20", got)
	}
	if got := l.estimate(1); got != 200 {
		t.Fatalf("estimate[1] = %v, want 200", got)
	}
	l.deaccumulate()
	if l.count() != 2 {
		t.Fatalf("count after deacc = %d", l.count())
	}
	if got := l.estimate(0); got != 25 {
		t.Fatalf("estimate[0] after deacc = %v, want 25", got)
	}
}

func TestLevel2DeaccumulateEmpty(t *testing.T) {
	l := newLevel2(1)
	l.deaccumulate() // must not panic
	if l.estimate(0) != 0 {
		t.Fatal("empty estimate != 0")
	}
}

func TestLevel2CachedSkipsSummariesWithoutTails(t *testing.T) {
	l := newLevel2(1)
	l.accumulate(mkSummary(1)) // no Tails
	s := mkSummary(2)
	s.Tails = [][]float64{{9, 8}}
	s.Samples = [][]fewk.Sample{{{Value: 5, Weight: 2}}}
	l.accumulate(s)
	got := l.cached(0)
	if len(got) != 1 {
		t.Fatalf("cached lists = %d, want 1", len(got))
	}
	// Union: tails {9,8} plus sample 5 (below the tail cutoff 8).
	if len(got[0]) != 3 || got[0][0] != 9 || got[0][2] != 5 {
		t.Fatalf("cached union = %v", got[0])
	}
}

func TestLevel2CachedDedupsSamplesInTopK(t *testing.T) {
	l := newLevel2(1)
	s := mkSummary(2)
	s.Tails = [][]float64{{9, 8}}
	// Sample at 8 duplicates the tail cache; sample at 3 does not.
	s.Samples = [][]fewk.Sample{{{Value: 8, Weight: 1}, {Value: 3, Weight: 2}}}
	l.accumulate(s)
	got := l.cached(0)[0]
	if len(got) != 3 {
		t.Fatalf("cached union = %v, want 3 values (8 deduped)", got)
	}
}

func TestLevel2AnyBursty(t *testing.T) {
	l := newLevel2(1)
	a := mkSummary(1)
	a.BurstyVsPrev = []bool{false}
	b := mkSummary(2)
	b.BurstyVsPrev = []bool{true}
	l.accumulate(a)
	if l.anyBursty(0) {
		t.Fatal("burst flagged without any bursty summary")
	}
	l.accumulate(b)
	if !l.anyBursty(0) {
		t.Fatal("burst not flagged")
	}
	// After the bursty summary expires the flag clears.
	l.deaccumulate()
	l.deaccumulate()
	if l.anyBursty(0) {
		t.Fatal("burst flag survived expiry")
	}
}

func TestLevel2MeanDensity(t *testing.T) {
	l := newLevel2(1)
	a := mkSummary(1)
	a.Densities = []float64{2}
	b := mkSummary(2)
	b.Densities = []float64{4}
	c := mkSummary(3)
	c.Densities = []float64{math.Inf(1)} // point mass excluded
	l.accumulate(a)
	l.accumulate(b)
	l.accumulate(c)
	if got := l.meanDensity(0); got != 3 {
		t.Fatalf("meanDensity = %v, want 3", got)
	}
	empty := newLevel2(1)
	if empty.meanDensity(0) != 0 {
		t.Fatal("empty meanDensity != 0")
	}
}

func TestLevel2SpaceUsage(t *testing.T) {
	l := newLevel2(2)
	s := mkSummary(1, 2)
	s.Tails = [][]float64{{9, 8, 7}}
	s.Samples = [][]fewk.Sample{{{Value: 5, Weight: 1}}}
	l.accumulate(s)
	// 2 quantile slots + 3 tail values + 1 sample.
	if got := l.spaceUsage(); got != 6 {
		t.Fatalf("spaceUsage = %d, want 6", got)
	}
	if got := l.fewkSpace(); got != 4 {
		t.Fatalf("fewkSpace = %d, want 4", got)
	}
}

// Property: estimate always equals the arithmetic mean of the resident
// summaries' quantiles, under any accumulate/deaccumulate sequence.
func TestQuickLevel2MeanInvariant(t *testing.T) {
	f := func(vals []uint16, ops []bool) bool {
		l := newLevel2(1)
		var resident []float64
		vi := 0
		for _, op := range ops {
			if op && vi < len(vals) {
				v := float64(vals[vi])
				vi++
				l.accumulate(mkSummary(v))
				resident = append(resident, v)
			} else if len(resident) > 0 {
				l.deaccumulate()
				resident = resident[1:]
			} else {
				l.deaccumulate() // no-op
			}
			if len(resident) == 0 {
				if l.estimate(0) != 0 {
					return false
				}
				continue
			}
			var mean float64
			for _, v := range resident {
				mean += v
			}
			mean /= float64(len(resident))
			if math.Abs(l.estimate(0)-mean) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderSealProducesSortedTails(t *testing.T) {
	b := newBuilder(0)
	for _, v := range []float64{5, 100, 3, 99, 42, 7, 88, 1, 64, 2} {
		b.add(v)
	}
	budgets := []fewk.Budget{{K: 5, Kt: 3, Ks: 2}}
	s := b.seal([]float64{0.9}, []int{0}, budgets, 100)
	if s.Count != 10 {
		t.Fatalf("Count = %d", s.Count)
	}
	// Tail cache: 3 largest, descending.
	want := []float64{100, 99, 88}
	for i := range want {
		if s.Tails[0][i] != want[i] {
			t.Fatalf("Tails = %v, want %v", s.Tails[0], want)
		}
	}
	if len(s.Samples[0]) == 0 {
		t.Fatal("no samples captured")
	}
	// Builder is reset after seal.
	if b.len() != 0 {
		t.Fatal("builder not reset")
	}
}

func TestBuilderDensityAtSmallN(t *testing.T) {
	b := newBuilder(0)
	b.add(1)
	b.add(2)
	s := b.seal([]float64{0.5}, nil, nil, 100)
	if got := s.Densities[0]; got != 0 {
		t.Fatalf("density with n<4 = %v, want 0", got)
	}
}
