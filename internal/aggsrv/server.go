// Package aggsrv is the HTTP transport of the streaming aggregation
// service: a thin, stdlib-only layer over qlove.Aggregator that accepts
// worker push streams (full blobs for bootstrap, delta blobs thereafter)
// and serves the merged cross-worker view. cmd/qlove-agg mounts it in
// -serve mode; qlove-bench's distributed -serve scenario drives it from
// real worker processes.
//
// Endpoints:
//
//	POST /push?worker=ID   body = wire blob (full/delta/tombstone frames)
//	                       -> {"worker","frames","keys"}
//	GET  /query?key=K      merged estimates for one key; &phi=0.99 selects
//	                       one configured quantile (unconfigured ϕ is 400)
//	GET  /snapshot         every key's merged estimates, sorted — streamed
//	                       one key at a time, so service memory stays
//	                       bounded on large key sets
//	GET  /healthz          {"status":"ok","workers":N,"keys":M}; status
//	                       "degraded" + an error string when a durable
//	                       backend has hit a persistence error
//	GET  /metrics          the backend's self-description: store backend,
//	                       op counters (instrumented stores), lock-wait,
//	                       fold-cache hits/misses — per replica for a
//	                       partitioned backend
//	GET  /slots/export     ?slot=N or ?slots=a,b,c — the slots' resident
//	                       state as self-contained bootstrap blobs, one per
//	                       worker (the fan-in's slot migration and dirty
//	                       replica resync read this)
//	POST /slots/drop       ?slot= / ?slots= — drop the slots' resident
//	                       state (after a migration flips ownership away)
//
// All responses are JSON. Estimates are float64s encoded by encoding/json
// with Go's shortest round-trippable formatting, so a client parsing them
// back gets bit-identical values — the bench's bit-for-bit verification
// leans on this.
//
// The served Backend is anything with the aggregator's read/fold surface:
// a *qlove.Aggregator on any store backend, or a *qlove.Partitioned
// fanning keys across replicas. NewFanin is the out-of-process analogue —
// an HTTP router over N remote replica servers.
package aggsrv

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro"
)

// maxPushBody caps one push request (a worker's full bootstrap blob can be
// large; a frame is already capped at 1 GiB by the wire format).
const maxPushBody = 1 << 30

// KeyReport is one key's merged view, shared by /query and /snapshot.
type KeyReport struct {
	Key        string    `json:"key"`
	Streams    int       `json:"streams"`
	SubWindows int       `json:"sub_windows"`
	Elements   int       `json:"elements"`
	Phis       []float64 `json:"phis"`
	Estimates  []float64 `json:"estimates"`
}

// PushResult acknowledges one applied push.
type PushResult struct {
	Worker string `json:"worker"`
	Frames int    `json:"frames"`
	Keys   int    `json:"keys"`
}

// Health is the /healthz document. Status degrades (and Error fills in)
// when a durable backend has hit a persistence error: the in-memory view
// still serves, but restart recovery can no longer be trusted past that
// point.
type Health struct {
	Status  string `json:"status"`
	Workers int    `json:"workers"`
	Keys    int    `json:"keys"`
	Error   string `json:"error,omitempty"`
}

// Backend is the aggregation surface the server fronts: the shared shape
// of *qlove.Aggregator (any store backend) and *qlove.Partitioned.
type Backend interface {
	Apply(worker string, r io.Reader) (int, error)
	Query(key string) (qlove.Snapshot, bool, error)
	Snapshot() (qlove.EngineSnapshot, error)
	Workers() int
	Keys() int
}

// Server serves one aggregation backend over HTTP.
type Server struct {
	agg Backend
	mux *http.ServeMux
}

// New returns a server over the backend (a fresh default *qlove.Aggregator
// when nil).
func New(agg Backend) *Server {
	if agg == nil {
		agg = qlove.NewAggregator()
	}
	s := &Server{agg: agg, mux: http.NewServeMux()}
	s.mux.HandleFunc("/push", s.handlePush)
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/slots/export", s.handleSlotsExport)
	s.mux.HandleFunc("/slots/drop", s.handleSlotsDrop)
	return s
}

// SlotPorter is the optional slot-migration surface of a backend:
// *qlove.Aggregator implements it; the fan-in's /slots/move and dirty
// replica resync drive it over these endpoints.
type SlotPorter interface {
	ExportSlots(slots []int) ([]qlove.WorkerBlob, error)
	DropSlots(slots []int) int
}

// SlotExport is the /slots/export document: the requested slots' resident
// state as one self-contained bootstrap blob per worker (re-Apply-able
// via /push, bit-for-bit).
type SlotExport struct {
	Slots   []int             `json:"slots"`
	Workers []qlove.WorkerBlob `json:"workers"`
}

// parseSlots reads ?slot=N or ?slots=a,b,c from a request query.
func parseSlots(r *http.Request) ([]int, error) {
	q := r.URL.Query()
	raw := q.Get("slots")
	if s := q.Get("slot"); s != "" {
		if raw != "" {
			return nil, fmt.Errorf("pass ?slot= or ?slots=, not both")
		}
		raw = s
	}
	if raw == "" {
		return nil, fmt.Errorf("need ?slot=N or ?slots=a,b,c")
	}
	var out []int
	for _, part := range strings.Split(raw, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad slot %q", part)
		}
		if n < 0 || n >= qlove.Slots {
			return nil, fmt.Errorf("slot %d outside [0, %d)", n, qlove.Slots)
		}
		out = append(out, n)
	}
	return out, nil
}

func (s *Server) handleSlotsExport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "slots/export is GET-only")
		return
	}
	p, ok := s.agg.(SlotPorter)
	if !ok {
		writeErr(w, http.StatusNotFound, "backend does not support slot export")
		return
	}
	slots, err := parseSlots(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	blobs, err := p.ExportSlots(slots)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, SlotExport{Slots: slots, Workers: blobs})
}

func (s *Server) handleSlotsDrop(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "slots/drop is POST-only")
		return
	}
	p, ok := s.agg.(SlotPorter)
	if !ok {
		writeErr(w, http.StatusNotFound, "backend does not support slot drop")
		return
	}
	slots, err := parseSlots(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Slots   []int `json:"slots"`
		Dropped int   `json:"dropped"`
	}{Slots: slots, Dropped: p.DropSlots(slots)})
}

// Aggregator returns the served backend (e.g. to preload blobs).
func (s *Server) Aggregator() Backend { return s.agg }

// Handler returns the root handler for mounting on any http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) // a failed write is the client's disconnect, nothing to do
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{fmt.Sprintf(format, args...)})
}

func (s *Server) handlePush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "push is POST-only")
		return
	}
	worker := r.URL.Query().Get("worker")
	if worker == "" {
		writeErr(w, http.StatusBadRequest, "push needs a ?worker=ID (the per-worker fold state is keyed by it)")
		return
	}
	// Drain the (bounded) body BEFORE folding: Apply holds the
	// aggregator's write lock, and a slow or stalled uploader must not
	// wedge every concurrent query behind it.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPushBody))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "read push body: %v", err)
		return
	}
	frames, err := s.agg.Apply(worker, bytes.NewReader(body))
	if err != nil {
		// Frames already folded stay applied; the worker discards its
		// cursor and re-bootstraps (from-generation-0 frames replace).
		writeErr(w, http.StatusBadRequest, "apply failed after %d frames: %v", frames, err)
		return
	}
	writeJSON(w, http.StatusOK, PushResult{Worker: worker, Frames: frames, Keys: s.agg.Keys()})
}

// report builds one key's merged KeyReport; phi 0 means every configured
// quantile.
func report(key string, sn qlove.Snapshot, phi float64) (KeyReport, error) {
	rep := KeyReport{
		Key:        key,
		Streams:    sn.Streams(),
		SubWindows: sn.SubWindows(),
		Elements:   sn.Elements(),
	}
	if phi != 0 {
		est, ok := sn.Estimate(phi)
		if !ok {
			return rep, fmt.Errorf("ϕ=%v is not a configured quantile (configured: %v)", phi, sn.Config().Phis)
		}
		rep.Phis = []float64{phi}
		rep.Estimates = []float64{est}
		return rep, nil
	}
	rep.Phis = sn.Config().Phis
	rep.Estimates = sn.Estimates()
	return rep, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "query is GET-only")
		return
	}
	q := r.URL.Query()
	if !q.Has("key") {
		writeErr(w, http.StatusBadRequest, "query needs ?key=")
		return
	}
	key := q.Get("key")
	var phi float64
	if p := q.Get("phi"); p != "" {
		var err error
		if phi, err = strconv.ParseFloat(p, 64); err != nil {
			writeErr(w, http.StatusBadRequest, "bad phi %q", p)
			return
		}
	}
	sn, ok, err := s.agg.Query(key)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if !ok {
		writeErr(w, http.StatusNotFound, "key %q is not aggregated", key)
		return
	}
	rep, err := report(key, sn, phi)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "key %q: %v", key, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "snapshot is GET-only")
		return
	}
	snap, err := s.agg.Snapshot()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	// Stream one KeyReport at a time instead of materializing the whole
	// []KeyReport: the response stays {"keys":[…]} but the service never
	// holds more than one key's report (plus the write buffer), so memory
	// is bounded by the snapshot itself, not by its JSON expansion.
	// report() cannot fail for phi=0 (it only validates a requested
	// quantile), so nothing can error after the status line is committed.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"keys":[`)
	for i, k := range snap.Keys() {
		sn, _ := snap.Get(k)
		rep, err := report(k, sn, 0)
		if err != nil {
			// Unreachable for phi=0; abort mid-body so the client's JSON
			// parse fails rather than silently truncating the key set.
			return
		}
		b, err := json.Marshal(rep)
		if err != nil {
			return
		}
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.Write(b)
		if i%512 == 511 {
			bw.Flush()
		}
	}
	bw.WriteString("]}\n")
	bw.Flush()
}

// MetricsReport is the /metrics document: one aggregator's metrics, or
// one per replica for a partitioned backend.
type MetricsReport struct {
	Replicas []qlove.AggregatorMetrics `json:"replicas"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "metrics is GET-only")
		return
	}
	switch b := s.agg.(type) {
	case interface {
		Metrics() qlove.AggregatorMetrics
	}:
		writeJSON(w, http.StatusOK, MetricsReport{Replicas: []qlove.AggregatorMetrics{b.Metrics()}})
	case interface {
		Metrics() []qlove.AggregatorMetrics
	}:
		writeJSON(w, http.StatusOK, MetricsReport{Replicas: b.Metrics()})
	default:
		writeErr(w, http.StatusNotFound, "backend exposes no metrics")
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := Health{Status: "ok", Workers: s.agg.Workers(), Keys: s.agg.Keys()}
	// A durable backend (the disk store, directly or per partitioned
	// replica) that has hit a persistence error keeps serving its
	// in-memory view but must say so: restart recovery is compromised.
	if d, ok := s.agg.(interface{ DurabilityErr() error }); ok {
		if err := d.DurabilityErr(); err != nil {
			h.Status = "degraded"
			h.Error = err.Error()
		}
	}
	writeJSON(w, http.StatusOK, h)
}
