package aggsrv

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro"
	"repro/internal/workload"
)

// TestRetryBackoff pins the backoff arithmetic: doubling per attempt,
// clamped at maxRetryBackoff — including the attempt counts whose naive
// single-shift form overflows time.Duration negative (which used to panic
// the jitter draw) — and a zero/negative base disabling the wait.
func TestRetryBackoff(t *testing.T) {
	for _, tc := range []struct {
		base    time.Duration
		attempt int
		want    time.Duration
	}{
		{0, 0, 0},
		{0, 5, 0},
		{-time.Second, 3, 0},
		{25 * time.Millisecond, 0, 25 * time.Millisecond},
		{25 * time.Millisecond, 1, 50 * time.Millisecond},
		{25 * time.Millisecond, 3, 200 * time.Millisecond},
		{25 * time.Millisecond, 7, maxRetryBackoff},
		{25 * time.Millisecond, 62, maxRetryBackoff},  // 25ms<<62 is negative
		{25 * time.Millisecond, 1 << 20, maxRetryBackoff}, // absurd Retries
		{time.Second, 1, maxRetryBackoff},
		{3 * time.Second, 0, maxRetryBackoff},
		{maxRetryBackoff, 0, maxRetryBackoff},
		{maxRetryBackoff, 5, maxRetryBackoff},
	} {
		if got := retryBackoff(tc.base, tc.attempt); got != tc.want {
			t.Errorf("retryBackoff(%v, %d) = %v, want %v", tc.base, tc.attempt, got, tc.want)
		}
	}
	// The jitter draw as fetchRetry performs it must stay in bounds and
	// never panic, whatever the attempt count.
	for attempt := 0; attempt < 200; attempt++ {
		backoff := retryBackoff(25*time.Millisecond, attempt)
		if backoff < 0 || backoff > maxRetryBackoff {
			t.Fatalf("attempt %d: backoff %v out of range", attempt, backoff)
		}
		if half := int64(backoff / 2); half > 0 {
			if j := rand.Int63n(half + 1); j < 0 || j > half {
				t.Fatalf("attempt %d: jitter %d outside [0, %d]", attempt, j, half)
			}
		}
	}
}

// faninEngine drives one salted engine through delta rounds for the
// replication tests; each round's blob goes through fx.push (fan-in AND
// reference, identical acks).
type faninEngine struct {
	eng  *qlove.Engine
	gen  workload.Generator
	cur  qlove.ExportCursor
	keys []string
}

func newFaninEngine(t *testing.T, seed int64, nkeys int) *faninEngine {
	t.Helper()
	cfg := qlove.Config{Spec: qlove.Window{Size: 256, Period: 64}, Phis: []float64{0.5, 0.99}, FewK: true}
	eng, err := qlove.NewEngine(qlove.EngineConfig{Config: cfg, Shards: 2, RouteSalt: 2})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for range eng.Results() {
		}
	}()
	t.Cleanup(eng.Close)
	h := &faninEngine{eng: eng, gen: workload.NewNetMon(seed)}
	for i := 0; i < nkeys; i++ {
		h.keys = append(h.keys, fmt.Sprintf("key-%d", i))
	}
	return h
}

func (h *faninEngine) round(t *testing.T) []byte {
	t.Helper()
	for ki, k := range h.keys {
		if err := h.eng.Push(k, workload.Generate(h.gen, 120+20*ki)); err != nil {
			t.Fatal(err)
		}
	}
	var blob bytes.Buffer
	if _, err := h.eng.ExportDelta(&blob, &h.cur); err != nil {
		t.Fatal(err)
	}
	return blob.Bytes()
}

// requireQuerySweep asserts every key (and a miss) answers byte-identically
// through the fan-in and the reference server.
func requireQuerySweep(t *testing.T, step string, fx *faninFixture, keys []string) {
	t.Helper()
	for _, k := range append(append([]string(nil), keys...), "no/such/key") {
		rf, bf := get(t, fx.fanin, "/query?key="+k)
		rr, br := get(t, fx.ref, "/query?key="+k)
		if rf.StatusCode != rr.StatusCode || !bytes.Equal(bf, br) {
			t.Fatalf("%s: query %q: fan-in %s %q, reference %s %q", step, k, rf.Status, bf, rr.Status, br)
		}
	}
}

// TestFaninQuorumPush runs an R=2 fan-in over two replicas: pushes land on
// both owners, killing one replica mid-chain keeps /push succeeding on
// quorum, and after the replica returns empty the dirty-resync replays its
// slots from its peer — views bit-identical to an uninterrupted
// single-server reference throughout, including the revived replica's own
// snapshot.
func TestFaninQuorumPush(t *testing.T) {
	fx := newFaninFixture(t, 2, FaninConfig{
		Replication:   2,
		Timeout:       2 * time.Second,
		Retries:       1,
		RetryBackoff:  time.Millisecond,
		FailThreshold: 2,
		ProbeInterval: 10 * time.Millisecond,
	})
	h := newFaninEngine(t, 42, 6)

	// Round 1, both replicas healthy: every key owned (and held) by BOTH.
	fx.push(t, "w", h.round(t))
	for _, k := range h.keys {
		for i, rs := range fx.replicas {
			if resp, _ := get(t, rs, "/query?key="+k); resp.StatusCode != http.StatusOK {
				t.Fatalf("key %q missing on replica %d: %s", k, i, resp.Status)
			}
		}
	}
	_, s0 := get(t, fx.replicas[0], "/snapshot")
	_, s1 := get(t, fx.replicas[1], "/snapshot")
	_, sr := get(t, fx.ref, "/snapshot")
	if !bytes.Equal(s0, s1) || !bytes.Equal(s0, sr) {
		t.Fatal("healthy replicas diverge from the reference snapshot")
	}

	// Kill replica 0, remembering its address for the comeback.
	addr := fx.replicas[0].Listener.Addr().String()
	fx.replicas[0].Close()

	// Mid-chain push: replica 0 misses the delta, but every slot still
	// reaches its quorum (1 of 2) — the ack matches the reference's.
	fx.push(t, "w", h.round(t))

	// Queries fail over to the surviving owner, byte-identical.
	requireQuerySweep(t, "degraded", fx, h.keys)

	// /snapshot still serves every key (from the survivor), naming the
	// dead replica in the degraded list.
	var snap, refSnap struct {
		Keys     []json.RawMessage `json:"keys"`
		Degraded []string          `json:"degraded"`
	}
	if _, body := get(t, fx.fanin, "/snapshot"); true {
		if err := json.Unmarshal(body, &snap); err != nil {
			t.Fatalf("degraded snapshot: %v\n%s", err, body)
		}
	}
	if _, body := get(t, fx.ref, "/snapshot"); true {
		if err := json.Unmarshal(body, &refSnap); err != nil {
			t.Fatal(err)
		}
	}
	if len(snap.Keys) != len(refSnap.Keys) {
		t.Fatalf("degraded snapshot has %d keys, reference %d", len(snap.Keys), len(refSnap.Keys))
	}
	for i := range snap.Keys {
		if !bytes.Equal(snap.Keys[i], refSnap.Keys[i]) {
			t.Fatalf("degraded snapshot key %d diverges:\n%s\nvs\n%s", i, snap.Keys[i], refSnap.Keys[i])
		}
	}
	if len(snap.Degraded) != 1 || snap.Degraded[0] != fx.router.Replicas()[0] {
		t.Fatalf("degraded snapshot does not name the dead replica: %v", snap.Degraded)
	}

	// /healthz: degraded, with slot coverage showing no slot fully clean.
	var fh FaninHealth
	_, body := get(t, fx.fanin, "/healthz")
	if err := json.Unmarshal(body, &fh); err != nil {
		t.Fatal(err)
	}
	if fh.Status != "degraded" || fh.Slots == nil {
		t.Fatalf("degraded healthz: %s", body)
	}
	// One of every slot's two owners is gone: nothing fully covered, but
	// the survivor still serves a clean copy of every slot.
	if fh.Slots.Replication != 2 || fh.Slots.Quorum != 1 ||
		fh.Slots.FullyCovered != 0 || fh.Slots.UnderReplicated != qlove.Slots ||
		fh.Slots.Uncovered != 0 || fh.Slots.CleanCovered != qlove.Slots {
		t.Fatalf("slot coverage: %+v", fh.Slots)
	}

	// The replica returns on its old address with EMPTY state — the worst
	// case. The probe reinstates it and the resync replays its slots from
	// the surviving peer; /healthz goes back to "ok" only once the replica
	// is live AND clean.
	l, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("re-listen on %s: %v", addr, err)
	}
	revived := httptest.NewUnstartedServer(New(nil).Handler())
	revived.Listener.Close()
	revived.Listener = l
	revived.Start()
	t.Cleanup(revived.Close)

	deadline := time.Now().Add(10 * time.Second)
	for {
		_, body := get(t, fx.fanin, "/healthz")
		var h FaninHealth
		if err := json.Unmarshal(body, &h); err == nil && h.Status == "ok" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never resynced: %s", body)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The revived replica's OWN snapshot is bit-identical to its peer's
	// and to the reference — the resync rebuilt the lost copy exactly.
	_, g0 := get(t, revived, "/snapshot")
	_, g1 := get(t, fx.replicas[1], "/snapshot")
	_, gr := get(t, fx.ref, "/snapshot")
	if !bytes.Equal(g0, g1) || !bytes.Equal(g0, gr) {
		t.Fatalf("resynced replica diverges (%d vs %d vs %d bytes)", len(g0), len(g1), len(gr))
	}
	if _, bf := get(t, fx.fanin, "/snapshot"); !bytes.Equal(bf, gr) {
		t.Fatal("fan-in snapshot diverges from reference after recovery")
	}

	// The delta chain continues: the resync carried the worker's seal
	// cursors, so the next delta folds on BOTH replicas with no
	// re-bootstrap, and views stay bit-identical.
	fx.push(t, "w", h.round(t))
	requireQuerySweep(t, "post-recovery", fx, h.keys)
	_, f0 := get(t, revived, "/snapshot")
	_, fr := get(t, fx.ref, "/snapshot")
	if !bytes.Equal(f0, fr) {
		t.Fatal("revived replica diverges after the post-recovery delta")
	}
}

// TestFaninSlotMove grows a 2-owner fan-in onto a third, empty replica by
// live /slots/move calls: only the intended slots migrate, /query answers
// stay bit-identical to the unresized reference before, during, and after,
// and the workers' delta chains keep folding across the migration.
func TestFaninSlotMove(t *testing.T) {
	initial, err := qlove.NewSlotMap(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	fx := newFaninFixture(t, 3, FaninConfig{
		Timeout: 2 * time.Second,
		Slots:   initial,
	})
	h := newFaninEngine(t, 43, 24)

	movedKeys, stayKeys := 0, 0
	for _, k := range h.keys {
		if qlove.SlotOf(k)%3 == 2 {
			movedKeys++
		} else {
			stayKeys++
		}
	}
	if movedKeys == 0 || stayKeys == 0 {
		t.Fatalf("key set does not cover moved and unmoved slots (%d/%d)", movedKeys, stayKeys)
	}

	fx.push(t, "w", h.round(t))
	var h2 Health
	if _, body := get(t, fx.replicas[2], "/healthz"); true {
		if err := json.Unmarshal(body, &h2); err != nil {
			t.Fatal(err)
		}
	}
	if h2.Keys != 0 {
		t.Fatalf("replica outside the slot map holds %d keys", h2.Keys)
	}

	// Re-home every slot whose canonical 3-way primary is the new replica.
	moved := map[int]bool{}
	for s := 0; s < qlove.Slots; s++ {
		if s%3 != 2 {
			continue
		}
		resp, body := post(t, fx.fanin, fmt.Sprintf("/slots/move?slot=%d&to=2", s), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("move slot %d: %s: %s", s, resp.Status, body)
		}
		var mv SlotMoveResult
		if err := json.Unmarshal(body, &mv); err != nil {
			t.Fatal(err)
		}
		if mv.Slot != s || mv.To != 2 || mv.From != s%2 {
			t.Fatalf("move ack %+v", mv)
		}
		moved[s] = true
		if len(moved) == 20 {
			requireQuerySweep(t, "mid-migration", fx, h.keys)
		}
	}
	requireQuerySweep(t, "post-migration", fx, h.keys)

	// Slot-level diff via the replicas directly: moved slots' keys now
	// live only on replica 2; unmoved slots' keys never moved.
	for _, k := range h.keys {
		s := qlove.SlotOf(k)
		owner := s % 2
		if moved[s] {
			owner = 2
		}
		for i, rs := range fx.replicas {
			resp, _ := get(t, rs, "/query?key="+k)
			if (resp.StatusCode == http.StatusOK) != (i == owner) {
				t.Fatalf("key %q (slot %d, moved=%v) on replica %d: %s, owner %d", k, s, moved[s], i, resp.Status, owner)
			}
		}
	}

	// /slots reflects the flipped table.
	var report SlotsReport
	if _, body := get(t, fx.fanin, "/slots"); true {
		if err := json.Unmarshal(body, &report); err != nil {
			t.Fatal(err)
		}
	}
	if report.Quorum != 1 {
		t.Fatalf("quorum %d", report.Quorum)
	}
	for s := 0; s < qlove.Slots; s++ {
		want := s % 2
		if moved[s] {
			want = 2
		}
		if got := report.Map.Primary(s); got != want {
			t.Fatalf("slot %d primary %d in /slots, want %d", s, got, want)
		}
	}

	// Delta chains continue across the migration; the fan-in snapshot
	// stays bit-identical to the reference.
	fx.push(t, "w", h.round(t))
	requireQuerySweep(t, "post-move round", fx, h.keys)
	_, bf := get(t, fx.fanin, "/snapshot")
	_, br := get(t, fx.ref, "/snapshot")
	if !bytes.Equal(bf, br) {
		t.Fatal("fan-in snapshot diverges from reference after migration")
	}

	// Invalid moves are rejected without touching the table.
	someMoved := -1
	for s := range moved {
		someMoved = s
		break
	}
	for _, bad := range []struct {
		name, query string
		status      int
	}{
		{"GET method", fmt.Sprintf("/slots/move?slot=%d&to=1", someMoved), 0}, // via get below
		{"bad slot", "/slots/move?slot=999&to=2", http.StatusBadRequest},
		{"bad destination", "/slots/move?slot=3&to=9", http.StatusBadRequest},
		{"destination already owns", fmt.Sprintf("/slots/move?slot=%d&to=2", someMoved), http.StatusBadRequest},
		{"source does not own", fmt.Sprintf("/slots/move?slot=%d&from=1&to=0", someMoved), http.StatusBadRequest},
	} {
		if bad.status == 0 {
			if resp, _ := get(t, fx.fanin, bad.query); resp.StatusCode != http.StatusMethodNotAllowed {
				t.Fatalf("%s: %s, want 405", bad.name, resp.Status)
			}
			continue
		}
		if resp, body := post(t, fx.fanin, bad.query, nil); resp.StatusCode != bad.status {
			t.Fatalf("%s: %s, want %d: %s", bad.name, resp.Status, bad.status, body)
		}
	}
}
