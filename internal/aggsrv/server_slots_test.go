package aggsrv

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro"
	"repro/internal/workload"
)

// TestServiceSlotEndpoints pins the per-server slot migration surface:
// /slots/export lifts exactly the requested slots' state as re-pushable
// worker blobs, /slots/drop removes exactly those slots, parameters are
// validated, and a backend without the SlotPorter surface 404s.
func TestServiceSlotEndpoints(t *testing.T) {
	cfg := qlove.Config{Spec: qlove.Window{Size: 256, Period: 64}, Phis: []float64{0.5}, FewK: true}

	// Two keys in distinct slots (the hash is deterministic; scan for a
	// pair rather than hard-coding hash values).
	ka := "key-0"
	kb := ""
	for i := 1; kb == ""; i++ {
		if k := fmt.Sprintf("key-%d", i); qlove.SlotOf(k) != qlove.SlotOf(ka) {
			kb = k
		}
	}
	sa, sb := qlove.SlotOf(ka), qlove.SlotOf(kb)

	eng := mkEngine(t, cfg)
	for _, k := range []string{ka, kb} {
		if err := eng.Push(k, workload.Generate(workload.NewNetMon(7), 300)); err != nil {
			t.Fatal(err)
		}
	}
	var blob bytes.Buffer
	if _, err := eng.Export(&blob); err != nil {
		t.Fatal(err)
	}
	eng.Close()

	srv := httptest.NewServer(New(nil).Handler())
	t.Cleanup(srv.Close)
	if resp, body := post(t, srv, "/push?worker=w", blob.Bytes()); resp.StatusCode != http.StatusOK {
		t.Fatalf("push: %s: %s", resp.Status, body)
	}

	// Export one slot; replaying its blobs onto an empty server moves
	// exactly that slot's key, byte-identically.
	resp, body := get(t, srv, fmt.Sprintf("/slots/export?slot=%d", sa))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export: %s: %s", resp.Status, body)
	}
	var exp SlotExport
	if err := json.Unmarshal(body, &exp); err != nil {
		t.Fatal(err)
	}
	if len(exp.Slots) != 1 || exp.Slots[0] != sa || len(exp.Workers) != 1 || exp.Workers[0].Worker != "w" {
		t.Fatalf("export document: %s", body)
	}
	dst := httptest.NewServer(New(nil).Handler())
	t.Cleanup(dst.Close)
	for _, wb := range exp.Workers {
		if resp, body := post(t, dst, "/push?worker="+wb.Worker, wb.Blob); resp.StatusCode != http.StatusOK {
			t.Fatalf("replay: %s: %s", resp.Status, body)
		}
	}
	_, qa := get(t, srv, "/query?key="+ka)
	if resp, qd := get(t, dst, "/query?key="+ka); resp.StatusCode != http.StatusOK || !bytes.Equal(qd, qa) {
		t.Fatalf("replayed key diverges: %s: %s", resp.Status, qd)
	}
	if resp, _ := get(t, dst, "/query?key="+kb); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unexported key present on destination: %s", resp.Status)
	}

	// Multi-slot export carries both keys in one blob per worker.
	resp, body = get(t, srv, fmt.Sprintf("/slots/export?slots=%d,%d", sa, sb))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("multi export: %s: %s", resp.Status, body)
	}
	var multi SlotExport
	if err := json.Unmarshal(body, &multi); err != nil {
		t.Fatal(err)
	}
	dst2 := httptest.NewServer(New(nil).Handler())
	t.Cleanup(dst2.Close)
	for _, wb := range multi.Workers {
		if resp, body := post(t, dst2, "/push?worker="+wb.Worker, wb.Blob); resp.StatusCode != http.StatusOK {
			t.Fatalf("multi replay: %s: %s", resp.Status, body)
		}
	}
	for _, k := range []string{ka, kb} {
		_, want := get(t, srv, "/query?key="+k)
		if resp, got := get(t, dst2, "/query?key="+k); resp.StatusCode != http.StatusOK || !bytes.Equal(got, want) {
			t.Fatalf("multi-replayed key %q diverges: %s", k, resp.Status)
		}
	}

	// Drop removes exactly the requested slot.
	resp, body = post(t, srv, fmt.Sprintf("/slots/drop?slot=%d", sa), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drop: %s: %s", resp.Status, body)
	}
	var dropped struct {
		Slots   []int `json:"slots"`
		Dropped int   `json:"dropped"`
	}
	if err := json.Unmarshal(body, &dropped); err != nil {
		t.Fatal(err)
	}
	if dropped.Dropped < 1 {
		t.Fatalf("drop ack: %s", body)
	}
	if resp, _ := get(t, srv, "/query?key="+ka); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("dropped key still present: %s", resp.Status)
	}
	if resp, _ := get(t, srv, "/query?key="+kb); resp.StatusCode != http.StatusOK {
		t.Fatalf("undropped key lost: %s", resp.Status)
	}

	// Parameter and method validation.
	for _, bad := range []struct {
		name string
		do   func() *http.Response
		want int
	}{
		{"export no slots", func() *http.Response { r, _ := get(t, srv, "/slots/export"); return r }, http.StatusBadRequest},
		{"export both params", func() *http.Response { r, _ := get(t, srv, "/slots/export?slot=1&slots=2"); return r }, http.StatusBadRequest},
		{"export bad slot", func() *http.Response { r, _ := get(t, srv, "/slots/export?slot=256"); return r }, http.StatusBadRequest},
		{"export not a number", func() *http.Response { r, _ := get(t, srv, "/slots/export?slots=1,x"); return r }, http.StatusBadRequest},
		{"export wrong method", func() *http.Response { r, _ := post(t, srv, "/slots/export?slot=1", nil); return r }, http.StatusMethodNotAllowed},
		{"drop wrong method", func() *http.Response { r, _ := get(t, srv, "/slots/drop?slot=1"); return r }, http.StatusMethodNotAllowed},
		{"drop bad slot", func() *http.Response { r, _ := post(t, srv, "/slots/drop?slot=-1", nil); return r }, http.StatusBadRequest},
	} {
		if resp := bad.do(); resp.StatusCode != bad.want {
			t.Fatalf("%s: %s, want %d", bad.name, resp.Status, bad.want)
		}
	}

	// A backend without the porter surface (the in-process partition
	// manages its own slots) answers 404, not 500.
	part, err := qlove.NewPartitioned(2, qlove.AggregatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	psrv := httptest.NewServer(New(part).Handler())
	t.Cleanup(psrv.Close)
	if resp, _ := get(t, psrv, "/slots/export?slot=1"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("partitioned export: %s, want 404", resp.Status)
	}
	if resp, _ := post(t, psrv, "/slots/drop?slot=1", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("partitioned drop: %s, want 404", resp.Status)
	}
}
