package aggsrv

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/wire"
)

// Fanin is the out-of-process horizontal tier: an HTTP router over N
// remote aggregator replica servers, each owning the logical keys that
// hash to it (the same qlove.PartitionOf hash the in-process Partitioned
// uses, so any router instance partitions identically).
//
// It serves the same endpoints as Server:
//
//   - /push splits the worker's blob frame-by-frame — bit-verbatim, via
//     the wire raw scanner — and forwards each frame to its owner IN
//     PARALLEL; every reachable replica receives a push (empty for
//     non-owners) so worker liveness and push deadlines stay coherent
//     partition-wide. A failing replica never blocks delivery to the
//     others: the response is 200 with the summed ack when every replica
//     applied, or 502 with a body naming exactly which replicas failed.
//   - /query proxies to the key's single owner, response bytes untouched;
//     transport errors and 5xx are retried with exponential backoff +
//     jitter (queries are idempotent reads), and when the owner has a
//     configured mirror the read hedges there after HedgeDelay — or goes
//     straight to the mirror while the owner is ejected.
//   - /snapshot fans out in parallel, then merge-sorts the replicas'
//     disjoint, per-replica-sorted key arrays — each key's JSON element
//     relayed verbatim, so estimates remain bit-identical to the owning
//     replica's. With every replica healthy the output is byte-identical
//     to a single-process server; with some unreachable it degrades to
//     the reachable keys plus a "degraded" field naming the losses, and
//     502s only when NO replica answered.
//   - /healthz probes every replica and reports per-replica status
//     (ok/down, consecutive failures) alongside the aggregate counts;
//     the aggregate status is "degraded" while any replica is down.
//   - /metrics aggregates across replicas, tolerating outages per-replica.
//
// Replica health: FailThreshold consecutive failures (transport errors or
// 5xx) eject a replica — pushes skip it and queries prefer its mirror —
// and a background prober reinstates it as soon as its /healthz answers
// again. Close stops the prober.
type Fanin struct {
	cfg    FaninConfig
	reps   []*faninReplica
	client *http.Client
	mux    *http.ServeMux

	stopOnce sync.Once
	stop     chan struct{}
}

// FaninConfig configures the router's replicas and resilience knobs.
type FaninConfig struct {
	// Replicas are the replica base URLs ("http://10.0.0.1:7171"), one per
	// partition. Duplicates (after trailing-slash normalization) are
	// rejected — two identical owners would silently split one partition.
	Replicas []string
	// Mirrors optionally names a read mirror per replica (same length as
	// Replicas; empty entries mean no mirror). A mirror serves the same
	// partition's data — /query hedges to it after HedgeDelay, and reads
	// go straight to it while its primary is ejected.
	Mirrors []string
	// Client overrides the HTTP client. nil builds one with Timeout as
	// both the connect and the full per-request deadline — never
	// http.DefaultClient, whose missing timeout lets one wedged replica
	// hang every request through the router.
	Client *http.Client
	// Timeout is the per-request deadline for the built-in client
	// (<= 0 means 10s). Ignored when Client is set.
	Timeout time.Duration
	// Retries is how many times an idempotent read (/query, /snapshot
	// parts) is retried after a transport error or 5xx (< 0 means 0,
	// 0 means the default 2). Pushes are never retried: a replica may
	// have applied frames before failing mid-response.
	Retries int
	// RetryBackoff is the base backoff before the first retry; each
	// retry doubles it and adds up to 50% jitter (<= 0 means 25ms).
	RetryBackoff time.Duration
	// HedgeDelay is how long /query waits on the owner before also asking
	// its mirror, first answer wins (<= 0 means 100ms). Only meaningful
	// with Mirrors.
	HedgeDelay time.Duration
	// FailThreshold is how many consecutive failures eject a replica
	// (<= 0 means 3).
	FailThreshold int
	// ProbeInterval is how often the background prober re-checks ejected
	// replicas for reinstatement (<= 0 means 1s).
	ProbeInterval time.Duration
}

// faninReplica is one replica's address and live health state.
type faninReplica struct {
	url    string
	mirror string // "" = none
	fails  atomic.Int32
	down   atomic.Bool
}

// NewFanin returns a router over the replica base URLs with default
// resilience settings. client nil means a default client WITH timeouts
// (never http.DefaultClient).
func NewFanin(urls []string, client *http.Client) (*Fanin, error) {
	return NewFaninConfig(FaninConfig{Replicas: urls, Client: client})
}

// NewFaninConfig returns a router configured by cfg.
func NewFaninConfig(cfg FaninConfig) (*Fanin, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("aggsrv: fan-in needs at least one replica URL")
	}
	if len(cfg.Mirrors) != 0 && len(cfg.Mirrors) != len(cfg.Replicas) {
		return nil, fmt.Errorf("aggsrv: %d mirrors for %d replicas (must match, empty entries allowed)",
			len(cfg.Mirrors), len(cfg.Replicas))
	}
	normalize := func(u string) (string, error) {
		parsed, err := url.Parse(u)
		if err != nil || parsed.Scheme == "" || parsed.Host == "" {
			return "", fmt.Errorf("aggsrv: bad replica URL %q", u)
		}
		return strings.TrimRight(u, "/"), nil
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.Retries == 0 {
		cfg.Retries = 2
	} else if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 25 * time.Millisecond
	}
	if cfg.HedgeDelay <= 0 {
		cfg.HedgeDelay = 100 * time.Millisecond
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 3
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}

	reps := make([]*faninReplica, len(cfg.Replicas))
	seen := make(map[string]struct{}, len(cfg.Replicas))
	for i, u := range cfg.Replicas {
		clean, err := normalize(u)
		if err != nil {
			return nil, err
		}
		if _, dup := seen[clean]; dup {
			return nil, fmt.Errorf("aggsrv: duplicate replica URL %q — one partition cannot have two identical owners", clean)
		}
		seen[clean] = struct{}{}
		reps[i] = &faninReplica{url: clean}
		if len(cfg.Mirrors) != 0 && cfg.Mirrors[i] != "" {
			if reps[i].mirror, err = normalize(cfg.Mirrors[i]); err != nil {
				return nil, fmt.Errorf("aggsrv: replica %d mirror: %w", i, err)
			}
		}
	}

	client := cfg.Client
	if client == nil {
		// A dedicated transport so the dial deadline is bounded separately
		// from the whole-request Timeout: a black-holed replica fails at
		// connect, not after the full request budget.
		dial := cfg.Timeout
		if dial > 2*time.Second {
			dial = 2 * time.Second
		}
		client = &http.Client{
			Timeout: cfg.Timeout,
			Transport: &http.Transport{
				DialContext:         (&net.Dialer{Timeout: dial}).DialContext,
				MaxIdleConnsPerHost: 16,
			},
		}
	}

	f := &Fanin{cfg: cfg, reps: reps, client: client, mux: http.NewServeMux(), stop: make(chan struct{})}
	f.mux.HandleFunc("/push", f.handlePush)
	f.mux.HandleFunc("/query", f.handleQuery)
	f.mux.HandleFunc("/snapshot", f.handleSnapshot)
	f.mux.HandleFunc("/healthz", f.handleHealthz)
	f.mux.HandleFunc("/metrics", f.handleMetrics)
	go f.probeLoop()
	return f, nil
}

// Handler returns the root handler for mounting on any http.Server.
func (f *Fanin) Handler() http.Handler { return f.mux }

// Replicas returns the replica base URLs.
func (f *Fanin) Replicas() []string {
	out := make([]string, len(f.reps))
	for i, rep := range f.reps {
		out[i] = rep.url
	}
	return out
}

// Close stops the background health prober. The router keeps serving
// (ejected replicas just stop being reinstated automatically).
func (f *Fanin) Close() error {
	f.stopOnce.Do(func() { close(f.stop) })
	return nil
}

func (f *Fanin) owner(base string) int { return qlove.PartitionOf(base, len(f.reps)) }

// logicalBase strips a salted sub-stream suffix ("key\x00<j>") so salted
// frames route with their base key, keeping whole salt groups on one
// replica.
func logicalBase(key string) string {
	if i := strings.IndexByte(key, 0); i >= 0 {
		return key[:i]
	}
	return key
}

// record folds one request outcome into the replica's health: a success
// clears the failure streak and reinstates; FailThreshold consecutive
// failures eject.
func (f *Fanin) record(rep *faninReplica, ok bool) {
	if ok {
		rep.fails.Store(0)
		rep.down.Store(false)
		return
	}
	if int(rep.fails.Add(1)) >= f.cfg.FailThreshold {
		rep.down.Store(true)
	}
}

// probeLoop reinstates ejected replicas: every ProbeInterval, each down
// replica's /healthz is probed, and a 200 brings it back.
func (f *Fanin) probeLoop() {
	t := time.NewTicker(f.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-t.C:
		}
		for _, rep := range f.reps {
			if !rep.down.Load() {
				continue
			}
			status, _, err := f.fetch(rep.url, "/healthz")
			f.record(rep, err == nil && status == http.StatusOK)
		}
	}
}

// fetch GETs one replica path, returning status and body.
func (f *Fanin) fetch(base, path string) (int, []byte, error) {
	resp, err := f.client.Get(base + path)
	if err != nil {
		return 0, nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, body, nil
}

// fetchRetry is fetch with the idempotent-read retry policy: transport
// errors and 5xx retry up to Retries times with doubling backoff + jitter;
// every attempt's outcome feeds the replica's health. 4xx pass straight
// through — they are the replica's answer, not its failure.
func (f *Fanin) fetchRetry(rep *faninReplica, path string) (int, []byte, error) {
	var (
		status int
		body   []byte
		err    error
	)
	for attempt := 0; ; attempt++ {
		status, body, err = f.fetch(rep.url, path)
		ok := err == nil && status < 500
		f.record(rep, ok)
		if ok || attempt >= f.cfg.Retries {
			return status, body, err
		}
		backoff := f.cfg.RetryBackoff << attempt
		backoff += time.Duration(rand.Int63n(int64(backoff/2) + 1))
		select {
		case <-f.stop:
			return status, body, err
		case <-time.After(backoff):
		}
	}
}

// --- push ---

// FaninPushOutcome is one replica's result within a fan-out push.
type FaninPushOutcome struct {
	URL    string `json:"url"`
	OK     bool   `json:"ok"`
	Error  string `json:"error,omitempty"`
	Frames int    `json:"frames,omitempty"`
	Keys   int    `json:"keys,omitempty"`
}

// FaninPushError is the 502 body when any replica failed: the replicas
// that failed by name, plus every replica's outcome. Frames delivered to
// the replicas that DID apply remain applied (the worker's next delta
// against a replica that missed frames is rejected there, and the worker
// re-bootstraps — exactly the lost-blob path).
type FaninPushError struct {
	Error    string             `json:"error"`
	Failed   []string           `json:"failed"`
	Outcomes []FaninPushOutcome `json:"outcomes"`
}

func (f *Fanin) handlePush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "push is POST-only")
		return
	}
	worker := r.URL.Query().Get("worker")
	if worker == "" {
		writeErr(w, http.StatusBadRequest, "push needs a ?worker=ID (the per-worker fold state is keyed by it)")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPushBody))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "read push body: %v", err)
		return
	}
	// Route the whole blob before forwarding anything: a malformed blob is
	// rejected with zero frames applied anywhere.
	parts := make([]bytes.Buffer, len(f.reps))
	sc := wire.NewRawScanner(bytes.NewReader(body))
	for {
		_, key, frame, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			writeErr(w, http.StatusBadRequest, "scan push blob: %v", err)
			return
		}
		parts[f.owner(logicalBase(key))].Write(frame)
	}
	// Fan out to every replica IN PARALLEL — one slow or dead replica never
	// blocks delivery to the others, and every replica's outcome is
	// reported. Ejected replicas are skipped (their outcome says so) rather
	// than spending the full timeout on a known-dead peer every push.
	outcomes := make([]FaninPushOutcome, len(f.reps))
	var wg sync.WaitGroup
	for i, rep := range f.reps {
		out := &outcomes[i]
		out.URL = rep.url
		if rep.down.Load() {
			out.Error = "replica ejected (consecutive failures); awaiting probe reinstatement"
			continue
		}
		wg.Add(1)
		go func(i int, rep *faninReplica) {
			defer wg.Done()
			resp, err := f.client.Post(rep.url+"/push?worker="+url.QueryEscape(worker),
				"application/octet-stream", bytes.NewReader(parts[i].Bytes()))
			if err != nil {
				f.record(rep, false)
				out.Error = err.Error()
				return
			}
			rb, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			// Health counts transport failures and 5xx; a 4xx is the
			// replica answering (e.g. a rejected cursor), not it failing.
			f.record(rep, resp.StatusCode < 500)
			if resp.StatusCode != http.StatusOK {
				out.Error = fmt.Sprintf("status %d: %s", resp.StatusCode, bytes.TrimSpace(rb))
				return
			}
			var pr PushResult
			if err := json.Unmarshal(rb, &pr); err != nil {
				out.Error = fmt.Sprintf("bad push ack: %v", err)
				return
			}
			out.OK = true
			out.Frames = pr.Frames
			out.Keys = pr.Keys
		}(i, rep)
	}
	wg.Wait()
	frames, keys := 0, 0
	var failed []string
	for _, out := range outcomes {
		if out.OK {
			frames += out.Frames
			keys += out.Keys // replica key sets are disjoint: the sum is the total
		} else {
			failed = append(failed, out.URL)
		}
	}
	if len(failed) > 0 {
		writeJSON(w, http.StatusBadGateway, FaninPushError{
			Error:    fmt.Sprintf("push failed at %d of %d replicas: %s", len(failed), len(f.reps), strings.Join(failed, ", ")),
			Failed:   failed,
			Outcomes: outcomes,
		})
		return
	}
	writeJSON(w, http.StatusOK, PushResult{Worker: worker, Frames: frames, Keys: keys})
}

// --- query ---

type fetchResult struct {
	status int
	body   []byte
	err    error
}

// queryOwner answers one /query path from the owner replica, hedging to
// its mirror: straight to the mirror while the owner is ejected, or after
// HedgeDelay without an owner answer — first good answer wins.
func (f *Fanin) queryOwner(rep *faninReplica, path string) fetchResult {
	primary := func(ch chan<- fetchResult) {
		s, b, e := f.fetchRetry(rep, path)
		ch <- fetchResult{s, b, e}
	}
	if rep.mirror == "" {
		ch := make(chan fetchResult, 1)
		primary(ch)
		return <-ch
	}
	mirror := func(ch chan<- fetchResult) {
		s, b, e := f.fetch(rep.mirror, path)
		ch <- fetchResult{s, b, e}
	}
	// The buffered channel lets a late loser complete without leaking its
	// goroutine after we've already answered.
	ch := make(chan fetchResult, 2)
	first, second := primary, mirror
	if rep.down.Load() {
		first, second = mirror, primary // ejected owner: lead with the mirror
	}
	go first(ch)
	pending := 1
	hedged := false
	var last fetchResult
	timer := time.NewTimer(f.cfg.HedgeDelay)
	defer timer.Stop()
	for pending > 0 {
		select {
		case res := <-ch:
			pending--
			last = res
			if res.err == nil && res.status < 500 {
				return res
			}
			// The leader failed outright: launch the hedge immediately
			// rather than waiting out the delay.
			if !hedged {
				hedged = true
				pending++
				go second(ch)
			}
		case <-timer.C:
			if !hedged {
				hedged = true
				pending++
				go second(ch)
			}
		}
	}
	return last
}

func (f *Fanin) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "query is GET-only")
		return
	}
	if !r.URL.Query().Has("key") {
		writeErr(w, http.StatusBadRequest, "query needs ?key=")
		return
	}
	rep := f.reps[f.owner(r.URL.Query().Get("key"))]
	res := f.queryOwner(rep, "/query?"+r.URL.RawQuery)
	if res.err != nil {
		writeErr(w, http.StatusBadGateway, "replica %s: %v", rep.url, res.err)
		return
	}
	// Relay the owner's answer verbatim — bytes, status and all — so the
	// client sees bit-identical estimates to asking the replica directly.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// --- snapshot ---

// snapshotKeys is the minimal decode of a replica /snapshot: each key's
// element is kept as raw JSON so the fan-in re-emits it bit-identically.
type snapshotKeys struct {
	Keys []json.RawMessage `json:"keys"`
}

func (f *Fanin) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "snapshot is GET-only")
		return
	}
	type keyed struct {
		key string
		raw json.RawMessage
	}
	type repSnap struct {
		keys []keyed
		err  error
	}
	parts := make([]repSnap, len(f.reps))
	var wg sync.WaitGroup
	for i, rep := range f.reps {
		wg.Add(1)
		go func(i int, rep *faninReplica) {
			defer wg.Done()
			status, body, err := f.fetchRetry(rep, "/snapshot")
			if err == nil && status != http.StatusOK {
				err = fmt.Errorf("status %d", status)
			}
			if err != nil && rep.mirror != "" {
				// The partition's data survives on the mirror.
				if ms, mb, merr := f.fetch(rep.mirror, "/snapshot"); merr == nil && ms == http.StatusOK {
					status, body, err = ms, mb, nil
				}
			}
			if err != nil {
				parts[i].err = fmt.Errorf("replica %s: %w", rep.url, err)
				return
			}
			var sk snapshotKeys
			if err := json.Unmarshal(body, &sk); err != nil {
				parts[i].err = fmt.Errorf("replica %s: bad snapshot: %w", rep.url, err)
				return
			}
			for _, raw := range sk.Keys {
				var k struct {
					Key string `json:"key"`
				}
				if err := json.Unmarshal(raw, &k); err != nil {
					parts[i].err = fmt.Errorf("replica %s: bad key report: %w", rep.url, err)
					return
				}
				parts[i].keys = append(parts[i].keys, keyed{key: k.Key, raw: raw})
			}
		}(i, rep)
	}
	wg.Wait()
	var all []keyed
	var degraded []string
	for i, p := range parts {
		if p.err != nil {
			degraded = append(degraded, f.reps[i].url)
			continue
		}
		all = append(all, p.keys...)
	}
	if len(degraded) == len(f.reps) {
		writeErr(w, http.StatusBadGateway, "no replica answered /snapshot (%s)", strings.Join(degraded, ", "))
		return
	}
	// Disjoint per-replica key sets: a global sort restores exactly the
	// single-process /snapshot order. With every replica healthy the body
	// below is byte-identical to a single-process server's; a degraded
	// fan-out appends the unreachable replicas so the partial view is
	// explicit, never silent.
	sort.Slice(all, func(i, j int) bool { return all[i].key < all[j].key })
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, `{"keys":[`)
	for i, k := range all {
		if i > 0 {
			io.WriteString(w, ",")
		}
		w.Write(k.raw)
	}
	if len(degraded) > 0 {
		io.WriteString(w, `],"degraded":`)
		b, _ := json.Marshal(degraded)
		w.Write(b)
		io.WriteString(w, "}\n")
		return
	}
	io.WriteString(w, "]}\n")
}

// --- healthz ---

// FaninReplicaHealth is one replica's health as seen by the router.
type FaninReplicaHealth struct {
	URL                 string `json:"url"`
	Status              string `json:"status"` // "ok" | "down"
	ConsecutiveFailures int    `json:"consecutive_failures,omitempty"`
}

// FaninHealth is the fan-in /healthz document: the aggregate Health shape
// (so clients of a single server parse it unchanged) plus per-replica
// detail. Status is "degraded" while any replica is unreachable.
type FaninHealth struct {
	Status   string               `json:"status"`
	Workers  int                  `json:"workers"`
	Keys     int                  `json:"keys"`
	Replicas []FaninReplicaHealth `json:"replicas"`
}

func (f *Fanin) handleHealthz(w http.ResponseWriter, r *http.Request) {
	out := FaninHealth{Status: "ok", Replicas: make([]FaninReplicaHealth, len(f.reps))}
	counts := make([]Health, len(f.reps))
	var wg sync.WaitGroup
	for i, rep := range f.reps {
		wg.Add(1)
		go func(i int, rep *faninReplica) {
			defer wg.Done()
			rh := &out.Replicas[i]
			rh.URL = rep.url
			status, body, err := f.fetch(rep.url, "/healthz")
			ok := err == nil && status == http.StatusOK
			f.record(rep, ok)
			rh.ConsecutiveFailures = int(rep.fails.Load())
			if !ok {
				rh.Status = "down"
				return
			}
			rh.Status = "ok"
			json.Unmarshal(body, &counts[i]) // best-effort: counts stay zero on a bad body
		}(i, rep)
	}
	wg.Wait()
	for i, rh := range out.Replicas {
		if rh.Status != "ok" {
			out.Status = "degraded"
			continue
		}
		if counts[i].Workers > out.Workers {
			out.Workers = counts[i].Workers // every replica hosts every worker
		}
		out.Keys += counts[i].Keys
	}
	writeJSON(w, http.StatusOK, out)
}

// --- metrics ---

// FaninMetrics is the fan-in's /metrics document: each replica's own
// metrics report, keyed by its URL.
type FaninMetrics struct {
	Replicas []FaninReplicaMetrics `json:"replicas"`
}

// FaninReplicaMetrics is one replica's metrics as relayed by the fan-in;
// Error is set instead of Metrics for an unreachable replica.
type FaninReplicaMetrics struct {
	URL     string          `json:"url"`
	Metrics json.RawMessage `json:"metrics,omitempty"`
	Error   string          `json:"error,omitempty"`
}

func (f *Fanin) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "metrics is GET-only")
		return
	}
	out := FaninMetrics{Replicas: make([]FaninReplicaMetrics, len(f.reps))}
	var wg sync.WaitGroup
	for i, rep := range f.reps {
		wg.Add(1)
		go func(i int, rep *faninReplica) {
			defer wg.Done()
			out.Replicas[i].URL = rep.url
			status, body, err := f.fetch(rep.url, "/metrics")
			f.record(rep, err == nil && status < 500)
			if err != nil {
				out.Replicas[i].Error = err.Error()
				return
			}
			out.Replicas[i].Metrics = json.RawMessage(body)
		}(i, rep)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, out)
}
