package aggsrv

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/wire"
)

// Fanin is the out-of-process horizontal tier: an HTTP router over N
// remote aggregator replica servers hosting the qlove.Slots hash slots of
// the key space under a qlove.SlotMap (the same slot hash the in-process
// Partitioned uses, so any router instance partitions identically). Each
// slot has Replication owners holding full copies of its state; the
// default map at replication 1 routes exactly like the old PartitionOf
// modulo, so a single-copy tier behaves unchanged.
//
// It serves the same endpoints as Server:
//
//   - /push splits the worker's blob frame-by-frame — bit-verbatim, via
//     the wire raw scanner — and forwards each frame to EVERY owner of its
//     slot IN PARALLEL; every reachable replica receives a push (empty for
//     non-owners) so worker liveness and push deadlines stay coherent
//     partition-wide. The push succeeds when every slot that carried
//     frames was applied by at least Quorum of its owners; otherwise it
//     502s naming the failed replicas and slots. An owner that missed
//     frames is marked dirty and resynced in the background (below).
//   - /query proxies to the key's primary owner, response bytes untouched;
//     transport errors and 5xx are retried with exponential backoff +
//     jitter (queries are idempotent reads), and the read fails over /
//     hedges across the slot's remaining owners — clean live owners
//     first, then dirty ones (stale beats absent), then ejected ones.
//   - /snapshot fans out in parallel, then reads each key from its slot's
//     first preferred owner that answered — each key's JSON element
//     relayed verbatim, so estimates remain bit-identical to the owning
//     replica's. With every replica healthy the output is byte-identical
//     to a single-process server; with some unreachable it degrades to
//     the covered keys plus a "degraded" field naming the losses, and
//     502s only when NO replica answered.
//   - /healthz probes every replica and reports per-replica status
//     (ok/down, dirty, consecutive failures) plus per-slot coverage (how
//     many slots have all / some / none of their owners live); the
//     aggregate status is "degraded" while any replica is down or dirty.
//   - /metrics aggregates across replicas, tolerating outages per-replica.
//   - /slots reports the live slot table (owners per slot, quorum).
//   - /slots/move?slot=S&to=R (POST) migrates one slot live: the slot's
//     state is exported from a clean owner, replayed onto the new owner,
//     and the table flips — all under the router's write lock, so
//     concurrent pushes and reads drain first and resume against the new
//     table. Growing a tier N→N+1 is a handful of moves, not a reshuffle.
//
// Replica health: FailThreshold consecutive failures (transport errors or
// 5xx) eject a replica — pushes skip it and reads prefer its peers — and
// a background prober reinstates it as soon as its /healthz answers
// again. A replica that missed frames for a slot it owns (ejected during
// a push, or its cursor rejected a delta) is marked DIRTY: reads prefer
// clean owners, and the prober resyncs each dirty replica's slots from a
// clean live owner (slot export → replay), clearing the flag when every
// owned slot has been repaired. Close stops the prober.
type Fanin struct {
	cfg    FaninConfig
	reps   []*faninReplica
	client *http.Client
	mux    *http.ServeMux

	// mu guards the slot table. Read-held across /push fan-out and reads,
	// write-held across /slots/move — so a migration drains in-flight
	// traffic, flips, and lets it resume against the new table: no frame
	// can land at an old owner after its slot moved.
	mu    sync.RWMutex
	slots *qlove.SlotMap

	stopOnce sync.Once
	stop     chan struct{}
}

// FaninConfig configures the router's replicas and resilience knobs.
type FaninConfig struct {
	// Replicas are the replica base URLs ("http://10.0.0.1:7171"), one per
	// partition. Duplicates (after trailing-slash normalization) are
	// rejected — two identical owners would silently split one partition.
	Replicas []string
	// Replication is the copies-per-slot factor, in [1, len(Replicas)];
	// 0 means 1 (no replication). Ignored when Slots is set (the map
	// carries its own factor).
	Replication int
	// Quorum is how many of a slot's owners must apply a push's frames
	// for the slot to count as delivered, in [1, Replication]; 0 means
	// ⌈Replication/2⌉ — a strict majority for odd factors, half for even
	// ones, so an R=2 pair keeps accepting writes when one replica dies.
	Quorum int
	// Slots optionally seeds a non-canonical slot table (it is cloned;
	// owner indices must be < len(Replicas)). Nil builds the canonical
	// qlove.NewSlotMap(len(Replicas), Replication), whose primaries
	// follow PartitionOf.
	Slots *qlove.SlotMap
	// Client overrides the HTTP client. nil builds one with Timeout as
	// both the connect and the full per-request deadline — never
	// http.DefaultClient, whose missing timeout lets one wedged replica
	// hang every request through the router.
	Client *http.Client
	// Timeout is the per-request deadline for the built-in client
	// (<= 0 means 10s). Ignored when Client is set.
	Timeout time.Duration
	// Retries is how many times an idempotent read (/query, /snapshot
	// parts) is retried after a transport error or 5xx (< 0 means 0,
	// 0 means the default 2). Pushes are never retried: a replica may
	// have applied frames before failing mid-response.
	Retries int
	// RetryBackoff is the base backoff before the first retry; each
	// retry doubles it — capped at maxRetryBackoff — and adds up to 50%
	// jitter (<= 0 means 25ms).
	RetryBackoff time.Duration
	// HedgeDelay is how long a read waits on one owner before also asking
	// the slot's next owner, first answer wins (<= 0 means 100ms). Only
	// meaningful at Replication >= 2.
	HedgeDelay time.Duration
	// FailThreshold is how many consecutive failures eject a replica
	// (<= 0 means 3).
	FailThreshold int
	// ProbeInterval is how often the background prober re-checks ejected
	// replicas for reinstatement and resyncs dirty ones (<= 0 means 1s).
	ProbeInterval time.Duration
}

// faninReplica is one replica's address and live health state.
type faninReplica struct {
	url   string
	fails atomic.Int32
	down  atomic.Bool
	// dirty marks state-divergence: the replica missed a push carrying
	// frames for a slot it owns (ejected, transport failure, or its
	// cursor rejected the delta). Reads prefer clean owners; the prober
	// resyncs dirty replicas from clean ones and clears the flag.
	dirty atomic.Bool
}

// maxRetryBackoff caps the exponential retry backoff: past a couple of
// seconds a bigger wait only delays the failure verdict, and an unbounded
// shift eventually overflows time.Duration into a negative value (which
// used to panic the jitter draw).
const maxRetryBackoff = 2 * time.Second

// maxReplicaBody caps how much of a replica response the router will
// buffer (same ceiling as a push body); a misbehaving replica is a failed
// replica, not an OOM.
const maxReplicaBody = maxPushBody

// maxAckBody caps a push/drop acknowledgement body — a small JSON
// document; anything near the cap is garbage.
const maxAckBody = 1 << 20

// NewFanin returns a router over the replica base URLs with default
// resilience settings (replication 1). client nil means a default client
// WITH timeouts (never http.DefaultClient).
func NewFanin(urls []string, client *http.Client) (*Fanin, error) {
	return NewFaninConfig(FaninConfig{Replicas: urls, Client: client})
}

// NewFaninConfig returns a router configured by cfg.
func NewFaninConfig(cfg FaninConfig) (*Fanin, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("aggsrv: fan-in needs at least one replica URL")
	}
	normalize := func(u string) (string, error) {
		parsed, err := url.Parse(u)
		if err != nil || parsed.Scheme == "" || parsed.Host == "" {
			return "", fmt.Errorf("aggsrv: bad replica URL %q", u)
		}
		return strings.TrimRight(u, "/"), nil
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.Retries == 0 {
		cfg.Retries = 2
	} else if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 25 * time.Millisecond
	}
	if cfg.HedgeDelay <= 0 {
		cfg.HedgeDelay = 100 * time.Millisecond
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 3
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}

	// The slot table: canonical for the configured replication factor, or
	// the caller's own (a resize-in-progress layout, a recovered table).
	if cfg.Slots != nil {
		if cfg.Replication != 0 && cfg.Replication != cfg.Slots.Replication() {
			return nil, fmt.Errorf("aggsrv: slot map replication %d, config says %d", cfg.Slots.Replication(), cfg.Replication)
		}
		cfg.Replication = cfg.Slots.Replication()
		if max := cfg.Slots.MaxReplica(); max >= len(cfg.Replicas) {
			return nil, fmt.Errorf("aggsrv: slot map references replica %d, only %d configured", max, len(cfg.Replicas))
		}
	}
	if cfg.Replication == 0 {
		cfg.Replication = 1
	}
	if cfg.Replication < 0 || cfg.Replication > len(cfg.Replicas) {
		return nil, fmt.Errorf("aggsrv: replication factor %d outside [1, %d replicas]", cfg.Replication, len(cfg.Replicas))
	}
	if cfg.Quorum == 0 {
		cfg.Quorum = (cfg.Replication + 1) / 2
	}
	if cfg.Quorum < 0 || cfg.Quorum > cfg.Replication {
		return nil, fmt.Errorf("aggsrv: quorum %d outside [1, replication %d]", cfg.Quorum, cfg.Replication)
	}
	slots := cfg.Slots
	if slots == nil {
		var err error
		if slots, err = qlove.NewSlotMap(len(cfg.Replicas), cfg.Replication); err != nil {
			return nil, err
		}
	} else {
		slots = slots.Clone()
	}

	reps := make([]*faninReplica, len(cfg.Replicas))
	seen := make(map[string]struct{}, len(cfg.Replicas))
	for i, u := range cfg.Replicas {
		clean, err := normalize(u)
		if err != nil {
			return nil, err
		}
		if _, dup := seen[clean]; dup {
			return nil, fmt.Errorf("aggsrv: duplicate replica URL %q — one partition cannot have two identical owners", clean)
		}
		seen[clean] = struct{}{}
		reps[i] = &faninReplica{url: clean}
	}

	client := cfg.Client
	if client == nil {
		// A dedicated transport so the dial deadline is bounded separately
		// from the whole-request Timeout: a black-holed replica fails at
		// connect, not after the full request budget.
		dial := cfg.Timeout
		if dial > 2*time.Second {
			dial = 2 * time.Second
		}
		client = &http.Client{
			Timeout: cfg.Timeout,
			Transport: &http.Transport{
				DialContext:         (&net.Dialer{Timeout: dial}).DialContext,
				MaxIdleConnsPerHost: 16,
			},
		}
	}

	f := &Fanin{cfg: cfg, reps: reps, client: client, mux: http.NewServeMux(), slots: slots, stop: make(chan struct{})}
	f.mux.HandleFunc("/push", f.handlePush)
	f.mux.HandleFunc("/query", f.handleQuery)
	f.mux.HandleFunc("/snapshot", f.handleSnapshot)
	f.mux.HandleFunc("/healthz", f.handleHealthz)
	f.mux.HandleFunc("/metrics", f.handleMetrics)
	f.mux.HandleFunc("/slots", f.handleSlots)
	f.mux.HandleFunc("/slots/move", f.handleSlotMove)
	go f.probeLoop()
	return f, nil
}

// Handler returns the root handler for mounting on any http.Server.
func (f *Fanin) Handler() http.Handler { return f.mux }

// Replicas returns the replica base URLs.
func (f *Fanin) Replicas() []string {
	out := make([]string, len(f.reps))
	for i, rep := range f.reps {
		out[i] = rep.url
	}
	return out
}

// SlotTable returns a copy of the current slot→owners table.
func (f *Fanin) SlotTable() *qlove.SlotMap {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.slots.Clone()
}

// Close stops the background health prober. The router keeps serving
// (ejected replicas just stop being reinstated automatically).
func (f *Fanin) Close() error {
	f.stopOnce.Do(func() { close(f.stop) })
	return nil
}

// record folds one request outcome into the replica's health: a success
// clears the failure streak and reinstates; FailThreshold consecutive
// failures eject. Ejection marks the replica dirty — while it is
// unreachable it misses pushes for slots it owns, so its state must be
// assumed stale until resynced.
func (f *Fanin) record(rep *faninReplica, ok bool) {
	if ok {
		rep.fails.Store(0)
		rep.down.Store(false)
		return
	}
	if int(rep.fails.Add(1)) >= f.cfg.FailThreshold {
		if !rep.down.Swap(true) {
			rep.dirty.Store(true)
		}
	}
}

// probeLoop reinstates ejected replicas and repairs dirty ones: every
// ProbeInterval, each down replica's /healthz is probed (a 200 brings it
// back), then each live dirty replica's owned slots are resynced from
// clean live owners.
func (f *Fanin) probeLoop() {
	t := time.NewTicker(f.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-t.C:
		}
		for _, rep := range f.reps {
			if !rep.down.Load() {
				continue
			}
			status, _, err := f.fetch(rep.url, "/healthz")
			f.record(rep, err == nil && status == http.StatusOK)
		}
		for i, rep := range f.reps {
			if rep.down.Load() || !rep.dirty.Load() {
				continue
			}
			f.resync(i, rep)
		}
	}
}

// resync repairs one live dirty replica: every slot it owns is
// re-exported from a clean live co-owner and replayed (drop, then
// bootstrap frames), and the dirty flag clears once every owned slot
// either resynced or has no clean source to resync from (a slot whose
// every other owner is down or dirty has nothing better to copy — the
// replica's own state is as good as it gets).
//
// Replays race concurrent worker pushes benignly: a push landing between
// export and replay re-applies on top of the replayed bootstrap state via
// its normal delta cursor, or is rejected and re-marks the replica dirty
// for the next probe tick. A slot moved away mid-resync leaves a stray
// replayed copy behind; reads filter by the live table, so a stray is
// wasted memory until the next migration drop, never a wrong answer.
func (f *Fanin) resync(i int, rep *faninReplica) {
	f.mu.RLock()
	table := f.slots.Clone()
	f.mu.RUnlock()
	// Group this replica's owned slots by their first clean live co-owner.
	// A slot with no such co-owner has no better copy anywhere (every
	// other owner is down or itself dirty) — the replica's own state is as
	// good as it gets, so the slot needs no repair.
	bySource := make(map[*faninReplica][]int)
	for _, s := range table.SlotsOwnedBy(i) {
		for _, o := range table.Owners(s) {
			if o == i {
				continue
			}
			if cand := f.reps[o]; !cand.down.Load() && !cand.dirty.Load() {
				bySource[cand] = append(bySource[cand], s)
				break
			}
		}
	}
	for src, slots := range bySource {
		if err := f.replaySlots(src, rep, slots); err != nil {
			return // stay dirty; the next probe tick retries
		}
	}
	// Every repairable slot was repaired: the replica serves reads again.
	// (A push racing the replay may re-mark it dirty — the next tick
	// converges; repair is eventually consistent, reads prefer clean
	// owners meanwhile.)
	rep.dirty.Store(false)
}

// replaySlots copies the given slots' state from replica src to replica
// dst: export from src, drop dst's (possibly stale) resident state for
// those slots, then replay the per-worker bootstrap blobs.
func (f *Fanin) replaySlots(src, dst *faninReplica, slots []int) error {
	parts := make([]string, len(slots))
	for i, s := range slots {
		parts[i] = strconv.Itoa(s)
	}
	q := "?slots=" + strings.Join(parts, ",")
	status, body, err := f.fetch(src.url, "/slots/export"+q)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("export status %d", status)
	}
	var exp SlotExport
	if err := json.Unmarshal(body, &exp); err != nil {
		return fmt.Errorf("bad export: %w", err)
	}
	// Drop before replay: a sub-stream bootstrap frame replaces only its
	// own sub-stream, so stale siblings at dst must go first.
	if status, _, err := f.post(dst.url, "/slots/drop"+q, nil); err != nil || status != http.StatusOK {
		return fmt.Errorf("drop status %d: %v", status, err)
	}
	for _, wb := range exp.Workers {
		status, rb, err := f.post(dst.url, "/push?worker="+url.QueryEscape(wb.Worker), wb.Blob)
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return fmt.Errorf("replay worker %q status %d: %s", wb.Worker, status, bytes.TrimSpace(rb))
		}
	}
	return nil
}

// fetch GETs one replica path, returning status and a bounded body; a
// response past maxReplicaBody is an error (a replica failure), not an
// unbounded buffer.
func (f *Fanin) fetch(base, path string) (int, []byte, error) {
	resp, err := f.client.Get(base + path)
	if err != nil {
		return 0, nil, err
	}
	body, err := readBounded(resp.Body, maxReplicaBody)
	resp.Body.Close()
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, body, nil
}

// post POSTs one replica path, returning status and a bounded ack body.
func (f *Fanin) post(base, path string, body []byte) (int, []byte, error) {
	resp, err := f.client.Post(base+path, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	rb, err := readBounded(resp.Body, maxAckBody)
	resp.Body.Close()
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, rb, nil
}

// readBounded reads r up to limit bytes; anything longer is an error.
func readBounded(r io.Reader, limit int64) ([]byte, error) {
	body, err := io.ReadAll(io.LimitReader(r, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(body)) > limit {
		return nil, fmt.Errorf("response exceeds the %d-byte cap", limit)
	}
	return body, nil
}

// retryBackoff is the pre-jitter backoff before retry `attempt`: base
// doubled per attempt, clamped to maxRetryBackoff. The clamp also guards
// the shift itself — a large attempt count would overflow time.Duration
// negative, and a negative bound panics the jitter draw.
func retryBackoff(base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	for ; attempt > 0; attempt-- {
		base <<= 1
		if base >= maxRetryBackoff || base <= 0 {
			return maxRetryBackoff
		}
	}
	if base > maxRetryBackoff {
		return maxRetryBackoff
	}
	return base
}

// fetchRetry is fetch with the idempotent-read retry policy: transport
// errors and 5xx retry up to Retries times with doubling capped backoff +
// jitter; every attempt's outcome feeds the replica's health. 4xx pass
// straight through — they are the replica's answer, not its failure.
func (f *Fanin) fetchRetry(rep *faninReplica, path string) (int, []byte, error) {
	var (
		status int
		body   []byte
		err    error
	)
	for attempt := 0; ; attempt++ {
		status, body, err = f.fetch(rep.url, path)
		ok := err == nil && status < 500
		f.record(rep, ok)
		if ok || attempt >= f.cfg.Retries {
			return status, body, err
		}
		backoff := retryBackoff(f.cfg.RetryBackoff, attempt)
		if half := int64(backoff / 2); half > 0 {
			backoff += time.Duration(rand.Int63n(half + 1))
		}
		select {
		case <-f.stop:
			return status, body, err
		case <-time.After(backoff):
		}
	}
}

// --- push ---

// FaninPushOutcome is one replica's result within a fan-out push.
type FaninPushOutcome struct {
	URL    string `json:"url"`
	OK     bool   `json:"ok"`
	Error  string `json:"error,omitempty"`
	Frames int    `json:"frames,omitempty"`
	Keys   int    `json:"keys,omitempty"`
}

// FaninPushError is the 502 body when any slot that carried frames missed
// its quorum: the replicas that failed by name, the under-quorum slots,
// plus every replica's outcome. Frames delivered to the replicas that DID
// apply remain applied; owners that missed frames are dirty and resync in
// the background.
type FaninPushError struct {
	Error       string             `json:"error"`
	Failed      []string           `json:"failed"`
	FailedSlots []int              `json:"failed_slots,omitempty"`
	Outcomes    []FaninPushOutcome `json:"outcomes"`
}

func (f *Fanin) handlePush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "push is POST-only")
		return
	}
	worker := r.URL.Query().Get("worker")
	if worker == "" {
		writeErr(w, http.StatusBadRequest, "push needs a ?worker=ID (the per-worker fold state is keyed by it)")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPushBody))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "read push body: %v", err)
		return
	}
	// The slot table is read-held across routing AND delivery: a slot
	// migration (write lock) drains in-flight pushes first, so no frame
	// routed against the old table lands after the flip.
	f.mu.RLock()
	defer f.mu.RUnlock()
	// Route the whole blob before forwarding anything: a malformed blob is
	// rejected with zero frames applied anywhere. Each frame goes to every
	// owner of its slot.
	parts := make([]bytes.Buffer, len(f.reps))
	slotFrames := make(map[int]int) // slot -> frames routed
	frames := 0
	sc := wire.NewRawScanner(bytes.NewReader(body))
	for {
		_, key, frame, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			writeErr(w, http.StatusBadRequest, "scan push blob: %v", err)
			return
		}
		slot := qlove.SlotOf(key)
		slotFrames[slot]++
		frames++
		for _, o := range f.slots.Owners(slot) {
			parts[o].Write(frame)
		}
	}
	// Fan out to every replica IN PARALLEL — one slow or dead replica never
	// blocks delivery to the others, and every replica's outcome is
	// reported. Ejected replicas are skipped (their outcome says so) rather
	// than spending the full timeout on a known-dead peer every push.
	outcomes := make([]FaninPushOutcome, len(f.reps))
	var wg sync.WaitGroup
	for i, rep := range f.reps {
		out := &outcomes[i]
		out.URL = rep.url
		if rep.down.Load() {
			out.Error = "replica ejected (consecutive failures); awaiting probe reinstatement"
			continue
		}
		wg.Add(1)
		go func(i int, rep *faninReplica) {
			defer wg.Done()
			status, rb, err := f.post(rep.url, "/push?worker="+url.QueryEscape(worker), parts[i].Bytes())
			if err != nil {
				f.record(rep, false)
				out.Error = err.Error()
				return
			}
			// Health counts transport failures and 5xx; a 4xx is the
			// replica answering (e.g. a rejected cursor), not it failing.
			f.record(rep, status < 500)
			if status != http.StatusOK {
				out.Error = fmt.Sprintf("status %d: %s", status, bytes.TrimSpace(rb))
				return
			}
			var pr PushResult
			if err := json.Unmarshal(rb, &pr); err != nil {
				out.Error = fmt.Sprintf("bad push ack: %v", err)
				return
			}
			out.OK = true
			out.Frames = pr.Frames
			out.Keys = pr.Keys
		}(i, rep)
	}
	wg.Wait()
	// Quorum accounting, per slot that carried frames: the push succeeds
	// when every such slot was applied by at least Quorum of its owners.
	// An owner that missed its slot's frames — ejected, transport failure,
	// rejected delta — now holds stale state: mark it dirty so reads avoid
	// it and the prober resyncs it.
	var failedSlots []int
	for slot := range slotFrames {
		acked := 0
		for _, o := range f.slots.Owners(slot) {
			if outcomes[o].OK {
				acked++
			} else {
				f.reps[o].dirty.Store(true)
			}
		}
		if acked < f.cfg.Quorum {
			failedSlots = append(failedSlots, slot)
		}
	}
	sort.Ints(failedSlots)
	var failed []string
	keys := 0
	for i, out := range outcomes {
		if !out.OK {
			failed = append(failed, f.reps[i].url)
			continue
		}
		if f.cfg.Replication == 1 {
			keys += out.Keys // disjoint key sets: the sum is the total
		} else if out.Keys > keys {
			keys = out.Keys // overlapping sets: the max is a floor on the total
		}
	}
	if len(failedSlots) > 0 {
		writeJSON(w, http.StatusBadGateway, FaninPushError{
			Error: fmt.Sprintf("push missed quorum %d on %d slots (%d of %d replicas failed: %s)",
				f.cfg.Quorum, len(failedSlots), len(failed), len(f.reps), strings.Join(failed, ", ")),
			Failed:      failed,
			FailedSlots: failedSlots,
			Outcomes:    outcomes,
		})
		return
	}
	writeJSON(w, http.StatusOK, PushResult{Worker: worker, Frames: frames, Keys: keys})
}

// --- query ---

type fetchResult struct {
	status int
	body   []byte
	err    error
}

// readOrder returns the slot's owners in read-preference order: live
// clean owners first (primary first within each class), then live dirty
// ones (stale state beats no answer), then ejected ones (they may have
// revived since the last probe).
func (f *Fanin) readOrder(owners []int) []*faninReplica {
	out := make([]*faninReplica, 0, len(owners))
	for pass := 0; pass < 3; pass++ {
		for _, o := range owners {
			rep := f.reps[o]
			var class int
			switch {
			case rep.down.Load():
				class = 2
			case rep.dirty.Load():
				class = 1
			}
			if class == pass {
				out = append(out, rep)
			}
		}
	}
	return out
}

// queryOwners answers one read path from the candidate owners, hedging:
// the leader gets the full retry policy; each HedgeDelay without a good
// answer — or a leader failing outright — launches the next candidate,
// first good answer wins.
func (f *Fanin) queryOwners(cands []*faninReplica, path string) fetchResult {
	if len(cands) == 1 {
		s, b, e := f.fetchRetry(cands[0], path)
		return fetchResult{s, b, e}
	}
	// The buffered channel lets late losers complete without leaking
	// goroutines after we've already answered.
	ch := make(chan fetchResult, len(cands))
	launched := 0
	launch := func() {
		if launched >= len(cands) {
			return
		}
		rep := cands[launched]
		retry := launched == 0 // the leader retries; hedges get one shot
		launched++
		go func() {
			if retry {
				s, b, e := f.fetchRetry(rep, path)
				ch <- fetchResult{s, b, e}
				return
			}
			s, b, e := f.fetch(rep.url, path)
			f.record(rep, e == nil && s < 500)
			ch <- fetchResult{s, b, e}
		}()
	}
	launch()
	pending := 1
	var last fetchResult
	timer := time.NewTimer(f.cfg.HedgeDelay)
	defer timer.Stop()
	for pending > 0 {
		select {
		case res := <-ch:
			pending--
			last = res
			if res.err == nil && res.status < 500 {
				return res
			}
			// The candidate failed outright: launch the next immediately
			// rather than waiting out the delay.
			if launched < len(cands) {
				launch()
				pending++
			}
		case <-timer.C:
			if launched < len(cands) {
				launch()
				pending++
			}
			timer.Reset(f.cfg.HedgeDelay)
		}
	}
	return last
}

func (f *Fanin) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "query is GET-only")
		return
	}
	if !r.URL.Query().Has("key") {
		writeErr(w, http.StatusBadRequest, "query needs ?key=")
		return
	}
	// Read-held across the fetch: a slot move drains in-flight reads
	// before flipping and dropping the old owner's copy, so a read routed
	// to the old owner always still finds the data there.
	f.mu.RLock()
	defer f.mu.RUnlock()
	cands := f.readOrder(f.slots.OwnersOf(r.URL.Query().Get("key")))
	res := f.queryOwners(cands, "/query?"+r.URL.RawQuery)
	if res.err != nil {
		writeErr(w, http.StatusBadGateway, "replica %s: %v", cands[len(cands)-1].url, res.err)
		return
	}
	// Relay the owner's answer verbatim — bytes, status and all — so the
	// client sees bit-identical estimates to asking the replica directly.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// --- snapshot ---

// snapshotKeys is the minimal decode of a replica /snapshot: each key's
// element is kept as raw JSON so the fan-in re-emits it bit-identically.
type snapshotKeys struct {
	Keys []json.RawMessage `json:"keys"`
}

func (f *Fanin) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "snapshot is GET-only")
		return
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	type repSnap struct {
		keys map[string]json.RawMessage
		err  error
	}
	parts := make([]repSnap, len(f.reps))
	var wg sync.WaitGroup
	for i, rep := range f.reps {
		wg.Add(1)
		go func(i int, rep *faninReplica) {
			defer wg.Done()
			status, body, err := f.fetchRetry(rep, "/snapshot")
			if err == nil && status != http.StatusOK {
				err = fmt.Errorf("status %d", status)
			}
			if err != nil {
				parts[i].err = fmt.Errorf("replica %s: %w", rep.url, err)
				return
			}
			var sk snapshotKeys
			if err := json.Unmarshal(body, &sk); err != nil {
				parts[i].err = fmt.Errorf("replica %s: bad snapshot: %w", rep.url, err)
				return
			}
			parts[i].keys = make(map[string]json.RawMessage, len(sk.Keys))
			for _, raw := range sk.Keys {
				var k struct {
					Key string `json:"key"`
				}
				if err := json.Unmarshal(raw, &k); err != nil {
					parts[i].err = fmt.Errorf("replica %s: bad key report: %w", rep.url, err)
					return
				}
				parts[i].keys[k.Key] = raw
			}
		}(i, rep)
	}
	wg.Wait()
	var degraded []string
	answered := make([]bool, len(f.reps))
	for i, p := range parts {
		if p.err != nil {
			degraded = append(degraded, f.reps[i].url)
			continue
		}
		answered[i] = true
	}
	if len(degraded) == len(f.reps) {
		writeErr(w, http.StatusBadGateway, "no replica answered /snapshot (%s)", strings.Join(degraded, ", "))
		return
	}
	// Each slot elects one snapshot source: its first read-preferred owner
	// that answered. Every key then relays from its slot's source — so
	// replicated copies dedupe, stray copies on non-owners are ignored,
	// and with every replica healthy the body below is byte-identical to a
	// single-process server's. A degraded fan-out appends the unreachable
	// replicas so the partial view is explicit, never silent.
	source := make([]int, qlove.Slots)
	for s := 0; s < qlove.Slots; s++ {
		source[s] = -1
		for _, rep := range f.readOrder(f.slots.Owners(s)) {
			idx := f.replicaIndex(rep)
			if answered[idx] {
				source[s] = idx
				break
			}
		}
	}
	type keyed struct {
		key string
		raw json.RawMessage
	}
	var all []keyed
	for i, p := range parts {
		if !answered[i] {
			continue
		}
		for k, raw := range p.keys {
			if source[qlove.SlotOf(k)] == i {
				all = append(all, keyed{key: k, raw: raw})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].key < all[j].key })
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, `{"keys":[`)
	for i, k := range all {
		if i > 0 {
			io.WriteString(w, ",")
		}
		w.Write(k.raw)
	}
	if len(degraded) > 0 {
		io.WriteString(w, `],"degraded":`)
		b, _ := json.Marshal(degraded)
		w.Write(b)
		io.WriteString(w, "}\n")
		return
	}
	io.WriteString(w, "]}\n")
}

// replicaIndex maps a replica back to its index.
func (f *Fanin) replicaIndex(rep *faninReplica) int {
	for i, r := range f.reps {
		if r == rep {
			return i
		}
	}
	return -1
}

// --- slots admin ---

// SlotsReport is the /slots document: the live table plus the quorum the
// router enforces.
type SlotsReport struct {
	Quorum int            `json:"quorum"`
	Map    *qlove.SlotMap `json:"map"`
}

func (f *Fanin) handleSlots(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "slots is GET-only")
		return
	}
	writeJSON(w, http.StatusOK, SlotsReport{Quorum: f.cfg.Quorum, Map: f.SlotTable()})
}

// SlotMoveResult acknowledges one live slot migration.
type SlotMoveResult struct {
	Slot    int    `json:"slot"`
	From    int    `json:"from"`
	To      int    `json:"to"`
	Source  string `json:"source"`  // the replica the state was exported from
	Workers int    `json:"workers"` // worker blobs replayed
	Dropped bool   `json:"dropped"` // old owner's copy dropped (best-effort)
}

// handleSlotMove migrates one slot live: POST /slots/move?slot=S&to=R
// (&from=F optional, default the slot's primary). The write lock is held
// across export → replay → table flip → old-owner drop, so concurrent
// pushes and reads drain first and resume against the new table — answers
// stay bit-identical through the migration.
func (f *Fanin) handleSlotMove(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "slots/move is POST-only")
		return
	}
	q := r.URL.Query()
	slot, err := strconv.Atoi(q.Get("slot"))
	if err != nil || slot < 0 || slot >= qlove.Slots {
		writeErr(w, http.StatusBadRequest, "need ?slot= in [0, %d)", qlove.Slots)
		return
	}
	to, err := strconv.Atoi(q.Get("to"))
	if err != nil || to < 0 || to >= len(f.reps) {
		writeErr(w, http.StatusBadRequest, "need ?to= in [0, %d replicas)", len(f.reps))
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	owners := f.slots.Owners(slot)
	from := owners[0]
	if fs := q.Get("from"); fs != "" {
		if from, err = strconv.Atoi(fs); err != nil {
			writeErr(w, http.StatusBadRequest, "bad ?from=%q", fs)
			return
		}
	}
	if !f.slots.IsOwner(slot, from) {
		writeErr(w, http.StatusBadRequest, "replica %d does not own slot %d (owners %v)", from, slot, owners)
		return
	}
	if f.slots.IsOwner(slot, to) {
		writeErr(w, http.StatusBadRequest, "replica %d already owns slot %d", to, slot)
		return
	}
	if f.reps[to].down.Load() {
		writeErr(w, http.StatusServiceUnavailable, "destination replica %s is down", f.reps[to].url)
		return
	}
	// The state source must be a CLEAN live owner — `from` itself when
	// eligible, else any co-owner. A dirty source would replicate its
	// staleness into the new owner.
	var src *faninReplica
	for _, o := range append([]int{from}, owners...) {
		if cand := f.reps[o]; !cand.down.Load() && !cand.dirty.Load() {
			src = cand
			break
		}
	}
	if src == nil {
		writeErr(w, http.StatusServiceUnavailable, "no clean live owner of slot %d to export from", slot)
		return
	}
	if err := f.replaySlots(src, f.reps[to], []int{slot}); err != nil {
		writeErr(w, http.StatusBadGateway, "replay slot %d onto %s: %v", slot, f.reps[to].url, err)
		return
	}
	workers := 0 // recount for the ack: replaySlots already validated
	if status, body, err := f.fetch(src.url, "/slots/export?slot="+strconv.Itoa(slot)); err == nil && status == http.StatusOK {
		var exp SlotExport
		if json.Unmarshal(body, &exp) == nil {
			workers = len(exp.Workers)
		}
	}
	if err := f.slots.Move(slot, from, to); err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	// Best-effort drop at the old owner: a failure leaves a stray copy
	// that reads (filtered by the table) never consult.
	dropped := false
	if status, _, err := f.post(f.reps[from].url, "/slots/drop?slot="+strconv.Itoa(slot), nil); err == nil && status == http.StatusOK {
		dropped = true
	}
	writeJSON(w, http.StatusOK, SlotMoveResult{
		Slot: slot, From: from, To: to,
		Source: src.url, Workers: workers, Dropped: dropped,
	})
}

// --- healthz ---

// FaninReplicaHealth is one replica's health as seen by the router.
type FaninReplicaHealth struct {
	URL                 string `json:"url"`
	Status              string `json:"status"` // "ok" | "down"
	Dirty               bool   `json:"dirty,omitempty"`
	ConsecutiveFailures int    `json:"consecutive_failures,omitempty"`
}

// FaninSlotCoverage summarizes per-slot owner liveness: of the Slots hash
// slots, how many have every owner live (FullyCovered), only some
// (UnderReplicated), or none (Uncovered). CleanCovered counts slots with
// at least one live owner that is also in sync (not dirty) — the slots
// that can serve a clean read and source a resync.
type FaninSlotCoverage struct {
	Slots           int `json:"slots"`
	Replication     int `json:"replication"`
	Quorum          int `json:"quorum"`
	FullyCovered    int `json:"fully_covered"`
	UnderReplicated int `json:"under_replicated"`
	Uncovered       int `json:"uncovered"`
	CleanCovered    int `json:"clean_covered"`
}

// FaninHealth is the fan-in /healthz document: the aggregate Health shape
// (so clients of a single server parse it unchanged) plus per-replica
// detail and per-slot coverage. Status is "degraded" while any replica is
// down or dirty.
type FaninHealth struct {
	Status   string               `json:"status"`
	Workers  int                  `json:"workers"`
	Keys     int                  `json:"keys"`
	Replicas []FaninReplicaHealth `json:"replicas"`
	Slots    *FaninSlotCoverage   `json:"slots,omitempty"`
}

func (f *Fanin) handleHealthz(w http.ResponseWriter, r *http.Request) {
	out := FaninHealth{Status: "ok", Replicas: make([]FaninReplicaHealth, len(f.reps))}
	counts := make([]Health, len(f.reps))
	var wg sync.WaitGroup
	for i, rep := range f.reps {
		wg.Add(1)
		go func(i int, rep *faninReplica) {
			defer wg.Done()
			rh := &out.Replicas[i]
			rh.URL = rep.url
			status, body, err := f.fetch(rep.url, "/healthz")
			ok := err == nil && status == http.StatusOK
			f.record(rep, ok)
			rh.ConsecutiveFailures = int(rep.fails.Load())
			rh.Dirty = rep.dirty.Load()
			if !ok {
				rh.Status = "down"
				return
			}
			rh.Status = "ok"
			json.Unmarshal(body, &counts[i]) // best-effort: counts stay zero on a bad body
		}(i, rep)
	}
	wg.Wait()
	for i, rh := range out.Replicas {
		if rh.Status != "ok" || rh.Dirty {
			out.Status = "degraded"
		}
		if rh.Status != "ok" {
			continue
		}
		if counts[i].Workers > out.Workers {
			out.Workers = counts[i].Workers // every replica hosts every worker
		}
		if f.cfg.Replication == 1 {
			out.Keys += counts[i].Keys // disjoint key sets: the sum is the total
		} else if counts[i].Keys > out.Keys {
			out.Keys = counts[i].Keys // overlapping sets: the max is a floor
		}
	}
	// Per-slot coverage from the router's own health view (no extra
	// round-trips: the probes above just refreshed it).
	f.mu.RLock()
	cov := &FaninSlotCoverage{Slots: qlove.Slots, Replication: f.cfg.Replication, Quorum: f.cfg.Quorum}
	for s := 0; s < qlove.Slots; s++ {
		owners := f.slots.Owners(s)
		live, clean := 0, 0
		for _, o := range owners {
			if !f.reps[o].down.Load() {
				live++
				if !f.reps[o].dirty.Load() {
					clean++
				}
			}
		}
		switch {
		case live == len(owners):
			cov.FullyCovered++
		case live > 0:
			cov.UnderReplicated++
		default:
			cov.Uncovered++
		}
		if clean > 0 {
			cov.CleanCovered++
		}
	}
	f.mu.RUnlock()
	out.Slots = cov
	writeJSON(w, http.StatusOK, out)
}

// --- metrics ---

// FaninMetrics is the fan-in's /metrics document: each replica's own
// metrics report, keyed by its URL.
type FaninMetrics struct {
	Replicas []FaninReplicaMetrics `json:"replicas"`
}

// FaninReplicaMetrics is one replica's metrics as relayed by the fan-in;
// Error is set instead of Metrics for an unreachable replica.
type FaninReplicaMetrics struct {
	URL     string          `json:"url"`
	Metrics json.RawMessage `json:"metrics,omitempty"`
	Error   string          `json:"error,omitempty"`
}

func (f *Fanin) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "metrics is GET-only")
		return
	}
	out := FaninMetrics{Replicas: make([]FaninReplicaMetrics, len(f.reps))}
	var wg sync.WaitGroup
	for i, rep := range f.reps {
		wg.Add(1)
		go func(i int, rep *faninReplica) {
			defer wg.Done()
			out.Replicas[i].URL = rep.url
			status, body, err := f.fetch(rep.url, "/metrics")
			f.record(rep, err == nil && status < 500)
			if err != nil {
				out.Replicas[i].Error = err.Error()
				return
			}
			out.Replicas[i].Metrics = json.RawMessage(body)
		}(i, rep)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, out)
}
