package aggsrv

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"

	"repro"
	"repro/internal/wire"
)

// Fanin is the out-of-process horizontal tier: an HTTP router over N
// remote aggregator replica servers, each owning the logical keys that
// hash to it (the same qlove.PartitionOf hash the in-process Partitioned
// uses, so any router instance partitions identically).
//
// It serves the same endpoints as Server:
//
//   - /push splits the worker's blob frame-by-frame — bit-verbatim, via
//     the wire raw scanner — and forwards each frame to its owner; every
//     replica receives a push (empty for non-owners) so worker liveness
//     and push deadlines stay coherent partition-wide.
//   - /query proxies to the key's single owner, response bytes untouched.
//   - /snapshot fans out, then merge-sorts the replicas' disjoint,
//     per-replica-sorted key arrays — each key's JSON element is relayed
//     verbatim, so estimates remain bit-identical to the owning replica's
//     (and thus to a single-process aggregator folding the same pushes).
//   - /healthz and /metrics aggregate across replicas.
type Fanin struct {
	urls   []string
	client *http.Client
	mux    *http.ServeMux
}

// NewFanin returns a router over the replica base URLs (e.g.
// "http://10.0.0.1:7171"). client nil means http.DefaultClient.
func NewFanin(urls []string, client *http.Client) (*Fanin, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("aggsrv: fan-in needs at least one replica URL")
	}
	clean := make([]string, len(urls))
	for i, u := range urls {
		parsed, err := url.Parse(u)
		if err != nil || parsed.Scheme == "" || parsed.Host == "" {
			return nil, fmt.Errorf("aggsrv: bad replica URL %q", u)
		}
		clean[i] = strings.TrimRight(u, "/")
	}
	if client == nil {
		client = http.DefaultClient
	}
	f := &Fanin{urls: clean, client: client, mux: http.NewServeMux()}
	f.mux.HandleFunc("/push", f.handlePush)
	f.mux.HandleFunc("/query", f.handleQuery)
	f.mux.HandleFunc("/snapshot", f.handleSnapshot)
	f.mux.HandleFunc("/healthz", f.handleHealthz)
	f.mux.HandleFunc("/metrics", f.handleMetrics)
	return f, nil
}

// Handler returns the root handler for mounting on any http.Server.
func (f *Fanin) Handler() http.Handler { return f.mux }

// Replicas returns the replica base URLs.
func (f *Fanin) Replicas() []string { return append([]string(nil), f.urls...) }

func (f *Fanin) owner(base string) int { return qlove.PartitionOf(base, len(f.urls)) }

// logicalBase strips a salted sub-stream suffix ("key\x00<j>") so salted
// frames route with their base key, keeping whole salt groups on one
// replica.
func logicalBase(key string) string {
	if i := strings.IndexByte(key, 0); i >= 0 {
		return key[:i]
	}
	return key
}

func (f *Fanin) handlePush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "push is POST-only")
		return
	}
	worker := r.URL.Query().Get("worker")
	if worker == "" {
		writeErr(w, http.StatusBadRequest, "push needs a ?worker=ID (the per-worker fold state is keyed by it)")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPushBody))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "read push body: %v", err)
		return
	}
	// Route the whole blob before forwarding anything: a malformed blob is
	// rejected with zero frames applied anywhere.
	parts := make([]bytes.Buffer, len(f.urls))
	sc := wire.NewRawScanner(bytes.NewReader(body))
	for {
		_, key, frame, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			writeErr(w, http.StatusBadRequest, "scan push blob: %v", err)
			return
		}
		parts[f.owner(logicalBase(key))].Write(frame)
	}
	frames, keys := 0, 0
	for i, u := range f.urls {
		// Every replica gets the push — an empty blob still registers the
		// worker there, keeping liveness partition-wide.
		resp, err := f.client.Post(u+"/push?worker="+url.QueryEscape(worker),
			"application/octet-stream", bytes.NewReader(parts[i].Bytes()))
		if err != nil {
			writeErr(w, http.StatusBadGateway, "replica %s: %v", u, err)
			return
		}
		rb, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			writeErr(w, http.StatusBadGateway, "replica %s: status %d: %s", u, resp.StatusCode, rb)
			return
		}
		var pr PushResult
		if err := json.Unmarshal(rb, &pr); err != nil {
			writeErr(w, http.StatusBadGateway, "replica %s: bad push ack: %v", u, err)
			return
		}
		frames += pr.Frames
		keys += pr.Keys // replica key sets are disjoint: the sum is the total
	}
	writeJSON(w, http.StatusOK, PushResult{Worker: worker, Frames: frames, Keys: keys})
}

func (f *Fanin) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "query is GET-only")
		return
	}
	if !r.URL.Query().Has("key") {
		writeErr(w, http.StatusBadRequest, "query needs ?key=")
		return
	}
	u := f.urls[f.owner(r.URL.Query().Get("key"))]
	resp, err := f.client.Get(u + "/query?" + r.URL.RawQuery)
	if err != nil {
		writeErr(w, http.StatusBadGateway, "replica %s: %v", u, err)
		return
	}
	defer resp.Body.Close()
	// Relay the owner's answer verbatim — bytes, status and all — so the
	// client sees bit-identical estimates to asking the replica directly.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// snapshotKeys is the minimal decode of a replica /snapshot: each key's
// element is kept as raw JSON so the fan-in re-emits it bit-identically.
type snapshotKeys struct {
	Keys []json.RawMessage `json:"keys"`
}

func (f *Fanin) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "snapshot is GET-only")
		return
	}
	type keyed struct {
		key string
		raw json.RawMessage
	}
	var all []keyed
	for _, u := range f.urls {
		resp, err := f.client.Get(u + "/snapshot")
		if err != nil {
			writeErr(w, http.StatusBadGateway, "replica %s: %v", u, err)
			return
		}
		var sk snapshotKeys
		err = json.NewDecoder(resp.Body).Decode(&sk)
		resp.Body.Close()
		if err != nil {
			writeErr(w, http.StatusBadGateway, "replica %s: bad snapshot: %v", u, err)
			return
		}
		for _, raw := range sk.Keys {
			var k struct {
				Key string `json:"key"`
			}
			if err := json.Unmarshal(raw, &k); err != nil {
				writeErr(w, http.StatusBadGateway, "replica %s: bad key report: %v", u, err)
				return
			}
			all = append(all, keyed{key: k.Key, raw: raw})
		}
	}
	// Disjoint per-replica key sets: a global sort restores exactly the
	// single-process /snapshot order.
	sort.Slice(all, func(i, j int) bool { return all[i].key < all[j].key })
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, `{"keys":[`)
	for i, k := range all {
		if i > 0 {
			io.WriteString(w, ",")
		}
		w.Write(k.raw)
	}
	io.WriteString(w, "]}\n")
}

func (f *Fanin) handleHealthz(w http.ResponseWriter, r *http.Request) {
	workers, keys := 0, 0
	for _, u := range f.urls {
		resp, err := f.client.Get(u + "/healthz")
		if err != nil {
			writeErr(w, http.StatusBadGateway, "replica %s: %v", u, err)
			return
		}
		var h Health
		err = json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if err != nil || h.Status != "ok" {
			writeErr(w, http.StatusBadGateway, "replica %s: unhealthy (%v)", u, err)
			return
		}
		if h.Workers > workers {
			workers = h.Workers // every replica hosts every worker
		}
		keys += h.Keys
	}
	writeJSON(w, http.StatusOK, Health{Status: "ok", Workers: workers, Keys: keys})
}

// FaninMetrics is the fan-in's /metrics document: each replica's own
// metrics report, keyed by its URL.
type FaninMetrics struct {
	Replicas []FaninReplicaMetrics `json:"replicas"`
}

// FaninReplicaMetrics is one replica's metrics as relayed by the fan-in.
type FaninReplicaMetrics struct {
	URL     string          `json:"url"`
	Metrics json.RawMessage `json:"metrics"`
}

func (f *Fanin) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "metrics is GET-only")
		return
	}
	out := FaninMetrics{}
	for _, u := range f.urls {
		resp, err := f.client.Get(u + "/metrics")
		if err != nil {
			writeErr(w, http.StatusBadGateway, "replica %s: %v", u, err)
			return
		}
		rb, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		out.Replicas = append(out.Replicas, FaninReplicaMetrics{URL: u, Metrics: json.RawMessage(rb)})
	}
	writeJSON(w, http.StatusOK, out)
}
