package aggsrv

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/workload"
)

// worker builds one engine, ingests the given keyed batches and returns
// (engine, bootstrap-or-delta blob for the cursor).
func mkEngine(t *testing.T, cfg qlove.Config) *qlove.Engine {
	t.Helper()
	eng, err := qlove.NewEngine(qlove.EngineConfig{Config: cfg, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for range eng.Results() {
		}
	}()
	return eng
}

func post(t *testing.T, srv *httptest.Server, path string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func get(t *testing.T, srv *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestServiceEndToEnd drives the full push/query/snapshot/healthz surface:
// a bootstrap delta, an incremental delta, and bit-identical answers
// against the library-side aggregator.
func TestServiceEndToEnd(t *testing.T) {
	cfg := qlove.Config{Spec: qlove.Window{Size: 256, Period: 64}, Phis: []float64{0.5, 0.99}, FewK: true}
	server := New(nil)
	srv := httptest.NewServer(server.Handler())
	defer srv.Close()

	eng := mkEngine(t, cfg)
	defer eng.Close()
	gen := workload.NewNetMon(21)
	if err := eng.Push("api/latency", workload.Generate(gen, 600)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Push("db/qps", workload.Generate(gen, 300)); err != nil {
		t.Fatal(err)
	}

	var cur qlove.ExportCursor
	var blob bytes.Buffer
	if _, err := eng.ExportDelta(&blob, &cur); err != nil {
		t.Fatal(err)
	}
	resp, body := post(t, srv, "/push?worker=w0", blob.Bytes())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("push: %s: %s", resp.Status, body)
	}
	var pr PushResult
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Worker != "w0" || pr.Frames == 0 || pr.Keys != 2 {
		t.Fatalf("push result %+v", pr)
	}

	// Incremental push after more traffic.
	if err := eng.Push("api/latency", workload.Generate(gen, 200)); err != nil {
		t.Fatal(err)
	}
	blob.Reset()
	if _, err := eng.ExportDelta(&blob, &cur); err != nil {
		t.Fatal(err)
	}
	if resp, body := post(t, srv, "/push?worker=w0", blob.Bytes()); resp.StatusCode != http.StatusOK {
		t.Fatalf("delta push: %s: %s", resp.Status, body)
	}

	// /query answers bit-identically to the engine's own capture (JSON
	// floats round-trip exactly).
	want, ok := eng.Query("api/latency")
	if !ok {
		t.Fatal("engine lost the key")
	}
	resp, body = get(t, srv, "/query?key=api/latency")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %s: %s", resp.Status, body)
	}
	var rep KeyReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	wantEst := want.Estimates()
	if len(rep.Estimates) != len(wantEst) {
		t.Fatalf("estimates %v, want %v", rep.Estimates, wantEst)
	}
	for i := range wantEst {
		if math.Float64bits(rep.Estimates[i]) != math.Float64bits(wantEst[i]) {
			t.Fatalf("ϕ[%d]: service %v != engine %v", i, rep.Estimates[i], wantEst[i])
		}
	}

	// Single-ϕ form, and the interpolation guard.
	resp, body = get(t, srv, "/query?key=api/latency&phi=0.99")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("phi query: %s: %s", resp.Status, body)
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Estimates) != 1 || math.Float64bits(rep.Estimates[0]) != math.Float64bits(wantEst[1]) {
		t.Fatalf("phi query answered %v, want %v", rep.Estimates, wantEst[1])
	}
	if resp, _ := get(t, srv, "/query?key=api/latency&phi=0.95"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unconfigured ϕ: %s", resp.Status)
	}

	// /snapshot lists both keys sorted.
	resp, body = get(t, srv, "/snapshot")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %s", resp.Status)
	}
	var doc struct {
		Keys []KeyReport `json:"keys"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Keys) != 2 || doc.Keys[0].Key != "api/latency" || doc.Keys[1].Key != "db/qps" {
		t.Fatalf("snapshot keys %+v", doc.Keys)
	}

	// /healthz.
	resp, body = get(t, srv, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", resp.Status)
	}
	var h Health
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Workers != 1 || h.Keys != 2 {
		t.Fatalf("health %+v", h)
	}
}

// TestServiceErrors covers the failure surface: missing worker, bad
// methods, unknown keys, corrupt blobs.
func TestServiceErrors(t *testing.T) {
	srv := httptest.NewServer(New(nil).Handler())
	defer srv.Close()

	if resp, _ := post(t, srv, "/push", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("push without worker: %s", resp.Status)
	}
	if resp, _ := get(t, srv, "/push?worker=w"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET push: %s", resp.Status)
	}
	if resp, _ := post(t, srv, "/query?key=x", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST query: %s", resp.Status)
	}
	if resp, _ := get(t, srv, "/query"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("query without key: %s", resp.Status)
	}
	if resp, _ := get(t, srv, "/query?key=missing"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown key: %s", resp.Status)
	}
	resp, body := post(t, srv, "/push?worker=w", []byte("not a wire blob"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt blob: %s", resp.Status)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("corrupt blob error body: %s (%v)", body, err)
	}
}

// TestServiceMultiWorkerMerge: two workers pushing the same key answer the
// merged view, bit-identical to the in-process merge of their captures.
func TestServiceMultiWorkerMerge(t *testing.T) {
	cfg := qlove.Config{Spec: qlove.Window{Size: 200, Period: 50}, Phis: []float64{0.5, 0.9}}
	agg := qlove.NewAggregator()
	srv := httptest.NewServer(New(agg).Handler())
	defer srv.Close()

	var snaps []qlove.Snapshot
	for w := 0; w < 2; w++ {
		eng := mkEngine(t, cfg)
		gen := workload.NewNetMon(int64(31 + w))
		if err := eng.Push("svc", workload.Generate(gen, 400)); err != nil {
			t.Fatal(err)
		}
		eng.Close()
		sn, ok := eng.Query("svc")
		if !ok {
			t.Fatal("capture missing")
		}
		snaps = append(snaps, sn)
		var cur qlove.ExportCursor
		var blob bytes.Buffer
		if _, err := eng.ExportDelta(&blob, &cur); err != nil {
			t.Fatal(err)
		}
		if resp, body := post(t, srv, fmt.Sprintf("/push?worker=w%d", w), blob.Bytes()); resp.StatusCode != http.StatusOK {
			t.Fatalf("push: %s: %s", resp.Status, body)
		}
	}
	ref, err := qlove.MergeSnapshots(snaps)
	if err != nil {
		t.Fatal(err)
	}
	_, body := get(t, srv, "/query?key=svc")
	var rep KeyReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Streams != 2 {
		t.Fatalf("streams %d, want 2", rep.Streams)
	}
	want := ref.Estimates()
	for i := range want {
		if math.Float64bits(rep.Estimates[i]) != math.Float64bits(want[i]) {
			t.Fatalf("merged ϕ[%d]: service %v != in-process %v", i, rep.Estimates[i], want[i])
		}
	}
}

// TestServiceWorkerGC: with a push deadline armed on the served
// aggregator, /snapshot and /healthz shrink after a worker goes silent —
// and never drop a worker that keeps pushing.
func TestServiceWorkerGC(t *testing.T) {
	cfg := qlove.Config{Spec: qlove.Window{Size: 256, Period: 64}, Phis: []float64{0.5}}
	now := time.Unix(4_000_000, 0)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	agg := qlove.NewAggregator()
	agg.SetPushDeadline(time.Minute, clock)
	server := New(agg)
	srv := httptest.NewServer(server.Handler())
	defer srv.Close()

	export := func(seed int64, key string) []byte {
		eng := mkEngine(t, cfg)
		defer eng.Close()
		if err := eng.Push(key, workload.Generate(workload.NewNetMon(seed), 512)); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := eng.Export(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	silent := export(1, "silent/latency")
	active := export(2, "active/latency")

	push := func(worker string, blob []byte) {
		t.Helper()
		resp, body := post(t, srv, "/push?worker="+worker, blob)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("push %s: %s (%s)", worker, resp.Status, body)
		}
	}
	keys := func() int {
		t.Helper()
		_, body := get(t, srv, "/snapshot")
		var doc struct {
			Keys []KeyReport `json:"keys"`
		}
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatal(err)
		}
		return len(doc.Keys)
	}
	workers := func() int {
		t.Helper()
		_, body := get(t, srv, "/healthz")
		var h Health
		if err := json.Unmarshal(body, &h); err != nil {
			t.Fatal(err)
		}
		return h.Workers
	}

	push("silent", silent)
	push("active", active)
	if keys() != 2 || workers() != 2 {
		t.Fatalf("keys=%d workers=%d, want 2/2", keys(), workers())
	}

	// The active worker keeps pushing within the deadline; the silent one
	// stops. The service's view shrinks to the active worker only.
	for i := 0; i < 3; i++ {
		advance(45 * time.Second)
		push("active", active)
	}
	if keys() != 1 || workers() != 1 {
		t.Fatalf("after silence: keys=%d workers=%d, want 1/1", keys(), workers())
	}
	if resp, _ := get(t, srv, "/query?key=silent/latency"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("silent worker's key still served: %s", resp.Status)
	}
	if resp, _ := get(t, srv, "/query?key=active/latency"); resp.StatusCode != http.StatusOK {
		t.Fatalf("active worker's key dropped: %s", resp.Status)
	}
}

// durabilityStub wraps a real backend with a settable durability error,
// standing in for a disk store whose WAL writes started failing.
type durabilityStub struct {
	Backend
	err error
}

func (d *durabilityStub) DurabilityErr() error { return d.err }

// TestServiceHealthzDurability: /healthz stays 200 (the in-memory view
// still serves) but flips to status "degraded" with the persistence error
// spelled out once the backend reports one.
func TestServiceHealthzDurability(t *testing.T) {
	stub := &durabilityStub{Backend: qlove.NewAggregator()}
	srv := httptest.NewServer(New(stub).Handler())
	defer srv.Close()

	resp, body := get(t, srv, "/healthz")
	var h Health
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || h.Status != "ok" || h.Error != "" {
		t.Fatalf("healthy service: %s %+v", resp.Status, h)
	}

	stub.err = fmt.Errorf("wal append: no space left on device")
	resp, body = get(t, srv, "/healthz")
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded service must still answer 200 (liveness): %s", resp.Status)
	}
	if h.Status != "degraded" || h.Error != "wal append: no space left on device" {
		t.Fatalf("degraded healthz = %+v", h)
	}
}
