package aggsrv

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/workload"
)

// faninFixture stands up N replica servers plus the fan-in router over
// them, and one single-process reference server fed the same pushes.
type faninFixture struct {
	fanin    *httptest.Server
	router   *Fanin
	replicas []*httptest.Server
	ref      *httptest.Server
}

func newFaninFixture(t *testing.T, n int, cfg FaninConfig) *faninFixture {
	t.Helper()
	fx := &faninFixture{}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		srv := httptest.NewServer(New(nil).Handler())
		t.Cleanup(srv.Close)
		fx.replicas = append(fx.replicas, srv)
		urls[i] = srv.URL
	}
	cfg.Replicas = urls
	f, err := NewFaninConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fx.router = f
	t.Cleanup(func() { f.Close() })
	fx.fanin = httptest.NewServer(f.Handler())
	t.Cleanup(fx.fanin.Close)
	fx.ref = httptest.NewServer(New(nil).Handler())
	t.Cleanup(fx.ref.Close)
	return fx
}

// push sends the blob to the fan-in AND the reference server, requiring
// identical acks.
func (fx *faninFixture) push(t *testing.T, worker string, blob []byte) {
	t.Helper()
	resp, body := post(t, fx.fanin, "/push?worker="+worker, blob)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fan-in push: %s: %s", resp.Status, body)
	}
	var got PushResult
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	resp, body = post(t, fx.ref, "/push?worker="+worker, blob)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference push: %s: %s", resp.Status, body)
	}
	var want PushResult
	if err := json.Unmarshal(body, &want); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("fan-in push ack %+v != reference %+v", got, want)
	}
}

// TestFaninEndToEnd: multi-worker, multi-key (including a salted
// sub-stream group) pushes through the router answer /query, /snapshot
// and /healthz byte-identically to one single-process server folding the
// same pushes.
func TestFaninEndToEnd(t *testing.T) {
	cfg := qlove.Config{Spec: qlove.Window{Size: 256, Period: 64}, Phis: []float64{0.5, 0.99}, FewK: true}
	fx := newFaninFixture(t, 3, FaninConfig{})

	keys := []string{"api/latency", "db/qps", "cache/hits", "gc/pause", "net/rtt"}
	cursors := make([]qlove.ExportCursor, 2)
	for w := 0; w < 2; w++ {
		// Salted routing makes the engine emit "key\x00<j>" internal names
		// in its delta exports — the fan-in must keep each group together.
		eng, err := qlove.NewEngine(qlove.EngineConfig{Config: cfg, Shards: 2, RouteSalt: 2})
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			for range eng.Results() {
			}
		}()
		gen := workload.NewNetMon(int64(60 + w))
		for round := 0; round < 2; round++ {
			for ki, k := range keys {
				if err := eng.Push(k, workload.Generate(gen, 200+40*ki)); err != nil {
					t.Fatal(err)
				}
			}
			var blob bytes.Buffer
			if _, err := eng.ExportDelta(&blob, &cursors[w]); err != nil {
				t.Fatal(err)
			}
			fx.push(t, fmt.Sprintf("w%d", w), blob.Bytes())
		}
		eng.Close()
	}

	// Replica key ownership is disjoint and matches PartitionOf.
	for _, k := range keys {
		owner := qlove.PartitionOf(k, len(fx.replicas))
		for i, rs := range fx.replicas {
			resp, _ := get(t, rs, "/query?key="+k)
			wantOK := i == owner
			if (resp.StatusCode == http.StatusOK) != wantOK {
				t.Fatalf("key %q on replica %d (owner %d): %s", k, i, owner, resp.Status)
			}
		}
	}

	// /query through the router: byte-identical to the reference server.
	for _, k := range append(keys, "no/such/key") {
		rf, bf := get(t, fx.fanin, "/query?key="+k)
		rr, br := get(t, fx.ref, "/query?key="+k)
		if rf.StatusCode != rr.StatusCode {
			t.Fatalf("query %q: fan-in %s, reference %s", k, rf.Status, rr.Status)
		}
		if !bytes.Equal(bf, br) {
			t.Fatalf("query %q: fan-in body diverges from reference:\n%s\nvs\n%s", k, bf, br)
		}
	}

	// /snapshot through the router: parses to the same sorted key reports,
	// each element byte-identical (the router relays raw JSON elements).
	_, bf := get(t, fx.fanin, "/snapshot")
	_, br := get(t, fx.ref, "/snapshot")
	if !bytes.Equal(bf, br) {
		t.Fatalf("fan-in snapshot diverges from reference:\n%s\nvs\n%s", bf, br)
	}

	// /healthz: same worker and key totals as the reference.
	var hf, hr Health
	_, bh := get(t, fx.fanin, "/healthz")
	if err := json.Unmarshal(bh, &hf); err != nil {
		t.Fatal(err)
	}
	_, bh = get(t, fx.ref, "/healthz")
	if err := json.Unmarshal(bh, &hr); err != nil {
		t.Fatal(err)
	}
	if hf != hr {
		t.Fatalf("fan-in health %+v != reference %+v", hf, hr)
	}
	if hf.Workers != 2 || hf.Keys != len(keys) {
		t.Fatalf("health %+v, want 2 workers / %d keys", hf, len(keys))
	}

	// /metrics relays one document per replica.
	resp, bm := get(t, fx.fanin, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fan-in metrics: %s", resp.Status)
	}
	var fm FaninMetrics
	if err := json.Unmarshal(bm, &fm); err != nil {
		t.Fatal(err)
	}
	if len(fm.Replicas) != len(fx.replicas) {
		t.Fatalf("metrics for %d replicas, want %d", len(fm.Replicas), len(fx.replicas))
	}
}

// TestFaninErrors covers the router's request-validation surface: bad
// construction (including duplicate replicas) and malformed blobs rejected
// before any replica sees a frame.
func TestFaninErrors(t *testing.T) {
	if _, err := NewFanin(nil, nil); err == nil {
		t.Fatal("empty URL list accepted")
	}
	if _, err := NewFanin([]string{"not a url"}, nil); err == nil {
		t.Fatal("bad URL accepted")
	}
	if _, err := NewFanin([]string{"/just/a/path"}, nil); err == nil {
		t.Fatal("schemeless URL accepted")
	}
	// Duplicates — even differing only by a trailing slash — would
	// silently split one partition across two identical owners.
	if _, err := NewFanin([]string{"http://10.0.0.1:7171", "http://10.0.0.1:7171/"}, nil); err == nil {
		t.Fatal("duplicate replica URLs accepted")
	}
	// Replication / quorum / slot-map validation.
	if _, err := NewFaninConfig(FaninConfig{
		Replicas:    []string{"http://a:1", "http://b:1"},
		Replication: 3,
	}); err == nil {
		t.Fatal("replication > replica count accepted")
	}
	if _, err := NewFaninConfig(FaninConfig{
		Replicas:    []string{"http://a:1", "http://b:1"},
		Replication: 2,
		Quorum:      3,
	}); err == nil {
		t.Fatal("quorum > replication accepted")
	}
	wide, err := qlove.NewSlotMap(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFaninConfig(FaninConfig{
		Replicas: []string{"http://a:1", "http://b:1"},
		Slots:    wide,
	}); err == nil {
		t.Fatal("slot map referencing replica 2 accepted with 2 replicas")
	}
	if _, err := NewFaninConfig(FaninConfig{
		Replicas:    []string{"http://a:1", "http://b:1"},
		Replication: 2,
		Slots:       wide, // replication 1 map vs config 2
	}); err == nil {
		t.Fatal("slot map replication mismatch accepted")
	}

	fx := newFaninFixture(t, 2, FaninConfig{})
	if resp, _ := post(t, fx.fanin, "/push", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("push without worker: %s", resp.Status)
	}
	if resp, _ := get(t, fx.fanin, "/push?worker=w"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET push: %s", resp.Status)
	}
	if resp, _ := get(t, fx.fanin, "/query"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("query without key: %s", resp.Status)
	}
	// A malformed blob dies in the router's scan: no replica registers the
	// worker, so /healthz still reports zero.
	if resp, _ := post(t, fx.fanin, "/push?worker=w", []byte("garbage")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed blob: %s", resp.Status)
	}
	var h Health
	_, bh := get(t, fx.fanin, "/healthz")
	if err := json.Unmarshal(bh, &h); err != nil {
		t.Fatal(err)
	}
	if h.Workers != 0 {
		t.Fatalf("malformed blob registered a worker: %+v", h)
	}
}

// TestFaninDegradedReplica is the availability contract: with one replica
// dead the router keeps serving /query and /snapshot for the live
// replicas' keys, names the dead replica in /healthz and in the /push 502
// body, ejects it after the failure threshold, and reinstates it
// automatically — via the background probe — once it is back on the SAME
// address, after which pushes succeed again end-to-end.
func TestFaninDegradedReplica(t *testing.T) {
	cfg := qlove.Config{Spec: qlove.Window{Size: 256, Period: 64}, Phis: []float64{0.5}, FewK: true}
	fx := newFaninFixture(t, 2, FaninConfig{
		Timeout:       2 * time.Second,
		Retries:       1,
		RetryBackoff:  time.Millisecond,
		FailThreshold: 2,
		ProbeInterval: 10 * time.Millisecond,
	})

	// Find one key owned by each replica.
	keyFor := func(owner int) string {
		for i := 0; ; i++ {
			k := fmt.Sprintf("key-%d", i)
			if qlove.PartitionOf(k, 2) == owner {
				return k
			}
		}
	}
	k0, k1 := keyFor(0), keyFor(1)
	eng, err := qlove.NewEngine(qlove.EngineConfig{Config: cfg, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for range eng.Results() {
		}
	}()
	for _, k := range []string{k0, k1} {
		if err := eng.Push(k, workload.Generate(workload.NewNetMon(3), 300)); err != nil {
			t.Fatal(err)
		}
	}
	var blob bytes.Buffer
	if _, err := eng.Export(&blob); err != nil {
		t.Fatal(err)
	}
	eng.Close()
	if resp, body := post(t, fx.fanin, "/push?worker=w", blob.Bytes()); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy push: %s: %s", resp.Status, body)
	}

	// Kill replica 0 but remember its address for the comeback.
	addr := fx.replicas[0].Listener.Addr().String()
	fx.replicas[0].Close()

	// Live-replica keys still answer; dead-replica keys 502.
	if resp, body := get(t, fx.fanin, "/query?key="+k1); resp.StatusCode != http.StatusOK {
		t.Fatalf("live-replica query: %s: %s", resp.Status, body)
	}
	if resp, _ := get(t, fx.fanin, "/query?key="+k0); resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("dead-replica query: %s, want 502", resp.Status)
	}

	// /snapshot degrades to the reachable keys and says so.
	resp, body := get(t, fx.fanin, "/snapshot")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded snapshot: %s: %s", resp.Status, body)
	}
	var snap struct {
		Keys []struct {
			Key string `json:"key"`
		} `json:"keys"`
		Degraded []string `json:"degraded"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("degraded snapshot parse: %v\n%s", err, body)
	}
	if len(snap.Keys) != 1 || snap.Keys[0].Key != k1 {
		t.Fatalf("degraded snapshot keys: %s", body)
	}
	if len(snap.Degraded) != 1 || snap.Degraded[0] != fx.router.Replicas()[0] {
		t.Fatalf("degraded snapshot does not name the dead replica: %s", body)
	}

	// /healthz stays 200 and reports exactly which replica is down.
	resp, body = get(t, fx.fanin, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded healthz: %s", resp.Status)
	}
	var fh FaninHealth
	if err := json.Unmarshal(body, &fh); err != nil {
		t.Fatal(err)
	}
	if fh.Status != "degraded" || len(fh.Replicas) != 2 ||
		fh.Replicas[0].Status != "down" || fh.Replicas[1].Status != "ok" {
		t.Fatalf("degraded healthz: %s", body)
	}

	// /push fans out to the live replica and 502s naming the dead one.
	resp, body = post(t, fx.fanin, "/push?worker=w", blob.Bytes())
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("degraded push: %s, want 502", resp.Status)
	}
	var pe FaninPushError
	if err := json.Unmarshal(body, &pe); err != nil {
		t.Fatalf("degraded push body: %v\n%s", err, body)
	}
	if len(pe.Failed) != 1 || pe.Failed[0] != fx.router.Replicas()[0] {
		t.Fatalf("push 502 does not name the dead replica: %s", body)
	}
	live := false
	for _, out := range pe.Outcomes {
		if out.URL == fx.router.Replicas()[1] && out.OK {
			live = true
		}
	}
	if !live {
		t.Fatalf("live replica did not receive the degraded push: %s", body)
	}

	// The replica returns on its old address (fresh empty state — the
	// worker would re-bootstrap, as after any lost state). The probe must
	// reinstate it without any help.
	l, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("re-listen on %s: %v", addr, err)
	}
	revived := httptest.NewUnstartedServer(New(nil).Handler())
	revived.Listener.Close()
	revived.Listener = l
	revived.Start()
	t.Cleanup(revived.Close)

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, body = get(t, fx.fanin, "/healthz")
		var h FaninHealth
		if err := json.Unmarshal(body, &h); err == nil && h.Status == "ok" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never reinstated: %s", body)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if resp, body := post(t, fx.fanin, "/push?worker=w2", blob.Bytes()); resp.StatusCode != http.StatusOK {
		t.Fatalf("push after reinstatement: %s: %s", resp.Status, body)
	}
}

// TestFaninTimeout pins the no-DefaultClient satellite: a wedged replica
// costs the configured deadline, not forever.
func TestFaninTimeout(t *testing.T) {
	stall := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(5 * time.Second)
	}))
	defer stall.Close()
	f, err := NewFaninConfig(FaninConfig{
		Replicas: []string{stall.URL},
		Timeout:  50 * time.Millisecond,
		Retries:  -1, // no retries: measure one attempt
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	start := time.Now()
	resp, _ := get(t, srv, "/query?key=k")
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("wedged replica: %s, want 502", resp.Status)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("wedged replica held the query for %v", d)
	}
}

// TestFaninQueryRetry pins the idempotent-read retry: a replica that 500s
// twice then answers is retried through to the answer, invisibly to the
// client.
func TestFaninQueryRetry(t *testing.T) {
	var calls atomic.Int32
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		writeJSON(w, http.StatusOK, struct {
			Key string `json:"key"`
		}{"k"})
	}))
	defer flaky.Close()
	f, err := NewFaninConfig(FaninConfig{
		Replicas:     []string{flaky.URL},
		Retries:      2,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	resp, body := get(t, srv, "/query?key=k")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retried query: %s: %s", resp.Status, body)
	}
	if calls.Load() != 3 {
		t.Fatalf("replica saw %d calls, want 3 (2 failures + success)", calls.Load())
	}
}

// TestFaninHedgedQuery pins the replicated-read hedge: with the key's
// primary owner wedged, the query answers from the slot's secondary owner
// within roughly the hedge delay — not the primary's full timeout.
func TestFaninHedgedQuery(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(3 * time.Second)
	}))
	defer slow.Close()
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Key string `json:"key"`
		}{"k"})
	}))
	defer fast.Close()
	// At replication 2 over 2 replicas, every slot is owned by both; the
	// default map's primary for "k" is PartitionOf("k", 2) — put the slow
	// server there so the hedge must rescue the read.
	urls := []string{slow.URL, fast.URL}
	if qlove.PartitionOf("k", 2) == 1 {
		urls = []string{fast.URL, slow.URL}
	}
	f, err := NewFaninConfig(FaninConfig{
		Replicas:    urls,
		Replication: 2,
		Timeout:     5 * time.Second,
		Retries:     -1,
		HedgeDelay:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	start := time.Now()
	resp, body := get(t, srv, "/query?key=k")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged query: %s: %s", resp.Status, body)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("hedged query took %v — served by the wedged primary, not the secondary", d)
	}
}

// TestServiceMetricsEndpoint pins the server-side /metrics document for a
// plain, an instrumented, and a partitioned backend.
func TestServiceMetricsEndpoint(t *testing.T) {
	agg, err := qlove.NewAggregatorConfig(qlove.AggregatorConfig{Instrument: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(agg).Handler())
	defer srv.Close()
	if resp, _ := post(t, srv, "/metrics", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST metrics: %s", resp.Status)
	}
	resp, body := get(t, srv, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %s", resp.Status)
	}
	var m MetricsReport
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Replicas) != 1 || m.Replicas[0].Store.Backend != "striped+instrumented" {
		t.Fatalf("metrics %s", body)
	}
	if m.Replicas[0].FoldCache == nil {
		t.Fatal("fold cache stats missing")
	}

	p, err := qlove.NewPartitioned(3, qlove.AggregatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	psrv := httptest.NewServer(New(p).Handler())
	defer psrv.Close()
	resp, body = get(t, psrv, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partitioned metrics: %s", resp.Status)
	}
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Replicas) != 3 {
		t.Fatalf("partitioned metrics for %d replicas, want 3", len(m.Replicas))
	}
}
