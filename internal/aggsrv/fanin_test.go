package aggsrv

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro"
	"repro/internal/workload"
)

// faninFixture stands up N replica servers plus the fan-in router over
// them, and one single-process reference server fed the same pushes.
type faninFixture struct {
	fanin    *httptest.Server
	replicas []*httptest.Server
	ref      *httptest.Server
}

func newFaninFixture(t *testing.T, n int) *faninFixture {
	t.Helper()
	fx := &faninFixture{}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		srv := httptest.NewServer(New(nil).Handler())
		t.Cleanup(srv.Close)
		fx.replicas = append(fx.replicas, srv)
		urls[i] = srv.URL
	}
	f, err := NewFanin(urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	fx.fanin = httptest.NewServer(f.Handler())
	t.Cleanup(fx.fanin.Close)
	fx.ref = httptest.NewServer(New(nil).Handler())
	t.Cleanup(fx.ref.Close)
	return fx
}

// push sends the blob to the fan-in AND the reference server, requiring
// identical acks.
func (fx *faninFixture) push(t *testing.T, worker string, blob []byte) {
	t.Helper()
	resp, body := post(t, fx.fanin, "/push?worker="+worker, blob)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fan-in push: %s: %s", resp.Status, body)
	}
	var got PushResult
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	resp, body = post(t, fx.ref, "/push?worker="+worker, blob)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference push: %s: %s", resp.Status, body)
	}
	var want PushResult
	if err := json.Unmarshal(body, &want); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("fan-in push ack %+v != reference %+v", got, want)
	}
}

// TestFaninEndToEnd: multi-worker, multi-key (including a salted
// sub-stream group) pushes through the router answer /query, /snapshot
// and /healthz byte-identically to one single-process server folding the
// same pushes.
func TestFaninEndToEnd(t *testing.T) {
	cfg := qlove.Config{Spec: qlove.Window{Size: 256, Period: 64}, Phis: []float64{0.5, 0.99}, FewK: true}
	fx := newFaninFixture(t, 3)

	keys := []string{"api/latency", "db/qps", "cache/hits", "gc/pause", "net/rtt"}
	cursors := make([]qlove.ExportCursor, 2)
	for w := 0; w < 2; w++ {
		// Salted routing makes the engine emit "key\x00<j>" internal names
		// in its delta exports — the fan-in must keep each group together.
		eng, err := qlove.NewEngine(qlove.EngineConfig{Config: cfg, Shards: 2, RouteSalt: 2})
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			for range eng.Results() {
			}
		}()
		gen := workload.NewNetMon(int64(60 + w))
		for round := 0; round < 2; round++ {
			for ki, k := range keys {
				if err := eng.Push(k, workload.Generate(gen, 200+40*ki)); err != nil {
					t.Fatal(err)
				}
			}
			var blob bytes.Buffer
			if _, err := eng.ExportDelta(&blob, &cursors[w]); err != nil {
				t.Fatal(err)
			}
			fx.push(t, fmt.Sprintf("w%d", w), blob.Bytes())
		}
		eng.Close()
	}

	// Replica key ownership is disjoint and matches PartitionOf.
	for _, k := range keys {
		owner := qlove.PartitionOf(k, len(fx.replicas))
		for i, rs := range fx.replicas {
			resp, _ := get(t, rs, "/query?key="+k)
			wantOK := i == owner
			if (resp.StatusCode == http.StatusOK) != wantOK {
				t.Fatalf("key %q on replica %d (owner %d): %s", k, i, owner, resp.Status)
			}
		}
	}

	// /query through the router: byte-identical to the reference server.
	for _, k := range append(keys, "no/such/key") {
		rf, bf := get(t, fx.fanin, "/query?key="+k)
		rr, br := get(t, fx.ref, "/query?key="+k)
		if rf.StatusCode != rr.StatusCode {
			t.Fatalf("query %q: fan-in %s, reference %s", k, rf.Status, rr.Status)
		}
		if !bytes.Equal(bf, br) {
			t.Fatalf("query %q: fan-in body diverges from reference:\n%s\nvs\n%s", k, bf, br)
		}
	}

	// /snapshot through the router: parses to the same sorted key reports,
	// each element byte-identical (the router relays raw JSON elements).
	_, bf := get(t, fx.fanin, "/snapshot")
	_, br := get(t, fx.ref, "/snapshot")
	if !bytes.Equal(bf, br) {
		t.Fatalf("fan-in snapshot diverges from reference:\n%s\nvs\n%s", bf, br)
	}

	// /healthz: same worker and key totals as the reference.
	var hf, hr Health
	_, bh := get(t, fx.fanin, "/healthz")
	if err := json.Unmarshal(bh, &hf); err != nil {
		t.Fatal(err)
	}
	_, bh = get(t, fx.ref, "/healthz")
	if err := json.Unmarshal(bh, &hr); err != nil {
		t.Fatal(err)
	}
	if hf != hr {
		t.Fatalf("fan-in health %+v != reference %+v", hf, hr)
	}
	if hf.Workers != 2 || hf.Keys != len(keys) {
		t.Fatalf("health %+v, want 2 workers / %d keys", hf, len(keys))
	}

	// /metrics relays one document per replica.
	resp, bm := get(t, fx.fanin, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fan-in metrics: %s", resp.Status)
	}
	var fm FaninMetrics
	if err := json.Unmarshal(bm, &fm); err != nil {
		t.Fatal(err)
	}
	if len(fm.Replicas) != len(fx.replicas) {
		t.Fatalf("metrics for %d replicas, want %d", len(fm.Replicas), len(fx.replicas))
	}
}

// TestFaninErrors covers the router's failure surface: bad construction,
// malformed blobs rejected before any replica sees a frame, and replica
// outages surfacing as 502.
func TestFaninErrors(t *testing.T) {
	if _, err := NewFanin(nil, nil); err == nil {
		t.Fatal("empty URL list accepted")
	}
	if _, err := NewFanin([]string{"not a url"}, nil); err == nil {
		t.Fatal("bad URL accepted")
	}
	if _, err := NewFanin([]string{"/just/a/path"}, nil); err == nil {
		t.Fatal("schemeless URL accepted")
	}

	fx := newFaninFixture(t, 2)
	if resp, _ := post(t, fx.fanin, "/push", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("push without worker: %s", resp.Status)
	}
	if resp, _ := get(t, fx.fanin, "/push?worker=w"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET push: %s", resp.Status)
	}
	if resp, _ := get(t, fx.fanin, "/query"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("query without key: %s", resp.Status)
	}
	// A malformed blob dies in the router's scan: no replica registers the
	// worker, so /healthz still reports zero.
	if resp, _ := post(t, fx.fanin, "/push?worker=w", []byte("garbage")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed blob: %s", resp.Status)
	}
	var h Health
	_, bh := get(t, fx.fanin, "/healthz")
	if err := json.Unmarshal(bh, &h); err != nil {
		t.Fatal(err)
	}
	if h.Workers != 0 {
		t.Fatalf("malformed blob registered a worker: %+v", h)
	}
	// A dead replica turns pushes and snapshots into 502s.
	fx.replicas[0].Close()
	if resp, _ := post(t, fx.fanin, "/push?worker=w", nil); resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("push with dead replica: %s", resp.Status)
	}
	if resp, _ := get(t, fx.fanin, "/snapshot"); resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("snapshot with dead replica: %s", resp.Status)
	}
	if resp, _ := get(t, fx.fanin, "/healthz"); resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("healthz with dead replica: %s", resp.Status)
	}
}

// TestServiceMetricsEndpoint pins the server-side /metrics document for a
// plain, an instrumented, and a partitioned backend.
func TestServiceMetricsEndpoint(t *testing.T) {
	agg, err := qlove.NewAggregatorConfig(qlove.AggregatorConfig{Instrument: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(agg).Handler())
	defer srv.Close()
	if resp, _ := post(t, srv, "/metrics", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST metrics: %s", resp.Status)
	}
	resp, body := get(t, srv, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %s", resp.Status)
	}
	var m MetricsReport
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Replicas) != 1 || m.Replicas[0].Store.Backend != "striped+instrumented" {
		t.Fatalf("metrics %s", body)
	}
	if m.Replicas[0].FoldCache == nil {
		t.Fatal("fold cache stats missing")
	}

	p, err := qlove.NewPartitioned(3, qlove.AggregatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	psrv := httptest.NewServer(New(p).Handler())
	defer psrv.Close()
	resp, body = get(t, psrv, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partitioned metrics: %s", resp.Status)
	}
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Replicas) != 3 {
		t.Fatalf("partitioned metrics for %d replicas, want 3", len(m.Replicas))
	}
}
