// Package dataset persists and streams telemetry datasets for the CLI
// tools and benchmark harness. Two formats are supported: a compact binary
// format (magic header + uvarint length + little-endian float64s) and a
// single-column CSV/text format (one value per line, '#' comments allowed).
package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// magic identifies the binary dataset format, version 1.
var magic = [8]byte{'Q', 'L', 'V', 'D', 'S', 'E', 'T', '1'}

// WriteBinary writes values in the binary dataset format.
func WriteBinary(w io.Writer, values []float64) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(values)))
	if _, err := bw.Write(lenBuf[:n]); err != nil {
		return err
	}
	var b [8]byte
	for _, v := range values {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		if _, err := bw.Write(b[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads a dataset in the binary format.
func ReadBinary(r io.Reader) ([]float64, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("dataset: reading header: %w", err)
	}
	if hdr != magic {
		return nil, fmt.Errorf("dataset: bad magic %q", hdr[:])
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("dataset: reading length: %w", err)
	}
	const maxReasonable = 1 << 33 // 8G values ~ 64GB; reject corrupt lengths
	if n > maxReasonable {
		return nil, fmt.Errorf("dataset: implausible length %d", n)
	}
	out := make([]float64, 0, n)
	var b [8]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return nil, fmt.Errorf("dataset: truncated at value %d: %w", i, err)
		}
		out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(b[:])))
	}
	return out, nil
}

// WriteText writes one value per line in shortest-round-trip decimal form.
func WriteText(w io.Writer, values []float64) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	for _, v := range values {
		if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText reads a single-column text dataset. Blank lines and lines
// starting with '#' are skipped. A trailing CSV header row of
// non-numeric text on the first line is also skipped.
func ReadText(r io.Reader) ([]float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var out []float64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.ParseFloat(line, 64)
		if err != nil {
			if lineNo == 1 && len(out) == 0 {
				continue // header row
			}
			return nil, fmt.Errorf("dataset: line %d: %w", lineNo, err)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// SaveFile writes values to path; format is chosen by extension
// (".bin" => binary, anything else => text).
func SaveFile(path string, values []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		if err := WriteBinary(f, values); err != nil {
			return err
		}
	} else {
		if err := WriteText(f, values); err != nil {
			return err
		}
	}
	return f.Close()
}

// LoadFile reads a dataset from path, sniffing the binary magic header and
// falling back to text.
func LoadFile(path string) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var hdr [8]byte
	n, err := io.ReadFull(f, hdr[:])
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if n == 8 && hdr == magic {
		return ReadBinary(f)
	}
	return ReadText(f)
}
