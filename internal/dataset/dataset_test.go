package dataset

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	vals := []float64{1, 2.5, -3, 0, math.MaxFloat64, math.SmallestNonzeroFloat64}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, vals); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) {
		t.Fatalf("got %d values, want %d", len(got), len(vals))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("value %d: got %v, want %v", i, got[i], vals[i])
		}
	}
}

func TestBinaryEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d values from empty dataset", len(got))
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOTMAGIC\x00")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestBinaryTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(b[:len(b)-4])); err == nil {
		t.Fatal("truncated dataset accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(b[:3])); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestTextRoundTrip(t *testing.T) {
	vals := []float64{798, 1247.5, -3, 0.001}
	var buf bytes.Buffer
	if err := WriteText(&buf, vals); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("value %d: got %v, want %v", i, got[i], vals[i])
		}
	}
}

func TestTextCommentsAndBlanks(t *testing.T) {
	in := "# telemetry\n\n798\n  1247  \n# done\n"
	got, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 798 || got[1] != 1247 {
		t.Fatalf("got %v", got)
	}
}

func TestTextHeaderRowSkipped(t *testing.T) {
	in := "latency_us\n798\n1247\n"
	got, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestTextBadValueErrors(t *testing.T) {
	in := "798\nnot-a-number\n"
	if _, err := ReadText(strings.NewReader(in)); err == nil {
		t.Fatal("bad value accepted")
	}
}

func TestSaveLoadFileBinary(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.bin")
	vals := []float64{1, 2, 3, 4.5}
	if err := SaveFile(path, vals); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("got %v, want %v", got, vals)
		}
	}
}

func TestSaveLoadFileText(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.csv")
	vals := []float64{798, 1247}
	if err := SaveFile(path, vals); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("got %v, want %v", got, vals)
		}
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.bin")); !os.IsNotExist(err) {
		t.Fatalf("want not-exist error, got %v", err)
	}
}

func TestLoadFileTiny(t *testing.T) {
	// Files shorter than the magic header must fall back to text.
	dir := t.TempDir()
	path := filepath.Join(dir, "tiny.txt")
	if err := os.WriteFile(path, []byte("5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("got %v", got)
	}
}

func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(vals []float64) bool {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, vals); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] && !(math.IsNaN(got[i]) && math.IsNaN(vals[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
