package bench

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/exact"
	"repro/internal/window"
)

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.W == nil || o.Seed != 1 || o.Scale != 1 {
		t.Fatalf("defaults = %+v", o)
	}
	o = Options{Scale: 2}.withDefaults()
	if o.Scale != 1 {
		t.Fatalf("scale > 1 not clamped: %v", o.Scale)
	}
}

func TestScaled(t *testing.T) {
	o := Options{Scale: 0.1}.withDefaults()
	if got := o.scaled(1000, 50, 100); got != 100 {
		t.Fatalf("scaled = %d, want 100", got)
	}
	if got := o.scaled(1000, 500, 100); got != 500 {
		t.Fatalf("scaled min = %d, want 500", got)
	}
	o = Options{Scale: 1}.withDefaults()
	if got := o.scaled(1050, 0, 100); got != 1000 {
		t.Fatalf("alignment = %d, want 1000", got)
	}
}

func TestMeasureExactHasZeroError(t *testing.T) {
	spec := window.Spec{Size: 1000, Period: 100}
	phis := []float64{0.5, 0.99}
	rng := rand.New(rand.NewSource(1))
	data := make([]float64, 5000)
	for i := range data {
		data[i] = float64(rng.Intn(10000))
	}
	p, err := exact.New(spec, phis)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Measure(p, spec, phis, data)
	if err != nil {
		t.Fatal(err)
	}
	for j := range phis {
		if m.ValueErrPct[j] != 0 {
			t.Errorf("exact value error[%d] = %v", j, m.ValueErrPct[j])
		}
		if m.RankErr[j] != 0 {
			t.Errorf("exact rank error[%d] = %v", j, m.RankErr[j])
		}
	}
	if m.Evaluations != 41 {
		t.Fatalf("evaluations = %d, want 41", m.Evaluations)
	}
	if m.Policy != "Exact" {
		t.Fatalf("policy = %q", m.Policy)
	}
}

func TestAllExperimentsRunAtTinyScale(t *testing.T) {
	// Smoke-run every experiment at minimal scale; each must produce
	// non-empty tabular output and no error.
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	for _, name := range Order {
		if name == "fig5" || name == "fewk-throughput" || name == "table3" {
			continue // exercised separately below / too slow for smoke
		}
		name := name
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			err := Experiments[name](Options{W: &buf, Seed: 1, Scale: 0.02})
			if err != nil {
				t.Fatal(err)
			}
			if buf.Len() == 0 {
				t.Fatal("no output")
			}
			if !strings.Contains(buf.String(), "\n") {
				t.Fatal("output not tabular")
			}
		})
	}
}

func TestOrderMatchesExperiments(t *testing.T) {
	if len(Order) != len(Experiments) {
		t.Fatalf("Order has %d entries, Experiments %d", len(Order), len(Experiments))
	}
	for _, name := range Order {
		if _, ok := Experiments[name]; !ok {
			t.Fatalf("Order lists unknown experiment %q", name)
		}
	}
}
