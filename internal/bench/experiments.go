package bench

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/sketch/am"
	"repro/internal/sketch/cmqs"
	"repro/internal/sketch/moments"
	"repro/internal/sketch/random"
	"repro/internal/stream"
	"repro/internal/window"
	"repro/internal/workload"
)

// paper parameters shared by several experiments.
var (
	paperPhis = []float64{0.5, 0.9, 0.99, 0.999}
	specT1    = window.Spec{Size: 128000, Period: 16000}
)

const (
	paperEps     = 0.02
	paperMomentK = 12
	datasetSize  = 10_000_000 // each paper dataset has 10M entries
)

// Fig1 prints the histogram of 100K NetMon latency values (Figure 1): the
// x-axis is cut at 10,000us due to the long tail.
func Fig1(o Options) error {
	o = o.withDefaults()
	data := workload.Generate(workload.NewNetMon(o.Seed), 100_000)
	const cut = 10000.0
	const buckets = 50
	hist := make([]int, buckets)
	var beyond int
	for _, v := range data {
		if v >= cut {
			beyond++
			continue
		}
		hist[int(v/(cut/buckets))]++
	}
	maxN := 1
	for _, n := range hist {
		if n > maxN {
			maxN = n
		}
	}
	fmt.Fprintf(o.W, "Figure 1: histogram of 100K NetMon latency values (us), x cut at %v\n", cut)
	for b, n := range hist {
		bar := ""
		for i := 0; i < n*60/maxN; i++ {
			bar += "#"
		}
		fmt.Fprintf(o.W, "%6d-%6d %7d %s\n", int(float64(b)*cut/buckets), int(float64(b+1)*cut/buckets), n, bar)
	}
	fmt.Fprintf(o.W, ">= %v: %d values (long tail)\n", cut, beyond)
	return nil
}

// Table1 reproduces Table 1: accuracy (rank error e' and value error) and
// space usage of the five approximation policies on NetMon with a 128K
// window and 16K period, ε = 0.02, Moment K = 12.
func Table1(o Options) error {
	o = o.withDefaults()
	spec := specT1
	n := o.scaled(datasetSize, spec.Size+8*spec.Period, spec.Period)
	data := workload.Generate(workload.NewNetMon(o.Seed), n)
	policies := []struct {
		name string
		mk   func() (stream.Policy, error)
	}{
		{"QLOVE", func() (stream.Policy, error) {
			return core.New(core.Config{Spec: spec, Phis: paperPhis})
		}},
		{"CMQS", func() (stream.Policy, error) { return cmqs.New(spec, paperPhis, paperEps) }},
		{"AM", func() (stream.Policy, error) { return am.New(spec, paperPhis, paperEps) }},
		{"Random", func() (stream.Policy, error) { return random.New(spec, paperPhis, paperEps, o.Seed) }},
		{"Moment", func() (stream.Policy, error) { return moments.NewPolicy(spec, paperPhis, paperMomentK) }},
	}
	fmt.Fprintf(o.W, "Table 1: accuracy and space of five approximation algorithms\n")
	fmt.Fprintf(o.W, "NetMon, window %d, period %d, eps %.2f, Moment K %d, %d elements\n\n",
		spec.Size, spec.Period, paperEps, paperMomentK, n)
	t := newTable(o.W, "Policy", "e'Q0.5", "e'Q0.9", "e'Q0.99", "e'Q0.999",
		"v%Q0.5", "v%Q0.9", "v%Q0.99", "v%Q0.999", "Space", "MaxRankErr")
	for _, pol := range policies {
		p, err := pol.mk()
		if err != nil {
			return fmt.Errorf("%s: %w", pol.name, err)
		}
		m, err := Measure(p, spec, paperPhis, data)
		if err != nil {
			return fmt.Errorf("%s: %w", pol.name, err)
		}
		t.row(pol.name,
			f4(m.RankErr[0]), f4(m.RankErr[1]), f4(m.RankErr[2]), f4(m.RankErr[3]),
			f2(m.ValueErrPct[0]), f2(m.ValueErrPct[1]), f2(m.ValueErrPct[2]), f2(m.ValueErrPct[3]),
			fmt.Sprintf("%d", m.SpaceObserved), f4(m.MaxRankErr))
	}
	return nil
}

// Fig4 reproduces Figure 4: throughput of QLOVE vs CMQS at ε ∈ {1x, 5x,
// 10x of 0.02} vs Exact, on a 100K window with 1K period.
func Fig4(o Options) error {
	o = o.withDefaults()
	spec := window.Spec{Size: 100_000, Period: 1000}
	n := o.scaled(2_000_000, spec.Size+100*spec.Period, spec.Period)
	data := workload.Generate(workload.NewNetMon(o.Seed), n)
	type run struct {
		name string
		mk   func() (stream.Policy, error)
	}
	runs := []run{
		{"QLOVE", func() (stream.Policy, error) {
			return core.New(core.Config{Spec: spec, Phis: paperPhis})
		}},
		{"CMQS(1x)", func() (stream.Policy, error) { return cmqs.New(spec, paperPhis, 0.02) }},
		{"CMQS(5x)", func() (stream.Policy, error) { return cmqs.New(spec, paperPhis, 0.10) }},
		{"CMQS(10x)", func() (stream.Policy, error) { return cmqs.New(spec, paperPhis, 0.20) }},
		{"Exact", func() (stream.Policy, error) { return exact.New(spec, paperPhis) }},
	}
	fmt.Fprintf(o.W, "Figure 4: throughput comparison (M ev/s), window %d, period %d, %d elements\n\n",
		spec.Size, spec.Period, n)
	t := newTable(o.W, "Policy", "Mev/s")
	for _, r := range runs {
		p, err := r.mk()
		if err != nil {
			return err
		}
		thr, err := Throughput(p, spec, data)
		if err != nil {
			return err
		}
		t.row(r.name, f2(thr))
	}
	return nil
}

// Fig5 reproduces Figure 5: QLOVE vs Exact throughput as the window grows
// from 1K to 100M elements (period 1K) on (a) Normal and (b) Uniform
// synthetic data. Windows above 10M elements require Options.Full.
func Fig5(o Options) error {
	o = o.withDefaults()
	sizes := []int{1000, 10_000, 100_000, 1_000_000, 10_000_000}
	if o.Full {
		sizes = append(sizes, 100_000_000)
	}
	gens := []struct {
		name string
		mk   func(seed int64) workload.Generator
	}{
		{"Normal", func(s int64) workload.Generator { return workload.NewNormal(s, 1e6, 5e4) }},
		{"Uniform", func(s int64) workload.Generator { return workload.NewUniform(s, 90, 110) }},
	}
	for _, g := range gens {
		fmt.Fprintf(o.W, "Figure 5 (%s): throughput vs window size, period 1K (M ev/s)\n\n", g.name)
		t := newTable(o.W, "Window", "QLOVE", "Exact")
		for _, size := range sizes {
			spec := window.Spec{Size: size, Period: 1000}
			slides := o.scaled(100, 10, 1)
			n := size + slides*spec.Period
			data := workload.Generate(g.mk(o.Seed), n)
			q, err := core.New(core.Config{Spec: spec, Phis: paperPhis})
			if err != nil {
				return err
			}
			qThr, err := Throughput(q, spec, data)
			if err != nil {
				return err
			}
			var eThr float64
			// Exact on >= 10M windows is prohibitively slow off Full.
			if size <= 1_000_000 || o.Full {
				e, err := exact.New(spec, paperPhis)
				if err != nil {
					return err
				}
				if eThr, err = Throughput(e, spec, data); err != nil {
					return err
				}
			}
			label := fmt.Sprintf("%d", size)
			if eThr == 0 {
				t.row(label, f2(qThr), "(skipped)")
			} else {
				t.row(label, f2(qThr), f2(eThr))
			}
		}
		fmt.Fprintln(o.W)
	}
	return nil
}

// Table2 reproduces Table 2: QLOVE's average relative value error without
// few-k merging, for period sizes 64K down to 1K within a 128K window.
func Table2(o Options) error {
	o = o.withDefaults()
	periods := []int{64000, 32000, 16000, 8000, 4000, 2000, 1000}
	n := o.scaled(datasetSize, 128000+8*64000, 64000)
	data := workload.Generate(workload.NewNetMon(o.Seed), n)
	fmt.Fprintf(o.W, "Table 2: avg relative value error (%%) without few-k, 128K window, %d elements\n\n", n)
	header := []string{"Quantile"}
	for _, p := range periods {
		header = append(header, fmt.Sprintf("%dK", p/1000))
	}
	t := newTable(o.W, header...)
	results := make(map[int]Measurement)
	for _, p := range periods {
		spec := window.Spec{Size: 128000, Period: p}
		q, err := core.New(core.Config{Spec: spec, Phis: paperPhis})
		if err != nil {
			return err
		}
		m, err := Measure(q, spec, paperPhis, data)
		if err != nil {
			return err
		}
		results[p] = m
	}
	for j, phi := range paperPhis {
		row := []string{fmt.Sprintf("%g", phi)}
		for _, p := range periods {
			row = append(row, f2(results[p].ValueErrPct[j]))
		}
		t.row(row...)
	}
	return nil
}

// Table3 reproduces Table 3: Q0.999 average relative value error (and
// observed few-k space) when a fraction of the exact tail cache feeds
// top-k merging, for periods 8K..1K in a 128K window.
func Table3(o Options) error {
	o = o.withDefaults()
	periods := []int{8000, 4000, 2000, 1000}
	fractions := []float64{0.1, 0.5}
	n := o.scaled(datasetSize, 128000+16*8000, 8000)
	data := workload.Generate(workload.NewNetMon(o.Seed), n)
	phis := []float64{0.999}
	fmt.Fprintf(o.W, "Table 3: Q0.999 avg rel value error %% (few-k space) with top-k merging, 128K window, %d elements\n\n", n)
	header := []string{"Fraction"}
	for _, p := range periods {
		header = append(header, fmt.Sprintf("%dK", p/1000))
	}
	t := newTable(o.W, header...)
	for _, fr := range fractions {
		row := []string{fmt.Sprintf("%g", fr)}
		for _, p := range periods {
			spec := window.Spec{Size: 128000, Period: p}
			q, err := core.New(core.Config{
				Spec: spec, Phis: phis, FewK: true, Fraction: fr, TopKOnly: true,
			})
			if err != nil {
				return err
			}
			m, err := Measure(q, spec, phis, data)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%s (%d)", f2(m.ValueErrPct[0]), q.FewKSpace()))
		}
		t.row(row...)
	}
	return nil
}

// Table4 reproduces Table 4: Q0.99/Q0.999 error under injected bursty
// traffic (top N(1−ϕ) values of every (N/P)-th sub-window ×10) with
// sample-k merging at fractions {0, 0.1, 0.5}, periods 16K and 4K.
func Table4(o Options) error {
	o = o.withDefaults()
	periods := []int{16000, 4000}
	fractions := []float64{0, 0.1, 0.5}
	n := o.scaled(datasetSize, 128000+16*16000, 16000)
	base := workload.Generate(workload.NewNetMon(o.Seed), n)
	phis := []float64{0.99, 0.999}
	fmt.Fprintf(o.W, "Table 4: avg rel value error %% (few-k space) with sample-k merging under bursts, 128K window, %d elements\n\n", n)
	header := []string{"Fraction"}
	for _, p := range periods {
		header = append(header, fmt.Sprintf("%dK-Q0.99", p/1000), fmt.Sprintf("%dK-Q0.999", p/1000))
	}
	t := newTable(o.W, header...)
	for _, fr := range fractions {
		row := []string{fmt.Sprintf("%g", fr)}
		for _, p := range periods {
			spec := window.Spec{Size: 128000, Period: p}
			data := workload.InjectBursts(base, spec.Size, spec.Period, 0.999, 10)
			var q *core.Policy
			var err error
			if fr == 0 {
				q, err = core.New(core.Config{Spec: spec, Phis: phis})
			} else {
				q, err = core.New(core.Config{
					Spec: spec, Phis: phis, FewK: true, Fraction: fr, SampleKOnly: true,
				})
			}
			if err != nil {
				return err
			}
			m, err := Measure(q, spec, phis, data)
			if err != nil {
				return err
			}
			row = append(row,
				fmt.Sprintf("%s (%d)", f2(m.ValueErrPct[0]), q.FewKSpace()),
				fmt.Sprintf("%s (%d)", f2(m.ValueErrPct[1]), q.FewKSpace()))
		}
		t.row(row...)
	}
	return nil
}

// Table5 reproduces Table 5: average relative errors (as fractions, not
// percent) for AR(1) data with correlation ψ ∈ {0, 0.2, 0.8}.
func Table5(o Options) error {
	o = o.withDefaults()
	psis := []float64{0, 0.2, 0.8}
	phis := []float64{0.5, 0.9, 0.99}
	spec := specT1
	n := o.scaled(datasetSize, spec.Size+8*spec.Period, spec.Period)
	fmt.Fprintf(o.W, "Table 5: avg relative errors on AR(1) data (fractions), window %d, period %d, %d elements\n\n",
		spec.Size, spec.Period, n)
	t := newTable(o.W, "psi", "Q0.5", "Q0.9", "Q0.99")
	for _, psi := range psis {
		data := workload.Generate(workload.NewAR1(o.Seed, 1e6, 5e4, psi), n)
		q, err := core.New(core.Config{Spec: spec, Phis: phis})
		if err != nil {
			return err
		}
		m, err := Measure(q, spec, phis, data)
		if err != nil {
			return err
		}
		t.row(fmt.Sprintf("%g", psi),
			e2(m.ValueErrPct[0]/100), e2(m.ValueErrPct[1]/100), e2(m.ValueErrPct[2]/100))
	}
	return nil
}

// Redundancy reproduces the §5.4 data-redundancy study: QLOVE throughput
// on NetMon and Search vs their low-precision derivatives (two low-order
// digits dropped), period 1K, windows 1K..1M.
func Redundancy(o Options) error {
	o = o.withDefaults()
	sizes := []int{1000, 10_000, 100_000, 1_000_000}
	gens := []struct {
		name string
		mk   func(seed int64) workload.Generator
	}{
		{"NetMon", func(s int64) workload.Generator { return workload.NewNetMon(s) }},
		{"Search", func(s int64) workload.Generator { return workload.NewSearch(s) }},
	}
	fmt.Fprintf(o.W, "§5.4 data redundancy: QLOVE throughput gain of low-precision (drop 2 digits) vs original\n\n")
	t := newTable(o.W, "Dataset", "Window", "Orig Mev/s", "LowPrec Mev/s", "Gain")
	for _, g := range gens {
		for _, size := range sizes {
			spec := window.Spec{Size: size, Period: 1000}
			slides := o.scaled(100, 10, 1)
			n := size + slides*spec.Period
			data := workload.Generate(g.mk(o.Seed), n)
			low := make([]float64, len(data))
			for i, v := range data {
				low[i] = compress.DropLowDigits(v, 2)
			}
			run := func(d []float64) (float64, error) {
				// Quantization off isolates the redundancy effect, as in
				// the paper (their low-precision datasets feed the same
				// operator).
				q, err := core.New(core.Config{Spec: spec, Phis: paperPhis, Digits: -1})
				if err != nil {
					return 0, err
				}
				return Throughput(q, spec, d)
			}
			orig, err := run(data)
			if err != nil {
				return err
			}
			lp, err := run(low)
			if err != nil {
				return err
			}
			gain := 0.0
			if orig > 0 {
				gain = lp / orig
			}
			t.row(g.name, fmt.Sprintf("%d", size), f2(orig), f2(lp), fmt.Sprintf("%.1fx", gain))
		}
	}
	return nil
}

// Pareto reproduces the §5.4 skewness study: QLOVE vs AM vs Random value
// error on a heavy-tailed Pareto dataset (Q0.5 = 20, Q0.999 = 10⁴).
func Pareto(o Options) error {
	o = o.withDefaults()
	spec := specT1
	n := o.scaled(datasetSize, spec.Size+8*spec.Period, spec.Period)
	data := workload.Generate(workload.NewPaperPareto(o.Seed), n)
	phis := []float64{0.5, 0.9, 0.99, 0.999}
	fmt.Fprintf(o.W, "§5.4 skewness (Pareto): avg rel value error %%, window %d, period %d, %d elements\n\n",
		spec.Size, spec.Period, n)
	t := newTable(o.W, "Policy", "Q0.5", "Q0.9", "Q0.99", "Q0.999")
	runs := []struct {
		name string
		mk   func() (stream.Policy, error)
	}{
		{"QLOVE", func() (stream.Policy, error) {
			return core.New(core.Config{Spec: spec, Phis: phis})
		}},
		{"AM", func() (stream.Policy, error) { return am.New(spec, phis, paperEps) }},
		{"Random", func() (stream.Policy, error) { return random.New(spec, phis, paperEps, o.Seed) }},
	}
	for _, r := range runs {
		p, err := r.mk()
		if err != nil {
			return err
		}
		m, err := Measure(p, spec, phis, data)
		if err != nil {
			return err
		}
		t.row(r.name, f2(m.ValueErrPct[0]), f2(m.ValueErrPct[1]), f2(m.ValueErrPct[2]), f2(m.ValueErrPct[3]))
	}
	return nil
}

// FewKThroughput reproduces the §5.3 throughput note: few-k merging's
// throughput penalty at fraction 1 vs 0.2 vs disabled, for the
// resource-demanding 1K-period query.
func FewKThroughput(o Options) error {
	o = o.withDefaults()
	spec := window.Spec{Size: 128000, Period: 1000}
	n := o.scaled(2_000_000, spec.Size+100*spec.Period, spec.Period)
	data := workload.Generate(workload.NewNetMon(o.Seed), n)
	fmt.Fprintf(o.W, "§5.3 few-k throughput penalty, window %d, period %d, %d elements\n\n", spec.Size, spec.Period, n)
	t := newTable(o.W, "Config", "Mev/s", "Penalty")
	base, err := core.New(core.Config{Spec: spec, Phis: paperPhis})
	if err != nil {
		return err
	}
	baseThr, err := Throughput(base, spec, data)
	if err != nil {
		return err
	}
	t.row("no few-k", f2(baseThr), "-")
	for _, fr := range []float64{1.0, 0.2} {
		// Manage only Q0.999, as the T_s rule prescribes at a 1K period
		// (P(1−0.99) = 10 is not < T_s, so Q0.99 needs no few-k).
		q, err := core.New(core.Config{
			Spec: spec, Phis: paperPhis, FewK: true, Fraction: fr, HighPhiMin: 0.995,
		})
		if err != nil {
			return err
		}
		thr, err := Throughput(q, spec, data)
		if err != nil {
			return err
		}
		pen := 0.0
		if baseThr > 0 {
			pen = (1 - thr/baseThr) * 100
		}
		t.row(fmt.Sprintf("fraction %g", fr), f2(thr), fmt.Sprintf("%.1f%%", pen))
	}
	return nil
}

// ErrBound reproduces the Appendix A check: the fraction of evaluations
// whose observed |ya − ye| falls within the 95% CLT bound, on Normal and
// NetMon data.
func ErrBound(o Options) error {
	o = o.withDefaults()
	spec := window.Spec{Size: 64000, Period: 8000}
	phis := []float64{0.5, 0.9, 0.99}
	n := o.scaled(1_000_000, spec.Size+8*spec.Period, spec.Period)
	gens := []struct {
		name string
		mk   func(seed int64) workload.Generator
	}{
		{"Normal", func(s int64) workload.Generator { return workload.NewNormal(s, 1e6, 5e4) }},
		{"NetMon", func(s int64) workload.Generator { return workload.NewNetMon(s) }},
	}
	fmt.Fprintf(o.W, "Appendix A: observed error within 95%% CLT bound, window %d, period %d\n\n", spec.Size, spec.Period)
	t := newTable(o.W, "Dataset", "Quantile", "Covered", "Evals", "MedianBound")
	for _, g := range gens {
		data := workload.Generate(g.mk(o.Seed), n)
		q, err := core.New(core.Config{Spec: spec, Phis: phis, Digits: -1})
		if err != nil {
			return err
		}
		evals, _, err := stream.Run(q, spec, data)
		if err != nil {
			return err
		}
		bounds := q.ErrorBounds(0.05)
		for j, phi := range phis {
			covered, total := 0, 0
			_ = spec.Iter(data, func(idx int, w []float64) {
				want := quantileOf(w, phi)
				if math.Abs(evals[idx].Estimates[j]-want) <= bounds[j] {
					covered++
				}
				total++
			})
			t.row(g.name, fmt.Sprintf("%g", phi),
				fmt.Sprintf("%d/%d", covered, total), fmt.Sprintf("%d", total), f2(bounds[j]))
		}
	}
	return nil
}

// quantileOf is a local helper to avoid re-sorting via stats.Quantiles for
// single-phi lookups in ErrBound.
func quantileOf(w []float64, phi float64) float64 {
	s := append([]float64(nil), w...)
	sortFloat64s(s)
	r := int(math.Ceil(phi * float64(len(s))))
	if r < 1 {
		r = 1
	}
	return s[r-1]
}

// Experiments maps experiment names to their functions, in paper order.
var Experiments = map[string]func(Options) error{
	"fig1":            Fig1,
	"table1":          Table1,
	"fig4":            Fig4,
	"fig5":            Fig5,
	"table2":          Table2,
	"table3":          Table3,
	"table4":          Table4,
	"table5":          Table5,
	"redundancy":      Redundancy,
	"pareto":          Pareto,
	"fewk-throughput": FewKThroughput,
	"errbound":        ErrBound,
}

// Order lists experiments in the order the paper presents them.
var Order = []string{
	"fig1", "table1", "fig4", "fig5", "table2", "table3", "table4",
	"table5", "redundancy", "pareto", "fewk-throughput", "errbound",
}

// sortFloat64s is a tiny indirection so quantileOf does not pull in a
// second sort import site.
func sortFloat64s(s []float64) { sort.Float64s(s) }
