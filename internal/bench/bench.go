// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§5). Each experiment is a function
// taking Options and writing a formatted table to Options.W; the
// cmd/qlove-bench tool and the repository's bench_test.go drive them. The
// per-experiment index lives in DESIGN.md; paper-vs-measured numbers are
// recorded in EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/window"
)

// Options configures an experiment run.
type Options struct {
	// W receives the formatted table.
	W io.Writer
	// Seed makes dataset generation deterministic.
	Seed int64
	// Scale in (0, 1] shrinks dataset sizes for quick runs; 1 reproduces
	// the paper's sizes (10M-element datasets). Experiments round scaled
	// sizes to keep window alignment.
	Scale float64
	// Full unlocks the most expensive sweeps (the 100M-element windows of
	// Figure 5); off by default.
	Full bool
}

// withDefaults resolves zero values.
func (o Options) withDefaults() Options {
	if o.W == nil {
		o.W = io.Discard
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Scale <= 0 || o.Scale > 1 {
		o.Scale = 1
	}
	return o
}

// scaled returns n scaled down, floored at min and rounded to a multiple
// of align.
func (o Options) scaled(n, min, align int) int {
	v := int(float64(n) * o.Scale)
	if v < min {
		v = min
	}
	if align > 1 {
		v -= v % align
		if v < align {
			v = align
		}
	}
	return v
}

// Measurement holds the accuracy, space and throughput of one policy on
// one workload, per configured quantile.
type Measurement struct {
	Policy         string
	Phis           []float64
	ValueErrPct    []float64 // average relative value error, percent
	RankErr        []float64 // average rank error e'
	MaxRankErr     float64
	SpaceObserved  int
	ThroughputMevS float64
	Evaluations    int
}

// Measure drives a policy over data under spec, comparing every evaluation
// against the exact quantiles of the corresponding window.
func Measure(p stream.Policy, spec window.Spec, phis []float64, data []float64) (Measurement, error) {
	evals, st, err := stream.Run(p, spec, data)
	if err != nil {
		return Measurement{}, err
	}
	accs := make([]stats.ErrorAccumulator, len(phis))
	sorted := make([]float64, spec.Size)
	_ = spec.Iter(data, func(idx int, w []float64) {
		copy(sorted, w)
		sort.Float64s(sorted)
		for j, phi := range phis {
			exactRank := stats.CeilRank(phi, len(sorted))
			exactVal := sorted[exactRank-1]
			est := evals[idx].Estimates[j]
			estRank := stats.RankOf(sorted, est)
			if estRank < 1 {
				estRank = 1
			}
			// Use the nearest rank the estimate occupies (its value may
			// repeat; RankOf returns the highest).
			lo := sort.SearchFloat64s(sorted, est) + 1
			if lo <= exactRank && exactRank <= estRank {
				estRank = exactRank // estimate covers the exact rank
			} else if lo > exactRank {
				estRank = lo
			}
			accs[j].Observe(est, exactVal, estRank, exactRank, len(sorted), true)
		}
	})
	m := Measurement{
		Policy:         p.Name(),
		Phis:           append([]float64(nil), phis...),
		SpaceObserved:  st.MaxSpace,
		ThroughputMevS: st.ThroughputMevS(),
		Evaluations:    st.Evaluations,
	}
	for j := range phis {
		m.ValueErrPct = append(m.ValueErrPct, accs[j].AvgRelErrPct())
		m.RankErr = append(m.RankErr, accs[j].AvgRankErr())
		if mr := accs[j].MaxRankErr(); mr > m.MaxRankErr {
			m.MaxRankErr = mr
		}
	}
	return m, nil
}

// Throughput measures only events/second for a policy on data.
func Throughput(p stream.Policy, spec window.Spec, data []float64) (float64, error) {
	st, err := stream.Feed(p, spec, data)
	if err != nil {
		return 0, err
	}
	return st.ThroughputMevS(), nil
}

// table is a minimal fixed-width text table writer.
type table struct {
	w      io.Writer
	widths []int
	header []string
}

func newTable(w io.Writer, header ...string) *table {
	t := &table{w: w, header: header}
	for _, h := range header {
		t.widths = append(t.widths, len(h)+2)
	}
	t.row(header...)
	sep := make([]string, len(header))
	for i := range sep {
		for j := 0; j < t.widths[i]-2; j++ {
			sep[i] += "-"
		}
	}
	t.row(sep...)
	return t
}

func (t *table) row(cells ...string) {
	for i, c := range cells {
		w := 12
		if i < len(t.widths) {
			w = t.widths[i]
		}
		fmt.Fprintf(t.w, "%-*s", w, c)
	}
	fmt.Fprintln(t.w)
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
func e2(v float64) string { return fmt.Sprintf("%.2e", v) }
