// Package window defines the paper's §2 windowing semantics: count-based
// tumbling and sliding windows, described by a window size N (how many
// recent elements a query evaluation covers) and a period P (how many new
// elements arrive between successive evaluations). Sub-windows are aligned
// to the period, so a sliding window always covers exactly N/P complete
// sub-windows at evaluation time.
package window

import "fmt"

// Kind distinguishes the two windowing models considered by the paper.
type Kind int

const (
	// Tumbling windows have Size == Period: no overlap between
	// evaluations, and no element is ever reused.
	Tumbling Kind = iota
	// Sliding windows have Size > Period: each element participates in
	// Size/Period successive evaluations.
	Sliding
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Tumbling:
		return "tumbling"
	case Sliding:
		return "sliding"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Spec is a count-based window specification.
type Spec struct {
	Size   int // N: elements covered per evaluation
	Period int // P: elements between evaluations (= sub-window size)
}

// Validate checks the paper's constraints: Size >= Period >= 1 and Size a
// multiple of Period (so sub-windows tile the window exactly).
func (s Spec) Validate() error {
	if s.Period < 1 {
		return fmt.Errorf("window: period %d < 1", s.Period)
	}
	if s.Size < s.Period {
		return fmt.Errorf("window: size %d < period %d", s.Size, s.Period)
	}
	if s.Size%s.Period != 0 {
		return fmt.Errorf("window: size %d not a multiple of period %d", s.Size, s.Period)
	}
	return nil
}

// Kind returns Tumbling when Size == Period and Sliding otherwise.
func (s Spec) Kind() Kind {
	if s.Size == s.Period {
		return Tumbling
	}
	return Sliding
}

// SubWindows returns the number of sub-windows (N/P) covered per
// evaluation.
func (s Spec) SubWindows() int { return s.Size / s.Period }

// Evaluations returns how many query evaluations a stream of length n
// produces: one per completed period once the first full window has been
// observed.
func (s Spec) Evaluations(n int) int {
	if n < s.Size {
		return 0
	}
	return (n-s.Size)/s.Period + 1
}

// EvalBounds returns the half-open element index range [lo, hi) covered by
// the i-th (0-based) evaluation.
func (s Spec) EvalBounds(i int) (lo, hi int) {
	hi = s.Size + i*s.Period
	return hi - s.Size, hi
}

// String implements fmt.Stringer.
func (s Spec) String() string {
	return fmt.Sprintf("%s(size=%d, period=%d)", s.Kind(), s.Size, s.Period)
}

// Iter walks a data slice through the window, invoking eval with the
// content of every complete window in order. It is the reference
// ("stateless") evaluation path used by tests and the error-measurement
// harness; production operators use the incremental path in package stream.
func (s Spec) Iter(data []float64, eval func(evalIdx int, window []float64)) error {
	if err := s.Validate(); err != nil {
		return err
	}
	n := s.Evaluations(len(data))
	for i := 0; i < n; i++ {
		lo, hi := s.EvalBounds(i)
		eval(i, data[lo:hi])
	}
	return nil
}
