package window

import (
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		spec Spec
		ok   bool
	}{
		{Spec{Size: 100, Period: 10}, true},
		{Spec{Size: 10, Period: 10}, true},
		{Spec{Size: 10, Period: 0}, false},
		{Spec{Size: 5, Period: 10}, false},
		{Spec{Size: 15, Period: 10}, false},
		{Spec{Size: 1, Period: 1}, true},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%+v: Validate = %v, want ok=%v", c.spec, err, c.ok)
		}
	}
}

func TestKind(t *testing.T) {
	if got := (Spec{Size: 10, Period: 10}).Kind(); got != Tumbling {
		t.Errorf("Kind = %v, want Tumbling", got)
	}
	if got := (Spec{Size: 100, Period: 10}).Kind(); got != Sliding {
		t.Errorf("Kind = %v, want Sliding", got)
	}
	if Tumbling.String() != "tumbling" || Sliding.String() != "sliding" {
		t.Error("Kind.String broken")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown Kind.String broken")
	}
}

func TestSubWindows(t *testing.T) {
	if got := (Spec{Size: 128000, Period: 16000}).SubWindows(); got != 8 {
		t.Fatalf("SubWindows = %d, want 8", got)
	}
}

func TestEvaluations(t *testing.T) {
	s := Spec{Size: 100, Period: 10}
	cases := []struct{ n, want int }{
		{0, 0}, {99, 0}, {100, 1}, {109, 1}, {110, 2}, {200, 11},
	}
	for _, c := range cases {
		if got := s.Evaluations(c.n); got != c.want {
			t.Errorf("Evaluations(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestEvalBounds(t *testing.T) {
	s := Spec{Size: 100, Period: 10}
	lo, hi := s.EvalBounds(0)
	if lo != 0 || hi != 100 {
		t.Fatalf("EvalBounds(0) = [%d, %d)", lo, hi)
	}
	lo, hi = s.EvalBounds(3)
	if lo != 30 || hi != 130 {
		t.Fatalf("EvalBounds(3) = [%d, %d)", lo, hi)
	}
}

func TestIterCoversAllWindows(t *testing.T) {
	s := Spec{Size: 6, Period: 2}
	data := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	var seen [][2]float64
	err := s.Iter(data, func(i int, w []float64) {
		if len(w) != 6 {
			t.Fatalf("window %d has %d elements", i, len(w))
		}
		seen = append(seen, [2]float64{w[0], w[5]})
	})
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]float64{{0, 5}, {2, 7}, {4, 9}}
	if len(seen) != len(want) {
		t.Fatalf("saw %d windows, want %d", len(seen), len(want))
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("window %d = %v, want %v", i, seen[i], want[i])
		}
	}
}

func TestIterInvalidSpec(t *testing.T) {
	if err := (Spec{Size: 5, Period: 10}).Iter(nil, func(int, []float64) {}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestIterShortData(t *testing.T) {
	calls := 0
	err := (Spec{Size: 10, Period: 5}).Iter(make([]float64, 9), func(int, []float64) { calls++ })
	if err != nil || calls != 0 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestString(t *testing.T) {
	got := Spec{Size: 100, Period: 10}.String()
	if got != "sliding(size=100, period=10)" {
		t.Fatalf("String = %q", got)
	}
}

// Property: evaluation count and bounds are consistent: the last window
// ends within the data, and one more period would exceed it.
func TestQuickEvaluationsBounds(t *testing.T) {
	f := func(sizeMul, period, extra uint8) bool {
		p := int(period%50) + 1
		s := Spec{Size: p * (int(sizeMul%10) + 1), Period: p}
		n := s.Size + int(extra)
		e := s.Evaluations(n)
		if e < 1 {
			return false
		}
		_, hi := s.EvalBounds(e - 1)
		if hi > n {
			return false
		}
		_, hiNext := s.EvalBounds(e)
		return hiNext > n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
