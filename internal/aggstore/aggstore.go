// Package aggstore is the aggregator's pluggable state plane: resident
// per-(worker, internal key name) folded captures behind a small Store
// interface, so the fold logic in qlove.Aggregator is independent of how
// the state is laid out and locked. Three implementations ship:
//
//   - Map: the original layout — every worker's state in one map behind a
//     single RWMutex. Simple, fully serialized; the conformance reference.
//   - Striped: lock-striped shards keyed by hash(worker, base key), so
//     pushes from different workers and concurrent reads proceed in
//     parallel. Worker/key counts are kept in atomics and never take a
//     stripe lock.
//   - Instrumented: a wrapper over either recording per-op counts and
//     cumulative latency, surfaced by the service's /metrics endpoint.
//
// A State is IMMUTABLE once handed to Put/ReplaceGroup/BootstrapSub: the
// aggregator folds copy-on-write (a delta builds a fresh State rather
// than appending into the resident one), which is what lets read paths
// share resident parts with zero copying and lets the fold cache hold
// merged snapshots across reads.
//
// Internal key names follow the engine's salt convention: a logical key
// K is resident either under its base name "K" or under salted
// sub-stream names "K\x00<j>" (NUL cannot appear in user keys). All the
// names of one logical key form its GROUP; fold order is the sorted name
// order [base, sub 0, sub 1, …] because NUL sorts below every user-key
// byte. Both backends maintain a per-group index, so group reads and
// wholesale group replacement never scan the worker's full key set.
//
// Every mutation bumps a per-base generation counter (KeyGen) AFTER the
// state change lands; the aggregator's fold cache tags entries with the
// generation it read before folding, so a stale tag can only cause a
// spurious re-fold, never a stale hit. Generations live in a fixed hash
// table: two bases may share a slot, which over-invalidates and is
// harmless.
package aggstore

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// State is one worker's folded capture of one internal key name — exactly
// the SnapshotParts a full export of that name would carry. Immutable
// after it is stored: folds replace the *State, never mutate it.
type State struct {
	Parts core.SnapshotParts
}

// NamedState pairs a resident internal name with its state, as returned
// by Group in fold order.
type NamedState struct {
	Name  string
	State *State
}

// Store is the aggregator's state plane. Implementations serialize each
// operation internally; callers get per-operation atomicity (a group
// replacement is never observed half-applied) but no cross-operation
// transactions — the aggregator's contract already requires pushes of ONE
// worker to be serialized by the caller, and reads tolerate seeing a
// multi-frame blob partially folded (the fold cache and the bit-equality
// suites verify quiesced states).
type Store interface {
	// Get returns the state resident under the exact internal name.
	Get(worker, name string) (*State, bool)
	// Put stores st under the exact internal name, creating or replacing.
	Put(worker, name string, st *State)
	// Drop removes the exact internal name, reporting whether it was
	// resident.
	Drop(worker, name string) bool
	// ReplaceGroup atomically removes every resident name of name's
	// logical group (base and all salted sub-streams) and stores st under
	// name. Used when a frame replaces the logical key wholesale: a full
	// frame, or a from-generation-0 bootstrap of the base name.
	ReplaceGroup(worker, name string, st *State)
	// BootstrapSub atomically drops the BASE name of name's group and
	// stores st under name (a salted sub-stream bootstrapping out of an
	// escalated base); other sub-streams stay resident.
	BootstrapSub(worker, name string, st *State)
	// Group returns the worker's resident states for one logical key in
	// fold order [base, sub 0, sub 1, …]; empty when the worker holds
	// nothing for it. The returned slice is the caller's; the *States are
	// shared and immutable.
	Group(worker, base string) []NamedState
	// WorkerNames returns every internal name the worker holds, sorted.
	WorkerNames(worker string) []string
	// NamesMatching returns the worker's resident states for every
	// logical group whose BASE key satisfies match (salted sub-streams
	// ride with their group — the predicate never sees internal salted
	// names), sorted by internal name, which keeps each group contiguous
	// in fold order [base, sub 0, sub 1, …]. The slot-migration export
	// path uses it to lift one hash slot's worth of state atomically per
	// group. The returned slice is the caller's; the *States are shared
	// and immutable.
	NamesMatching(worker string, match func(base string) bool) []NamedState

	// Touch creates the worker if needed and stamps its last-push time.
	Touch(worker string, t time.Time)
	// Workers returns the known worker IDs, sorted, excluding those the
	// stale predicate rejects (nil keeps all).
	Workers(stale func(lastPush time.Time) bool) []string
	// DropWorker removes one worker and all its state, reporting whether
	// it was known.
	DropWorker(worker string) bool
	// SweepWorkers drops every worker the predicate marks stale,
	// returning how many were removed.
	SweepWorkers(stale func(lastPush time.Time) bool) int

	// WorkerCount and KeyCount are O(1) occupancy counters — workers
	// resident, and distinct logical keys across all of them — safe for
	// /healthz even while pushes are in flight. They count RESIDENT
	// state; staleness filtering under a push deadline is the
	// aggregator's concern.
	WorkerCount() int
	KeyCount() int

	// KeyGen returns the mutation generation of a logical key's cache
	// line. It only moves forward, and any mutation touching the base
	// bumps it (hash slots may be shared across bases).
	KeyGen(base string) uint64

	// Kind names the backend ("map", "striped", …) for metrics and bench
	// labels.
	Kind() string
}

// LockWaiter is implemented by backends that track time spent WAITING on
// their internal locks (mutex acquisition beyond an uncontended TryLock).
type LockWaiter interface {
	LockWaitNanos() (read, write int64)
}

// OpMetrics is one operation's cumulative count and latency.
type OpMetrics struct {
	Op    string `json:"op"`
	Count int64  `json:"count"`
	Nanos int64  `json:"total_nanos"`
}

// Metrics is the Instrumented wrapper's report.
type Metrics struct {
	Backend            string      `json:"backend"`
	Ops                []OpMetrics `json:"ops"`
	LockWaitReadNanos  int64       `json:"lock_wait_read_nanos"`
	LockWaitWriteNanos int64       `json:"lock_wait_write_nanos"`
}

// --- salt-name convention (mirrors the engine's; the root package cannot
// be imported from an internal package without a cycle) ---

// saltSep separates a base key from its salt index in internal names.
const saltSep = '\x00'

// splitKey splits an internal name into (base, salt index, salted).
func splitKey(name string) (string, int, bool) {
	for i := 0; i < len(name); i++ {
		if name[i] == saltSep {
			return name[:i], int(name[i+1]), true
		}
	}
	return name, 0, false
}

// logicalKey returns the base key of an internal name.
func logicalKey(name string) string {
	b, _, _ := splitKey(name)
	return b
}

// saltedName rebuilds the internal name of sub-stream j of base.
func saltedName(base string, j int) string {
	return base + string([]byte{saltSep, byte(j)})
}

// fnv1a hashes the concatenation of the given strings (FNV-1a, 32-bit).
func fnv1a(ss ...string) uint32 {
	h := uint32(2166136261)
	for _, s := range ss {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint32(s[i])) * 16777619
		}
	}
	return h
}

// --- generation table ---

const genSlots = 4096 // power of two

// genTable maps logical keys to monotone mutation generations via a fixed
// hash table of atomics: collisions over-invalidate the fold cache, never
// under-invalidate it.
type genTable struct {
	slots [genSlots]atomic.Uint64
}

func (g *genTable) bump(base string) { g.slots[fnv1a(base)&(genSlots-1)].Add(1) }

func (g *genTable) load(base string) uint64 { return g.slots[fnv1a(base)&(genSlots-1)].Load() }

// --- cross-worker logical-key refcounts ---

const refStripes = 64

// refTable counts, per logical key, how many workers hold any state for
// it, maintaining the distinct-key total in an atomic so KeyCount never
// takes a state lock.
type refTable struct {
	distinct atomic.Int64
	stripes  [refStripes]struct {
		mu sync.Mutex
		m  map[string]int32
	}
}

func (t *refTable) stripe(base string) *struct {
	mu sync.Mutex
	m  map[string]int32
} {
	return &t.stripes[fnv1a(base)&(refStripes-1)]
}

// incr records one more worker holding base.
func (t *refTable) incr(base string) {
	s := t.stripe(base)
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[string]int32)
	}
	s.m[base]++
	if s.m[base] == 1 {
		t.distinct.Add(1)
	}
	s.mu.Unlock()
}

// decr records one fewer worker holding base.
func (t *refTable) decr(base string) {
	s := t.stripe(base)
	s.mu.Lock()
	if n := s.m[base]; n > 0 {
		if n == 1 {
			delete(s.m, base)
			t.distinct.Add(-1)
		} else {
			s.m[base] = n - 1
		}
	}
	s.mu.Unlock()
}

// --- lock-wait tracking ---

// lockTimed acquires mu, charging any wait beyond an uncontended TryLock
// to the counter.
func lockTimed(mu *sync.RWMutex, wait *atomic.Int64) {
	if mu.TryLock() {
		return
	}
	t0 := time.Now()
	mu.Lock()
	wait.Add(int64(time.Since(t0)))
}

// rlockTimed is lockTimed for read locks.
func rlockTimed(mu *sync.RWMutex, wait *atomic.Int64) {
	if mu.TryRLock() {
		return
	}
	t0 := time.Now()
	mu.RLock()
	wait.Add(int64(time.Since(t0)))
}
