package aggstore

import "sort"

// group is one (worker, logical key)'s resident state: the base name's
// capture plus any salted sub-streams, kept sorted by salt index. This IS
// the per-base index the read path folds from — group reads and wholesale
// replacement never scan the worker's other keys.
type group struct {
	base *State
	subs []subState // ascending salt index
}

type subState struct {
	j  int
	st *State
}

func (g *group) empty() bool { return g.base == nil && len(g.subs) == 0 }

// setSub inserts or replaces sub-stream j.
func (g *group) setSub(j int, st *State) {
	i := sort.Search(len(g.subs), func(i int) bool { return g.subs[i].j >= j })
	if i < len(g.subs) && g.subs[i].j == j {
		g.subs[i].st = st
		return
	}
	g.subs = append(g.subs, subState{})
	copy(g.subs[i+1:], g.subs[i:])
	g.subs[i] = subState{j: j, st: st}
}

// dropSub removes sub-stream j, reporting whether it was resident.
func (g *group) dropSub(j int) bool {
	i := sort.Search(len(g.subs), func(i int) bool { return g.subs[i].j >= j })
	if i >= len(g.subs) || g.subs[i].j != j {
		return false
	}
	copy(g.subs[i:], g.subs[i+1:])
	g.subs[len(g.subs)-1] = subState{}
	g.subs = g.subs[:len(g.subs)-1]
	return true
}

// get returns the state under the exact (salted, j) coordinate.
func (g *group) get(salted bool, j int) (*State, bool) {
	if !salted {
		if g.base == nil {
			return nil, false
		}
		return g.base, true
	}
	i := sort.Search(len(g.subs), func(i int) bool { return g.subs[i].j >= j })
	if i >= len(g.subs) || g.subs[i].j != j {
		return nil, false
	}
	return g.subs[i].st, true
}

// fold appends the group's states in fold order [base, sub 0, sub 1, …].
func (g *group) fold(base string, out []NamedState) []NamedState {
	if g.base != nil {
		out = append(out, NamedState{Name: base, State: g.base})
	}
	for _, s := range g.subs {
		out = append(out, NamedState{Name: saltedName(base, s.j), State: s.st})
	}
	return out
}

// names appends the group's resident internal names (fold order).
func (g *group) names(base string, out []string) []string {
	if g.base != nil {
		out = append(out, base)
	}
	for _, s := range g.subs {
		out = append(out, saltedName(base, s.j))
	}
	return out
}
