package aggstore

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Map is the original single-lock store: every worker's state in one map
// behind one RWMutex, every operation fully serialized against every
// other. It is the simplest correct implementation and the conformance
// reference the striped backend is verified against. Unlike the
// pre-refactor layout it still keeps the per-base group index, so salted
// reads and group replacement are O(group), not O(resident keys).
type Map struct {
	mu      sync.RWMutex
	workers map[string]*mapWorker

	gens                genTable
	refs                refTable
	workerCount         atomic.Int64
	readWait, writeWait atomic.Int64
}

type mapWorker struct {
	groups   map[string]*group // logical key -> resident group
	lastPush time.Time
}

// NewMap returns an empty single-map store.
func NewMap() *Map {
	return &Map{workers: make(map[string]*mapWorker)}
}

func (m *Map) Kind() string { return "map" }

func (m *Map) lock()    { lockTimed(&m.mu, &m.writeWait) }
func (m *Map) rlock()   { rlockTimed(&m.mu, &m.readWait) }
func (m *Map) unlock()  { m.mu.Unlock() }
func (m *Map) runlock() { m.mu.RUnlock() }

// LockWaitNanos reports cumulative read-/write-lock wait time.
func (m *Map) LockWaitNanos() (read, write int64) {
	return m.readWait.Load(), m.writeWait.Load()
}

func (m *Map) Get(worker, name string) (*State, bool) {
	base, j, salted := splitKey(name)
	m.rlock()
	defer m.runlock()
	w := m.workers[worker]
	if w == nil {
		return nil, false
	}
	g := w.groups[base]
	if g == nil {
		return nil, false
	}
	return g.get(salted, j)
}

func (m *Map) Put(worker, name string, st *State) {
	base, j, salted := splitKey(name)
	m.lock()
	w := m.worker(worker)
	g := w.groups[base]
	if g == nil {
		g = &group{}
		w.groups[base] = g
		m.refs.incr(base)
	}
	if salted {
		g.setSub(j, st)
	} else {
		g.base = st
	}
	m.unlock()
	m.gens.bump(base)
}

func (m *Map) Drop(worker, name string) bool {
	base, j, salted := splitKey(name)
	m.lock()
	dropped := false
	if w := m.workers[worker]; w != nil {
		if g := w.groups[base]; g != nil {
			if salted {
				dropped = g.dropSub(j)
			} else if g.base != nil {
				g.base = nil
				dropped = true
			}
			if dropped && g.empty() {
				delete(w.groups, base)
				m.refs.decr(base)
			}
		}
	}
	m.unlock()
	m.gens.bump(base)
	return dropped
}

func (m *Map) ReplaceGroup(worker, name string, st *State) {
	base, j, salted := splitKey(name)
	m.lock()
	w := m.worker(worker)
	g := w.groups[base]
	if g == nil {
		g = &group{}
		w.groups[base] = g
		m.refs.incr(base)
	} else {
		g.base = nil
		g.subs = nil
	}
	if salted {
		g.setSub(j, st)
	} else {
		g.base = st
	}
	m.unlock()
	m.gens.bump(base)
}

func (m *Map) BootstrapSub(worker, name string, st *State) {
	base, j, _ := splitKey(name)
	m.lock()
	w := m.worker(worker)
	g := w.groups[base]
	if g == nil {
		g = &group{}
		w.groups[base] = g
		m.refs.incr(base)
	}
	g.base = nil
	g.setSub(j, st)
	m.unlock()
	m.gens.bump(base)
}

func (m *Map) Group(worker, base string) []NamedState {
	m.rlock()
	defer m.runlock()
	w := m.workers[worker]
	if w == nil {
		return nil
	}
	g := w.groups[base]
	if g == nil {
		return nil
	}
	return g.fold(base, nil)
}

func (m *Map) WorkerNames(worker string) []string {
	m.rlock()
	w := m.workers[worker]
	var names []string
	if w != nil {
		for base, g := range w.groups {
			names = g.names(base, names)
		}
	}
	m.runlock()
	sort.Strings(names)
	return names
}

func (m *Map) NamesMatching(worker string, match func(base string) bool) []NamedState {
	m.rlock()
	w := m.workers[worker]
	var out []NamedState
	if w != nil {
		for base, g := range w.groups {
			if match(base) {
				out = g.fold(base, out)
			}
		}
	}
	m.runlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// worker returns (creating if needed) the worker record; caller holds the
// write lock.
func (m *Map) worker(id string) *mapWorker {
	w := m.workers[id]
	if w == nil {
		w = &mapWorker{groups: make(map[string]*group)}
		m.workers[id] = w
		m.workerCount.Add(1)
	}
	return w
}

func (m *Map) Touch(worker string, t time.Time) {
	m.lock()
	m.worker(worker).lastPush = t
	m.unlock()
}

func (m *Map) Workers(stale func(time.Time) bool) []string {
	m.rlock()
	ids := make([]string, 0, len(m.workers))
	for id, w := range m.workers {
		if stale == nil || !stale(w.lastPush) {
			ids = append(ids, id)
		}
	}
	m.runlock()
	sort.Strings(ids)
	return ids
}

// dropWorkerLocked forgets w's state, fixing refcounts; caller holds the
// write lock.
func (m *Map) dropWorkerLocked(id string, w *mapWorker) {
	for base := range w.groups {
		m.refs.decr(base)
	}
	delete(m.workers, id)
	m.workerCount.Add(-1)
}

func (m *Map) DropWorker(worker string) bool {
	m.lock()
	defer m.unlock()
	w := m.workers[worker]
	if w == nil {
		return false
	}
	m.dropWorkerLocked(worker, w)
	return true
}

func (m *Map) SweepWorkers(stale func(time.Time) bool) int {
	if stale == nil {
		return 0
	}
	m.lock()
	defer m.unlock()
	dropped := 0
	for id, w := range m.workers {
		if stale(w.lastPush) {
			m.dropWorkerLocked(id, w)
			dropped++
		}
	}
	return dropped
}

func (m *Map) WorkerCount() int { return int(m.workerCount.Load()) }

func (m *Map) KeyCount() int { return int(m.refs.distinct.Load()) }

func (m *Map) KeyGen(base string) uint64 { return m.gens.load(base) }
