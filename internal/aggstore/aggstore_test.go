package aggstore

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/window"
)

// testParts is a valid minimal capture: the disk backend wire-encodes
// every stored state, so dummies must satisfy the same snapshot-validity
// contract real folds do (the read path folds through core.NewSnapshot
// anyway).
var testParts = func() core.SnapshotParts {
	p, err := core.New(core.Config{Spec: window.Spec{Size: 256, Period: 64}, Phis: []float64{0.5}})
	if err != nil {
		panic(err)
	}
	return p.Snapshot().Parts()
}()

// mkState builds a distinguishable dummy State, tagged via SealGen (the
// stores never inspect Parts beyond holding them).
func mkState(tag uint64) *State {
	parts := testParts
	parts.SealGen = tag
	return &State{Parts: parts}
}

// stores returns one fresh instance of every backend, the Map first (it
// is the parity reference).
func stores(t *testing.T) []Store {
	t.Helper()
	disk, err := OpenDisk(DiskConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { disk.Close() })
	return []Store{
		NewMap(),
		NewStriped(0),
		NewStriped(1), // degenerate: every group in one stripe
		NewInstrumented(NewStriped(4)),
		disk,
	}
}

// TestStoreParityRandomOps drives an identical randomized op sequence —
// puts, drops, group replacements, sub bootstraps, worker churn — through
// every backend and requires identical observable state after every step:
// Group fold order, WorkerNames, Workers, and the occupancy counters.
func TestStoreParityRandomOps(t *testing.T) {
	ss := stores(t)
	rng := rand.New(rand.NewSource(7))
	workers := []string{"wa", "wb", "wc"}
	bases := []string{"k0", "k1", "k2", "k3"}
	name := func(base string, salt int) string {
		if salt < 0 {
			return base
		}
		return saltedName(base, salt)
	}
	check := func(step int) {
		t.Helper()
		ref := ss[0]
		for si := 1; si < len(ss); si++ {
			s := ss[si]
			if got, want := s.WorkerCount(), ref.WorkerCount(); got != want {
				t.Fatalf("step %d: %s WorkerCount %d != map %d", step, s.Kind(), got, want)
			}
			if got, want := s.KeyCount(), ref.KeyCount(); got != want {
				t.Fatalf("step %d: %s KeyCount %d != map %d", step, s.Kind(), got, want)
			}
			if got, want := s.Workers(nil), ref.Workers(nil); !reflect.DeepEqual(got, want) {
				t.Fatalf("step %d: %s Workers %v != map %v", step, s.Kind(), got, want)
			}
			for _, w := range workers {
				if got, want := s.WorkerNames(w), ref.WorkerNames(w); !reflect.DeepEqual(got, want) {
					t.Fatalf("step %d: %s WorkerNames(%s) %v != map %v", step, s.Kind(), w, got, want)
				}
				for _, b := range bases {
					got, want := s.Group(w, b), ref.Group(w, b)
					if len(got) != len(want) {
						t.Fatalf("step %d: %s Group(%s,%s) has %d members, map %d", step, s.Kind(), w, b, len(got), len(want))
					}
					for i := range got {
						if got[i].Name != want[i].Name || got[i].State.Parts.SealGen != want[i].State.Parts.SealGen {
							t.Fatalf("step %d: %s Group(%s,%s)[%d] = %q/%d, map %q/%d", step, s.Kind(), w, b, i,
								got[i].Name, got[i].State.Parts.SealGen, want[i].Name, want[i].State.Parts.SealGen)
						}
					}
				}
			}
		}
	}
	var tag uint64
	for step := 0; step < 2000; step++ {
		w := workers[rng.Intn(len(workers))]
		base := bases[rng.Intn(len(bases))]
		salt := rng.Intn(4) - 1 // -1 = base name, 0..2 = sub-streams
		tag++
		st := mkState(tag)
		op := rng.Intn(10)
		subSalt := rng.Intn(3) // drawn once: every backend gets the same op
		for _, s := range ss {
			switch op {
			case 0, 1, 2:
				s.Touch(w, time.Unix(int64(step), 0))
				s.Put(w, name(base, salt), st)
			case 3:
				s.Drop(w, name(base, salt))
			case 4, 5:
				s.Touch(w, time.Unix(int64(step), 0))
				s.ReplaceGroup(w, name(base, salt), st)
			case 6, 7:
				s.Touch(w, time.Unix(int64(step), 0))
				s.BootstrapSub(w, saltedName(base, subSalt), st)
			case 8:
				s.DropWorker(w)
			case 9:
				cutoff := time.Unix(int64(step-40), 0)
				s.SweepWorkers(func(last time.Time) bool { return last.Before(cutoff) })
			}
		}
		check(step)
	}
}

// TestStoreGroupFoldOrder pins the documented fold order: base first,
// then sub-streams ascending — NUL sorts below every user-key byte.
func TestStoreGroupFoldOrder(t *testing.T) {
	for _, s := range stores(t) {
		s.Touch("w", time.Time{})
		s.Put("w", saltedName("k", 2), mkState(3))
		s.Put("w", "k", mkState(1))
		s.Put("w", saltedName("k", 0), mkState(2))
		g := s.Group("w", "k")
		if len(g) != 3 {
			t.Fatalf("%s: group size %d", s.Kind(), len(g))
		}
		want := []string{"k", saltedName("k", 0), saltedName("k", 2)}
		for i, ns := range g {
			if ns.Name != want[i] {
				t.Fatalf("%s: fold order %d = %q, want %q", s.Kind(), i, ns.Name, want[i])
			}
		}
		names := s.WorkerNames("w")
		if !sort.StringsAreSorted(names) || len(names) != 3 {
			t.Fatalf("%s: WorkerNames %v", s.Kind(), names)
		}
	}
}

// TestStoreKeyGenAdvances pins the cache-invalidation contract: any
// mutation touching a base bumps its generation, and reads don't.
func TestStoreKeyGenAdvances(t *testing.T) {
	for _, s := range stores(t) {
		g0 := s.KeyGen("k")
		s.Touch("w", time.Time{})
		s.Put("w", "k", mkState(1))
		g1 := s.KeyGen("k")
		if g1 <= g0 {
			t.Fatalf("%s: Put did not bump the generation (%d -> %d)", s.Kind(), g0, g1)
		}
		s.Group("w", "k")
		s.WorkerNames("w")
		if g := s.KeyGen("k"); g != g1 {
			t.Fatalf("%s: reads moved the generation (%d -> %d)", s.Kind(), g1, g)
		}
		s.ReplaceGroup("w", saltedName("k", 1), mkState(2))
		if g := s.KeyGen("k"); g <= g1 {
			t.Fatalf("%s: ReplaceGroup did not bump the generation", s.Kind())
		}
		// Worker removal deliberately does NOT bump generations: the
		// aggregator's fold cache keys on the live worker set as well, which
		// is what invalidates cached folds across worker churn.
	}
}

// TestStoreOccupancyCounters pins the O(1) counters across the key
// lifecycle, including the same logical key resident on several workers.
func TestStoreOccupancyCounters(t *testing.T) {
	for _, s := range stores(t) {
		for w := 0; w < 3; w++ {
			worker := fmt.Sprintf("w%d", w)
			s.Touch(worker, time.Time{})
			s.Put(worker, "shared", mkState(1))
			s.Put(worker, fmt.Sprintf("own-%d", w), mkState(2))
		}
		if s.WorkerCount() != 3 {
			t.Fatalf("%s: WorkerCount %d", s.Kind(), s.WorkerCount())
		}
		if s.KeyCount() != 4 { // shared + 3 owned
			t.Fatalf("%s: KeyCount %d, want 4", s.Kind(), s.KeyCount())
		}
		// A salted sub-stream of an existing base is NOT a new logical key.
		s.Put("w0", saltedName("shared", 1), mkState(3))
		if s.KeyCount() != 4 {
			t.Fatalf("%s: salted sub-stream changed KeyCount to %d", s.Kind(), s.KeyCount())
		}
		s.DropWorker("w1")
		if s.WorkerCount() != 2 || s.KeyCount() != 3 {
			t.Fatalf("%s: after DropWorker: workers=%d keys=%d", s.Kind(), s.WorkerCount(), s.KeyCount())
		}
		if s.SweepWorkers(func(time.Time) bool { return true }) != 2 {
			t.Fatalf("%s: sweep-all missed workers", s.Kind())
		}
		if s.WorkerCount() != 0 || s.KeyCount() != 0 {
			t.Fatalf("%s: after sweep-all: workers=%d keys=%d", s.Kind(), s.WorkerCount(), s.KeyCount())
		}
	}
}

// TestInstrumentedRecords pins the wrapper: ops counted, kind labeled,
// inner lock-wait surfaced.
func TestInstrumentedRecords(t *testing.T) {
	in := NewInstrumented(NewMap())
	if in.Kind() != "map+instrumented" {
		t.Fatalf("kind %q", in.Kind())
	}
	in.Touch("w", time.Time{})
	in.Put("w", "k", mkState(1))
	in.Get("w", "k")
	in.Get("w", "missing")
	in.Drop("w", "k")
	m := in.Metrics()
	counts := map[string]int64{}
	for _, op := range m.Ops {
		counts[op.Op] = op.Count
	}
	want := map[string]int64{"touch": 1, "put": 1, "get": 2, "drop": 1}
	for op, n := range want {
		if counts[op] != n {
			t.Fatalf("op %q counted %d, want %d (all: %v)", op, counts[op], n, counts)
		}
	}
	if _, ok := Store(in).(LockWaiter); !ok {
		t.Fatal("instrumented wrapper hides the inner LockWaiter")
	}
}
