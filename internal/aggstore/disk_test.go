package aggstore

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// requireSameState asserts the disk store's whole observable surface
// matches the reference store's.
func requireSameState(t *testing.T, got, want Store, when string) {
	t.Helper()
	if g, w := got.WorkerCount(), want.WorkerCount(); g != w {
		t.Fatalf("%s: WorkerCount %d != %d", when, g, w)
	}
	if g, w := got.KeyCount(), want.KeyCount(); g != w {
		t.Fatalf("%s: KeyCount %d != %d", when, g, w)
	}
	workers := want.Workers(nil)
	if g := got.Workers(nil); !reflect.DeepEqual(g, workers) {
		t.Fatalf("%s: Workers %v != %v", when, g, workers)
	}
	for _, id := range workers {
		names := want.WorkerNames(id)
		if g := got.WorkerNames(id); !reflect.DeepEqual(g, names) {
			t.Fatalf("%s: WorkerNames(%s) %v != %v", when, id, g, names)
		}
		seen := map[string]struct{}{}
		for _, n := range names {
			base := logicalKey(n)
			if _, dup := seen[base]; dup {
				continue
			}
			seen[base] = struct{}{}
			g, w := got.Group(id, base), want.Group(id, base)
			if len(g) != len(w) {
				t.Fatalf("%s: Group(%s,%s): %d members != %d", when, id, base, len(g), len(w))
			}
			for i := range g {
				if g[i].Name != w[i].Name {
					t.Fatalf("%s: Group(%s,%s)[%d] name %q != %q", when, id, base, i, g[i].Name, w[i].Name)
				}
				if !reflect.DeepEqual(g[i].State.Parts, w[i].State.Parts) {
					t.Fatalf("%s: Group(%s,%s)[%d] %q parts diverge after recovery", when, id, base, i, g[i].Name)
				}
			}
		}
	}
}

// driveOps applies a deterministic randomized op sequence to every given
// store (the same ops to each).
func driveOps(t *testing.T, rng *rand.Rand, steps int, tag *uint64, ss ...Store) {
	t.Helper()
	workers := []string{"wa", "wb", "wc"}
	bases := []string{"k0", "k1", "k2"}
	for step := 0; step < steps; step++ {
		w := workers[rng.Intn(len(workers))]
		base := bases[rng.Intn(len(bases))]
		salt := rng.Intn(4) - 1
		name := base
		if salt >= 0 {
			name = saltedName(base, salt)
		}
		*tag++
		st := mkState(*tag)
		op := rng.Intn(10)
		subSalt := rng.Intn(3)
		ts := time.Unix(int64(1000+step), 0)
		for _, s := range ss {
			switch op {
			case 0, 1, 2:
				s.Touch(w, ts)
				s.Put(w, name, st)
			case 3:
				s.Drop(w, name)
			case 4, 5:
				s.Touch(w, ts)
				s.ReplaceGroup(w, name, st)
			case 6, 7:
				s.Touch(w, ts)
				s.BootstrapSub(w, saltedName(base, subSalt), st)
			case 8:
				s.DropWorker(w)
			case 9:
				cutoff := time.Unix(int64(1000+step-25), 0)
				s.SweepWorkers(func(last time.Time) bool { return last.Before(cutoff) })
			}
		}
	}
}

// TestDiskRecovery drives the same randomized ops through a Map and a
// Disk, then reopens the directory three ways — after a clean Close,
// after an abandon-without-Close (the kill -9 shape; FsyncAlways makes
// every applied record durable), and after further ops atop the recovered
// state — requiring the recovered store to match the reference exactly,
// parts and all.
func TestDiskRecovery(t *testing.T) {
	dir := t.TempDir()
	ref := NewMap()
	rng := rand.New(rand.NewSource(11))
	var tag uint64

	d, err := OpenDisk(DiskConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	driveOps(t, rng, 300, &tag, ref, d)
	requireSameState(t, d, ref, "before close")
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d, err = OpenDisk(DiskConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	requireSameState(t, d, ref, "after clean reopen")

	// Keep mutating, then abandon WITHOUT Close: FsyncAlways means every
	// completed mutation is already on disk, exactly the kill -9 contract.
	driveOps(t, rng, 200, &tag, ref, d)
	d2, err := OpenDisk(DiskConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	requireSameState(t, d2, ref, "after crash reopen")

	// The recovered store keeps accepting and persisting new mutations.
	driveOps(t, rng, 100, &tag, ref, d2)
	requireSameState(t, d2, ref, "after post-recovery ops")
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d2.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestDiskTornTail pins crash-mid-append semantics: a torn record at the
// WAL tail is detected (CRC/length), truncated, and everything before it
// recovers; subsequent appends land cleanly on the truncated log.
func TestDiskTornTail(t *testing.T) {
	dir := t.TempDir()
	ref := NewMap()
	d, err := OpenDisk(DiskConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range []string{"a", "b", "c"} {
		d.Touch("w", time.Unix(int64(i), 0))
		d.Put("w", k, mkState(uint64(i+1)))
		ref.Touch("w", time.Unix(int64(i), 0))
		ref.Put("w", k, mkState(uint64(i+1)))
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: a record header claiming more bytes than follow.
	wals, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(wals) != 1 {
		t.Fatalf("wal files: %v (%v)", wals, err)
	}
	f, err := os.OpenFile(wals[0], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	d, err = OpenDisk(DiskConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	requireSameState(t, d, ref, "after torn tail")
	d.Put("w", "d", mkState(9))
	ref.Put("w", "d", mkState(9))
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d, err = OpenDisk(DiskConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	requireSameState(t, d, ref, "after append past torn tail")
	d.Close()
}

// TestDiskCompaction forces compaction after nearly every mutation
// (CompactBytes=1) and requires the snapshot+fresh-WAL cycle to preserve
// state across a reopen, retire superseded files, and tolerate an
// abandoned temp snapshot (the crash-mid-compaction shape).
func TestDiskCompaction(t *testing.T) {
	dir := t.TempDir()
	ref := NewMap()
	rng := rand.New(rand.NewSource(23))
	var tag uint64
	d, err := OpenDisk(DiskConfig{Dir: dir, CompactBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	driveOps(t, rng, 200, &tag, ref, d)
	requireSameState(t, d, ref, "compacting store")
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		files = append(files, e.Name())
	}
	if len(files) > 3 {
		t.Fatalf("compaction left %d files behind: %v", len(files), files)
	}

	// A leftover temp snapshot (crash between write and rename) is inert.
	if err := os.WriteFile(filepath.Join(dir, "snap-9999999999999999.bin.tmp"), []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}
	d.Close()
	d, err = OpenDisk(DiskConfig{Dir: dir, CompactBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	requireSameState(t, d, ref, "after compacted reopen")
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmps) != 0 {
		t.Fatalf("temp snapshot survived recovery: %v", tmps)
	}
	d.Close()
}

// TestDiskExplicitCompactAndCorruptSnapshotFallback: a corrupted newest
// snapshot falls back to the previous snapshot+WAL pair when one exists.
func TestDiskExplicitCompactAndCorruptSnapshotFallback(t *testing.T) {
	dir := t.TempDir()
	ref := NewMap()
	d, err := OpenDisk(DiskConfig{Dir: dir, CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		d.Touch("w", time.Unix(int64(i), 0))
		d.Put("w", "k", mkState(uint64(i)))
		ref.Touch("w", time.Unix(int64(i), 0))
		ref.Put("w", "k", mkState(uint64(i)))
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	d.Put("w", "post", mkState(7))
	ref.Put("w", "post", mkState(7))
	d.Close()

	// Reopen: snapshot + the post-compaction WAL record.
	d, err = OpenDisk(DiskConfig{Dir: dir, CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	requireSameState(t, d, ref, "snapshot+wal reopen")
	d.Close()

	// Corrupt the snapshot: with no older snapshot the directory still
	// opens (empty state is the honest answer for a destroyed single copy)
	// — but the WAL tail must not crash recovery.
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.bin"))
	if len(snaps) != 1 {
		t.Fatalf("snapshots: %v", snaps)
	}
	data, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(snaps[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	d, err = OpenDisk(DiskConfig{Dir: dir, CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if n := d.WorkerCount(); n != 0 {
		// Only the post-compaction WAL survived; it re-creates the worker
		// via its Put record, so 1 worker with just the "post" key is also
		// acceptable — what is NOT acceptable is a phantom full recovery.
		if names := d.WorkerNames("w"); len(names) != 1 || names[0] != "post" {
			t.Fatalf("corrupt snapshot recovered to workers=%d names=%v", n, names)
		}
	}
	d.Close()
}

// TestDiskFsyncModes exercises the interval and none disciplines: both
// recover everything after a clean Close, and the interval flusher makes
// records durable without one.
func TestDiskFsyncModes(t *testing.T) {
	for _, mode := range []string{FsyncInterval, FsyncNone} {
		dir := t.TempDir()
		ref := NewMap()
		cfg := DiskConfig{Dir: dir, Fsync: mode, FsyncInterval: 5 * time.Millisecond}
		d, err := OpenDisk(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		var tag uint64
		driveOps(t, rng, 120, &tag, ref, d)
		if mode == FsyncInterval {
			// The flusher must land the buffered records on its own.
			deadline := time.Now().Add(2 * time.Second)
			for {
				d2, err := OpenDisk(DiskConfig{Dir: dir, Fsync: FsyncNone})
				if err != nil {
					t.Fatal(err)
				}
				ok := d2.WorkerCount() == ref.WorkerCount() && d2.KeyCount() == ref.KeyCount()
				d2.Close()
				if ok {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("%s: interval flusher never persisted the tail", mode)
				}
				time.Sleep(10 * time.Millisecond)
			}
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		d, err = OpenDisk(cfg)
		if err != nil {
			t.Fatal(err)
		}
		requireSameState(t, d, ref, mode+" after clean close")
		d.Close()
	}
}

// TestDiskConfigValidation pins the constructor's error surface.
func TestDiskConfigValidation(t *testing.T) {
	if _, err := OpenDisk(DiskConfig{}); err == nil {
		t.Fatal("empty dir accepted")
	}
	if _, err := OpenDisk(DiskConfig{Dir: t.TempDir(), Fsync: "sometimes"}); err == nil ||
		!strings.Contains(err.Error(), "fsync") {
		t.Fatalf("bad fsync mode: %v", err)
	}
}
