package aggstore

import (
	"sync/atomic"
	"time"
)

// Store ops, in the order Metrics reports them.
const (
	opGet = iota
	opPut
	opDrop
	opReplaceGroup
	opBootstrapSub
	opGroup
	opWorkerNames
	opNamesMatching
	opTouch
	opWorkers
	opDropWorker
	opSweepWorkers
	opCount
)

var opNames = [opCount]string{
	"get", "put", "drop", "replace_group", "bootstrap_sub",
	"group", "worker_names", "names_matching", "touch", "workers",
	"drop_worker", "sweep_workers",
}

// Instrumented wraps any Store, recording per-op call counts and
// cumulative latency in atomics; the inner backend's lock-wait counters
// (when it exposes them) ride along in Metrics. The pure-atomic counter
// reads (WorkerCount/KeyCount/KeyGen) pass through unrecorded — timing
// them would cost more than the ops themselves and they sit on the fold
// cache's hot path.
type Instrumented struct {
	inner Store
	ops   [opCount]opRec
}

type opRec struct {
	count atomic.Int64
	nanos atomic.Int64
}

// NewInstrumented wraps inner with op recording.
func NewInstrumented(inner Store) *Instrumented {
	return &Instrumented{inner: inner}
}

// Inner returns the wrapped backend.
func (in *Instrumented) Inner() Store { return in.inner }

func (in *Instrumented) Kind() string { return in.inner.Kind() + "+instrumented" }

func (in *Instrumented) record(op int, t0 time.Time) {
	in.ops[op].count.Add(1)
	in.ops[op].nanos.Add(int64(time.Since(t0)))
}

// Metrics snapshots the recorded counters.
func (in *Instrumented) Metrics() Metrics {
	m := Metrics{Backend: in.Kind(), Ops: make([]OpMetrics, 0, opCount)}
	for op := 0; op < opCount; op++ {
		c := in.ops[op].count.Load()
		if c == 0 {
			continue
		}
		m.Ops = append(m.Ops, OpMetrics{Op: opNames[op], Count: c, Nanos: in.ops[op].nanos.Load()})
	}
	m.LockWaitReadNanos, m.LockWaitWriteNanos = in.LockWaitNanos()
	return m
}

// LockWaitNanos forwards the inner backend's lock-wait counters (zeros
// when it does not track them).
func (in *Instrumented) LockWaitNanos() (read, write int64) {
	if lw, ok := in.inner.(LockWaiter); ok {
		return lw.LockWaitNanos()
	}
	return 0, 0
}

func (in *Instrumented) Get(worker, name string) (*State, bool) {
	defer in.record(opGet, time.Now())
	return in.inner.Get(worker, name)
}

func (in *Instrumented) Put(worker, name string, st *State) {
	defer in.record(opPut, time.Now())
	in.inner.Put(worker, name, st)
}

func (in *Instrumented) Drop(worker, name string) bool {
	defer in.record(opDrop, time.Now())
	return in.inner.Drop(worker, name)
}

func (in *Instrumented) ReplaceGroup(worker, name string, st *State) {
	defer in.record(opReplaceGroup, time.Now())
	in.inner.ReplaceGroup(worker, name, st)
}

func (in *Instrumented) BootstrapSub(worker, name string, st *State) {
	defer in.record(opBootstrapSub, time.Now())
	in.inner.BootstrapSub(worker, name, st)
}

func (in *Instrumented) Group(worker, base string) []NamedState {
	defer in.record(opGroup, time.Now())
	return in.inner.Group(worker, base)
}

func (in *Instrumented) WorkerNames(worker string) []string {
	defer in.record(opWorkerNames, time.Now())
	return in.inner.WorkerNames(worker)
}

func (in *Instrumented) NamesMatching(worker string, match func(base string) bool) []NamedState {
	defer in.record(opNamesMatching, time.Now())
	return in.inner.NamesMatching(worker, match)
}

func (in *Instrumented) Touch(worker string, t time.Time) {
	defer in.record(opTouch, time.Now())
	in.inner.Touch(worker, t)
}

func (in *Instrumented) Workers(stale func(time.Time) bool) []string {
	defer in.record(opWorkers, time.Now())
	return in.inner.Workers(stale)
}

func (in *Instrumented) DropWorker(worker string) bool {
	defer in.record(opDropWorker, time.Now())
	return in.inner.DropWorker(worker)
}

func (in *Instrumented) SweepWorkers(stale func(time.Time) bool) int {
	defer in.record(opSweepWorkers, time.Now())
	return in.inner.SweepWorkers(stale)
}

func (in *Instrumented) WorkerCount() int { return in.inner.WorkerCount() }

func (in *Instrumented) KeyCount() int { return in.inner.KeyCount() }

func (in *Instrumented) KeyGen(base string) uint64 { return in.inner.KeyGen(base) }
