package aggstore

import (
	"reflect"
	"testing"
	"time"
)

// TestStoreNamesMatching pins the slot-export enumeration on every
// backend: the predicate sees only BASE keys (salted sub-streams ride
// with their group), results sort by internal name — groups contiguous
// in fold order — the returned *States are the shared residents, and all
// backends agree.
func TestStoreNamesMatching(t *testing.T) {
	salted := func(base string, j byte) string { return base + string([]byte{0, j}) }
	for _, s := range stores(t) {
		now := time.Now()
		s.Touch("w", now)
		s.Touch("v", now)
		s.Put("w", "a", mkState(1))
		s.Put("w", salted("b", 0), mkState(2))
		s.Put("w", salted("b", 1), mkState(3))
		s.Put("w", "c", mkState(4))
		s.Put("v", "a", mkState(5))

		var probed []string
		all := s.NamesMatching("w", func(base string) bool {
			probed = append(probed, base)
			return true
		})
		wantNames := []string{"a", salted("b", 0), salted("b", 1), "c"}
		gotNames := make([]string, len(all))
		tags := make([]uint64, len(all))
		for i, ns := range all {
			gotNames[i] = ns.Name
			tags[i] = ns.State.Parts.SealGen
		}
		if !reflect.DeepEqual(gotNames, wantNames) {
			t.Fatalf("%s: names %q, want %q", s.Kind(), gotNames, wantNames)
		}
		if !reflect.DeepEqual(tags, []uint64{1, 2, 3, 4}) {
			t.Fatalf("%s: state tags %v, want group-contiguous fold order", s.Kind(), tags)
		}
		seen := map[string]bool{}
		for _, b := range probed {
			for i := 0; i < len(b); i++ {
				if b[i] == 0 {
					t.Fatalf("%s: predicate saw internal salted name %q", s.Kind(), b)
				}
			}
			seen[b] = true
		}
		if len(seen) != 3 || !seen["a"] || !seen["b"] || !seen["c"] {
			t.Fatalf("%s: predicate probed %v, want bases a/b/c", s.Kind(), probed)
		}

		// Filtering selects whole groups; the states are not copies.
		only := s.NamesMatching("w", func(base string) bool { return base == "b" })
		if len(only) != 2 || only[0].Name != salted("b", 0) || only[1].Name != salted("b", 1) {
			t.Fatalf("%s: filtered names %v", s.Kind(), only)
		}
		if got, ok := s.Get("w", salted("b", 0)); !ok || got != only[0].State {
			t.Fatalf("%s: filtered state is not the shared resident", s.Kind())
		}
		if n := s.NamesMatching("w", func(string) bool { return false }); len(n) != 0 {
			t.Fatalf("%s: nothing-matches returned %d states", s.Kind(), len(n))
		}
		if n := s.NamesMatching("ghost", func(string) bool { return true }); len(n) != 0 {
			t.Fatalf("%s: unknown worker returned %d states", s.Kind(), len(n))
		}
	}

	// The instrumented wrapper records the op under its own label.
	in := NewInstrumented(NewMap())
	in.Touch("w", time.Now())
	in.Put("w", "k", mkState(9))
	in.NamesMatching("w", func(string) bool { return true })
	found := false
	for _, op := range in.Metrics().Ops {
		if op.Op == "names_matching" && op.Count == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("names_matching op not recorded: %+v", in.Metrics().Ops)
	}
}
