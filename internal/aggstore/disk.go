package aggstore

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
)

// Disk is the persistent store backend: a single-map store whose every
// mutation is first appended to an on-disk write-ahead log, with periodic
// snapshot compaction. Reopening the same directory replays the newest
// loadable snapshot plus the log's valid prefix, reconstructing the
// resident state — per-worker folds, salt-group indexes, last-push stamps
// — exactly as it was at the last durable record, so an aggregator
// restart resumes delta ingestion where the acknowledged pushes left off.
//
// Layout (one Disk instance owns a directory at a time):
//
//	wal-<seq>.log    append-only mutation log: length-prefixed,
//	                 CRC32-sealed records; a torn tail (crash mid-append)
//	                 is detected and truncated on recovery
//	snap-<seq>.bin   full-state snapshot taken when the previous WAL
//	                 outgrew CompactBytes; written to a temp file, synced,
//	                 renamed — a crash mid-compaction leaves the previous
//	                 snapshot+WAL pair intact
//
// State records carry the same wire full-frame encoding worker exports
// use, so anything resident (which the read path already requires to be a
// valid Snapshot) round-trips bit-identically.
//
// Durability is governed by DiskConfig.Fsync: FsyncAlways syncs every
// record before the mutation returns (a state acknowledged to a worker
// survives kill -9), FsyncInterval batches syncs on a timer, FsyncNone
// syncs only at compaction and Close. Mutations are serialized by one
// mutex (the WAL is inherently serial); reads go straight to the resident
// in-memory map and run in parallel as usual. A write error does not take
// the store down — it keeps serving from memory — but is sticky and
// surfaced by Err and Close so the operator layer can report lost
// durability.
type Disk struct {
	mem          *Map
	dir          string
	mode         string
	compactBytes int64

	mu       sync.Mutex
	seq      uint64 // active WAL sequence
	snapSeq  uint64 // snapshot the active WAL extends (0 = none)
	wal      *os.File
	bw       *bufio.Writer // nil in FsyncAlways mode
	walBytes int64
	scratch  []byte
	werr     error
	closed   bool
	stop     chan struct{} // interval flusher lifecycle (nil otherwise)
	done     chan struct{}
}

// Fsync modes for DiskConfig.Fsync.
const (
	FsyncAlways   = "always"
	FsyncInterval = "interval"
	FsyncNone     = "none"
)

const (
	defaultFsyncInterval = 100 * time.Millisecond
	defaultCompactBytes  = 8 << 20
	// maxWalRecord bounds a record's claimed length during recovery (a
	// frame payload is capped at 1 GiB by the wire format; the record adds
	// only the op byte and the worker name).
	maxWalRecord = 1<<30 + 1<<20
)

// WAL record ops.
const (
	recPut byte = iota + 1
	recReplaceGroup
	recBootstrapSub
	recDrop
	recTouch
	recDropWorker
)

var (
	snapMagic = []byte("QAGS")
	snapEnd   = []byte("QAGE")
)

// DiskConfig parameterizes OpenDisk.
type DiskConfig struct {
	// Dir is the storage directory, created if needed. One Disk instance
	// must own it at a time.
	Dir string
	// Fsync selects the WAL durability discipline: FsyncAlways (the
	// default — every record synced before the mutation returns),
	// FsyncInterval (buffered appends synced every FsyncInterval), or
	// FsyncNone (buffered, synced only at compaction and Close).
	Fsync string
	// FsyncInterval is the sync cadence for FsyncInterval mode
	// (<= 0 picks the 100ms default).
	FsyncInterval time.Duration
	// CompactBytes triggers snapshot compaction once the active WAL
	// exceeds this many bytes (0 picks the 8 MiB default; negative
	// disables compaction).
	CompactBytes int64
}

// OpenDisk opens (creating or recovering) a persistent store in cfg.Dir.
func OpenDisk(cfg DiskConfig) (*Disk, error) {
	if cfg.Dir == "" {
		return nil, errors.New("aggstore: disk store needs a directory")
	}
	mode := cfg.Fsync
	if mode == "" {
		mode = FsyncAlways
	}
	switch mode {
	case FsyncAlways, FsyncInterval, FsyncNone:
	default:
		return nil, fmt.Errorf("aggstore: unknown fsync mode %q (always | interval | none)", cfg.Fsync)
	}
	interval := cfg.FsyncInterval
	if interval <= 0 {
		interval = defaultFsyncInterval
	}
	compact := cfg.CompactBytes
	if compact == 0 {
		compact = defaultCompactBytes
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("aggstore: disk store: %w", err)
	}
	d := &Disk{mem: NewMap(), dir: cfg.Dir, mode: mode, compactBytes: compact}
	if err := d.recover(); err != nil {
		return nil, fmt.Errorf("aggstore: disk store %s: %w", cfg.Dir, err)
	}
	if mode == FsyncInterval {
		d.stop, d.done = make(chan struct{}), make(chan struct{})
		go d.flushLoop(interval)
	}
	return d, nil
}

func (d *Disk) Kind() string { return "disk" }

// Err returns the sticky write error, if any: after a failed WAL append,
// snapshot write or sync the store keeps serving from memory, but
// durability of subsequent mutations is gone until the store is reopened.
func (d *Disk) Err() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.werr
}

// Close flushes and closes the WAL. The store must not be used after
// Close; reopening the directory recovers everything durable.
func (d *Disk) Close() error {
	if d.stop != nil {
		close(d.stop)
		<-d.done
		d.stop = nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return d.werr
	}
	d.closed = true
	if err := d.flushSync(); err != nil && d.werr == nil {
		d.werr = err
	}
	if err := d.wal.Close(); err != nil && d.werr == nil {
		d.werr = err
	}
	return d.werr
}

// Compact forces a snapshot compaction (tests and operational tooling;
// the store compacts itself when the WAL outgrows CompactBytes).
func (d *Disk) Compact() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errors.New("aggstore: disk store is closed")
	}
	if d.werr != nil {
		return d.werr
	}
	if err := d.compactLocked(); err != nil {
		d.werr = err
		return err
	}
	return nil
}

// --- reads: straight to the resident map ---

func (d *Disk) Get(worker, name string) (*State, bool) { return d.mem.Get(worker, name) }
func (d *Disk) Group(worker, base string) []NamedState { return d.mem.Group(worker, base) }
func (d *Disk) WorkerNames(worker string) []string     { return d.mem.WorkerNames(worker) }
func (d *Disk) NamesMatching(worker string, match func(base string) bool) []NamedState {
	return d.mem.NamesMatching(worker, match)
}
func (d *Disk) Workers(stale func(time.Time) bool) []string {
	return d.mem.Workers(stale)
}
func (d *Disk) WorkerCount() int            { return d.mem.WorkerCount() }
func (d *Disk) KeyCount() int               { return d.mem.KeyCount() }
func (d *Disk) KeyGen(base string) uint64   { return d.mem.KeyGen(base) }
func (d *Disk) LockWaitNanos() (r, w int64) { return d.mem.LockWaitNanos() }

// --- mutations: WAL first, then the resident map, one lock ---

func (d *Disk) Put(worker, name string, st *State) {
	d.mu.Lock()
	d.logState(recPut, worker, name, st)
	d.mem.Put(worker, name, st)
	d.maybeCompact()
	d.mu.Unlock()
}

func (d *Disk) ReplaceGroup(worker, name string, st *State) {
	d.mu.Lock()
	d.logState(recReplaceGroup, worker, name, st)
	d.mem.ReplaceGroup(worker, name, st)
	d.maybeCompact()
	d.mu.Unlock()
}

func (d *Disk) BootstrapSub(worker, name string, st *State) {
	d.mu.Lock()
	d.logState(recBootstrapSub, worker, name, st)
	d.mem.BootstrapSub(worker, name, st)
	d.maybeCompact()
	d.mu.Unlock()
}

func (d *Disk) Drop(worker, name string) bool {
	d.mu.Lock()
	body := append(d.scratch[:0], recDrop)
	body = appendLenPrefixed(body, worker)
	body = appendLenPrefixed(body, name)
	d.appendRecord(body)
	dropped := d.mem.Drop(worker, name)
	d.maybeCompact()
	d.mu.Unlock()
	return dropped
}

func (d *Disk) Touch(worker string, t time.Time) {
	d.mu.Lock()
	body := append(d.scratch[:0], recTouch)
	body = appendLenPrefixed(body, worker)
	var ts [8]byte
	binary.LittleEndian.PutUint64(ts[:], uint64(t.UnixNano()))
	body = append(body, ts[:]...)
	d.appendRecord(body)
	d.mem.Touch(worker, t)
	d.mu.Unlock()
}

func (d *Disk) DropWorker(worker string) bool {
	d.mu.Lock()
	body := append(d.scratch[:0], recDropWorker)
	body = appendLenPrefixed(body, worker)
	d.appendRecord(body)
	dropped := d.mem.DropWorker(worker)
	d.mu.Unlock()
	return dropped
}

func (d *Disk) SweepWorkers(stale func(time.Time) bool) int {
	if stale == nil {
		return 0
	}
	d.mu.Lock()
	// Log the individual drops, not the predicate: replay must reproduce
	// exactly the workers THIS sweep retired, whatever clock it runs under.
	live := make(map[string]struct{})
	for _, id := range d.mem.Workers(stale) {
		live[id] = struct{}{}
	}
	dropped := 0
	for _, id := range d.mem.Workers(nil) {
		if _, ok := live[id]; ok {
			continue
		}
		body := append(d.scratch[:0], recDropWorker)
		body = appendLenPrefixed(body, id)
		d.appendRecord(body)
		d.mem.DropWorker(id)
		dropped++
	}
	d.mu.Unlock()
	return dropped
}

// logState appends one state-bearing record: op, worker, then the state
// as a wire full frame keyed by the internal name (so salted sub-stream
// names replay into the same salt-group slots). Caller holds d.mu.
func (d *Disk) logState(op byte, worker, name string, st *State) {
	sn, err := core.NewSnapshot(st.Parts)
	if err != nil {
		// Everything the aggregator stores must be a valid snapshot (the
		// read path folds through core.NewSnapshot); refusing to encode a
		// contract-violating state beats persisting garbage.
		if d.werr == nil {
			d.werr = fmt.Errorf("aggstore: disk: state %q/%q not encodable: %w", worker, name, err)
		}
		return
	}
	body := append(d.scratch[:0], op)
	body = appendLenPrefixed(body, worker)
	body = wire.AppendFrame(body, name, sn)
	d.appendRecord(body)
}

// appendRecord seals body with a length prefix and CRC32 and appends it to
// the WAL (syncing in FsyncAlways mode). Caller holds d.mu. body may
// alias d.scratch; the grown buffer is kept for reuse.
func (d *Disk) appendRecord(body []byte) {
	defer func() { d.scratch = body[:0] }()
	if d.werr != nil || d.closed {
		return
	}
	var hdr, crc [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)))
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(body))
	w := io.Writer(d.wal)
	if d.bw != nil {
		w = d.bw
	}
	if _, err := w.Write(hdr[:]); err != nil {
		d.werr = err
		return
	}
	if _, err := w.Write(body); err != nil {
		d.werr = err
		return
	}
	if _, err := w.Write(crc[:]); err != nil {
		d.werr = err
		return
	}
	d.walBytes += int64(8 + len(body))
	if d.mode == FsyncAlways {
		if err := d.wal.Sync(); err != nil {
			d.werr = err
		}
	}
}

func (d *Disk) maybeCompact() {
	if d.compactBytes > 0 && d.walBytes >= d.compactBytes && d.werr == nil && !d.closed {
		if err := d.compactLocked(); err != nil {
			d.werr = err
		}
	}
}

// compactLocked folds the WAL into a fresh snapshot: write snap-(seq+1)
// (temp file, sync, rename, dir sync), start wal-(seq+1), then retire
// everything older. A crash at any point leaves either the old
// snapshot+WAL pair or the new snapshot recoverable. Caller holds d.mu.
func (d *Disk) compactLocked() error {
	newSeq := d.seq + 1
	if err := d.writeSnapshot(newSeq); err != nil {
		return err
	}
	f, err := os.OpenFile(d.walPath(newSeq), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := d.syncDir(); err != nil {
		f.Close()
		return err
	}
	// The old WAL is fully superseded by the snapshot; unflushed buffered
	// records need not survive (they are IN the snapshot).
	d.wal.Close()
	d.wal, d.walBytes, d.seq, d.snapSeq = f, 0, newSeq, newSeq
	if d.bw != nil {
		d.bw = bufio.NewWriterSize(f, 1<<16)
	}
	d.removeObsolete(newSeq)
	return nil
}

// writeSnapshot persists the full resident state as snap-<seq>: magic,
// per-worker (sorted) id + last-push stamp + its states as wire full
// frames (sorted by internal name), CRC32 footer + end magic.
func (d *Disk) writeSnapshot(seq uint64) error {
	body := append(make([]byte, 0, 1<<16), snapMagic...)
	workers := d.mem.dump()
	body = appendUvarint(body, uint64(len(workers)))
	for _, w := range workers {
		body = appendLenPrefixed(body, w.id)
		var ts [8]byte
		binary.LittleEndian.PutUint64(ts[:], uint64(w.nanos))
		body = append(body, ts[:]...)
		body = appendUvarint(body, uint64(len(w.states)))
		for _, ns := range w.states {
			sn, err := core.NewSnapshot(ns.State.Parts)
			if err != nil {
				return fmt.Errorf("snapshot state %q/%q: %w", w.id, ns.Name, err)
			}
			body = wire.AppendFrame(body, ns.Name, sn)
		}
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(body))
	body = append(body, crc[:]...)
	body = append(body, snapEnd...)

	tmp := d.snapPath(seq) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(body); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, d.snapPath(seq)); err != nil {
		return err
	}
	return d.syncDir()
}

// --- recovery ---

// recover rebuilds the resident map from the newest loadable snapshot
// plus every WAL segment at or after it (ascending), truncates any torn
// tail off the newest segment, and leaves it open for appending.
func (d *Disk) recover() error {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return err
	}
	var snaps, wals []uint64
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), "snap-", ".bin"); ok {
			snaps = append(snaps, seq)
		} else if seq, ok := parseSeq(e.Name(), "wal-", ".log"); ok {
			wals = append(wals, seq)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(wals, func(i, j int) bool { return wals[i] < wals[j] })

	// Newest snapshot that validates wins; an unreadable one (torn
	// mid-compaction crash) falls back to its predecessor, whose WAL
	// segment is still on disk and replays the difference.
	for i := len(snaps) - 1; i >= 0; i-- {
		if err := d.loadSnapshot(snaps[i]); err == nil {
			d.snapSeq = snaps[i]
			break
		}
	}
	active := d.snapSeq
	for _, seq := range wals {
		if seq > active {
			active = seq
		}
	}
	if active == 0 {
		active = 1
	}
	activeOff := int64(-1)
	for _, seq := range wals {
		if seq < d.snapSeq {
			continue
		}
		off, err := d.replayWAL(seq)
		if err != nil {
			return err
		}
		if seq == active {
			activeOff = off
		}
	}
	f, err := os.OpenFile(d.walPath(active), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	if activeOff >= 0 {
		// Drop the torn tail so new appends start at a record boundary.
		if err := f.Truncate(activeOff); err != nil {
			f.Close()
			return err
		}
	}
	end, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return err
	}
	d.wal, d.seq, d.walBytes = f, active, end
	if d.mode != FsyncAlways {
		d.bw = bufio.NewWriterSize(f, 1<<16)
	}
	d.removeObsolete(d.snapSeq)
	return nil
}

// replayWAL applies one segment's valid record prefix to the resident
// map, returning the offset where the valid prefix ends (a torn or
// corrupt tail stops the replay without error — it is exactly the
// in-flight mutation a crash cut off).
func (d *Disk) replayWAL(seq uint64) (int64, error) {
	data, err := os.ReadFile(d.walPath(seq))
	if err != nil {
		return 0, err
	}
	off := 0
	for {
		if len(data)-off < 8 {
			break
		}
		n := binary.LittleEndian.Uint32(data[off:])
		if n == 0 || n > maxWalRecord || len(data)-off < int(n)+8 {
			break
		}
		body := data[off+4 : off+4+int(n)]
		if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(data[off+4+int(n):]) {
			break
		}
		if err := applyRecord(d.mem, body); err != nil {
			break
		}
		off += 8 + int(n)
	}
	return int64(off), nil
}

// applyRecord replays one WAL record onto mem.
func applyRecord(mem *Map, body []byte) error {
	if len(body) == 0 {
		return errors.New("empty record")
	}
	op, rest := body[0], body[1:]
	worker, rest, err := takeLenPrefixed(rest)
	if err != nil {
		return err
	}
	switch op {
	case recPut, recReplaceGroup, recBootstrapSub:
		f, err := wire.NewDecoder(bytes.NewReader(rest)).DecodeFrame()
		if err != nil {
			return err
		}
		if f.Kind != wire.KindFull {
			return fmt.Errorf("state record carries a %v frame", f.Kind)
		}
		st := &State{Parts: f.Snap.Parts()}
		switch op {
		case recPut:
			mem.Put(worker, f.Key, st)
		case recReplaceGroup:
			mem.ReplaceGroup(worker, f.Key, st)
		case recBootstrapSub:
			mem.BootstrapSub(worker, f.Key, st)
		}
	case recDrop:
		name, _, err := takeLenPrefixed(rest)
		if err != nil {
			return err
		}
		mem.Drop(worker, name)
	case recTouch:
		if len(rest) != 8 {
			return errors.New("bad touch record")
		}
		mem.Touch(worker, metaTime(int64(binary.LittleEndian.Uint64(rest))))
	case recDropWorker:
		mem.DropWorker(worker)
	default:
		return fmt.Errorf("unknown wal op %d", op)
	}
	return nil
}

// loadSnapshot parses snap-<seq> into a fresh map, replacing the resident
// one only on full success (a partial parse must not leak state into a
// fallback to an older snapshot).
func (d *Disk) loadSnapshot(seq uint64) error {
	data, err := os.ReadFile(d.snapPath(seq))
	if err != nil {
		return err
	}
	if len(data) < len(snapMagic)+8 || !bytes.HasPrefix(data, snapMagic) || !bytes.HasSuffix(data, snapEnd) {
		return errors.New("snapshot framing invalid")
	}
	body := data[:len(data)-8]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(data[len(data)-8:]) {
		return errors.New("snapshot crc mismatch")
	}
	mem := NewMap()
	br := bytes.NewReader(body[len(snapMagic):])
	dec := wire.NewDecoder(br)
	nw, err := binary.ReadUvarint(br)
	if err != nil {
		return err
	}
	for i := uint64(0); i < nw; i++ {
		id, err := readLenPrefixed(br)
		if err != nil {
			return err
		}
		var ts [8]byte
		if _, err := io.ReadFull(br, ts[:]); err != nil {
			return err
		}
		mem.Touch(id, metaTime(int64(binary.LittleEndian.Uint64(ts[:]))))
		ns, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		for j := uint64(0); j < ns; j++ {
			f, err := dec.DecodeFrame()
			if err != nil {
				return err
			}
			if f.Kind != wire.KindFull {
				return fmt.Errorf("snapshot carries a %v frame", f.Kind)
			}
			mem.Put(id, f.Key, &State{Parts: f.Snap.Parts()})
		}
	}
	if br.Len() != 0 {
		return fmt.Errorf("snapshot has %d trailing bytes", br.Len())
	}
	d.mem = mem
	return nil
}

// removeObsolete retires snapshots older than keepSnap and WAL segments
// older than keepSnap's (they are fully folded into it), plus any
// abandoned temp files. Removal failures are ignored — stale files only
// cost space and are retried at the next compaction.
func (d *Disk) removeObsolete(keepSnap uint64) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(d.dir, name))
			continue
		}
		if seq, ok := parseSeq(name, "snap-", ".bin"); ok && seq < keepSnap {
			os.Remove(filepath.Join(d.dir, name))
		} else if seq, ok := parseSeq(name, "wal-", ".log"); ok && seq < keepSnap {
			os.Remove(filepath.Join(d.dir, name))
		}
	}
}

// --- fsync plumbing ---

func (d *Disk) flushLoop(interval time.Duration) {
	defer close(d.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			d.mu.Lock()
			if !d.closed && d.werr == nil {
				if err := d.flushSync(); err != nil {
					d.werr = err
				}
			}
			d.mu.Unlock()
		}
	}
}

// flushSync drains the append buffer (when one exists) and syncs the WAL.
// Caller holds d.mu.
func (d *Disk) flushSync() error {
	if d.bw != nil {
		if err := d.bw.Flush(); err != nil {
			return err
		}
	}
	return d.wal.Sync()
}

func (d *Disk) syncDir() error {
	f, err := os.Open(d.dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	f.Close()
	return err
}

// --- encoding helpers and paths ---

func (d *Disk) walPath(seq uint64) string {
	return filepath.Join(d.dir, fmt.Sprintf("wal-%016d.log", seq))
}

func (d *Disk) snapPath(seq uint64) string {
	return filepath.Join(d.dir, fmt.Sprintf("snap-%016d.bin", seq))
}

func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	seq, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
	return seq, err == nil
}

func appendUvarint(dst []byte, v uint64) []byte {
	var b [binary.MaxVarintLen64]byte
	return append(dst, b[:binary.PutUvarint(b[:], v)]...)
}

func appendLenPrefixed(dst []byte, s string) []byte {
	return append(appendUvarint(dst, uint64(len(s))), s...)
}

func takeLenPrefixed(b []byte) (string, []byte, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 || uint64(len(b)-k) < n {
		return "", nil, errors.New("bad length-prefixed field")
	}
	return string(b[k : k+int(n)]), b[k+int(n):], nil
}

func readLenPrefixed(br *bytes.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > uint64(br.Len()) {
		return "", errors.New("bad length-prefixed field")
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// --- full-state dump (compaction source) ---

type diskWorkerDump struct {
	id     string
	nanos  int64
	states []NamedState
}

// dump captures the whole resident state in deterministic order: workers
// sorted by id, each worker's states sorted by internal name (base before
// its salted sub-streams, NUL sorting below every user byte).
func (m *Map) dump() []diskWorkerDump {
	m.rlock()
	defer m.runlock()
	out := make([]diskWorkerDump, 0, len(m.workers))
	for id, w := range m.workers {
		dw := diskWorkerDump{id: id, nanos: w.lastPush.UnixNano()}
		bases := make([]string, 0, len(w.groups))
		for b := range w.groups {
			bases = append(bases, b)
		}
		sort.Strings(bases)
		for _, b := range bases {
			dw.states = w.groups[b].fold(b, dw.states)
		}
		out = append(out, dw)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}
