package aggstore

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultStripes is the striped store's default stripe count.
const DefaultStripes = 64

// Striped is the lock-striped store: state shards across stripes keyed by
// hash(worker, base key), each behind its own RWMutex, so pushes from
// different workers and concurrent reads proceed in parallel instead of
// serializing on one aggregator-wide lock. A (worker, logical key)'s
// whole salt group hashes to ONE stripe, so group reads and wholesale
// replacement stay atomic under a single stripe lock.
//
// The worker table is separate: membership changes take its write lock,
// but the hot path — stamping a worker's last push — runs under the read
// lock with an atomic store, so concurrent pushers never serialize on it.
// Worker and distinct-logical-key counts are atomics; WorkerCount /
// KeyCount / KeyGen never take a stripe lock.
type Striped struct {
	stripes []stripe
	mask    uint32

	wmu                 sync.RWMutex
	wm                  map[string]*workerMeta
	gens                genTable
	refs                refTable
	wcount              atomic.Int64
	readWait, writeWait atomic.Int64
}

type stripe struct {
	mu     sync.RWMutex
	groups map[groupKey]*group
	_      [24]byte // soften false sharing between neighbouring stripes
}

type groupKey struct {
	worker string
	base   string
}

// workerMeta carries a worker's last-push stamp as atomic wall nanos, so
// Touch under the table's READ lock is race-free against Workers/sweeps.
type workerMeta struct {
	lastPush atomic.Int64
}

func metaTime(nanos int64) time.Time { return time.Unix(0, nanos) }

// NewStriped returns an empty striped store with n stripes (n <= 0 picks
// DefaultStripes; n is rounded up to a power of two).
func NewStriped(n int) *Striped {
	if n <= 0 {
		n = DefaultStripes
	}
	size := 1
	for size < n {
		size <<= 1
	}
	s := &Striped{
		stripes: make([]stripe, size),
		mask:    uint32(size - 1),
		wm:      make(map[string]*workerMeta),
	}
	for i := range s.stripes {
		s.stripes[i].groups = make(map[groupKey]*group)
	}
	return s
}

func (s *Striped) Kind() string { return "striped" }

// Stripes returns the stripe count (for bench labels).
func (s *Striped) Stripes() int { return len(s.stripes) }

// LockWaitNanos reports cumulative read-/write-lock wait across every
// stripe and the worker table.
func (s *Striped) LockWaitNanos() (read, write int64) {
	return s.readWait.Load(), s.writeWait.Load()
}

func (s *Striped) stripe(worker, base string) *stripe {
	return &s.stripes[fnv1a(worker, base)&s.mask]
}

func (s *Striped) Get(worker, name string) (*State, bool) {
	base, j, salted := splitKey(name)
	sp := s.stripe(worker, base)
	rlockTimed(&sp.mu, &s.readWait)
	defer sp.mu.RUnlock()
	g := sp.groups[groupKey{worker, base}]
	if g == nil {
		return nil, false
	}
	return g.get(salted, j)
}

func (s *Striped) Put(worker, name string, st *State) {
	base, j, salted := splitKey(name)
	sp := s.stripe(worker, base)
	lockTimed(&sp.mu, &s.writeWait)
	g := sp.groups[groupKey{worker, base}]
	if g == nil {
		g = &group{}
		sp.groups[groupKey{worker, base}] = g
		s.refs.incr(base)
	}
	if salted {
		g.setSub(j, st)
	} else {
		g.base = st
	}
	sp.mu.Unlock()
	s.gens.bump(base)
}

func (s *Striped) Drop(worker, name string) bool {
	base, j, salted := splitKey(name)
	sp := s.stripe(worker, base)
	lockTimed(&sp.mu, &s.writeWait)
	dropped := false
	if g := sp.groups[groupKey{worker, base}]; g != nil {
		if salted {
			dropped = g.dropSub(j)
		} else if g.base != nil {
			g.base = nil
			dropped = true
		}
		if dropped && g.empty() {
			delete(sp.groups, groupKey{worker, base})
			s.refs.decr(base)
		}
	}
	sp.mu.Unlock()
	s.gens.bump(base)
	return dropped
}

func (s *Striped) ReplaceGroup(worker, name string, st *State) {
	base, j, salted := splitKey(name)
	sp := s.stripe(worker, base)
	lockTimed(&sp.mu, &s.writeWait)
	g := sp.groups[groupKey{worker, base}]
	if g == nil {
		g = &group{}
		sp.groups[groupKey{worker, base}] = g
		s.refs.incr(base)
	} else {
		g.base = nil
		g.subs = nil
	}
	if salted {
		g.setSub(j, st)
	} else {
		g.base = st
	}
	sp.mu.Unlock()
	s.gens.bump(base)
}

func (s *Striped) BootstrapSub(worker, name string, st *State) {
	base, j, _ := splitKey(name)
	sp := s.stripe(worker, base)
	lockTimed(&sp.mu, &s.writeWait)
	g := sp.groups[groupKey{worker, base}]
	if g == nil {
		g = &group{}
		sp.groups[groupKey{worker, base}] = g
		s.refs.incr(base)
	}
	g.base = nil
	g.setSub(j, st)
	sp.mu.Unlock()
	s.gens.bump(base)
}

func (s *Striped) Group(worker, base string) []NamedState {
	sp := s.stripe(worker, base)
	rlockTimed(&sp.mu, &s.readWait)
	defer sp.mu.RUnlock()
	g := sp.groups[groupKey{worker, base}]
	if g == nil {
		return nil
	}
	return g.fold(base, nil)
}

func (s *Striped) WorkerNames(worker string) []string {
	var names []string
	for i := range s.stripes {
		sp := &s.stripes[i]
		rlockTimed(&sp.mu, &s.readWait)
		for gk, g := range sp.groups {
			if gk.worker == worker {
				names = g.names(gk.base, names)
			}
		}
		sp.mu.RUnlock()
	}
	sort.Strings(names)
	return names
}

func (s *Striped) NamesMatching(worker string, match func(base string) bool) []NamedState {
	var out []NamedState
	for i := range s.stripes {
		sp := &s.stripes[i]
		rlockTimed(&sp.mu, &s.readWait)
		for gk, g := range sp.groups {
			if gk.worker == worker && match(gk.base) {
				out = g.fold(gk.base, out)
			}
		}
		sp.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (s *Striped) Touch(worker string, t time.Time) {
	s.wmu.RLock()
	m := s.wm[worker]
	s.wmu.RUnlock()
	if m != nil {
		m.lastPush.Store(t.UnixNano())
		return
	}
	lockTimed(&s.wmu, &s.writeWait)
	if m = s.wm[worker]; m == nil {
		m = &workerMeta{}
		s.wm[worker] = m
		s.wcount.Add(1)
	}
	m.lastPush.Store(t.UnixNano())
	s.wmu.Unlock()
}

func (s *Striped) Workers(stale func(time.Time) bool) []string {
	rlockTimed(&s.wmu, &s.readWait)
	ids := make([]string, 0, len(s.wm))
	for id, m := range s.wm {
		if stale == nil || !stale(metaTime(m.lastPush.Load())) {
			ids = append(ids, id)
		}
	}
	s.wmu.RUnlock()
	sort.Strings(ids)
	return ids
}

// purgeWorkers removes every stripe-resident group of the given workers,
// fixing refcounts. Membership is already gone from the worker table, so
// readers no longer fold these groups.
func (s *Striped) purgeWorkers(ids []string) {
	for i := range s.stripes {
		sp := &s.stripes[i]
		lockTimed(&sp.mu, &s.writeWait)
		for gk := range sp.groups {
			for _, id := range ids {
				if gk.worker == id {
					delete(sp.groups, gk)
					s.refs.decr(gk.base)
					break
				}
			}
		}
		sp.mu.Unlock()
	}
}

func (s *Striped) DropWorker(worker string) bool {
	lockTimed(&s.wmu, &s.writeWait)
	_, ok := s.wm[worker]
	if ok {
		delete(s.wm, worker)
		s.wcount.Add(-1)
	}
	s.wmu.Unlock()
	if ok {
		s.purgeWorkers([]string{worker})
	}
	return ok
}

func (s *Striped) SweepWorkers(stale func(time.Time) bool) int {
	if stale == nil {
		return 0
	}
	// Decide under the table's write lock (a concurrent Touch that landed
	// its stamp is seen here and spares the worker), then purge state.
	lockTimed(&s.wmu, &s.writeWait)
	var dead []string
	for id, m := range s.wm {
		if stale(metaTime(m.lastPush.Load())) {
			dead = append(dead, id)
			delete(s.wm, id)
			s.wcount.Add(-1)
		}
	}
	s.wmu.Unlock()
	if len(dead) > 0 {
		s.purgeWorkers(dead)
	}
	return len(dead)
}

func (s *Striped) WorkerCount() int { return int(s.wcount.Load()) }

func (s *Striped) KeyCount() int { return int(s.refs.distinct.Load()) }

func (s *Striped) KeyGen(base string) uint64 { return s.gens.load(base) }
