package loadgen

import (
	"context"
	"fmt"
	"time"
)

// RampConfig parameterizes a stepped search for the maximum sustainable
// rate under an SLA: offered load starts at Start and grows (×Factor, or
// +Step when Factor <= 1) each step until a step violates the p99 SLA or
// diverges, Tolerance consecutive times, or Max is reached.
type RampConfig struct {
	// Start is the first step's offered rate (ops/s).
	Start float64
	// Factor multiplies the rate between steps when > 1.
	Factor float64
	// Step adds to the rate between steps when Factor <= 1.
	Step float64
	// Max caps the offered rate; the ramp stops after measuring it.
	Max float64
	// StepDuration is each step's arrival span.
	StepDuration time.Duration
	// SLA is the p99-latency target a sustainable step must meet.
	SLA time.Duration
	// Divergence is the tolerated offered-vs-completed shortfall fraction
	// (Result.Overloaded); default 0.05.
	Divergence float64
	// Tolerance is how many CONSECUTIVE unsustainable steps end the ramp;
	// default 1 (one transient blip at a rate the system actually sustains
	// can otherwise end the search early — raise on noisy hosts).
	Tolerance int
	// Mix, Seed, MaxInFlight and Grace are passed to each step's Run.
	Mix         Mix
	Seed        int64
	MaxInFlight int
	Grace       time.Duration
}

// Step is one measured ramp step.
type Step struct {
	Result
	// Sustainable reports whether the step met the SLA and did not diverge.
	Sustainable bool `json:"sustainable"`
	// Reason says why an unsustainable step failed ("" when sustainable).
	Reason string `json:"reason,omitempty"`
}

// RampResult reports the whole ramp.
type RampResult struct {
	// SLA echoes the p99 target the steps were gated on.
	SLA time.Duration `json:"sla_p99_ns"`
	// Steps holds every measured step in offered-rate order.
	Steps []Step `json:"steps"`
	// MaxSustainable is the highest offered rate whose step was
	// sustainable (0 when even the first step failed).
	MaxSustainable float64 `json:"max_sustainable_rps"`
}

// Ramp runs the stepped search against t. Every step is measured with the
// same seed-derived arrival process and mix; the target keeps its state
// across steps (a warmed engine is the realistic subject — rerun against a
// fresh Target for cold-start curves). ctx aborts between and within
// steps.
func Ramp(ctx context.Context, cfg RampConfig, t Target) (RampResult, error) {
	if cfg.Start <= 0 {
		return RampResult{}, fmt.Errorf("loadgen: ramp start rate %v must be positive", cfg.Start)
	}
	if cfg.Factor <= 1 && cfg.Step <= 0 {
		return RampResult{}, fmt.Errorf("loadgen: ramp needs Factor > 1 or Step > 0")
	}
	if cfg.Max < cfg.Start {
		return RampResult{}, fmt.Errorf("loadgen: ramp max %v below start %v", cfg.Max, cfg.Start)
	}
	if cfg.StepDuration <= 0 {
		return RampResult{}, fmt.Errorf("loadgen: ramp step duration %v must be positive", cfg.StepDuration)
	}
	if cfg.SLA <= 0 {
		return RampResult{}, fmt.Errorf("loadgen: ramp SLA %v must be positive", cfg.SLA)
	}
	div := cfg.Divergence
	if div <= 0 {
		div = 0.05
	}
	tol := cfg.Tolerance
	if tol <= 0 {
		tol = 1
	}
	out := RampResult{SLA: cfg.SLA}
	failing := 0
	for rate, step := cfg.Start, 0; ; step++ {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		r, err := Run(ctx, Config{
			Rate:        rate,
			Duration:    cfg.StepDuration,
			Mix:         cfg.Mix,
			Seed:        cfg.Seed + int64(step), // fresh arrivals per step, still deterministic
			MaxInFlight: cfg.MaxInFlight,
			Grace:       cfg.Grace,
		}, t)
		if err != nil {
			return out, err
		}
		s := Step{Result: r, Sustainable: true}
		if r.Overloaded(div) {
			s.Sustainable = false
			s.Reason = fmt.Sprintf("accepted %.0f/s diverged from offered %.0f/s (completed %d+%d errs+%d abandoned of %d)",
				r.CompletedRate, r.Rate, r.Completed, r.Errors, r.Abandoned, r.Offered)
		} else if r.P99 > cfg.SLA {
			s.Sustainable = false
			s.Reason = fmt.Sprintf("p99 %v exceeds SLA %v", r.P99.Round(time.Microsecond), cfg.SLA)
		}
		out.Steps = append(out.Steps, s)
		if s.Sustainable {
			failing = 0
			if rate > out.MaxSustainable {
				out.MaxSustainable = rate
			}
		} else if failing++; failing >= tol {
			return out, nil
		}
		if rate >= cfg.Max {
			return out, nil
		}
		if cfg.Factor > 1 {
			rate *= cfg.Factor
		} else {
			rate += cfg.Step
		}
		if rate > cfg.Max {
			rate = cfg.Max
		}
	}
}
