package loadgen

import "fmt"

// HotPhase is one segment of a time-varying hot-key schedule: until the
// run has progressed past the Until fraction, the workload's traffic head
// is the key with index Key.
type HotPhase struct {
	// Until is the exclusive end of the phase as a fraction of the run in
	// (0, 1]. Phases must be ascending and the last must reach 1.
	Until float64 `json:"until"`
	// Key is the hot key's index during the phase.
	Key int `json:"key"`
}

// HotSchedule is a time-varying traffic head: a sequence of phases that
// move the hot key as a run progresses. Static skew benchmarks let a
// router learn one hot key and stop; a moving head forces an adaptive
// router to keep re-learning — escalate the new head, cool the old one —
// which is exactly what the bench's adaptive storm measures.
type HotSchedule []HotPhase

// Validate checks the schedule: at least one phase, strictly ascending
// Until fractions in (0, 1], the final phase covering the whole run, and
// non-negative key indexes.
func (s HotSchedule) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("loadgen: empty hot schedule")
	}
	prev := 0.0
	for i, p := range s {
		if p.Until <= prev || p.Until > 1 {
			return fmt.Errorf("loadgen: hot phase %d: Until %v not in (%v, 1]", i, p.Until, prev)
		}
		if p.Key < 0 {
			return fmt.Errorf("loadgen: hot phase %d: negative key index %d", i, p.Key)
		}
		prev = p.Until
	}
	if s[len(s)-1].Until != 1 {
		return fmt.Errorf("loadgen: hot schedule ends at %v, must cover the run to 1", prev)
	}
	return nil
}

// KeyAt returns the hot key index at run progress frac: the first phase
// whose Until exceeds frac. Progress at or past 1 stays in the final
// phase, so a driver that overshoots its planned length keeps a defined
// head.
func (s HotSchedule) KeyAt(frac float64) int {
	for _, p := range s {
		if frac < p.Until {
			return p.Key
		}
	}
	return s[len(s)-1].Key
}
