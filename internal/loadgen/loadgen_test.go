package loadgen

import (
	"context"
	"math"
	"sync/atomic"
	"testing"
	"time"
)

func TestMixValidate(t *testing.T) {
	good := Mix{Push: 90, Query: 6, Export: 2, Evict: 2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Mix{
		{Push: 50},
		{Push: 101},
		{Push: 110, Query: -10},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("mix %+v validated", bad)
		}
	}
}

// TestMixDeck: the shuffled deck reproduces the percentages exactly and is
// deterministic for a seed.
func TestMixDeck(t *testing.T) {
	m := Mix{Push: 90, Query: 6, Export: 2, Evict: 2}
	deck, err := m.deck(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(deck) != 100 {
		t.Fatalf("deck of %d ops", len(deck))
	}
	counts := map[Op]int{}
	for _, op := range deck {
		counts[op]++
	}
	if counts[OpPush] != 90 || counts[OpQuery] != 6 || counts[OpExport] != 2 || counts[OpEvict] != 2 {
		t.Fatalf("deck proportions %v", counts)
	}
	again, _ := m.deck(7)
	for i := range deck {
		if deck[i] != again[i] {
			t.Fatal("deck not deterministic for a seed")
		}
	}
}

// TestExpMean: the Poisson process realizes the configured rate (sample
// mean within 10% over 50k draws; deterministic seed, so never flaky).
func TestExpMean(t *testing.T) {
	const rate = 1000.0
	arr := NewExp(42, rate)
	var sum time.Duration
	const n = 50_000
	for i := 0; i < n; i++ {
		sum += arr.Next()
	}
	mean := sum.Seconds() / n
	if want := 1 / rate; math.Abs(mean-want)/want > 0.10 {
		t.Fatalf("exp mean gap %.6fs, want ~%.6fs", mean, want)
	}
}

// TestRunFastTarget: a target that completes instantly absorbs the whole
// offered load — no divergence, no abandonment, full accounting.
func TestRunFastTarget(t *testing.T) {
	var ops atomic.Int64
	res, err := Run(context.Background(), Config{
		Rate:     2000,
		Duration: 150 * time.Millisecond,
		Mix:      Mix{Push: 90, Query: 10},
		Seed:     1,
	}, TargetFunc(func(Op) error { ops.Add(1); return nil }))
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered == 0 {
		t.Fatal("no arrivals generated")
	}
	if res.Completed != res.Offered || res.Errors != 0 || res.Abandoned != 0 {
		t.Fatalf("completed %d errors %d abandoned %d of %d offered",
			res.Completed, res.Errors, res.Abandoned, res.Offered)
	}
	if int(ops.Load()) != res.Offered {
		t.Fatalf("target saw %d ops, %d offered", ops.Load(), res.Offered)
	}
	if res.Overloaded(0.05) {
		t.Fatalf("fast target flagged overloaded: %+v", res)
	}
	if res.P99 == 0 || res.Max < res.P99 || res.P50 > res.P99 {
		t.Fatalf("latency ordering broken: p50=%v p99=%v max=%v", res.P50, res.P99, res.Max)
	}
}

// slowTarget models a system with a hard capacity: one server, fixed
// service time — offered load far past 1/serviceTime must diverge.
type slowTarget struct {
	gate    chan struct{}
	service time.Duration
}

func newSlowTarget(service time.Duration) *slowTarget {
	return &slowTarget{gate: make(chan struct{}, 1), service: service}
}

func (s *slowTarget) Do(Op) error {
	s.gate <- struct{}{}
	time.Sleep(s.service)
	<-s.gate
	return nil
}

// TestRunOverloadDetection: offering ~20× a single-server target's
// capacity must register as overload (divergence or abandonment), and the
// open-loop latencies must show the queueing (p99 far above service time).
func TestRunOverloadDetection(t *testing.T) {
	tgt := newSlowTarget(2 * time.Millisecond) // capacity ~500/s
	res, err := Run(context.Background(), Config{
		Rate:        10_000,
		Duration:    200 * time.Millisecond,
		Seed:        2,
		MaxInFlight: 64,
		Grace:       100 * time.Millisecond,
	}, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Overloaded(0.05) {
		t.Fatalf("20x overload not detected: %+v", res)
	}
	if res.Completed >= res.Offered {
		t.Fatalf("completed %d of %d offered under 20x overload", res.Completed, res.Offered)
	}
}

// TestRampFindsCapacity: the stepped ramp brackets a known capacity — the
// low step sustains, the top step (far past capacity) does not, and the
// reported max sustainable rate sits strictly below the top.
func TestRampFindsCapacity(t *testing.T) {
	tgt := newSlowTarget(time.Millisecond) // capacity ~1000/s
	res, err := Ramp(context.Background(), RampConfig{
		Start:        100,
		Factor:       4,
		Max:          25_600,
		StepDuration: 150 * time.Millisecond,
		SLA:          80 * time.Millisecond,
		Divergence:   0.10,
		Seed:         3,
		MaxInFlight:  64,
		Grace:        100 * time.Millisecond,
	}, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) == 0 {
		t.Fatal("no steps measured")
	}
	if !res.Steps[0].Sustainable {
		t.Fatalf("10%% of capacity unsustainable: %+v", res.Steps[0])
	}
	last := res.Steps[len(res.Steps)-1]
	if last.Sustainable {
		t.Fatalf("ramp never found the capacity wall (last step %.0f/s sustainable)", last.Rate)
	}
	if res.MaxSustainable <= 0 || res.MaxSustainable >= last.Rate {
		t.Fatalf("max sustainable %.0f/s vs failing step %.0f/s", res.MaxSustainable, last.Rate)
	}
	if last.Reason == "" {
		t.Fatal("unsustainable step carries no reason")
	}
}

// TestRunContextCancel: cancelling mid-run stops offering promptly and
// still drains accounting consistently.
func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := Run(ctx, Config{Rate: 500, Duration: 10 * time.Second, Seed: 4},
		TargetFunc(func(Op) error { return nil }))
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancelled run kept offering")
	}
	if res.Completed+res.Errors+res.Abandoned != res.Offered {
		t.Fatalf("accounting leak: %+v", res)
	}
}

func TestRunValidation(t *testing.T) {
	tgt := TargetFunc(func(Op) error { return nil })
	if _, err := Run(context.Background(), Config{Rate: 0, Duration: time.Second}, tgt); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := Run(context.Background(), Config{Rate: 100}, tgt); err == nil {
		t.Fatal("zero duration accepted")
	}
	if _, err := Run(context.Background(), Config{Rate: 100, Duration: time.Second, Mix: Mix{Push: 50}}, tgt); err == nil {
		t.Fatal("short mix accepted")
	}
	if _, err := Ramp(context.Background(), RampConfig{Start: 0}, tgt); err == nil {
		t.Fatal("zero ramp start accepted")
	}
	if _, err := Ramp(context.Background(), RampConfig{Start: 10, Max: 5, Factor: 2, StepDuration: time.Second, SLA: time.Second}, tgt); err == nil {
		t.Fatal("max below start accepted")
	}
}
