// Package loadgen is an OPEN-LOOP load-generation harness: operations
// arrive on a schedule drawn from an arrival process (Poisson by default),
// not when the previous operation completes. Closed-loop drivers — every
// bench scenario before this package — self-throttle under overload: a
// slow system slows its own load, so "max throughput" measurements only
// say how fast the harness could spin. Open-loop generation keeps offering
// load at the configured rate regardless of completions, so overload shows
// up the way production sees it: queue growth, latency blow-up, and a
// widening gap between offered and completed rates.
//
// The harness measures operation latency from the operation's SCHEDULED
// arrival time, not its dispatch time, so any lag anywhere — in the
// generator, in a full work queue, in the system under test — lands in the
// latency distribution instead of silently shifting the schedule (the
// standard defense against coordinated omission).
//
// Ramp performs stepped client ramps in the style of SLA-driven cloud
// benchmarks: run each rate for a fixed step, gate the step on a p99
// latency SLA plus an offered-vs-completed divergence bound, and report
// the highest sustainable rate.
package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Arrivals yields successive interarrival gaps of an arrival process.
// Implementations need not be safe for concurrent use; a Run owns its
// instance.
type Arrivals interface {
	Next() time.Duration
}

// Exp is a Poisson arrival process: exponentially distributed interarrival
// gaps with the given mean rate. Deterministic for a seed.
type Exp struct {
	rng  *rand.Rand
	mean float64 // seconds between arrivals
}

// NewExp returns a Poisson process offering rate operations per second.
func NewExp(seed int64, rate float64) *Exp {
	return &Exp{rng: rand.New(rand.NewSource(seed)), mean: 1 / rate}
}

// Next draws one exponential gap (floored at 1µs so a pathological draw
// cannot produce a zero-length busy loop).
func (e *Exp) Next() time.Duration {
	d := time.Duration(e.rng.ExpFloat64() * e.mean * float64(time.Second))
	if d < time.Microsecond {
		d = time.Microsecond
	}
	return d
}

// Uniform is a constant-gap arrival process (rate operations per second).
type Uniform struct{ gap time.Duration }

// NewUniform returns uniform arrivals at rate operations per second.
func NewUniform(rate float64) *Uniform {
	return &Uniform{gap: time.Duration(float64(time.Second) / rate)}
}

// Next returns the constant gap.
func (u *Uniform) Next() time.Duration { return u.gap }

// Op is one operation kind in a percentage-mix workload.
type Op int

const (
	OpPush Op = iota
	OpQuery
	OpExport
	OpEvict
	numOps
)

// String names the op.
func (op Op) String() string {
	switch op {
	case OpPush:
		return "push"
	case OpQuery:
		return "query"
	case OpExport:
		return "export"
	case OpEvict:
		return "evict"
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// Mix is a percentage operation mix; the fields must sum to 100.
type Mix struct {
	Push, Query, Export, Evict int
}

// Validate checks the percentages.
func (m Mix) Validate() error {
	for _, p := range [...]int{m.Push, m.Query, m.Export, m.Evict} {
		if p < 0 {
			return fmt.Errorf("loadgen: negative mix percentage %d", p)
		}
	}
	if sum := m.Push + m.Query + m.Export + m.Evict; sum != 100 {
		return fmt.Errorf("loadgen: mix percentages sum to %d, want 100", sum)
	}
	return nil
}

// String formats the mix ("push:90 query:6 export:2 evict:2").
func (m Mix) String() string {
	return fmt.Sprintf("push:%d query:%d export:%d evict:%d", m.Push, m.Query, m.Export, m.Evict)
}

// deck deals the mix into a shuffled 100-operation deck; cycling the deck
// reproduces the percentages exactly over every 100 consecutive ops while
// a seeded shuffle decorrelates op kind from arrival order.
func (m Mix) deck(seed int64) ([]Op, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	ops := make([]Op, 0, 100)
	for op, n := range map[Op]int{OpPush: m.Push, OpQuery: m.Query, OpExport: m.Export, OpEvict: m.Evict} {
		for i := 0; i < n; i++ {
			ops = append(ops, op)
		}
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] }) // map order is random; fix before shuffling
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })
	return ops, nil
}

// Target executes one operation of the system under test. Do is called
// from many goroutines concurrently; blocking inside Do is how a system
// exerts backpressure on the harness, and that wait is charged to the
// operation's latency.
type Target interface {
	Do(op Op) error
}

// TargetFunc adapts a function to Target.
type TargetFunc func(op Op) error

// Do implements Target.
func (f TargetFunc) Do(op Op) error { return f(op) }

// Config parameterizes one fixed-rate open-loop run.
type Config struct {
	// Rate is the offered load in operations per second.
	Rate float64
	// Duration is how long arrivals are generated for.
	Duration time.Duration
	// Mix is the operation mix. The zero Mix means 100% OpPush.
	Mix Mix
	// Arrivals overrides the arrival process; nil uses NewExp(Seed, Rate).
	Arrivals Arrivals
	// Seed feeds the arrival process and the mix deck shuffle.
	Seed int64
	// MaxInFlight caps concurrently executing operations. Arrivals beyond
	// the cap still fire on schedule and WAIT for a slot — the wait is
	// charged to their latency, keeping the loop open. Default 512.
	MaxInFlight int
	// Grace bounds how long after the last arrival the run waits for
	// in-flight operations before declaring them abandoned. Default 1s.
	Grace time.Duration
}

// Result reports one open-loop run.
type Result struct {
	// Rate is the configured offered rate (ops/s).
	Rate float64 `json:"offered_rps"`
	// Offered counts operations the arrival process dispatched.
	Offered int `json:"offered"`
	// Completed counts operations that finished without error.
	Completed int `json:"completed"`
	// Errors counts operations whose Do returned an error.
	Errors int `json:"errors"`
	// Abandoned counts operations still running when the grace deadline
	// expired — work the system under test never absorbed in time.
	Abandoned int `json:"abandoned"`
	// Elapsed is the wall time from first scheduled arrival to the end of
	// the completion wait.
	Elapsed time.Duration `json:"elapsed_ns"`
	// CompletedRate is Completed over the arrival span (ops/s) — the
	// accepted rate an overload detector compares against Rate.
	CompletedRate float64 `json:"accepted_rps"`
	// P50, P90, P99 and Max describe completed-operation latency measured
	// from the SCHEDULED arrival (queueing anywhere is included).
	P50 time.Duration `json:"p50_ns"`
	P90 time.Duration `json:"p90_ns"`
	P99 time.Duration `json:"p99_ns"`
	Max time.Duration `json:"max_ns"`
	// SchedLagMax is the worst lateness of a dispatch against its
	// schedule; a large value means the GENERATOR could not keep the
	// offered rate (the measurement, not the target, saturated).
	SchedLagMax time.Duration `json:"sched_lag_max_ns"`
}

// Overloaded reports whether the run diverged: successful completions fell
// more than divergence (a fraction, e.g. 0.05) below the offered count, or
// operations were abandoned outright. Errored operations count as NOT
// absorbed — a target that sheds load by failing requests (a PushContext
// deadline, a refused connection) is diverging, not keeping up.
func (r Result) Overloaded(divergence float64) bool {
	if r.Abandoned > 0 {
		return true
	}
	if r.Offered == 0 {
		return false
	}
	return float64(r.Completed) < (1-divergence)*float64(r.Offered)
}

// Run drives one open-loop run against t. It returns when every dispatched
// operation has completed or the grace period has expired; ctx cancels the
// arrival schedule early (already-dispatched operations still drain).
func Run(ctx context.Context, cfg Config, t Target) (Result, error) {
	if cfg.Rate <= 0 {
		return Result{}, fmt.Errorf("loadgen: rate %v must be positive", cfg.Rate)
	}
	if cfg.Duration <= 0 {
		return Result{}, fmt.Errorf("loadgen: duration %v must be positive", cfg.Duration)
	}
	mix := cfg.Mix
	if mix == (Mix{}) {
		mix = Mix{Push: 100}
	}
	deck, err := mix.deck(cfg.Seed)
	if err != nil {
		return Result{}, err
	}
	arr := cfg.Arrivals
	if arr == nil {
		arr = NewExp(cfg.Seed, cfg.Rate)
	}
	inflight := cfg.MaxInFlight
	if inflight <= 0 {
		inflight = 512
	}
	grace := cfg.Grace
	if grace <= 0 {
		grace = time.Second
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		errs      int
		wg        sync.WaitGroup
		sem       = make(chan struct{}, inflight)
	)
	res := Result{Rate: cfg.Rate}
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	next := start
	for i := 0; ; i++ {
		next = next.Add(arr.Next())
		if next.After(deadline) {
			break
		}
		if err := sleepUntil(ctx, next); err != nil {
			break // ctx cancelled: stop offering, drain what's out
		}
		if lag := time.Since(next); lag > res.SchedLagMax {
			res.SchedLagMax = lag
		}
		res.Offered++
		op := deck[i%len(deck)]
		sched := next
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The slot wait is inside the goroutine, after the scheduled
			// arrival: dispatch never self-throttles, and time queued for a
			// slot is part of the operation's latency.
			sem <- struct{}{}
			err := t.Do(op)
			<-sem
			lat := time.Since(sched)
			mu.Lock()
			if err != nil {
				errs++
			} else {
				latencies = append(latencies, lat)
			}
			mu.Unlock()
		}()
	}
	arrivalSpan := time.Since(start)

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(grace):
	}
	res.Elapsed = time.Since(start)

	mu.Lock()
	defer mu.Unlock()
	res.Completed = len(latencies)
	res.Errors = errs
	res.Abandoned = res.Offered - res.Completed - res.Errors
	if arrivalSpan > 0 {
		res.CompletedRate = float64(res.Completed) / arrivalSpan.Seconds()
	}
	res.P50, res.P90, res.P99, res.Max = percentiles(latencies)
	return res, nil
}

// sleepUntil sleeps to the scheduled instant (no-op if already past),
// aborting on ctx cancellation.
func sleepUntil(ctx context.Context, at time.Time) error {
	d := time.Until(at)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// percentiles sorts lats in place and reads p50/p90/p99/max (zeros for an
// empty sample).
func percentiles(lats []time.Duration) (p50, p90, p99, max time.Duration) {
	if len(lats) == 0 {
		return
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	at := func(phi float64) time.Duration {
		i := int(phi*float64(len(lats))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return lats[i]
	}
	return at(0.50), at(0.90), at(0.99), lats[len(lats)-1]
}
