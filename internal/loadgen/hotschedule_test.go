package loadgen

import "testing"

func TestHotScheduleValidate(t *testing.T) {
	good := HotSchedule{{Until: 0.5, Key: 0}, {Until: 1, Key: 3}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	bad := []HotSchedule{
		{},                                   // empty
		{{Until: 0.5, Key: 0}},               // never reaches 1
		{{Until: 0, Key: 0}, {Until: 1}},     // zero-length phase
		{{Until: 0.7, Key: 0}, {Until: 0.7}}, // not ascending
		{{Until: 1.2, Key: 0}},               // past the run
		{{Until: 0.5, Key: -1}, {Until: 1}},  // negative key
		{{Until: 0.6, Key: 0}, {Until: 0.4}}, // descending
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schedule %d accepted: %v", i, s)
		}
	}
}

func TestHotScheduleKeyAt(t *testing.T) {
	s := HotSchedule{{Until: 0.25, Key: 7}, {Until: 0.5, Key: 2}, {Until: 1, Key: 9}}
	cases := []struct {
		frac float64
		want int
	}{
		{0, 7}, {0.1, 7}, {0.2499, 7},
		{0.25, 2}, {0.4, 2},
		{0.5, 9}, {0.99, 9},
		{1, 9}, {1.5, 9}, // overshoot stays in the final phase
	}
	for _, c := range cases {
		if got := s.KeyAt(c.frac); got != c.want {
			t.Errorf("KeyAt(%v) = %d, want %d", c.frac, got, c.want)
		}
	}
}
