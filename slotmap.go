package qlove

import (
	"encoding/json"
	"fmt"
)

// Slots is the fixed hash-slot count of the partition map. Every logical
// key hashes to exactly one of the S=256 slots, and the slot — not the
// key — is the unit of placement: growing or shrinking a replica set
// re-homes whole slots (~S/N of them per added replica) instead of
// reshuffling every key the way a bare hash-mod-N partition does.
//
// 256 slots bound the map to a size that serializes into a config line
// while still splitting finer than any plausible replica count here; the
// same fixed-slot indirection is what lets Redis Cluster (16384 slots)
// resize live.
const Slots = 256

// SlotOf returns the hash slot of a logical key: FNV-1a of the base key
// (salted sub-stream names hash by their base, so a key's whole salt
// group shares one slot) folded to [0, Slots). The hash is fixed and
// process-independent: every router instance — in-process Partitioned,
// the HTTP fan-in, tests predicting placement — slots identically.
func SlotOf(key string) int {
	key = logicalKey(key)
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return int(h % Slots)
}

// SlotMap is the slot→replica-set table: for each of the Slots hash
// slots, the ordered replica indices owning it. owners[s][0] is the
// slot's primary (preferred for reads); the rest are secondaries that
// hold full copies for failover. Every slot has exactly Replication
// distinct owners.
//
// A SlotMap is a plain value with no internal locking: routers that
// mutate it live (Move during a slot migration) must guard it with their
// own lock, or swap in a Clone.
type SlotMap struct {
	replication int
	owners      [Slots][]int
}

// NewSlotMap returns the canonical map for `replicas` replica indices at
// replication factor `replication` (copies per slot, in [1, replicas]):
// slot s's primary is s % replicas — which makes the default map's
// primary routing agree with PartitionOf — and its secondaries the next
// replication-1 indices round-robin, so ownership load is uniform.
func NewSlotMap(replicas, replication int) (*SlotMap, error) {
	if replicas < 1 {
		return nil, fmt.Errorf("qlove: slot map needs >= 1 replica, got %d", replicas)
	}
	if replication < 1 || replication > replicas {
		return nil, fmt.Errorf("qlove: replication factor %d outside [1, %d replicas]", replication, replicas)
	}
	m := &SlotMap{replication: replication}
	for s := 0; s < Slots; s++ {
		own := make([]int, replication)
		for i := range own {
			own[i] = (s + i) % replicas
		}
		m.owners[s] = own
	}
	return m, nil
}

// Replication returns the copies-per-slot factor.
func (m *SlotMap) Replication() int { return m.replication }

// Owners returns the ordered owner set of one slot (primary first). The
// slice is a copy; callers may keep it.
func (m *SlotMap) Owners(slot int) []int {
	return append([]int(nil), m.owners[slot]...)
}

// Primary returns the primary replica index of one slot.
func (m *SlotMap) Primary(slot int) int { return m.owners[slot][0] }

// OwnersOf returns the ordered owner set of a logical key's slot.
func (m *SlotMap) OwnersOf(key string) []int { return m.Owners(SlotOf(key)) }

// PrimaryOf returns the primary replica index of a logical key.
func (m *SlotMap) PrimaryOf(key string) int { return m.Primary(SlotOf(key)) }

// IsOwner reports whether replica owns slot.
func (m *SlotMap) IsOwner(slot, replica int) bool {
	for _, o := range m.owners[slot] {
		if o == replica {
			return true
		}
	}
	return false
}

// SlotsOwnedBy returns the slots a replica owns (as primary or
// secondary), ascending.
func (m *SlotMap) SlotsOwnedBy(replica int) []int {
	var out []int
	for s := 0; s < Slots; s++ {
		if m.IsOwner(s, replica) {
			out = append(out, s)
		}
	}
	return out
}

// MaxReplica returns the highest replica index any slot references —
// routers validate it against their replica count at construction.
func (m *SlotMap) MaxReplica() int {
	max := 0
	for s := 0; s < Slots; s++ {
		for _, o := range m.owners[s] {
			if o > max {
				max = o
			}
		}
	}
	return max
}

// Move re-homes one slot from owner `from` to non-owner `to`, keeping
// `from`'s position in the owner order (moving the primary installs `to`
// as the new primary). The caller replays the slot's state to `to`
// before flipping; Move itself is pure table surgery.
func (m *SlotMap) Move(slot, from, to int) error {
	if slot < 0 || slot >= Slots {
		return fmt.Errorf("qlove: slot %d outside [0, %d)", slot, Slots)
	}
	if to < 0 {
		return fmt.Errorf("qlove: negative replica index %d", to)
	}
	if m.IsOwner(slot, to) {
		return fmt.Errorf("qlove: replica %d already owns slot %d", to, slot)
	}
	for i, o := range m.owners[slot] {
		if o == from {
			m.owners[slot][i] = to
			return nil
		}
	}
	return fmt.Errorf("qlove: replica %d does not own slot %d (owners %v)", from, slot, m.owners[slot])
}

// Clone returns a deep copy — the copy-on-write half of live migration:
// mutate the clone, then atomically swap it in under the router's lock.
func (m *SlotMap) Clone() *SlotMap {
	c := &SlotMap{replication: m.replication}
	for s := 0; s < Slots; s++ {
		c.owners[s] = append([]int(nil), m.owners[s]...)
	}
	return c
}

// slotMapJSON is the serialized form: explicit slot count so a future
// resize of the constant fails loudly instead of misrouting.
type slotMapJSON struct {
	Slots       int      `json:"slots"`
	Replication int      `json:"replication"`
	Owners      [][]int  `json:"owners"`
}

// MarshalJSON serializes the slot table with its shape
// ({"slots":256,"replication":R,"owners":[[...],...]}).
func (m *SlotMap) MarshalJSON() ([]byte, error) {
	doc := slotMapJSON{Slots: Slots, Replication: m.replication, Owners: make([][]int, Slots)}
	for s := 0; s < Slots; s++ {
		doc.Owners[s] = m.owners[s]
	}
	return json.Marshal(doc)
}

// UnmarshalJSON parses and validates a serialized slot table: the slot
// count must match, and every slot must list exactly Replication distinct
// non-negative owners.
func (m *SlotMap) UnmarshalJSON(b []byte) error {
	var doc slotMapJSON
	if err := json.Unmarshal(b, &doc); err != nil {
		return fmt.Errorf("qlove: slot map: %w", err)
	}
	if doc.Slots != Slots {
		return fmt.Errorf("qlove: slot map has %d slots, this build partitions %d", doc.Slots, Slots)
	}
	if doc.Replication < 1 {
		return fmt.Errorf("qlove: slot map replication %d < 1", doc.Replication)
	}
	if len(doc.Owners) != Slots {
		return fmt.Errorf("qlove: slot map lists %d owner sets, want %d", len(doc.Owners), Slots)
	}
	parsed := &SlotMap{replication: doc.Replication}
	for s, own := range doc.Owners {
		if len(own) != doc.Replication {
			return fmt.Errorf("qlove: slot %d has %d owners, replication is %d", s, len(own), doc.Replication)
		}
		seen := make(map[int]bool, len(own))
		for _, o := range own {
			if o < 0 {
				return fmt.Errorf("qlove: slot %d lists negative replica %d", s, o)
			}
			if seen[o] {
				return fmt.Errorf("qlove: slot %d lists replica %d twice", s, o)
			}
			seen[o] = true
		}
		parsed.owners[s] = append([]int(nil), own...)
	}
	*m = *parsed
	return nil
}
