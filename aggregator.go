package qlove

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
)

// Aggregator is the long-running receiving half of the incremental
// distributed plane: it folds worker push streams — full frames for
// bootstrap, delta frames thereafter, tombstones for evicted keys — into a
// resident per-(worker, key) state, and answers queries from the merged
// cross-worker view. It is what cmd/qlove-agg serves over HTTP in -serve
// mode, and the library form any embedding service can use directly.
//
// State is kept per worker because the cross-worker combination is a
// Snapshot.Merge (disjoint sub-streams of one logical key), which must
// happen at read time from each worker's CURRENT window — folding deltas
// into an already-merged state would double-count. Reads merge the workers
// of a key in ascending worker-ID order, so a fixed set of worker states
// answers bit-reproducible estimates regardless of push arrival order;
// each worker's folded state is bit-for-bit the capture a full
// Engine.Export would have shipped at the same instant.
//
// Apply calls for DIFFERENT workers may run concurrently with each other
// and with reads; Apply calls for one worker must be serialized by the
// caller (they are on any real transport: one worker pushes its own
// deltas in order).
type Aggregator struct {
	mu      sync.RWMutex
	workers map[string]*aggWorker

	// Push-deadline GC (SetPushDeadline): a worker whose last push is older
	// than deadline is invisible to reads immediately and physically
	// dropped by the next sweep (piggybacked on Apply, or explicit).
	deadline time.Duration
	now      func() time.Time
}

type aggWorker struct {
	keys     map[string]*aggKeyState
	salted   int       // resident salted sub-stream names (fast path when 0)
	lastPush time.Time // when this worker last Applied (deadline > 0)
}

// put stores one internal key name's state, maintaining the salted count.
func (w *aggWorker) put(name string, st *aggKeyState) {
	if _, exists := w.keys[name]; !exists {
		if _, _, salted := splitKey(name); salted {
			w.salted++
		}
	}
	w.keys[name] = st
}

// drop removes one internal key name, maintaining the salted count.
func (w *aggWorker) drop(name string) {
	if _, exists := w.keys[name]; exists {
		if _, _, salted := splitKey(name); salted {
			w.salted--
		}
		delete(w.keys, name)
	}
}

// dropGroup removes a logical key's entire salt group: the base name and
// every salted sub-stream name of it. Used when a frame REPLACES the
// logical key wholesale (a full frame, or a from-generation-0 bootstrap of
// the base name after an escalated key collapsed), so stale sub-stream
// state can never double-count against the replacement.
func (w *aggWorker) dropGroup(base string) {
	w.drop(base)
	if w.salted == 0 {
		return
	}
	for name := range w.keys {
		if b, _, salted := splitKey(name); salted && b == base {
			w.drop(name)
		}
	}
}

// groupNames lists the worker's resident names for one logical key — the
// base name plus salted sub-streams — in fold order: sorting is enough,
// because NUL sorts below every byte a user key may contain, making
// [base, sub 0, sub 1, …] exactly the lexicographic order.
func (w *aggWorker) groupNames(base string) []string {
	var names []string
	if _, ok := w.keys[base]; ok {
		names = append(names, base)
	}
	if w.salted > 0 {
		for name := range w.keys {
			if b, _, salted := splitKey(name); salted && b == base {
				names = append(names, name)
			}
		}
	}
	sort.Strings(names)
	return names
}

// groupSnapshot folds one logical key's resident names, in fold order,
// into a single capture — the same [base, sub-stream 0, 1, …] left-fold
// the engine's own foldSalted and Query perform, so the bytes match a
// full export of the same state. ok is false when the worker holds
// nothing for the key.
func (w *aggWorker) groupSnapshot(base string) (Snapshot, bool, error) {
	if w.salted == 0 {
		// Fast path: no salted names resident, the key is one stream.
		st := w.keys[base]
		if st == nil {
			return Snapshot{}, false, nil
		}
		sn, err := st.snapshot()
		return sn, err == nil, err
	}
	names := w.groupNames(base)
	if len(names) == 0 {
		return Snapshot{}, false, nil
	}
	var folded Snapshot
	for _, name := range names {
		sn, err := w.keys[name].snapshot()
		if err != nil {
			return Snapshot{}, false, err
		}
		if folded, err = folded.Merge(sn); err != nil {
			return Snapshot{}, false, err
		}
	}
	return folded, true, nil
}

// aggKeyState is one worker's folded view of one key: exactly the
// SnapshotParts a full export of that key would carry (Summaries is the
// resident window, SealGen the worker's seal clock).
type aggKeyState struct {
	parts core.SnapshotParts
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{workers: make(map[string]*aggWorker), now: time.Now}
}

// SetPushDeadline arms the aggregator's worker GC — the service-plane
// analogue of the engine's wall-clock key TTL. A worker that has not
// pushed for longer than d stops contributing to reads (Query, Snapshot,
// Workers, Keys) IMMEDIATELY once the deadline passes, and its resident
// state is physically dropped by the next sweep — piggybacked on every
// Apply, or driven explicitly via Sweep (e.g. from a service ticker). A
// departed worker therefore cannot pin its folded state forever, bounding
// the service under worker churn; a worker that resumes pushing after
// being swept simply re-bootstraps (ExportDelta re-ships in full when the
// destination rejects its cursor, exactly as after any lost blob).
//
// clock overrides the time source (tests use a fake clock); nil means
// time.Now. d <= 0 disables the GC. Arming (or re-arming) dates every
// resident worker at that moment, so each gets one full deadline from
// the arming before it can go stale. Not safe to call concurrently with
// Apply or reads; arm it before the aggregator starts serving.
func (a *Aggregator) SetPushDeadline(d time.Duration, clock func() time.Time) {
	a.deadline = d
	a.now = time.Now
	if clock != nil {
		a.now = clock
	}
	if d > 0 {
		// Date EVERY resident worker at arming time: workers folded before
		// the GC was armed have no push stamp (Apply only stamps while a
		// deadline is live), and workers stamped under a previous arming
		// may carry a different clock's times — either way, "armed now"
		// means every current worker gets one full deadline from now, and
		// a worker that kept pushing through a disarm/re-arm cycle is
		// never retired by its stale stamp.
		now := a.now()
		a.mu.Lock()
		for _, w := range a.workers {
			w.lastPush = now
		}
		a.mu.Unlock()
	}
}

// stale reports whether the worker has out-lived the push deadline (and
// must be hidden from reads). Callers hold at least the read lock.
func (a *Aggregator) stale(w *aggWorker, now time.Time) bool {
	return a.deadline > 0 && now.Sub(w.lastPush) > a.deadline
}

// sweepLocked drops every stale worker; the caller holds the write lock.
func (a *Aggregator) sweepLocked(now time.Time) int {
	if a.deadline <= 0 {
		return 0
	}
	dropped := 0
	for id, w := range a.workers {
		if a.stale(w, now) {
			delete(a.workers, id)
			dropped++
		}
	}
	return dropped
}

// Sweep physically drops every worker past the push deadline, returning
// how many were removed. Reads already exclude stale workers, so Sweep
// only reclaims memory; long-running services call it from a ticker (or
// rely on the sweep piggybacked on every Apply). A no-op when no deadline
// is armed.
func (a *Aggregator) Sweep() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sweepLocked(a.now())
}

// Apply folds one push blob from the named worker: any mix of full, delta
// and tombstone frames (the output of Engine.Export, Engine.ExportDelta or
// EngineSnapshot.WriteTo — v1 blobs fold too, as full frames). It returns
// the number of frames applied. On error the frames already folded remain
// applied and the count says how many; the worker should discard its
// cursor and re-bootstrap (ExportDelta does this automatically when its
// own encode fails, and a from-generation-0 delta or full frame always
// replaces whatever state is resident).
func (a *Aggregator) Apply(worker string, r io.Reader) (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	w := a.workers[worker]
	if w == nil {
		w = &aggWorker{keys: make(map[string]*aggKeyState)}
		a.workers[worker] = w
	}
	// Stamp the pusher BEFORE the piggybacked sweep, so a worker revived
	// at the deadline's edge is never dropped by its own push. No stamps
	// accrue while the GC is unarmed — SetPushDeadline dates those workers
	// itself, with its own clock.
	if a.deadline > 0 {
		now := a.now()
		w.lastPush = now
		a.sweepLocked(now)
	}
	dec := wire.NewDecoder(r)
	frames := 0
	for {
		f, err := dec.DecodeFrame()
		if err == io.EOF {
			return frames, nil
		}
		if err != nil {
			return frames, fmt.Errorf("qlove: aggregator apply worker %q: %w", worker, err)
		}
		if err := w.fold(f); err != nil {
			return frames, fmt.Errorf("qlove: aggregator apply worker %q key %q: %w", worker, f.Key, err)
		}
		frames++
	}
}

// fold applies one decoded frame to the worker's state. Frames may carry
// internal salted sub-stream names ("key\x00<j>", from delta exports of a
// salted or adaptively escalated engine); they are stored per name and
// folded back to logical keys at read time.
func (w *aggWorker) fold(f wire.Frame) error {
	switch f.Kind {
	case wire.KindTombstone:
		w.drop(f.Key)
		return nil
	case wire.KindFull:
		// A full frame is the worker's complete folded view of the logical
		// key: it replaces the whole salt group, not just the exact name.
		w.dropGroup(logicalKey(f.Key))
		w.put(f.Key, &aggKeyState{parts: f.Snap.Parts()})
		return nil
	case wire.KindDelta:
		return w.foldDelta(f.Key, f.Delta)
	}
	return fmt.Errorf("unknown frame kind %v", f.Kind)
}

// foldDelta advances one key's resident window by a delta frame: append
// the newly sealed summaries, trim the front to the worker's resident
// count (the summaries that slid out of its window since the cursor), and
// replace the Level-2 sums wholesale. The result is bit-for-bit the full
// capture the worker held at export time.
func (w *aggWorker) foldDelta(key string, d wire.Delta) error {
	if d.FromGen == 0 {
		// Bootstrap: the frame carries the entire resident window. A
		// bootstrap resets stale state the tombstone stream may not cover
		// (e.g. after a cursor reset): a sub-stream bootstrap retires the
		// BASE state it was escalated out of; a base bootstrap (a collapsed
		// key coming home) retires the whole former salt group.
		if base, _, salted := splitKey(key); salted {
			w.drop(base)
		} else {
			w.dropGroup(key)
		}
		w.put(key, &aggKeyState{parts: d.Parts})
		return nil
	}
	st := w.keys[key]
	if st == nil {
		return fmt.Errorf("delta from generation %d for a key never bootstrapped", d.FromGen)
	}
	if st.parts.SealGen != d.FromGen {
		return fmt.Errorf("delta cursor %d does not match resident generation %d", d.FromGen, st.parts.SealGen)
	}
	if !core.ConfigEqual(st.parts.Config, d.Parts.Config) {
		return fmt.Errorf("delta configuration differs from resident state")
	}
	total := append(st.parts.Summaries, d.Parts.Summaries...)
	if len(total) < d.Resident {
		return fmt.Errorf("delta needs %d resident summaries, only %d accumulated", d.Resident, len(total))
	}
	// Trim expired summaries off the front in place, zeroing the vacated
	// tail slots so dropped few-k caches are promptly collectible.
	// (Readers never alias this slice: queries deep-copy under the lock.)
	keep := len(total) - d.Resident
	copy(total, total[keep:])
	for i := d.Resident; i < len(total); i++ {
		total[i] = core.Summary{}
	}
	st.parts.Summaries = total[:d.Resident]
	st.parts.Sums = d.Parts.Sums
	st.parts.Streams = d.Parts.Streams
	st.parts.SealGen = d.Parts.SealGen
	return nil
}

// snapshot rebuilds this state's capture. The summaries slice is copied so
// later folds (which mutate the retained run in place) cannot reach a
// capture already handed out.
func (st *aggKeyState) snapshot() (Snapshot, error) {
	p := st.parts
	p.Summaries = append([]core.Summary(nil), p.Summaries...)
	return core.NewSnapshot(p)
}

// Query answers one LOGICAL key from the merged cross-worker view: within
// each worker the key's resident streams (base plus any salted
// sub-streams) fold first, in [base, sub-stream 0, 1, …] order — the same
// fold the engine's own salted reads perform — then the per-worker
// captures merge in ascending worker-ID order. ok is false when no worker
// currently holds the key.
func (a *Aggregator) Query(key string) (Snapshot, bool, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	now := a.now()
	ids := make([]string, 0, len(a.workers))
	for id, w := range a.workers {
		if !a.stale(w, now) {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	var merged Snapshot
	found := false
	for _, id := range ids {
		sn, ok, err := a.workers[id].groupSnapshot(key)
		if err != nil {
			return Snapshot{}, false, fmt.Errorf("qlove: aggregator worker %q key %q: %w", id, key, err)
		}
		if !ok {
			continue
		}
		found = true
		if merged, err = merged.Merge(sn); err != nil {
			return Snapshot{}, false, fmt.Errorf("qlove: aggregator merge key %q: %w", key, err)
		}
	}
	if !found {
		return Snapshot{}, false, nil
	}
	return merged, true, nil
}

// Snapshot materializes the whole merged view — every key, each merged
// across its workers in ascending worker-ID order — as an EngineSnapshot,
// interchangeable with the batch-mode fold of the workers' full exports.
func (a *Aggregator) Snapshot() (EngineSnapshot, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	now := a.now()
	ids := make([]string, 0, len(a.workers))
	for id, w := range a.workers {
		if a.stale(w, now) {
			continue
		}
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := EngineSnapshot{keys: make(map[string]Snapshot)}
	for _, id := range ids {
		w := a.workers[id]
		// Sorted names make each logical key's group a contiguous run
		// ([base, sub 0, sub 1, …] — NUL sorts below any user-key byte),
		// so one pass folds groups in exactly the engine's salt order.
		names := make([]string, 0, len(w.keys))
		for name := range w.keys {
			names = append(names, name)
		}
		sort.Strings(names)
		for i := 0; i < len(names); {
			base := logicalKey(names[i])
			var folded Snapshot
			for ; i < len(names) && logicalKey(names[i]) == base; i++ {
				sn, err := w.keys[names[i]].snapshot()
				if err != nil {
					return EngineSnapshot{}, fmt.Errorf("qlove: aggregator worker %q key %q: %w", id, names[i], err)
				}
				if folded, err = folded.Merge(sn); err != nil {
					return EngineSnapshot{}, fmt.Errorf("qlove: aggregator merge key %q: %w", base, err)
				}
			}
			if prev, ok := out.keys[base]; ok {
				m, err := prev.Merge(folded)
				if err != nil {
					return EngineSnapshot{}, fmt.Errorf("qlove: aggregator merge key %q: %w", base, err)
				}
				folded = m
			}
			out.keys[base] = folded
		}
	}
	return out, nil
}

// Workers returns how many live workers have pushed state (workers past
// the push deadline are excluded, swept or not).
func (a *Aggregator) Workers() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	now := a.now()
	n := 0
	for _, w := range a.workers {
		if !a.stale(w, now) {
			n++
		}
	}
	return n
}

// Keys returns the number of distinct LOGICAL keys across all live
// workers (a salted key's sub-streams count once).
func (a *Aggregator) Keys() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	now := a.now()
	seen := make(map[string]struct{})
	for _, w := range a.workers {
		if a.stale(w, now) {
			continue
		}
		for k := range w.keys {
			seen[logicalKey(k)] = struct{}{}
		}
	}
	return len(seen)
}

// DropWorker forgets one worker's state entirely (e.g. a
// decommissioned pod), returning whether it was known.
func (a *Aggregator) DropWorker(worker string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, ok := a.workers[worker]
	delete(a.workers, worker)
	return ok
}
