package qlove

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aggstore"
	"repro/internal/core"
	"repro/internal/wire"
)

// Aggregator is the long-running receiving half of the incremental
// distributed plane: it folds worker push streams — full frames for
// bootstrap, delta frames thereafter, tombstones for evicted keys — into a
// resident per-(worker, key) state, and answers queries from the merged
// cross-worker view. It is what cmd/qlove-agg serves over HTTP in -serve
// mode, and the library form any embedding service can use directly.
//
// State is kept per worker because the cross-worker combination is a
// Snapshot.Merge (disjoint sub-streams of one logical key), which must
// happen at read time from each worker's CURRENT window — folding deltas
// into an already-merged state would double-count. Reads merge the workers
// of a key in ascending worker-ID order, so a fixed set of worker states
// answers bit-reproducible estimates regardless of push arrival order;
// each worker's folded state is bit-for-bit the capture a full
// Engine.Export would have shipped at the same instant.
//
// Storage lives behind the internal aggstore.Store interface
// (AggregatorConfig selects the backend): by default a lock-striped store
// whose stripes are keyed by hash(worker, base key), so pushes from
// different workers and concurrent reads genuinely run in parallel, plus
// a read-path fold cache that memoizes each logical key's merged
// cross-worker snapshot and invalidates it by per-key mutation
// generation. Every backend answers bit-identically; the conformance
// suite pins that.
//
// Apply calls for DIFFERENT workers may run concurrently with each other
// and with reads; Apply calls for one worker must be serialized by the
// caller (they are on any real transport: one worker pushes its own
// deltas in order). Reads are per-worker-frame coherent: a Query
// overlapping a multi-frame Apply may see that blob partially folded —
// quiesced states are bit-identical across all backends, which is what
// the distributed plane's verifications compare.
type Aggregator struct {
	store aggstore.Store
	cache *foldCache // nil when the fold cache is disabled

	// Push-deadline GC (SetPushDeadline): a worker whose last push is older
	// than deadline is invisible to reads immediately and physically
	// dropped by the next sweep (piggybacked on Apply, or explicit).
	deadline time.Duration
	now      func() time.Time
}

// AggregatorConfig selects the aggregator's state backend.
type AggregatorConfig struct {
	// Store names the backend: "striped" (the default — lock-striped
	// shards, parallel pushes and reads), "map" (the original layout,
	// one map behind one RWMutex; every operation serialized), or "disk"
	// (durable: every mutation appended to a crash-safe segment log in
	// Dir and replayed on the next open — see the aggstore disk backend).
	Store string
	// Stripes is the striped backend's stripe count (<= 0 picks the
	// default; rounded up to a power of two). Ignored by "map" and "disk".
	Stripes int
	// Instrument wraps the store with the per-op metrics recorder; see
	// Metrics and the service's /metrics endpoint.
	Instrument bool
	// NoFoldCache disables the read-path fold cache (folds recompute on
	// every read; useful to measure what the cache buys).
	NoFoldCache bool

	// Dir is the disk backend's state directory (required for "disk",
	// rejected for the in-memory backends). Reopening the same directory
	// recovers the previous aggregator's entire state — worker cursors
	// included, so workers resume delta pushes without re-bootstrapping.
	Dir string
	// Fsync is the disk backend's sync discipline: "always" (default —
	// every mutation is durable before it is applied), "interval"
	// (batched syncs on a short ticker), or "none" (OS page cache only).
	Fsync string
	// CompactBytes is the WAL size that triggers snapshot compaction
	// (0 = default, < 0 disables auto-compaction). Disk backend only.
	CompactBytes int64
}

// NewAggregator returns an empty aggregator on the default backend
// (striped store, fold cache on).
func NewAggregator() *Aggregator {
	a, err := NewAggregatorConfig(AggregatorConfig{})
	if err != nil { // unreachable: the zero config is valid
		panic(err)
	}
	return a
}

// NewAggregatorConfig returns an empty aggregator on the configured
// backend.
func NewAggregatorConfig(cfg AggregatorConfig) (*Aggregator, error) {
	var store aggstore.Store
	switch cfg.Store {
	case "", "striped":
		store = aggstore.NewStriped(cfg.Stripes)
	case "map":
		store = aggstore.NewMap()
	case "disk":
		if cfg.Dir == "" {
			return nil, fmt.Errorf("qlove: the disk aggregator store needs a state directory (AggregatorConfig.Dir)")
		}
		d, err := aggstore.OpenDisk(aggstore.DiskConfig{
			Dir:          cfg.Dir,
			Fsync:        cfg.Fsync,
			CompactBytes: cfg.CompactBytes,
		})
		if err != nil {
			return nil, fmt.Errorf("qlove: open disk aggregator store: %w", err)
		}
		store = d
	default:
		return nil, fmt.Errorf("qlove: unknown aggregator store %q (striped | map | disk)", cfg.Store)
	}
	if cfg.Store != "disk" && (cfg.Dir != "" || cfg.Fsync != "" || cfg.CompactBytes != 0) {
		return nil, fmt.Errorf("qlove: Dir/Fsync/CompactBytes only apply to the disk store, not %q", cfg.Store)
	}
	if cfg.Instrument {
		store = aggstore.NewInstrumented(store)
	}
	a := &Aggregator{store: store, now: time.Now}
	if !cfg.NoFoldCache {
		a.cache = newFoldCache()
	}
	return a, nil
}

// Close releases the store backend: for the disk backend it flushes and
// syncs the log tail and stops the background flusher; in-memory backends
// close to a no-op. The aggregator must not be used after Close.
func (a *Aggregator) Close() error {
	store := a.store
	if in, ok := store.(*aggstore.Instrumented); ok {
		store = in.Inner()
	}
	if c, ok := store.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// DurabilityErr reports the store's sticky durability error: non-nil once
// the disk backend has failed to persist a mutation (the in-memory state
// stays ahead of the log from that point on). Always nil for in-memory
// backends. Services surface it in /healthz.
func (a *Aggregator) DurabilityErr() error {
	store := a.store
	if in, ok := store.(*aggstore.Instrumented); ok {
		store = in.Inner()
	}
	if d, ok := store.(interface{ Err() error }); ok {
		return d.Err()
	}
	return nil
}

// SetPushDeadline arms the aggregator's worker GC — the service-plane
// analogue of the engine's wall-clock key TTL. A worker that has not
// pushed for longer than d stops contributing to reads (Query, Snapshot,
// Workers, Keys) IMMEDIATELY once the deadline passes, and its resident
// state is physically dropped by the next sweep — piggybacked on every
// Apply, or driven explicitly via Sweep (e.g. from a service ticker). A
// departed worker therefore cannot pin its folded state forever, bounding
// the service under worker churn; a worker that resumes pushing after
// being swept simply re-bootstraps (ExportDelta re-ships in full when the
// destination rejects its cursor, exactly as after any lost blob).
//
// clock overrides the time source (tests use a fake clock); nil means
// time.Now. d <= 0 disables the GC. Arming (or re-arming) dates every
// resident worker at that moment, so each gets one full deadline from
// the arming before it can go stale. Not safe to call concurrently with
// Apply or reads; arm it before the aggregator starts serving.
func (a *Aggregator) SetPushDeadline(d time.Duration, clock func() time.Time) {
	a.deadline = d
	a.now = time.Now
	if clock != nil {
		a.now = clock
	}
	if d > 0 {
		// Date EVERY resident worker at arming time: workers folded before
		// the GC was armed have no push stamp (Apply only stamps while a
		// deadline is live), and workers stamped under a previous arming
		// may carry a different clock's times — either way, "armed now"
		// means every current worker gets one full deadline from now, and
		// a worker that kept pushing through a disarm/re-arm cycle is
		// never retired by its stale stamp.
		now := a.now()
		for _, id := range a.store.Workers(nil) {
			a.store.Touch(id, now)
		}
	}
}

// SetPushDeadlineFromStored arms the worker GC like SetPushDeadline but
// WITHOUT re-dating resident workers: the stamps already in the store —
// recovered from a disk backend's log — stay authoritative. This is the
// restart form: a worker that had gone silent before the crash is still
// the one the recovered aggregator retires, rather than every worker
// getting a fresh deadline just because the process bounced. (With an
// in-memory store there is nothing recovered and this is equivalent to
// SetPushDeadline on an empty aggregator.) A recovered worker pushing
// again re-stamps itself on its first Apply, exactly as before the crash.
func (a *Aggregator) SetPushDeadlineFromStored(d time.Duration, clock func() time.Time) {
	a.deadline = d
	a.now = time.Now
	if clock != nil {
		a.now = clock
	}
}

// staleAt returns the staleness predicate for reads/sweeps at the given
// instant, or nil when no deadline is armed.
func (a *Aggregator) staleAt(now time.Time) func(time.Time) bool {
	if a.deadline <= 0 {
		return nil
	}
	d := a.deadline
	return func(last time.Time) bool { return now.Sub(last) > d }
}

// liveWorkers lists the workers visible to reads right now, sorted.
func (a *Aggregator) liveWorkers() []string {
	if a.deadline <= 0 {
		return a.store.Workers(nil)
	}
	return a.store.Workers(a.staleAt(a.now()))
}

// Sweep physically drops every worker past the push deadline, returning
// how many were removed. Reads already exclude stale workers, so Sweep
// only reclaims memory; long-running services call it from a ticker (or
// rely on the sweep piggybacked on every Apply). A no-op when no deadline
// is armed.
func (a *Aggregator) Sweep() int {
	if a.deadline <= 0 {
		return 0
	}
	return a.store.SweepWorkers(a.staleAt(a.now()))
}

// Apply folds one push blob from the named worker: any mix of full, delta
// and tombstone frames (the output of Engine.Export, Engine.ExportDelta or
// EngineSnapshot.WriteTo — v1 blobs fold too, as full frames). It returns
// the number of frames applied. On error the frames already folded remain
// applied and the count says how many; the worker should discard its
// cursor and re-bootstrap (ExportDelta does this automatically when its
// own encode fails, and a from-generation-0 delta or full frame always
// replaces whatever state is resident).
func (a *Aggregator) Apply(worker string, r io.Reader) (int, error) {
	// Stamp the pusher BEFORE the piggybacked sweep, so a worker revived
	// at the deadline's edge is never dropped by its own push. No stamps
	// accrue while the GC is unarmed — SetPushDeadline dates those workers
	// itself, with its own clock.
	if a.deadline > 0 {
		now := a.now()
		a.store.Touch(worker, now)
		a.store.SweepWorkers(a.staleAt(now))
	} else {
		a.store.Touch(worker, time.Time{})
	}
	dec := wire.NewDecoder(r)
	frames := 0
	for {
		f, err := dec.DecodeFrame()
		if err == io.EOF {
			return frames, nil
		}
		if err != nil {
			return frames, fmt.Errorf("qlove: aggregator apply worker %q: %w", worker, err)
		}
		if err := a.fold(worker, f); err != nil {
			return frames, fmt.Errorf("qlove: aggregator apply worker %q key %q: %w", worker, f.Key, err)
		}
		frames++
	}
}

// fold applies one decoded frame to the worker's state. Frames may carry
// internal salted sub-stream names ("key\x00<j>", from delta exports of a
// salted or adaptively escalated engine); they are stored per name and
// folded back to logical keys at read time.
func (a *Aggregator) fold(worker string, f wire.Frame) error {
	switch f.Kind {
	case wire.KindTombstone:
		a.store.Drop(worker, f.Key)
		return nil
	case wire.KindFull:
		// A full frame is the worker's complete folded view of the logical
		// key: it replaces the whole salt group, not just the exact name.
		a.store.ReplaceGroup(worker, f.Key, &aggstore.State{Parts: f.Snap.Parts()})
		return nil
	case wire.KindDelta:
		return a.foldDelta(worker, f.Key, f.Delta)
	}
	return fmt.Errorf("unknown frame kind %v", f.Kind)
}

// foldDelta advances one key's resident window by a delta frame: append
// the newly sealed summaries, trim the front to the worker's resident
// count (the summaries that slid out of its window since the cursor), and
// replace the Level-2 sums wholesale. The result is bit-for-bit the full
// capture the worker held at export time. Folds are copy-on-write — a
// fresh State replaces the resident one, which stays immutable for any
// concurrent reader or cached fold still holding it.
func (a *Aggregator) foldDelta(worker, key string, d wire.Delta) error {
	if d.FromGen == 0 {
		// Bootstrap: the frame carries the entire resident window. A
		// bootstrap resets stale state the tombstone stream may not cover
		// (e.g. after a cursor reset): a sub-stream bootstrap retires the
		// BASE state it was escalated out of; a base bootstrap (a collapsed
		// key coming home) retires the whole former salt group.
		st := &aggstore.State{Parts: d.Parts}
		if _, _, salted := splitKey(key); salted {
			a.store.BootstrapSub(worker, key, st)
		} else {
			a.store.ReplaceGroup(worker, key, st)
		}
		return nil
	}
	cur, ok := a.store.Get(worker, key)
	if !ok {
		return fmt.Errorf("delta from generation %d for a key never bootstrapped", d.FromGen)
	}
	if cur.Parts.SealGen != d.FromGen {
		return fmt.Errorf("delta cursor %d does not match resident generation %d", d.FromGen, cur.Parts.SealGen)
	}
	if !core.ConfigEqual(cur.Parts.Config, d.Parts.Config) {
		return fmt.Errorf("delta configuration differs from resident state")
	}
	total := len(cur.Parts.Summaries) + len(d.Parts.Summaries)
	if total < d.Resident {
		return fmt.Errorf("delta needs %d resident summaries, only %d accumulated", d.Resident, total)
	}
	// The resident window is the LAST d.Resident of [resident ++ delta]:
	// anything older slid out of the worker's window since the cursor.
	sums := make([]core.Summary, 0, d.Resident)
	if start := total - d.Resident; start < len(cur.Parts.Summaries) {
		sums = append(sums, cur.Parts.Summaries[start:]...)
		sums = append(sums, d.Parts.Summaries...)
	} else {
		sums = append(sums, d.Parts.Summaries[start-len(cur.Parts.Summaries):]...)
	}
	a.store.Put(worker, key, &aggstore.State{Parts: core.SnapshotParts{
		Config:    cur.Parts.Config,
		Streams:   d.Parts.Streams,
		Sums:      d.Parts.Sums,
		Summaries: sums,
		SealGen:   d.Parts.SealGen,
	}})
	return nil
}

// mergeKey folds one logical key across the given workers: within each
// worker the key's resident streams fold in [base, sub-stream 0, 1, …]
// order (the engine's own salted fold), then the per-worker captures
// merge in ascending worker-ID order. ok is false when no worker holds
// the key.
func (a *Aggregator) mergeKey(base string, live []string) (Snapshot, bool, error) {
	var merged Snapshot
	found := false
	for _, id := range live {
		group := a.store.Group(id, base)
		if len(group) == 0 {
			continue
		}
		var folded Snapshot
		for _, ns := range group {
			sn, err := core.NewSnapshot(ns.State.Parts)
			if err != nil {
				return Snapshot{}, false, fmt.Errorf("qlove: aggregator worker %q key %q: %w", id, ns.Name, err)
			}
			if folded, err = folded.Merge(sn); err != nil {
				return Snapshot{}, false, fmt.Errorf("qlove: aggregator merge key %q: %w", base, err)
			}
		}
		found = true
		var err error
		if merged, err = merged.Merge(folded); err != nil {
			return Snapshot{}, false, fmt.Errorf("qlove: aggregator merge key %q: %w", base, err)
		}
	}
	return merged, found, nil
}

// foldKey answers one logical key from the merged view of the given live
// workers, through the fold cache when enabled.
func (a *Aggregator) foldKey(base string, live []string) (Snapshot, bool, error) {
	if a.cache == nil {
		return a.mergeKey(base, live)
	}
	// The generation is loaded BEFORE folding: a mutation racing the fold
	// bumps it, so the entry we store can only be tagged stale (a spurious
	// refold later), never fresh-for-stale-bits.
	gen := a.store.KeyGen(base)
	if sn, ok, hit := a.cache.get(base, gen, live); hit {
		return sn, ok, nil
	}
	sn, ok, err := a.mergeKey(base, live)
	if err != nil {
		return Snapshot{}, false, err
	}
	a.cache.put(base, gen, live, sn, ok)
	return sn, ok, nil
}

// Query answers one LOGICAL key from the merged cross-worker view: within
// each worker the key's resident streams (base plus any salted
// sub-streams) fold first, in [base, sub-stream 0, 1, …] order — the same
// fold the engine's own salted reads perform — then the per-worker
// captures merge in ascending worker-ID order. ok is false when no worker
// currently holds the key. Unchanged keys answer from the fold cache
// without re-merging.
func (a *Aggregator) Query(key string) (Snapshot, bool, error) {
	return a.foldKey(key, a.liveWorkers())
}

// Snapshot materializes the whole merged view — every key, each merged
// across its workers in ascending worker-ID order — as an EngineSnapshot,
// interchangeable with the batch-mode fold of the workers' full exports.
func (a *Aggregator) Snapshot() (EngineSnapshot, error) {
	live := a.liveWorkers()
	seen := make(map[string]struct{})
	var bases []string
	for _, id := range live {
		for _, name := range a.store.WorkerNames(id) {
			b := logicalKey(name)
			if _, dup := seen[b]; !dup {
				seen[b] = struct{}{}
				bases = append(bases, b)
			}
		}
	}
	sort.Strings(bases)
	out := EngineSnapshot{keys: make(map[string]Snapshot, len(bases))}
	for _, b := range bases {
		sn, ok, err := a.foldKey(b, live)
		if err != nil {
			return EngineSnapshot{}, err
		}
		if ok { // a raced removal may have emptied the key; skip it
			out.keys[b] = sn
		}
	}
	return out, nil
}

// Workers returns how many live workers have pushed state (workers past
// the push deadline are excluded, swept or not).
func (a *Aggregator) Workers() int {
	if a.deadline <= 0 {
		return a.store.WorkerCount()
	}
	return len(a.liveWorkers())
}

// Keys returns the number of distinct LOGICAL keys across all live
// workers (a salted key's sub-streams count once).
func (a *Aggregator) Keys() int {
	if a.deadline <= 0 {
		return a.store.KeyCount()
	}
	live := a.liveWorkers()
	if len(live) == a.store.WorkerCount() {
		// Nothing is stale-but-unswept: the O(1) occupancy counter is exact.
		return a.store.KeyCount()
	}
	seen := make(map[string]struct{})
	for _, id := range live {
		for _, name := range a.store.WorkerNames(id) {
			seen[logicalKey(name)] = struct{}{}
		}
	}
	return len(seen)
}

// DropWorker forgets one worker's state entirely (e.g. a
// decommissioned pod), returning whether it was known.
func (a *Aggregator) DropWorker(worker string) bool {
	return a.store.DropWorker(worker)
}

// KeyList returns the distinct logical keys across all live workers,
// sorted — the key enumeration Snapshot folds, without the folds.
func (a *Aggregator) KeyList() []string {
	seen := make(map[string]struct{})
	var bases []string
	for _, id := range a.liveWorkers() {
		for _, name := range a.store.WorkerNames(id) {
			b := logicalKey(name)
			if _, dup := seen[b]; !dup {
				seen[b] = struct{}{}
				bases = append(bases, b)
			}
		}
	}
	sort.Strings(bases)
	return bases
}

// --- slot export / migration ---

// WorkerBlob is one worker's share of a slot export: a wire blob of
// self-contained bootstrap frames — full frames for base keys,
// from-generation-0 delta frames for salted sub-streams — that any
// aggregator Apply reproduces bit-for-bit, seal-generation cursors
// included, so a migrated slot keeps accepting the workers' subsequent
// delta frames with no re-bootstrap. Blob marshals as base64 in JSON.
type WorkerBlob struct {
	Worker string `json:"worker"`
	Blob   []byte `json:"blob"`
}

// ExportSlots serializes every resident state whose logical key hashes
// into one of the given slots, one blob per worker (swept-but-resident
// stale workers included: migration must move the slot's state, not the
// read-time view of it). Importers replaying a blob into a replica that
// may already hold stale state for these slots must DropSlots there
// first: a sub-stream bootstrap frame retires the base but leaves other
// resident sub-streams of its group in place.
func (a *Aggregator) ExportSlots(slots []int) ([]WorkerBlob, error) {
	want := make(map[int]bool, len(slots))
	for _, s := range slots {
		if s < 0 || s >= Slots {
			return nil, fmt.Errorf("qlove: export slot %d outside [0, %d)", s, Slots)
		}
		want[s] = true
	}
	match := func(base string) bool { return want[SlotOf(base)] }
	var out []WorkerBlob
	for _, id := range a.store.Workers(nil) {
		states := a.store.NamesMatching(id, match)
		if len(states) == 0 {
			continue
		}
		var buf bytes.Buffer
		enc := wire.NewEncoder(&buf)
		for _, ns := range states {
			sn, err := core.NewSnapshot(ns.State.Parts)
			if err != nil {
				return nil, fmt.Errorf("qlove: export slots worker %q key %q: %w", id, ns.Name, err)
			}
			if _, _, salted := splitKey(ns.Name); salted {
				// A full frame would ReplaceGroup away the sibling
				// sub-streams already replayed; a from-generation-0 delta
				// bootstraps exactly this sub-stream, cursor intact.
				d, err := wire.NewDelta(sn, 0)
				if err != nil {
					return nil, fmt.Errorf("qlove: export slots worker %q key %q: %w", id, ns.Name, err)
				}
				if _, err := enc.EncodeDelta(ns.Name, d); err != nil {
					return nil, fmt.Errorf("qlove: export slots worker %q key %q: %w", id, ns.Name, err)
				}
				continue
			}
			if _, err := enc.Encode(ns.Name, sn); err != nil {
				return nil, fmt.Errorf("qlove: export slots worker %q key %q: %w", id, ns.Name, err)
			}
		}
		out = append(out, WorkerBlob{Worker: id, Blob: buf.Bytes()})
	}
	return out, nil
}

// DropSlots removes every resident state whose logical key hashes into
// one of the given slots, across all workers, returning how many internal
// names were dropped. The old owner calls it after a slot migration
// flips; importers call it before replaying an export over possibly-stale
// state.
func (a *Aggregator) DropSlots(slots []int) int {
	want := make(map[int]bool, len(slots))
	for _, s := range slots {
		want[s] = true
	}
	match := func(base string) bool { return want[SlotOf(base)] }
	dropped := 0
	for _, id := range a.store.Workers(nil) {
		for _, ns := range a.store.NamesMatching(id, match) {
			if a.store.Drop(id, ns.Name) {
				dropped++
			}
		}
	}
	return dropped
}

// --- metrics ---

// StoreOpMetric is one store operation's cumulative count and latency
// (instrumented backends only).
type StoreOpMetric struct {
	Op    string `json:"op"`
	Count int64  `json:"count"`
	Nanos int64  `json:"total_nanos"`
}

// StoreMetrics describes the aggregator's state backend.
type StoreMetrics struct {
	Backend            string          `json:"backend"`
	LockWaitReadNanos  int64           `json:"lock_wait_read_nanos"`
	LockWaitWriteNanos int64           `json:"lock_wait_write_nanos"`
	Ops                []StoreOpMetric `json:"ops,omitempty"`
}

// FoldCacheStats counts the read-path fold cache's outcomes.
type FoldCacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// AggregatorMetrics is the aggregator's self-description, served by the
// aggregation service's /metrics endpoint.
type AggregatorMetrics struct {
	Workers   int             `json:"workers"`
	Keys      int             `json:"keys"`
	Store     StoreMetrics    `json:"store"`
	FoldCache *FoldCacheStats `json:"fold_cache,omitempty"`
}

// Metrics snapshots the aggregator's occupancy, backend counters and fold
// cache. Op counts and latencies are present only when the store was
// built with AggregatorConfig.Instrument.
func (a *Aggregator) Metrics() AggregatorMetrics {
	m := AggregatorMetrics{
		Workers: a.Workers(),
		Keys:    a.Keys(),
		Store:   StoreMetrics{Backend: a.store.Kind()},
	}
	if in, ok := a.store.(*aggstore.Instrumented); ok {
		im := in.Metrics()
		m.Store.Ops = make([]StoreOpMetric, len(im.Ops))
		for i, op := range im.Ops {
			m.Store.Ops[i] = StoreOpMetric{Op: op.Op, Count: op.Count, Nanos: op.Nanos}
		}
	}
	if lw, ok := a.store.(aggstore.LockWaiter); ok {
		m.Store.LockWaitReadNanos, m.Store.LockWaitWriteNanos = lw.LockWaitNanos()
	}
	if a.cache != nil {
		m.FoldCache = &FoldCacheStats{Hits: a.cache.hits.Load(), Misses: a.cache.misses.Load()}
	}
	return m
}

// --- fold cache ---

const (
	foldCacheStripes     = 16   // power of two
	foldCacheStripeLimit = 4096 // entries per stripe before wholesale reset
)

// foldCache memoizes merged cross-worker folds per logical key. An entry
// is valid only while BOTH its mutation-generation tag and the live
// worker set it folded over still match — generation covers every state
// change (gen slots may be shared between keys, which over-invalidates),
// and the live set covers worker arrival, departure and push-deadline
// staleness, none of which bump key generations. Entries for keys that
// stop being read are reclaimed by the per-stripe reset when a stripe
// outgrows its limit.
type foldCache struct {
	hits, misses atomic.Int64
	stripes      [foldCacheStripes]struct {
		mu sync.Mutex
		m  map[string]*foldEntry
	}
}

type foldEntry struct {
	gen  uint64
	live []string
	sn   Snapshot
	ok   bool
}

func newFoldCache() *foldCache {
	c := &foldCache{}
	for i := range c.stripes {
		c.stripes[i].m = make(map[string]*foldEntry)
	}
	return c
}

func foldCacheHash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

func sameWorkers(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (c *foldCache) get(base string, gen uint64, live []string) (Snapshot, bool, bool) {
	s := &c.stripes[foldCacheHash(base)&(foldCacheStripes-1)]
	s.mu.Lock()
	e := s.m[base]
	s.mu.Unlock()
	if e == nil || e.gen != gen || !sameWorkers(e.live, live) {
		c.misses.Add(1)
		return Snapshot{}, false, false
	}
	c.hits.Add(1)
	return e.sn, e.ok, true
}

func (c *foldCache) put(base string, gen uint64, live []string, sn Snapshot, ok bool) {
	e := &foldEntry{gen: gen, live: live, sn: sn, ok: ok}
	s := &c.stripes[foldCacheHash(base)&(foldCacheStripes-1)]
	s.mu.Lock()
	if len(s.m) >= foldCacheStripeLimit {
		// Wholesale reset beats per-entry eviction bookkeeping: the live
		// working set refills in one round of misses, and entries for keys
		// nobody reads anymore stop pinning their snapshots.
		s.m = make(map[string]*foldEntry)
	}
	s.m[base] = e
	s.mu.Unlock()
}
