package qlove

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/wire"
)

// Aggregator is the long-running receiving half of the incremental
// distributed plane: it folds worker push streams — full frames for
// bootstrap, delta frames thereafter, tombstones for evicted keys — into a
// resident per-(worker, key) state, and answers queries from the merged
// cross-worker view. It is what cmd/qlove-agg serves over HTTP in -serve
// mode, and the library form any embedding service can use directly.
//
// State is kept per worker because the cross-worker combination is a
// Snapshot.Merge (disjoint sub-streams of one logical key), which must
// happen at read time from each worker's CURRENT window — folding deltas
// into an already-merged state would double-count. Reads merge the workers
// of a key in ascending worker-ID order, so a fixed set of worker states
// answers bit-reproducible estimates regardless of push arrival order;
// each worker's folded state is bit-for-bit the capture a full
// Engine.Export would have shipped at the same instant.
//
// Apply calls for DIFFERENT workers may run concurrently with each other
// and with reads; Apply calls for one worker must be serialized by the
// caller (they are on any real transport: one worker pushes its own
// deltas in order).
type Aggregator struct {
	mu      sync.RWMutex
	workers map[string]*aggWorker
}

type aggWorker struct {
	keys map[string]*aggKeyState
}

// aggKeyState is one worker's folded view of one key: exactly the
// SnapshotParts a full export of that key would carry (Summaries is the
// resident window, SealGen the worker's seal clock).
type aggKeyState struct {
	parts core.SnapshotParts
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{workers: make(map[string]*aggWorker)}
}

// Apply folds one push blob from the named worker: any mix of full, delta
// and tombstone frames (the output of Engine.Export, Engine.ExportDelta or
// EngineSnapshot.WriteTo — v1 blobs fold too, as full frames). It returns
// the number of frames applied. On error the frames already folded remain
// applied and the count says how many; the worker should discard its
// cursor and re-bootstrap (ExportDelta does this automatically when its
// own encode fails, and a from-generation-0 delta or full frame always
// replaces whatever state is resident).
func (a *Aggregator) Apply(worker string, r io.Reader) (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	w := a.workers[worker]
	if w == nil {
		w = &aggWorker{keys: make(map[string]*aggKeyState)}
		a.workers[worker] = w
	}
	dec := wire.NewDecoder(r)
	frames := 0
	for {
		f, err := dec.DecodeFrame()
		if err == io.EOF {
			return frames, nil
		}
		if err != nil {
			return frames, fmt.Errorf("qlove: aggregator apply worker %q: %w", worker, err)
		}
		if err := w.fold(f); err != nil {
			return frames, fmt.Errorf("qlove: aggregator apply worker %q key %q: %w", worker, f.Key, err)
		}
		frames++
	}
}

// fold applies one decoded frame to the worker's state.
func (w *aggWorker) fold(f wire.Frame) error {
	switch f.Kind {
	case wire.KindTombstone:
		delete(w.keys, f.Key)
		return nil
	case wire.KindFull:
		w.keys[f.Key] = &aggKeyState{parts: f.Snap.Parts()}
		return nil
	case wire.KindDelta:
		return w.foldDelta(f.Key, f.Delta)
	}
	return fmt.Errorf("unknown frame kind %v", f.Kind)
}

// foldDelta advances one key's resident window by a delta frame: append
// the newly sealed summaries, trim the front to the worker's resident
// count (the summaries that slid out of its window since the cursor), and
// replace the Level-2 sums wholesale. The result is bit-for-bit the full
// capture the worker held at export time.
func (w *aggWorker) foldDelta(key string, d wire.Delta) error {
	if d.FromGen == 0 {
		// Bootstrap: the frame carries the entire resident window.
		w.keys[key] = &aggKeyState{parts: d.Parts}
		return nil
	}
	st := w.keys[key]
	if st == nil {
		return fmt.Errorf("delta from generation %d for a key never bootstrapped", d.FromGen)
	}
	if st.parts.SealGen != d.FromGen {
		return fmt.Errorf("delta cursor %d does not match resident generation %d", d.FromGen, st.parts.SealGen)
	}
	if !core.ConfigEqual(st.parts.Config, d.Parts.Config) {
		return fmt.Errorf("delta configuration differs from resident state")
	}
	total := append(st.parts.Summaries, d.Parts.Summaries...)
	if len(total) < d.Resident {
		return fmt.Errorf("delta needs %d resident summaries, only %d accumulated", d.Resident, len(total))
	}
	// Trim expired summaries off the front in place, zeroing the vacated
	// tail slots so dropped few-k caches are promptly collectible.
	// (Readers never alias this slice: queries deep-copy under the lock.)
	keep := len(total) - d.Resident
	copy(total, total[keep:])
	for i := d.Resident; i < len(total); i++ {
		total[i] = core.Summary{}
	}
	st.parts.Summaries = total[:d.Resident]
	st.parts.Sums = d.Parts.Sums
	st.parts.Streams = d.Parts.Streams
	st.parts.SealGen = d.Parts.SealGen
	return nil
}

// snapshot rebuilds this state's capture. The summaries slice is copied so
// later folds (which mutate the retained run in place) cannot reach a
// capture already handed out.
func (st *aggKeyState) snapshot() (Snapshot, error) {
	p := st.parts
	p.Summaries = append([]core.Summary(nil), p.Summaries...)
	return core.NewSnapshot(p)
}

// Query answers one key from the merged cross-worker view: the per-worker
// captures of the key, merged in ascending worker-ID order. ok is false
// when no worker currently holds the key.
func (a *Aggregator) Query(key string) (Snapshot, bool, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	var ids []string
	for id, w := range a.workers {
		if _, ok := w.keys[key]; ok {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return Snapshot{}, false, nil
	}
	sort.Strings(ids)
	var merged Snapshot
	for _, id := range ids {
		sn, err := a.workers[id].keys[key].snapshot()
		if err != nil {
			return Snapshot{}, false, fmt.Errorf("qlove: aggregator worker %q key %q: %w", id, key, err)
		}
		if merged, err = merged.Merge(sn); err != nil {
			return Snapshot{}, false, fmt.Errorf("qlove: aggregator merge key %q: %w", key, err)
		}
	}
	return merged, true, nil
}

// Snapshot materializes the whole merged view — every key, each merged
// across its workers in ascending worker-ID order — as an EngineSnapshot,
// interchangeable with the batch-mode fold of the workers' full exports.
func (a *Aggregator) Snapshot() (EngineSnapshot, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	ids := make([]string, 0, len(a.workers))
	for id := range a.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := EngineSnapshot{keys: make(map[string]Snapshot)}
	for _, id := range ids {
		for key, st := range a.workers[id].keys {
			sn, err := st.snapshot()
			if err != nil {
				return EngineSnapshot{}, fmt.Errorf("qlove: aggregator worker %q key %q: %w", id, key, err)
			}
			if prev, ok := out.keys[key]; ok {
				if sn, err = prev.Merge(sn); err != nil {
					return EngineSnapshot{}, fmt.Errorf("qlove: aggregator merge key %q: %w", key, err)
				}
			}
			out.keys[key] = sn
		}
	}
	return out, nil
}

// Workers returns how many workers have pushed state.
func (a *Aggregator) Workers() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.workers)
}

// Keys returns the number of distinct keys across all workers.
func (a *Aggregator) Keys() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	seen := make(map[string]struct{})
	for _, w := range a.workers {
		for k := range w.keys {
			seen[k] = struct{}{}
		}
	}
	return len(seen)
}

// DropWorker forgets one worker's state entirely (e.g. a
// decommissioned pod), returning whether it was known.
func (a *Aggregator) DropWorker(worker string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, ok := a.workers[worker]
	delete(a.workers, worker)
	return ok
}
