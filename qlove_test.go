package qlove

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/workload"
)

func TestPublicQuickstart(t *testing.T) {
	// The README quickstart path: construct, push, read estimates.
	cfg := Config{
		Spec: Window{Size: 4000, Period: 1000},
		Phis: []float64{0.5, 0.9, 0.99, 0.999},
		FewK: true,
	}
	q, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := NewMonitor(q, cfg.Spec)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewNetMon(1)
	var last Result
	results := 0
	for i := 0; i < 20000; i++ {
		if res, ready := mon.Push(gen.Next()); ready {
			last = res
			results++
		}
	}
	if results != 17 { // (20000-4000)/1000 + 1
		t.Fatalf("results = %d, want 17", results)
	}
	if len(last.Estimates) != 4 {
		t.Fatalf("estimates = %v", last.Estimates)
	}
	// Median of NetMon ≈ 798; sanity band.
	if last.Estimates[0] < 700 || last.Estimates[0] > 900 {
		t.Fatalf("median = %v, want ≈ 798", last.Estimates[0])
	}
	// Monotone quantiles.
	for i := 1; i < 4; i++ {
		if last.Estimates[i] < last.Estimates[i-1] {
			t.Fatalf("non-monotone estimates %v", last.Estimates)
		}
	}
	if mon.Seen() != 20000 || mon.Evaluations() != 17 {
		t.Fatalf("seen=%d evals=%d", mon.Seen(), mon.Evaluations())
	}
}

func TestMonitorMatchesRun(t *testing.T) {
	// Push-based Monitor must produce byte-identical results to the batch
	// runner for the same policy type.
	spec := Window{Size: 300, Period: 100}
	phis := []float64{0.5, 0.99}
	rng := rand.New(rand.NewSource(2))
	data := make([]float64, 1200)
	for i := range data {
		data[i] = math.Floor(rng.Float64() * 1000)
	}
	p1, _ := NewExact(spec, phis)
	batch, _, err := Run(p1, spec, data)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := NewExact(spec, phis)
	mon, _ := NewMonitor(p2, spec)
	var pushed []Result
	for _, v := range data {
		if res, ok := mon.Push(v); ok {
			pushed = append(pushed, res)
		}
	}
	if len(pushed) != len(batch) {
		t.Fatalf("pushed %d results, batch %d", len(pushed), len(batch))
	}
	for i := range batch {
		for j := range phis {
			if pushed[i].Estimates[j] != batch[i].Estimates[j] {
				t.Fatalf("eval %d phi %d: pushed %v, batch %v",
					i, j, pushed[i].Estimates[j], batch[i].Estimates[j])
			}
		}
	}
}

func TestMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(nil, Window{Size: 10, Period: 5}); err == nil {
		t.Fatal("nil policy accepted")
	}
	p, _ := NewExact(Window{Size: 10, Period: 5}, []float64{0.5})
	if _, err := NewMonitor(p, Window{Size: 3, Period: 5}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestBaselineConstructors(t *testing.T) {
	spec := Window{Size: 100, Period: 10}
	phis := []float64{0.5, 0.99}
	for name, mk := range map[string]func() (Policy, error){
		"exact":  func() (Policy, error) { return NewExact(spec, phis) },
		"cmqs":   func() (Policy, error) { return NewCMQS(spec, phis, DefaultEpsilon) },
		"am":     func() (Policy, error) { return NewAM(spec, phis, DefaultEpsilon) },
		"random": func() (Policy, error) { return NewRandom(spec, phis, DefaultEpsilon, 1) },
		"moment": func() (Policy, error) { return NewMoment(spec, phis, DefaultMomentK) },
	} {
		p, err := mk()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := 0; i < 100; i++ {
			p.Observe(float64(i))
		}
		res := p.Result()
		if len(res) != 2 {
			t.Fatalf("%s: result %v", name, res)
		}
		if res[0] <= 0 || res[1] < res[0] {
			t.Fatalf("%s: implausible estimates %v", name, res)
		}
	}
}

func TestRegistryHasAllPolicies(t *testing.T) {
	r := Registry()
	spec := Window{Size: 100, Period: 10}
	phis := []float64{0.5}
	for _, name := range []string{"qlove", "qlove-fewk", "exact", "cmqs", "am", "random", "moment", "gk"} {
		p, err := r.New(name, spec, phis)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p == nil {
			t.Fatalf("%s: nil policy", name)
		}
	}
	if _, err := r.New("nope", spec, phis); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestExactQuantiles(t *testing.T) {
	got := ExactQuantiles([]float64{4, 1, 3, 2}, []float64{0.5, 1})
	if got[0] != 2 || got[1] != 4 {
		t.Fatalf("ExactQuantiles = %v", got)
	}
}

func TestFeedThroughputPositive(t *testing.T) {
	spec := Window{Size: 1000, Period: 100}
	p, _ := New(Config{Spec: spec, Phis: []float64{0.5}})
	data := workload.Generate(workload.NewUniform(3, 0, 1), 10000)
	st, err := Feed(p, spec, data)
	if err != nil {
		t.Fatal(err)
	}
	if st.ThroughputMevS() <= 0 {
		t.Fatal("throughput not measured")
	}
	if st.Elements != 10000 {
		t.Fatalf("elements = %d", st.Elements)
	}
}
