package qlove

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// AdaptConfig switches the Engine into ADAPTIVE routing: an
// occupancy-driven controller watches the per-shard stats plane at a
// configurable cadence and rebalances the key space live —
//
//   - a key dominating a hot shard ESCALATES to salted sub-stream routing
//     (the per-key form of RouteSalt: pushes spread over Salt sub-streams,
//     reads merge them), and DE-ESCALATES back to one stream when its
//     traffic subsides, eventually collapsing to plain hash routing once
//     the extra sub-streams expire;
//   - whole cold keys MIGRATE between shards to flatten Zipf imbalance
//     that salting alone cannot reach.
//
// Both act through ordered control ops on the source and destination
// shard queues (park at the destination → flip the route → hand off the
// operator → replay), so per-key delivery order and seal generations are
// never violated: a migrated key's stream, and therefore its snapshots
// and delta exports, is bit-identical to the same key on an unmigrated
// engine. AdaptConfig cannot be combined with the static engine-wide
// RouteSalt (the two salting disciplines would fight over the same
// sub-stream namespace).
//
// The zero value of every threshold selects a sane default; a zero
// Interval disables the background controller, leaving rebalancing to
// explicit Engine.Rebalance calls (how deterministic tests and the bench
// drive it).
type AdaptConfig struct {
	// Interval is the background controller cadence. 0 = no background
	// goroutine; call Engine.Rebalance explicitly.
	Interval time.Duration
	// Salt is the sub-stream fan an escalated key spreads over.
	// Default 8; range [2, 256].
	Salt int
	// HotShardFactor flags a shard as hot when its delivered-batch count
	// over the last controller pass exceeds factor × the per-shard mean
	// (see EngineStats.HotShards; with 2 shards it must be < 2 to ever
	// fire). Default 1.5.
	HotShardFactor float64
	// HotKeyFrac decides WHICH key on a hot shard escalates: the shard's
	// top key must carry at least this fraction of the shard's
	// last-interval deliveries (otherwise the imbalance is not one key's
	// fault and migration, not salting, is the fix). Default 0.3.
	HotKeyFrac float64
	// CoolFrac de-escalates an escalated key once its share of the
	// engine's last-interval deliveries falls below this fraction for
	// CoolPasses consecutive passes. Default 0.05.
	CoolFrac float64
	// CoolPasses is how many consecutive cool passes a key must string
	// together before de-escalating (hysteresis against flapping).
	// Default 2.
	CoolPasses int
	// MinBatches is the minimum engine-wide deliveries in a pass for the
	// controller to act at all — below it the sample is noise. Default 64.
	MinBatches uint64
	// MaxMoves caps whole-key migrations per pass. Default 4.
	MaxMoves int
	// TopKeys is how many keys per shard the occupancy sample attributes
	// individually. Default 8.
	TopKeys int
}

// withDefaults fills zero fields and validates.
func (c AdaptConfig) withDefaults() (AdaptConfig, error) {
	if c.Salt == 0 {
		c.Salt = 8
	}
	if c.Salt < 2 || c.Salt > 256 {
		return c, fmt.Errorf("qlove: AdaptConfig.Salt %d outside [2, 256]", c.Salt)
	}
	if c.HotShardFactor == 0 {
		c.HotShardFactor = 1.5
	}
	if c.HotKeyFrac == 0 {
		c.HotKeyFrac = 0.3
	}
	if c.CoolFrac == 0 {
		c.CoolFrac = 0.05
	}
	if c.CoolPasses == 0 {
		c.CoolPasses = 2
	}
	if c.MinBatches == 0 {
		c.MinBatches = 64
	}
	if c.MaxMoves == 0 {
		c.MaxMoves = 4
	}
	if c.TopKeys == 0 {
		c.TopKeys = 8
	}
	if c.Interval < 0 || c.HotShardFactor < 1 || c.HotKeyFrac < 0 || c.HotKeyFrac > 1 ||
		c.CoolFrac < 0 || c.CoolFrac > 1 || c.CoolPasses < 1 || c.MaxMoves < 0 || c.TopKeys < 1 {
		return c, fmt.Errorf("qlove: AdaptConfig out of range: %+v", c)
	}
	return c, nil
}

// AdaptSample is one controller pass's observation, recorded whether or
// not the pass acted — the skew-over-time series the bench ships.
type AdaptSample struct {
	// At is the engine clock at the pass.
	At time.Time
	// Deliveries is the engine-wide batches delivered since the previous
	// pass.
	Deliveries uint64
	// Skew is the cumulative shard skew (EngineStats.Skew) at the pass.
	Skew float64
	// IntervalSkew is the skew of just the last interval's deliveries —
	// the signal the controller actually acts on (cumulative skew cannot
	// recover quickly from a bad start; interval skew shows the current
	// routing's balance).
	IntervalSkew float64
	// Escalated and Pinned count keys currently escalated / pinned.
	Escalated, Pinned int
	// Events is how many routing actions this pass took.
	Events int
}

// adaptLogCap bounds the retained event and sample logs.
const adaptLogCap = 4096

// escState tracks one escalated key's cooling hysteresis.
type escState struct {
	salt int // current fan (1 = de-escalated, awaiting collapse)
	cool int // consecutive passes below CoolFrac
}

// adaptState is the controller: configuration, per-shard delivery marks,
// per-key escalation state, and the bounded event/sample logs. mu
// serializes passes (the background loop and explicit Rebalance calls).
type adaptState struct {
	cfg AdaptConfig

	mu            sync.Mutex
	lastDelivered []uint64
	esc           map[string]*escState
	pinned        map[string]int
	events        []RouteEvent
	samples       []AdaptSample
	seq           uint64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// startAdapt launches the background controller loop (Interval > 0).
func (e *Engine) startAdapt() {
	a := e.adapt
	if a == nil || a.cfg.Interval <= 0 {
		return
	}
	a.stop = make(chan struct{})
	a.done = make(chan struct{})
	go func() {
		defer close(a.done)
		t := time.NewTicker(a.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-a.stop:
				return
			case <-t.C:
				e.Rebalance()
			}
		}
	}()
}

// stopAdapt halts the background loop. Close calls it BEFORE taking the
// engine write lock — a pass in flight may itself need that lock for a
// cutover, so stopping afterwards would deadlock.
func (e *Engine) stopAdapt() {
	a := e.adapt
	if a == nil || a.stop == nil {
		return
	}
	a.stopOnce.Do(func() {
		close(a.stop)
		<-a.done
	})
}

// RouteEvents returns a copy of the controller's event log (the most
// recent adaptLogCap events). Nil on non-adaptive engines.
func (e *Engine) RouteEvents() []RouteEvent {
	a := e.adapt
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]RouteEvent(nil), a.events...)
}

// AdaptSamples returns a copy of the skew-over-time series (one sample
// per controller pass, most recent adaptLogCap). Nil on non-adaptive
// engines.
func (e *Engine) AdaptSamples() []AdaptSample {
	a := e.adapt
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]AdaptSample(nil), a.samples...)
}

// Rebalance runs one controller pass: sample the stats plane, de-escalate
// or collapse cooled keys, escalate the dominant key of each hot shard,
// and migrate residual cold keys off still-hot shards. Returns the
// routing actions taken, in order. Safe to call concurrently with pushes
// and with the background loop (passes serialize); a no-op returning nil
// on non-adaptive or closed engines. Deterministic drivers (tests, the
// bench's -adaptive storm) quiesce ingestion, then call Rebalance at
// their own cadence.
func (e *Engine) Rebalance() []RouteEvent {
	a := e.adapt
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return nil
	}
	return e.rebalance()
}

// rebalance is one pass; the caller holds a.mu.
func (e *Engine) rebalance() []RouteEvent {
	a := e.adapt
	st := e.Stats()
	n := len(st.Shards)
	if len(a.lastDelivered) != n {
		a.lastDelivered = make([]uint64, n)
	}
	deltas := make([]float64, n)
	var total float64
	for i, s := range st.Shards {
		d := s.DeliveredBatches - a.lastDelivered[i]
		a.lastDelivered[i] = s.DeliveredBatches
		deltas[i] = float64(d)
		total += float64(d)
	}
	sample := AdaptSample{
		At:           e.now(),
		Deliveries:   uint64(total),
		Skew:         st.Skew(),
		IntervalSkew: intervalSkew(deltas, total),
		Escalated:    len(a.esc),
		Pinned:       len(a.pinned),
	}
	var events []RouteEvent
	defer func() {
		sample.Events = len(events)
		a.samples = appendBounded(a.samples, sample)
		for i := range events {
			a.seq++
			events[i].Seq = a.seq
			events[i].At = sample.At
			a.events = appendBounded(a.events, events[i])
		}
	}()
	if n < 1 || total < float64(a.cfg.MinBatches) {
		return nil
	}
	loads, ok := e.sampleKeyLoads(a.cfg.TopKeys)
	if !ok {
		return nil
	}
	mean := total / float64(n)

	// (1) Cooling: de-escalate keys whose engine-wide share stayed below
	// CoolFrac for CoolPasses passes; collapse drained de-escalated keys;
	// re-escalate a de-escalated key whose traffic came back. Iterated in
	// sorted key order so event sequences are deterministic.
	byBase := make(map[string]float64)
	for _, shardLoads := range loads {
		for _, kl := range shardLoads {
			byBase[logicalKey(kl.Key)] += float64(kl.Batches)
		}
	}
	escKeys := make([]string, 0, len(a.esc))
	for k := range a.esc {
		escKeys = append(escKeys, k)
	}
	sort.Strings(escKeys)
	for _, base := range escKeys {
		es := a.esc[base]
		load := byBase[base]
		if es.salt > 1 {
			if load < a.cfg.CoolFrac*total {
				es.cool++
				if es.cool >= a.cfg.CoolPasses {
					if ev, ok := e.deescalateKey(base); ok {
						es.salt, es.cool = 1, 0
						events = append(events, ev)
					}
				}
			} else {
				es.cool = 0
			}
			continue
		}
		// De-escalated: surge back, or drain out.
		if load > a.cfg.HotKeyFrac*mean {
			if ev, ok := e.escalateKey(base, a.cfg.Salt); ok {
				es.salt, es.cool = a.cfg.Salt, 0
				events = append(events, ev)
			}
			continue
		}
		if ov := e.override(base); ov != nil {
			if ev, ok := e.collapseKey(base, ov.maxSalt); ok {
				delete(a.esc, base)
				events = append(events, ev)
			}
		}
	}

	// (2) Escalation: on each hot shard, salt the key dominating it.
	for i := range deltas {
		if deltas[i] <= a.cfg.HotShardFactor*mean {
			continue
		}
		for _, kl := range loads[i] {
			if _, _, salted := splitKey(kl.Key); salted {
				continue // already an escalated key's sub-stream
			}
			if _, ok := a.esc[kl.Key]; ok {
				continue
			}
			if float64(kl.Batches) < a.cfg.HotKeyFrac*deltas[i] {
				break // loads are sorted: no later key dominates either
			}
			if ev, ok := e.escalateKey(kl.Key, a.cfg.Salt); ok {
				a.esc[kl.Key] = &escState{salt: a.cfg.Salt}
				delete(a.pinned, kl.Key)
				events = append(events, ev)
				deltas[i] -= float64(kl.Batches)
			}
			break
		}
	}

	// (3) Migration: move modest whole keys off still-hot shards onto the
	// coldest one — the flattening salting cannot provide when imbalance
	// comes from hash collisions rather than one dominant key.
	moves := 0
	for i := range deltas {
		if moves >= a.cfg.MaxMoves {
			break
		}
		if deltas[i] <= a.cfg.HotShardFactor*mean {
			continue
		}
		for _, kl := range loads[i] {
			if moves >= a.cfg.MaxMoves || deltas[i] <= mean {
				break
			}
			if _, _, salted := splitKey(kl.Key); salted {
				continue
			}
			if _, ok := a.esc[kl.Key]; ok {
				continue
			}
			load := float64(kl.Batches)
			if load >= a.cfg.HotKeyFrac*deltas[i] {
				continue // dominant keys escalate instead
			}
			dst := coldest(deltas)
			if dst == i || deltas[dst]+load >= deltas[i]-load {
				continue // moving would not improve balance
			}
			if ev, ok := e.migrateKey(kl.Key, dst); ok {
				if dst == e.shardIndex(kl.Key) {
					delete(a.pinned, kl.Key)
				} else {
					a.pinned[kl.Key] = dst
				}
				events = append(events, ev)
				deltas[i] -= load
				deltas[dst] += load
				moves++
			}
		}
	}
	return events
}

// sampleKeyLoads gathers every shard's top-key delivery attribution since
// the previous sample (one ctlSample op per shard; sampling resets the
// per-key counters). False when the engine closed.
func (e *Engine) sampleKeyLoads(topN int) ([][]KeyLoad, bool) {
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return nil, false
	}
	chans := make([]chan engineCtlResp, len(e.shards))
	for i, s := range e.shards {
		chans[i] = make(chan engineCtlResp, 1)
		s.in <- engineMsg{ctl: &engineCtl{op: ctlSample, n: topN, resp: chans[i]}}
	}
	e.mu.RUnlock()
	loads := make([][]KeyLoad, len(chans))
	for i, ch := range chans {
		loads[i] = (<-ch).loads
	}
	return loads, true
}

// intervalSkew is EngineStats.Skew over one interval's deltas.
func intervalSkew(deltas []float64, total float64) float64 {
	if total == 0 || len(deltas) == 0 {
		return 1
	}
	max := 0.0
	for _, d := range deltas {
		if d > max {
			max = d
		}
	}
	return max * float64(len(deltas)) / total
}

// coldest returns the index of the smallest delta (lowest index wins ties,
// keeping passes deterministic).
func coldest(deltas []float64) int {
	idx := 0
	for i, d := range deltas {
		if d < deltas[idx] {
			idx = i
		}
	}
	return idx
}

// appendBounded appends keeping at most adaptLogCap entries.
func appendBounded[T any](log []T, v T) []T {
	log = append(log, v)
	if len(log) > adaptLogCap {
		log = log[len(log)-adaptLogCap:]
	}
	return log
}
