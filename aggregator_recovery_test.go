package qlove

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/workload"
)

// reopenDisk closes a disk-backed aggregator and reopens its directory,
// returning the recovered instance.
func reopenDisk(t *testing.T, a *Aggregator, cfg AggregatorConfig) *Aggregator {
	t.Helper()
	if a != nil {
		if err := a.Close(); err != nil {
			t.Fatal(err)
		}
	}
	re, err := NewAggregatorConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { re.Close() })
	return re
}

// TestAggregatorDiskRecoveryCursorResume is the library-level restart
// contract: a disk-backed aggregator reopened mid delta chain holds state
// bit-identical to an uninterrupted in-memory reference, and — because the
// persisted states carry the workers' seal generations — the NEXT delta in
// each worker's chain folds cleanly against the recovered state, no
// re-bootstrap needed.
func TestAggregatorDiskRecoveryCursorResume(t *testing.T) {
	cfg := Config{Spec: Window{Size: 256, Period: 64}, Phis: []float64{0.5, 0.9, 0.99}, FewK: true}
	const workers = 3

	// Pre-build each worker's push sequence: bootstrap + 5 delta blobs.
	blobs := make([][][]byte, workers)
	for w := 0; w < workers; w++ {
		eng, err := NewEngine(EngineConfig{Config: cfg, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		done := drainResults(eng)
		gen := workload.NewNetMon(int64(60 + w))
		var cur ExportCursor
		for round := 0; round < 6; round++ {
			pushAll(t, eng, map[string][]float64{
				"a": workload.Generate(gen, 200),
				"b": workload.Generate(gen, 120),
			})
			var buf bytes.Buffer
			if _, err := eng.ExportDelta(&buf, &cur); err != nil {
				t.Fatal(err)
			}
			blobs[w] = append(blobs[w], buf.Bytes())
		}
		eng.Close()
		<-done
	}
	worker := func(w int) string { return []string{"wa", "wb", "wc"}[w] }

	dir := t.TempDir()
	dcfg := AggregatorConfig{Store: "disk", Dir: dir}
	disk, err := NewAggregatorConfig(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := NewAggregator()

	// Interrupted run: apply the first 3 blobs of each chain, then reopen
	// (the Close-less abandon shape is covered by the aggstore-level crash
	// tests and the subprocess kill -9 test; FsyncAlways makes them equal).
	for w := 0; w < workers; w++ {
		for _, blob := range blobs[w][:3] {
			if _, err := disk.Apply(worker(w), bytes.NewReader(blob)); err != nil {
				t.Fatal(err)
			}
		}
	}
	disk = reopenDisk(t, disk, dcfg)

	// Resume each worker's EXISTING delta chain on the recovered state.
	for w := 0; w < workers; w++ {
		for _, blob := range blobs[w][3:] {
			if n, err := disk.Apply(worker(w), bytes.NewReader(blob)); err != nil {
				t.Fatalf("delta resume after restart rejected (applied %d): %v", n, err)
			}
		}
		for _, blob := range blobs[w] {
			if _, err := ref.Apply(worker(w), bytes.NewReader(blob)); err != nil {
				t.Fatal(err)
			}
		}
	}

	refSnap, err := ref.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	gotSnap, err := disk.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var want, got bytes.Buffer
	if _, err := refSnap.WriteTo(&want); err != nil {
		t.Fatal(err)
	}
	if _, err := gotSnap.WriteTo(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("recovered+resumed view diverges from uninterrupted reference (%d vs %d bytes)",
			got.Len(), want.Len())
	}
	if disk.Workers() != workers {
		t.Fatalf("recovered %d workers, want %d", disk.Workers(), workers)
	}

	// A second restart with NO resumed pushes still answers identically.
	disk = reopenDisk(t, disk, dcfg)
	gotSnap, err = disk.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	got.Reset()
	if _, err := gotSnap.WriteTo(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("idle restart changed the recovered view")
	}
	if err := disk.DurabilityErr(); err != nil {
		t.Fatal(err)
	}
}

// TestAggregatorDiskRecoveryPushDeadline pins that worker-liveness state
// (the per-worker last-push stamps driving the push-deadline GC) survives
// a restart: a worker already silent before the crash is still the one
// the recovered aggregator retires.
func TestAggregatorDiskRecoveryPushDeadline(t *testing.T) {
	cfg := Config{Spec: Window{Size: 256, Period: 64}, Phis: []float64{0.5}}
	mkBlob := func(seed int64, key string) []byte {
		eng, err := NewEngine(EngineConfig{Config: cfg, Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		done := drainResults(eng)
		pushAll(t, eng, map[string][]float64{key: workload.Generate(workload.NewNetMon(seed), 256)})
		eng.Close()
		<-done
		var buf bytes.Buffer
		if _, err := eng.Export(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	dir := t.TempDir()
	dcfg := AggregatorConfig{Store: "disk", Dir: dir}
	agg, err := NewAggregatorConfig(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock(time.Unix(6_000_000, 0))
	agg.SetPushDeadline(time.Minute, clk.now)
	if _, err := agg.Apply("silent", bytes.NewReader(mkBlob(1, "k-silent"))); err != nil {
		t.Fatal(err)
	}
	clk.advance(45 * time.Second)
	if _, err := agg.Apply("active", bytes.NewReader(mkBlob(2, "k-active"))); err != nil {
		t.Fatal(err)
	}

	// Restart. The recovered stamps preserve the ORDER of last pushes, so
	// re-arming with a clock 45s past the active push puts only the silent
	// worker past the minute deadline.
	agg = reopenDisk(t, agg, dcfg)
	agg.SetPushDeadlineFromStored(time.Minute, clk.now)
	clk.advance(45 * time.Second)
	if agg.Workers() != 1 {
		t.Fatalf("recovered aggregator sees %d live workers, want 1 (silent retired)", agg.Workers())
	}
	if _, ok, _ := agg.Query("k-silent"); ok {
		t.Fatal("silent worker's key served after recovered deadline passed")
	}
	if _, ok, _ := agg.Query("k-active"); !ok {
		t.Fatal("active worker's key lost across restart")
	}
	if n := agg.Sweep(); n != 1 {
		t.Fatalf("recovered sweep dropped %d workers, want 1", n)
	}
}
