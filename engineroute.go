package qlove

import (
	"sync/atomic"
	"time"
)

// This file is the Engine's per-key routing plane: a copy-on-write route
// table layered over the static hash dispatch, consulted on every Push,
// plus the ordered migration protocol that moves a live stream between
// shards without violating per-key delivery order or seal generations.
// The adaptive controller (engineadapt.go) drives it; the mechanisms here
// are independent of any policy and usable one key at a time.

// routeOverride is one key's routing decision. Exactly one of the two
// dimensions is active:
//
//   - salt >= 1: the key is ESCALATED — pushes spread across salted
//     sub-streams ("key\x00<j>"), each hash-routed on its own. salt == 1
//     is the de-escalated holding state: every push goes to sub-stream 0
//     (so the key is one stream again and keeps its history) while the
//     older sub-streams drain toward expiry; maxSalt remembers the widest
//     fan ever used so reads know how many sub-streams to fold.
//   - salt == 0, shard >= 0: the key is PINNED to a specific shard
//     (migrated off its hash home to flatten Zipf imbalance).
//
// ctr is the key's private push counter, reset at every escalation flip,
// so sub-stream assignment after a flip is deterministic: the i-th push
// after the flip goes to sub-stream i mod salt.
type routeOverride struct {
	salt    int
	maxSalt int
	shard   int
	ctr     atomic.Uint64
}

// routeTable is an immutable key→override map. Mutations copy the map and
// swap the pointer under e.mu (write-locked), so route() reads it with one
// atomic load and no locks on the push hot path.
type routeTable struct {
	m map[string]*routeOverride
}

// override returns the key's current route override, nil when the key
// routes by hash. Lock-free; safe from any goroutine.
func (e *Engine) override(base string) *routeOverride {
	if rt := e.routes.Load(); rt != nil {
		return rt.m[base]
	}
	return nil
}

// storeRoutesLocked applies mut to a copy of the route table and publishes
// it. Callers hold e.mu write-locked: because push holds e.mu.RLock across
// its route read AND enqueue, acquiring the write lock is a barrier — every
// push that read the old table has already enqueued on its old shard, so a
// handoff enqueued after the flip is ordered behind all old-route batches.
func (e *Engine) storeRoutesLocked(mut func(map[string]*routeOverride)) {
	var old map[string]*routeOverride
	if rt := e.routes.Load(); rt != nil {
		old = rt.m
	}
	m := make(map[string]*routeOverride, len(old)+1)
	for k, v := range old {
		m[k] = v
	}
	mut(m)
	e.routes.Store(&routeTable{m: m})
}

// updateRoutes is a route flip with no stream movement (de-escalation,
// dropping a stale override). False when the engine is closed.
func (e *Engine) updateRoutes(mut func(map[string]*routeOverride)) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return false
	}
	e.storeRoutesLocked(mut)
	return true
}

// sendCtl enqueues one control op and waits for its response; false when
// the engine closed first. The RLock spans only the enqueue (channels are
// closed exclusively under the write lock, so the send cannot panic); the
// shard drains its queue until Close, so the response always arrives.
func (e *Engine) sendCtl(s *engineShard, ctl *engineCtl) (engineCtlResp, bool) {
	ctl.resp = make(chan engineCtlResp, 1)
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return engineCtlResp{}, false
	}
	s.in <- engineMsg{ctl: ctl}
	e.mu.RUnlock()
	return <-ctl.resp, true
}

// streamExists reports whether an internal key name is live (not parking)
// on its routed shard.
func (e *Engine) streamExists(name string) bool {
	r, ok := e.sendCtl(e.locateShard(name), &engineCtl{op: ctlExists, key: name})
	return ok && r.ok
}

// moveStream relocates one internal stream: srcName on src becomes dstName
// on dst, with mut flipping the route table at the cutover point. The
// ordering argument, step by step:
//
//  1. A parking entry is created at dst under dstName (ctlPrepare rides
//     dst's queue, so by the time it acks, dst will park — not deliver —
//     any batch that arrives under the new name).
//  2. The route flips under e.mu write-locked. Taking the write lock is a
//     barrier: every in-flight push that read the OLD route has finished
//     enqueueing on src (pushes hold the read lock across route+enqueue).
//     All later pushes route to dst and park behind step 1.
//  3. ctlHandoff rides src's queue BEHIND every old-route batch, so the
//     operator leaves src having observed its entire pre-flip history, in
//     order. The entry is detached, never recycled.
//  4. ctlInstall rides dst's queue, attaches the operator under dstName
//     (rebuilding its emit closure against dst's counters) and replays the
//     parked batches in arrival order. Seal generations continue from the
//     handed-off operator — the stream never restarts.
//
// Steps 2–4 hold e.mu write-locked throughout: pushes stall for the two
// control round-trips (migrations are rare; queues are bounded), and in
// exchange the protocol is atomic with respect to Close — no path can
// strand a detached operator. Returns the batches the handed-off stream
// had observed (0 when srcName was not resident, e.g. evicted by TTL
// between the decision and the handoff — the stream then simply restarts
// fresh at dst, never with stale seals) and whether the move ran.
func (e *Engine) moveStream(src *engineShard, srcName string, dst *engineShard, dstName string, mut func(map[string]*routeOverride)) (uint64, bool) {
	if r, ok := e.sendCtl(dst, &engineCtl{op: ctlPrepare, key: dstName}); !ok || !r.ok {
		return 0, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		// The parking entry (necessarily empty: the route never flipped)
		// is discarded by the shard's exit drain.
		return 0, false
	}
	e.storeRoutesLocked(mut)
	hr := make(chan engineCtlResp, 1)
	src.in <- engineMsg{ctl: &engineCtl{op: ctlHandoff, key: srcName, resp: hr}}
	h := <-hr
	var ent *keyEntry
	var batches uint64
	if h.ok {
		ent = h.ent
		batches = ent.batches
	}
	ir := make(chan engineCtlResp, 1)
	dst.in <- engineMsg{ctl: &engineCtl{op: ctlInstall, key: dstName, ent: ent, resp: ir}}
	<-ir
	return batches, true
}

// escalateKey switches a key to salted sub-stream routing. A fresh
// escalation migrates the key's existing operator to sub-stream 0 (its
// history and seal generations continue there; merged reads never see a
// discontinuity); a re-escalation of a currently de-escalated key only
// widens the route again, since sub-stream 0 already carries the live
// stream. Returns the event and whether the escalation ran.
func (e *Engine) escalateKey(base string, salt int) (RouteEvent, bool) {
	ev := RouteEvent{Kind: RouteEscalate, Key: base, Salt: salt}
	if cur := e.override(base); cur != nil && cur.salt >= 1 {
		maxSalt := cur.maxSalt
		if salt > maxSalt {
			maxSalt = salt
		}
		ov := &routeOverride{salt: salt, maxSalt: maxSalt, shard: -1}
		if !e.updateRoutes(func(m map[string]*routeOverride) { m[base] = ov }) {
			return RouteEvent{}, false
		}
		ev.FromShard, ev.ToShard = -1, -1
		return ev, true
	}
	src := e.locateShard(base)
	sub0 := saltedKey(base, 0)
	dst := e.shardOf(sub0)
	ov := &routeOverride{salt: salt, maxSalt: salt, shard: -1}
	n, ok := e.moveStream(src, base, dst, sub0, func(m map[string]*routeOverride) { m[base] = ov })
	if !ok {
		return RouteEvent{}, false
	}
	ev.FromShard, ev.ToShard, ev.KeyBatches = e.indexOf(src), e.indexOf(dst), n
	return ev, true
}

// deescalateKey narrows an escalated key back to one stream: every new
// push routes to sub-stream 0, the older sub-streams stop receiving and
// age toward TTL expiry. No stream moves — order within each sub-stream
// is already independent, so narrowing needs no barrier beyond the flip.
func (e *Engine) deescalateKey(base string) (RouteEvent, bool) {
	cur := e.override(base)
	if cur == nil || cur.salt <= 1 {
		return RouteEvent{}, false
	}
	ov := &routeOverride{salt: 1, maxSalt: cur.maxSalt, shard: -1}
	if !e.updateRoutes(func(m map[string]*routeOverride) { m[base] = ov }) {
		return RouteEvent{}, false
	}
	return RouteEvent{Kind: RouteDeescalate, Key: base, Salt: 1, FromShard: -1, ToShard: -1}, true
}

// collapseKey retires a de-escalated key's override once its fan has
// drained: when no sub-stream but 0 is resident (TTL expiry has reclaimed
// them) and the base name is absent, sub-stream 0 migrates home to the
// base name and the override disappears — the key is an ordinary
// hash-routed stream again, history intact. False while any older
// sub-stream is still resident.
func (e *Engine) collapseKey(base string, maxSalt int) (RouteEvent, bool) {
	cur := e.override(base)
	if cur == nil || cur.salt != 1 {
		return RouteEvent{}, false
	}
	for j := 1; j < maxSalt; j++ {
		if e.streamExists(saltedKey(base, byte(j))) {
			return RouteEvent{}, false
		}
	}
	if e.streamExists(base) {
		return RouteEvent{}, false
	}
	ev := RouteEvent{Kind: RouteCollapse, Key: base, Salt: 0}
	sub0 := saltedKey(base, 0)
	dst := e.shardOf(base)
	if !e.streamExists(sub0) {
		// Everything expired; just drop the override.
		if !e.updateRoutes(func(m map[string]*routeOverride) { delete(m, base) }) {
			return RouteEvent{}, false
		}
		ev.FromShard, ev.ToShard = -1, -1
		return ev, true
	}
	src := e.locateShard(sub0)
	n, ok := e.moveStream(src, sub0, dst, base, func(m map[string]*routeOverride) { delete(m, base) })
	if !ok {
		return RouteEvent{}, false
	}
	ev.FromShard, ev.ToShard, ev.KeyBatches = e.indexOf(src), e.indexOf(dst), n
	return ev, true
}

// migrateKey pins a whole (unescalated) key to a specific shard, moving
// its live stream there. Pinning back to the hash home removes the
// override instead of storing a redundant pin.
func (e *Engine) migrateKey(base string, dstIdx int) (RouteEvent, bool) {
	if cur := e.override(base); cur != nil && cur.salt >= 1 {
		return RouteEvent{}, false // escalated keys spread; they don't pin
	}
	src := e.locateShard(base)
	dst := e.shards[dstIdx]
	if src == dst {
		return RouteEvent{}, false
	}
	home := e.shardIndex(base)
	mut := func(m map[string]*routeOverride) {
		if dstIdx == home {
			delete(m, base)
		} else {
			m[base] = &routeOverride{salt: 0, shard: dstIdx}
		}
	}
	n, ok := e.moveStream(src, base, dst, base, mut)
	if !ok {
		return RouteEvent{}, false
	}
	return RouteEvent{
		Kind: RouteMigrate, Key: base,
		FromShard: e.indexOf(src), ToShard: dstIdx, KeyBatches: n,
	}, true
}

// indexOf maps a shard pointer back to its index.
func (e *Engine) indexOf(s *engineShard) int {
	for i, sh := range e.shards {
		if sh == s {
			return i
		}
	}
	return -1
}

// locateShard resolves the shard an internal key name currently lives on:
// pinned base keys go to their pinned shard, everything else (including
// every salted sub-stream name) hashes.
func (e *Engine) locateShard(name string) *engineShard {
	if _, _, salted := splitKey(name); !salted {
		if ov := e.override(name); ov != nil && ov.salt == 0 && ov.shard >= 0 {
			return e.shards[ov.shard]
		}
	}
	return e.shardOf(name)
}

// RouteEventKind classifies one adaptive routing action.
type RouteEventKind int

const (
	// RouteEscalate: a hot key switched to salted sub-stream routing.
	RouteEscalate RouteEventKind = iota
	// RouteDeescalate: a cooled key narrowed back to one sub-stream.
	RouteDeescalate
	// RouteCollapse: a drained key's override was retired entirely.
	RouteCollapse
	// RouteMigrate: a whole key moved (pinned) to another shard.
	RouteMigrate
)

// String names the kind ("escalate", "deescalate", "collapse", "migrate").
func (k RouteEventKind) String() string {
	switch k {
	case RouteEscalate:
		return "escalate"
	case RouteDeescalate:
		return "deescalate"
	case RouteCollapse:
		return "collapse"
	case RouteMigrate:
		return "migrate"
	}
	return "unknown"
}

// RouteEvent records one routing action the adaptive controller (or a
// direct caller) took — the audit trail the bench's -adaptive mode ships
// in its JSON record and replays against reference monitors.
type RouteEvent struct {
	// Seq orders events across the engine's lifetime (1-based).
	Seq uint64
	// At is the engine clock when the action completed.
	At time.Time
	// Kind is the action.
	Kind RouteEventKind
	// Key is the logical key acted on.
	Key string
	// Salt is the sub-stream fan after the action (escalate/deescalate).
	Salt int
	// FromShard/ToShard are the handoff endpoints for actions that moved a
	// stream; -1 when no stream moved.
	FromShard, ToShard int
	// KeyBatches is how many batches the moved stream had observed at
	// handoff (0 when the source stream was not resident).
	KeyBatches uint64
}
