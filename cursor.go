package qlove

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// The serialized ExportCursor form: magic, a format version, then the
// cursor's ingredients — the have flag, the engine instance binding, the
// per-shard mutation clocks, and the per-key {incarnation, generation,
// resident} triples in sorted key order (so identical cursors marshal to
// identical bytes). Integers are unsigned varints; keys are
// length-prefixed UTF-8.
var cursorMagic = [4]byte{'Q', 'L', 'V', 'C'}

const cursorVersion = 1

// MarshalBinary serializes the cursor so a worker can persist it across
// process restarts (or hand it between transport sessions) and resume
// delta exports where the destination left off, instead of re-shipping a
// full bootstrap. It implements encoding.BinaryMarshaler.
//
// A deserialized cursor is only as good as the engine state it described:
// resuming pure deltas requires the SAME engine instance (same key→shard
// placement, same operator generations) and destination it was filled
// against. The serialized form carries the engine's instance binding, so
// restoring a cursor against a REBUILT engine is detected by ExportDelta
// and degrades to a safe tombstone+bootstrap re-ship — it can never
// anchor deltas on another engine's counters, however they collide.
func (c *ExportCursor) MarshalBinary() ([]byte, error) {
	keys := make([]string, 0, len(c.keys))
	for k := range c.keys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf := append([]byte(nil), cursorMagic[:]...)
	buf = binary.AppendUvarint(buf, cursorVersion)
	if c.have {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, c.engine)
	buf = binary.AppendUvarint(buf, uint64(len(c.shards)))
	for _, m := range c.shards {
		buf = binary.AppendUvarint(buf, m)
	}
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		kc := c.keys[k]
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
		buf = binary.AppendUvarint(buf, kc.inc)
		buf = binary.AppendUvarint(buf, kc.gen)
		buf = binary.AppendUvarint(buf, uint64(kc.resident))
	}
	return buf, nil
}

// UnmarshalBinary restores a cursor serialized by MarshalBinary,
// replacing the receiver's state entirely. It implements
// encoding.BinaryUnmarshaler. On error the receiver is reset to the zero
// cursor (the always-safe state: the next export re-bootstraps).
func (c *ExportCursor) UnmarshalBinary(data []byte) (err error) {
	*c = ExportCursor{}
	defer func() {
		if err != nil {
			*c = ExportCursor{}
		}
	}()
	if len(data) < len(cursorMagic) || string(data[:len(cursorMagic)]) != string(cursorMagic[:]) {
		return fmt.Errorf("qlove: cursor: bad magic")
	}
	data = data[len(cursorMagic):]
	next := func() (uint64, error) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, fmt.Errorf("qlove: cursor: truncated varint")
		}
		data = data[n:]
		return v, nil
	}
	ver, err := next()
	if err != nil {
		return err
	}
	if ver != cursorVersion {
		return fmt.Errorf("qlove: cursor: unknown version %d", ver)
	}
	if len(data) < 1 {
		return fmt.Errorf("qlove: cursor: truncated have flag")
	}
	switch data[0] {
	case 0:
	case 1:
		c.have = true
	default:
		return fmt.Errorf("qlove: cursor: bad have flag %d", data[0])
	}
	data = data[1:]
	if c.engine, err = next(); err != nil {
		return err
	}
	nShards, err := next()
	if err != nil {
		return err
	}
	if nShards > uint64(len(data)) {
		// Every clock costs at least one byte; anything larger is corrupt
		// (and must not size an allocation).
		return fmt.Errorf("qlove: cursor: shard count %d exceeds payload", nShards)
	}
	if nShards > 0 {
		c.shards = make([]uint64, nShards)
		for i := range c.shards {
			if c.shards[i], err = next(); err != nil {
				return err
			}
		}
	}
	nKeys, err := next()
	if err != nil {
		return err
	}
	if nKeys > uint64(len(data)) {
		return fmt.Errorf("qlove: cursor: key count %d exceeds payload", nKeys)
	}
	c.keys = make(map[string]keyCursor, nKeys)
	for i := uint64(0); i < nKeys; i++ {
		klen, err := next()
		if err != nil {
			return err
		}
		if klen > uint64(len(data)) {
			return fmt.Errorf("qlove: cursor: key length %d exceeds payload", klen)
		}
		k := string(data[:klen])
		data = data[klen:]
		if _, dup := c.keys[k]; dup {
			return fmt.Errorf("qlove: cursor: duplicate key %q", k)
		}
		var kc keyCursor
		if kc.inc, err = next(); err != nil {
			return err
		}
		if kc.gen, err = next(); err != nil {
			return err
		}
		res, err := next()
		if err != nil {
			return err
		}
		if res > uint64(int(^uint(0)>>1)) {
			return fmt.Errorf("qlove: cursor: resident count %d overflows", res)
		}
		kc.resident = int(res)
		c.keys[k] = kc
	}
	if len(data) != 0 {
		return fmt.Errorf("qlove: cursor: %d trailing bytes", len(data))
	}
	return nil
}
