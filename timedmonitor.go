package qlove

import (
	"fmt"
	"time"

	"repro/internal/stream"
)

// TimedMonitor drives a QLOVE operator with time-defined windows — the
// paper's §2 example query shape "evaluate every one minute (window
// period) for the elements seen last one hour (window size)". Sub-windows
// are period-aligned wall-clock intervals whose populations vary with
// traffic; QLOVE's Level-2 estimator handles the variable sub-window sizes
// unchanged (the Appendix A argument does not require equal m).
//
// It is a thin single-stream adapter over the same timed state machine an
// Engine shard runs for every timed key (stream.TimedPusher): the boundary
// protocol, seal-count ring and expiry accounting live there, shared
// between the two front ends — exactly as Monitor shares stream.Pusher
// with count-based engine keys.
//
// Only the QLOVE operator supports time-driven sealing (via EndPeriod);
// count-based policies should use Monitor instead.
type TimedMonitor struct {
	tp *stream.TimedPusher
}

// NewTimedMonitor builds a time-driven monitor. size must be a positive
// multiple of period. The QLOVE config's count-based Spec governs the
// few-k budgets; choose its Size/Period to approximate the expected
// events per window/period.
func NewTimedMonitor(q *QLOVE, size, period time.Duration) (*TimedMonitor, error) {
	if q == nil {
		return nil, fmt.Errorf("qlove: nil policy")
	}
	tp, err := stream.NewTimedPusher(q, size, period)
	if err != nil {
		return nil, fmt.Errorf("qlove: %w", err)
	}
	return &TimedMonitor{tp: tp}, nil
}

// Push feeds one timestamped element. Timestamps must be non-decreasing.
// When t crosses one or more period boundaries the in-flight sub-window
// is sealed (empty periods are skipped), expired sub-windows are dropped,
// and — once a full window has elapsed — an evaluation is returned.
func (m *TimedMonitor) Push(v float64, t time.Time) (Result, bool) {
	return adaptTimed(m.tp.Push(v, t))
}

// PushBatch feeds a run of elements sharing one arrival timestamp — the
// natural shape of real telemetry, where a source reports a chunk of
// measurements at once. It is observationally identical to calling
// Push(v, t) for each element with the same t (the boundary crossing is
// processed once, before any element, exactly as repeated Pushes would),
// but delivers the run through the operator's amortized ObserveBatch path.
// An empty batch degenerates to Flush(t).
func (m *TimedMonitor) PushBatch(t time.Time, vs []float64) (Result, bool) {
	return adaptTimed(m.tp.PushBatch(t, vs, nil))
}

// Flush advances wall-clock time without an element (e.g. from a ticker),
// sealing and evaluating as needed. It returns the evaluation produced by
// the most recent boundary crossing, if any.
func (m *TimedMonitor) Flush(t time.Time) (Result, bool) {
	return adaptTimed(m.tp.Flush(t, nil))
}

// adaptTimed converts the state machine's Evaluation to the public Result.
func adaptTimed(ev stream.Evaluation, ok bool) (Result, bool) {
	if !ok {
		return Result{}, false
	}
	return Result{Evaluation: ev.Index, Estimates: ev.Estimates}, true
}

// Evaluations returns the number of results produced so far.
func (m *TimedMonitor) Evaluations() int { return m.tp.Evaluations() }

// Policy returns the wrapped operator (e.g. to Snapshot it).
func (m *TimedMonitor) Policy() Policy { return m.tp.Policy() }
