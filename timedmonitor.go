package qlove

import (
	"fmt"
	"time"
)

// TimedMonitor drives a QLOVE operator with time-defined windows — the
// paper's §2 example query shape "evaluate every one minute (window
// period) for the elements seen last one hour (window size)". Sub-windows
// are period-aligned wall-clock intervals whose populations vary with
// traffic; QLOVE's Level-2 estimator handles the variable sub-window
// sizes unchanged (the Appendix A argument does not require equal m).
//
// Only the QLOVE operator supports time-driven sealing (via EndPeriod);
// count-based policies should use Monitor instead.
type TimedMonitor struct {
	q       *QLOVE
	size    time.Duration
	period  time.Duration
	started bool
	// boundary is the end of the current in-flight sub-window.
	boundary time.Time
	// sealed counts completed periods; the window spans size/period of
	// them.
	sealed int
	// produced is a ring over the last size/period periods recording
	// whether each produced a (non-empty) summary, so time-based expiry
	// drops exactly the summaries that left the window even when some
	// periods were empty.
	produced []bool
	evals    int
}

// NewTimedMonitor builds a time-driven monitor. size must be a positive
// multiple of period. The QLOVE config's count-based Spec governs the
// few-k budgets; choose its Size/Period to approximate the expected
// events per window/period.
func NewTimedMonitor(q *QLOVE, size, period time.Duration) (*TimedMonitor, error) {
	if q == nil {
		return nil, fmt.Errorf("qlove: nil policy")
	}
	if period <= 0 || size < period || size%period != 0 {
		return nil, fmt.Errorf("qlove: window %v must be a positive multiple of period %v", size, period)
	}
	return &TimedMonitor{
		q:        q,
		size:     size,
		period:   period,
		produced: make([]bool, int(size/period)),
	}, nil
}

// subWindows returns how many sub-windows one window spans.
func (m *TimedMonitor) subWindows() int { return int(m.size / m.period) }

// Push feeds one timestamped element. Timestamps must be non-decreasing.
// When t crosses one or more period boundaries the in-flight sub-window
// is sealed (empty periods are skipped), expired sub-windows are dropped,
// and — once a full window has elapsed — an evaluation is returned.
func (m *TimedMonitor) Push(v float64, t time.Time) (Result, bool) {
	if !m.started {
		m.started = true
		m.boundary = t.Truncate(m.period).Add(m.period)
	}
	res, ready := m.advanceTo(t)
	m.q.Observe(v)
	return res, ready
}

// PushBatch feeds a run of elements sharing one arrival timestamp — the
// natural shape of real telemetry, where a source reports a chunk of
// measurements at once. It is observationally identical to calling
// Push(v, t) for each element with the same t (the boundary crossing is
// processed once, before any element, exactly as repeated Pushes would),
// but delivers the run through the operator's amortized ObserveBatch path.
// An empty batch degenerates to Flush(t).
func (m *TimedMonitor) PushBatch(t time.Time, vs []float64) (Result, bool) {
	if len(vs) == 0 {
		return m.Flush(t)
	}
	if !m.started {
		m.started = true
		m.boundary = t.Truncate(m.period).Add(m.period)
	}
	res, ready := m.advanceTo(t)
	m.q.ObserveBatch(vs)
	return res, ready
}

// Flush advances wall-clock time without an element (e.g. from a ticker),
// sealing and evaluating as needed. It returns the evaluation produced by
// the most recent boundary crossing, if any.
func (m *TimedMonitor) Flush(t time.Time) (Result, bool) {
	if !m.started {
		return Result{}, false
	}
	return m.advanceTo(t)
}

// advanceTo processes every period boundary at or before t.
func (m *TimedMonitor) advanceTo(t time.Time) (Result, bool) {
	var res Result
	ready := false
	sw := m.subWindows()
	for !t.Before(m.boundary) {
		// The ring slot for this period currently holds the flag of the
		// period that just slid out of the window; expire its summary
		// before sealing the new one.
		slot := m.sealed % sw
		if m.sealed >= sw && m.produced[slot] {
			m.q.Expire(nil)
		}
		before := m.q.SubWindowCount()
		m.q.EndPeriod() // no-op for an empty period
		m.produced[slot] = m.q.SubWindowCount() > before
		m.sealed++
		if m.sealed >= sw && m.q.SubWindowCount() > 0 {
			res = Result{Evaluation: m.evals, Estimates: m.q.Result()}
			m.evals++
			ready = true
		}
		m.boundary = m.boundary.Add(m.period)
	}
	return res, ready
}

// Evaluations returns the number of results produced so far.
func (m *TimedMonitor) Evaluations() int { return m.evals }
