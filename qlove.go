// Package qlove is the public API of this repository: a Go implementation
// of QLOVE ("Approximate Quantiles for Datacenter Telemetry Monitoring",
// ICDE 2020) together with the streaming substrate, competing baselines and
// workload generators used by the paper's evaluation.
//
// QLOVE answers a fixed set of quantiles over count-based sliding windows
// with low VALUE error (rather than the rank error bounded by classic
// sketches), by (1) computing exact quantiles per sub-window from a
// compressed {value, count} red-black tree, (2) averaging the sub-window
// quantiles across the window, and (3) retaining a few tail values per
// sub-window ("few-k merging") to repair high quantiles under statistical
// inefficiency and bursty traffic.
//
// # Ingestion
//
// Every policy accepts elements one at a time (Observe / Monitor.Push) or
// in batches (ObserveBatch / Monitor.PushBatch). The two paths are
// observationally identical — batching never changes an evaluation — but
// the batch path is the fast one: it amortizes per-element interface
// dispatch, quantizes whole chunks against a cached decade scale, and
// collapses repeated values into single tree operations. The Level-1
// red-black tree stores its nodes in a flat arena with a free list, keeps
// its node set warm across sub-windows while the value population is
// stable, and recycles everything on reset, so steady-state ingestion
// performs zero heap allocations per element. See README.md for measured
// throughput.
//
// Basic usage:
//
//	cfg := qlove.Config{
//	    Spec: qlove.Window{Size: 128000, Period: 16000},
//	    Phis: []float64{0.5, 0.9, 0.99, 0.999},
//	    FewK: true,
//	}
//	q, err := qlove.New(cfg)
//	...
//	mon, err := qlove.NewMonitor(q, cfg.Spec)
//	for batch := range telemetryBatches {
//	    mon.PushBatch(batch, func(res qlove.Result) {
//	        dashboard.Update(res.Estimates)
//	    })
//	}
//
// Single-element feeding (mon.Push(v)) remains available for callers
// without natural batch boundaries.
//
// # Keyed monitoring
//
// Monitor drives one anonymous stream; the Engine is its keyed, sharded,
// concurrent form — one QLOVE operator per metric key, hash-partitioned
// across single-writer shard goroutines, with batched Push(key, vs)
// ingestion, a fan-in Results channel, and Snapshot()/Query(key) reads
// that never stop ingestion. Snapshots of operators that consumed
// disjoint sub-streams of one logical key Merge into a single
// logical-window view. With EngineConfig.KeyTTL set, idle keys expire
// automatically and their operators recycle. With
// EngineConfig.TimedWindow/TimedPeriod set, keys answer over wall-clock
// windows instead — TimedMonitor's §2 "evaluate every minute over the
// last hour" semantics behind the same keyed API, sealed by shard ticks.
// See Engine.
//
// # Distributed aggregation
//
// Snapshots cross process and datacenter boundaries through the versioned
// wire format (internal/wire, format v2; v1 blobs keep decoding):
// Engine.Export writes every key's capture as a blob of self-describing
// frames without stopping ingestion, EngineSnapshot implements
// io.WriterTo/io.ReaderFrom, and Engine.ImportSnapshots folds remote
// blobs into the local view. Blobs concatenate freely, so N workers can
// write one stream that a central aggregator (cmd/qlove-agg) decodes,
// groups by key and merges; a decoded capture Merges and Estimates
// bit-for-bit like a never-serialized one. Snapshot.Estimate answers one
// configured quantile directly.
//
// For long-running deployments, Engine.ExportDelta ships only what
// changed since a per-destination ExportCursor — newly sealed summaries
// plus tombstones for evicted keys — and Aggregator folds those push
// streams into a resident merged view, served over HTTP by qlove-agg
// -serve (internal/aggsrv). Steady-state export bandwidth then tracks the
// change rate, not the key count, and the folded state stays bit-for-bit
// equal to a full export.
package qlove

import (
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/sketch/am"
	"repro/internal/sketch/cmqs"
	"repro/internal/sketch/gk"
	"repro/internal/sketch/moments"
	"repro/internal/sketch/random"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/window"
)

// Window is a count-based window specification: Size is the number of
// elements each query evaluation covers (N) and Period the number of new
// elements between evaluations (P). Size == Period is a tumbling window;
// Size > Period (a multiple) is a sliding window.
type Window = window.Spec

// Config parameterizes a QLOVE operator; see the field documentation in
// the core package. Zero values of optional fields select the paper's
// defaults (3-digit compression, fraction 0.5, T_s = 10, α = 0.05).
type Config = core.Config

// QLOVE is the paper's quantile operator. It implements Policy.
type QLOVE = core.Policy

// New constructs a QLOVE operator.
func New(cfg Config) (*QLOVE, error) { return core.New(cfg) }

// Snapshot is a point-in-time, immutable capture of a QLOVE operator's
// window state. Snapshots are values: safe to retain, read from any
// goroutine, and Merge with captures of other operators that consumed
// disjoint sub-streams of the same logical stream (engine shards,
// ingestion threads, datacenter pods). See the core package documentation
// for merge semantics.
type Snapshot = core.Snapshot

// MergeSnapshots folds any number of snapshots into one logical-window
// capture; the zero Snapshot is the identity.
func MergeSnapshots(snaps []Snapshot) (Snapshot, error) {
	return core.MergeSnapshots(snaps)
}

// Snapshotter is implemented by policies whose window state can be
// captured into a mergeable Snapshot (QLOVE). Engine.Query and
// Engine.Snapshot serve only keys whose policies implement it.
type Snapshotter interface {
	Snapshot() Snapshot
}

// Policy is the sliding-window multi-quantile operator contract shared by
// QLOVE and every baseline: Observe feeds one element, ObserveBatch feeds
// a run of elements (identical semantics, amortized cost), Expire retires
// a full period of old elements, Result answers the configured quantiles,
// and SpaceUsage reports resident state variables.
type Policy = stream.Policy

// Evaluation is one windowed query result.
type Evaluation = stream.Evaluation

// RunStats aggregates runner-side measurements (elements, evaluations,
// wall time, peak space).
type RunStats = stream.RunStats

// Run drives any Policy over a data slice under the window spec, returning
// every evaluation plus runner statistics.
func Run(p Policy, spec Window, data []float64) ([]Evaluation, RunStats, error) {
	return stream.Run(p, spec, data)
}

// Feed pushes data through a policy measuring throughput only.
func Feed(p Policy, spec Window, data []float64) (RunStats, error) {
	return stream.Feed(p, spec, data)
}

// ExactQuantiles computes exact ϕ-quantiles of a finite sample (rank
// ⌈ϕ·n⌉ of the sorted data), the ground truth used throughout the paper.
func ExactQuantiles(data []float64, phis []float64) []float64 {
	return stats.Quantiles(data, phis)
}

// --- Baseline constructors (§5.1 policies) ---

// NewExact returns the Exact baseline: a red-black tree over the whole
// window with per-element deaccumulation.
func NewExact(spec Window, phis []float64) (Policy, error) {
	return exact.New(spec, phis)
}

// NewCMQS returns the CMQS baseline (Lin et al. 2004) with rank-error
// parameter eps.
func NewCMQS(spec Window, phis []float64, eps float64) (Policy, error) {
	return cmqs.New(spec, phis, eps)
}

// NewAM returns the AM baseline (Arasu–Manku 2004) with rank-error
// parameter eps.
func NewAM(spec Window, phis []float64, eps float64) (Policy, error) {
	return am.New(spec, phis, eps)
}

// NewRandom returns the sampling baseline (Luo et al. 2016) with
// rank-error parameter eps and a deterministic seed.
func NewRandom(spec Window, phis []float64, eps float64, seed int64) (Policy, error) {
	return random.New(spec, phis, eps, seed)
}

// NewMoment returns the moment-sketch baseline of order k (the paper uses
// K = 12).
func NewMoment(spec Window, phis []float64, k int) (Policy, error) {
	return moments.NewPolicy(spec, phis, k)
}

// NewGK returns the classic unbounded-stream Greenwald–Khanna baseline
// with rank-error parameter eps: no expiry, estimates over everything seen
// — the "no window" reference that motivates windowed operators.
func NewGK(spec Window, phis []float64, eps float64) (Policy, error) {
	return gk.NewPolicy(spec, phis, eps)
}

// DefaultEpsilon is the rank-error parameter the paper's Table 1 uses for
// CMQS, AM and Random.
const DefaultEpsilon = 0.02

// DefaultMomentK is the moment-sketch order used in Table 1.
const DefaultMomentK = 12

// BoundFactory is a policy factory with its window spec and quantile set
// already applied; it is the construction recipe an Engine consumes to
// mint one fresh operator per monitored key (see Registry.Bind and
// stream.Factory.Bind).
type BoundFactory = stream.BoundFactory

// Registry returns a policy registry with every policy registered under
// its paper name using Table 1 parameters — the six evaluated algorithms
// plus the unwindowed GK reference ("gk"). The registry hands out
// factories, never shared instances, so the benchmark harness, CLI and
// concurrent engines can all instantiate policies through it.
func Registry() *stream.Registry {
	r := stream.NewRegistry()
	must := func(err error) {
		if err != nil {
			panic("qlove: registry: " + err.Error())
		}
	}
	must(r.Register("qlove", func(spec Window, phis []float64) (Policy, error) {
		return New(Config{Spec: spec, Phis: phis})
	}))
	must(r.Register("qlove-fewk", func(spec Window, phis []float64) (Policy, error) {
		return New(Config{Spec: spec, Phis: phis, FewK: true})
	}))
	must(r.Register("exact", func(spec Window, phis []float64) (Policy, error) {
		return NewExact(spec, phis)
	}))
	must(r.Register("cmqs", func(spec Window, phis []float64) (Policy, error) {
		return NewCMQS(spec, phis, DefaultEpsilon)
	}))
	must(r.Register("am", func(spec Window, phis []float64) (Policy, error) {
		return NewAM(spec, phis, DefaultEpsilon)
	}))
	must(r.Register("random", func(spec Window, phis []float64) (Policy, error) {
		return NewRandom(spec, phis, DefaultEpsilon, 1)
	}))
	must(r.Register("moment", func(spec Window, phis []float64) (Policy, error) {
		return NewMoment(spec, phis, DefaultMomentK)
	}))
	must(r.Register("gk", func(spec Window, phis []float64) (Policy, error) {
		return NewGK(spec, phis, DefaultEpsilon)
	}))
	return r
}
