// Tests for salted routing: sub-stream assignment must be reproducible,
// reads must merge sub-streams in salt order bit-for-bit against external
// reference monitors, and the feature's documented edges (ExportDelta,
// validation, base-key results) must hold.
package qlove

import (
	"bytes"
	"io"
	"math"
	"testing"

	"repro/internal/workload"
)

// TestRouteSaltMergesSubStreams pins the salt contract end to end: under
// serial pushes the engine assigns push i to sub-stream i mod salt, so an
// external reference — salt Monitors fed the same sub-streams, merged in
// salt order — must match Query, Snapshot and Export bit-for-bit.
func TestRouteSaltMergesSubStreams(t *testing.T) {
	const salt = 4
	spec := Window{Size: 256, Period: 64}
	cfg := Config{Spec: spec, Phis: []float64{0.5, 0.9}}
	e, err := NewEngine(EngineConfig{Config: cfg, Shards: 4, ResultBuffer: 1 << 12, RouteSalt: salt})
	if err != nil {
		t.Fatal(err)
	}
	refs := make([]*Monitor, salt)
	pols := make([]*QLOVE, salt)
	for j := range refs {
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		refs[j], err = NewMonitor(p, spec)
		if err != nil {
			t.Fatal(err)
		}
		pols[j] = p
	}
	const reports = 40
	data := workload.Generate(workload.NewNetMon(9), reports*64)
	results := map[string]int{}
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for kr := range e.Results() {
			results[kr.Key]++
		}
	}()
	for i := 0; i < reports; i++ {
		vs := data[i*64 : (i+1)*64]
		if err := e.Push("svc", vs); err != nil {
			t.Fatal(err)
		}
		refs[i%salt].PushBatch(vs, nil)
	}

	if n := e.Keys(); n != salt {
		t.Fatalf("Keys() = %d, want %d resident sub-streams", n, salt)
	}
	if st := e.Stats().Total(); st.ResidentKeys != salt {
		t.Fatalf("resident keys %d, want %d", st.ResidentKeys, salt)
	}
	snaps := make([]Snapshot, salt)
	for j, p := range pols {
		snaps[j] = p.Snapshot()
	}
	want, err := MergeSnapshots(snaps)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := e.Query("svc")
	if !ok {
		t.Fatal("salted key not queryable")
	}
	ge, we := got.Estimates(), want.Estimates()
	for j := range we {
		if math.Float64bits(ge[j]) != math.Float64bits(we[j]) {
			t.Fatalf("query ϕ[%d]: %v != reference merge %v", j, ge[j], we[j])
		}
	}

	// Export folds sub-streams back to the logical key.
	var blob bytes.Buffer
	if _, err := e.Export(&blob); err != nil {
		t.Fatal(err)
	}
	var back EngineSnapshot
	if _, err := back.ReadFrom(&blob); err != nil {
		t.Fatal(err)
	}
	if keys := back.Keys(); len(keys) != 1 || keys[0] != "svc" {
		t.Fatalf("exported keys %v, want just svc", keys)
	}
	est, ok := back.Query("svc")
	if !ok {
		t.Fatal("exported blob lost the key")
	}
	for j := range we {
		if math.Float64bits(est[j]) != math.Float64bits(we[j]) {
			t.Fatalf("export ϕ[%d]: %v != reference merge %v", j, est[j], we[j])
		}
	}

	// ExportDelta ships each sub-stream under its INTERNAL name — a single
	// stream with real seal generations, the stable cursor identity — and
	// an aggregator folds them back to the logical key at read time,
	// bit-identical to the reference merge.
	var delta bytes.Buffer
	if _, err := e.ExportDelta(&delta, new(ExportCursor)); err != nil {
		t.Fatalf("ExportDelta refused a salted engine: %v", err)
	}
	agg := NewAggregator()
	if _, err := agg.Apply("w0", &delta); err != nil {
		t.Fatal(err)
	}
	if got := agg.Keys(); got != 1 {
		t.Fatalf("aggregator sees %d logical keys, want 1", got)
	}
	foldSn, ok, err := agg.Query("svc")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("aggregator lost the salted key")
	}
	fe := foldSn.Estimates()
	for j := range we {
		if math.Float64bits(fe[j]) != math.Float64bits(we[j]) {
			t.Fatalf("delta fold ϕ[%d]: %v != reference merge %v", j, fe[j], we[j])
		}
	}

	// One Evict removes every sub-stream.
	if !e.Evict("svc") {
		t.Fatal("evict found nothing")
	}
	if n := e.Keys(); n != 0 {
		t.Fatalf("Keys() = %d after evict", n)
	}
	if _, ok := e.Query("svc"); ok {
		t.Fatal("evicted key still queryable")
	}

	e.Close()
	<-collected
	// Delivered results carry the LOGICAL key, never internal sub-names.
	if len(results) != 1 || results["svc"] == 0 {
		t.Fatalf("result keys %v, want only svc", results)
	}
}

// TestRouteSaltValidation: bounds and the salt-1 identity.
func TestRouteSaltValidation(t *testing.T) {
	cfg := Config{Spec: Window{Size: 64, Period: 32}, Phis: []float64{0.5}}
	for _, bad := range []int{-1, 257} {
		if _, err := NewEngine(EngineConfig{Config: cfg, RouteSalt: bad}); err == nil {
			t.Errorf("RouteSalt %d accepted", bad)
		}
	}
	// Salt 1 is routing as usual: one resident key per logical key.
	e, err := NewEngine(EngineConfig{Config: cfg, RouteSalt: 1, ResultBuffer: 64})
	if err != nil {
		t.Fatal(err)
	}
	done := drainResults(e)
	vals := workload.Generate(workload.NewNetMon(2), 32)
	for i := 0; i < 4; i++ {
		if err := e.Push("k", vals); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.Keys(); n != 1 {
		t.Fatalf("salt-1 Keys() = %d, want 1", n)
	}
	if _, err := e.ExportDelta(io.Discard, new(ExportCursor)); err != nil {
		t.Fatalf("salt-1 ExportDelta refused: %v", err)
	}
	e.Close()
	<-done
}
