package qlove

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

// Cross-module integration tests: the public API driven end-to-end over
// the paper's workloads, checking the invariants a monitoring deployment
// relies on.

func TestIntegrationAllPoliciesMonotoneEstimates(t *testing.T) {
	// Quantile estimates must be non-decreasing in ϕ for every policy on
	// every workload.
	spec := Window{Size: 8000, Period: 1000}
	phis := []float64{0.5, 0.9, 0.99, 0.999}
	gens := map[string]workload.Generator{
		"netmon":  workload.NewNetMon(1),
		"search":  workload.NewSearch(1),
		"uniform": workload.NewUniform(1, 90, 110),
		"pareto":  workload.NewPaperPareto(1),
	}
	reg := Registry()
	for gname, gen := range gens {
		data := workload.Generate(gen, 24000)
		for _, pname := range []string{"qlove", "qlove-fewk", "exact", "cmqs", "am", "random", "moment", "gk"} {
			p, err := reg.New(pname, spec, phis)
			if err != nil {
				t.Fatal(err)
			}
			evals, _, err := Run(p, spec, data)
			if err != nil {
				t.Fatalf("%s/%s: %v", pname, gname, err)
			}
			for _, e := range evals {
				for j := 1; j < len(phis); j++ {
					if e.Estimates[j] < e.Estimates[j-1]-1e-9 {
						t.Fatalf("%s/%s eval %d: non-monotone %v", pname, gname, e.Index, e.Estimates)
					}
				}
			}
		}
	}
}

func TestIntegrationEstimatesWithinDataRange(t *testing.T) {
	// No policy may produce estimates outside [min, max] of its window's
	// data (Moment clamps; merges select retained values).
	spec := Window{Size: 4000, Period: 1000}
	phis := []float64{0.5, 0.999}
	data := workload.Generate(workload.NewNetMon(2), 16000)
	var lo, hi float64 = math.Inf(1), math.Inf(-1)
	for _, v := range data {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	reg := Registry()
	for _, pname := range []string{"qlove", "qlove-fewk", "exact", "cmqs", "am", "random", "moment", "gk"} {
		p, err := reg.New(pname, spec, phis)
		if err != nil {
			t.Fatal(err)
		}
		evals, _, err := Run(p, spec, data)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range evals {
			for j, est := range e.Estimates {
				// Allow 1% slack for QLOVE's quantization rounding.
				if est < lo*0.99 || est > hi*1.01 {
					t.Fatalf("%s eval %d phi %v: estimate %v outside [%v, %v]",
						pname, e.Index, phis[j], est, lo, hi)
				}
			}
		}
	}
}

func TestIntegrationNaNValuesIgnored(t *testing.T) {
	spec := Window{Size: 100, Period: 10}
	for _, pname := range []string{"qlove", "exact"} {
		p, err := Registry().New(pname, spec, []float64{0.5})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			if i%5 == 0 {
				p.Observe(math.NaN())
			}
			p.Observe(100)
		}
		if got := p.Result()[0]; got != 100 {
			t.Fatalf("%s: median with NaN noise = %v, want 100", pname, got)
		}
	}
}

func TestIntegrationQLOVEBeatsRankSketchesOnTail(t *testing.T) {
	// The paper's headline comparison, end-to-end: on heavy-tailed data,
	// QLOVE's Q0.999 value error must be far below CMQS's and AM's.
	spec := Window{Size: 32000, Period: 4000}
	phis := []float64{0.999}
	data := workload.Generate(workload.NewNetMon(3), 128000)
	errOf := func(name string) float64 {
		p, err := Registry().New(name, spec, phis)
		if err != nil {
			t.Fatal(err)
		}
		evals, _, err := Run(p, spec, data)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		var n int
		_ = spec.Iter(data, func(idx int, w []float64) {
			want := ExactQuantiles(w, phis)[0]
			sum += math.Abs(evals[idx].Estimates[0]-want) / want
			n++
		})
		return sum / float64(n)
	}
	qlove := errOf("qlove-fewk")
	cmqs := errOf("cmqs")
	am := errOf("am")
	if qlove*2 >= cmqs || qlove*2 >= am {
		t.Fatalf("QLOVE %.3f not clearly below CMQS %.3f / AM %.3f", qlove, cmqs, am)
	}
}

// Property: for any data, QLOVE's tumbling-window result equals the exact
// quantile of the window up to quantization error.
func TestQuickTumblingMatchesExact(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 16 {
			return true
		}
		n := len(raw) - len(raw)%16
		data := make([]float64, n)
		for i := 0; i < n; i++ {
			data[i] = float64(raw[i]) + 1
		}
		spec := Window{Size: n, Period: n}
		q, err := New(Config{Spec: spec, Phis: []float64{0.5, 0.99}})
		if err != nil {
			return false
		}
		evals, _, err := Run(q, spec, data)
		if err != nil || len(evals) != 1 {
			return false
		}
		exact := ExactQuantiles(data, []float64{0.5, 0.99})
		for j := range exact {
			if math.Abs(evals[0].Estimates[j]-exact[j]) > exact[j]*0.006 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: QLOVE space usage never exceeds the window size (the whole
// point of the summary design), on redundant integer data.
func TestQuickSpaceBelowWindow(t *testing.T) {
	f := func(seed int64) bool {
		spec := Window{Size: 2000, Period: 500}
		q, err := New(Config{Spec: spec, Phis: []float64{0.5, 0.99}, FewK: true})
		if err != nil {
			return false
		}
		data := workload.Generate(workload.NewNetMon(seed), 6000)
		_, st, err := Run(q, spec, data)
		if err != nil {
			return false
		}
		return st.MaxSpace < spec.Size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
