package qlove

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/wire"
	"repro/internal/workload"
)

func TestExportCursorMarshalRoundTrip(t *testing.T) {
	// Empty cursor round-trips to the equivalent of the zero cursor.
	var empty ExportCursor
	blob, err := empty.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back ExportCursor
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if back.have || len(back.shards) != 0 || len(back.keys) != 0 {
		t.Fatalf("empty cursor round-tripped to %+v", back)
	}

	// A filled cursor round-trips field for field, and marshaling is
	// deterministic (sorted key order).
	eng, err := NewEngine(EngineConfig{
		Config: Config{Spec: Window{Size: 128, Period: 64}, Phis: []float64{0.5, 0.99}},
		Shards: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := drainResults(eng)
	defer func() { eng.Close(); <-done }()
	gen := workload.NewNetMon(11)
	for _, key := range []string{"a", "b", "c", "d", "e"} {
		if err := eng.Push(key, workload.Generate(gen, 256)); err != nil {
			t.Fatal(err)
		}
	}
	var cur ExportCursor
	var sink bytes.Buffer
	if _, err := eng.ExportDelta(&sink, &cur); err != nil {
		t.Fatal(err)
	}
	blob, err = cur.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	blob2, err := cur.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("MarshalBinary is not deterministic")
	}
	var got ExportCursor
	if err := got.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if got.have != cur.have || got.engine != cur.engine ||
		!reflect.DeepEqual(got.shards, cur.shards) || !reflect.DeepEqual(got.keys, cur.keys) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, cur)
	}
}

func TestExportCursorUnmarshalErrors(t *testing.T) {
	var cur ExportCursor
	good, err := cur.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("XXXX"),
		"truncated":   good[:len(good)-1],
		"trailing":    append(append([]byte(nil), good...), 0xff),
		"bad version": append(append([]byte(nil), good[:4]...), 99),
	}
	for name, blob := range cases {
		c := ExportCursor{have: true, shards: []uint64{7}}
		if err := c.UnmarshalBinary(blob); err == nil {
			t.Fatalf("%s: accepted", name)
		}
		if c.have || c.shards != nil || c.keys != nil {
			t.Fatalf("%s: receiver not reset after error: %+v", name, c)
		}
	}
}

// TestExportCursorResumesDeltas is the restart scenario the serialized
// form exists for: an exporter dies after its cursor was persisted; the
// restarted exporter deserializes it and its next ExportDelta carries NO
// re-bootstrap frames — only true deltas anchored at the cursor's
// generations (and nothing at all for untouched keys) — and the
// destination's fold stays bit-identical to a full export.
func TestExportCursorResumesDeltas(t *testing.T) {
	eng, err := NewEngine(EngineConfig{
		Config: Config{Spec: Window{Size: 128, Period: 64}, Phis: []float64{0.5, 0.99}, FewK: true},
		Shards: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := drainResults(eng)
	defer func() { eng.Close(); <-done }()

	gen := workload.NewNetMon(21)
	keys := []string{"api/a", "api/b", "api/c", "api/d"}
	for _, key := range keys {
		if err := eng.Push(key, workload.Generate(gen, 256)); err != nil {
			t.Fatal(err)
		}
	}

	// First exporter session: bootstrap everything, persist the cursor.
	agg := NewAggregator()
	var cur ExportCursor
	var buf bytes.Buffer
	if _, err := eng.ExportDelta(&buf, &cur); err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Apply("w", bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	persisted, err := cur.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	// The exporter "restarts": a fresh cursor deserialized from disk.
	var restored ExportCursor
	if err := restored.UnmarshalBinary(persisted); err != nil {
		t.Fatal(err)
	}

	// More traffic for SOME keys; api/c and api/d stay untouched.
	for _, key := range keys[:2] {
		if err := eng.Push(key, workload.Generate(gen, 192)); err != nil {
			t.Fatal(err)
		}
	}

	buf.Reset()
	if _, err := eng.ExportDelta(&buf, &restored); err != nil {
		t.Fatal(err)
	}
	dec := wire.NewDecoder(bytes.NewReader(buf.Bytes()))
	frames := 0
	for {
		f, err := dec.DecodeFrame()
		if err != nil {
			break // io.EOF ends the blob
		}
		frames++
		switch f.Kind {
		case wire.KindFull:
			t.Fatalf("key %q re-shipped as a full frame after cursor restore", f.Key)
		case wire.KindTombstone:
			t.Fatalf("spurious tombstone for %q", f.Key)
		case wire.KindDelta:
			if f.Delta.FromGen == 0 {
				t.Fatalf("key %q re-bootstrapped (from-generation-0) after cursor restore", f.Key)
			}
		}
	}
	if frames != 2 {
		t.Fatalf("resumed export shipped %d frames, want 2 (only the touched keys)", frames)
	}
	if _, err := agg.Apply("w", bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	requireSameView(t, agg, eng)
}

// TestExportCursorRejectsRebuiltEngine: a persisted cursor restored
// against a REBUILT engine must not anchor deltas on the new engine's
// counters — per-shard incarnations restart at 1, so the first key on a
// shard collides with the old engine's and a naive resume would fold
// new-engine summaries onto old-engine state at the destination. The
// engine binding forces a tombstone+bootstrap re-ship instead, and the
// destination ends bit-identical to the new engine's full export.
func TestExportCursorRejectsRebuiltEngine(t *testing.T) {
	cfg := Config{Spec: Window{Size: 256, Period: 64}, Phis: []float64{0.5, 0.99}}
	agg := NewAggregator()

	// Old engine: 2 seals for "k", exported and persisted.
	old, err := NewEngine(EngineConfig{Config: cfg, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	oldDone := drainResults(old)
	if err := old.Push("k", workload.Generate(workload.NewNetMon(31), 128)); err != nil {
		t.Fatal(err)
	}
	var cur ExportCursor
	var buf bytes.Buffer
	if _, err := old.ExportDelta(&buf, &cur); err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Apply("w", bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	persisted, err := cur.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	old.Close()
	<-oldDone

	// The worker restarts: a rebuilt engine whose "k" is again incarnation
	// 1 on its shard, sealing 3 generations — ONE past the cursor's 2, the
	// shape where a colliding resume ships a 1-summary delta that splices
	// old and new windows at the destination.
	rebuilt, err := NewEngine(EngineConfig{Config: cfg, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	done := drainResults(rebuilt)
	defer func() { rebuilt.Close(); <-done }()
	if err := rebuilt.Push("k", workload.Generate(workload.NewNetMon(99), 192)); err != nil {
		t.Fatal(err)
	}

	var restored ExportCursor
	if err := restored.UnmarshalBinary(persisted); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if _, err := rebuilt.ExportDelta(&buf, &restored); err != nil {
		t.Fatal(err)
	}
	// The blob must re-ship, not resume: tombstone + from-generation-0.
	dec := wire.NewDecoder(bytes.NewReader(buf.Bytes()))
	sawTombstone, sawBootstrap := false, false
	for {
		f, err := dec.DecodeFrame()
		if err != nil {
			break
		}
		switch f.Kind {
		case wire.KindTombstone:
			sawTombstone = true
		case wire.KindDelta:
			if f.Delta.FromGen != 0 {
				t.Fatalf("rebuilt engine resumed a delta from generation %d", f.Delta.FromGen)
			}
			sawBootstrap = true
		case wire.KindFull:
			sawBootstrap = true
		}
	}
	if !sawTombstone || !sawBootstrap {
		t.Fatalf("expected tombstone+bootstrap re-ship, got tombstone=%v bootstrap=%v", sawTombstone, sawBootstrap)
	}
	if _, err := agg.Apply("w", bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	requireSameView(t, agg, rebuilt)
}
