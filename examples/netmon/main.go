// NetMon dashboard: the paper's motivating scenario (§1) — a network
// health monitor computing RTT quantiles across a fleet of servers and
// flagging windows whose tail latency crosses an SLO threshold.
//
// The example simulates a fleet where one rack degrades mid-run (a
// sustained latency shift) and a transient microburst hits later; the
// dashboard reacts to the first via the Q0.99 threshold rule and relies on
// QLOVE's burst detector for the second.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/workload"
)

const (
	fleetServers = 64
	sloP99       = 3000.0 // us: alert when Q0.99 exceeds this
)

func main() {
	cfg := qlove.Config{
		Spec: qlove.Window{Size: 64_000, Period: 8_000},
		Phis: []float64{0.5, 0.9, 0.99, 0.999},
		FewK: true,
	}
	q, err := qlove.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	mon, err := qlove.NewMonitor(q, cfg.Spec)
	if err != nil {
		log.Fatal(err)
	}

	// Per-server RTT sources; server 7 degrades after 150K fleet events.
	servers := make([]*workload.NetMon, fleetServers)
	for i := range servers {
		servers[i] = workload.NewNetMon(int64(i + 1))
	}
	const degradeAt, burstAt, total = 150_000, 300_000, 400_000
	alerts := 0
	for i := 0; i < total; i++ {
		src := i % fleetServers
		v := servers[src].Next()
		if i >= degradeAt && src == 7 {
			v *= 4 // rack 7's uplink degrades: sustained 4x RTT
		}
		if i >= burstAt && i < burstAt+2_000 {
			v *= 10 // transient incast microburst across the fleet
		}
		res, ready := mon.Push(v)
		if !ready {
			continue
		}
		p99 := res.Estimates[2]
		status := "ok"
		if p99 > sloP99 {
			status = "ALERT: p99 over SLO"
			alerts++
		}
		if q.BurstDetected() {
			status += " [burst detected]"
		}
		fmt.Printf("window %2d  p50=%7.0f p90=%7.0f p99=%7.0f p999=%7.0f  %s\n",
			res.Evaluation, res.Estimates[0], res.Estimates[1], p99, res.Estimates[3], status)
	}
	fmt.Printf("\n%d windows breached the %gus p99 SLO; operator state: %d variables\n",
		alerts, sloP99, q.SpaceUsage())
}
