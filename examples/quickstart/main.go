// Quickstart: compute sliding-window quantiles over a synthetic latency
// stream with QLOVE and compare the final estimates against the exact
// quantiles of the last window.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/workload"
)

func main() {
	// Monitor the last 100K latencies, re-evaluating every 10K events —
	// the paper's Qmonitor shape (§5.1).
	cfg := qlove.Config{
		Spec: qlove.Window{Size: 100_000, Period: 10_000},
		Phis: []float64{0.5, 0.9, 0.99, 0.999},
		FewK: true, // repair high quantiles under bursts (§4)
	}
	q, err := qlove.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	mon, err := qlove.NewMonitor(q, cfg.Spec)
	if err != nil {
		log.Fatal(err)
	}

	// A datacenter-RTT-like stream (microseconds).
	gen := workload.NewNetMon(42)
	lastWindow := make([]float64, 0, cfg.Spec.Size)
	for i := 0; i < 300_000; i++ {
		v := gen.Next()
		lastWindow = append(lastWindow, v)
		if len(lastWindow) > cfg.Spec.Size {
			lastWindow = lastWindow[1:]
		}
		if res, ready := mon.Push(v); ready {
			fmt.Printf("eval %2d: p50=%6.0fus p90=%6.0fus p99=%6.0fus p999=%6.0fus\n",
				res.Evaluation, res.Estimates[0], res.Estimates[1], res.Estimates[2], res.Estimates[3])
		}
	}

	exact := qlove.ExactQuantiles(lastWindow, cfg.Phis)
	fmt.Printf("\nexact last window: p50=%6.0f p90=%6.0f p99=%6.0f p999=%6.0f\n",
		exact[0], exact[1], exact[2], exact[3])
	fmt.Printf("operator space:    %d variables (window holds %d raw values)\n",
		q.SpaceUsage(), cfg.Spec.Size)
	fmt.Printf("95%% error bounds:  %.1f\n", q.ErrorBounds(0.05))
}
