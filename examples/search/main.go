// Search load balancing: the paper's second motivating scenario (§1) — a
// web search engine computing per-cluster query-latency quantiles and
// shifting load away from clusters whose tail violates the SLA, as in
// "The Tail at Scale".
//
// Three index-serving clusters answer queries; cluster weights are
// rebalanced every window evaluation in proportion to SLA headroom at
// Q0.99. Cluster C runs hot, so its share should visibly shrink.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/workload"
)

const slaP99 = 180_000.0 // us: 180ms SLA on Q0.99

type cluster struct {
	name   string
	src    *workload.Search
	hot    float64 // latency multiplier (C is overloaded)
	mon    *qlove.Monitor
	p99    float64
	weight float64
}

func main() {
	spec := qlove.Window{Size: 20_000, Period: 4_000}
	phis := []float64{0.5, 0.99}
	mk := func(name string, seed int64, hot float64) *cluster {
		q, err := qlove.New(qlove.Config{Spec: spec, Phis: phis})
		if err != nil {
			log.Fatal(err)
		}
		mon, err := qlove.NewMonitor(q, spec)
		if err != nil {
			log.Fatal(err)
		}
		return &cluster{name: name, src: workload.NewSearch(seed), hot: hot, mon: mon, weight: 1.0 / 3}
	}
	clusters := []*cluster{
		mk("A", 1, 0.8),
		mk("B", 2, 1.0),
		mk("C", 3, 1.5), // overloaded: tail routinely near the SLA
	}
	rng := rand.New(rand.NewSource(99))
	const queries = 400_000
	routed := map[string]int{}
	for i := 0; i < queries; i++ {
		// Weighted routing by current cluster weights.
		r := rng.Float64()
		var c *cluster
		for _, cand := range clusters {
			if r -= cand.weight; r <= 0 || cand == clusters[len(clusters)-1] {
				c = cand
				break
			}
		}
		routed[c.name]++
		v := c.src.Next() * c.hot
		if v > slaP99*1.33 {
			v = slaP99 * 1.33 // the ISN cancels queries far over SLA
		}
		if res, ready := c.mon.Push(v); ready {
			c.p99 = res.Estimates[1]
			rebalance(clusters)
			fmt.Printf("rebalanced: ")
			for _, cl := range clusters {
				fmt.Printf("%s{p99=%6.0fus w=%.2f} ", cl.name, cl.p99, cl.weight)
			}
			fmt.Println()
		}
	}
	fmt.Printf("\nqueries routed: A=%d B=%d C=%d (C should get the least)\n",
		routed["A"], routed["B"], routed["C"])
}

// rebalance sets each cluster's weight proportional to its SLA headroom at
// Q0.99, with a floor so no cluster is fully drained.
func rebalance(clusters []*cluster) {
	var total float64
	headroom := make([]float64, len(clusters))
	for i, c := range clusters {
		h := slaP99 - c.p99
		if h < slaP99*0.05 {
			h = slaP99 * 0.05
		}
		headroom[i] = h
		total += h
	}
	for i, c := range clusters {
		c.weight = headroom[i] / total
	}
}
