// Compare: run all six policies side by side on the same bursty telemetry
// stream and print their Q0.999 estimates against the exact value — a
// compact reproduction of the paper's §1 argument that rank-error sketches
// lose the tail on skewed data.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/workload"
)

func main() {
	spec := qlove.Window{Size: 32_000, Period: 4_000}
	phis := []float64{0.5, 0.999}

	names := []string{"qlove-fewk", "exact", "cmqs", "am", "random", "moment"}
	reg := qlove.Registry()
	mons := map[string]*qlove.Monitor{}
	for _, n := range names {
		var p qlove.Policy
		var err error
		if n == "qlove-fewk" {
			// Full-fraction few-k: each sub-window caches its entire
			// worst-case tail, so high quantiles stay exact under any
			// burst pattern (§4.2) at a tiny space cost.
			p, err = qlove.New(qlove.Config{Spec: spec, Phis: phis, FewK: true, Fraction: 1})
		} else {
			p, err = reg.New(n, spec, phis)
		}
		if err != nil {
			log.Fatal(err)
		}
		m, err := qlove.NewMonitor(p, spec)
		if err != nil {
			log.Fatal(err)
		}
		mons[n] = m
	}

	base := workload.Generate(workload.NewNetMon(7), 160_000)
	data := workload.InjectBursts(base, spec.Size, spec.Period, 0.999, 10)

	latest := map[string]qlove.Result{}
	window := make([]float64, 0, spec.Size)
	evalsSeen := 0
	for _, v := range data {
		window = append(window, v)
		if len(window) > spec.Size {
			window = window[1:]
		}
		ready := false
		for _, n := range names {
			if res, ok := mons[n].Push(v); ok {
				latest[n] = res
				ready = true
			}
		}
		if !ready {
			continue
		}
		evalsSeen++
		if evalsSeen%8 != 1 {
			continue // print every 8th evaluation
		}
		exactQ := qlove.ExactQuantiles(window, phis)
		fmt.Printf("eval %2d  exact Q0.999 = %8.0f\n", evalsSeen-1, exactQ[1])
		for _, n := range names {
			est := latest[n].Estimates[1]
			relErr := 0.0
			if exactQ[1] != 0 {
				relErr = (est - exactQ[1]) / exactQ[1] * 100
			}
			fmt.Printf("    %-10s %8.0f  (%+6.1f%%)  space=%d\n",
				n, est, relErr, mons[n].Policy().SpaceUsage())
		}
	}
}
