// Tests for adaptive hot-key routing: live key migration and per-key
// escalation must be invisible to readers — queries, full exports and
// delta exports stay bit-identical to an unmigrated/unsalted reference —
// and the occupancy-driven controller must escalate, cool and collapse a
// hot key across its whole lifecycle without ordering violations.
package qlove

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/workload"
)

// --- satellite: HotShards degenerate shard counts -----------------------

func TestEngineHotShardsDegenerateCounts(t *testing.T) {
	// One shard: there is no "other shard" to compare against, so no
	// factor may ever flag it.
	one := EngineStats{Shards: []ShardStats{{DeliveredBatches: 1 << 20}}}
	for _, f := range []float64{1.0001, 1.5, 2, 10} {
		if hot := one.HotShards(f); hot != nil {
			t.Fatalf("1 shard, factor %v: HotShards = %v, want nil", f, hot)
		}
	}
	// Two shards: max/mean is at most 2, so factor >= 2 can never fire
	// and the comparison is strictly greater-than.
	two := EngineStats{Shards: []ShardStats{{DeliveredBatches: 90}, {DeliveredBatches: 10}}}
	if hot := two.HotShards(2); hot != nil {
		t.Fatalf("2 shards, factor 2: HotShards = %v, want nil", hot)
	}
	if hot := two.HotShards(1.5); len(hot) != 1 || hot[0] != 0 {
		t.Fatalf("2 shards, factor 1.5: HotShards = %v, want [0]", hot)
	}
	if hot := two.HotShards(1.79); len(hot) != 1 || hot[0] != 0 {
		t.Fatalf("2 shards, factor 1.79: HotShards = %v, want [0]", hot)
	}
	// 90 > 1.8×50 is false: the bound is strict.
	if hot := two.HotShards(1.8); hot != nil {
		t.Fatalf("2 shards, factor 1.8: HotShards = %v, want nil", hot)
	}
	balanced := EngineStats{Shards: []ShardStats{{DeliveredBatches: 50}, {DeliveredBatches: 50}}}
	if hot := balanced.HotShards(1); hot != nil {
		t.Fatalf("balanced, factor 1: HotShards = %v, want nil", hot)
	}
	idle := EngineStats{Shards: []ShardStats{{}, {}}}
	if hot := idle.HotShards(1.5); hot != nil {
		t.Fatalf("idle shards: HotShards = %v, want nil", hot)
	}
}

// --- validation ---------------------------------------------------------

func TestEngineAdaptValidation(t *testing.T) {
	cfg := Config{Spec: Window{Size: 64, Period: 32}, Phis: []float64{0.5}}
	if _, err := NewEngine(EngineConfig{Config: cfg, RouteSalt: 4, Adapt: &AdaptConfig{}}); err == nil {
		t.Error("RouteSalt + Adapt accepted; the salting disciplines must be exclusive")
	}
	for _, bad := range []AdaptConfig{
		{Salt: 1}, {Salt: 300}, {HotShardFactor: 0.5}, {Interval: -time.Second},
		{HotKeyFrac: 1.5}, {CoolFrac: -0.1},
	} {
		if _, err := NewEngine(EngineConfig{Config: cfg, Adapt: &bad}); err == nil {
			t.Errorf("AdaptConfig %+v accepted", bad)
		}
	}
	// NUL is the reserved sub-stream separator on every engine, adaptive
	// or not: user keys containing it are rejected up front.
	for _, ec := range []EngineConfig{
		{Config: cfg},
		{Config: cfg, Adapt: &AdaptConfig{}},
	} {
		e, err := NewEngine(ec)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Push("a\x00b", []float64{1}); !errors.Is(err, ErrReservedKey) {
			t.Errorf("NUL key: err = %v, want ErrReservedKey", err)
		}
		e.Close()
	}
}

// --- helpers ------------------------------------------------------------

// sameEstimates fails unless the two engines answer every key with
// bit-identical quantile estimates.
func sameEstimates(t *testing.T, label string, a, b *Engine, keys []string) {
	t.Helper()
	for _, k := range keys {
		qa, oka := a.Query(k)
		qb, okb := b.Query(k)
		if oka != okb {
			t.Fatalf("%s: key %q resident mismatch: %v vs %v", label, k, oka, okb)
		}
		if !oka {
			continue
		}
		ea, eb := qa.Estimates(), qb.Estimates()
		for j := range ea {
			if math.Float64bits(ea[j]) != math.Float64bits(eb[j]) {
				t.Fatalf("%s: key %q ϕ[%d]: %v != %v", label, k, j, ea[j], eb[j])
			}
		}
	}
}

// sameSnapshot fails unless a Snapshot's estimates match a reference
// bit-for-bit.
func sameSnapshot(t *testing.T, label string, got, want Snapshot) {
	t.Helper()
	ge, we := got.Estimates(), want.Estimates()
	for j := range we {
		if math.Float64bits(ge[j]) != math.Float64bits(we[j]) {
			t.Fatalf("%s: ϕ[%d]: %v != reference %v", label, j, ge[j], we[j])
		}
	}
}

// foldEquiv asserts the delta-export invariant: an aggregator that
// applied the engine's delta stream answers exactly like the engine's
// full export — logical keys and bits.
func foldEquiv(t *testing.T, label string, e *Engine, agg *Aggregator) {
	t.Helper()
	full := e.Snapshot()
	folded, err := agg.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fk, ak := full.Keys(), folded.Keys()
	if len(fk) != len(ak) {
		t.Fatalf("%s: engine keys %v vs aggregator keys %v", label, fk, ak)
	}
	for i := range fk {
		if fk[i] != ak[i] {
			t.Fatalf("%s: engine keys %v vs aggregator keys %v", label, fk, ak)
		}
	}
	for _, k := range fk {
		we, _ := full.Query(k)
		ge, ok := folded.Query(k)
		if !ok {
			t.Fatalf("%s: aggregator lost key %q", label, k)
		}
		for j := range we {
			if math.Float64bits(ge[j]) != math.Float64bits(we[j]) {
				t.Fatalf("%s: key %q ϕ[%d]: %v != engine %v", label, k, j, ge[j], we[j])
			}
		}
	}
}

// --- tentpole: migration bit-equivalence --------------------------------

// TestEngineAdaptMigrationEquivalence pins the core migration promise: a
// key moved live between shards produces queries, full exports and delta
// exports bit-identical to the same key on an engine that never migrated
// anything — at 1, 2 and 8 shards, including eviction tombstones after a
// move and pin-removal when a key migrates back home.
func TestEngineAdaptMigrationEquivalence(t *testing.T) {
	spec := Window{Size: 64, Period: 32}
	cfg := Config{Spec: spec, Phis: []float64{0.5, 0.9, 0.99}}
	const nkeys, rounds = 12, 8
	data := workload.Generate(workload.NewNetMon(11), nkeys*rounds*2*32)
	keys := make([]string, nkeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
	}
	for _, shards := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			adaptive, err := NewEngine(EngineConfig{Config: cfg, Shards: shards, ResultBuffer: 1 << 12, Adapt: &AdaptConfig{}})
			if err != nil {
				t.Fatal(err)
			}
			ref, err := NewEngine(EngineConfig{Config: cfg, Shards: shards, ResultBuffer: 1 << 12})
			if err != nil {
				t.Fatal(err)
			}
			doneA, doneB := drainResults(adaptive), drainResults(ref)
			curA, curB := new(ExportCursor), new(ExportCursor)
			agg := NewAggregator()
			off := 0
			pushRound := func() {
				for r := 0; r < rounds; r++ {
					for _, k := range keys {
						vs := data[off : off+32]
						off += 32
						if err := adaptive.Push(k, vs); err != nil {
							t.Fatal(err)
						}
						if err := ref.Push(k, vs); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
			checkpoint := func(label string) {
				var fa, fb, da, db bytes.Buffer
				if _, err := adaptive.Export(&fa); err != nil {
					t.Fatal(err)
				}
				if _, err := ref.Export(&fb); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(fa.Bytes(), fb.Bytes()) {
					t.Fatalf("%s: full export diverged (%d vs %d bytes)", label, fa.Len(), fb.Len())
				}
				if _, err := adaptive.ExportDelta(&da, curA); err != nil {
					t.Fatal(err)
				}
				if _, err := ref.ExportDelta(&db, curB); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(da.Bytes(), db.Bytes()) {
					t.Fatalf("%s: delta export diverged (%d vs %d bytes)", label, da.Len(), db.Len())
				}
				if _, err := agg.Apply("w0", bytes.NewReader(da.Bytes())); err != nil {
					t.Fatal(err)
				}
				foldEquiv(t, label, adaptive, agg)
				sameEstimates(t, label, adaptive, ref, keys)
			}

			pushRound()
			checkpoint("pre-migration")

			if shards == 1 {
				if _, ok := adaptive.migrateKey("k0", 0); ok {
					t.Fatal("1-shard migrate reported a move")
				}
			} else {
				for _, k := range []string{"k0", "k1", "k2"} {
					home := adaptive.shardIndex(k)
					dst := (home + 1) % shards
					ev, ok := adaptive.migrateKey(k, dst)
					if !ok {
						t.Fatalf("migrate %q -> shard %d refused", k, dst)
					}
					if ev.Kind != RouteMigrate || ev.FromShard != home || ev.ToShard != dst {
						t.Fatalf("migrate event %+v, want %s->%d", ev, k, dst)
					}
					if ev.KeyBatches != rounds {
						t.Fatalf("migrate %q carried %d batches, want %d", k, ev.KeyBatches, rounds)
					}
				}
				// Pin k0 back to its hash home: the override must vanish,
				// not persist as a redundant pin.
				home := adaptive.shardIndex("k0")
				if _, ok := adaptive.migrateKey("k0", home); !ok {
					t.Fatal("migrate k0 home refused")
				}
				if ov := adaptive.override("k0"); ov != nil {
					t.Fatalf("k0 still overridden after moving home: %+v", ov)
				}
			}

			checkpoint("post-migration-quiescent")
			pushRound()
			checkpoint("post-migration-traffic")

			if !adaptive.Evict("k2") || !ref.Evict("k2") {
				t.Fatal("evict k2 found nothing")
			}
			checkpoint("post-evict")

			adaptive.Close()
			ref.Close()
			<-doneA
			<-doneB
		})
	}
}

// --- tentpole: escalation replay equivalence ----------------------------

// TestEngineAdaptEscalationEquivalence drives a key through the full
// escalation lifecycle — fresh escalate (operator migrates to sub-stream
// 0), widened fan-out, de-escalate, and a flip-only re-escalation — and
// checks every phase bit-for-bit against external reference monitors fed
// the deterministic i-mod-salt sub-stream assignment.
func TestEngineAdaptEscalationEquivalence(t *testing.T) {
	const salt = 4
	spec := Window{Size: 64, Period: 32}
	cfg := Config{Spec: spec, Phis: []float64{0.5, 0.9, 0.99}}
	data := workload.Generate(workload.NewNetMon(13), 64*32)
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			e, err := NewEngine(EngineConfig{Config: cfg, Shards: shards, ResultBuffer: 1 << 12, Adapt: &AdaptConfig{Salt: salt}})
			if err != nil {
				t.Fatal(err)
			}
			done := drainResults(e)
			subs := make([]*Monitor, salt)
			pols := make([]*QLOVE, salt)
			mk := func() (*Monitor, *QLOVE) {
				p, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				m, err := NewMonitor(p, spec)
				if err != nil {
					t.Fatal(err)
				}
				return m, p
			}
			off := 0
			push := func(ref int) {
				vs := data[off : off+32]
				off += 32
				if err := e.Push("hot", vs); err != nil {
					t.Fatal(err)
				}
				if subs[ref] == nil {
					subs[ref], pols[ref] = mk()
				}
				subs[ref].PushBatch(vs, nil)
			}
			expect := func() Snapshot {
				var sn []Snapshot
				for j := range pols {
					if pols[j] != nil {
						sn = append(sn, pols[j].Snapshot())
					}
				}
				m, err := MergeSnapshots(sn)
				if err != nil {
					t.Fatal(err)
				}
				return m
			}
			compare := func(label string) {
				got, ok := e.Query("hot")
				if !ok {
					t.Fatalf("%s: hot not queryable", label)
				}
				sameSnapshot(t, label+" query", got, expect())
				var blob bytes.Buffer
				if _, err := e.Export(&blob); err != nil {
					t.Fatal(err)
				}
				var back EngineSnapshot
				if _, err := back.ReadFrom(&blob); err != nil {
					t.Fatal(err)
				}
				est, ok := back.Query("hot")
				if !ok {
					t.Fatalf("%s: export lost hot", label)
				}
				we := expect().Estimates()
				for j := range we {
					if math.Float64bits(est[j]) != math.Float64bits(we[j]) {
						t.Fatalf("%s export: ϕ[%d]: %v != %v", label, j, est[j], we[j])
					}
				}
			}

			// Phase 1: plain hash routing; history accumulates on the base.
			for i := 0; i < 8; i++ {
				push(0)
			}
			ev, ok := e.escalateKey("hot", salt)
			if !ok {
				t.Fatal("fresh escalation refused")
			}
			if ev.Kind != RouteEscalate || ev.KeyBatches != 8 {
				t.Fatalf("escalate event %+v, want 8 carried batches", ev)
			}
			// The base operator now lives on as sub-stream 0: subs[0]
			// already holds its reference (push(0) created it).

			// Phase 2: escalated — push i after the flip goes to i mod salt.
			for i := 0; i < 16; i++ {
				push(i % salt)
			}
			compare("escalated")

			// Phase 3: de-escalated — everything funnels to sub-stream 0.
			if _, ok := e.deescalateKey("hot"); !ok {
				t.Fatal("de-escalation refused")
			}
			for i := 0; i < 8; i++ {
				push(0)
			}
			compare("de-escalated")
			// Collapse must refuse while older sub-streams are resident.
			if _, ok := e.collapseKey("hot", salt); ok {
				t.Fatal("collapse ran with resident sub-streams")
			}

			// Phase 4: re-escalation is a pure route flip (sub-stream 0
			// already carries the live stream) with the counter reset, so
			// assignment restarts at sub-stream 0.
			ev, ok = e.escalateKey("hot", salt)
			if !ok {
				t.Fatal("re-escalation refused")
			}
			if ev.FromShard != -1 || ev.ToShard != -1 {
				t.Fatalf("re-escalation moved a stream: %+v", ev)
			}
			for i := 0; i < 12; i++ {
				push(i % salt)
			}
			compare("re-escalated")

			e.Close()
			<-done
		})
	}
}

// TestEngineAdaptCollapseAfterTTL walks the back half of the lifecycle:
// after de-escalation the idle sub-streams age out under count-based
// KeyTTL, collapse migrates sub-stream 0 home to the base name, the
// override disappears, and the key keeps answering bit-identically.
func TestEngineAdaptCollapseAfterTTL(t *testing.T) {
	const salt, ttl = 4, 32
	spec := Window{Size: 64, Period: 32}
	cfg := Config{Spec: spec, Phis: []float64{0.5, 0.9}}
	e, err := NewEngine(EngineConfig{Config: cfg, Shards: 1, ResultBuffer: 1 << 12, KeyTTL: ttl, Adapt: &AdaptConfig{Salt: salt}})
	if err != nil {
		t.Fatal(err)
	}
	done := drainResults(e)
	data := workload.Generate(workload.NewNetMon(17), 400*32)
	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refMon, err := NewMonitor(ref, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Side monitors for sub-streams 1..3 (they receive during escalation,
	// then expire; after collapse only sub-stream 0's history remains).
	side := make([]*QLOVE, salt)
	sideMon := make([]*Monitor, salt)
	for j := 1; j < salt; j++ {
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		side[j] = p
		if sideMon[j], err = NewMonitor(p, spec); err != nil {
			t.Fatal(err)
		}
	}
	off := 0
	push := func(sub int) {
		vs := data[off : off+32]
		off += 32
		if err := e.Push("hot", vs); err != nil {
			t.Fatal(err)
		}
		if sub == 0 {
			refMon.PushBatch(vs, nil)
		} else {
			sideMon[sub].PushBatch(vs, nil)
		}
	}
	for i := 0; i < 4; i++ {
		push(0)
	}
	if _, ok := e.escalateKey("hot", salt); !ok {
		t.Fatal("escalation refused")
	}
	for i := 0; i < 8; i++ {
		push(i % salt)
	}
	if _, ok := e.deescalateKey("hot"); !ok {
		t.Fatal("de-escalation refused")
	}
	// Keep pushing the (now single-streamed) key until the idle
	// sub-streams 1..3 expire and collapse succeeds.
	collapsed := false
	for i := 0; i < 300 && !collapsed; i++ {
		push(0)
		if ev, ok := e.collapseKey("hot", salt); ok {
			if ev.Kind != RouteCollapse {
				t.Fatalf("collapse event %+v", ev)
			}
			collapsed = true
		}
	}
	if !collapsed {
		t.Fatal("collapse never succeeded; idle sub-streams survived TTL")
	}
	if ov := e.override("hot"); ov != nil {
		t.Fatalf("override survived collapse: %+v", ov)
	}
	if n := e.Keys(); n != 1 {
		t.Fatalf("Keys() = %d after collapse, want 1", n)
	}
	// Post-collapse the key is an ordinary hash-routed stream carrying
	// sub-stream 0's full history.
	got, ok := e.Query("hot")
	if !ok {
		t.Fatal("hot unqueryable after collapse")
	}
	sameSnapshot(t, "post-collapse", got, ref.Snapshot())
	for i := 0; i < 4; i++ {
		push(0)
	}
	got, ok = e.Query("hot")
	if !ok {
		t.Fatal("hot unqueryable after post-collapse pushes")
	}
	sameSnapshot(t, "post-collapse traffic", got, ref.Snapshot())
	e.Close()
	<-done
}

// --- satellite: migration vs key TTL ------------------------------------

// TestEngineAdaptMigrationTTLRace pins the eviction race: a key that
// wall-clock-expires before its migration handoff must NOT resurrect with
// stale seal generations — the pin still flips, the handoff finds nothing,
// and the next push mints a genuinely fresh stream whose delta export
// tombstones the old identity.
func TestEngineAdaptMigrationTTLRace(t *testing.T) {
	spec := Window{Size: 64, Period: 32}
	cfg := Config{Spec: spec, Phis: []float64{0.5, 0.9}}
	var mu sync.Mutex
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	e, err := NewEngine(EngineConfig{
		Config: cfg, Shards: 2, ResultBuffer: 1 << 12,
		KeyTTLDuration: time.Minute, Clock: clock, Adapt: &AdaptConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := drainResults(e)
	data := workload.Generate(workload.NewNetMon(19), 64*32)
	home := e.shardIndex("k")
	// A helper key on the same shard: its later delivery piggybacks the
	// wall sweep that expires "k" deterministically.
	helper := ""
	for i := 0; i < 256 && helper == ""; i++ {
		h := fmt.Sprintf("h%d", i)
		if e.shardIndex(h) == home {
			helper = h
		}
	}
	if helper == "" {
		t.Fatal("no helper key hashing to k's shard")
	}
	off := 0
	batch := func() []float64 {
		vs := data[off : off+32]
		off += 32
		return vs
	}
	// Seed "k" with enough sealed windows to have non-zero seal
	// generations, and snapshot its identity into a delta cursor.
	for i := 0; i < 6; i++ {
		if err := e.Push("k", batch()); err != nil {
			t.Fatal(err)
		}
	}
	cur := new(ExportCursor)
	agg := NewAggregator()
	var d1 bytes.Buffer
	if _, err := e.ExportDelta(&d1, cur); err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Apply("w0", bytes.NewReader(d1.Bytes())); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := agg.Query("k"); !ok {
		t.Fatal("aggregator missing k after bootstrap")
	}

	// Expire "k": advance past the TTL, then deliver the helper batch —
	// the delivery's piggybacked wall sweep evicts it.
	advance(2 * time.Minute)
	if err := e.Push(helper, batch()); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Query("k"); ok {
		t.Fatal("k survived its wall TTL")
	}

	// Migrate the now-evicted key. The pin flips; the handoff misses.
	ev, ok := e.migrateKey("k", 1-home)
	if !ok {
		t.Fatal("migration of evicted key refused")
	}
	if ev.KeyBatches != 0 {
		t.Fatalf("handoff of evicted key carried %d batches, want 0", ev.KeyBatches)
	}
	if ov := e.override("k"); ov == nil || ov.shard != 1-home {
		t.Fatalf("pin not installed: %+v", ov)
	}

	// Fresh pushes mint a brand-new stream at the pinned shard: its state
	// must equal a reference monitor fed ONLY the new batches — any stale
	// resurrection would poison the quantiles.
	refPol, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refMon, err := NewMonitor(refPol, spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		vs := batch()
		if err := e.Push("k", vs); err != nil {
			t.Fatal(err)
		}
		refMon.PushBatch(vs, nil)
	}
	got, ok := e.Query("k")
	if !ok {
		t.Fatal("reborn k unqueryable")
	}
	sameSnapshot(t, "reborn stream", got, refPol.Snapshot())

	// The delta stream must hand the aggregator the SAME rebirth: the old
	// identity tombstones (no stale generations survive) and the new
	// stream bootstraps from scratch.
	var d2 bytes.Buffer
	if _, err := e.ExportDelta(&d2, cur); err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Apply("w0", bytes.NewReader(d2.Bytes())); err != nil {
		t.Fatal(err)
	}
	foldEquiv(t, "post-rebirth", e, agg)

	e.Close()
	<-done
}

// --- controller end-to-end ----------------------------------------------

// TestEngineAdaptControllerLifecycle drives the occupancy controller
// through a full hot-key arc with explicit Rebalance passes: a Zipf head
// escalates, traffic moves away, cooling hysteresis de-escalates it, TTL
// drains the fan, and the override collapses — leaving delta exports fold-
// equivalent to the full export throughout.
func TestEngineAdaptControllerLifecycle(t *testing.T) {
	spec := Window{Size: 64, Period: 32}
	cfg := Config{Spec: spec, Phis: []float64{0.5, 0.9}}
	e, err := NewEngine(EngineConfig{
		Config: cfg, Shards: 4, ResultBuffer: 1 << 14, KeyTTL: 48,
		Adapt: &AdaptConfig{MinBatches: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := drainResults(e)
	data := workload.Generate(workload.NewNetMon(23), 64*32)
	cold := make([]string, 16)
	for i := range cold {
		cold[i] = fmt.Sprintf("c%d", i)
	}
	off := 0
	batch := func() []float64 {
		vs := data[off%(63*32) : off%(63*32)+32]
		off += 32
		return vs
	}
	pushSpread := func(n int) {
		for i := 0; i < n; i++ {
			if err := e.Push(cold[i%len(cold)], batch()); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Phase A: heavy Zipf head. The controller must escalate "hot".
	sawEscalate := false
	for r := 0; r < 4 && !sawEscalate; r++ {
		for i := 0; i < 64; i++ {
			if err := e.Push("hot", batch()); err != nil {
				t.Fatal(err)
			}
		}
		pushSpread(32)
		e.Keys() // barrier: all enqueued batches delivered before sampling
		for _, ev := range e.Rebalance() {
			if ev.Kind == RouteEscalate && ev.Key == "hot" {
				sawEscalate = true
			}
		}
	}
	if !sawEscalate {
		t.Fatalf("controller never escalated the Zipf head; events: %+v", e.RouteEvents())
	}
	if ov := e.override("hot"); ov == nil || ov.salt < 2 {
		t.Fatalf("hot not escalated in route table: %+v", ov)
	}

	// Phase B: the head goes quiet. Hysteresis must de-escalate, TTL must
	// drain the fan, and the controller must collapse the override.
	sawDeescalate, sawCollapse := false, false
	for r := 0; r < 30 && !sawCollapse; r++ {
		pushSpread(64)
		e.Keys()
		for _, ev := range e.Rebalance() {
			switch {
			case ev.Kind == RouteDeescalate && ev.Key == "hot":
				sawDeescalate = true
			case ev.Kind == RouteCollapse && ev.Key == "hot":
				sawCollapse = true
			}
		}
	}
	if !sawDeescalate || !sawCollapse {
		t.Fatalf("cooling incomplete: deescalate=%v collapse=%v; events: %+v",
			sawDeescalate, sawCollapse, e.RouteEvents())
	}
	if ov := e.override("hot"); ov != nil {
		t.Fatalf("override survived collapse: %+v", ov)
	}

	// The audit trail is coherent: sequenced events, per-pass samples.
	evs := e.RouteEvents()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("event sequence not increasing: %+v", evs)
		}
	}
	samples := e.AdaptSamples()
	if len(samples) == 0 {
		t.Fatal("no adapt samples recorded")
	}
	var acted int
	for _, s := range samples {
		acted += s.Events
	}
	if acted != len(evs) {
		t.Fatalf("samples claim %d events, log has %d", acted, len(evs))
	}

	// Delta exports remain fold-equivalent after the whole arc.
	agg := NewAggregator()
	var d bytes.Buffer
	if _, err := e.ExportDelta(&d, new(ExportCursor)); err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Apply("w0", bytes.NewReader(d.Bytes())); err != nil {
		t.Fatal(err)
	}
	foldEquiv(t, "post-lifecycle", e, agg)

	e.Close()
	<-done
}

// TestEngineAdaptiveConcurrentStress exercises the background controller
// against concurrent pushes, queries, stats reads and delta exports — the
// -race job's workhorse for the adaptive plane. Correctness here is "no
// race, no deadlock, no lost engine": the bit-level guarantees are pinned
// by the deterministic tests above.
func TestEngineAdaptiveConcurrentStress(t *testing.T) {
	spec := Window{Size: 64, Period: 32}
	cfg := Config{Spec: spec, Phis: []float64{0.5, 0.9}}
	e, err := NewEngine(EngineConfig{
		Config: cfg, Shards: 4, ResultBuffer: 1 << 10, KeyTTL: 64,
		Adapt: &AdaptConfig{Interval: 200 * time.Microsecond, MinBatches: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := drainResults(e)
	data := workload.Generate(workload.NewNetMon(29), 64*32)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				key := "hot"
				if i%2 == g%2 {
					key = fmt.Sprintf("k%d", (g*400+i)%7)
				}
				vs := data[(i%63)*32 : (i%63)*32+32]
				if err := e.Push(key, vs); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		cur := new(ExportCursor)
		for i := 0; i < 50; i++ {
			e.Query("hot")
			e.Stats()
			e.RouteEvents()
			var buf bytes.Buffer
			if _, err := e.ExportDelta(&buf, cur); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	wg.Wait()
	e.Rebalance() // explicit pass racing the background ticker
	e.Close()
	if e.Rebalance() != nil {
		t.Error("Rebalance on a closed engine returned events")
	}
	<-done
	if err, n := e.Err(); err != nil {
		t.Fatalf("engine saw %d failures, last: %v", n, err)
	}
}
