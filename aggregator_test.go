package qlove

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/workload"
)

// pushAll drains results in the background and pushes every report.
func pushAll(t *testing.T, eng *Engine, reports map[string][]float64) {
	t.Helper()
	for key, vs := range reports {
		if err := eng.Push(key, vs); err != nil {
			t.Fatal(err)
		}
	}
}

func drainResults(eng *Engine) chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range eng.Results() {
		}
	}()
	return done
}

// fullFold reads an engine's full export through the batch path.
func fullFold(t *testing.T, eng *Engine) EngineSnapshot {
	t.Helper()
	var buf bytes.Buffer
	if _, err := eng.Export(&buf); err != nil {
		t.Fatal(err)
	}
	var snap EngineSnapshot
	if _, err := snap.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	return snap
}

// requireSameView asserts the aggregator's merged view for one worker is
// bit-for-bit the engine's full export: same key set, same estimates, same
// stream/element shape.
func requireSameView(t *testing.T, agg *Aggregator, eng *Engine) {
	t.Helper()
	want := fullFold(t, eng)
	got, err := agg.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("aggregator holds %d keys %v, full export has %d %v",
			got.Len(), got.Keys(), want.Len(), want.Keys())
	}
	for _, k := range want.Keys() {
		w, _ := want.Get(k)
		g, ok := got.Get(k)
		if !ok {
			t.Fatalf("key %q missing from aggregator (lost tombstone inverse: never arrived)", k)
		}
		if g.Streams() != w.Streams() || g.Elements() != w.Elements() || g.SealGen() != w.SealGen() {
			t.Fatalf("key %q shape: aggregator streams=%d elements=%d gen=%d, export streams=%d elements=%d gen=%d",
				k, g.Streams(), g.Elements(), g.SealGen(), w.Streams(), w.Elements(), w.SealGen())
		}
		a, b := g.Estimates(), w.Estimates()
		for j := range a {
			if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
				t.Fatalf("key %q ϕ[%d]: aggregator %v != full export %v", k, j, a[j], b[j])
			}
		}
	}
}

// TestAggregatorDeltaFoldMatchesFull: pushing deltas phase by phase, the
// aggregator's cursor-folded state stays bit-for-bit equal to a fresh full
// export — through window growth, expiry, key churn (evictions produce
// tombstones) and recreation.
func TestAggregatorDeltaFoldMatchesFull(t *testing.T) {
	eng, err := NewEngine(EngineConfig{
		Config: Config{Spec: Window{Size: 256, Period: 64}, Phis: []float64{0.5, 0.9, 0.99}, FewK: true},
		Shards: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := drainResults(eng)
	defer func() { eng.Close(); <-done }()

	agg := NewAggregator()
	var cur ExportCursor
	sync := func() {
		t.Helper()
		var buf bytes.Buffer
		if _, err := eng.ExportDelta(&buf, &cur); err != nil {
			t.Fatal(err)
		}
		if _, err := agg.Apply("w0", bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatal(err)
		}
		requireSameView(t, agg, eng)
	}

	gen := workload.NewNetMon(1)
	batch := func(n int) []float64 { return workload.Generate(gen, n) }

	// Phase 1: partial windows (some keys not yet sealed anything).
	pushAll(t, eng, map[string][]float64{"a": batch(100), "b": batch(40), "c": batch(500)})
	sync()
	// Phase 2: growth + an untouched key (b gets nothing: no frame for it).
	pushAll(t, eng, map[string][]float64{"a": batch(300), "c": batch(700), "d": batch(64)})
	sync()
	// Phase 3: the window slides fully past the cursor for c.
	pushAll(t, eng, map[string][]float64{"c": batch(2000)})
	sync()
	// Phase 4: eviction produces a tombstone.
	if !eng.Evict("b") {
		t.Fatal("evict b")
	}
	sync()
	if _, ok, _ := agg.Query("b"); ok {
		t.Fatal("tombstoned key still aggregated")
	}
	// Phase 5: recreation after eviction (new incarnation, fewer seals
	// than the cursor saw — the incarnation check must catch it).
	if !eng.Evict("a") {
		t.Fatal("evict a")
	}
	pushAll(t, eng, map[string][]float64{"a": batch(64)})
	sync()
	// Phase 6: idempotent no-op export: nothing changed, zero frames.
	var buf bytes.Buffer
	if n, err := eng.ExportDelta(&buf, &cur); err != nil || n != 0 {
		t.Fatalf("no-change delta export wrote %d bytes (err %v), want 0", n, err)
	}
}

// TestAggregatorMultiWorker: per-key cross-worker merging happens at read
// time in ascending worker-ID order — bit-identical to the batch fold of
// the workers' full blobs in the same order.
func TestAggregatorMultiWorker(t *testing.T) {
	cfg := Config{Spec: Window{Size: 400, Period: 100}, Phis: []float64{0.5, 0.99}, FewK: true}
	agg := NewAggregator()
	var batchAgg EngineSnapshot
	for w := 0; w < 3; w++ {
		eng, err := NewEngine(EngineConfig{Config: cfg, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		done := drainResults(eng)
		gen := workload.NewNetMon(int64(100 + w))
		pushAll(t, eng, map[string][]float64{
			"shared":                  workload.Generate(gen, 900),
			fmt.Sprintf("only-%d", w): workload.Generate(gen, 300),
		})
		eng.Close()
		<-done
		// Delta path into the service-style aggregator...
		var cur ExportCursor
		var buf bytes.Buffer
		if _, err := eng.ExportDelta(&buf, &cur); err != nil {
			t.Fatal(err)
		}
		if _, err := agg.Apply(fmt.Sprintf("worker-%03d", w), bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatal(err)
		}
		// ...and the batch fold of full blobs in worker order.
		var full bytes.Buffer
		if _, err := eng.Export(&full); err != nil {
			t.Fatal(err)
		}
		var one EngineSnapshot
		if _, err := one.ReadFrom(bytes.NewReader(full.Bytes())); err != nil {
			t.Fatal(err)
		}
		if batchAgg, err = batchAgg.Merge(one); err != nil {
			t.Fatal(err)
		}
	}
	got, err := agg.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != batchAgg.Len() {
		t.Fatalf("aggregator %d keys, batch fold %d", got.Len(), batchAgg.Len())
	}
	for _, k := range batchAgg.Keys() {
		w, _ := batchAgg.Get(k)
		g, ok := got.Get(k)
		if !ok {
			t.Fatalf("key %q missing", k)
		}
		if g.Streams() != w.Streams() {
			t.Fatalf("key %q: %d streams, want %d", k, g.Streams(), w.Streams())
		}
		a, b := g.Estimates(), w.Estimates()
		for j := range a {
			if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
				t.Fatalf("key %q: aggregator %v != batch fold %v", k, a, b)
			}
		}
	}
	// Per-key query agrees with the whole-view snapshot.
	sn, ok, err := agg.Query("shared")
	if err != nil || !ok {
		t.Fatalf("query shared: %v ok=%v", err, ok)
	}
	if sn.Streams() != 3 {
		t.Fatalf("shared merged %d streams, want 3", sn.Streams())
	}
	if agg.Workers() != 3 || agg.Keys() != batchAgg.Len() {
		t.Fatalf("workers=%d keys=%d", agg.Workers(), agg.Keys())
	}
}

// TestAggregatorRejectsBadDeltas: cursor mismatches are loud errors, never
// silent misfolds.
func TestAggregatorRejectsBadDeltas(t *testing.T) {
	cfg := Config{Spec: Window{Size: 256, Period: 64}, Phis: []float64{0.5}}
	eng, err := NewEngine(EngineConfig{Config: cfg, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	done := drainResults(eng)
	defer func() { eng.Close(); <-done }()
	gen := workload.NewNetMon(9)
	pushAll(t, eng, map[string][]float64{"k": workload.Generate(gen, 320)})

	var bootstrap, next bytes.Buffer
	var cur ExportCursor
	if _, err := eng.ExportDelta(&bootstrap, &cur); err != nil {
		t.Fatal(err)
	}
	pushAll(t, eng, map[string][]float64{"k": workload.Generate(gen, 320)})
	if _, err := eng.ExportDelta(&next, &cur); err != nil {
		t.Fatal(err)
	}

	// A non-bootstrap delta for a worker that never bootstrapped.
	agg := NewAggregator()
	if _, err := agg.Apply("w", bytes.NewReader(next.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "never bootstrapped") {
		t.Fatalf("orphan delta: %v", err)
	}
	// Applying the bootstrap twice then the delta: the second bootstrap
	// replaces (idempotent), so the delta still folds.
	agg = NewAggregator()
	for i := 0; i < 2; i++ {
		if _, err := agg.Apply("w", bytes.NewReader(bootstrap.Bytes())); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := agg.Apply("w", bytes.NewReader(next.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Replaying the same delta is a cursor mismatch.
	if _, err := agg.Apply("w", bytes.NewReader(next.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "cursor") {
		t.Fatalf("replayed delta: %v", err)
	}
	// DropWorker forgets everything.
	if !agg.DropWorker("w") || agg.Workers() != 0 || agg.Keys() != 0 {
		t.Fatal("DropWorker left state behind")
	}
}

// TestAggregatorPushDeadline: the service-plane worker GC. A worker that
// goes silent past the push deadline disappears from the merged view (and
// is physically dropped by the next sweep), while a worker that keeps
// pushing is never touched — however far the clock advances.
func TestAggregatorPushDeadline(t *testing.T) {
	cfg := Config{Spec: Window{Size: 256, Period: 64}, Phis: []float64{0.5, 0.99}}
	clk := newFakeClock(time.Unix(5_000_000, 0))
	agg := NewAggregator()
	agg.SetPushDeadline(time.Minute, clk.now)

	mkBlob := func(seed int64, key string) []byte {
		eng, err := NewEngine(EngineConfig{Config: cfg, Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		done := drainResults(eng)
		pushAll(t, eng, map[string][]float64{
			key:      workload.Generate(workload.NewNetMon(seed), 512),
			"shared": workload.Generate(workload.NewNetMon(seed+50), 256),
		})
		eng.Close()
		<-done
		var buf bytes.Buffer
		if _, err := eng.Export(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	silentBlob := mkBlob(1, "only-silent")
	activeBlob := mkBlob(2, "only-active")
	apply := func(worker string, blob []byte) {
		t.Helper()
		if _, err := agg.Apply(worker, bytes.NewReader(blob)); err != nil {
			t.Fatal(err)
		}
	}
	apply("silent", silentBlob)
	apply("active", activeBlob)
	if agg.Workers() != 2 || agg.Keys() != 3 {
		t.Fatalf("workers=%d keys=%d, want 2/3", agg.Workers(), agg.Keys())
	}
	shared, ok, err := agg.Query("shared")
	if err != nil || !ok || shared.Streams() != 2 {
		t.Fatalf("shared: ok=%v streams=%d err=%v", ok, shared.Streams(), err)
	}

	// The active worker keeps pushing while the silent one stops; each
	// re-push is within the deadline, so the active worker survives any
	// total elapsed time.
	for i := 0; i < 4; i++ {
		clk.advance(45 * time.Second)
		apply("active", activeBlob)
	}

	// The silent worker is past the deadline: reads exclude it (the
	// snapshot "shrinks") even before any sweep ran.
	if agg.Workers() != 1 {
		t.Fatalf("workers=%d, want 1 after deadline", agg.Workers())
	}
	if _, ok, _ := agg.Query("only-silent"); ok {
		t.Fatal("silent worker's key still served")
	}
	shared, ok, err = agg.Query("shared")
	if err != nil || !ok || shared.Streams() != 1 {
		t.Fatalf("shared after silence: ok=%v streams=%d err=%v", ok, shared.Streams(), err)
	}
	snap, err := agg.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Len() != 2 {
		t.Fatalf("snapshot holds %d keys %v, want 2", snap.Len(), snap.Keys())
	}
	if _, ok := snap.Get("only-active"); !ok {
		t.Fatal("active worker's key was dropped")
	}

	// The Apply-piggybacked sweep already reclaimed the silent worker's
	// state; an explicit Sweep finds nothing left.
	if n := agg.Sweep(); n != 0 {
		t.Fatalf("Sweep dropped %d workers, want 0 (already swept on Apply)", n)
	}

	// A worker swept while silent re-bootstraps cleanly.
	apply("silent", silentBlob)
	if agg.Workers() != 2 || agg.Keys() != 3 {
		t.Fatalf("after re-bootstrap: workers=%d keys=%d", agg.Workers(), agg.Keys())
	}

	// Explicit Sweep without interleaved pushes also reclaims.
	clk.advance(2 * time.Minute)
	if n := agg.Sweep(); n != 2 {
		t.Fatalf("Sweep dropped %d workers, want 2", n)
	}
	if agg.Workers() != 0 || agg.Keys() != 0 {
		t.Fatalf("after sweep: workers=%d keys=%d", agg.Workers(), agg.Keys())
	}
}

// TestAggregatorPushDeadlineArmsLate: workers folded before the GC was
// armed get dated at arming time, so they are retired one deadline later,
// not instantly.
func TestAggregatorPushDeadlineArmsLate(t *testing.T) {
	cfg := Config{Spec: Window{Size: 128, Period: 64}, Phis: []float64{0.5}}
	eng, err := NewEngine(EngineConfig{Config: cfg, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	done := drainResults(eng)
	pushAll(t, eng, map[string][]float64{"k": workload.Generate(workload.NewNetMon(3), 256)})
	eng.Close()
	<-done
	var blob bytes.Buffer
	if _, err := eng.Export(&blob); err != nil {
		t.Fatal(err)
	}

	agg := NewAggregator() // GC not armed yet: real clock stamps are fine
	if _, err := agg.Apply("w", bytes.NewReader(blob.Bytes())); err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock(time.Unix(9_000_000, 0))
	agg.SetPushDeadline(time.Minute, clk.now)
	if agg.Workers() != 1 {
		t.Fatal("pre-armed worker retired instantly")
	}
	clk.advance(2 * time.Minute)
	if agg.Workers() != 0 {
		t.Fatal("pre-armed worker survived the deadline")
	}
}
