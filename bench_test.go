// Benchmarks regenerating the paper's evaluation artifacts, one per table
// and figure (§5). Each benchmark runs its experiment at a reduced dataset
// scale per iteration so `go test -bench=.` completes in minutes; the full
// paper-scale sweep is `go run ./cmd/qlove-bench`. Custom metrics surface
// the headline numbers (value error, throughput) through the testing.B
// reporting machinery.
//
// Throughput-shaped artifacts (Figure 4, Figure 5) additionally have
// direct testing.B loops that measure events/second of the operators
// themselves.
package qlove

import (
	"io"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/stream"
	"repro/internal/workload"
)

// benchScale keeps per-iteration dataset sizes tractable for testing.B.
const benchScale = 0.05

func runExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		opts := bench.Options{W: io.Discard, Seed: 1, Scale: benchScale}
		if err := bench.Experiments[name](opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1Histogram regenerates Figure 1 (NetMon histogram).
func BenchmarkFig1Histogram(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkTable1Accuracy regenerates Table 1 (accuracy + space of the
// five approximation policies).
func BenchmarkTable1Accuracy(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2PeriodSweep regenerates Table 2 (error without few-k vs
// period size).
func BenchmarkTable2PeriodSweep(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable3TopK regenerates Table 3 (top-k merging fraction sweep).
func BenchmarkTable3TopK(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkTable4SampleK regenerates Table 4 (sample-k under injected
// bursts).
func BenchmarkTable4SampleK(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkTable5NonIID regenerates Table 5 (AR(1) sensitivity).
func BenchmarkTable5NonIID(b *testing.B) { runExperiment(b, "table5") }

// BenchmarkRedundancy regenerates the §5.4 data-redundancy study.
func BenchmarkRedundancy(b *testing.B) { runExperiment(b, "redundancy") }

// BenchmarkParetoSkew regenerates the §5.4 skewness study.
func BenchmarkParetoSkew(b *testing.B) { runExperiment(b, "pareto") }

// BenchmarkFewKThroughput regenerates the §5.3 few-k throughput note.
func BenchmarkFewKThroughput(b *testing.B) { runExperiment(b, "fewk-throughput") }

// BenchmarkErrBound regenerates the Appendix A bound-coverage check.
func BenchmarkErrBound(b *testing.B) { runExperiment(b, "errbound") }

// --- Figure 4: per-policy operator throughput, window 100K / period 1K ---

func fig4Data(b *testing.B, n int) []float64 {
	b.Helper()
	return workload.Generate(workload.NewNetMon(1), n)
}

func benchThroughput(b *testing.B, mk func(spec Window, phis []float64) (Policy, error), spec Window) {
	b.Helper()
	phis := []float64{0.5, 0.9, 0.99, 0.999}
	data := fig4Data(b, spec.Size+200*spec.Period)
	b.ReportAllocs()
	b.ResetTimer()
	elements := 0
	for i := 0; i < b.N; i++ {
		p, err := mk(spec, phis)
		if err != nil {
			b.Fatal(err)
		}
		st, err := stream.Feed(p, spec, data)
		if err != nil {
			b.Fatal(err)
		}
		elements += st.Elements
	}
	b.ReportMetric(float64(elements)/b.Elapsed().Seconds()/1e6, "Mev/s")
}

var fig4Spec = Window{Size: 100_000, Period: 1000}

// BenchmarkFig4QLOVE measures QLOVE's throughput (Figure 4, first bar).
func BenchmarkFig4QLOVE(b *testing.B) {
	benchThroughput(b, func(spec Window, phis []float64) (Policy, error) {
		return New(Config{Spec: spec, Phis: phis})
	}, fig4Spec)
}

// BenchmarkFig4CMQS1x measures CMQS at ε = 0.02 (Figure 4, second bar).
func BenchmarkFig4CMQS1x(b *testing.B) {
	benchThroughput(b, func(spec Window, phis []float64) (Policy, error) {
		return NewCMQS(spec, phis, 0.02)
	}, fig4Spec)
}

// BenchmarkFig4CMQS5x measures CMQS at ε = 0.10 (Figure 4, third bar).
func BenchmarkFig4CMQS5x(b *testing.B) {
	benchThroughput(b, func(spec Window, phis []float64) (Policy, error) {
		return NewCMQS(spec, phis, 0.10)
	}, fig4Spec)
}

// BenchmarkFig4CMQS10x measures CMQS at ε = 0.20 (Figure 4, fourth bar).
func BenchmarkFig4CMQS10x(b *testing.B) {
	benchThroughput(b, func(spec Window, phis []float64) (Policy, error) {
		return NewCMQS(spec, phis, 0.20)
	}, fig4Spec)
}

// BenchmarkFig4Exact measures the Exact baseline (Figure 4, last bar).
func BenchmarkFig4Exact(b *testing.B) {
	benchThroughput(b, func(spec Window, phis []float64) (Policy, error) {
		return NewExact(spec, phis)
	}, fig4Spec)
}

// --- Figure 5: scalability vs window size, period 1K ---

func benchFig5(b *testing.B, mkPolicy func(spec Window, phis []float64) (Policy, error), size int, gen workload.Generator) {
	b.Helper()
	spec := Window{Size: size, Period: 1000}
	data := workload.Generate(gen, size+50*spec.Period)
	benchFeed(b, mkPolicy, spec, data)
}

func benchFeed(b *testing.B, mk func(spec Window, phis []float64) (Policy, error), spec Window, data []float64) {
	b.Helper()
	phis := []float64{0.5, 0.9, 0.99, 0.999}
	b.ResetTimer()
	elements := 0
	for i := 0; i < b.N; i++ {
		p, err := mk(spec, phis)
		if err != nil {
			b.Fatal(err)
		}
		st, err := stream.Feed(p, spec, data)
		if err != nil {
			b.Fatal(err)
		}
		elements += st.Elements
	}
	b.ReportMetric(float64(elements)/b.Elapsed().Seconds()/1e6, "Mev/s")
}

func mkQLOVE(spec Window, phis []float64) (Policy, error) {
	return New(Config{Spec: spec, Phis: phis})
}

// BenchmarkFig5NormalQLOVE1K..1M: QLOVE on Normal data (Figure 5a).
func BenchmarkFig5NormalQLOVE1K(b *testing.B) {
	benchFig5(b, mkQLOVE, 1000, workload.NewNormal(1, 1e6, 5e4))
}
func BenchmarkFig5NormalQLOVE100K(b *testing.B) {
	benchFig5(b, mkQLOVE, 100_000, workload.NewNormal(1, 1e6, 5e4))
}
func BenchmarkFig5NormalQLOVE1M(b *testing.B) {
	benchFig5(b, mkQLOVE, 1_000_000, workload.NewNormal(1, 1e6, 5e4))
}

// BenchmarkFig5NormalExact1K..1M: Exact on Normal data (Figure 5a).
func BenchmarkFig5NormalExact1K(b *testing.B) {
	benchFig5(b, NewExact, 1000, workload.NewNormal(1, 1e6, 5e4))
}
func BenchmarkFig5NormalExact100K(b *testing.B) {
	benchFig5(b, NewExact, 100_000, workload.NewNormal(1, 1e6, 5e4))
}

// BenchmarkFig5UniformQLOVE*: QLOVE on Uniform data (Figure 5b).
func BenchmarkFig5UniformQLOVE1K(b *testing.B) {
	benchFig5(b, mkQLOVE, 1000, workload.NewUniform(1, 90, 110))
}
func BenchmarkFig5UniformQLOVE1M(b *testing.B) {
	benchFig5(b, mkQLOVE, 1_000_000, workload.NewUniform(1, 90, 110))
}

// BenchmarkFig5UniformExact1K: Exact on Uniform data (Figure 5b).
func BenchmarkFig5UniformExact1K(b *testing.B) {
	benchFig5(b, NewExact, 1000, workload.NewUniform(1, 90, 110))
}

// --- Single-stream ingestion: the hot path this repo optimizes ---
//
// BenchmarkObserve* measure the QLOVE operator's sustained ingestion rate
// under the full window protocol (observe + seal + expire + evaluate) on
// the Figure 4 window shape. BenchmarkObserveQLOVE drives the
// element-at-a-time Observe contract; BenchmarkObserveBatchQLOVE drives
// the batched path the runners now use. The pointer-tree seed measured
// 6.9 Mev/s on this workload (see README); the acceptance bar for the
// arena + batch refactor is >= 2x that.

func benchIngest(b *testing.B, batched bool) {
	b.Helper()
	spec := fig4Spec
	phis := []float64{0.5, 0.9, 0.99, 0.999}
	data := fig4Data(b, spec.Size+200*spec.Period)
	b.ReportAllocs()
	b.ResetTimer()
	elements := 0
	for i := 0; i < b.N; i++ {
		p, err := New(Config{Spec: spec, Phis: phis})
		if err != nil {
			b.Fatal(err)
		}
		var st stream.RunStats
		if batched {
			st, err = stream.Feed(p, spec, data)
		} else {
			st, err = feedElementwise(p, spec, data)
		}
		if err != nil {
			b.Fatal(err)
		}
		elements += st.Elements
	}
	b.ReportMetric(float64(elements)/b.Elapsed().Seconds()/1e6, "Mev/s")
}

// feedElementwise is stream.Feed with per-element Observe dispatch — the
// seed's ingestion loop, kept for the before/after comparison.
func feedElementwise(p Policy, spec Window, data []float64) (stream.RunStats, error) {
	if err := spec.Validate(); err != nil {
		return stream.RunStats{}, err
	}
	nEvals := spec.Evaluations(len(data))
	start := time.Now()
	pos := 0
	for i := 0; i < nEvals; i++ {
		lo, hi := spec.EvalBounds(i)
		if i > 0 {
			p.Expire(data[lo-spec.Period : lo])
		}
		for ; pos < hi; pos++ {
			p.Observe(data[pos])
		}
		_ = p.Result()
	}
	return stream.RunStats{Elements: pos, Evaluations: nEvals, Elapsed: time.Since(start)}, nil
}

// BenchmarkObserveQLOVE: element-at-a-time ingestion (arena tree, fused
// seal, but per-element interface dispatch and quantization).
func BenchmarkObserveQLOVE(b *testing.B) { benchIngest(b, false) }

// BenchmarkObserveBatchQLOVE: batched ingestion — the production path.
func BenchmarkObserveBatchQLOVE(b *testing.B) { benchIngest(b, true) }

// --- Ablations (DESIGN.md): design choices behind QLOVE ---

// BenchmarkAblationQuantizationOn/Off isolates §3.1 value compression.
func BenchmarkAblationQuantizationOn(b *testing.B) {
	benchThroughput(b, func(spec Window, phis []float64) (Policy, error) {
		return New(Config{Spec: spec, Phis: phis, Digits: 3})
	}, Window{Size: 32_000, Period: 1000})
}
func BenchmarkAblationQuantizationOff(b *testing.B) {
	benchThroughput(b, func(spec Window, phis []float64) (Policy, error) {
		return New(Config{Spec: spec, Phis: phis, Digits: -1})
	}, Window{Size: 32_000, Period: 1000})
}

// BenchmarkAblationFewKOn/Off isolates the few-k pipelines' overhead.
func BenchmarkAblationFewKOn(b *testing.B) {
	benchThroughput(b, func(spec Window, phis []float64) (Policy, error) {
		return New(Config{Spec: spec, Phis: phis, FewK: true})
	}, Window{Size: 32_000, Period: 1000})
}
func BenchmarkAblationFewKOff(b *testing.B) {
	benchThroughput(b, func(spec Window, phis []float64) (Policy, error) {
		return New(Config{Spec: spec, Phis: phis})
	}, Window{Size: 32_000, Period: 1000})
}
