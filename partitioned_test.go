package qlove

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"repro/internal/workload"
)

// partitionHarness drives one salted multi-shard engine through
// delta-export rounds; tests apply each round's blob to a partition and
// to a single-aggregator reference and compare the views bit-for-bit.
type partitionHarness struct {
	eng  *Engine
	done chan struct{}
	gen  workload.Generator
	cur  ExportCursor
	keys []string
}

func newPartitionHarness(t *testing.T, seed int64, nkeys int) *partitionHarness {
	t.Helper()
	cfg := Config{Spec: Window{Size: 256, Period: 64}, Phis: []float64{0.5, 0.99}, FewK: true}
	eng, err := NewEngine(EngineConfig{Config: cfg, Shards: 2, RouteSalt: 2})
	if err != nil {
		t.Fatal(err)
	}
	h := &partitionHarness{eng: eng, done: drainResults(eng), gen: workload.NewNetMon(seed)}
	for i := 0; i < nkeys; i++ {
		h.keys = append(h.keys, fmt.Sprintf("key-%d", i))
	}
	t.Cleanup(func() { eng.Close(); <-h.done })
	return h
}

// round pushes one batch per key and exports the next delta blob.
func (h *partitionHarness) round(t *testing.T) []byte {
	t.Helper()
	for ki, k := range h.keys {
		if err := h.eng.Push(k, workload.Generate(h.gen, 120+20*ki)); err != nil {
			t.Fatal(err)
		}
	}
	var blob bytes.Buffer
	if _, err := h.eng.ExportDelta(&blob, &h.cur); err != nil {
		t.Fatal(err)
	}
	return blob.Bytes()
}

// requirePartitionView asserts the partition's snapshot bytes and per-key
// query estimates are bit-identical to the reference aggregator's.
func requirePartitionView(t *testing.T, step string, p *Partitioned, ref *Aggregator, keys []string) {
	t.Helper()
	if got, want := snapshotBytes(t, p), snapshotBytes(t, ref); !bytes.Equal(got, want) {
		t.Fatalf("%s: partition snapshot diverges from reference (%d vs %d bytes)", step, len(got), len(want))
	}
	for _, k := range keys {
		sn, ok, err := p.Query(k)
		rsn, rok, rerr := ref.Query(k)
		if err != nil || rerr != nil || ok != rok {
			t.Fatalf("%s: query %q: ok=%v err=%v, reference ok=%v err=%v", step, k, ok, err, rok, rerr)
		}
		if !ok {
			continue
		}
		a, b := sn.Estimates(), rsn.Estimates()
		for j := range a {
			if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
				t.Fatalf("%s: query %q ϕ[%d]: %v != reference %v", step, k, j, a[j], b[j])
			}
		}
	}
	if p.Keys() != ref.Keys() {
		t.Fatalf("%s: partition keys %d != reference %d", step, p.Keys(), ref.Keys())
	}
}

// TestPartitionedReplication runs an R=2 partition over 3 replicas
// against a single-aggregator reference: every view stays bit-identical
// across delta rounds, and every key's state lives on exactly its slot's
// two owners.
func TestPartitionedReplication(t *testing.T) {
	p, err := NewPartitionedConfig(PartitionedConfig{Replicas: 3, Replication: 2, Agg: AggregatorConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Replication() != 2 {
		t.Fatalf("replication %d", p.Replication())
	}
	ref := mkAgg(t, AggregatorConfig{})
	h := newPartitionHarness(t, 77, 6)
	for round := 0; round < 3; round++ {
		blob := h.round(t)
		pn, err := p.Apply("w", bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		rn, err := ref.Apply("w", bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		if pn != rn {
			t.Fatalf("round %d: partition applied %d frames, reference %d", round, pn, rn)
		}
		requirePartitionView(t, fmt.Sprintf("round %d", round), p, ref, h.keys)
	}

	// Residency: each key is queryable on exactly its slot's R owners.
	table := p.SlotTable()
	for _, k := range h.keys {
		for i := 0; i < p.Replicas(); i++ {
			_, ok, err := p.Replica(i).Query(k)
			if err != nil {
				t.Fatal(err)
			}
			if want := table.IsOwner(SlotOf(k), i); ok != want {
				t.Fatalf("key %q (slot %d) on replica %d: ok=%v, owner=%v", k, SlotOf(k), i, ok, want)
			}
		}
	}
	if p.Workers() != 1 {
		t.Fatalf("workers %d", p.Workers())
	}
}

// TestPartitionedMoveSlot grows a 2-owner partition onto a third, empty
// replica by live slot moves: only the intended slots migrate, answers
// stay bit-identical to an unresized single-aggregator reference before,
// during, and after the migration, and the workers' delta chains keep
// folding cleanly afterwards (the replay preserved their cursors).
func TestPartitionedMoveSlot(t *testing.T) {
	initial, err := NewSlotMap(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPartitionedConfig(PartitionedConfig{Replicas: 3, Slots: initial, Agg: AggregatorConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	ref := mkAgg(t, AggregatorConfig{})
	h := newPartitionHarness(t, 99, 24)

	apply := func(step string, blob []byte) {
		t.Helper()
		if _, err := p.Apply("w", bytes.NewReader(blob)); err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		if _, err := ref.Apply("w", bytes.NewReader(blob)); err != nil {
			t.Fatalf("%s: %v", step, err)
		}
	}
	apply("bootstrap", h.round(t))
	requirePartitionView(t, "bootstrap", p, ref, h.keys)
	if n := p.Replica(2).Keys(); n != 0 {
		t.Fatalf("new replica holds %d keys before any move", n)
	}

	// The deterministic hash spreads 24 keys over both moved (s%3 == 2)
	// and unmoved slots; the test relies on both classes being non-empty.
	movedKeys, stayKeys := 0, 0
	for _, k := range h.keys {
		if SlotOf(k)%3 == 2 {
			movedKeys++
		} else {
			stayKeys++
		}
	}
	if movedKeys == 0 || stayKeys == 0 {
		t.Fatalf("key set does not cover moved and unmoved slots (%d/%d)", movedKeys, stayKeys)
	}

	// Grow toward the canonical 3-replica layout: re-home every slot whose
	// 3-way primary is the new replica. Check bit-identity mid-migration.
	table := p.SlotTable()
	moved := map[int]bool{}
	for s := 0; s < Slots; s++ {
		if s%3 != 2 {
			continue
		}
		if err := p.MoveSlot(s, table.Primary(s), 2); err != nil {
			t.Fatalf("move slot %d: %v", s, err)
		}
		moved[s] = true
		if len(moved) == 20 {
			requirePartitionView(t, "mid-migration", p, ref, h.keys)
		}
	}
	requirePartitionView(t, "post-migration", p, ref, h.keys)

	// Slot-level diff: moved slots' keys now live only on replica 2, the
	// old owner dropped its copy; unmoved slots' keys never moved.
	for _, k := range h.keys {
		s := SlotOf(k)
		owner := s % 2
		if moved[s] {
			owner = 2
		}
		for i := 0; i < 3; i++ {
			_, ok, err := p.Replica(i).Query(k)
			if err != nil {
				t.Fatal(err)
			}
			if ok != (i == owner) {
				t.Fatalf("key %q (slot %d, moved=%v) on replica %d: ok=%v, owner %d", k, s, moved[s], i, ok, owner)
			}
		}
	}
	final := p.SlotTable()
	for s := 0; s < Slots; s++ {
		want := s % 2
		if moved[s] {
			want = 2
		}
		if final.Primary(s) != want {
			t.Fatalf("slot %d primary %d after migration, want %d", s, final.Primary(s), want)
		}
	}

	// Delta chains continue across the migration: the replay carried the
	// workers' seal cursors, so the next delta folds without re-bootstrap.
	apply("post-move round", h.round(t))
	requirePartitionView(t, "post-move round", p, ref, h.keys)

	// Invalid moves are rejected.
	someMoved := -1
	for s := range moved {
		someMoved = s
		break
	}
	for _, bad := range []struct {
		name           string
		slot, from, to int
	}{
		{"slot out of range", Slots, 0, 2},
		{"negative slot", -1, 0, 2},
		{"source out of range", 3, 5, 2},
		{"destination out of range", 3, 0, 7},
		{"source does not own", someMoved, 0, 1},
		{"destination already owns", someMoved, 2, 2},
	} {
		if err := p.MoveSlot(bad.slot, bad.from, bad.to); err == nil {
			t.Fatalf("%s: accepted", bad.name)
		}
	}
}
