package qlove

import (
	"math"
	"testing"
	"time"

	"repro/internal/workload"
)

func mustQLOVE(t *testing.T, cfg Config) *QLOVE {
	t.Helper()
	q, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestTimedMonitorValidation(t *testing.T) {
	q := mustQLOVE(t, Config{Spec: Window{Size: 100, Period: 10}, Phis: []float64{0.5}})
	if _, err := NewTimedMonitor(nil, time.Minute, time.Second); err == nil {
		t.Fatal("nil policy accepted")
	}
	if _, err := NewTimedMonitor(q, time.Second, time.Minute); err == nil {
		t.Fatal("size < period accepted")
	}
	if _, err := NewTimedMonitor(q, 90*time.Second, time.Minute); err == nil {
		t.Fatal("non-multiple size accepted")
	}
	if _, err := NewTimedMonitor(q, time.Hour, time.Minute); err != nil {
		t.Fatal(err)
	}
}

func TestTimedMonitorEvaluatesPerPeriod(t *testing.T) {
	q := mustQLOVE(t, Config{Spec: Window{Size: 4000, Period: 1000}, Phis: []float64{0.5}, Digits: -1})
	mon, err := NewTimedMonitor(q, 4*time.Minute, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2026, 6, 13, 12, 0, 0, 0, time.UTC)
	gen := workload.NewNormal(1, 1000, 100)
	results := 0
	var last Result
	// 10 minutes of traffic, 100 events per minute.
	for i := 0; i < 1000; i++ {
		ts := start.Add(time.Duration(i) * 600 * time.Millisecond)
		if res, ok := mon.Push(gen.Next(), ts); ok {
			results++
			last = res
		}
	}
	// First eval after 4 full periods; one per period after that. The
	// 1000th event lands at +599.4s => 9 completed minutes => 6 evals.
	if results != 6 {
		t.Fatalf("results = %d, want 6", results)
	}
	if math.Abs(last.Estimates[0]-1000) > 20 {
		t.Fatalf("median = %v, want ≈ 1000", last.Estimates[0])
	}
	if mon.Evaluations() != results {
		t.Fatalf("Evaluations = %d", mon.Evaluations())
	}
}

func TestTimedMonitorEmptyPeriodsSkipped(t *testing.T) {
	q := mustQLOVE(t, Config{Spec: Window{Size: 400, Period: 100}, Phis: []float64{0.5}, Digits: -1})
	mon, err := NewTimedMonitor(q, 4*time.Second, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2026, 6, 13, 12, 0, 0, 100*1000*1000, time.UTC)
	// Period 0 gets values 1..9; periods 1-2 empty; period 3 gets 101..109.
	for i := 1; i < 10; i++ {
		mon.Push(float64(i), start.Add(time.Duration(i)*time.Millisecond))
	}
	for i := 1; i < 10; i++ {
		mon.Push(float64(100+i), start.Add(3*time.Second+time.Duration(i)*time.Millisecond))
	}
	// Flush past the window: evaluation covers the two non-empty
	// sub-windows; Level 2 averages their medians (5 and 105).
	res, ok := mon.Flush(start.Add(4 * time.Second))
	if !ok {
		t.Fatal("no evaluation after window elapsed")
	}
	if res.Estimates[0] != 55 {
		t.Fatalf("median = %v, want mean-of-medians 55", res.Estimates[0])
	}
}

func TestTimedMonitorExpiryByTime(t *testing.T) {
	q := mustQLOVE(t, Config{Spec: Window{Size: 200, Period: 100}, Phis: []float64{0.5}, Digits: -1})
	mon, err := NewTimedMonitor(q, 2*time.Second, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2026, 6, 13, 12, 0, 0, 100*1000*1000, time.UTC)
	// Period 0: median 10. Period 1: median 20. Period 2: median 30.
	feed := func(base float64, offset time.Duration) {
		for i := 0; i < 5; i++ {
			mon.Push(base, start.Add(offset+time.Duration(i)*time.Millisecond))
		}
	}
	feed(10, 0)
	feed(20, time.Second)
	feed(30, 2*time.Second)
	res, ok := mon.Flush(start.Add(3 * time.Second))
	if !ok {
		t.Fatal("no evaluation")
	}
	// Window covers periods 1-2 only: mean(20, 30) = 25.
	if res.Estimates[0] != 25 {
		t.Fatalf("median = %v, want 25 (period 0 expired)", res.Estimates[0])
	}
}

func TestTimedMonitorPushBatchMatchesPush(t *testing.T) {
	// Batches sharing one timestamp must be observationally identical to
	// repeated single Pushes with that timestamp — same evaluations, same
	// bits — across boundary-crossing, multi-boundary and empty batches.
	spec := Window{Size: 1200, Period: 300}
	phis := []float64{0.5, 0.9, 0.999}
	mk := func() *TimedMonitor {
		q := mustQLOVE(t, Config{Spec: spec, Phis: phis, FewK: true})
		mon, err := NewTimedMonitor(q, 4*time.Second, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return mon
	}
	start := time.Date(2026, 7, 28, 9, 0, 0, 0, time.UTC)
	gen := workload.NewNetMon(17)
	type report struct {
		at time.Time
		vs []float64
	}
	var reports []report
	// 40 reports at irregular intervals (including a 3-period silence and
	// an empty report), with ragged sizes.
	at := start
	for i := 0; i < 40; i++ {
		step := time.Duration(50+i*37%400) * time.Millisecond
		if i == 25 {
			step = 3 * time.Second
		}
		at = at.Add(step)
		n := (i * i) % 173
		reports = append(reports, report{at: at, vs: workload.Generate(gen, n)})
	}

	m1 := mk()
	var want []Result
	for _, r := range reports {
		if len(r.vs) == 0 {
			if res, ok := m1.Flush(r.at); ok {
				want = append(want, res)
			}
			continue
		}
		for i, v := range r.vs {
			res, ok := m1.Push(v, r.at)
			if ok {
				if i != 0 {
					t.Fatalf("evaluation produced mid-report at element %d", i)
				}
				want = append(want, res)
			}
		}
	}

	m2 := mk()
	var got []Result
	for _, r := range reports {
		if res, ok := m2.PushBatch(r.at, r.vs); ok {
			got = append(got, res)
		}
	}

	if len(got) != len(want) {
		t.Fatalf("results: batch %d, element %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Evaluation != want[i].Evaluation {
			t.Fatalf("result %d: evaluation %d != %d", i, got[i].Evaluation, want[i].Evaluation)
		}
		for j := range want[i].Estimates {
			if math.Float64bits(got[i].Estimates[j]) != math.Float64bits(want[i].Estimates[j]) {
				t.Fatalf("result %d ϕ=%v: %v != %v", i, phis[j], got[i].Estimates[j], want[i].Estimates[j])
			}
		}
	}
	if m2.Evaluations() != m1.Evaluations() {
		t.Fatalf("evaluations diverge: %d vs %d", m2.Evaluations(), m1.Evaluations())
	}
}

func TestTimedMonitorFlushBeforeStart(t *testing.T) {
	q := mustQLOVE(t, Config{Spec: Window{Size: 100, Period: 10}, Phis: []float64{0.5}})
	mon, _ := NewTimedMonitor(q, time.Minute, time.Second)
	if _, ok := mon.Flush(time.Now()); ok {
		t.Fatal("Flush before any Push produced a result")
	}
}
