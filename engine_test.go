// Tests for the keyed sharded Engine: per-key results must be bit-identical
// to a single Monitor fed the same stream, snapshots must merge across
// sub-streams within Level-2 tolerance, and the whole surface must be clean
// under the race detector with concurrent producers.
package qlove

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/workload"
)

// engineResults drains an engine's results into per-key ordered slices
// until the channel closes.
func engineResults(e *Engine) map[string][]Result {
	out := map[string][]Result{}
	for kr := range e.Results() {
		out[kr.Key] = append(out[kr.Key], kr.Result)
	}
	return out
}

func TestEngineSingleKeyMatchesMonitor(t *testing.T) {
	spec := Window{Size: 1200, Period: 300}
	phis := []float64{0.5, 0.9, 0.99, 0.999}
	cfg := Config{Spec: spec, Phis: phis, FewK: true}
	data := workload.Generate(workload.NewNetMon(5), 9000)

	// Reference: a single Monitor over the same stream, same batch shape.
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := NewMonitor(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	var want []Result
	for pos := 0; pos < len(data); pos += 137 {
		end := pos + 137
		if end > len(data) {
			end = len(data)
		}
		mon.PushBatch(data[pos:end], func(r Result) { want = append(want, r) })
	}

	e, err := NewEngine(EngineConfig{Config: cfg, Shards: 3, ResultBuffer: 4096})
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(data); pos += 137 {
		end := pos + 137
		if end > len(data) {
			end = len(data)
		}
		if err := e.Push("api-latency", data[pos:end]); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()
	got := engineResults(e)["api-latency"]

	if len(got) != len(want) {
		t.Fatalf("evaluations: engine %d, monitor %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Evaluation != want[i].Evaluation {
			t.Fatalf("eval %d: index %d != %d", i, got[i].Evaluation, want[i].Evaluation)
		}
		for j := range want[i].Estimates {
			if math.Float64bits(got[i].Estimates[j]) != math.Float64bits(want[i].Estimates[j]) {
				t.Fatalf("eval %d ϕ=%v: engine %v != monitor %v",
					i, phis[j], got[i].Estimates[j], want[i].Estimates[j])
			}
		}
	}

	// Count-aligned snapshot: 9000 elements is a period multiple, so the
	// engine's capture must answer bit-for-bit what the reference operator
	// answers at the same instant.
	snap := e.Snapshot()
	est, ok := snap.Query("api-latency")
	if !ok {
		t.Fatal("key missing from snapshot")
	}
	ref := mon.Policy().Result()
	for j := range ref {
		if math.Float64bits(est[j]) != math.Float64bits(ref[j]) {
			t.Fatalf("snapshot ϕ=%v: %v != reference %v", phis[j], est[j], ref[j])
		}
	}
	if e.Dropped() != 0 {
		t.Fatalf("dropped %d results with a large buffer", e.Dropped())
	}
}

func TestEngineManyKeysConcurrentProducers(t *testing.T) {
	spec := Window{Size: 128, Period: 32}
	cfg := Config{Spec: spec, Phis: []float64{0.5, 0.99}}
	e, err := NewEngine(EngineConfig{Config: cfg, Shards: 4, ResultBuffer: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	const (
		producers = 8
		keysPer   = 50
		perKey    = 320 // 10 evaluations per key
		batchSize = 29  // deliberately misaligned with the period
	)
	totalEvals := spec.Evaluations(perKey)
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gen := workload.NewNetMon(int64(w + 1))
			buf := make([]float64, 0, batchSize)
			for k := 0; k < keysPer; k++ {
				key := fmt.Sprintf("w%d/key%03d", w, k)
				sent := 0
				for sent < perKey {
					buf = buf[:0]
					for len(buf) < batchSize && sent+len(buf) < perKey {
						buf = append(buf, gen.Next())
					}
					if err := e.Push(key, buf); err != nil {
						t.Error(err)
						return
					}
					sent += len(buf)
				}
			}
		}(w)
	}
	done := make(chan map[string][]Result, 1)
	go func() { done <- engineResults(e) }()
	wg.Wait()
	if got := e.Keys(); got != producers*keysPer {
		t.Fatalf("keys = %d, want %d", got, producers*keysPer)
	}
	e.Close()
	results := <-done
	if len(results) != producers*keysPer {
		t.Fatalf("keys with results = %d, want %d", len(results), producers*keysPer)
	}
	for key, rs := range results {
		if len(rs) != totalEvals {
			t.Fatalf("%s: %d evaluations, want %d", key, len(rs), totalEvals)
		}
		for i, r := range rs {
			if r.Evaluation != i {
				t.Fatalf("%s: out-of-order evaluation %d at position %d", key, r.Evaluation, i)
			}
		}
	}
	if e.Dropped() != 0 {
		t.Fatalf("dropped %d results", e.Dropped())
	}
}

func TestEngineShardedKeyMergesWithinTolerance(t *testing.T) {
	// One logical stream salted across 4 sub-keys (as a hot key would be to
	// spread ingest load); the merged snapshot must stay within Level-2
	// tolerance of a single operator over the full interleaved stream.
	spec := Window{Size: 2000, Period: 500}
	phis := []float64{0.5, 0.9, 0.999}
	cfg := Config{Spec: spec, Phis: phis, FewK: true}
	const salt = 4
	data := workload.Generate(workload.NewNormal(9, 1000, 100), salt*4*spec.Size)

	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mon, _ := NewMonitor(ref, spec)
	mon.PushBatch(data, nil)

	e, err := NewEngine(EngineConfig{Config: cfg, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Round-robin the stream across the sub-keys in period-sized turns so
	// every sub-key sees an unbiased sample.
	for i := 0; i < len(data); i += 25 {
		key := fmt.Sprintf("hot#%d", (i/25)%salt)
		if err := e.Push(key, data[i:i+25]); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()
	snap := e.Snapshot()
	var parts []Snapshot
	for s := 0; s < salt; s++ {
		sn, ok := snap.Get(fmt.Sprintf("hot#%d", s))
		if !ok {
			t.Fatalf("sub-key %d missing", s)
		}
		parts = append(parts, sn)
	}
	merged, err := MergeSnapshots(parts)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Streams() != salt {
		t.Fatalf("streams = %d, want %d", merged.Streams(), salt)
	}
	got := merged.Estimates()
	want := ref.Result()
	for j := range phis {
		if rel := math.Abs(got[j]-want[j]) / want[j]; rel > 0.02 {
			t.Errorf("ϕ=%v: merged %v vs single %v (rel %v)", phis[j], got[j], want[j], rel)
		}
	}
}

func TestEngineQueryLiveAndEvict(t *testing.T) {
	spec := Window{Size: 100, Period: 50}
	cfg := Config{Spec: spec, Phis: []float64{0.5}}
	e, err := NewEngine(EngineConfig{Config: cfg, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = float64(i%100) + 1
	}
	if err := e.Push("a", vals); err != nil {
		t.Fatal(err)
	}
	// Query rides the shard queue, so it observes everything pushed before
	// it by this goroutine.
	sn, ok := e.Query("a")
	if !ok {
		t.Fatal("live query missed key a")
	}
	if sn.SubWindows() != spec.SubWindows() {
		t.Fatalf("resident sub-windows = %d, want %d", sn.SubWindows(), spec.SubWindows())
	}
	if est := sn.Estimates(); est[0] <= 0 {
		t.Fatalf("implausible estimate %v", est)
	}
	if _, ok := e.Query("missing"); ok {
		t.Fatal("query invented a key")
	}
	if !e.Evict("a") {
		t.Fatal("evict failed")
	}
	if e.Evict("a") {
		t.Fatal("double evict succeeded")
	}
	if n := e.Keys(); n != 0 {
		t.Fatalf("keys after evict = %d", n)
	}
	// The key can come right back, served by a pooled operator.
	if err := e.Push("a", vals); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Query("a"); !ok {
		t.Fatal("recreated key not queryable")
	}
}

func TestEngineCloseSemantics(t *testing.T) {
	cfg := Config{Spec: Window{Size: 40, Period: 20}, Phis: []float64{0.5}}
	e, err := NewEngine(EngineConfig{Config: cfg, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	vals := []float64{1, 2, 3, 4, 5}
	for i := 0; i < 16; i++ {
		if err := e.Push("k", vals); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()
	e.Close() // idempotent
	if err := e.Push("k", vals); err != ErrEngineClosed {
		t.Fatalf("push after close: %v", err)
	}
	if err := e.Push("k", nil); err != ErrEngineClosed {
		t.Fatalf("empty push after close: %v (closure must be visible on empty reports)", err)
	}
	// Buffered results stay readable after Close; the channel then closes.
	n := 0
	for range e.Results() {
		n++
	}
	if want := (16*5-40)/20 + 1; n != want {
		t.Fatalf("post-close results = %d, want %d", n, want)
	}
	// Reads keep working against the final state.
	if _, ok := e.Query("k"); !ok {
		t.Fatal("query after close failed")
	}
	if e.Keys() != 1 {
		t.Fatalf("keys after close = %d", e.Keys())
	}
	if !e.Evict("k") {
		t.Fatal("evict after close failed")
	}
}

func TestEngineCustomFactory(t *testing.T) {
	spec := Window{Size: 200, Period: 50}
	phis := []float64{0.5, 0.9}
	bound, err := Registry().Bind("cmqs", spec, phis)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(EngineConfig{Factory: bound, Spec: spec, Shards: 2, ResultBuffer: 256})
	if err != nil {
		t.Fatal(err)
	}
	data := workload.Generate(workload.NewNetMon(2), 600)
	if err := e.Push("svc", data); err != nil {
		t.Fatal(err)
	}
	e.Close()
	rs := engineResults(e)["svc"]
	if want := spec.Evaluations(len(data)); len(rs) != want {
		t.Fatalf("evaluations = %d, want %d", len(rs), want)
	}
	// CMQS cannot snapshot: the key exists but is not capturable.
	if _, ok := e.Query("svc"); ok {
		t.Fatal("non-snapshottable policy answered Query")
	}
	if e.Snapshot().Len() != 0 {
		t.Fatal("snapshot captured a non-snapshottable key")
	}
	if errSeen, n := e.Err(); errSeen != nil || n != 0 {
		t.Fatalf("unexpected factory failures: %v / %d", errSeen, n)
	}

	// A factory engine still needs a valid spec.
	if _, err := NewEngine(EngineConfig{Factory: bound}); err == nil {
		t.Fatal("factory engine without spec accepted")
	}
}

func TestEngineSnapshotMergeAcrossEngines(t *testing.T) {
	// Two engines monitoring the same key (two ingestion pipelines of one
	// service): their EngineSnapshots merge key-wise.
	spec := Window{Size: 400, Period: 100}
	cfg := Config{Spec: spec, Phis: []float64{0.5}}
	mk := func(seed int64) *Engine {
		e, err := NewEngine(EngineConfig{Config: cfg, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Push("shared", workload.Generate(workload.NewNormal(seed, 500, 50), 2*spec.Size)); err != nil {
			t.Fatal(err)
		}
		if err := e.Push(fmt.Sprintf("only-%d", seed), workload.Generate(workload.NewNormal(seed, 500, 50), spec.Size)); err != nil {
			t.Fatal(err)
		}
		e.Close()
		return e
	}
	a, b := mk(1), mk(2)
	merged, err := a.Snapshot().Merge(b.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != 3 {
		t.Fatalf("merged keys = %v", merged.Keys())
	}
	sn, ok := merged.Get("shared")
	if !ok || sn.Streams() != 2 {
		t.Fatalf("shared key streams = %d, ok=%v", sn.Streams(), ok)
	}
	if est, _ := merged.Query("shared"); est[0] < 400 || est[0] > 600 {
		t.Fatalf("merged median %v implausible", est)
	}
}

func TestEngineValidation(t *testing.T) {
	if _, err := NewEngine(EngineConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
	if _, err := NewEngine(EngineConfig{
		Config: Config{Spec: Window{Size: 100, Period: 10}, Phis: []float64{0.5}},
		Spec:   Window{Size: 200, Period: 10},
	}); err == nil {
		t.Fatal("conflicting specs accepted")
	}
	if _, err := NewEngine(EngineConfig{
		Config: Config{Spec: Window{Size: 100, Period: 10}, Phis: []float64{0.5}},
		KeyTTL: -1,
	}); err == nil {
		t.Fatal("negative KeyTTL accepted")
	}
}

// TestEngineExportImportRoundTrip: Export while ingesting, decode via
// ReadFrom, and every key's estimates are bit-identical to the live
// capture's; ImportSnapshots folds a remote blob into the local view.
func TestEngineExportImportRoundTrip(t *testing.T) {
	spec := Window{Size: 400, Period: 100}
	cfg := Config{Spec: spec, Phis: []float64{0.5, 0.9, 0.99}, FewK: true}
	e, err := NewEngine(EngineConfig{Config: cfg, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("svc-%d", i)
		if err := e.Push(key, workload.Generate(workload.NewNetMon(int64(i)), 600)); err != nil {
			t.Fatal(err)
		}
	}
	live := e.Snapshot()
	var blob bytes.Buffer
	n, err := live.WriteTo(&blob)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(blob.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, blob.Len())
	}

	var back EngineSnapshot
	m, err := back.ReadFrom(bytes.NewReader(blob.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if m != n {
		t.Fatalf("ReadFrom consumed %d of %d bytes", m, n)
	}
	if back.Len() != live.Len() {
		t.Fatalf("decoded %d keys, want %d", back.Len(), live.Len())
	}
	for _, k := range live.Keys() {
		want, _ := live.Query(k)
		got, ok := back.Query(k)
		if !ok {
			t.Fatalf("key %q lost in transit", k)
		}
		for j := range want {
			if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
				t.Fatalf("key %q ϕ[%d]: %v != %v", k, j, got[j], want[j])
			}
		}
	}

	// Export is WriteTo over the control-op capture: same bytes for the
	// same state.
	var viaExport bytes.Buffer
	if _, err := e.Export(&viaExport); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaExport.Bytes(), blob.Bytes()) {
		t.Fatal("Export bytes differ from Snapshot().WriteTo bytes")
	}

	// ExportKeys selects a subset, skips unknown keys, and emits a
	// repeated argument once (a duplicate frame would decode as a
	// self-merge, double-counting the key's single stream).
	var subset bytes.Buffer
	if _, err := e.ExportKeys(&subset, "svc-3", "missing", "svc-5", "svc-3"); err != nil {
		t.Fatal(err)
	}
	var sub EngineSnapshot
	if _, err := sub.ReadFrom(&subset); err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 2 {
		t.Fatalf("subset keys = %v", sub.Keys())
	}
	if sn, _ := sub.Get("svc-3"); sn.Streams() != 1 {
		t.Fatalf("duplicated export argument produced %d streams", sn.Streams())
	}

	// ImportSnapshots: a remote engine's blob for an overlapping key set
	// merges with the local live capture.
	remote, err := NewEngine(EngineConfig{Config: cfg, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := remote.Push("svc-0", workload.Generate(workload.NewNetMon(99), 600)); err != nil {
		t.Fatal(err)
	}
	if err := remote.Push("remote-only", workload.Generate(workload.NewNetMon(98), 600)); err != nil {
		t.Fatal(err)
	}
	var rblob bytes.Buffer
	if _, err := remote.Export(&rblob); err != nil {
		t.Fatal(err)
	}
	remote.Close()
	agg, err := e.ImportSnapshots(&rblob)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Len() != live.Len()+1 {
		t.Fatalf("aggregated keys = %v", agg.Keys())
	}
	if sn, ok := agg.Get("svc-0"); !ok || sn.Streams() != 2 {
		t.Fatalf("overlapping key streams = %d, ok=%v", sn.Streams(), ok)
	}
	if _, ok := agg.Get("remote-only"); !ok {
		t.Fatal("remote-only key missing from aggregate")
	}
}

// TestEngineKeyTTL: idle keys are evicted by the per-shard sweep while
// active keys survive, and an expired key can come back.
func TestEngineKeyTTL(t *testing.T) {
	spec := Window{Size: 100, Period: 50}
	cfg := Config{Spec: spec, Phis: []float64{0.5}}
	const ttl = 8
	// One shard so the delivery clock is deterministic from this test's
	// Push sequence.
	e, err := NewEngine(EngineConfig{Config: cfg, Shards: 1, KeyTTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	vals := []float64{1, 2, 3, 4, 5}
	if err := e.Push("idle", vals); err != nil {
		t.Fatal(err)
	}
	// Keep one key busy well past TTL + sweep lag.
	for i := 0; i < 3*ttl; i++ {
		if err := e.Push("busy", vals); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := e.Query("idle"); ok {
		t.Fatal("idle key survived the TTL sweep")
	}
	if _, ok := e.Query("busy"); !ok {
		t.Fatal("busy key was evicted")
	}
	if n := e.Keys(); n != 1 {
		t.Fatalf("keys = %d, want 1", n)
	}
	// The expired key comes right back on its next report (recycled
	// through the shard pool).
	if err := e.Push("idle", vals); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Query("idle"); !ok {
		t.Fatal("returned key not monitored")
	}
	// Exported blobs only carry live keys: churn a few transient keys past
	// expiry and check the export stays bounded.
	for i := 0; i < 5; i++ {
		if err := e.Push(fmt.Sprintf("transient-%d", i), vals); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3*ttl; i++ {
		if err := e.Push("busy", vals); err != nil {
			t.Fatal(err)
		}
	}
	var blob bytes.Buffer
	if _, err := e.Export(&blob); err != nil {
		t.Fatal(err)
	}
	var back EngineSnapshot
	if _, err := back.ReadFrom(&blob); err != nil {
		t.Fatal(err)
	}
	for _, k := range back.Keys() {
		if len(k) >= 9 && k[:9] == "transient" {
			t.Fatalf("expired key %q still exported", k)
		}
	}
}
