package qlove

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
)

// TestSlotOfRouting pins the slot hash contract: every key lands in
// [0, Slots), salted sub-stream names route with their base, and
// PartitionOf is exactly the slot modulo the replica count — including
// the replicas <= 0 guard (an exported hash must not divide by zero).
func TestSlotOfRouting(t *testing.T) {
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("key-%d", i)
		s := SlotOf(k)
		if s < 0 || s >= Slots {
			t.Fatalf("SlotOf(%q) = %d outside [0, %d)", k, s, Slots)
		}
		// A salted sub-stream name ("key\x00<j>") shares its base's slot,
		// keeping whole salt groups on one owner set.
		for j := byte(0); j < 3; j++ {
			salted := k + string([]byte{0, j})
			if got := SlotOf(salted); got != s {
				t.Fatalf("SlotOf(%q) = %d, base slot %d", salted, got, s)
			}
		}
		for _, n := range []int{1, 2, 3, 7} {
			if got, want := PartitionOf(k, n), s%n; got != want {
				t.Fatalf("PartitionOf(%q, %d) = %d, want slot %d %% %d = %d", k, n, got, s, n, want)
			}
		}
	}
	// Div-by-zero pin: replicas <= 0 must answer 0, not panic.
	if got := PartitionOf("any", 0); got != 0 {
		t.Fatalf("PartitionOf(_, 0) = %d, want 0", got)
	}
	if got := PartitionOf("any", -3); got != 0 {
		t.Fatalf("PartitionOf(_, -3) = %d, want 0", got)
	}
}

// TestSlotMapCanonical property-checks NewSlotMap across (replicas,
// replication) shapes: every slot lists exactly R distinct owners in
// [0, N), the primary is s % N (so default-map primary routing agrees
// with PartitionOf), and every key is owned by exactly R replicas.
func TestSlotMapCanonical(t *testing.T) {
	for _, tc := range []struct{ n, r int }{
		{1, 1}, {2, 1}, {2, 2}, {3, 2}, {5, 3}, {7, 7},
	} {
		m, err := NewSlotMap(tc.n, tc.r)
		if err != nil {
			t.Fatalf("NewSlotMap(%d, %d): %v", tc.n, tc.r, err)
		}
		if m.Replication() != tc.r {
			t.Fatalf("(%d,%d): replication %d", tc.n, tc.r, m.Replication())
		}
		if max, want := m.MaxReplica(), tc.n-1; max != want {
			t.Fatalf("(%d,%d): max replica %d, want %d", tc.n, tc.r, max, want)
		}
		for s := 0; s < Slots; s++ {
			own := m.Owners(s)
			if len(own) != tc.r {
				t.Fatalf("(%d,%d): slot %d has %d owners", tc.n, tc.r, s, len(own))
			}
			if own[0] != s%tc.n || m.Primary(s) != s%tc.n {
				t.Fatalf("(%d,%d): slot %d primary %d, want %d", tc.n, tc.r, s, own[0], s%tc.n)
			}
			seen := map[int]bool{}
			for _, o := range own {
				if o < 0 || o >= tc.n || seen[o] {
					t.Fatalf("(%d,%d): slot %d owners %v invalid", tc.n, tc.r, s, own)
				}
				seen[o] = true
			}
		}
		// Key-level view: exactly R distinct owners, primary matching
		// PartitionOf; SlotsOwnedBy and IsOwner agree with Owners.
		for i := 0; i < 200; i++ {
			k := fmt.Sprintf("probe-%d", i)
			own := m.OwnersOf(k)
			if len(own) != tc.r || own[0] != PartitionOf(k, tc.n) || m.PrimaryOf(k) != own[0] {
				t.Fatalf("(%d,%d): key %q owners %v, PartitionOf %d",
					tc.n, tc.r, k, own, PartitionOf(k, tc.n))
			}
		}
		total := 0
		for rep := 0; rep < tc.n; rep++ {
			for _, s := range m.SlotsOwnedBy(rep) {
				if !m.IsOwner(s, rep) {
					t.Fatalf("(%d,%d): SlotsOwnedBy disagrees with IsOwner at slot %d", tc.n, tc.r, s)
				}
				total++
			}
		}
		if total != Slots*tc.r {
			t.Fatalf("(%d,%d): %d total ownerships, want %d", tc.n, tc.r, total, Slots*tc.r)
		}
	}
	for _, tc := range []struct{ n, r int }{{0, 1}, {-1, 1}, {2, 0}, {2, 3}, {3, -1}} {
		if _, err := NewSlotMap(tc.n, tc.r); err == nil {
			t.Fatalf("NewSlotMap(%d, %d) accepted", tc.n, tc.r)
		}
	}
}

// TestSlotMapMove pins Move's table surgery: only the intended slot
// changes, the moved owner's position (primacy) is preserved, and the
// invalid moves are all rejected without mutating anything.
func TestSlotMapMove(t *testing.T) {
	m, err := NewSlotMap(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	before := m.Clone()

	// Slot 7's owners under the canonical map are [1, 2]; move the
	// primary to the non-owner 0 — 0 must take the PRIMARY position.
	if got := m.Owners(7); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("canonical owners of slot 7: %v", got)
	}
	if err := m.Move(7, 1, 0); err != nil {
		t.Fatal(err)
	}
	if got := m.Owners(7); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("after move, slot 7 owners %v, want [0 2]", got)
	}
	// Every other slot is untouched.
	for s := 0; s < Slots; s++ {
		if s == 7 {
			continue
		}
		if !reflect.DeepEqual(m.Owners(s), before.Owners(s)) {
			t.Fatalf("move of slot 7 disturbed slot %d: %v", s, m.Owners(s))
		}
	}
	// Moving a secondary keeps it secondary.
	if err := m.Move(7, 2, 1); err != nil {
		t.Fatal(err)
	}
	if got := m.Owners(7); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("secondary move: slot 7 owners %v, want [0 1]", got)
	}

	snapshot := m.Clone()
	for _, bad := range []struct {
		name           string
		slot, from, to int
	}{
		{"slot out of range", Slots, 0, 1},
		{"negative slot", -1, 0, 1},
		{"negative destination", 7, 0, -1},
		{"destination already owns", 7, 0, 1},
		{"source does not own", 7, 2, 2},
	} {
		if err := m.Move(bad.slot, bad.from, bad.to); err == nil {
			t.Fatalf("%s: accepted", bad.name)
		}
	}
	for s := 0; s < Slots; s++ {
		if !reflect.DeepEqual(m.Owners(s), snapshot.Owners(s)) {
			t.Fatalf("rejected move mutated slot %d", s)
		}
	}

	// Clone independence: mutating the clone leaves the original alone.
	c := m.Clone()
	for to := 0; to < 3; to++ {
		if !c.IsOwner(9, to) {
			if err := c.Move(9, c.Primary(9), to); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if reflect.DeepEqual(c.Owners(9), m.Owners(9)) {
		t.Fatal("clone move did not change the clone")
	}
}

// TestSlotMapJSON round-trips the serialized table and rejects the
// malformed documents a config loader could feed it.
func TestSlotMapJSON(t *testing.T) {
	m, err := NewSlotMap(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Make the table non-canonical so the round-trip is non-trivial.
	for to := 0; to < 3; to++ {
		if !m.IsOwner(11, to) {
			if err := m.Move(11, m.Primary(11), to); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back SlotMap
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Replication() != m.Replication() {
		t.Fatalf("round-trip replication %d != %d", back.Replication(), m.Replication())
	}
	for s := 0; s < Slots; s++ {
		if !reflect.DeepEqual(back.Owners(s), m.Owners(s)) {
			t.Fatalf("round-trip slot %d: %v != %v", s, back.Owners(s), m.Owners(s))
		}
	}
	b2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(b2) != string(b) {
		t.Fatal("re-marshal is not byte-stable")
	}

	for name, doc := range map[string]string{
		"wrong slot count":  `{"slots":16,"replication":1,"owners":[[0]]}`,
		"bad replication":   `{"slots":256,"replication":0,"owners":[]}`,
		"short owner list":  mutateDoc(t, m, func(d *slotMapJSON) { d.Owners[3] = []int{1} }),
		"duplicate owner":   mutateDoc(t, m, func(d *slotMapJSON) { d.Owners[3] = []int{1, 1} }),
		"negative owner":    mutateDoc(t, m, func(d *slotMapJSON) { d.Owners[3] = []int{1, -2} }),
		"missing owner set": mutateDoc(t, m, func(d *slotMapJSON) { d.Owners = d.Owners[:Slots-1] }),
		"not json":          `{"slots":`,
	} {
		var bad SlotMap
		if err := json.Unmarshal([]byte(doc), &bad); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

// mutateDoc marshals m, decodes to the raw document, applies the
// mutation, and re-encodes — building an almost-valid rejection case.
func mutateDoc(t *testing.T, m *SlotMap, mutate func(*slotMapJSON)) string {
	t.Helper()
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var doc slotMapJSON
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	mutate(&doc)
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}
