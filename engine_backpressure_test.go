// Tests for the Engine's backpressure modes and lock-free stats plane:
// blocking delivery must leave operator state bit-identical to drop mode,
// PushContext must bound producer waits without half-ingesting a batch,
// and the counters must account for every evaluation exactly once.
package qlove

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/workload"
)

// keyedReports deals n reports of size vals each across keys round-robin,
// drawing values from the NetMon generator.
func keyedReports(seed int64, keys, n, size int) (names []string, vals []float64) {
	data := workload.Generate(workload.NewNetMon(seed), n*size)
	names = make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("key-%03d", i%keys)
	}
	return names, data
}

// TestBackpressureBitEquivalence: a blocking engine with a tiny results
// buffer (so the blocking path actually exercises) and a drop engine with
// a buffer large enough that nothing is shed, fed the same keyed batches,
// must produce byte-identical Export blobs at every shard count — drops
// only ever affect delivery, never operator state.
func TestBackpressureBitEquivalence(t *testing.T) {
	cfg := Config{Spec: Window{Size: 256, Period: 64}, Phis: []float64{0.5, 0.9, 0.99}}
	names, vals := keyedReports(11, 16, 300, 64)
	for _, shards := range []int{1, 2, 8} {
		var blobs [][]byte
		for _, bp := range []Backpressure{BackpressureBlock, BackpressureDrop} {
			buf := 1
			if bp == BackpressureDrop {
				buf = 1 << 16 // large enough that zero evaluations drop
			}
			e, err := NewEngine(EngineConfig{
				Config: cfg, Shards: shards, QueueDepth: 4,
				ResultBuffer: buf, Backpressure: bp,
			})
			if err != nil {
				t.Fatal(err)
			}
			var received atomic.Uint64
			done := make(chan struct{})
			go func() {
				defer close(done)
				for range e.Results() {
					received.Add(1)
				}
			}()
			for i, key := range names {
				if err := e.Push(key, vals[i*64:(i+1)*64]); err != nil {
					t.Fatal(err)
				}
			}
			e.Close()
			<-done
			if n := e.Dropped(); n != 0 {
				t.Fatalf("shards=%d %v: dropped %d evaluations", shards, bp, n)
			}
			st := e.Stats().Total()
			if st.EnqueuedBatches != st.DeliveredBatches+st.FailedBatches {
				t.Fatalf("shards=%d %v: enqueued %d != delivered %d + failed %d",
					shards, bp, st.EnqueuedBatches, st.DeliveredBatches, st.FailedBatches)
			}
			if st.EvalsDelivered != received.Load() {
				t.Fatalf("shards=%d %v: stats say %d delivered, consumer saw %d",
					shards, bp, st.EvalsDelivered, received.Load())
			}
			var blob bytes.Buffer
			if _, err := e.Export(&blob); err != nil {
				t.Fatal(err)
			}
			blobs = append(blobs, blob.Bytes())
		}
		if !bytes.Equal(blobs[0], blobs[1]) {
			t.Fatalf("shards=%d: block-mode export (%d bytes) differs from drop-mode export (%d bytes)",
				shards, len(blobs[0]), len(blobs[1]))
		}
	}
}

// TestEngineStatsPlaneDrops: with a 1-slot results buffer and no consumer,
// drop mode must shed precisely the evaluations that did not fit, and the
// stats plane must account for every one exactly once.
func TestEngineStatsPlaneDrops(t *testing.T) {
	spec := Window{Size: 128, Period: 32}
	e, err := NewEngine(EngineConfig{
		Config: Config{Spec: spec, Phis: []float64{0.5}},
		Shards: 1, ResultBuffer: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	vals := workload.Generate(workload.NewNetMon(3), 640)
	for i := 0; i < 20; i++ {
		if err := e.Push("k", vals[i*32:(i+1)*32]); err != nil {
			t.Fatal(err)
		}
	}
	wantEvals := uint64(spec.Evaluations(640))
	e.Close()
	var received uint64
	for range e.Results() {
		received++
	}
	st := e.Stats().Total()
	if st.EnqueuedBatches != 20 || st.DeliveredBatches != 20 || st.FailedBatches != 0 {
		t.Fatalf("batch accounting: %+v", st)
	}
	if st.EvalsDelivered != received {
		t.Fatalf("stats delivered %d, consumer saw %d", st.EvalsDelivered, received)
	}
	if st.EvalsDropped == 0 {
		t.Fatal("no drops with a 1-slot buffer and no consumer")
	}
	if st.EvalsDelivered+st.EvalsDropped != wantEvals {
		t.Fatalf("delivered %d + dropped %d != %d evaluations",
			st.EvalsDelivered, st.EvalsDropped, wantEvals)
	}
	if e.Dropped() != st.EvalsDropped {
		t.Fatalf("Dropped() %d != stats %d", e.Dropped(), st.EvalsDropped)
	}
	if st.ResidentKeys != 1 {
		t.Fatalf("resident keys %d, want 1", st.ResidentKeys)
	}
}

// TestPushContextBoundsWait: with the shard wedged behind a full results
// channel (block mode, no consumer), PushContext must give up at its
// deadline, the abandoned batch must not count as enqueued, and the
// blocked time must show in the stats plane.
func TestPushContextBoundsWait(t *testing.T) {
	e, err := NewEngine(EngineConfig{
		Config:       Config{Spec: Window{Size: 64, Period: 32}, Phis: []float64{0.5}},
		Shards:       1,
		QueueDepth:   1,
		ResultBuffer: 1,
		Backpressure: BackpressureBlock,
	})
	if err != nil {
		t.Fatal(err)
	}
	vals := workload.Generate(workload.NewNetMon(4), 32)
	// Reports 1-2 fill the window and put eval 1 in the 1-slot results
	// buffer; report 3's eval blocks the shard; report 4 parks in the
	// 1-deep queue. Report 5 then has nowhere to go.
	for i := 0; i < 4; i++ {
		if err := e.Push("k", vals); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := e.PushContext(ctx, "k", vals); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("wedged PushContext returned %v, want deadline exceeded", err)
	}
	// An already-cancelled context never touches the engine.
	cancelled, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	if err := e.PushContext(cancelled, "k", vals); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled PushContext returned %v", err)
	}
	st := e.Stats().Total()
	if st.EnqueuedBatches != 4 {
		t.Fatalf("enqueued %d batches, want 4 (abandoned pushes must not count)", st.EnqueuedBatches)
	}
	if st.Blocked == 0 {
		t.Fatal("no blocked time recorded while the engine was wedged")
	}
	done := drainResults(e)
	e.Close()
	<-done
	if st := e.Stats().Total(); st.EnqueuedBatches != st.DeliveredBatches {
		t.Fatalf("after close: enqueued %d != delivered %d", st.EnqueuedBatches, st.DeliveredBatches)
	}
}

// TestEngineStressBackpressure hammers one blocking engine from every
// surface at once — PushContext producers with cancellations, a Stats
// poller, an ExportDelta shipper, explicit Evicts, and KeyTTL expiry — and
// then checks the exactly-once accounting: every evaluation the consumer
// received is counted delivered, nothing is counted dropped, and every
// accepted batch was delivered. Run under -race this is the data-race
// suite for the stats plane.
func TestEngineStressBackpressure(t *testing.T) {
	e, err := NewEngine(EngineConfig{
		Config:       Config{Spec: Window{Size: 128, Period: 32}, Phis: []float64{0.5, 0.99}},
		Shards:       4,
		QueueDepth:   8,
		ResultBuffer: 64,
		Backpressure: BackpressureBlock,
		KeyTTL:       16,
	})
	if err != nil {
		t.Fatal(err)
	}
	var received atomic.Uint64
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range e.Results() {
			received.Add(1)
		}
	}()

	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(3)
	go func() { // stats poller: must stay lock-free even while producers block
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = e.Stats()
				_ = e.Dropped()
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()
	go func() { // delta shipper with its own cursor
		defer aux.Done()
		cur := new(ExportCursor)
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := e.ExportDelta(io.Discard, cur); err != nil {
					t.Errorf("ExportDelta: %v", err)
					return
				}
				time.Sleep(300 * time.Microsecond)
			}
		}
	}()
	go func() { // evictor
		defer aux.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				e.Evict(fmt.Sprintf("key-%02d", i%24))
				time.Sleep(500 * time.Microsecond)
			}
		}
	}()

	const producers = 6
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vals := workload.Generate(workload.NewNetMon(int64(w+1)), 32)
			for i := 0; i < 150; i++ {
				key := fmt.Sprintf("key-%02d", (w*37+i)%24)
				switch i % 3 {
				case 0:
					if err := e.Push(key, vals); err != nil {
						t.Errorf("push: %v", err)
						return
					}
				case 1:
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
					err := e.PushContext(ctx, key, vals)
					cancel()
					if err != nil && !errors.Is(err, context.DeadlineExceeded) {
						t.Errorf("push context: %v", err)
						return
					}
				default:
					ctx, cancel := context.WithCancel(context.Background())
					cancel() // abandoned before the engine ever sees it
					if err := e.PushContext(ctx, key, vals); !errors.Is(err, context.Canceled) {
						t.Errorf("pre-cancelled push context: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	aux.Wait()
	e.Close()
	<-drained

	st := e.Stats().Total()
	if st.EvalsDropped != 0 || e.Dropped() != 0 {
		t.Fatalf("block mode shed evaluations: dropped=%d Dropped()=%d", st.EvalsDropped, e.Dropped())
	}
	if st.EvalsDelivered != received.Load() {
		t.Fatalf("stats delivered %d evaluations, consumer received %d", st.EvalsDelivered, received.Load())
	}
	if st.FailedBatches != 0 {
		t.Fatalf("built-in path failed %d batches", st.FailedBatches)
	}
	if st.EnqueuedBatches != st.DeliveredBatches {
		t.Fatalf("enqueued %d != delivered %d after close", st.EnqueuedBatches, st.DeliveredBatches)
	}
}
