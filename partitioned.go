package qlove

import (
	"bytes"
	"fmt"
	"io"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/wire"
)

// Partitioned is the horizontal form of the aggregation tier: N
// independent Aggregator replicas hosting the Slots hash slots of the key
// space under a SlotMap. Each logical key hashes to one slot; the slot's
// owner set (replication factor R, 1 by default) holds full copies of its
// state. A worker's push blob is split frame-by-frame (bit-verbatim, via
// the wire raw scanner) and routed to every owner of each frame's slot,
// queries answer from the slot's primary, and Snapshot reads each key
// from its primary — so every answer is bit-identical to a single
// aggregator folding the same pushes, while pushes and reads for
// different slots never contend at all.
//
// Every replica sees every worker's Apply (non-owners get an empty blob),
// so worker liveness — push-deadline staleness, Workers() — stays
// coherent across the partition exactly as in one process.
//
// Routing hashes the LOGICAL key (salted sub-stream names route with
// their base, keeping each key's whole salt group on one replica) with a
// fixed process-independent hash, so any router instance — in-process or
// the HTTP fan-in in internal/aggsrv — partitions identically.
//
// MoveSlot re-homes one hash slot live: the slot's state replays onto the
// new owner and the table flips under the partition's write lock, which
// drains in-flight pushes and reads first — answers stay bit-identical
// before, during, and after a migration.
type Partitioned struct {
	replicas []*Aggregator

	mu    sync.RWMutex // guards slots; write-held across MoveSlot
	slots *SlotMap
}

// PartitionedConfig configures a replicated partition.
type PartitionedConfig struct {
	// Replicas is the replica count (>= 1).
	Replicas int
	// Replication is the copies-per-slot factor, in [1, Replicas];
	// 0 means 1 (no replication).
	Replication int
	// Slots optionally seeds a non-canonical slot table (it is cloned;
	// owner indices must be < Replicas). Nil builds the canonical
	// NewSlotMap(Replicas, Replication).
	Slots *SlotMap
	// Agg configures every replica's store backend.
	Agg AggregatorConfig
}

// NewPartitioned returns n empty replicas at replication factor 1 — the
// compatibility form of NewPartitionedConfig. For the disk store each
// replica persists under its own cfg.Dir subdirectory ("replica-<i>"), so
// reopening the same directory with the same replica count recovers the
// whole partition.
func NewPartitioned(n int, cfg AggregatorConfig) (*Partitioned, error) {
	return NewPartitionedConfig(PartitionedConfig{Replicas: n, Agg: cfg})
}

// NewPartitionedConfig returns an empty replicated partition.
func NewPartitionedConfig(cfg PartitionedConfig) (*Partitioned, error) {
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("qlove: partitioned aggregator needs >= 1 replica, got %d", cfg.Replicas)
	}
	if cfg.Replication == 0 {
		cfg.Replication = 1
	}
	slots := cfg.Slots
	if slots == nil {
		var err error
		if slots, err = NewSlotMap(cfg.Replicas, cfg.Replication); err != nil {
			return nil, err
		}
	} else {
		if slots.Replication() != cfg.Replication {
			return nil, fmt.Errorf("qlove: slot map replication %d, config says %d", slots.Replication(), cfg.Replication)
		}
		if max := slots.MaxReplica(); max >= cfg.Replicas {
			return nil, fmt.Errorf("qlove: slot map references replica %d, only %d configured", max, cfg.Replicas)
		}
		slots = slots.Clone()
	}
	p := &Partitioned{replicas: make([]*Aggregator, cfg.Replicas), slots: slots}
	for i := range p.replicas {
		rcfg := cfg.Agg
		if rcfg.Store == "disk" && rcfg.Dir != "" {
			rcfg.Dir = filepath.Join(cfg.Agg.Dir, fmt.Sprintf("replica-%d", i))
		}
		a, err := NewAggregatorConfig(rcfg)
		if err != nil {
			for _, prev := range p.replicas[:i] {
				prev.Close()
			}
			return nil, err
		}
		p.replicas[i] = a
	}
	return p, nil
}

// Close releases every replica's store backend; the first error wins.
func (p *Partitioned) Close() error {
	var first error
	for _, a := range p.replicas {
		if err := a.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// DurabilityErr reports the first replica durability error, if any; see
// Aggregator.DurabilityErr.
func (p *Partitioned) DurabilityErr() error {
	for i, a := range p.replicas {
		if err := a.DurabilityErr(); err != nil {
			return fmt.Errorf("replica %d: %w", i, err)
		}
	}
	return nil
}

// Replicas returns the replica count.
func (p *Partitioned) Replicas() int { return len(p.replicas) }

// Replication returns the copies-per-slot factor.
func (p *Partitioned) Replication() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.slots.Replication()
}

// Replica returns one replica (e.g. to inspect per-partition state).
func (p *Partitioned) Replica(i int) *Aggregator { return p.replicas[i] }

// SlotTable returns a copy of the current slot→owners table.
func (p *Partitioned) SlotTable() *SlotMap {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.slots.Clone()
}

// PartitionOf returns the replica index owning a logical key under the
// DEFAULT slot map at replication 1: the key's hash slot modulo the
// replica count. Exported so out-of-process routers (the aggsrv fan-in)
// and tests partition identically. replicas <= 0 answers 0 — an exported
// hash must not divide by zero on a reachable input.
func PartitionOf(key string, replicas int) int {
	if replicas <= 0 {
		return 0
	}
	return SlotOf(key) % replicas
}

// Apply splits one worker push blob across the owning replicas (every
// owner of a frame's slot receives it). The whole blob is scanned and
// routed before any replica folds, so a malformed blob is rejected up
// front with zero frames applied (unlike a single aggregator's partial
// fold — the worker re-bootstraps either way). On success the count is
// the blob's frame count; on a fold error, frames already folded at their
// replicas remain applied and the count says how many were folded before
// the failure.
func (p *Partitioned) Apply(worker string, r io.Reader) (int, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	bufs := make([]bytes.Buffer, len(p.replicas))
	sc := wire.NewRawScanner(r)
	frames := 0
	for {
		_, key, frame, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, fmt.Errorf("qlove: partitioned apply worker %q: %w", worker, err)
		}
		for _, o := range p.slots.owners[SlotOf(key)] {
			bufs[o].Write(frame)
		}
		frames++
	}
	applied := 0
	for i, a := range p.replicas {
		// Every replica applies — an empty blob still registers the worker
		// and stamps its push deadline, keeping liveness partition-wide.
		n, err := a.Apply(worker, &bufs[i])
		applied += n
		if err != nil {
			return applied, err
		}
	}
	return frames, nil
}

// Query answers one logical key from its slot's primary replica.
func (p *Partitioned) Query(key string) (Snapshot, bool, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.replicas[p.slots.PrimaryOf(key)].Query(key)
}

// Snapshot merges the replicas' views, reading each key from its slot's
// primary — exactly the single-process snapshot, however many copies each
// slot keeps.
func (p *Partitioned) Snapshot() (EngineSnapshot, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := EngineSnapshot{keys: make(map[string]Snapshot)}
	for i, a := range p.replicas {
		snap, err := a.Snapshot()
		if err != nil {
			return EngineSnapshot{}, err
		}
		for k, sn := range snap.keys {
			if p.slots.PrimaryOf(k) == i {
				out.keys[k] = sn
			}
		}
	}
	return out, nil
}

// Workers returns the live-worker count (every replica sees every worker;
// the max rides over transient mid-Apply skews).
func (p *Partitioned) Workers() int {
	max := 0
	for _, a := range p.replicas {
		if n := a.Workers(); n > max {
			max = n
		}
	}
	return max
}

// Keys returns the distinct logical keys across the partition: each key
// counts once, at its slot's primary, however many replicas hold copies.
func (p *Partitioned) Keys() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.slots.Replication() == 1 {
		// Key sets are disjoint: the O(replicas) occupancy sum is exact.
		n := 0
		for _, a := range p.replicas {
			n += a.Keys()
		}
		return n
	}
	n := 0
	for i, a := range p.replicas {
		for _, k := range a.KeyList() {
			if p.slots.PrimaryOf(k) == i {
				n++
			}
		}
	}
	return n
}

// MoveSlot re-homes one hash slot from owner `from` onto replica `to`
// (which must not already own it): the slot's state replays onto `to`,
// then the table flips and the old owner drops its copy. The partition's
// write lock is held throughout, so concurrent pushes and reads drain
// first and resume against the flipped table — a reader never observes a
// half-moved slot.
func (p *Partitioned) MoveSlot(slot, from, to int) error {
	if slot < 0 || slot >= Slots {
		return fmt.Errorf("qlove: slot %d outside [0, %d)", slot, Slots)
	}
	if to < 0 || to >= len(p.replicas) {
		return fmt.Errorf("qlove: destination replica %d outside [0, %d)", to, len(p.replicas))
	}
	if from < 0 || from >= len(p.replicas) {
		return fmt.Errorf("qlove: source replica %d outside [0, %d)", from, len(p.replicas))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.slots.IsOwner(slot, from) {
		return fmt.Errorf("qlove: replica %d does not own slot %d (owners %v)", from, slot, p.slots.owners[slot])
	}
	if p.slots.IsOwner(slot, to) {
		return fmt.Errorf("qlove: replica %d already owns slot %d", to, slot)
	}
	blobs, err := p.replicas[from].ExportSlots([]int{slot})
	if err != nil {
		return fmt.Errorf("qlove: move slot %d: %w", slot, err)
	}
	// Clear any stale state at the destination first: a sub-stream
	// bootstrap frame replaces only its own sub-stream, not leftovers.
	p.replicas[to].DropSlots([]int{slot})
	for _, wb := range blobs {
		if _, err := p.replicas[to].Apply(wb.Worker, bytes.NewReader(wb.Blob)); err != nil {
			return fmt.Errorf("qlove: move slot %d replay worker %q: %w", slot, wb.Worker, err)
		}
	}
	if err := p.slots.Move(slot, from, to); err != nil {
		return err
	}
	p.replicas[from].DropSlots([]int{slot})
	return nil
}

// SetPushDeadline arms every replica's worker GC; see
// Aggregator.SetPushDeadline.
func (p *Partitioned) SetPushDeadline(d time.Duration, clock func() time.Time) {
	for _, a := range p.replicas {
		a.SetPushDeadline(d, clock)
	}
}

// SetPushDeadlineFromStored arms every replica's worker GC without
// re-dating recovered workers; see Aggregator.SetPushDeadlineFromStored.
func (p *Partitioned) SetPushDeadlineFromStored(d time.Duration, clock func() time.Time) {
	for _, a := range p.replicas {
		a.SetPushDeadlineFromStored(d, clock)
	}
}

// Sweep sweeps every replica, returning the MAX per-replica drop count —
// the number of workers retired partition-wide, since every replica hosts
// every worker.
func (p *Partitioned) Sweep() int {
	max := 0
	for _, a := range p.replicas {
		if n := a.Sweep(); n > max {
			max = n
		}
	}
	return max
}

// DropWorker forgets one worker on every replica.
func (p *Partitioned) DropWorker(worker string) bool {
	known := false
	for _, a := range p.replicas {
		if a.DropWorker(worker) {
			known = true
		}
	}
	return known
}

// Metrics reports every replica's metrics, in partition order.
func (p *Partitioned) Metrics() []AggregatorMetrics {
	out := make([]AggregatorMetrics, len(p.replicas))
	for i, a := range p.replicas {
		out[i] = a.Metrics()
	}
	return out
}
